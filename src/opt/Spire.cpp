#include "opt/Spire.h"

#include <cassert>

using namespace spire::ir;

namespace spire::opt {

namespace {

using support::Symbol;

//===----------------------------------------------------------------------===//
// The Fig. 22 rewriter as an explicit worklist machine.
//
// The paper's 12-line OCaml recurses structurally; const-arg recursion
// lowers to one with-block of nesting per level, so C++ recursion here
// overflowed the stack around depth ~15k (the ROADMAP known-limit this
// PR retires). The machine keeps one heap frame per open block instead:
// each frame rewrites one statement list — either plainly (Mode::Stmts,
// the old rewriteStmts) or elementwise under an if-condition (Mode::If,
// the old rewriteIf) — and delivers its output to its parent.
//
// Fresh-name order is part of the observable output (the %cfN
// flattening temporaries), so each frame advances its per-item phase
// *before* pushing children, evaluating sub-rewrites in exactly the
// order the recursive code did.
//===----------------------------------------------------------------------===//

class Rewriter {
public:
  Rewriter(const SpireOptions &Options, NameGen &Names,
           const TypeContext &Types)
      : Options(Options), Names(Names), Types(Types) {}

  CoreStmtList rewriteStmts(const CoreStmtList &Stmts) {
    CoreStmtList Result;
    Frames.clear();
    pushFrame(Frame::Mode::Stmts, Symbol(), &Stmts, nullptr,
              Frame::Deliver::Root);
    while (!Frames.empty()) {
      Frame &F = *Frames.back();
      if (F.Idx == itemCount(F)) {
        deliver(std::move(F.Out), F.D, Result);
        Frames.pop_back();
        continue;
      }
      step(F);
    }
    return Result;
  }

private:
  struct Frame {
    enum class Mode : uint8_t { Stmts, If };
    /// Where this frame's finished Out goes: the machine result, the
    /// parent's staging lists, or straight onto the parent's Out (the
    /// rewriteIf-appends-into-caller case).
    enum class Deliver : uint8_t { Root, Tmp1, Tmp2, Append };

    Mode M = Mode::Stmts;
    Symbol X; ///< Condition variable (Mode::If).
    const CoreStmtList *In = nullptr;
    const CoreStmt *Single = nullptr; ///< Rewrite exactly one statement.
    size_t Idx = 0;
    uint8_t Phase = 0; ///< Per-item progress; 0 = item not started.
    Symbol Z;          ///< Fresh %cf temporary of the current item.
    CoreStmtList Tmp1, Tmp2; ///< Staged child results for the item.
    CoreStmtList Out;
    Deliver D = Deliver::Root;
  };

  size_t itemCount(const Frame &F) const {
    return F.Single ? 1 : F.In->size();
  }
  const CoreStmt &item(const Frame &F) const {
    return F.Single ? *F.Single : *(*F.In)[F.Idx];
  }

  void pushFrame(Frame::Mode M, Symbol X, const CoreStmtList *In,
                 const CoreStmt *Single, Frame::Deliver D) {
    auto F = std::make_unique<Frame>();
    F->M = M;
    F->X = X;
    F->In = In;
    F->Single = Single;
    F->D = D;
    Frames.push_back(std::move(F));
  }

  void deliver(CoreStmtList Out, Frame::Deliver D, CoreStmtList &Result) {
    if (D == Frame::Deliver::Root) {
      Result = std::move(Out);
      return;
    }
    Frame &Parent = *Frames[Frames.size() - 2];
    switch (D) {
    case Frame::Deliver::Tmp1:
      Parent.Tmp1 = std::move(Out);
      break;
    case Frame::Deliver::Tmp2:
      Parent.Tmp2 = std::move(Out);
      break;
    case Frame::Deliver::Append:
      for (auto &S : Out)
        Parent.Out.push_back(std::move(S));
      break;
    case Frame::Deliver::Root:
      break;
    }
  }

  void advance(Frame &F) {
    ++F.Idx;
    F.Phase = 0;
    F.Tmp1.clear();
    F.Tmp2.clear();
  }

  void step(Frame &F) {
    const CoreStmt &S = item(F);
    if (F.M == Frame::Mode::Stmts)
      stepStmts(F, S);
    else
      stepIf(F, S);
  }

  /// One step of plain list rewriting (the old rewriteStmt body).
  void stepStmts(Frame &F, const CoreStmt &S) {
    switch (S.K) {
    case CoreStmt::Kind::If:
      if (F.Phase == 0) {
        F.Phase = 1;
        pushFrame(Frame::Mode::If, S.Name, &S.Body, nullptr,
                  Frame::Deliver::Append);
        return;
      }
      advance(F);
      return;

    case CoreStmt::Kind::With:
      switch (F.Phase) {
      case 0:
        F.Phase = 1;
        pushFrame(Frame::Mode::Stmts, Symbol(), &S.Body, nullptr,
                  Frame::Deliver::Tmp1);
        return;
      case 1:
        F.Phase = 2;
        pushFrame(Frame::Mode::Stmts, Symbol(), &S.DoBody, nullptr,
                  Frame::Deliver::Tmp2);
        return;
      default:
        F.Out.push_back(
            CoreStmt::with(std::move(F.Tmp1), std::move(F.Tmp2)));
        advance(F);
        return;
      }

    default:
      F.Out.push_back(S.clone());
      advance(F);
      return;
    }
  }

  /// One step of `if X { ... }` elementwise rewriting (Fig. 22).
  void stepIf(Frame &F, const CoreStmt &Sub) {
    switch (Sub.K) {
    case CoreStmt::Kind::With:
      if (Options.ConditionalNarrowing) {
        // if x { with { s1 } do { s2 } } ~> with { s1 } do { if x {s2} }
        switch (F.Phase) {
        case 0: // Narrow the do-block first (fresh-name order).
          F.Phase = 1;
          pushFrame(Frame::Mode::If, F.X, &Sub.DoBody, nullptr,
                    Frame::Deliver::Tmp1);
          return;
        case 1: // Then rewrite the with-block plainly.
          F.Phase = 2;
          pushFrame(Frame::Mode::Stmts, Symbol(), &Sub.Body, nullptr,
                    Frame::Deliver::Tmp2);
          return;
        default:
          F.Out.push_back(
              CoreStmt::with(std::move(F.Tmp2), std::move(F.Tmp1)));
          advance(F);
          return;
        }
      }
      if (Options.ConditionalFlattening) {
        // Narrowing is off: distribute the condition through the block
        // instead — if x { with {s1} do {s2} } becomes
        // with { if x {s1} } do { if x {s2} }. Both sides expand to
        // if x {s1}; if x {s2}; if x {I[s1]} (the Section 6.1
        // if-splitting rule applied to the with-do expansion), so no
        // control bits are saved here, but nested ifs inside the
        // do-block become visible to flattening — which is what makes
        // conditional flattening alone asymptotically effective
        // (Section 8.2's 88.2% figure).
        switch (F.Phase) {
        case 0:
          F.Phase = 1;
          pushFrame(Frame::Mode::If, F.X, &Sub.Body, nullptr,
                    Frame::Deliver::Tmp1);
          return;
        case 1:
          F.Phase = 2;
          pushFrame(Frame::Mode::If, F.X, &Sub.DoBody, nullptr,
                    Frame::Deliver::Tmp2);
          return;
        default:
          F.Out.push_back(
              CoreStmt::with(std::move(F.Tmp1), std::move(F.Tmp2)));
          advance(F);
          return;
        }
      }
      break;

    case CoreStmt::Kind::If:
      if (Options.ConditionalFlattening) {
        // if x { if y { s } } ~> with { z <- x && y } do { if z { s } }
        if (F.Phase == 0) {
          F.Z = Names.fresh("cf");
          const ast::Type *Bool = Types.boolType();
          F.Tmp1.clear();
          F.Tmp1.push_back(CoreStmt::assign(
              F.Z, Bool,
              CoreExpr::binary(ast::BinaryOp::And, Atom::var(F.X, Bool),
                               Atom::var(Sub.Name, Bool), Bool)));
          F.Phase = 1;
          pushFrame(Frame::Mode::If, F.Z, &Sub.Body, nullptr,
                    Frame::Deliver::Tmp2);
          return;
        }
        F.Out.push_back(
            CoreStmt::with(std::move(F.Tmp1), std::move(F.Tmp2)));
        advance(F);
        return;
      }
      break;

    default:
      break;
    }

    // Fallback: keep the statement under a single-statement if, with
    // its interior rewritten (the if-splitting rule of Section 6.1).
    if (F.Phase == 0) {
      F.Phase = 1;
      pushFrame(Frame::Mode::Stmts, Symbol(), nullptr, &Sub,
                Frame::Deliver::Tmp1);
      return;
    }
    // The single-statement rewrite can fan out (splitting); wrap each
    // piece.
    for (auto &Piece : F.Tmp1) {
      CoreStmtList One;
      One.push_back(std::move(Piece));
      F.Out.push_back(CoreStmt::ifStmt(F.X, std::move(One)));
    }
    advance(F);
  }

  const SpireOptions &Options;
  NameGen &Names;
  const TypeContext &Types;
  std::vector<std::unique_ptr<Frame>> Frames;
};

//===----------------------------------------------------------------------===//
// Bottom-up with-do flattening:
//   with { a } do { with { b } do { c } } ~> with { a; b } do { c }
// (both expand to a; b; c; I[b]; I[a]).
//
// Also a worklist machine, and chain-aware: the old bottom-up recursion
// merged the accumulated inner body into each enclosing level, moving
// O(depth) statements per level — quadratic on the one-with-per-level IR
// const-arg recursion produces (measured 0.2 s at depth 10k, and the
// dominant opt cost). The machine walks the whole singleton-With chain
// up front and concatenates each level's flattened with-block once:
// linear, and byte-identical output (flattening maps statements
// elementwise, so a do-block is a singleton With after flattening iff it
// was one before).
//===----------------------------------------------------------------------===//

class WithDoFlattener {
public:
  CoreStmtList run(const CoreStmtList &Stmts) {
    CoreStmtList Result;
    pushFrame(&Stmts, Frame::Deliver::Root);
    while (!Frames.empty()) {
      Frame &F = *Frames.back();
      if (F.Idx == F.In->size()) {
        deliver(F, Result);
        Frames.pop_back();
        continue;
      }
      step(F);
    }
    return Result;
  }

private:
  struct Frame {
    enum class Deliver : uint8_t { Root, Staged, Merged };
    const CoreStmtList *In = nullptr;
    size_t Idx = 0;
    uint8_t Phase = 0;
    /// The singleton-With chain of the current item (With only):
    /// Chain[0] is the item itself, each next element the sole With in
    /// the previous one's do-block.
    std::vector<const CoreStmt *> Chain;
    size_t ChainIdx = 0;
    CoreStmtList MergedBody; ///< Concatenated flattened with-blocks.
    CoreStmtList Staged;     ///< Child result (if-body / final do-body).
    CoreStmtList Out;
    Deliver D = Deliver::Root;
  };

  void pushFrame(const CoreStmtList *In, Frame::Deliver D) {
    auto F = std::make_unique<Frame>();
    F->In = In;
    F->D = D;
    Frames.push_back(std::move(F));
  }

  void deliver(Frame &F, CoreStmtList &Result) {
    if (F.D == Frame::Deliver::Root) {
      Result = std::move(F.Out);
      return;
    }
    Frame &Parent = *Frames[Frames.size() - 2];
    if (F.D == Frame::Deliver::Staged) {
      Parent.Staged = std::move(F.Out);
      return;
    }
    for (auto &S : F.Out)
      Parent.MergedBody.push_back(std::move(S));
  }

  void advance(Frame &F) {
    ++F.Idx;
    F.Phase = 0;
    F.Chain.clear();
    F.ChainIdx = 0;
    F.MergedBody.clear();
    F.Staged.clear();
  }

  void step(Frame &F) {
    const CoreStmt &S = *(*F.In)[F.Idx];
    switch (S.K) {
    case CoreStmt::Kind::If:
      if (F.Phase == 0) {
        F.Phase = 1;
        pushFrame(&S.Body, Frame::Deliver::Staged);
        return;
      }
      F.Out.push_back(CoreStmt::ifStmt(S.Name, std::move(F.Staged)));
      advance(F);
      return;

    case CoreStmt::Kind::With: {
      if (F.Phase == 0) {
        // Collect the whole singleton-With chain once.
        const CoreStmt *N = &S;
        F.Chain.push_back(N);
        while (N->DoBody.size() == 1 &&
               N->DoBody[0]->K == CoreStmt::Kind::With) {
          N = N->DoBody[0].get();
          F.Chain.push_back(N);
        }
        F.ChainIdx = 0;
        F.Phase = 1;
      }
      if (F.Phase == 1) {
        if (F.ChainIdx < F.Chain.size()) {
          // Flatten the next level's with-block straight onto the
          // merged body.
          const CoreStmt *Level = F.Chain[F.ChainIdx++];
          pushFrame(&Level->Body, Frame::Deliver::Merged);
          return;
        }
        F.Phase = 2;
        pushFrame(&F.Chain.back()->DoBody, Frame::Deliver::Staged);
        return;
      }
      F.Out.push_back(
          CoreStmt::with(std::move(F.MergedBody), std::move(F.Staged)));
      advance(F);
      return;
    }

    default:
      F.Out.push_back(S.clone());
      advance(F);
      return;
    }
  }

  std::vector<std::unique_ptr<Frame>> Frames;
};

} // namespace

CoreStmtList optimizeStmts(const CoreStmtList &Stmts,
                           const SpireOptions &Options, NameGen &Names,
                           const TypeContext &Types) {
  Rewriter R(Options, Names, Types);
  CoreStmtList Out = R.rewriteStmts(Stmts);
  if (Options.FlattenWithDo)
    Out = WithDoFlattener().run(Out);
  return Out;
}

CoreProgram optimizeProgram(const CoreProgram &Program,
                            const SpireOptions &Options) {
  if (!Options.ConditionalFlattening && !Options.ConditionalNarrowing &&
      !Options.FlattenWithDo)
    return Program.clone();
  // Copy the program shell only; the rewrite produces the new body, so
  // cloning the old one (to immediately replace it) would walk and copy
  // the whole IR a third time.
  CoreProgram Out = Program.cloneShell();
  NameGen Names;
  Out.Body = optimizeStmts(Program.Body, Options, Names, *Program.Types);
  return Out;
}

} // namespace spire::opt

#include "opt/Spire.h"

#include <cassert>

using namespace spire::ir;

namespace spire::opt {

namespace {

class Rewriter {
public:
  Rewriter(const SpireOptions &Options, NameGen &Names,
           const TypeContext &Types)
      : Options(Options), Names(Names), Types(Types) {}

  /// Appends the rewrite of S to Out (one statement may become several
  /// because of the if-splitting rule).
  void rewriteStmt(const CoreStmt &S, CoreStmtList &Out) {
    switch (S.K) {
    case CoreStmt::Kind::If:
      rewriteIf(S.Name, S.Body, Out);
      return;
    case CoreStmt::Kind::With: {
      Out.push_back(
          CoreStmt::with(rewriteStmts(S.Body), rewriteStmts(S.DoBody)));
      return;
    }
    default:
      Out.push_back(S.clone());
      return;
    }
  }

  CoreStmtList rewriteStmts(const CoreStmtList &Stmts) {
    CoreStmtList Out;
    for (const auto &S : Stmts)
      rewriteStmt(*S, Out);
    return Out;
  }

private:
  /// Rewrites `if x { Body }` elementwise, following the paper's Fig. 22.
  void rewriteIf(const std::string &X, const CoreStmtList &Body,
                 CoreStmtList &Out) {
    for (const auto &Sub : Body) {
      switch (Sub->K) {
      case CoreStmt::Kind::With: {
        if (Options.ConditionalNarrowing) {
          // if x { with { s1 } do { s2 } } ~> with { s1 } do { if x {s2} }
          CoreStmtList Narrowed;
          rewriteIf(X, Sub->DoBody, Narrowed);
          Out.push_back(
              CoreStmt::with(rewriteStmts(Sub->Body), std::move(Narrowed)));
          continue;
        }
        if (Options.ConditionalFlattening) {
          // Narrowing is off: distribute the condition through the block
          // instead — if x { with {s1} do {s2} } becomes
          // with { if x {s1} } do { if x {s2} }. Both sides expand to
          // if x {s1}; if x {s2}; if x {I[s1]} (the Section 6.1
          // if-splitting rule applied to the with-do expansion), so no
          // control bits are saved here, but nested ifs inside the
          // do-block become visible to flattening — which is what makes
          // conditional flattening alone asymptotically effective
          // (Section 8.2's 88.2% figure).
          CoreStmtList GuardedWith, GuardedDo;
          rewriteIf(X, Sub->Body, GuardedWith);
          rewriteIf(X, Sub->DoBody, GuardedDo);
          Out.push_back(CoreStmt::with(std::move(GuardedWith),
                                       std::move(GuardedDo)));
          continue;
        }
        break;
      }
      case CoreStmt::Kind::If: {
        if (Options.ConditionalFlattening) {
          // if x { if y { s } } ~> with { z <- x && y } do { if z { s } }
          std::string Z = Names.fresh("cf");
          const ast::Type *Bool = Types.boolType();
          CoreStmtList WithBody;
          WithBody.push_back(CoreStmt::assign(
              Z, Bool,
              CoreExpr::binary(ast::BinaryOp::And, Atom::var(X, Bool),
                               Atom::var(Sub->Name, Bool), Bool)));
          CoreStmtList Flattened;
          rewriteIf(Z, Sub->Body, Flattened);
          Out.push_back(
              CoreStmt::with(std::move(WithBody), std::move(Flattened)));
          continue;
        }
        break;
      }
      default:
        break;
      }
      // Fallback: keep the statement under a single-statement if, with
      // its interior rewritten (the if-splitting rule of Section 6.1).
      CoreStmtList Inner;
      rewriteStmt(*Sub, Inner);
      // rewriteStmt can fan out (splitting); wrap each piece.
      for (auto &Piece : Inner) {
        CoreStmtList One;
        One.push_back(std::move(Piece));
        Out.push_back(CoreStmt::ifStmt(X, std::move(One)));
      }
    }
  }

  const SpireOptions &Options;
  NameGen &Names;
  const TypeContext &Types;
};

/// Bottom-up with-do flattening:
///   with { a } do { with { b } do { c } } ~> with { a; b } do { c }
/// (both expand to a; b; c; I[b]; I[a]).
CoreStmtPtr flattenWithDoStmt(const CoreStmt &S);

CoreStmtList flattenWithDoStmts(const CoreStmtList &Stmts) {
  CoreStmtList Out;
  Out.reserve(Stmts.size());
  for (const auto &S : Stmts)
    Out.push_back(flattenWithDoStmt(*S));
  return Out;
}

CoreStmtPtr flattenWithDoStmt(const CoreStmt &S) {
  switch (S.K) {
  case CoreStmt::Kind::If:
    return CoreStmt::ifStmt(S.Name, flattenWithDoStmts(S.Body));
  case CoreStmt::Kind::With: {
    CoreStmtList Body = flattenWithDoStmts(S.Body);
    CoreStmtList DoBody = flattenWithDoStmts(S.DoBody);
    while (DoBody.size() == 1 && DoBody[0]->K == CoreStmt::Kind::With) {
      CoreStmtPtr Inner = std::move(DoBody[0]);
      for (auto &B : Inner->Body)
        Body.push_back(std::move(B));
      DoBody = std::move(Inner->DoBody);
    }
    return CoreStmt::with(std::move(Body), std::move(DoBody));
  }
  default:
    return S.clone();
  }
}

} // namespace

CoreStmtList optimizeStmts(const CoreStmtList &Stmts,
                           const SpireOptions &Options, NameGen &Names,
                           const TypeContext &Types) {
  Rewriter R(Options, Names, Types);
  CoreStmtList Out = R.rewriteStmts(Stmts);
  if (Options.FlattenWithDo)
    Out = flattenWithDoStmts(Out);
  return Out;
}

CoreProgram optimizeProgram(const CoreProgram &Program,
                            const SpireOptions &Options) {
  CoreProgram Out = Program.clone();
  if (!Options.ConditionalFlattening && !Options.ConditionalNarrowing &&
      !Options.FlattenWithDo)
    return Out;
  NameGen Names;
  Out.Body = optimizeStmts(Program.Body, Options, Names, *Program.Types);
  return Out;
}

} // namespace spire::opt

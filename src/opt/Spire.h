//===----------------------------------------------------------------------===//
///
/// \file
/// Spire's program-level optimizations (paper Section 6, Appendix C).
///
/// Conditional flattening (6.1):
///   if x { if y { s } }  ~>  with { x' <- x && y } do { if x' { s } }
///   if x { s1; s2 }      ~>  if x { s1 }; if x { s2 }
///
/// Conditional narrowing (6.2):
///   if x { with { s1 } do { s2 } }  ~>  with { s1 } do { if x { s2 } }
///
/// The pass structure is a direct transliteration of the paper's 12-line
/// OCaml (Fig. 22): the body of every if-statement is mapped elementwise,
/// rewriting nested ifs and with-do blocks and recursing. A subsequent
/// pass flattens nested with-do blocks (Section 7: "a simple compiler
/// pass that flattens the structure of with-do blocks").
///
/// Both rewrites preserve circuit semantics (Theorems 6.3 and 6.5); the
/// test suite validates this by interpretation on random machine states.
///
/// When flattening is enabled without narrowing, an if over a with-do
/// block distributes instead of narrowing:
///   if x { with { s1 } do { s2 } }
///     ~>  with { if x { s1 } } do { if x { s2 } }
/// (sound: both sides expand to if x {s1}; if x {s2}; if x {I[s1]}).
/// Distribution saves nothing by itself but exposes the ifs inside
/// do-blocks to the flattening rule; it is what makes conditional
/// flattening *alone* asymptotically effective (Section 8.2 reports
/// 88.2% for CF alone on length-simplified; this implementation
/// measures 88.4%).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_OPT_SPIRE_H
#define SPIRE_OPT_SPIRE_H

#include "ir/Core.h"

namespace spire::opt {

struct SpireOptions {
  bool ConditionalFlattening = true;
  bool ConditionalNarrowing = true;
  /// Merge with { a } do { with { b } do { c } } into with { a; b } do
  /// { c } after the rewrites (cosmetic; identical expansion).
  bool FlattenWithDo = true;

  static SpireOptions none() { return {false, false, false}; }
  static SpireOptions flatteningOnly() { return {true, false, true}; }
  static SpireOptions narrowingOnly() { return {false, true, true}; }
  static SpireOptions all() { return {true, true, true}; }
};

/// Rewrites a statement list under the given options. `Names` supplies
/// fresh variables for flattening temporaries.
ir::CoreStmtList optimizeStmts(const ir::CoreStmtList &Stmts,
                               const SpireOptions &Options,
                               ir::NameGen &Names,
                               const ir::TypeContext &Types);

/// Optimizes a whole lowered program, returning a rewritten copy.
ir::CoreProgram optimizeProgram(const ir::CoreProgram &Program,
                                const SpireOptions &Options);

} // namespace spire::opt

#endif // SPIRE_OPT_SPIRE_H

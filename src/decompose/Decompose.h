//===----------------------------------------------------------------------===//
///
/// \file
/// Gate-set lowering for error-corrected execution (paper Section 3.3):
///
///  * toToffoli: each MCX with c > 2 controls expands by the process of
///    Barenco et al. [1995] (paper Fig. 5) into 2(c-2)+1 Toffoli gates
///    using c-2 clean ancillas (an AND-ladder computed, used, and
///    uncomputed). Ancillas are shared across gates.
///  * toCliffordT: each Toffoli expands into the standard 7-T Clifford+T
///    sequence (paper Fig. 6; Nielsen & Chuang Fig. 4.9). A singly
///    controlled H is kept as the primitive CH of T-cost 8 (Lee et al.
///    2021), exactly as the cost model treats it; multiply controlled H
///    first reduces its controls through the same AND-ladder.
///
/// The counting rule of Section 8.1 (each MCX with c >= 2 controls is
/// 2(c-2)+1 Toffolis of 7 T each) is realized literally by these passes,
/// so countGates(...).TComplexity is invariant across them — a property
/// the test suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_DECOMPOSE_DECOMPOSE_H
#define SPIRE_DECOMPOSE_DECOMPOSE_H

#include "circuit/Gate.h"

namespace spire::decompose {

/// Expands every X gate to at most 2 controls (Clifford+Toffoli level)
/// and every H to at most 1 control. Adds shared ancilla qubits.
circuit::Circuit toToffoli(const circuit::Circuit &C);

/// Fully lowers to the Clifford+T gate set (with CH kept primitive).
/// Accepts any input level; large MCX gates are first run through
/// toToffoli.
circuit::Circuit toCliffordT(const circuit::Circuit &C);

/// Ancilla-free alternative to toToffoli (paper Section 9: "alternatives
/// to Figure 5 exist that use no extra qubits but use more T gates
/// [Barenco et al. 1995, Section 7]"). Each MCX with c > 2 controls is
/// expanded by the recursive split Lambda_c(X) = V W V W, where V
/// computes the conjunction of half the controls onto a *borrowed dirty*
/// wire of the circuit and W is the remaining smaller MCX; the toggling
/// cancels the borrowed wire's unknown state. Uses quadratically many
/// Toffolis in c but adds no qubits (except one ancilla in the
/// degenerate case of a gate touching every wire of the circuit).
/// Multiply-controlled H is handled by the same split, bottoming out at
/// the primitive CH.
circuit::Circuit toToffoliNoAncilla(const circuit::Circuit &C);

} // namespace spire::decompose

#endif // SPIRE_DECOMPOSE_DECOMPOSE_H

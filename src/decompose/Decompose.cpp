#include "decompose/Decompose.h"

#include <algorithm>
#include <cassert>

using namespace spire::circuit;

namespace spire::decompose {

namespace {

/// Emits the AND-ladder computing the conjunction of Controls into a
/// chain of ancillas starting at AncillaBase; returns the qubit holding
/// the full conjunction and appends the ladder gates to Out. The caller
/// re-emits the ladder in reverse to uncompute.
Qubit emitAndLadder(const ControlList &Controls, Qubit AncillaBase,
                    std::vector<Gate> &Out) {
  assert(Controls.size() >= 2 && "ladder needs at least two controls");
  Qubit Acc = AncillaBase;
  Out.push_back(Gate(GateKind::X, Acc, {Controls[0], Controls[1]}));
  for (size_t I = 2; I < Controls.size(); ++I) {
    Qubit Next = AncillaBase + static_cast<Qubit>(I - 1);
    Out.push_back(Gate(GateKind::X, Next, {Acc, Controls[I]}));
    Acc = Next;
  }
  return Acc;
}

} // namespace

Circuit toToffoli(const Circuit &C) {
  // Ancilla requirement: c-2 for an X with c > 2 controls, c-1 for an H
  // with c > 1 controls.
  unsigned MaxAncillas = 0;
  for (const Gate &G : C.Gates) {
    unsigned NC = G.numControls();
    if (G.Kind == GateKind::X && NC > 2)
      MaxAncillas = std::max(MaxAncillas, NC - 2);
    if (G.Kind == GateKind::H && NC > 1)
      MaxAncillas = std::max(MaxAncillas, NC - 1);
  }

  Circuit Out;
  Out.NumQubits = C.NumQubits + MaxAncillas;
  Qubit AncillaBase = C.NumQubits;

  for (const Gate &G : C.Gates) {
    unsigned NC = G.numControls();
    if (G.Kind == GateKind::X && NC > 2) {
      // Barenco Fig. 5: ladder over all controls but the last, then a
      // Toffoli of (ladder head, last control) onto the target.
      ControlList LadderControls(G.Controls.begin(),
                                 G.Controls.end() - 1);
      std::vector<Gate> Ladder;
      Qubit Head = emitAndLadder(LadderControls, AncillaBase, Ladder);
      for (const Gate &L : Ladder)
        Out.Gates.push_back(L);
      Out.Gates.push_back(
          Gate(GateKind::X, G.Target, {Head, G.Controls.back()}));
      for (auto It = Ladder.rbegin(); It != Ladder.rend(); ++It)
        Out.Gates.push_back(*It);
      continue;
    }
    if (G.Kind == GateKind::H && NC > 1) {
      std::vector<Gate> Ladder;
      Qubit Head = emitAndLadder(G.Controls, AncillaBase, Ladder);
      for (const Gate &L : Ladder)
        Out.Gates.push_back(L);
      Out.Gates.push_back(Gate(GateKind::H, G.Target, {Head}));
      for (auto It = Ladder.rbegin(); It != Ladder.rend(); ++It)
        Out.Gates.push_back(*It);
      continue;
    }
    Out.Gates.push_back(G);
  }
  return Out;
}

Circuit toCliffordT(const Circuit &C) {
  // Normalize to the Toffoli level first.
  bool NeedsToffoliPass = false;
  for (const Gate &G : C.Gates) {
    if ((G.Kind == GateKind::X && G.numControls() > 2) ||
        (G.Kind == GateKind::H && G.numControls() > 1)) {
      NeedsToffoliPass = true;
      break;
    }
  }
  Circuit Staged;
  const Circuit *InPtr = &C;
  if (NeedsToffoliPass) {
    Staged = toToffoli(C);
    InPtr = &Staged;
  }
  const Circuit &In = *InPtr;

  Circuit Out;
  Out.NumQubits = In.NumQubits;

  for (const Gate &G : In.Gates) {
    if (G.Kind == GateKind::X && G.numControls() == 2) {
      // Standard 7-T Toffoli (paper Fig. 6).
      Qubit A = G.Controls[0], B = G.Controls[1], T = G.Target;
      auto Add = [&](GateKind K, Qubit Target,
                     std::vector<Qubit> Controls = {}) {
        Out.Gates.push_back(Gate(K, Target, std::move(Controls)));
      };
      Add(GateKind::H, T);
      Add(GateKind::X, T, {B});
      Add(GateKind::Tdg, T);
      Add(GateKind::X, T, {A});
      Add(GateKind::T, T);
      Add(GateKind::X, T, {B});
      Add(GateKind::Tdg, T);
      Add(GateKind::X, T, {A});
      Add(GateKind::T, B);
      Add(GateKind::T, T);
      Add(GateKind::H, T);
      Add(GateKind::X, B, {A});
      Add(GateKind::T, A);
      Add(GateKind::Tdg, B);
      Add(GateKind::X, B, {A});
      continue;
    }
    Out.Gates.push_back(G);
  }
  return Out;
}

namespace {

/// Whether a gate of this kind and control count is a primitive of the
/// Clifford+Toffoli(+CH) level.
bool isNoAncillaBase(GateKind Kind, size_t NumControls) {
  return Kind == GateKind::X ? NumControls <= 2 : NumControls <= 1;
}

/// Recursively expands one gate by the dirty-borrow split V W V W (see
/// the header comment). `Kind` is X or H; `Controls`/`Target` describe
/// the gate; every wire of the circuit outside the gate's support may be
/// borrowed in an unknown state.
void expandDirty(GateKind Kind, const ControlList &Controls,
                 Qubit Target, unsigned NumQubits, std::vector<Gate> &Out) {
  if (isNoAncillaBase(Kind, Controls.size())) {
    Out.push_back(Gate(Kind, Target, Controls));
    return;
  }

  // Borrow any wire outside the gate's support as the dirty carrier.
  std::vector<bool> Used(NumQubits, false);
  Used[Target] = true;
  for (Qubit Q : Controls)
    Used[Q] = true;
  Qubit Aux = 0;
  while (Aux < NumQubits && Used[Aux])
    ++Aux;
  assert(Aux < NumQubits && "no borrowable wire; caller adds one");

  // Split the controls: V computes AND(First) onto Aux (toggling it), W
  // applies the gate under AND(Rest) and Aux. The V W V W sequence
  // applies the gate to the target exactly when both halves hold (an
  // even number of applications of a self-inverse gate is the identity),
  // and restores Aux to its unknown initial state.
  //
  // For X both halves must shrink, so the controls split evenly. For H
  // the W gate must bottom out at the primitive single-controlled CH, so
  // V takes every control (V is X-kind and terminates independently).
  size_t Half = Kind == GateKind::H ? Controls.size()
                                    : (Controls.size() + 1) / 2;
  ControlList First(Controls.begin(), Controls.begin() + Half);
  ControlList Rest(Controls.begin() + Half, Controls.end());
  Rest.push_back(Aux);

  for (int Round = 0; Round != 2; ++Round) {
    expandDirty(GateKind::X, First, Aux, NumQubits, Out);
    expandDirty(Kind, Rest, Target, NumQubits, Out);
  }
}

} // namespace

Circuit toToffoliNoAncilla(const Circuit &C) {
  // A gate whose support is the whole register has nothing to borrow;
  // only then is one extra wire added (shared by all such gates).
  bool NeedsSpare = false;
  for (const Gate &G : C.Gates)
    if (!isNoAncillaBase(G.Kind, G.numControls()) &&
        G.numControls() + 1 >= C.NumQubits)
      NeedsSpare = true;

  Circuit Out;
  Out.NumQubits = C.NumQubits + (NeedsSpare ? 1 : 0);
  for (const Gate &G : C.Gates) {
    if (isNoAncillaBase(G.Kind, G.numControls())) {
      Out.Gates.push_back(G);
      continue;
    }
    expandDirty(G.Kind, G.Controls, G.Target, Out.NumQubits, Out.Gates);
  }
  return Out;
}

} // namespace spire::decompose

#include "sema/TypeChecker.h"

#include "ast/Reverse.h"

#include <cassert>

using namespace spire::ast;

namespace spire::sema {

void collectFreeVars(const Expr &E, SymbolSet &Out) {
  if (E.K == Expr::Kind::Var)
    Out.insert(Symbol(E.Name));
  for (const auto &A : E.Args)
    collectFreeVars(*A, Out);
}

static void collectModStmt(const Stmt &S, SymbolSet &Out) {
  switch (S.K) {
  case Stmt::Kind::Let:
  case Stmt::Kind::UnLet:
    Out.insert(Symbol(S.Name));
    if (S.E->K == Expr::Kind::Call) {
      // Conservative: an inlined callee may modify its arguments.
      collectFreeVars(*S.E, Out);
    }
    break;
  case Stmt::Kind::Swap:
    Out.insert(Symbol(S.Name));
    Out.insert(Symbol(S.Name2));
    break;
  case Stmt::Kind::MemSwap:
    Out.insert(Symbol(S.Name2));
    break;
  case Stmt::Kind::Hadamard:
    Out.insert(Symbol(S.Name));
    break;
  case Stmt::Kind::If:
  case Stmt::Kind::With:
    for (const auto &Sub : S.Body)
      collectModStmt(*Sub, Out);
    for (const auto &Sub : S.ElseBody)
      collectModStmt(*Sub, Out);
    break;
  case Stmt::Kind::Skip:
    break;
  }
}

SymbolSet collectModSet(const StmtList &Stmts) {
  SymbolSet Out;
  for (const auto &S : Stmts)
    collectModStmt(*S, Out);
  return Out;
}

const TypeChecker::Binding *TypeChecker::lookup(Symbol Name) const {
  for (auto It = Context.rbegin(); It != Context.rend(); ++It)
    if (It->Name == Name)
      return &*It;
  return nullptr;
}

bool TypeChecker::declare(Symbol Name, const Type *Ty,
                          support::SourceLoc Loc) {
  if (const Binding *Existing = lookup(Name)) {
    // Re-declaration (paper Appendix B.1, first change): allowed, but the
    // variable reuses the original qubits, so the width must agree; we
    // require type equality.
    if (!Types.typesEqual(Existing->Ty, Ty)) {
      Diags.error(Loc, "re-declaration of '" + Name.str() + "' with type " +
                           Ty->str() + " conflicts with existing type " +
                           Existing->Ty->str());
      return false;
    }
  }
  Context.push_back({Name, Ty});
  return true;
}

bool TypeChecker::undeclare(Symbol Name, const Type *Ty,
                            support::SourceLoc Loc) {
  for (auto It = Context.rbegin(); It != Context.rend(); ++It) {
    if (It->Name != Name)
      continue;
    if (!Types.typesEqual(It->Ty, Ty)) {
      Diags.error(Loc, "un-assignment of '" + Name.str() + "' at type " +
                           Ty->str() + " conflicts with declared type " +
                           It->Ty->str());
      return false;
    }
    Context.erase(std::next(It).base());
    return true;
  }
  Diags.error(Loc,
              "un-assignment of undeclared variable '" + Name.str() + "'");
  return false;
}

SymbolSet TypeChecker::domain() const {
  SymbolSet Dom;
  for (const Binding &B : Context)
    Dom.insert(B.Name);
  return Dom;
}

bool TypeChecker::check() {
  bool OK = true;
  for (FunDecl &F : Program.Functions)
    OK = checkFunction(F) && OK;
  return OK;
}

bool TypeChecker::checkFunction(FunDecl &F) {
  Context.clear();
  CurrentFunction = &F;
  AssumedSelfReturn = nullptr;
  for (const auto &[Name, Ty] : F.Params)
    Context.push_back({Name, Ty});

  // A declared return type makes recursive calls typeable even when they
  // bind fresh variables.
  if (F.ReturnTy)
    ReturnTypes[F.Name] = F.ReturnTy;

  if (!checkStmts(F.Body))
    return false;

  const Binding *Ret = lookup(F.ReturnVar);
  if (!Ret) {
    Diags.error(F.Loc, "function '" + F.Name + "' returns undeclared "
                       "variable '" + F.ReturnVar + "'");
    return false;
  }
  if (AssumedSelfReturn && !Types.typesEqual(AssumedSelfReturn, Ret->Ty)) {
    Diags.error(F.Loc, "recursive calls to '" + F.Name + "' were assumed to "
                       "return " + AssumedSelfReturn->str() +
                       " but the function returns " + Ret->Ty->str());
    return false;
  }
  if (F.ReturnTy && !Types.typesEqual(F.ReturnTy, Ret->Ty)) {
    Diags.error(F.Loc, "function '" + F.Name + "' declares return type " +
                       F.ReturnTy->str() + " but returns " + Ret->Ty->str());
    return false;
  }
  ReturnTypes[F.Name] = Ret->Ty;
  return true;
}

bool TypeChecker::checkStmts(StmtList &Stmts) {
  for (auto &S : Stmts)
    if (!checkStmt(*S))
      return false;
  return true;
}

bool TypeChecker::checkStmt(Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Skip:
    return true;

  case Stmt::Kind::Let: {
    const Binding *Existing = lookup(S.nameSym());
    const Type *Ty = checkExpr(*S.E, Existing ? Existing->Ty : nullptr);
    if (!Ty)
      return false;
    return declare(S.nameSym(), Ty, S.Loc);
  }

  case Stmt::Kind::UnLet: {
    const Binding *Existing = lookup(S.nameSym());
    if (!Existing) {
      Diags.error(S.Loc, "un-assignment of undeclared variable '" + S.Name +
                             "'");
      return false;
    }
    const Type *Ty = checkExpr(*S.E, Existing->Ty);
    if (!Ty)
      return false;
    return undeclare(S.nameSym(), Ty, S.Loc);
  }

  case Stmt::Kind::Swap: {
    const Binding *A = lookup(S.nameSym());
    const Binding *B = lookup(S.name2Sym());
    if (!A || !B) {
      Diags.error(S.Loc, "swap of undeclared variable '" +
                             (A ? S.Name2 : S.Name) + "'");
      return false;
    }
    if (!Types.typesEqual(A->Ty, B->Ty)) {
      Diags.error(S.Loc, "swap between mismatched types " + A->Ty->str() +
                             " and " + B->Ty->str());
      return false;
    }
    return true;
  }

  case Stmt::Kind::MemSwap: {
    const Binding *P = lookup(S.nameSym());
    const Binding *V = lookup(S.name2Sym());
    if (!P || !V) {
      Diags.error(S.Loc, "memory swap of undeclared variable '" +
                             (P ? S.Name2 : S.Name) + "'");
      return false;
    }
    const Type *PTy = Types.resolveTopLevel(P->Ty);
    if (!PTy->isPtr()) {
      Diags.error(S.Loc, "left side of '*x <-> y' must be a pointer, got " +
                             P->Ty->str());
      return false;
    }
    if (!Types.typesEqual(PTy->pointee(), V->Ty)) {
      Diags.error(S.Loc, "memory swap stores " + V->Ty->str() +
                             " through pointer to " + PTy->pointee()->str());
      return false;
    }
    return true;
  }

  case Stmt::Kind::Hadamard: {
    const Binding *X = lookup(S.nameSym());
    if (!X) {
      Diags.error(S.Loc, "h() of undeclared variable '" + S.Name + "'");
      return false;
    }
    if (!Types.resolveTopLevel(X->Ty)->isBool()) {
      Diags.error(S.Loc, "h() requires a bool variable, got " +
                             X->Ty->str());
      return false;
    }
    return true;
  }

  case Stmt::Kind::If: {
    const Type *CondTy = checkExpr(*S.E);
    if (!CondTy)
      return false;
    if (!Types.resolveTopLevel(CondTy)->isBool()) {
      Diags.error(S.Loc, "if condition must be bool, got " + CondTy->str());
      return false;
    }
    // S-If side condition: free variables of the condition may not be
    // modified by either branch.
    SymbolSet Free;
    collectFreeVars(*S.E, Free);
    SymbolSet Mod = collectModSet(S.Body);
    for (Symbol M : collectModSet(S.ElseBody))
      Mod.insert(M);
    for (Symbol Name : Free) {
      if (Mod.count(Name)) {
        Diags.error(S.Loc, "if condition variable '" + Name.str() +
                               "' is modified inside the conditional body");
        return false;
      }
    }
    // S-If side condition: dom G is preserved (branches may add bindings
    // but may not consume outer ones).
    SymbolSet Before = domain();
    if (!checkStmts(S.Body))
      return false;
    // The else branch type-checks in the context left by the then branch,
    // matching the sequential desugaring if x { s1 }; if !x { s2 }.
    if (!checkStmts(S.ElseBody))
      return false;
    SymbolSet After = domain();
    for (Symbol Name : Before) {
      if (!After.count(Name)) {
        Diags.error(S.Loc, "conditional body consumes outer variable '" +
                               Name.str() + "'");
        return false;
      }
    }
    return true;
  }

  case Stmt::Kind::With: {
    // with { s1 } do { s2 } expands to s1; s2; I[s1]; check exactly that.
    if (!checkStmts(S.Body))
      return false;
    if (!checkStmts(S.ElseBody))
      return false;
    StmtList Reversed = reverseStmts(S.Body);
    if (!checkStmts(Reversed))
      return false;
    return true;
  }
  }
  return false;
}

const Type *TypeChecker::checkExpr(Expr &E, const Type *Expected) {
  auto Annotate = [&](const Type *Ty) -> const Type * {
    E.Ty = Ty;
    return Ty;
  };

  switch (E.K) {
  case Expr::Kind::Var: {
    const Binding *B = lookup(E.nameSym());
    if (!B) {
      Diags.error(E.Loc, "use of undeclared variable '" + E.Name + "'");
      return nullptr;
    }
    return Annotate(B->Ty);
  }
  case Expr::Kind::UIntLit:
    return Annotate(Types.uintType());
  case Expr::Kind::BoolLit:
    return Annotate(Types.boolType());
  case Expr::Kind::UnitLit:
    return Annotate(Types.unitType());
  case Expr::Kind::NullLit: {
    if (E.Ty)
      return E.Ty;
    if (Expected && Types.resolveTopLevel(Expected)->isPtr())
      return Annotate(Expected);
    Diags.error(E.Loc, "cannot infer the pointer type of 'null' here");
    return nullptr;
  }
  case Expr::Kind::Default:
    return Annotate(E.TypeArg);
  case Expr::Kind::AllocCell:
    return Annotate(Types.ptrType(E.TypeArg));
  case Expr::Kind::Tuple: {
    const Type *A = checkExpr(*E.Args[0]);
    if (!A)
      return nullptr;
    const Type *B = checkExpr(*E.Args[1]);
    if (!B)
      return nullptr;
    return Annotate(Types.pairType(A, B));
  }
  case Expr::Kind::Proj: {
    const Type *BaseTy = checkExpr(*E.Args[0]);
    if (!BaseTy)
      return nullptr;
    const Type *R = Types.resolveTopLevel(BaseTy);
    if (!R->isPair()) {
      Diags.error(E.Loc, "projection from non-pair type " + BaseTy->str());
      return nullptr;
    }
    return Annotate(E.ProjIndex == 1 ? R->first() : R->second());
  }
  case Expr::Kind::Unary: {
    const Type *A = checkExpr(*E.Args[0]);
    if (!A)
      return nullptr;
    const Type *R = Types.resolveTopLevel(A);
    if (E.UOp == UnaryOp::Not) {
      if (!R->isBool()) {
        Diags.error(E.Loc, "'not' requires bool, got " + A->str());
        return nullptr;
      }
      return Annotate(Types.boolType());
    }
    // TE-Test: uint or pointer operand.
    if (!R->isUInt() && !R->isPtr()) {
      Diags.error(E.Loc, "'test' requires uint or pointer, got " + A->str());
      return nullptr;
    }
    return Annotate(Types.boolType());
  }
  case Expr::Kind::Binary: {
    switch (E.BOp) {
    case BinaryOp::And:
    case BinaryOp::Or: {
      const Type *A = checkExpr(*E.Args[0]);
      const Type *B = A ? checkExpr(*E.Args[1]) : nullptr;
      if (!A || !B)
        return nullptr;
      if (!Types.resolveTopLevel(A)->isBool() ||
          !Types.resolveTopLevel(B)->isBool()) {
        Diags.error(E.Loc, "logical operator requires bool operands");
        return nullptr;
      }
      return Annotate(Types.boolType());
    }
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul: {
      const Type *A = checkExpr(*E.Args[0]);
      const Type *B = A ? checkExpr(*E.Args[1]) : nullptr;
      if (!A || !B)
        return nullptr;
      if (!Types.resolveTopLevel(A)->isUInt() ||
          !Types.resolveTopLevel(B)->isUInt()) {
        Diags.error(E.Loc, "arithmetic requires uint operands");
        return nullptr;
      }
      return Annotate(Types.uintType());
    }
    case BinaryOp::Lt: {
      const Type *A = checkExpr(*E.Args[0]);
      const Type *B = A ? checkExpr(*E.Args[1]) : nullptr;
      if (!A || !B)
        return nullptr;
      if (!Types.resolveTopLevel(A)->isUInt() ||
          !Types.resolveTopLevel(B)->isUInt()) {
        Diags.error(E.Loc, "comparison requires uint operands");
        return nullptr;
      }
      return Annotate(Types.boolType());
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      // Check the non-null side first so an unannotated null can take its
      // type from the other operand.
      Expr &L = *E.Args[0];
      Expr &R = *E.Args[1];
      const Type *A, *B;
      if (L.K == Expr::Kind::NullLit && R.K != Expr::Kind::NullLit) {
        B = checkExpr(R);
        A = B ? checkExpr(L, B) : nullptr;
      } else {
        A = checkExpr(L);
        B = A ? checkExpr(R, A) : nullptr;
      }
      if (!A || !B)
        return nullptr;
      const Type *RA = Types.resolveTopLevel(A);
      if (!Types.typesEqual(A, B)) {
        Diags.error(E.Loc, "equality between mismatched types " + A->str() +
                               " and " + B->str());
        return nullptr;
      }
      if (!RA->isUInt() && !RA->isPtr() && !RA->isBool()) {
        Diags.error(E.Loc, "equality requires uint, bool, or pointer "
                           "operands");
        return nullptr;
      }
      return Annotate(Types.boolType());
    }
    }
    return nullptr;
  }
  case Expr::Kind::Call: {
    const FunDecl *Callee = Program.findFunction(E.Name);
    if (!Callee) {
      Diags.error(E.Loc, "call to undefined function '" + E.Name + "'");
      return nullptr;
    }
    if (Callee->SizeParam.empty() != (E.SizeArg == nullptr)) {
      Diags.error(E.Loc, E.SizeArg
                             ? "function '" + E.Name +
                                   "' takes no size argument"
                             : "function '" + E.Name +
                                   "' requires a size argument");
      return nullptr;
    }
    if (E.Args.size() != Callee->Params.size()) {
      Diags.error(E.Loc, "call to '" + E.Name + "' with " +
                             std::to_string(E.Args.size()) +
                             " arguments; expected " +
                             std::to_string(Callee->Params.size()));
      return nullptr;
    }
    for (size_t I = 0; I != E.Args.size(); ++I) {
      const Type *ArgTy = checkExpr(*E.Args[I], Callee->Params[I].second);
      if (!ArgTy)
        return nullptr;
      if (!Types.typesEqual(ArgTy, Callee->Params[I].second)) {
        Diags.error(E.Loc, "argument " + std::to_string(I + 1) + " of '" +
                               E.Name + "' has type " + ArgTy->str() +
                               "; expected " +
                               Callee->Params[I].second->str());
        return nullptr;
      }
    }
    // Return type: known for previously checked functions; for recursive
    // self-calls, adopt the expected type and verify at function end.
    auto It = ReturnTypes.find(E.nameSym());
    if (It != ReturnTypes.end())
      return Annotate(It->second);
    if (CurrentFunction && E.Name == CurrentFunction->Name) {
      if (!Expected) {
        Diags.error(E.Loc, "cannot infer the return type of recursive call "
                           "to '" + E.Name + "'");
        return nullptr;
      }
      if (AssumedSelfReturn &&
          !Types.typesEqual(AssumedSelfReturn, Expected)) {
        Diags.error(E.Loc, "inconsistent assumed return types for "
                           "recursive calls to '" + E.Name + "'");
        return nullptr;
      }
      AssumedSelfReturn = Expected;
      return Annotate(Expected);
    }
    Diags.error(E.Loc, "function '" + E.Name +
                           "' must be defined before it is called");
    return nullptr;
  }
  }
  return nullptr;
}

bool typeCheck(Program &Prog, support::DiagnosticEngine &Diags) {
  TypeChecker Checker(Prog, Diags);
  return Checker.check();
}

} // namespace spire::sema

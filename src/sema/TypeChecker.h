//===----------------------------------------------------------------------===//
///
/// \file
/// Type checker for Tower surface programs, implementing the typing rules of
/// the paper's Appendix B.1 (Figs. 18-20), including the two extensions the
/// paper makes to Yuan & Carbin [2022]: re-declaration of a variable in the
/// same scope (S-Assign with an existing binding) and the H(x) rule
/// (S-Hadamard). Also enforces the S-If side conditions: the condition is
/// boolean, its free variables are disjoint from mod(s), and dom G is
/// preserved across the body.
///
/// On success the checker annotates every expression node's `Ty` field with
/// its inferred type (used by the lowering stage) and records the return
/// type of every function.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SEMA_TYPECHECKER_H
#define SPIRE_SEMA_TYPECHECKER_H

#include "ast/AST.h"
#include "support/Diagnostics.h"
#include "support/Symbol.h"

#include <map>
#include <string>

namespace spire::sema {

using support::Symbol;
using support::SymbolSet;

/// Collects the names a statement sequence may modify, following mod(s)
/// from Fig. 20 (extended conservatively to surface constructs: a call
/// counts its bound variable and all argument variables as modified).
/// Surface names are interned here — the set the lowerer caches per
/// callee is a flat sorted SymbolSet, not a tree of strings.
SymbolSet collectModSet(const ast::StmtList &Stmts);

/// Collects the free variable names of an expression.
void collectFreeVars(const ast::Expr &E, SymbolSet &Out);

/// Checks a whole program. Returns true on success. Expression nodes are
/// annotated in place.
class TypeChecker {
public:
  TypeChecker(ast::Program &Program, support::DiagnosticEngine &Diags)
      : Program(Program), Diags(Diags), Types(*Program.Types) {}

  bool check();

  /// Return type of a checked function.
  const ast::Type *returnTypeOf(const std::string &Name) const {
    auto It = ReturnTypes.find(Symbol(Name));
    return It == ReturnTypes.end() ? nullptr : It->second;
  }

private:
  struct Binding {
    Symbol Name;
    const ast::Type *Ty;
  };

  bool checkFunction(ast::FunDecl &F);
  bool checkStmts(ast::StmtList &Stmts);
  bool checkStmt(ast::Stmt &S);
  /// Checks an expression, optionally against an expected type used to
  /// resolve unannotated `null` literals and recursive call results.
  const ast::Type *checkExpr(ast::Expr &E,
                             const ast::Type *Expected = nullptr);

  const Binding *lookup(Symbol Name) const;
  bool declare(Symbol Name, const ast::Type *Ty, support::SourceLoc Loc);
  bool undeclare(Symbol Name, const ast::Type *Ty, support::SourceLoc Loc);
  SymbolSet domain() const;

  ast::Program &Program;
  support::DiagnosticEngine &Diags;
  ast::TypeContext &Types;
  std::vector<Binding> Context;
  std::map<Symbol, const ast::Type *> ReturnTypes;
  const ast::FunDecl *CurrentFunction = nullptr;
  const ast::Type *AssumedSelfReturn = nullptr;
};

/// Convenience: parse-and-check entry point used by tests.
bool typeCheck(ast::Program &Program, support::DiagnosticEngine &Diags);

} // namespace spire::sema

#endif // SPIRE_SEMA_TYPECHECKER_H

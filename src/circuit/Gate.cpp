#include "circuit/Gate.h"

#include <algorithm>

namespace spire::circuit {

void Gate::normalize() {
  std::sort(Controls.begin(), Controls.end());
  Controls.erase(std::unique(Controls.begin(), Controls.end()),
                 Controls.end());
  assert(std::find(Controls.begin(), Controls.end(), Target) ==
             Controls.end() &&
         "gate target cannot also be a control");
}

bool Gate::touches(Qubit Q) const {
  if (Target == Q)
    return true;
  return std::binary_search(Controls.begin(), Controls.end(), Q);
}

static const char *kindName(GateKind K) {
  switch (K) {
  case GateKind::X:
    return "X";
  case GateKind::H:
    return "H";
  case GateKind::T:
    return "T";
  case GateKind::Tdg:
    return "T*";
  case GateKind::S:
    return "S";
  case GateKind::Sdg:
    return "S*";
  case GateKind::Z:
    return "Z";
  }
  return "?";
}

std::string Gate::str() const {
  std::string Out = kindName(Kind);
  Out += " ";
  for (Qubit C : Controls) {
    Out += "q" + std::to_string(C) + " ";
  }
  Out += "q" + std::to_string(Target);
  return Out;
}

std::string Circuit::str() const {
  std::string Out =
      "circuit over " + std::to_string(NumQubits) + " qubits:\n";
  for (const Gate &G : Gates) {
    Out += "  " + G.str() + "\n";
  }
  return Out;
}

std::string checkGateOperands(Qubit Target, const Qubit *CtrlBegin,
                              const Qubit *CtrlEnd, unsigned NumQubits) {
  auto outOfRange = [&](Qubit Q) {
    return "qubit index " + std::to_string(Q) +
           " out of range for a circuit with " + std::to_string(NumQubits) +
           " wires";
  };
  if (NumQubits != 0 && Target >= NumQubits)
    return outOfRange(Target);
  for (const Qubit *C = CtrlBegin; C != CtrlEnd; ++C) {
    if (NumQubits != 0 && *C >= NumQubits)
      return outOfRange(*C);
    if (*C == Target)
      return "gate target repeats a control qubit";
  }
  return "";
}

int64_t tCostOfMCX(unsigned NumControls) {
  if (NumControls <= 1)
    return 0;
  return 7 * (2 * (static_cast<int64_t>(NumControls) - 2) + 1);
}

int64_t tCostOfControlledH(unsigned NumControls) {
  if (NumControls == 0)
    return 0;
  return 8 + 14 * (static_cast<int64_t>(NumControls) - 1);
}

GateCounts countGates(const Circuit &C) {
  GateCounts Counts;
  Counts.Qubits = C.NumQubits;
  for (const Gate &G : C.Gates) {
    ++Counts.Total;
    switch (G.Kind) {
    case GateKind::X:
      ++Counts.MCX;
      if (G.numControls() == 1)
        ++Counts.CNOT;
      if (G.numControls() == 2)
        ++Counts.Toffoli;
      Counts.TComplexity += tCostOfMCX(G.numControls());
      break;
    case GateKind::H:
      ++Counts.H;
      Counts.TComplexity += tCostOfControlledH(G.numControls());
      break;
    case GateKind::T:
    case GateKind::Tdg:
      ++Counts.T;
      ++Counts.TComplexity;
      break;
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::Z:
      break;
    }
  }
  return Counts;
}

int64_t tDepth(const Circuit &C) {
  // Per-qubit stage counter: a gate's stage is the maximum over the
  // qubits it touches; T-like gates advance it by one.
  std::vector<int64_t> Stage(C.NumQubits, 0);
  int64_t Result = 0;
  for (const Gate &G : C.Gates) {
    assert((G.Kind != GateKind::X || G.numControls() <= 2) &&
           "tDepth expects a Clifford+T-level circuit");
    int64_t S = Stage[G.Target];
    for (Qubit Q : G.Controls)
      S = std::max(S, Stage[Q]);
    if (G.isTLike())
      ++S;
    Stage[G.Target] = S;
    for (Qubit Q : G.Controls)
      Stage[Q] = S;
    Result = std::max(Result, S);
  }
  return Result;
}

} // namespace spire::circuit

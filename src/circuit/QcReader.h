//===----------------------------------------------------------------------===//
///
/// \file
/// Parsing of circuits in the `.qc` format of Mosca [2016] — the inverse
/// of QcWriter. Together they allow circuits produced by this compiler
/// (or by external tools that speak the same dialect, such as Feynman)
/// to be re-loaded, optimized by the qopt passes, and re-emitted.
///
/// The accepted dialect is the subset QcWriter produces: a `.v` line
/// naming the qubits, optional `.i`/`.o` lines (recorded but not
/// interpreted), and a BEGIN/END block of gates spelled `tof` (X with
/// the target last), `H`, `CH`, `T`, `T*`, `S`, `S*`, and `Z`
/// (multi-operand Z is controlled-Z, target last). Unknown qubit
/// names and malformed lines are reported through the diagnostic
/// engine. docs/formats.md specifies the dialect.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_QCREADER_H
#define SPIRE_CIRCUIT_QCREADER_H

#include "circuit/Gate.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>

namespace spire::circuit {

/// Parses `.qc` text into a circuit. Returns std::nullopt and reports
/// diagnostics on malformed input.
std::optional<Circuit> readQc(std::string_view Text,
                              support::DiagnosticEngine &Diags);

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_QCREADER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The straightforward compilation strategy from core IR to an MCX-level
/// quantum circuit, per the paper's Section 7 and Appendix B.2:
///
///  * Variables are register-allocated onto qubit ranges with a free list;
///    a re-declared variable reuses its original qubits, and the Appendix-D
///    pinning rule reserves the registers of variables used by an enclosing
///    with-block for the extent of its do-block.
///  * `if x { s }` compiles by adding x as a control bit to every gate
///    emitted for s (Fig. 21's "conditional execution"), which is exactly
///    the source of the control-flow T-complexity costs the paper studies.
///  * Arithmetic uses VBE-style ripple-carry adders; comparisons use
///    XOR-difference zero tests; multiplication is shift-and-add.
///  * `*x <-> y` expands the qRAM gate of Appendix B.2 into one
///    address-matched controlled word swap per heap cell.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_COMPILER_H
#define SPIRE_CIRCUIT_COMPILER_H

#include "circuit/Gate.h"
#include "circuit/Target.h"
#include "ir/Core.h"

#include <map>
#include <string>

namespace spire::circuit {

/// A contiguous range of qubits assigned to a variable or memory cell.
struct BitRange {
  Qubit Offset = 0;
  unsigned Width = 0;
};

/// Where everything ended up, for simulation and inspection.
struct CircuitLayout {
  static constexpr Qubit NoWire = 0xffffffffu;

  std::map<std::string, BitRange> Inputs;
  BitRange Output;
  Qubit MemBase = 0;
  unsigned CellBits = 0;
  unsigned HeapCells = 0;
  unsigned NumQubits = 0;
  /// Registers still holding a live variable when compilation ended —
  /// the inputs, the declared output, and any temporaries the program
  /// never un-assigned. Every other allocated wire is an ancilla or a
  /// released register and owes the compute/uncompute discipline a |0>
  /// at circuit exit; analysis::CleanSpec::forLayout builds that
  /// obligation from this exemption list.
  std::vector<BitRange> LiveAtExit;
  /// The constant-|1> ancilla of the popcount-uniform alloc-address
  /// writer: prepared by one X at circuit start and intentionally left
  /// at |1>. NoWire when the program allocates no heap cells.
  Qubit PreparedOneWire = NoWire;

  /// Qubit range of heap cell `Address` (1-based).
  BitRange cell(unsigned Address) const {
    return {static_cast<Qubit>(MemBase + (Address - 1) * CellBits), CellBits};
  }
};

struct CompileResult {
  Circuit Circ;
  CircuitLayout Layout;
};

/// Width in qubits of a qRAM cell for this program: the widest pointee
/// type ever stored through a pointer (at least 1).
unsigned cellBitsFor(const ir::CoreProgram &P, const TargetConfig &Config);

/// Compiles a lowered program to an MCX-level circuit.
CompileResult compileToCircuit(const ir::CoreProgram &P,
                               const TargetConfig &Config);

/// The gate shape a primitive statement compiles to, independent of where
/// its operands are placed: the control count of every X gate emitted plus
/// the control counts of every H gate. Used by the cost model to predict
/// T-complexity exactly (Theorems 5.1/5.2 instantiated with the real
/// implementation constants).
struct PrimitiveProfile {
  std::vector<unsigned> XControlCounts;
  std::vector<unsigned> HControlCounts;

  int64_t totalGates() const {
    return static_cast<int64_t>(XControlCounts.size() +
                                HControlCounts.size());
  }
  /// T-complexity of this shape when nested under `ExtraControls`
  /// additional control bits.
  int64_t tComplexityUnder(unsigned ExtraControls) const;
};

/// Profiles one primitive (non-block) statement. `CellBits` must match the
/// value compileToCircuit would use for the enclosing program.
PrimitiveProfile profilePrimitive(const ir::CoreStmt &S,
                                  const ir::TypeContext &Types,
                                  const TargetConfig &Config,
                                  unsigned CellBits);

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_COMPILER_H

#include "circuit/QcReader.h"

#include "support/FaultInjector.h"
#include "support/Governor.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace spire::circuit {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::stringstream Stream(Line);
  std::string Token;
  while (Stream >> Token)
    Tokens.push_back(Token);
  return Tokens;
}

} // namespace

/// Adversarial inputs can declare absurd wire counts; everything past
/// this is rejected before it can size downstream structures.
constexpr unsigned MaxQcQubits = 1u << 24;

std::optional<Circuit> readQc(std::string_view Text,
                              support::DiagnosticEngine &Diags) {
  support::faultAlloc("read/qc");
  if (support::faultDiag("read/qc", Diags))
    return std::nullopt;

  Circuit C;
  std::map<std::string, Qubit> QubitByName;
  bool SawVars = false, InBody = false, SawEnd = false;
  unsigned LineNo = 0;

  std::stringstream Stream{std::string(Text)};
  std::string Line;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    // Governor checkpoint per line, with the growing gate list charged
    // against the gate cap so a huge input stops early.
    if (!support::Governor::poll() ||
        !support::Governor::pollGates(
            static_cast<int64_t>(C.Gates.size()))) {
      if (auto *G = support::Governor::current())
        G->report(Diags);
      return std::nullopt;
    }
    std::vector<std::string> Tokens = tokenize(Line);
    if (Tokens.empty())
      continue;
    support::SourceLoc Loc{LineNo, 1};

    auto LookupQubit = [&](const std::string &Name) -> std::optional<Qubit> {
      auto It = QubitByName.find(Name);
      if (It == QubitByName.end()) {
        Diags.error(Loc, "unknown qubit '" + Name + "'");
        return std::nullopt;
      }
      return It->second;
    };

    if (Tokens[0] == ".v" || Tokens[0] == ".i" || Tokens[0] == ".o") {
      if (InBody || SawEnd) {
        Diags.error(Loc, "directive '" + Tokens[0] +
                             "' must precede the BEGIN/END block");
        return std::nullopt;
      }
    }
    if (Tokens[0] == ".v") {
      SawVars = true;
      for (size_t I = 1; I != Tokens.size(); ++I) {
        if (QubitByName.count(Tokens[I])) {
          Diags.error(Loc, "duplicate qubit '" + Tokens[I] + "'");
          return std::nullopt;
        }
        if (C.NumQubits >= MaxQcQubits) {
          Diags.error(Loc, "too many qubits (limit " +
                               std::to_string(MaxQcQubits) + ")");
          return std::nullopt;
        }
        QubitByName[Tokens[I]] = C.NumQubits++;
      }
      continue;
    }
    if (Tokens[0] == ".i" || Tokens[0] == ".o") {
      // Input/output markers: validated for known names, not otherwise
      // interpreted (the reader has no register-level layout).
      for (size_t I = 1; I != Tokens.size(); ++I)
        if (!LookupQubit(Tokens[I]))
          return std::nullopt;
      continue;
    }
    if (Tokens[0] == "BEGIN") {
      if (!SawVars) {
        Diags.error(Loc, "BEGIN before any .v declaration");
        return std::nullopt;
      }
      InBody = true;
      continue;
    }
    if (Tokens[0] == "END") {
      InBody = false;
      SawEnd = true;
      continue;
    }
    if (!InBody) {
      Diags.error(Loc, "gate line '" + Tokens[0] +
                           "' outside a BEGIN/END block");
      return std::nullopt;
    }

    // Gate lines: operands are qubit names, target last.
    GateKind Kind;
    bool Controlled = false;
    if (Tokens[0] == "tof") {
      Kind = GateKind::X;
      Controlled = true;
    } else if (Tokens[0] == "H") {
      Kind = GateKind::H;
    } else if (Tokens[0] == "CH") {
      Kind = GateKind::H;
      Controlled = true;
    } else if (Tokens[0] == "T") {
      Kind = GateKind::T;
    } else if (Tokens[0] == "T*") {
      Kind = GateKind::Tdg;
    } else if (Tokens[0] == "S") {
      Kind = GateKind::S;
    } else if (Tokens[0] == "S*") {
      Kind = GateKind::Sdg;
    } else if (Tokens[0] == "Z") {
      // Multi-operand Z is controlled-Z (target last), matching the
      // writer and Feynman's ccz spelling `Z a b c`.
      Kind = GateKind::Z;
      Controlled = true;
    } else {
      Diags.error(Loc, "unknown gate '" + Tokens[0] + "'");
      return std::nullopt;
    }

    if (Tokens.size() < 2) {
      Diags.error(Loc, "gate '" + Tokens[0] + "' needs a target qubit");
      return std::nullopt;
    }
    if (!Controlled && Tokens.size() != 2) {
      Diags.error(Loc, "gate '" + Tokens[0] + "' takes exactly one qubit");
      return std::nullopt;
    }

    std::vector<Qubit> Operands;
    for (size_t I = 1; I != Tokens.size(); ++I) {
      std::optional<Qubit> Q = LookupQubit(Tokens[I]);
      if (!Q)
        return std::nullopt;
      Operands.push_back(*Q);
    }
    Qubit Target = Operands.back();
    Operands.pop_back();
    // A doubled control is the same single control (Gate::normalize
    // dedupes it); the shared operand check rejects a target repeating a
    // control — and any out-of-range index — with the same words every
    // reader and analysis::verifyCircuit use.
    std::string Bad =
        checkGateOperands(Target, Operands.data(),
                          Operands.data() + Operands.size(), C.NumQubits);
    if (!Bad.empty()) {
      Diags.error(Loc, Bad);
      return std::nullopt;
    }
    C.add(Gate(Kind, Target, std::move(Operands)));
  }

  if (!SawVars) {
    Diags.error(support::SourceLoc{LineNo, 1}, "missing .v declaration");
    return std::nullopt;
  }
  if (!SawEnd) {
    Diags.error(support::SourceLoc{LineNo, 1}, "missing END");
    return std::nullopt;
  }
  return C;
}

} // namespace spire::circuit

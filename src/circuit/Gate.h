//===----------------------------------------------------------------------===//
///
/// \file
/// Gate and circuit representation shared by the MCX-level, Toffoli-level,
/// and Clifford+T-level stages of the backend.
///
/// The MCX-level circuit uses X gates with arbitrary control lists (the
/// paper's "idealized gate set consisting of arbitrarily controllable
/// Clifford gates") plus possibly-controlled H. The Clifford+T level adds
/// T, Tdg, S, Sdg, Z. A controlled-H with exactly one control is kept as a
/// primitive whose T-cost is c_CH = 8 (Lee et al. 2021), exactly as the
/// paper's cost model treats it.
///
/// Post-decompose circuits are overwhelmingly CNOT/Toffoli, so `Gate`
/// stores its controls in a `ControlList` with two inline slots: the
/// whole backend (compile, decompose, legalize, optimize, count) handles
/// gates with <= 2 controls without touching the heap, and only true MCX
/// gates spill.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_GATE_H
#define SPIRE_CIRCUIT_GATE_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

namespace spire::circuit {

using Qubit = uint32_t;

/// A sorted list of control qubits with small-buffer storage: up to two
/// controls (NOT/CNOT/Toffoli/phases — everything a Clifford+T circuit
/// contains) live inline; only multiply-controlled gates allocate. The
/// interface is the subset of std::vector<Qubit> the backend uses, plus
/// equality against std::vector for tests.
class ControlList {
public:
  using value_type = Qubit;
  using iterator = Qubit *;
  using const_iterator = const Qubit *;

  static constexpr uint32_t InlineCapacity = 2;

  ControlList() = default;
  ControlList(std::initializer_list<Qubit> Qs) {
    append(Qs.begin(), Qs.end());
  }
  /*implicit*/ ControlList(const std::vector<Qubit> &Qs) {
    append(Qs.data(), Qs.data() + Qs.size());
  }
  template <typename It> ControlList(It First, It Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }
  ControlList(const ControlList &O) { append(O.begin(), O.end()); }
  ControlList(ControlList &&O) noexcept { stealFrom(O); }
  ControlList &operator=(const ControlList &O) {
    if (this == &O)
      return *this;
    Count = 0;
    append(O.begin(), O.end());
    return *this;
  }
  ControlList &operator=(ControlList &&O) noexcept {
    if (this == &O)
      return *this;
    if (!isInline())
      delete[] Data;
    stealFrom(O);
    return *this;
  }
  ~ControlList() {
    if (!isInline())
      delete[] Data;
  }

  iterator begin() { return Data; }
  iterator end() { return Data + Count; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  Qubit operator[](size_t I) const { return Data[I]; }
  Qubit &operator[](size_t I) { return Data[I]; }
  Qubit back() const { return Data[Count - 1]; }

  void push_back(Qubit Q) {
    if (Count == Cap)
      grow();
    Data[Count++] = Q;
  }
  /// Erases [First, Last), shifting the tail down (used by normalize()'s
  /// sort-unique).
  iterator erase(iterator First, iterator Last) {
    std::memmove(First, Last, (end() - Last) * sizeof(Qubit));
    Count -= static_cast<uint32_t>(Last - First);
    return First;
  }
  void clear() { Count = 0; }

  friend bool operator==(const ControlList &A, const ControlList &B) {
    return A.Count == B.Count &&
           std::memcmp(A.Data, B.Data, A.Count * sizeof(Qubit)) == 0;
  }
  friend bool operator!=(const ControlList &A, const ControlList &B) {
    return !(A == B);
  }
  friend bool operator==(const ControlList &A, const std::vector<Qubit> &B) {
    return A.Count == B.size() && std::equal(A.begin(), A.end(), B.begin());
  }
  friend bool operator==(const std::vector<Qubit> &A, const ControlList &B) {
    return B == A;
  }

private:
  bool isInline() const { return Data == InlineBuf; }
  void grow() {
    uint32_t NewCap = Cap * 2;
    Qubit *NewData = new Qubit[NewCap];
    std::memcpy(NewData, Data, Count * sizeof(Qubit));
    if (!isInline())
      delete[] Data;
    Data = NewData;
    Cap = NewCap;
  }
  void append(const Qubit *First, const Qubit *Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }
  /// Takes O's storage (heap buffer or inline copy); leaves O empty.
  /// Precondition: this object holds no heap buffer.
  void stealFrom(ControlList &O) {
    if (O.isInline()) {
      std::memcpy(InlineBuf, O.InlineBuf, sizeof(InlineBuf));
      Data = InlineBuf;
      Cap = InlineCapacity;
    } else {
      Data = O.Data;
      Cap = O.Cap;
      O.Data = O.InlineBuf;
      O.Cap = InlineCapacity;
    }
    Count = O.Count;
    O.Count = 0;
  }

  Qubit InlineBuf[InlineCapacity] = {0, 0};
  Qubit *Data = InlineBuf;
  uint32_t Count = 0;
  uint32_t Cap = InlineCapacity;
};

enum class GateKind : uint8_t {
  X,   ///< NOT / CNOT / Toffoli / MCX depending on control count.
  H,   ///< Hadamard; one control makes it the primitive CH.
  T,   ///< pi/4 phase.
  Tdg, ///< -pi/4 phase (T-complexity 1, paper footnote 3).
  S,   ///< pi/2 phase (Clifford).
  Sdg, ///< -pi/2 phase (Clifford).
  Z,   ///< pi phase (Clifford).
};

/// One gate: a kind, a target qubit, and a (possibly empty) sorted list of
/// positive control qubits.
struct Gate {
  GateKind Kind = GateKind::X;
  Qubit Target = 0;
  ControlList Controls;

  Gate() = default;
  Gate(GateKind Kind, Qubit Target, ControlList Controls = {})
      : Kind(Kind), Target(Target), Controls(std::move(Controls)) {
    normalize();
  }

  /// Tag for the emitter's hot path: the control list is already sorted
  /// and deduplicated, so construction skips normalize()'s re-sort.
  struct PresortedTag {};
  Gate(GateKind Kind, Qubit Target, ControlList Controls, PresortedTag)
      : Kind(Kind), Target(Target), Controls(std::move(Controls)) {}

  /// Sorts the control list so structural equality is canonical, and
  /// dedupes repeated controls (a doubled control is the same single
  /// control). The target repeating a control has no such reading and
  /// stays an assertion; readers diagnose it before construction.
  void normalize();

  unsigned numControls() const {
    return static_cast<unsigned>(Controls.size());
  }
  bool isMCX() const { return Kind == GateKind::X; }
  bool isToffoli() const { return Kind == GateKind::X && numControls() == 2; }
  bool isCNOT() const { return Kind == GateKind::X && numControls() == 1; }
  bool isPhase() const {
    return Kind == GateKind::T || Kind == GateKind::Tdg ||
           Kind == GateKind::S || Kind == GateKind::Sdg ||
           Kind == GateKind::Z;
  }
  /// T or Tdg: contributes 1 to the T-count.
  bool isTLike() const { return Kind == GateKind::T || Kind == GateKind::Tdg; }

  /// True when `Q` is the target or a control of this gate.
  bool touches(Qubit Q) const;

  /// Whether this gate is its own inverse (X, H, Z are; T and S are not).
  bool isSelfInverse() const {
    return Kind == GateKind::X || Kind == GateKind::H ||
           Kind == GateKind::Z;
  }

  std::string str() const;
  friend bool operator==(const Gate &A, const Gate &B) {
    return A.Kind == B.Kind && A.Target == B.Target &&
           A.Controls == B.Controls;
  }
};

/// A flat gate list over `NumQubits` wires.
struct Circuit {
  unsigned NumQubits = 0;
  std::vector<Gate> Gates;

  void add(Gate G) {
    assert(G.Target < NumQubits && "gate target out of range");
    Gates.push_back(std::move(G));
  }
  void addX(Qubit Target, ControlList Controls = {}) {
    add(Gate(GateKind::X, Target, std::move(Controls)));
  }
  void addH(Qubit Target, ControlList Controls = {}) {
    add(Gate(GateKind::H, Target, std::move(Controls)));
  }

  size_t size() const { return Gates.size(); }
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Gate counting (paper Section 8.1 methodology)
//===----------------------------------------------------------------------===//

/// T gates required to realize an MCX with `NumControls` controls via the
/// decompositions of Figs. 5 and 6: an MCX with c >= 2 controls expands to
/// 2(c-2)+1 Toffoli gates, each costing 7 T gates. NOT and CNOT are
/// Clifford and cost 0.
int64_t tCostOfMCX(unsigned NumControls);

/// T gates required for an H under `NumControls` controls: 0 uncontrolled,
/// c_CH = 8 for one control (Lee et al. 2021), and 8 + 14(c-1) for more
/// (an AND-ladder of c-1 Toffolis computed and uncomputed around a CH).
int64_t tCostOfControlledH(unsigned NumControls);

/// Counts of interest for a circuit at any stage.
struct GateCounts {
  int64_t Total = 0;     ///< All gates (the paper's MCX-complexity when the
                         ///< circuit is at the MCX level).
  int64_t MCX = 0;       ///< X-kind gates of any control count.
  int64_t Toffoli = 0;   ///< X-kind gates with exactly two controls.
  int64_t CNOT = 0;      ///< X-kind gates with exactly one control.
  int64_t H = 0;         ///< Hadamard gates (however controlled).
  int64_t T = 0;         ///< T + Tdg gates present in the gate list.
  /// T-complexity: for Clifford+T circuits this equals T; for MCX or
  /// Toffoli-level circuits it is the T-count the circuit would have after
  /// the standard decomposition (Section 8.1's counting rule).
  int64_t TComplexity = 0;
  int64_t Qubits = 0;
};

GateCounts countGates(const Circuit &C);

/// Operand well-formedness for a (prospective) gate, shared by the
/// interchange readers and analysis::verifyCircuit so every entry point
/// rejects the same shapes with the same words: the target repeating a
/// control (no sensible gate reading; a *doubled control* is fine and
/// dedupes), and — when `NumQubits` is nonzero — any operand outside the
/// declared wires. Returns the empty string when well-formed, otherwise
/// the diagnostic message.
std::string checkGateOperands(Qubit Target, const Qubit *CtrlBegin,
                              const Qubit *CtrlEnd, unsigned NumQubits);

/// T-depth of a circuit (Amy et al. 2014): the number of T stages on the
/// critical path, where gates acting on disjoint qubits may share a
/// stage. T and Tdg gates contribute one stage on the qubits they touch;
/// Clifford gates synchronize their qubits without adding a stage. Only
/// meaningful for Clifford+T-level circuits (X-kind gates with more than
/// two controls are rejected by assertion).
int64_t tDepth(const Circuit &C);

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_GATE_H

#include "circuit/QcWriter.h"

#include "support/Governor.h"

namespace spire::circuit {

static std::string qubitName(Qubit Q) { return "q" + std::to_string(Q); }

std::string writeQc(const Circuit &C, const CircuitLayout *Layout) {
  std::string Out = ".v";
  for (Qubit Q = 0; Q != C.NumQubits; ++Q)
    Out += " " + qubitName(Q);
  Out += "\n";

  if (Layout) {
    Out += ".i";
    for (const auto &[Name, R] : Layout->Inputs)
      for (unsigned I = 0; I != R.Width; ++I)
        Out += " " + qubitName(R.Offset + I);
    Out += "\n.o";
    for (unsigned I = 0; I != Layout->Output.Width; ++I)
      Out += " " + qubitName(Layout->Output.Offset + I);
    Out += "\n";
  }

  Out += "\nBEGIN\n";
  size_t GateIndex = 0;
  for (const Gate &G : C.Gates) {
    // Output-size checkpoint: when the governor's output cap trips, the
    // emission stops; the caller checks the governor before writing the
    // (truncated) text anywhere.
    if ((GateIndex++ & 1023) == 0) {
      auto *Gov = support::Governor::current();
      if (Gov && !Gov->checkOutputBytes(static_cast<int64_t>(Out.size())))
        return Out;
    }
    // Every line is the gate mnemonic followed by its operands, controls
    // first and target last (Mosca's convention: `tof` with k operands
    // covers NOT, CNOT, Toffoli, and larger MCX uniformly; multi-operand
    // `Z` is the dialect's controlled-Z). Controlled S/T, which only
    // OpenQASM import can produce, has no spelling in the dialect: the
    // operands are emitted anyway so the text is *rejected* on re-import
    // rather than silently losing its controls — legalize onto a basis
    // before emitting .qc.
    std::string Line;
    switch (G.Kind) {
    case GateKind::X:
      Line = "tof";
      break;
    case GateKind::H:
      Line = G.Controls.empty() ? "H" : "CH";
      break;
    case GateKind::T:
      Line = "T";
      break;
    case GateKind::Tdg:
      Line = "T*";
      break;
    case GateKind::S:
      Line = "S";
      break;
    case GateKind::Sdg:
      Line = "S*";
      break;
    case GateKind::Z:
      Line = "Z";
      break;
    }
    for (Qubit Q : G.Controls)
      Line += " " + qubitName(Q);
    Line += " " + qubitName(G.Target);
    Out += Line + "\n";
  }
  Out += "END\n";
  return Out;
}

} // namespace spire::circuit

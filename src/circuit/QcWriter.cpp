#include "circuit/QcWriter.h"

namespace spire::circuit {

static std::string qubitName(Qubit Q) { return "q" + std::to_string(Q); }

std::string writeQc(const Circuit &C, const CircuitLayout *Layout) {
  std::string Out = ".v";
  for (Qubit Q = 0; Q != C.NumQubits; ++Q)
    Out += " " + qubitName(Q);
  Out += "\n";

  if (Layout) {
    Out += ".i";
    for (const auto &[Name, R] : Layout->Inputs)
      for (unsigned I = 0; I != R.Width; ++I)
        Out += " " + qubitName(R.Offset + I);
    Out += "\n.o";
    for (unsigned I = 0; I != Layout->Output.Width; ++I)
      Out += " " + qubitName(Layout->Output.Offset + I);
    Out += "\n";
  }

  Out += "\nBEGIN\n";
  for (const Gate &G : C.Gates) {
    std::string Line;
    switch (G.Kind) {
    case GateKind::X:
      // `tof` with k operands: the last is the target (Mosca's convention,
      // covering NOT, CNOT, Toffoli, and larger MCX uniformly).
      Line = "tof";
      for (Qubit Q : G.Controls)
        Line += " " + qubitName(Q);
      Line += " " + qubitName(G.Target);
      break;
    case GateKind::H:
      Line = G.Controls.empty() ? "H" : "CH";
      for (Qubit Q : G.Controls)
        Line += " " + qubitName(Q);
      Line += " " + qubitName(G.Target);
      break;
    case GateKind::T:
      Line = "T " + qubitName(G.Target);
      break;
    case GateKind::Tdg:
      Line = "T* " + qubitName(G.Target);
      break;
    case GateKind::S:
      Line = "S " + qubitName(G.Target);
      break;
    case GateKind::Sdg:
      Line = "S* " + qubitName(G.Target);
      break;
    case GateKind::Z:
      Line = "Z " + qubitName(G.Target);
      break;
    }
    Out += Line + "\n";
  }
  Out += "END\n";
  return Out;
}

} // namespace spire::circuit

//===----------------------------------------------------------------------===//
///
/// \file
/// Emission of circuits in the `.qc` format of Mosca [2016], the output
/// format of the Tower compiler (Section 7) and the input format of the
/// Feynman circuit toolkit.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_QCWRITER_H
#define SPIRE_CIRCUIT_QCWRITER_H

#include "circuit/Compiler.h"

#include <string>

namespace spire::circuit {

/// Renders a circuit as `.qc` text. Qubits are named q0..qN-1; the layout,
/// when provided, marks program inputs and the output register in the .i
/// and .o lines.
std::string writeQc(const Circuit &C, const CircuitLayout *Layout = nullptr);

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_QCWRITER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Wire-linked netlist over a circuit's gate list: every gate is a node
/// in one global doubly-linked sequence (circuit order) and, for each
/// qubit it touches, in a per-wire doubly-linked sequence. "The previous
/// or next gate touching qubit q" is therefore O(1) instead of a scan —
/// the structure behind the near-linear cancellation pass of src/qopt
/// (Nam et al. 2018 organize their linear-pass optimizer the same way).
///
/// Nodes are created once from a Circuit and never move; node ids are
/// assigned in circuit order, so id comparison is position comparison.
/// Removal (`unlink`) splices a node out of the global and all wire
/// sequences in O(wires); the node keeps its own link values, so
/// `restore` can splice it back dancing-links style (restores must be in
/// LIFO order with respect to unlinks, as in Knuth's DLX).
///
/// The per-wire links live in one flat pool sized by the circuit's total
/// operand count — building a netlist performs O(1) allocations however
/// many gates it holds.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_NETLIST_H
#define SPIRE_CIRCUIT_NETLIST_H

#include "circuit/Gate.h"

#include <cstdint>
#include <vector>

namespace spire::circuit {

class Netlist {
public:
  using NodeId = uint32_t;
  static constexpr NodeId Nil = 0xffffffffu;

  explicit Netlist(const Circuit &C);

  unsigned numQubits() const { return NumQubits; }
  /// Total nodes ever created (live or unlinked); node ids are < size().
  size_t size() const { return Nodes.size(); }
  /// Nodes currently linked.
  size_t liveCount() const { return LiveCount; }

  // -- Global (circuit-order) sequence. -------------------------------------
  NodeId head() const { return Head; }
  NodeId tail() const { return Tail; }
  NodeId next(NodeId N) const { return Nodes[N].Next; }
  NodeId prev(NodeId N) const { return Nodes[N].Prev; }

  const Gate &gate(NodeId N) const { return Nodes[N].G; }
  bool live(NodeId N) const { return Nodes[N].Live; }

  // -- Per-wire sequences. ---------------------------------------------------
  /// Wires of a node: wire 0 is the target, wires 1..numControls() the
  /// controls in sorted order.
  unsigned numWires(NodeId N) const { return 1 + Nodes[N].G.numControls(); }
  Qubit wireQubit(NodeId N, unsigned W) const {
    const Gate &G = Nodes[N].G;
    return W == 0 ? G.Target : G.Controls[W - 1];
  }
  NodeId wireNext(NodeId N, unsigned W) const {
    return Links[Nodes[N].LinkBase + W].Next;
  }
  NodeId wirePrev(NodeId N, unsigned W) const {
    return Links[Nodes[N].LinkBase + W].Prev;
  }
  /// Next/previous node touching qubit Q after/before N. N must touch Q.
  NodeId nextOnWire(NodeId N, Qubit Q) const {
    return Links[Nodes[N].LinkBase + wireIndexOf(N, Q)].Next;
  }
  NodeId prevOnWire(NodeId N, Qubit Q) const {
    return Links[Nodes[N].LinkBase + wireIndexOf(N, Q)].Prev;
  }
  NodeId wireHead(Qubit Q) const { return WireHeads[Q]; }
  NodeId wireTail(Qubit Q) const { return WireTails[Q]; }

  // -- Mutation. -------------------------------------------------------------
  /// Splices N out of the global sequence and every wire sequence it is
  /// on. N keeps its own link values for restore().
  void unlink(NodeId N);
  /// Splices an unlinked N back between its remembered neighbors.
  /// Restores must happen in LIFO order relative to unlinks.
  void restore(NodeId N);

  /// The live gates, in sequence order, as a Circuit.
  Circuit toCircuit() const;

  /// Exhaustive structural validation (tests): global and wire sequences
  /// are mutually consistent doubly-linked lists over exactly the live
  /// nodes, in strictly increasing id order, and every live node appears
  /// on each of its wires exactly once.
  bool checkIntegrity() const;

private:
  struct Link {
    NodeId Prev = Nil, Next = Nil;
  };
  struct Node {
    Gate G;
    NodeId Prev = Nil, Next = Nil;
    uint32_t LinkBase = 0;
    bool Live = true;
  };

  /// Index of qubit Q among N's wires (0 = target, else 1 + control
  /// position via binary search of the sorted control list).
  unsigned wireIndexOf(NodeId N, Qubit Q) const;

  std::vector<Node> Nodes;
  std::vector<Link> Links;
  std::vector<NodeId> WireHeads, WireTails;
  NodeId Head = Nil, Tail = Nil;
  size_t LiveCount = 0;
  unsigned NumQubits = 0;
};

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_NETLIST_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Backend target configuration.
///
/// The paper assumes "the bit width of integer and pointer registers is a
/// small constant" (Section 3.2) and uses 8-bit registers in its worked
/// example (Section 3.5); the qRAM has a fixed number of cells independent
/// of the recursion depth, so memory operations cost O(1) gates.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_CIRCUIT_TARGET_H
#define SPIRE_CIRCUIT_TARGET_H

namespace spire::circuit {

struct TargetConfig {
  /// Width in qubits of uint and pointer registers.
  unsigned WordBits = 8;
  /// Number of qRAM cells; addresses run 1..HeapCells so that the null
  /// pointer (0) dereferences to a no-op.
  unsigned HeapCells = 16;
};

} // namespace spire::circuit

#endif // SPIRE_CIRCUIT_TARGET_H

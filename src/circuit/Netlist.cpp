#include "circuit/Netlist.h"

#include <algorithm>
#include <cassert>

namespace spire::circuit {

Netlist::Netlist(const Circuit &C) : NumQubits(C.NumQubits) {
  Nodes.reserve(C.Gates.size());
  size_t TotalWires = 0;
  for (const Gate &G : C.Gates)
    TotalWires += 1 + G.numControls();
  Links.resize(TotalWires);
  WireHeads.assign(NumQubits, Nil);
  WireTails.assign(NumQubits, Nil);

  for (const Gate &G : C.Gates) {
    NodeId Id = static_cast<NodeId>(Nodes.size());
    Node N;
    N.G = G;
    N.LinkBase = static_cast<uint32_t>(Id == 0
                                           ? 0
                                           : Nodes.back().LinkBase +
                                                 (1 + Nodes.back()
                                                          .G.numControls()));
    N.Prev = Tail;
    Nodes.push_back(std::move(N));
    if (Tail != Nil)
      Nodes[Tail].Next = Id;
    else
      Head = Id;
    Tail = Id;

    unsigned Wires = numWires(Id);
    for (unsigned W = 0; W != Wires; ++W) {
      Qubit Q = wireQubit(Id, W);
      assert(Q < NumQubits && "gate operand out of range");
      Link &L = Links[Nodes[Id].LinkBase + W];
      L.Prev = WireTails[Q];
      L.Next = Nil;
      if (WireTails[Q] != Nil)
        Links[Nodes[WireTails[Q]].LinkBase +
              wireIndexOf(WireTails[Q], Q)].Next = Id;
      else
        WireHeads[Q] = Id;
      WireTails[Q] = Id;
    }
  }
  LiveCount = Nodes.size();
}

unsigned Netlist::wireIndexOf(NodeId N, Qubit Q) const {
  const Gate &G = Nodes[N].G;
  if (G.Target == Q)
    return 0;
  const Qubit *Begin = G.Controls.begin(), *End = G.Controls.end();
  const Qubit *It = std::lower_bound(Begin, End, Q);
  assert(It != End && *It == Q && "node does not touch this qubit");
  return 1 + static_cast<unsigned>(It - Begin);
}

void Netlist::unlink(NodeId N) {
  Node &Me = Nodes[N];
  assert(Me.Live && "unlinking a dead node");

  if (Me.Prev != Nil)
    Nodes[Me.Prev].Next = Me.Next;
  else
    Head = Me.Next;
  if (Me.Next != Nil)
    Nodes[Me.Next].Prev = Me.Prev;
  else
    Tail = Me.Prev;

  unsigned Wires = numWires(N);
  for (unsigned W = 0; W != Wires; ++W) {
    Qubit Q = wireQubit(N, W);
    const Link &L = Links[Me.LinkBase + W];
    if (L.Prev != Nil)
      Links[Nodes[L.Prev].LinkBase + wireIndexOf(L.Prev, Q)].Next = L.Next;
    else
      WireHeads[Q] = L.Next;
    if (L.Next != Nil)
      Links[Nodes[L.Next].LinkBase + wireIndexOf(L.Next, Q)].Prev = L.Prev;
    else
      WireTails[Q] = L.Prev;
  }

  Me.Live = false;
  --LiveCount;
}

void Netlist::restore(NodeId N) {
  Node &Me = Nodes[N];
  assert(!Me.Live && "restoring a live node");

  if (Me.Prev != Nil)
    Nodes[Me.Prev].Next = N;
  else
    Head = N;
  if (Me.Next != Nil)
    Nodes[Me.Next].Prev = N;
  else
    Tail = N;

  unsigned Wires = numWires(N);
  for (unsigned W = 0; W != Wires; ++W) {
    Qubit Q = wireQubit(N, W);
    const Link &L = Links[Me.LinkBase + W];
    if (L.Prev != Nil)
      Links[Nodes[L.Prev].LinkBase + wireIndexOf(L.Prev, Q)].Next = N;
    else
      WireHeads[Q] = N;
    if (L.Next != Nil)
      Links[Nodes[L.Next].LinkBase + wireIndexOf(L.Next, Q)].Prev = N;
    else
      WireTails[Q] = N;
  }

  Me.Live = true;
  ++LiveCount;
}

Circuit Netlist::toCircuit() const {
  Circuit Out;
  Out.NumQubits = NumQubits;
  Out.Gates.reserve(LiveCount);
  for (NodeId N = Head; N != Nil; N = Nodes[N].Next)
    Out.Gates.push_back(Nodes[N].G);
  return Out;
}

bool Netlist::checkIntegrity() const {
  // Global sequence: doubly linked over exactly the live nodes, in
  // strictly increasing id order.
  size_t Seen = 0;
  NodeId Last = Nil;
  for (NodeId N = Head; N != Nil; N = Nodes[N].Next) {
    if (!Nodes[N].Live)
      return false;
    if (Nodes[N].Prev != Last)
      return false;
    if (Last != Nil && N <= Last)
      return false;
    Last = N;
    if (++Seen > Nodes.size())
      return false; // cycle
  }
  if (Tail != Last || Seen != LiveCount)
    return false;

  // Wire sequences: each wire is a doubly-linked list of live nodes
  // touching that qubit, in increasing id order; counting the wire
  // memberships of every node must account for every link exactly once.
  size_t WireMemberships = 0;
  for (Qubit Q = 0; Q != NumQubits; ++Q) {
    NodeId Prev = Nil;
    size_t Steps = 0;
    for (NodeId N = WireHeads[Q]; N != Nil;) {
      if (!Nodes[N].Live)
        return false;
      if (!Nodes[N].G.touches(Q))
        return false;
      const Link &L = Links[Nodes[N].LinkBase + wireIndexOf(N, Q)];
      if (L.Prev != Prev)
        return false;
      if (Prev != Nil && N <= Prev)
        return false;
      Prev = N;
      ++WireMemberships;
      if (++Steps > Nodes.size())
        return false; // cycle
      N = L.Next;
    }
    if (WireTails[Q] != Prev)
      return false;
  }
  size_t ExpectedMemberships = 0;
  for (NodeId N = Head; N != Nil; N = Nodes[N].Next)
    ExpectedMemberships += numWires(N);
  return WireMemberships == ExpectedMemberships;
}

} // namespace spire::circuit

#include "circuit/Compiler.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace spire::ir;

namespace spire::circuit {

int64_t PrimitiveProfile::tComplexityUnder(unsigned ExtraControls) const {
  int64_t T = 0;
  for (unsigned C : XControlCounts)
    T += tCostOfMCX(C + ExtraControls);
  for (unsigned C : HControlCounts)
    T += tCostOfControlledH(C + ExtraControls);
  return T;
}

unsigned cellBitsFor(const CoreProgram &P, const TargetConfig &Config) {
  unsigned Bits = 1;
  for (const ast::Type *T : P.PointeeTypes)
    Bits = std::max(Bits, P.Types->bitWidth(T, Config.WordBits));
  return Bits;
}

namespace {

using support::Symbol;
using support::SymbolSet;

/// A virtual operand bit used by the arithmetic emitters: a constant, a
/// wire, or the AND of two wires (for multiplier partial products).
struct VBit {
  enum class Kind { Zero, One, Wire, And2 };
  Kind K = Kind::Zero;
  Qubit Q1 = 0, Q2 = 0;

  static VBit zero() { return {}; }
  static VBit one() {
    VBit V;
    V.K = Kind::One;
    return V;
  }
  static VBit wire(Qubit Q) {
    VBit V;
    V.K = Kind::Wire;
    V.Q1 = Q;
    return V;
  }
  static VBit and2(Qubit A, Qubit B) {
    VBit V;
    V.K = Kind::And2;
    V.Q1 = A;
    V.Q2 = B;
    return V;
  }
  static VBit constant(bool B) { return B ? one() : zero(); }
};

/// Compiles core IR to an MCX circuit. One instance per compilation; also
/// reused by profilePrimitive with a pre-seeded variable map.
///
/// Statement traversal runs on an explicit action stack (compileStmts
/// below), so with-block nesting that grows with the source recursion
/// depth — the const-arg-recursion shape — compiles with O(1) C++ stack.
/// Gate emission assembles control lists in a reused scratch buffer and
/// hands them to ControlList's inline storage, so the per-gate hot path
/// performs no heap allocation at all (the seed emitter built one or two
/// std::vectors per gate, ~2.3 allocations/gate across a compile).
class Emitter {
public:
  Emitter(const ast::TypeContext &Types, const TargetConfig &Config,
          unsigned CellBits)
      : Types(Types), Config(Config), CellBits(CellBits) {}

  const ast::TypeContext &Types;
  TargetConfig Config;
  unsigned CellBits;

  Circuit C;
  std::vector<Qubit> Ctx;
  /// Register plus live re-declaration depth per variable: `let x <- e`
  /// on a live x XORs into the same register (Appendix B.2) and its
  /// reversal un-assigns the innermost re-declaration, so the register
  /// is released only when the count returns to zero. One Symbol-keyed
  /// hash lookup covers what used to be two string-keyed tree lookups.
  struct VarInfo {
    BitRange R;
    unsigned Decl = 0;
  };
  std::unordered_map<Symbol, VarInfo> Vars;
  std::map<unsigned, std::vector<Qubit>> FreeByWidth;
  Qubit NextFree = 0;
  Qubit MemBase = 0;
  bool MemAllocated = false;
  /// Constant-source ancillas used by the popcount-uniform write of
  /// alloc-cell addresses: OneBit is prepared to |1> once per program.
  Qubit ZeroBit = 0, OneBit = 0;
  bool AllocAncillas = false;

  /// One Appendix-D reservation scope per active with-do do-block.
  struct Reservation {
    SymbolSet Affected;
    std::map<Symbol, BitRange> Parked;
  };
  std::vector<Reservation> Reservations;

  unsigned widthOf(const ast::Type *T) const {
    return Types.bitWidth(T, Config.WordBits);
  }

  //===--------------------------------------------------------------------===//
  // Register allocation
  //===--------------------------------------------------------------------===//

  BitRange allocate(unsigned Width) {
    if (Width == 0)
      return {0, 0};
    auto &Free = FreeByWidth[Width];
    if (!Free.empty()) {
      Qubit Offset = Free.back();
      Free.pop_back();
      return {Offset, Width};
    }
    BitRange R{NextFree, Width};
    NextFree += Width;
    return R;
  }

  void release(BitRange R) {
    if (R.Width == 0)
      return;
    FreeByWidth[R.Width].push_back(R.Offset);
  }

  /// Allocates a register for a newly declared variable, preferring a
  /// register parked for it by an enclosing do-block reservation
  /// (Appendix D: an affected variable is re-assigned its old register).
  BitRange allocateFor(Symbol Name, unsigned Width) {
    for (auto It = Reservations.rbegin(); It != Reservations.rend(); ++It) {
      auto P = It->Parked.find(Name);
      if (P != It->Parked.end()) {
        BitRange R = P->second;
        assert(R.Width == Width && "parked register width mismatch");
        It->Parked.erase(P);
        return R;
      }
    }
    return allocate(Width);
  }

  /// Frees the register of an un-assigned variable, parking it instead if
  /// an enclosing do-block reservation covers the variable.
  void releaseFor(Symbol Name, BitRange R) {
    for (auto It = Reservations.rbegin(); It != Reservations.rend(); ++It) {
      if (It->Affected.count(Name)) {
        It->Parked[Name] = R;
        return;
      }
    }
    release(R);
  }

  void ensureMemory() {
    if (MemAllocated)
      return;
    MemBase = NextFree;
    NextFree += Config.HeapCells * CellBits;
    MemAllocated = true;
  }

  /// Reserves the zero/one ancillas. The |1> preparation gate is emitted
  /// only by the whole-program driver (EmitPrep), so that per-primitive
  /// profiles exclude the one-time setup.
  void ensureAllocAncillas(bool EmitPrep) {
    if (AllocAncillas)
      return;
    ZeroBit = allocate(1).Offset;
    OneBit = allocate(1).Offset;
    AllocAncillas = true;
    if (EmitPrep)
      C.Gates.push_back(Gate(GateKind::X, OneBit));
  }

  //===--------------------------------------------------------------------===//
  // Gate emission primitives
  //===--------------------------------------------------------------------===//

  /// Reused control-assembly buffer: cleared and refilled per gate, never
  /// reallocated in steady state.
  std::vector<Qubit> GateScratch;

  /// Sorts and dedupes the staged controls. Almost every gate has 0-3
  /// controls (operand wires plus the if-context), so the tiny cases are
  /// unrolled rather than paying a std::sort call per gate.
  void sortUniqueScratch() {
    auto &V = GateScratch;
    if (V.size() <= 1)
      return;
    if (V.size() == 2) {
      if (V[0] > V[1])
        std::swap(V[0], V[1]);
      if (V[0] == V[1])
        V.pop_back();
      return;
    }
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }

  /// Emits an X on Target controlled by the current context plus the
  /// `Extra` controls already staged in GateScratch. The context is what
  /// makes `if` costly: every gate in a conditional body carries the
  /// condition bits (Fig. 21).
  void emitXFromScratch(Qubit Target) {
    GateScratch.insert(GateScratch.end(), Ctx.begin(), Ctx.end());
    sortUniqueScratch();
    assert(std::find(GateScratch.begin(), GateScratch.end(), Target) ==
               GateScratch.end() &&
           "gate target collides with a control; unsupported self-"
           "referential assignment");
    C.Gates.push_back(Gate(GateKind::X, Target,
                           ControlList(GateScratch.data(),
                                       GateScratch.data() +
                                           GateScratch.size()),
                           Gate::PresortedTag{}));
  }

  void emitX(Qubit Target) {
    GateScratch.clear();
    emitXFromScratch(Target);
  }
  void emitX(Qubit Target, std::initializer_list<Qubit> Extra) {
    GateScratch.assign(Extra.begin(), Extra.end());
    emitXFromScratch(Target);
  }
  void emitX(Qubit Target, const std::vector<Qubit> &Extra) {
    GateScratch.assign(Extra.begin(), Extra.end());
    emitXFromScratch(Target);
  }

  void emitH(Qubit Target) {
    GateScratch.assign(Ctx.begin(), Ctx.end());
    // Nested ifs over the same condition variable put its qubit in the
    // context twice; a duplicated control is the same single control.
    sortUniqueScratch();
    C.Gates.push_back(Gate(GateKind::H, Target,
                           ControlList(GateScratch.data(),
                                       GateScratch.data() +
                                           GateScratch.size()),
                           Gate::PresortedTag{}));
  }

  /// Target ^= V (a virtual bit), under the context.
  void emitXorV(Qubit Target, const VBit &V) {
    switch (V.K) {
    case VBit::Kind::Zero:
      return;
    case VBit::Kind::One:
      emitX(Target);
      return;
    case VBit::Kind::Wire:
      emitX(Target, {V.Q1});
      return;
    case VBit::Kind::And2:
      emitX(Target, {V.Q1, V.Q2});
      return;
    }
  }

  /// Target ^= AND of all VControls (virtual) and Extra wires; a
  /// constant-false control suppresses the gate, constant-true controls
  /// are dropped.
  void emitXV(Qubit Target, std::initializer_list<VBit> VControls,
              std::initializer_list<Qubit> Extra = {}) {
    GateScratch.assign(Extra.begin(), Extra.end());
    for (const VBit &V : VControls) {
      switch (V.K) {
      case VBit::Kind::Zero:
        return; // Gate can never fire.
      case VBit::Kind::One:
        break;
      case VBit::Kind::Wire:
        GateScratch.push_back(V.Q1);
        break;
      case VBit::Kind::And2:
        GateScratch.push_back(V.Q1);
        GateScratch.push_back(V.Q2);
        break;
      }
    }
    emitXFromScratch(Target);
  }

  /// Re-emits gates [Start, End) in reverse order; all must be X-kind
  /// (self-inverse), which holds for everything expression synthesis
  /// produces. Used to restore scratch registers.
  void appendReversed(size_t Start, size_t End) {
    for (size_t I = End; I > Start; --I) {
      const Gate &G = C.Gates[I - 1];
      assert(G.Kind == GateKind::X && "cannot blindly reverse non-X gate");
      C.Gates.push_back(G);
    }
  }

  //===--------------------------------------------------------------------===//
  // Operand access
  //===--------------------------------------------------------------------===//

  BitRange rangeOf(Symbol Var) const {
    auto It = Vars.find(Var);
    assert(It != Vars.end() && "unbound variable reached the backend");
    return It->second.R;
  }

  /// The i-th bit of an atom as a virtual bit.
  VBit atomBit(const Atom &A, unsigned I) const {
    if (A.isConst())
      return VBit::constant(I < 64 && ((A.ConstBits >> I) & 1));
    BitRange R = rangeOf(A.Var);
    if (I >= R.Width)
      return VBit::zero();
    return VBit::wire(R.Offset + I);
  }

  unsigned atomWidth(const Atom &A) const { return widthOf(A.Ty); }

  /// Target range ^= atom value (bit-wise XOR copy).
  void emitXorAtom(BitRange Target, const Atom &A, unsigned SrcShift = 0) {
    if (A.isConst() && A.IsAllocConst) {
      // Popcount-uniform immediate write: one CNOT per bit, sourced from
      // the constant one/zero ancillas, so every alloc site costs the
      // same number of gates regardless of its address bit pattern.
      ensureAllocAncillas(/*EmitPrep=*/false);
      for (unsigned I = 0; I != Target.Width; ++I) {
        bool Bit = (SrcShift + I) < 64 && ((A.ConstBits >> (SrcShift + I)) & 1);
        emitX(Target.Offset + I, {Bit ? OneBit : ZeroBit});
      }
      return;
    }
    for (unsigned I = 0; I != Target.Width; ++I)
      emitXorV(Target.Offset + I, atomBit(A, SrcShift + I));
  }

  //===--------------------------------------------------------------------===//
  // Arithmetic: VBE ripple adder (Vedral, Barenco, Ekert 1996)
  //===--------------------------------------------------------------------===//

  /// In-place B := B + V (mod 2^Width) where V is a vector of virtual
  /// bits. Allocates and restores its own carry scratch.
  void emitVBEAdd(const std::vector<VBit> &V, BitRange B) {
    unsigned N = B.Width;
    assert(V.size() >= N && "addend too narrow");
    if (N == 0)
      return;
    if (N == 1) {
      emitXorV(B.Offset, V[0]);
      return;
    }
    // Carries c[1..N-1]; c[0] is identically zero and omitted.
    BitRange Carry = allocate(N - 1);
    auto CarryBit = [&](unsigned I) -> Qubit {
      assert(I >= 1 && I <= N - 1);
      return Carry.Offset + (I - 1);
    };

    // CARRY(c_i, v_i, b_i, c_{i+1}); gates on the constant-zero c_0 fold.
    auto EmitCarry = [&](unsigned I) {
      emitXV(CarryBit(I + 1), {V[I], VBit::wire(B.Offset + I)});
      emitXorV(B.Offset + I, V[I]);
      if (I >= 1)
        emitX(CarryBit(I + 1), {CarryBit(I), B.Offset + I});
    };
    auto EmitCarryInv = [&](unsigned I) {
      if (I >= 1)
        emitX(CarryBit(I + 1), {CarryBit(I), B.Offset + I});
      emitXorV(B.Offset + I, V[I]);
      emitXV(CarryBit(I + 1), {V[I], VBit::wire(B.Offset + I)});
    };
    auto EmitSum = [&](unsigned I) {
      emitXorV(B.Offset + I, V[I]);
      if (I >= 1)
        emitX(B.Offset + I, {CarryBit(I)});
    };

    for (unsigned I = 0; I + 1 < N; ++I)
      EmitCarry(I);
    EmitSum(N - 1);
    for (unsigned I = N - 1; I-- > 0;) {
      EmitCarryInv(I);
      EmitSum(I);
    }
    release(Carry);
  }

  /// Reused addend buffer for the arithmetic emitters: each emitVBEAdd
  /// consumes its operand before the next one is staged, so a single
  /// scratch serves every adder without per-add vector allocations.
  std::vector<VBit> VScratch;

  const std::vector<VBit> &atomBits(const Atom &A, unsigned Width,
                                    unsigned Shift = 0) {
    VScratch.clear();
    VScratch.reserve(Width);
    for (unsigned I = 0; I != Width; ++I) {
      if (I < Shift)
        VScratch.push_back(VBit::zero());
      else
        VScratch.push_back(atomBit(A, I - Shift));
    }
    return VScratch;
  }

  const std::vector<VBit> &constBits(uint64_t Value, unsigned Width) {
    VScratch.clear();
    for (unsigned I = 0; I != Width; ++I)
      VScratch.push_back(VBit::constant(I < 64 && ((Value >> I) & 1)));
    return VScratch;
  }

  //===--------------------------------------------------------------------===//
  // Expression synthesis: Target ^= e
  //===--------------------------------------------------------------------===//

  void emitEqCore(Qubit Target, const Atom &A, const Atom &B) {
    unsigned Width = std::max(atomWidth(A), atomWidth(B));
    if (Width == 0) {
      emitX(Target); // Unit values are always equal.
      return;
    }
    if (A.isConst() && B.isConst()) {
      if (A.ConstBits == B.ConstBits)
        emitX(Target);
      return;
    }
    if (A.isVar() && B.isVar() && rangeOf(A.Var).Offset == rangeOf(B.Var).Offset) {
      emitX(Target); // x == x.
      return;
    }
    // diff := ~(a ^ b); Target ^= AND(diff); restore diff.
    BitRange Diff = allocate(Width);
    size_t Mark = C.Gates.size();
    emitXorAtom(Diff, A);
    emitXorAtom(Diff, B);
    for (unsigned I = 0; I != Width; ++I)
      emitX(Diff.Offset + I);
    size_t EndCompute = C.Gates.size();
    std::vector<Qubit> Controls;
    for (unsigned I = 0; I != Width; ++I)
      Controls.push_back(Diff.Offset + I);
    emitX(Target, Controls);
    appendReversed(Mark, EndCompute);
    release(Diff);
  }

  void emitLess(Qubit Target, const Atom &A, const Atom &B) {
    unsigned Width = Config.WordBits;
    // acc := a + ~b + 1 over Width+1 bits; a < b iff the top bit is 0.
    BitRange Acc = allocate(Width + 1);
    size_t Mark = C.Gates.size();
    // acc ^= ~b (low Width bits).
    for (unsigned I = 0; I != Width; ++I) {
      emitX(Acc.Offset + I);
      emitXorV(Acc.Offset + I, atomBit(B, I));
    }
    emitVBEAdd(atomBits(A, Width + 1), Acc);
    emitVBEAdd(constBits(1, Width + 1), Acc);
    size_t EndCompute = C.Gates.size();
    // Target ^= NOT acc[Width].
    emitX(Target);
    emitX(Target, {Acc.Offset + Width});
    appendReversed(Mark, EndCompute);
    release(Acc);
  }

  void emitArith(BitRange Target, ast::BinaryOp Op, const Atom &A,
                 const Atom &B) {
    unsigned Width = Target.Width;
    BitRange Acc = allocate(Width);
    size_t Mark = C.Gates.size();
    switch (Op) {
    case ast::BinaryOp::Add:
      emitXorAtom(Acc, B);
      emitVBEAdd(atomBits(A, Width), Acc);
      break;
    case ast::BinaryOp::Sub:
      // a - b = a + ~b + 1.
      for (unsigned I = 0; I != Width; ++I) {
        emitX(Acc.Offset + I);
        emitXorV(Acc.Offset + I, atomBit(B, I));
      }
      emitVBEAdd(atomBits(A, Width), Acc);
      emitVBEAdd(constBits(1, Width), Acc);
      break;
    case ast::BinaryOp::Mul:
      // Shift-and-add schoolbook product.
      for (unsigned J = 0; J != Width; ++J) {
        VBit BJ = atomBit(B, J);
        if (BJ.K == VBit::Kind::Zero)
          continue;
        VScratch.clear();
        for (unsigned I = 0; I != Width; ++I) {
          if (I < J) {
            VScratch.push_back(VBit::zero());
            continue;
          }
          VBit AI = atomBit(A, I - J);
          // Addend bit = a_{i-j} AND b_j, folded over constants.
          if (AI.K == VBit::Kind::Zero || BJ.K == VBit::Kind::Zero)
            VScratch.push_back(VBit::zero());
          else if (AI.K == VBit::Kind::One)
            VScratch.push_back(BJ);
          else if (BJ.K == VBit::Kind::One)
            VScratch.push_back(AI);
          else
            VScratch.push_back(VBit::and2(AI.Q1, BJ.Q1));
        }
        emitVBEAdd(VScratch, Acc);
      }
      break;
    default:
      assert(false && "not an arithmetic operator");
    }
    size_t EndCompute = C.Gates.size();
    for (unsigned I = 0; I != Width; ++I)
      emitX(Target.Offset + I, {Acc.Offset + I});
    appendReversed(Mark, EndCompute);
    release(Acc);
  }

  void emitXorExpr(BitRange Target, const CoreExpr &E) {
    switch (E.K) {
    case CoreExpr::Kind::AtomE:
      emitXorAtom(Target, E.A);
      return;

    case CoreExpr::Kind::Pair: {
      unsigned WA = atomWidth(E.A);
      emitXorAtom({Target.Offset, WA}, E.A);
      emitXorAtom({Target.Offset + WA, Target.Width - WA}, E.B);
      return;
    }

    case CoreExpr::Kind::Proj: {
      const ast::Type *BaseTy = Types.resolveTopLevel(E.A.Ty);
      assert(BaseTy->isPair() && "projection from non-pair");
      unsigned W1 = widthOf(BaseTy->first());
      unsigned Shift = E.ProjIndex == 1 ? 0 : W1;
      emitXorAtom(Target, E.A, Shift);
      return;
    }

    case CoreExpr::Kind::Unary: {
      if (E.UOp == ast::UnaryOp::Not) {
        emitX(Target.Offset);
        emitXorV(Target.Offset, atomBit(E.A, 0));
        return;
      }
      // test x: Target ^= [x != 0] = 1 ^ [x == 0].
      emitX(Target.Offset);
      emitEqCore(Target.Offset, E.A,
                 Atom::constant(0, E.A.Ty));
      return;
    }

    case CoreExpr::Kind::Binary: {
      switch (E.BOp) {
      case ast::BinaryOp::And: {
        emitXV(Target.Offset, {atomBit(E.A, 0), atomBit(E.B, 0)});
        return;
      }
      case ast::BinaryOp::Or: {
        // t ^= 1 ^ (~a & ~b).
        VBit A = atomBit(E.A, 0), B = atomBit(E.B, 0);
        emitX(Target.Offset);
        Qubit Flipped[2];
        unsigned NumFlipped = 0;
        auto Negate = [&](VBit &V) {
          switch (V.K) {
          case VBit::Kind::Zero:
            V = VBit::one();
            break;
          case VBit::Kind::One:
            V = VBit::zero();
            break;
          case VBit::Kind::Wire:
            emitX(V.Q1);
            Flipped[NumFlipped++] = V.Q1;
            break;
          case VBit::Kind::And2:
            assert(false && "unexpected virtual AND operand");
          }
        };
        Negate(A);
        Negate(B);
        emitXV(Target.Offset, {A, B});
        for (unsigned I = 0; I != NumFlipped; ++I)
          emitX(Flipped[I]);
        return;
      }
      case ast::BinaryOp::Eq:
        emitEqCore(Target.Offset, E.A, E.B);
        return;
      case ast::BinaryOp::Ne:
        emitX(Target.Offset);
        emitEqCore(Target.Offset, E.A, E.B);
        return;
      case ast::BinaryOp::Lt:
        emitLess(Target.Offset, E.A, E.B);
        return;
      case ast::BinaryOp::Add:
      case ast::BinaryOp::Sub:
      case ast::BinaryOp::Mul:
        emitArith(Target, E.BOp, E.A, E.B);
        return;
      }
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Statement compilation (worklist machine)
  //===--------------------------------------------------------------------===//

  /// Compiles one primitive (non-block) statement.
  void compilePrimitive(const CoreStmt &S) {
    switch (S.K) {
    case CoreStmt::Kind::Skip:
      return;

    case CoreStmt::Kind::Assign: {
      auto It = Vars.find(S.Name);
      BitRange Target;
      if (It != Vars.end()) {
        Target = It->second.R; // Re-declaration XORs into the same qubits.
        ++It->second.Decl;
      } else {
        Target = allocateFor(S.Name, widthOf(S.Ty));
        Vars.emplace(S.Name, VarInfo{Target, 1});
      }
      emitXorExpr(Target, S.E);
      return;
    }

    case CoreStmt::Kind::UnAssign: {
      auto It = Vars.find(S.Name);
      assert(It != Vars.end() && "unbound variable reached the backend");
      BitRange Target = It->second.R;
      emitXorExpr(Target, S.E); // XOR of an equal value restores zero.
      if (--It->second.Decl == 0) {
        Vars.erase(It);
        releaseFor(S.Name, Target);
      }
      return;
    }

    case CoreStmt::Kind::Swap: {
      BitRange A = rangeOf(S.Name);
      BitRange B = rangeOf(S.Name2);
      assert(A.Width == B.Width && "swap width mismatch");
      for (unsigned I = 0; I != A.Width; ++I) {
        emitX(A.Offset + I, {B.Offset + I});
        emitX(B.Offset + I, {A.Offset + I});
        emitX(A.Offset + I, {B.Offset + I});
      }
      return;
    }

    case CoreStmt::Kind::MemSwap: {
      ensureMemory();
      BitRange P = rangeOf(S.Name);
      BitRange V = rangeOf(S.Name2);
      unsigned SwapBits = std::min(V.Width, CellBits);
      std::vector<Qubit> Match;
      for (unsigned I = 0; I != P.Width; ++I)
        Match.push_back(P.Offset + I);
      for (unsigned Address = 1; Address <= Config.HeapCells; ++Address) {
        // Conjugate pointer bits so the address-match controls are all
        // positive on the pattern `Address`.
        std::vector<Qubit> Conj;
        for (unsigned I = 0; I != P.Width; ++I)
          if (((static_cast<uint64_t>(Address) >> I) & 1) == 0)
            Conj.push_back(P.Offset + I);
        for (Qubit Q : Conj)
          emitX(Q);
        Qubit Cell = MemBase + (Address - 1) * CellBits;
        for (unsigned I = 0; I != SwapBits; ++I) {
          Qubit M = Cell + I, W = V.Offset + I;
          emitX(M, {W});
          GateScratch.assign(Match.begin(), Match.end());
          GateScratch.push_back(M);
          emitXFromScratch(W);
          emitX(M, {W});
        }
        for (Qubit Q : Conj)
          emitX(Q);
      }
      return;
    }

    case CoreStmt::Kind::Hadamard: {
      BitRange X = rangeOf(S.Name);
      assert(X.Width == 1 && "H requires a bool variable");
      emitH(X.Offset);
      return;
    }

    case CoreStmt::Kind::If:
    case CoreStmt::Kind::With:
      assert(false && "block statement reached compilePrimitive");
      return;
    }
  }

  /// One pending step of the statement machine.
  struct Action {
    enum class K : uint8_t {
      Exec,      ///< Compile *S (blocks expand into further actions).
      PopCtx,    ///< End of an if-body: drop the innermost control bit.
      WithDo,    ///< S's with-block is compiled: open the reservation
                 ///< scope and queue the do-block.
      WithClose, ///< S's do-block is compiled: close the reservation and
                 ///< queue the uncomputation I[with-block].
      FreeOwned, ///< Destroy `Owned` (a reversed-body copy that the
                 ///< preceding Exec actions pointed into).
    };
    K Kind;
    const CoreStmt *S = nullptr;
    CoreStmtList Owned;

    Action(K Kind, const CoreStmt *S) : Kind(Kind), S(S) {}
    explicit Action(CoreStmtList Owned)
        : Kind(K::FreeOwned), Owned(std::move(Owned)) {}
  };

  std::vector<Action> Work;

  void queueExec(const CoreStmtList &Stmts) {
    for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
      Work.push_back(Action(Action::K::Exec, It->get()));
  }

  void runMachine() {
    while (!Work.empty()) {
      Action A = std::move(Work.back());
      Work.pop_back();
      switch (A.Kind) {
      case Action::K::Exec:
        switch (A.S->K) {
        case CoreStmt::Kind::If: {
          BitRange Cond = rangeOf(A.S->Name);
          assert(Cond.Width == 1 && "if condition must be a single bit");
          Ctx.push_back(Cond.Offset);
          Work.push_back(Action(Action::K::PopCtx, nullptr));
          queueExec(A.S->Body);
          break;
        }
        case CoreStmt::Kind::With:
          Work.push_back(Action(Action::K::WithDo, A.S));
          queueExec(A.S->Body);
          break;
        default:
          compilePrimitive(*A.S);
          break;
        }
        break;

      case Action::K::PopCtx:
        Ctx.pop_back();
        break;

      case Action::K::WithDo: {
        // Appendix D: variables referenced by the with-block and live at
        // the start of the do-block must keep their registers across it.
        Reservation R;
        for (Symbol Name : allVars(A.S->Body))
          if (Vars.count(Name))
            R.Affected.insert(Name);
        Reservations.push_back(std::move(R));
        Work.push_back(Action(Action::K::WithClose, A.S));
        queueExec(A.S->DoBody);
        break;
      }

      case Action::K::WithClose: {
        Reservation Done = std::move(Reservations.back());
        Reservations.pop_back();
        // Parked registers consumed in the do-block and never
        // re-created are now dead; release them in spelling order (the
        // order the seed's string-keyed map iterated in) so register
        // reuse — and therefore the emitted circuit — is byte-identical
        // to the seed backend. This is a presentation-order boundary:
        // the spellings are materialized only here.
        std::vector<std::pair<std::string_view, Symbol>> ByName;
        ByName.reserve(Done.Parked.size());
        for (const auto &[Name, Reg] : Done.Parked)
          ByName.emplace_back(Name.view(), Name);
        std::sort(ByName.begin(), ByName.end());
        for (const auto &[View, Name] : ByName)
          releaseFor(Name, Done.Parked[Name]);
        // Uncompute the with-block: queue I[body], keeping the reversed
        // copy alive (FreeOwned) until its last statement has compiled.
        CoreStmtList Rev = reverseStmts(A.S->Body);
        Action Holder(std::move(Rev));
        queueExecIntoHolder(Holder);
        break;
      }

      case Action::K::FreeOwned:
        break; // Owned list destroys here (worklist destructor).
      }
    }
  }

  /// Pushes the holder first, then Exec actions over its owned
  /// statements, so the holder outlives every pointer into it. The
  /// CoreStmt nodes live on the heap behind unique_ptrs, so the Exec
  /// pointers stay valid however the Work vector reallocates; the holder
  /// is re-read by index because push_back invalidates references.
  void queueExecIntoHolder(Action &Holder) {
    Work.push_back(std::move(Holder));
    size_t HolderIdx = Work.size() - 1;
    size_t N = Work[HolderIdx].Owned.size();
    for (size_t I = N; I-- > 0;)
      Work.push_back(
          Action(Action::K::Exec, Work[HolderIdx].Owned[I].get()));
  }

  void compileStmt(const CoreStmt &S) {
    assert(Work.empty() && "re-entrant statement machine");
    Work.push_back(Action(Action::K::Exec, &S));
    runMachine();
  }

  void compileStmts(const CoreStmtList &Stmts) {
    assert(Work.empty() && "re-entrant statement machine");
    queueExec(Stmts);
    runMachine();
  }
};

/// Collects (variable, type) pairs referenced by one primitive statement
/// or an if-chain around one (the form profilePrimitive accepts).
void collectStmtVarTypes(const CoreStmt &S,
                         std::map<Symbol, const ast::Type *> &Out) {
  auto AddAtom = [&](const Atom &A) {
    if (A.isVar())
      Out.emplace(A.Var, A.Ty);
  };
  if (!S.Name.empty() && S.Ty)
    Out.emplace(S.Name, S.Ty);
  if (!S.Name2.empty() && S.Ty2)
    Out.emplace(S.Name2, S.Ty2);
  if (S.K == CoreStmt::Kind::Assign || S.K == CoreStmt::Kind::UnAssign) {
    AddAtom(S.E.A);
    if (S.E.K == CoreExpr::Kind::Pair || S.E.K == CoreExpr::Kind::Binary)
      AddAtom(S.E.B);
  }
  if (S.K == CoreStmt::Kind::If)
    for (const auto &Inner : S.Body)
      collectStmtVarTypes(*Inner, Out);
}

} // namespace

CompileResult compileToCircuit(const CoreProgram &P,
                               const TargetConfig &Config) {
  Emitter E(*P.Types, Config, cellBitsFor(P, Config));

  CircuitLayout Layout;
  for (const auto &[Name, Ty] : P.Inputs) {
    BitRange R = E.allocate(E.widthOf(Ty));
    // Decl starts at 0 (not 1): a body-level re-declaration of an input
    // followed by its un-assignment frees the input's register, exactly
    // as the declaration counting has always behaved.
    E.Vars.emplace(Name, Emitter::VarInfo{R, 0});
    Layout.Inputs[Name.str()] = R;
  }
  // Memory immediately after the inputs so its position is predictable.
  E.ensureMemory();
  Layout.MemBase = E.MemBase;
  Layout.CellBits = E.CellBits;
  Layout.HeapCells = Config.HeapCells;

  if (P.NumAllocCells > 0)
    E.ensureAllocAncillas(/*EmitPrep=*/true);

  // Compile top-level statements one at a time and extrapolate the final
  // gate count at a few checkpoints, reserving the gate vector up front:
  // recursion-inlined programs emit millions of near-uniform statements,
  // and letting std::vector double its way up re-copies the whole gate
  // list ~20 times (measured as a third of the compile stage). The first
  // checkpoint waits for 16 statements so a single unrepresentative
  // heavy statement cannot skew the projection, and the whole thing is
  // capped so a pathological prefix cannot demand absurd memory (a
  // reservation can only grow, never shrink).
  constexpr size_t ReserveCap = size_t{1} << 25; // 32M gates (~1 GiB).
  size_t NextCheckpoint = 16;
  for (size_t I = 0; I != P.Body.size(); ++I) {
    E.compileStmt(*P.Body[I]);
    if (I + 1 == NextCheckpoint && I + 1 < P.Body.size()) {
      NextCheckpoint *= 64;
      size_t Projected =
          (E.C.Gates.size() / (I + 1) + 1) * P.Body.size() + 64;
      Projected = std::min(Projected, ReserveCap);
      if (Projected > E.C.Gates.capacity())
        E.C.Gates.reserve(Projected);
    }
  }

  auto Out = E.Vars.find(P.OutputVar);
  assert(Out != E.Vars.end() && "output variable not live at program end");
  Layout.Output = Out->second.R;
  Layout.NumQubits = E.NextFree;
  // Record the still-live registers (inputs, output, leaked temporaries)
  // and the deliberately-|1> alloc ancilla: everything else must exit at
  // |0>, and the static ancilla-cleanness analysis holds it to that.
  for (const auto &[Name, Info] : E.Vars)
    Layout.LiveAtExit.push_back(Info.R);
  std::sort(Layout.LiveAtExit.begin(), Layout.LiveAtExit.end(),
            [](const BitRange &A, const BitRange &B) {
              return A.Offset < B.Offset;
            });
  if (E.AllocAncillas)
    Layout.PreparedOneWire = E.OneBit;

  CompileResult Result;
  Result.Circ = std::move(E.C);
  Result.Circ.NumQubits = E.NextFree;
  Result.Layout = Layout;
  return Result;
}

PrimitiveProfile profilePrimitive(const CoreStmt &S,
                                  const ir::TypeContext &Types,
                                  const TargetConfig &Config,
                                  unsigned CellBits) {
#ifndef NDEBUG
  // A primitive statement, possibly wrapped in single-statement if-chains
  // (the cost model profiles `if x { s }` directly when x is read by s,
  // so that control merging is reflected exactly).
  for (const CoreStmt *Cursor = &S; ;
       Cursor = Cursor->Body.front().get()) {
    assert(Cursor->K != CoreStmt::Kind::With &&
           "profilePrimitive requires a primitive statement");
    if (Cursor->K != CoreStmt::Kind::If)
      break;
    assert(Cursor->Body.size() == 1 &&
           "profiled if-wrappers must have single-statement bodies");
  }
#endif
  Emitter E(Types, Config, CellBits);
  std::map<Symbol, const ast::Type *> VarTypes;
  collectStmtVarTypes(S, VarTypes);
  for (const auto &[Name, Ty] : VarTypes)
    E.Vars.emplace(Name, Emitter::VarInfo{E.allocate(E.widthOf(Ty)), 0});
  E.compileStmt(S);

  PrimitiveProfile Profile;
  for (const Gate &G : E.C.Gates) {
    if (G.Kind == GateKind::X)
      Profile.XControlCounts.push_back(G.numControls());
    else if (G.Kind == GateKind::H)
      Profile.HControlCounts.push_back(G.numControls());
  }
  return Profile;
}

} // namespace spire::circuit

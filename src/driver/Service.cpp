#include "driver/Service.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ArtifactCache.h"

#include <chrono>

namespace spire::driver {

const char *toolVersion() { return "spirec-0.10"; }

std::string optionsFingerprint(const PipelineOptions &O) {
  std::string F;
  F.reserve(192);
  auto kv = [&F](const char *K, const std::string &V) {
    F += K;
    F += '=';
    F += V;
    F += ';';
  };
  auto kn = [&kv](const char *K, int64_t N) { kv(K, std::to_string(N)); };
  // Enum fields go in as stable integers: renaming an enumerator must
  // not silently invalidate the cache, reordering one must (the emitted
  // artifact changes with the meaning, and the format version guards
  // deliberate renumberings).
  kn("v", support::ArtifactCacheFormatVersion);
  kv("tool", toolVersion());
  kv("entry", O.Entry);
  kn("size", O.Size);
  kn("input", static_cast<int>(O.Input));
  kn("informat", static_cast<int>(O.InputFormat));
  kn("outformat", static_cast<int>(O.OutputFormat));
  kn("basis", O.Basis ? static_cast<int>(*O.Basis) : -1);
  kn("flatten", O.Spire.ConditionalFlattening);
  kn("narrow", O.Spire.ConditionalNarrowing);
  kn("withdo", O.Spire.FlattenWithDo);
  kn("wordbits", O.Target.WordBits);
  kn("heapcells", O.Target.HeapCells);
  kn("maxinst", O.MaxInlineInstances);
  kn("maxdepth", O.MaxInlineDepth);
  kn("stopafter", static_cast<int>(O.StopAfter));
  kn("emitlevel", static_cast<int>(O.EmitLevel));
  kn("copt", static_cast<int>(O.CircuitOpt));
  return F;
}

CacheKey cacheKeyFor(const PipelineOptions &Options,
                     std::string_view Source) {
  CacheKey Key;
  Key.Hi = support::hashBytes(optionsFingerprint(Options));
  Key.Lo = support::hashBytes(Source);
  return Key;
}

ServiceResponse Service::handle(const ServiceRequest &Request) {
  obs::Span Sp("service/request");
  ++obs::Registry::global().counter("service.requests");
  auto Start = std::chrono::steady_clock::now();
  auto finish = [&Start](ServiceResponse &Resp) -> ServiceResponse & {
    Resp.Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    return Resp;
  };

  ServiceResponse Resp;
  CacheKey Key;
  if (Cache) {
    Key = cacheKeyFor(Request.Pipe, Request.Source);
    if (std::optional<std::string> Hit = Cache->lookup(Key.Hi, Key.Lo)) {
      Resp.OK = true;
      Resp.CacheHit = true;
      Resp.Artifact = std::move(*Hit);
      Sp.arg("cache_hit", 1);
      return finish(Resp);
    }
  }

  // A fresh budget per request: one runaway request trips its own
  // governor, the next starts with full budgets again. The catch wall
  // keeps OOM and internal errors inside this request.
  support::Governor Gov(Request.Pipe.Limits);
  support::GovernorScope Scope(&Gov);
  try {
    CompilationPipeline Pipeline(Request.Pipe);
    CompilationResult R = Pipeline.run(Request.Source);
    if (Gov.exceeded() && !R.LimitHit)
      R.LimitHit = Gov.limit();
    if (R.succeeded() && !R.LimitHit) {
      Resp.Artifact = Pipeline.renderFinalCircuit(R);
      // The writers stop growing the text when the output cap trips;
      // never serve (or cache) the truncated artifact.
      if (Gov.exceeded()) {
        R.LimitHit = Gov.limit();
      } else {
        Resp.OK = true;
        if (Cache && !Resp.Artifact.empty())
          Cache->store(Key.Hi, Key.Lo, Resp.Artifact);
      }
    }
    if (R.LimitHit) {
      Resp.LimitHit = R.LimitHit;
      support::DiagnosticEngine GovDiags;
      Gov.report(GovDiags);
      std::string Report = GovDiags.str();
      size_t NL = Report.find('\n');
      Resp.Error = NL == std::string::npos ? Report : Report.substr(0, NL);
      if (Resp.Error.empty())
        Resp.Error = std::string("resource limit: ") +
                     support::resourceLimitName(*R.LimitHit);
    } else if (!Resp.OK) {
      std::string Diags = R.Diags.str();
      size_t NL = Diags.find('\n');
      Resp.Error = NL == std::string::npos ? Diags : Diags.substr(0, NL);
      if (Resp.Error.empty())
        Resp.Error = "compilation failed";
    }
  } catch (const std::bad_alloc &) {
    Resp.Error = "out of memory";
  } catch (const std::exception &E) {
    Resp.Error = std::string("internal error: ") + E.what();
  }
  if (!Resp.OK)
    ++obs::Registry::global().counter("service.failures");
  Sp.arg("ok", Resp.OK ? 1 : 0);
  return finish(Resp);
}

} // namespace spire::driver

//===----------------------------------------------------------------------===//
///
/// \file
/// The unified compilation pipeline of the Spire compiler: the single
/// entry point behind which the tool (`spirec`), the examples, and the
/// benchmark harness all run the paper's frontend-to-backend sequence
/// (Fig. 22 / Sections 6-8):
///
///   parse -> typecheck -> lower -> Spire-optimize -> circuit-compile
///         -> qopt -> legalize -> cost/estimate
///
/// Each stage records wall-clock time and either produces its artifact in
/// the staged CompilationResult or marks the run failed at that stage;
/// all errors flow through support::DiagnosticEngine — library code never
/// prints or exits. Downstream consumers decide how to render failures.
///
/// The pipeline has two input axes (PipelineOptions::Input):
///  * Tower source (the default): the full staged sequence above.
///  * A circuit in an interchange format (`.qc` or OpenQASM 3): the
///    frontend stages are skipped and the circuit-compile stage *parses*
///    the text instead, after which qopt, legalize, and estimate run as
///    usual — the CLI's circuit-in modes (--qc-in / --qasm-in) are this
///    axis.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_DRIVER_PIPELINE_H
#define SPIRE_DRIVER_PIPELINE_H

#include "ast/AST.h"
#include "circuit/Compiler.h"
#include "circuit/Target.h"
#include "costmodel/CostModel.h"
#include "estimate/ResourceEstimator.h"
#include "interchange/Interchange.h"
#include "ir/Core.h"
#include "lowering/Lower.h"
#include "opt/Spire.h"
#include "qopt/Passes.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spire::driver {

/// The stages of the compilation pipeline, in execution order.
enum class Stage {
  Parse,
  Typecheck,
  Lower,
  SpireOpt,
  CircuitCompile,
  Qopt,
  Legalize,
  Estimate,
};

/// Short lower-case stage name, e.g. "circuit-compile".
const char *stageName(Stage S);

/// Gate level of the emitted circuit (the decomposition ladder of
/// Section 8.1: multiply-controlled X, then Toffoli, then Clifford+T).
enum class CircuitLevel { MCX, Toffoli, CliffordT };

/// The circuit-optimizer baselines of Section 8.3, keyed by the system
/// each one stands in for (see DESIGN.md section 2). `None` leaves the
/// qopt stage idle.
enum class CircuitOptimizerKind {
  None,
  Peephole,         ///< Qiskit / Pytket-peephole analogue (Clifford+T).
  CliffordTCancel,  ///< Feynman -toCliffordT analogue (decompose, then
                    ///< cancel + rotation merging).
  RotationMerging,  ///< VOQC / Pytket-ZX analogue (phase folding only).
  ToffoliCancel,    ///< Feynman -mctExpand analogue (cancel at the
                    ///< MCX/Toffoli level, then decompose).
  ExhaustiveCancel, ///< QuiZX analogue (unbounded-lookahead fixpoint at
                    ///< the Toffoli level plus rotation merging; slow).
};

const char *optimizerName(CircuitOptimizerKind Kind);

/// Applies a circuit-optimizer baseline to an MCX-level compiled circuit
/// and returns the resulting Clifford+T-level circuit. When `Stats` is
/// non-null the pass work counters (cancelled pairs, merged rotations,
/// fixpoint passes) accumulate into it across every pass the
/// configuration runs. When `VerifyDiags` is non-null the static
/// circuit verifier runs after every pass application (decompose,
/// cancel, fold) and reports violations there — the --verify-each
/// hook; callers fail on VerifyDiags->hasErrors(). `FaultDiags` (when
/// non-null) receives injected per-pass diag faults (see
/// support/FaultInjector.h); the pipeline passes the run's engine so
/// every pass is a named injection site, and callers likewise fail on
/// new errors.
circuit::Circuit applyCircuitOptimizer(const circuit::Circuit &MCXCircuit,
                                       CircuitOptimizerKind Kind,
                                       qopt::OptStats *Stats = nullptr,
                                       support::DiagnosticEngine *VerifyDiags =
                                           nullptr,
                                       support::DiagnosticEngine *FaultDiags =
                                           nullptr);

/// Whether PipelineOptions::VerifyEach should default on: true when the
/// SPIRE_VERIFY_EACH environment variable is set to anything but "0"
/// (the Debug/sanitizer CI lanes export it so every pipeline consumer —
/// tools, tests, benches — runs verified there without plumbing).
bool verifyEachDefault();

/// What the source text handed to run() contains.
enum class InputKind {
  Tower,   ///< Tower source: the full frontend-to-backend sequence.
  Circuit, ///< A circuit in `InputFormat`: frontend stages are skipped.
};

/// Everything that configures a pipeline run, in one place.
struct PipelineOptions {
  /// Entry function to compile.
  std::string Entry;
  /// Static size (recursion depth) the entry is instantiated at; ignored
  /// for functions without a size parameter.
  int64_t Size = 0;

  /// Input axis: Tower source (default) or interchange circuit text.
  InputKind Input = InputKind::Tower;
  /// Format the circuit text is parsed as when Input is Circuit.
  interchange::Format InputFormat = interchange::Format::Qc;
  /// Format renderFinalCircuit() emits.
  interchange::Format OutputFormat = interchange::Format::Qc;
  /// Target gate basis; when set, the legalize stage lowers the final
  /// circuit onto it via the interchange legalizer (MCX is the no-op
  /// basis). Gates with no exact realization in the basis fail the
  /// stage with a diagnostic.
  std::optional<interchange::Basis> Basis;
  /// Basis-state budget for equivalence checking's sampled modes. The
  /// pipeline itself does not run equivalence checks; this rides along
  /// for the check-equiv consumer (the spirec CLI). Classical (X-only)
  /// circuit pairs are swept by the bit-sliced batch backend — small
  /// ones exhaustively over all 2^qubits states, where this budget is
  /// ignored, larger ones in random 64-state blocks covering at least
  /// this many states. A request above the circuits' 2^qubits distinct
  /// states clamps to an exhaustive sweep; only non-classical circuits
  /// (state-vector path, no exhaustive mode) diagnose an explicit
  /// over-request.
  unsigned CheckEquivSamples = 32;

  /// Spire's program-level optimizations (Section 6).
  opt::SpireOptions Spire = opt::SpireOptions::all();
  /// Backend word width and qRAM size; also seeds the lowering
  /// allocator's heap-cell budget.
  circuit::TargetConfig Target;
  /// Safety bound on inlined function instances during lowering.
  unsigned MaxInlineInstances = 100000;
  /// Safety bound on call-inlining depth during lowering. The lowerer is
  /// iterative, so exceeding either bound yields a diagnostic at the
  /// lower stage rather than a stack overflow.
  unsigned MaxInlineDepth = 100000;

  /// Resource budgets for the run (wall-clock deadline, allocation
  /// budget, gate/output caps; all 0 = unlimited). When any is set the
  /// pipeline arms a support::Governor for the run — unless the caller
  /// already installed one covering a larger scope (spirec arms one per
  /// invocation / per batch entry) — and every worklist checkpoint
  /// polls it. A tripped budget fails the current stage with a single
  /// `resource-limit` diagnostic and records CompilationResult::LimitHit.
  support::GovernorLimits Limits;

  /// Last stage to execute; later stages are skipped entirely. Lets
  /// lowering-only consumers avoid the Spire rewrite's program clone.
  Stage StopAfter = Stage::Estimate;

  /// Runs the static verifier (src/analysis) on every stage artifact:
  /// IR invariants after lower and spire-opt; circuit + netlist
  /// well-formedness and affine-parity ancilla cleanness after
  /// circuit-compile, after *every* qopt pass application, and after
  /// legalize. Any violation fails the producing stage with
  /// diagnostics. The spirec --verify-each flag sets this; see
  /// verifyEachDefault() for the environment default.
  bool VerifyEach = verifyEachDefault();

  /// Whether to run the circuit-compile stage (and the stages after it
  /// that need a circuit). Cost-model-only consumers leave this off and
  /// stop at the estimate stage, which is the paper's headline use case:
  /// analyze without building the asymptotically large circuit.
  bool BuildCircuit = false;
  /// Decomposition level of the emitted circuit.
  CircuitLevel EmitLevel = CircuitLevel::MCX;
  /// Circuit-optimizer baseline applied by the qopt stage. When not
  /// `None` it consumes the MCX-level circuit and produces Clifford+T,
  /// overriding `EmitLevel`.
  CircuitOptimizerKind CircuitOpt = CircuitOptimizerKind::None;

  /// Whether the estimate stage computes cost-model figures (cheap,
  /// syntax-level; on by default).
  bool AnalyzeCost = true;
  /// Whether the estimate stage also analyzes the unoptimized program
  /// (for before/after reports); measurement loops that only need the
  /// optimized figure turn this off.
  bool AnalyzeUnoptimized = true;
  /// Whether the estimate stage also derives a surface-code resource
  /// estimate from the optimized program's cost (or the compiled
  /// circuit when one was built).
  bool EstimateResources = false;
  estimate::SurfaceCodeModel SurfaceModel;

  static PipelineOptions forEntry(std::string Entry, int64_t Size = 0) {
    PipelineOptions O;
    O.Entry = std::move(Entry);
    O.Size = Size;
    return O;
  }
};

/// Wall-clock and allocation record of one executed stage. The memory
/// columns make allocation wins (the point of the interned-symbol IR)
/// observable from `spirec --timings` and the scale benches without
/// attaching a profiler.
struct StageTiming {
  Stage Which = Stage::Parse;
  double Seconds = 0;
  /// Heap allocations (global operator new calls) during the stage.
  int64_t Allocs = 0;
  /// Growth of the process peak RSS across the stage, in KiB. Peak RSS
  /// is monotonic, so this attributes each high-water advance to the
  /// stage that caused it (0 for stages that stayed under the peak).
  int64_t PeakRSSDeltaKb = 0;
};

/// The staged result of a pipeline run: every artifact a stage produced,
/// per-stage timings, and — on failure — the stage that failed plus the
/// diagnostics explaining why. Stages after the failed one do not run.
struct CompilationResult {
  /// Diagnostics accumulated by every stage.
  support::DiagnosticEngine Diags;
  /// Executed stages in order, with wall-clock seconds each.
  std::vector<StageTiming> Stages;
  /// Set when a stage failed; later stages are skipped.
  std::optional<Stage> Failed;
  /// Set when the failure was a tripped resource budget (the governor's
  /// `resource-limit` diagnostic names it). Surfaces as the `limit_hit`
  /// field of `--metrics-json` and drives spirec's exit code 2.
  std::optional<support::ResourceLimit> LimitHit;

  /// Stage artifacts, present when the producing stage ran successfully.
  std::optional<ast::Program> AST;            ///< After typecheck.
  std::optional<ir::CoreProgram> Core;        ///< After lowering.
  std::optional<ir::CoreProgram> Optimized;   ///< After Spire rewrites.
  std::optional<costmodel::Cost> UnoptimizedCost;
  std::optional<costmodel::Cost> OptimizedCost;
  /// The compiled MCX circuit + layout — or, on the circuit-input axis,
  /// the parsed input circuit with an empty layout.
  std::optional<circuit::CompileResult> Compiled;
  /// The decomposed / qopt-optimized / legalized circuit, when a stage
  /// below the MCX level produced one. At the MCX level this stays empty
  /// (the compiled circuit is not duplicated); use finalCircuit() to
  /// read the emitted circuit uniformly.
  std::optional<circuit::Circuit> Final;
  std::optional<estimate::Estimate> Resources;
  /// Work counters of the qopt stage (cancelled pairs, merged rotations),
  /// present when a circuit optimizer ran. Rendered next to the stage
  /// timings by consumers that report them (spirec --timings, benches).
  std::optional<qopt::OptStats> QoptStats;

  bool succeeded() const { return !Failed.has_value(); }

  /// The circuit at the requested emit level: the decomposed/optimized
  /// one when a stage produced it, otherwise the compiled MCX circuit.
  /// Null when no circuit was built.
  const circuit::Circuit *finalCircuit() const {
    if (Final)
      return &*Final;
    if (Compiled)
      return &Compiled->Circ;
    return nullptr;
  }

  /// Seconds spent in one stage (0 when it did not run).
  double stageSeconds(Stage S) const;
  /// Total wall-clock across all executed stages.
  double totalSeconds() const;
};

/// Renders a machine-readable run report (`spirec --metrics-json`): the
/// "spire-metrics-v1" schema with every StageTiming, the qopt work
/// counters, and a snapshot of the global obs::Registry (refreshed with
/// the process gauges first) — a strict superset of what `--timings`
/// prints. docs/observability.md documents the schema and metric names.
std::string renderMetricsJson(const CompilationResult &R);

/// The single compile-pipeline implementation. Construct with options,
/// then run over source text; the pipeline itself is stateless across
/// runs and a const instance may be reused.
class CompilationPipeline {
public:
  explicit CompilationPipeline(PipelineOptions Options)
      : Options(std::move(Options)) {}

  const PipelineOptions &options() const { return Options; }

  /// Runs the staged pipeline over Tower source text — or over circuit
  /// text when Options.Input is InputKind::Circuit.
  CompilationResult run(std::string_view Source) const;

  /// Reads `Path` and runs the pipeline over its contents. A missing or
  /// unreadable file fails the parse stage with a diagnostic.
  CompilationResult runFile(const std::string &Path) const;

  /// Renders the run's final circuit in Options.OutputFormat. The wire
  /// layout is attached only when the final circuit *is* the compiled
  /// MCX circuit (layouts describe MCX-level wires; decomposition and
  /// legalization add ancillas). Empty string when no circuit was built.
  std::string renderFinalCircuit(const CompilationResult &R) const;

private:
  void runBackendStages(CompilationResult &R) const;

  PipelineOptions Options;
};

} // namespace spire::driver

#endif // SPIRE_DRIVER_PIPELINE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service: one request-in, artifact-out entry point shared
/// by `spirec --batch` and `spirec --serve`, layered over
/// CompilationPipeline with the two properties a long-lived process
/// needs:
///
///   * Request isolation — every request runs under its own fresh
///     support::Governor and a catch wall, so a poisoned request (OOM,
///     internal error, tripped budget, injected fault) fails *that
///     request* and never the process.
///   * Artifact caching — when constructed over a support::ArtifactCache
///     the service keys each request by cacheKeyFor() and serves
///     verified hits without compiling; misses compile and store. Cache
///     damage of any kind degrades to a recompute, never to a wrong or
///     failed answer (the cache's own contract).
///
/// The cache key hashes the input bytes together with every
/// PipelineOptions field that can change the emitted artifact
/// (optionsFingerprint); fields that only affect reporting or budgets
/// stay out so equivalent requests share entries.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_DRIVER_SERVICE_H
#define SPIRE_DRIVER_SERVICE_H

#include "driver/Pipeline.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spire::support {
class ArtifactCache;
}

namespace spire::driver {

/// Space-free tool id stamped into cache manifests; entries written by
/// a different build read as misses, never as stale artifacts.
const char *toolVersion();

/// Stable, human-auditable `k=v;` rendering of every PipelineOptions
/// field that affects the emitted artifact bytes (plus the cache format
/// version and tool id). Budget, verification, and reporting knobs are
/// deliberately absent: they change how a run is policed, not what it
/// emits.
std::string optionsFingerprint(const PipelineOptions &Options);

/// 128-bit cache key: Hi hashes the options fingerprint, Lo the input
/// bytes, both through support::hashBytes.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
};
CacheKey cacheKeyFor(const PipelineOptions &Options, std::string_view Source);

/// One compile request: fully-configured pipeline options plus the
/// input text they apply to.
struct ServiceRequest {
  PipelineOptions Pipe;
  std::string Source;
};

struct ServiceResponse {
  bool OK = false;
  bool CacheHit = false;
  /// The rendered final circuit (Pipe.OutputFormat) when OK.
  std::string Artifact;
  /// First error line when not OK.
  std::string Error;
  /// Set when the request tripped its resource budget.
  std::optional<support::ResourceLimit> LimitHit;
  double Seconds = 0;
};

class Service {
public:
  /// \p Cache may be null: the service then compiles every request.
  explicit Service(support::ArtifactCache *Cache = nullptr)
      : Cache(Cache) {}

  /// Handles one request end to end: cache lookup, compile on miss
  /// under a fresh governor + catch wall, render, store. Never throws;
  /// every failure mode lands in the response. Counters:
  /// service.requests / service.failures; span: service/request.
  ServiceResponse handle(const ServiceRequest &Request);

private:
  support::ArtifactCache *Cache;
};

} // namespace spire::driver

#endif // SPIRE_DRIVER_SERVICE_H

#include "driver/Pipeline.h"

#include "analysis/Analysis.h"
#include "decompose/Decompose.h"
#include "frontend/Parser.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sema/TypeChecker.h"
#include "support/AllocStats.h"
#include "support/FaultInjector.h"
#include "support/Governor.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <new>
#include <sstream>
#include <type_traits>
#include <utility>

namespace spire::driver {

bool verifyEachDefault() {
  // Cached: the default is an environment policy, not per-pipeline
  // state (spirec --verify-each overrides it per invocation).
  static const bool On = [] {
    const char *V = std::getenv("SPIRE_VERIFY_EACH");
    return V && *V && std::string_view(V) != "0";
  }();
  return On;
}

namespace {

/// Verification work feeds the `verify.*` registry metrics so a
/// --verify-each run reports how much checking it did (and a daemon can
/// scrape violation totals).
void recordVerifyMetrics(const analysis::VerifyReport &V) {
  auto &Reg = obs::Registry::global();
  ++Reg.counter("verify.checks");
  Reg.counter("verify.violations") +=
      static_cast<int64_t>(V.Violations.size());
}

/// Stage-boundary IR verification: reports violations as diagnostics
/// under `Context` ("verify(lower)", ...) and fails the stage.
bool verifyIrArtifact(const ir::CoreProgram &P,
                      const circuit::TargetConfig &Target,
                      support::DiagnosticEngine &Diags, const char *Context) {
  analysis::VerifyReport V = analysis::verifyProgram(P, Target);
  recordVerifyMetrics(V);
  if (V.ok())
    return true;
  V.reportTo(Diags, Context);
  return false;
}

/// Stage-boundary circuit verification: structural well-formedness plus
/// netlist integrity always; the affine-parity ancilla-cleanness proof
/// only when a compiled layout is available (the circuit-input axis has
/// no input/ancilla classification, so parity obligations don't apply).
bool verifyCircuitArtifact(const circuit::Circuit &C,
                           const circuit::CircuitLayout *Layout,
                           support::DiagnosticEngine &Diags,
                           const char *Context) {
  analysis::VerifyReport V = analysis::verifyCircuit(C);
  if (V.ok() && Layout) {
    analysis::CleanSpec Spec =
        analysis::CleanSpec::forLayout(*Layout, C.NumQubits);
    analysis::ParityResult PR = analysis::analyzeParity(C, Spec);
    // A governor trip aborts the parity sweep mid-matrix; its partial
    // report would blame sound ancillae, so fail the stage and let the
    // stage wrapper attach the single resource-limit diagnostic.
    if (auto *G = support::Governor::current(); G && G->exceeded())
      return false;
    int64_t Obligations = 0;
    for (bool Req : Spec.RequireClean)
      Obligations += Req;
    int64_t Unproved = static_cast<int64_t>(PR.Report.Violations.size());
    auto &Reg = obs::Registry::global();
    Reg.counter("analysis.parity.obligations") += Obligations;
    Reg.counter("analysis.parity.proved_clean") +=
        Obligations > Unproved ? Obligations - Unproved : 0;
    V.merge(std::move(PR.Report));
  }
  recordVerifyMetrics(V);
  if (V.ok())
    return true;
  V.reportTo(Diags, Context);
  return false;
}

} // namespace

const char *stageName(Stage S) {
  switch (S) {
  case Stage::Parse:
    return "parse";
  case Stage::Typecheck:
    return "typecheck";
  case Stage::Lower:
    return "lower";
  case Stage::SpireOpt:
    return "spire-opt";
  case Stage::CircuitCompile:
    return "circuit-compile";
  case Stage::Qopt:
    return "qopt";
  case Stage::Legalize:
    return "legalize";
  case Stage::Estimate:
    return "estimate";
  }
  return "?";
}

const char *optimizerName(CircuitOptimizerKind Kind) {
  switch (Kind) {
  case CircuitOptimizerKind::None:
    return "none";
  case CircuitOptimizerKind::Peephole:
    return "Peephole (Qiskit/Pytket-style)";
  case CircuitOptimizerKind::CliffordTCancel:
    return "CliffordT-cancel (Feynman -toCliffordT-style)";
  case CircuitOptimizerKind::RotationMerging:
    return "Rotation-merging (VOQC/Pytket-ZX-style)";
  case CircuitOptimizerKind::ToffoliCancel:
    return "Toffoli-cancel (Feynman -mctExpand-style)";
  case CircuitOptimizerKind::ExhaustiveCancel:
    return "Exhaustive-cancel (QuiZX-style)";
  }
  return "?";
}

circuit::Circuit applyCircuitOptimizer(const circuit::Circuit &MCXCircuit,
                                       CircuitOptimizerKind Kind,
                                       qopt::OptStats *Stats,
                                       support::DiagnosticEngine *VerifyDiags,
                                       support::DiagnosticEngine *FaultDiags) {
  using circuit::Circuit;
  // Per-pass hook: every pass (including the decomposition steps) runs
  // inside a named trace span carrying its gate-count and OptStats work
  // deltas as args, and its output goes through the structural circuit
  // verifier (when VerifyDiags is set) before the next pass consumes it,
  // so a pass that corrupts the gate stream is blamed by name instead of
  // surfacing as a downstream equivalence failure. The pass name is also
  // a fault-injection site (alloc faults unwind to the stage wrapper;
  // diag faults report into FaultDiags and skip the pass), and each
  // pass's output is charged against the governor's gate cap.
  auto runPass = [&](const char *Pass, const Circuit &In,
                     auto Fn) -> Circuit {
    support::faultAlloc(Pass);
    if (FaultDiags && support::faultDiag(Pass, *FaultDiags))
      return In;
    obs::Span Sp(Pass);
    qopt::OptStats Before = Stats ? *Stats : qopt::OptStats();
    Circuit Out = Fn(In);
    Sp.arg("gates_in", static_cast<int64_t>(In.Gates.size()));
    Sp.arg("gates_out", static_cast<int64_t>(Out.Gates.size()));
    if (Stats) {
      if (int64_t D = Stats->CancelledPairs - Before.CancelledPairs)
        Sp.arg("cancelled_pairs", D);
      if (int64_t D = Stats->WorklistVisits - Before.WorklistVisits)
        Sp.arg("worklist_visits", D);
      if (int64_t D = Stats->MergedRotations - Before.MergedRotations)
        Sp.arg("merged_rotations", D);
      if (int64_t D = Stats->EmittedRotations - Before.EmittedRotations)
        Sp.arg("emitted_rotations", D);
    }
    ++obs::Registry::global().counter("qopt.passes_run");
    support::Governor::pollGates(static_cast<int64_t>(Out.Gates.size()));
    if (VerifyDiags) {
      analysis::VerifyReport V = analysis::verifyCircuit(Out);
      recordVerifyMetrics(V);
      if (!V.ok())
        V.reportTo(*VerifyDiags, Pass);
    }
    return Out;
  };
  auto decomposeCliffordT = [&](const Circuit &In) {
    return runPass("qopt/decompose-clifford+t", In,
                   [](const Circuit &C) { return decompose::toCliffordT(C); });
  };
  auto decomposeToffoli = [&](const Circuit &In) {
    return runPass("qopt/decompose-toffoli", In,
                   [](const Circuit &C) { return decompose::toToffoli(C); });
  };
  auto cancel = [&](const char *Pass, const Circuit &In,
                    qopt::CancelOptions Opts) {
    return runPass(Pass, In, [&](const Circuit &C) {
      return qopt::cancelAdjacentGates(C, Opts, Stats);
    });
  };
  auto fold = [&](const Circuit &In) {
    return runPass("qopt/phase-fold", In, [&](const Circuit &C) {
      return qopt::phaseFold(C, Stats);
    });
  };

  switch (Kind) {
  case CircuitOptimizerKind::None:
    return decomposeCliffordT(MCXCircuit);

  case CircuitOptimizerKind::Peephole: {
    // Decompose first, then a small-window inverse-pair peephole.
    Circuit CT = decomposeCliffordT(MCXCircuit);
    return cancel("qopt/cancel-peephole", CT,
                  qopt::CancelOptions::peephole());
  }

  case CircuitOptimizerKind::CliffordTCancel: {
    // Decompose first, then standard cancellation plus rotation merging
    // over the Clifford+T gates — the -toCliffordT pipeline shape.
    Circuit CT = decomposeCliffordT(MCXCircuit);
    Circuit Cancelled = cancel("qopt/cancel-standard", CT,
                               qopt::CancelOptions::standard());
    return fold(Cancelled);
  }

  case CircuitOptimizerKind::RotationMerging: {
    Circuit CT = decomposeCliffordT(MCXCircuit);
    return fold(CT);
  }

  case CircuitOptimizerKind::ToffoliCancel: {
    // Simplify in terms of Toffoli gates *before* translating to
    // Clifford+T (Section 8.3: the -mctExpand configuration).
    Circuit Toff = decomposeToffoli(MCXCircuit);
    Circuit Cancelled = cancel("qopt/cancel-standard", Toff,
                               qopt::CancelOptions::standard());
    return decomposeCliffordT(Cancelled);
  }

  case CircuitOptimizerKind::ExhaustiveCancel: {
    // Unbounded-lookahead fixpoint cancellation at the Toffoli level,
    // then decomposition and rotation merging: stronger and much slower,
    // like QuiZX's global-structure discovery.
    Circuit Toff = decomposeToffoli(MCXCircuit);
    Circuit Cancelled = cancel("qopt/cancel-exhaustive", Toff,
                               qopt::CancelOptions::exhaustive());
    Circuit CT = decomposeCliffordT(Cancelled);
    Circuit Folded = fold(CT);
    return cancel("qopt/cancel-exhaustive", Folded,
                  qopt::CancelOptions::exhaustive());
  }
  }
  return decompose::toCliffordT(MCXCircuit);
}

double CompilationResult::stageSeconds(Stage S) const {
  for (const StageTiming &T : Stages)
    if (T.Which == S)
      return T.Seconds;
  return 0;
}

double CompilationResult::totalSeconds() const {
  double Total = 0;
  for (const StageTiming &T : Stages)
    Total += T.Seconds;
  return Total;
}

namespace {

/// Times one stage body and appends its StageTiming (wall-clock seconds,
/// heap allocations, and peak-RSS growth). The body returns true on
/// success; on failure the result's failed-stage marker is set.
///
/// Every stage also runs inside a trace span named after the stage (its
/// allocation and RSS work counters attach as span args; bodies taking an
/// `obs::Span &` can attach stage-specific ones like gate counts) and
/// publishes `stage.<name>.*` metrics into the global registry.
///
/// Robustness wrapper: the stage name is a fault-injection site, the
/// body runs under a catch for allocation failure (real bad_alloc or an
/// injected alloc fault both become a diagnosed stage failure instead
/// of a crash), and a tripped governor converts the checkpoint bail-out
/// into one `resource-limit` diagnostic + CompilationResult::LimitHit.
template <typename Fn>
bool runStage(CompilationResult &R, Stage S, Fn &&Body) {
  obs::Span Sp(stageName(S));
  int64_t AllocsBefore = support::allocationCount();
  int64_t RSSBefore = support::peakRSSKb();
  auto Start = std::chrono::steady_clock::now();
  bool OK;
  try {
    support::faultAlloc(stageName(S));
    if (support::faultDiag(stageName(S), R.Diags)) {
      OK = false;
    } else if constexpr (std::is_invocable_v<Fn &, obs::Span &>) {
      OK = Body(Sp);
    } else {
      OK = Body();
    }
  } catch (const std::bad_alloc &) {
    R.Diags.error(std::string("out of memory in the ") + stageName(S) +
                  " stage");
    OK = false;
  } catch (const std::exception &E) {
    R.Diags.error(std::string("internal error in the ") + stageName(S) +
                  " stage: " + E.what());
    OK = false;
  }
  if (auto *G = support::Governor::current(); G && G->exceeded()) {
    G->report(R.Diags);
    R.LimitHit = G->limit();
    OK = false;
  }
  auto End = std::chrono::steady_clock::now();
  StageTiming T;
  T.Which = S;
  T.Seconds = std::chrono::duration<double>(End - Start).count();
  T.Allocs = support::allocationCount() - AllocsBefore;
  T.PeakRSSDeltaKb = support::peakRSSKb() - RSSBefore;
  R.Stages.push_back(T);
  Sp.arg("allocs", T.Allocs);
  Sp.arg("peak_rss_delta_kb", T.PeakRSSDeltaKb);
  Sp.arg("ok", OK);
  auto &Reg = obs::Registry::global();
  std::string Prefix = std::string("stage.") + stageName(S);
  Reg.histogram(Prefix + ".seconds").observe(T.Seconds);
  Reg.counter(Prefix + ".allocs") += T.Allocs;
  ++Reg.counter(Prefix + ".runs");
  if (!OK)
    R.Failed = S;
  return OK;
}

} // namespace

CompilationResult CompilationPipeline::run(std::string_view Source) const {
  CompilationResult R;
  // Arm a governor for this run's budgets unless the caller (spirec, the
  // batch driver) already installed one covering a wider scope — nested
  // compiles share the outermost token.
  support::Governor RunGov(Options.Limits);
  support::GovernorScope GovScope(support::Governor::current() ? nullptr
                                                               : &RunGov);
  ++obs::Registry::global().counter("pipeline.runs");
  auto stopAfter = [&](Stage S) {
    return static_cast<int>(Options.StopAfter) < static_cast<int>(S);
  };

  if (Options.Input == InputKind::Circuit) {
    // Circuit-input axis: the circuit-compile stage parses interchange
    // text instead of compiling IR; qopt, legalize, and estimate then
    // run over it exactly as they would over a compiled circuit.
    if (stopAfter(Stage::CircuitCompile))
      return R;
    bool OK = runStage(R, Stage::CircuitCompile, [&](obs::Span &Sp) {
      std::optional<circuit::Circuit> C =
          interchange::readCircuit(Source, Options.InputFormat, R.Diags);
      if (!C)
        return false;
      circuit::CompileResult Parsed;
      Parsed.Circ = std::move(*C);
      Parsed.Layout.NumQubits = Parsed.Circ.NumQubits;
      R.Compiled.emplace(std::move(Parsed));
      support::Governor::pollGates(
          static_cast<int64_t>(R.Compiled->Circ.Gates.size()));
      Sp.arg("gates", static_cast<int64_t>(R.Compiled->Circ.Gates.size()));
      Sp.arg("qubits", R.Compiled->Circ.NumQubits);
      if (Options.VerifyEach &&
          !verifyCircuitArtifact(R.Compiled->Circ, /*Layout=*/nullptr,
                                 R.Diags, "verify(circuit-compile)"))
        return false;
      return true;
    });
    if (!OK)
      return R;
    runBackendStages(R);
    return R;
  }

  // -- Parse. --------------------------------------------------------------
  bool OK = runStage(R, Stage::Parse, [&] {
    std::optional<ast::Program> P = frontend::parseProgram(Source, R.Diags);
    if (!P)
      return false;
    R.AST.emplace(std::move(*P));
    return true;
  });
  if (!OK || stopAfter(Stage::Typecheck))
    return R;

  // -- Typecheck (annotates the AST in place) and resolve the entry. -------
  OK = runStage(R, Stage::Typecheck, [&] {
    if (!sema::typeCheck(*R.AST, R.Diags))
      return false;
    if (!R.AST->findFunction(Options.Entry)) {
      R.Diags.error("entry function '" + Options.Entry + "' not found");
      return false;
    }
    return true;
  });
  if (!OK || stopAfter(Stage::Lower))
    return R;

  // -- Lower to core IR at the requested size. -----------------------------
  OK = runStage(R, Stage::Lower, [&] {
    lowering::LowerOptions LowerOpts;
    LowerOpts.HeapCells = Options.Target.HeapCells;
    LowerOpts.MaxInlineInstances = Options.MaxInlineInstances;
    LowerOpts.MaxInlineDepth = Options.MaxInlineDepth;
    LowerOpts.AssumeTypeChecked = true; // The typecheck stage just ran.
    std::optional<ir::CoreProgram> Core = lowering::lowerProgram(
        *R.AST, Options.Entry, Options.Size, R.Diags, LowerOpts);
    if (!Core)
      return false;
    R.Core.emplace(std::move(*Core));
    if (Options.VerifyEach &&
        !verifyIrArtifact(*R.Core, Options.Target, R.Diags, "verify(lower)"))
      return false;
    return true;
  });
  if (!OK || stopAfter(Stage::SpireOpt))
    return R;

  // -- Spire's program-level rewrites (Section 6). -------------------------
  OK = runStage(R, Stage::SpireOpt, [&] {
    R.Optimized.emplace(opt::optimizeProgram(*R.Core, Options.Spire));
    if (Options.VerifyEach &&
        !verifyIrArtifact(*R.Optimized, Options.Target, R.Diags,
                          "verify(spire-opt)"))
      return false;
    return true;
  });
  if (!OK)
    return R;

  // -- Circuit compilation and decomposition (Section 7). ------------------
  if (Options.BuildCircuit && !stopAfter(Stage::CircuitCompile)) {
    bool QoptWillRun = Options.CircuitOpt != CircuitOptimizerKind::None &&
                       !stopAfter(Stage::Qopt);
    runStage(R, Stage::CircuitCompile, [&](obs::Span &Sp) {
      R.Compiled.emplace(
          circuit::compileToCircuit(*R.Optimized, Options.Target));
      support::Governor::pollGates(
          static_cast<int64_t>(R.Compiled->Circ.Gates.size()));
      Sp.arg("gates", static_cast<int64_t>(R.Compiled->Circ.Gates.size()));
      Sp.arg("qubits", R.Compiled->Circ.NumQubits);
      if (!QoptWillRun) {
        switch (Options.EmitLevel) {
        case CircuitLevel::MCX:
          // finalCircuit() serves the compiled circuit directly; do not
          // duplicate the asymptotically large gate list.
          break;
        case CircuitLevel::Toffoli:
          R.Final.emplace(decompose::toToffoli(R.Compiled->Circ));
          break;
        case CircuitLevel::CliffordT:
          R.Final.emplace(decompose::toCliffordT(R.Compiled->Circ));
          break;
        }
        if (R.Final)
          support::Governor::pollGates(
              static_cast<int64_t>(R.Final->Gates.size()));
      }
      if (Options.VerifyEach) {
        if (!verifyCircuitArtifact(R.Compiled->Circ, &R.Compiled->Layout,
                                   R.Diags, "verify(circuit-compile)"))
          return false;
        if (R.Final &&
            !verifyCircuitArtifact(*R.Final, &R.Compiled->Layout, R.Diags,
                                   "verify(decompose)"))
          return false;
      }
      return true;
    });
  }

  runBackendStages(R);
  return R;
}

/// The stages downstream of circuit production, shared by the Tower and
/// circuit input axes: the qopt baselines, gate-set legalization, and
/// cost/resource estimation.
void CompilationPipeline::runBackendStages(CompilationResult &R) const {
  auto stopAfter = [&](Stage S) {
    return static_cast<int>(Options.StopAfter) < static_cast<int>(S);
  };

  // -- The qopt stage consumes the MCX-level circuit and produces
  // Clifford+T, standing in for the Section 8.3 baselines.
  if (R.Compiled && Options.CircuitOpt != CircuitOptimizerKind::None &&
      !stopAfter(Stage::Qopt) && !R.Failed) {
    runStage(R, Stage::Qopt, [&](obs::Span &Sp) {
      qopt::OptStats Stats;
      unsigned ErrorsBefore = R.Diags.errorCount();
      R.Final.emplace(applyCircuitOptimizer(
          R.Compiled->Circ, Options.CircuitOpt, &Stats,
          Options.VerifyEach ? &R.Diags : nullptr, &R.Diags));
      R.QoptStats = Stats;
      Sp.arg("gates_in", static_cast<int64_t>(R.Compiled->Circ.Gates.size()));
      Sp.arg("gates_out", static_cast<int64_t>(R.Final->Gates.size()));
      Sp.arg("cancelled_pairs", Stats.CancelledPairs);
      Sp.arg("merged_rotations", Stats.MergedRotations);
      auto &Reg = obs::Registry::global();
      Reg.counter("qopt.cancelled_pairs") += Stats.CancelledPairs;
      Reg.counter("qopt.cancel_passes") += Stats.CancelPasses;
      Reg.counter("qopt.worklist_visits") += Stats.WorklistVisits;
      Reg.counter("qopt.merged_rotations") += Stats.MergedRotations;
      Reg.counter("qopt.emitted_rotations") += Stats.EmittedRotations;
      if (R.Diags.errorCount() > ErrorsBefore)
        return false; // A per-pass verify hook or injected fault fired.
      if (Options.VerifyEach) {
        const circuit::CircuitLayout *Layout =
            Options.Input == InputKind::Tower ? &R.Compiled->Layout
                                              : nullptr;
        if (!verifyCircuitArtifact(*R.Final, Layout, R.Diags,
                                   "verify(qopt)"))
          return false;
      }
      return true;
    });
  }

  // -- Gate-set legalization onto the declared target basis. Conformant
  // circuits skip the stage (and the copy) entirely.
  if (R.Compiled && Options.Basis && !stopAfter(Stage::Legalize) &&
      !R.Failed && !interchange::conformsTo(*R.finalCircuit(),
                                            *Options.Basis)) {
    bool OK = runStage(R, Stage::Legalize, [&](obs::Span &Sp) {
      Sp.arg("gates_in",
             static_cast<int64_t>(R.finalCircuit()->Gates.size()));
      std::optional<circuit::Circuit> Legal =
          interchange::legalize(*R.finalCircuit(), *Options.Basis, R.Diags);
      if (!Legal)
        return false;
      R.Final.emplace(std::move(*Legal));
      support::Governor::pollGates(
          static_cast<int64_t>(R.Final->Gates.size()));
      Sp.arg("gates_out", static_cast<int64_t>(R.Final->Gates.size()));
      if (Options.VerifyEach) {
        const circuit::CircuitLayout *Layout =
            Options.Input == InputKind::Tower ? &R.Compiled->Layout
                                              : nullptr;
        if (!verifyCircuitArtifact(*R.Final, Layout, R.Diags,
                                   "verify(legalize)"))
          return false;
      }
      return true;
    });
    if (!OK)
      return;
  }

  // -- Cost analysis and resource estimation (Sections 5 and 1). Cost
  // figures need the lowered IR, which the circuit axis does not have.
  bool WantCost = Options.AnalyzeCost && R.Optimized.has_value();
  if ((WantCost || Options.EstimateResources) && !stopAfter(Stage::Estimate)
      && !R.Failed) {
    runStage(R, Stage::Estimate, [&] {
      if (WantCost) {
        if (Options.AnalyzeUnoptimized)
          R.UnoptimizedCost =
              costmodel::analyzeProgram(*R.Core, Options.Target);
        R.OptimizedCost =
            costmodel::analyzeProgram(*R.Optimized, Options.Target);
      }
      if (Options.EstimateResources) {
        if (const circuit::Circuit *Circ = R.finalCircuit()) {
          R.Resources = estimate::estimateCircuit(*Circ,
                                                  Options.SurfaceModel);
        } else if (R.Optimized) {
          costmodel::Cost C =
              R.OptimizedCost
                  ? *R.OptimizedCost
                  : costmodel::analyzeProgram(*R.Optimized, Options.Target);
          // Without a compiled circuit only gate-level counts are known;
          // the MCX count stands in for the Clifford budget and the
          // logical-qubit count is unreported.
          R.Resources = estimate::estimateCounts(C.T, C.MCX, 0,
                                                 Options.SurfaceModel);
        }
      }
      return true;
    });
  }
}

std::string
CompilationPipeline::renderFinalCircuit(const CompilationResult &R) const {
  const circuit::Circuit *Circ = R.finalCircuit();
  if (!Circ)
    return "";
  // Layouts describe MCX-level wires only; decomposition, qopt, and
  // legalization add ancillas, so attach the layout exactly when the
  // final circuit is the compiled one. The circuit axis parses into an
  // empty layout, which stays unattached.
  const circuit::CircuitLayout *Layout = nullptr;
  if (!R.Final && R.Compiled && Options.Input == InputKind::Tower)
    Layout = &R.Compiled->Layout;
  return interchange::writeCircuit(*Circ, Options.OutputFormat, Layout);
}

std::string renderMetricsJson(const CompilationResult &R) {
  obs::publishProcessMetrics();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "spire-metrics-v1");
  // A resource-limit trip after the last stage (emission caps, the
  // equivalence sweep) leaves Failed unset but is still not a success.
  W.kv("succeeded", R.succeeded() && !R.LimitHit);
  if (R.Failed)
    W.kv("failed_stage", stageName(*R.Failed));
  if (R.LimitHit)
    W.kv("limit_hit", support::resourceLimitName(*R.LimitHit));
  W.kv("total_seconds", R.totalSeconds(), 9);
  W.kv("errors", static_cast<int64_t>(R.Diags.errorCount()));
  W.key("stages");
  W.beginArray();
  for (const StageTiming &T : R.Stages) {
    W.beginObject();
    W.kv("stage", stageName(T.Which));
    W.kv("seconds", T.Seconds, 9);
    W.kv("allocs", T.Allocs);
    W.kv("peak_rss_delta_kb", T.PeakRSSDeltaKb);
    W.endObject();
  }
  W.endArray();
  if (R.QoptStats) {
    W.key("qopt_stats");
    W.beginObject();
    W.kv("cancelled_pairs", R.QoptStats->CancelledPairs.value());
    W.kv("cancel_passes", R.QoptStats->CancelPasses.value());
    W.kv("worklist_visits", R.QoptStats->WorklistVisits.value());
    W.kv("merged_rotations", R.QoptStats->MergedRotations.value());
    W.kv("emitted_rotations", R.QoptStats->EmittedRotations.value());
    W.endObject();
  }
  W.key("metrics");
  obs::writeMetricsObject(W, obs::Registry::global().snapshot());
  W.endObject();
  return W.take();
}

CompilationResult CompilationPipeline::runFile(const std::string &Path) const {
  std::ifstream In(Path);
  if (!In) {
    CompilationResult R;
    R.Diags.error("cannot read " + Path);
    R.Stages.push_back({Stage::Parse, 0});
    R.Failed = Stage::Parse;
    return R;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return run(Buffer.str());
}

} // namespace spire::driver

//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative resource governor: a cancellation/budget token carried in
/// `driver::PipelineOptions` and polled at every worklist checkpoint
/// (lowerer frames, qopt worklist pops, parity-matrix rows, bit-sliced
/// sweep blocks, reader token loops). When a budget is exceeded the
/// governor trips once and stays tripped; the checkpoint unwinds its
/// stage cleanly and the driver reports a single `resource-limit`
/// diagnostic (spirec exit code 2, `--metrics-json` still written with
/// `succeeded:false` and a `limit_hit` field).
///
/// Cost model: checkpoints call the static `Governor::poll()`, which is
/// one thread_local load plus a null check when no governor is
/// installed — unmeasurable on the compile path (the ≤ 2% bar on
/// BENCH_pipeline.json). With a governor armed, the deadline/allocation
/// probes run only every `CheckStride` polls; gate/output caps are
/// plain integer compares charged explicitly by the stages that grow
/// artifacts.
///
/// Installation is scoped and thread-local: `GovernorScope` saves and
/// restores the active governor RAII-style, so batch mode arms a fresh
/// budget per input and nested pipelines (equivalence checking compiles
/// too) share the outermost token.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_GOVERNOR_H
#define SPIRE_SUPPORT_GOVERNOR_H

#include "obs/Metrics.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace spire::support {

class DiagnosticEngine;

/// Which budget a tripped governor ran out of.
enum class ResourceLimit : uint8_t {
  None,
  Deadline,    ///< --timeout-ms wall-clock budget.
  AllocBytes,  ///< --max-alloc-mb heap-traffic budget.
  Gates,       ///< --max-gates circuit-size cap.
  OutputBytes, ///< emitted-artifact size cap.
};

/// Stable lowercase name for \p L ("deadline", "alloc-bytes", "gates",
/// "output-bytes"); used in diagnostics and the metrics `limit_hit`
/// field.
const char *resourceLimitName(ResourceLimit L);

/// The budgets a governor enforces. All default to 0 = unlimited.
struct GovernorLimits {
  int64_t TimeoutMs = 0;
  int64_t MaxAllocBytes = 0;
  int64_t MaxGates = 0;
  int64_t MaxOutputBytes = 0;

  bool any() const {
    return TimeoutMs > 0 || MaxAllocBytes > 0 || MaxGates > 0 ||
           MaxOutputBytes > 0;
  }
};

class Governor {
public:
  Governor() = default;
  /// Arms the governor: snapshots the allocation baseline and starts the
  /// deadline clock. A default (all-zero) \p L yields a disarmed
  /// governor that never trips.
  explicit Governor(const GovernorLimits &L);

  bool enabled() const { return Armed; }
  bool exceeded() const { return Hit != ResourceLimit::None; }
  ResourceLimit limit() const { return Hit; }

  /// Human description of the tripped budget, e.g.
  /// "wall-clock budget of 100 ms exceeded (ran 234 ms)". Empty when not
  /// tripped.
  std::string describe() const;

  /// Reports `resource-limit: <describe>` into \p Diags once; repeat
  /// calls (the checkpoint that tripped plus the stage wrapper) are
  /// no-ops so the user sees a single error.
  void report(DiagnosticEngine &Diags);

  /// Checkpoint probe for the installed governor's owner: returns false
  /// once any budget is exceeded. Deadline/allocation probes run every
  /// `CheckStride` calls; in between this is two loads and a mask.
  bool check() {
    if (Hit != ResourceLimit::None)
      return false;
    if (!Armed || (++Polls & (CheckStride - 1)) != 0)
      return true;
    return checkNow();
  }

  /// Immediate (unstrided) deadline + allocation probe.
  bool checkNow();

  /// Charges a circuit of \p Gates gates against the gate cap. Immediate
  /// compare; call after any step that grows a circuit.
  bool checkGates(int64_t Gates);

  /// Charges an artifact of \p Bytes bytes against the output-size cap.
  bool checkOutputBytes(int64_t Bytes);

  /// The governor installed for this thread, or null.
  static Governor *current() { return Current; }

  /// Static checkpoint used by library worklists: true = keep going.
  /// A single thread_local load when no governor is installed.
  static bool poll() {
    Governor *G = Current;
    return !G || G->check();
  }

  /// Static gate-cap checkpoint for readers/passes that grow circuits.
  static bool pollGates(int64_t Gates) {
    Governor *G = Current;
    return !G || G->checkGates(Gates);
  }

private:
  friend class GovernorScope;

  /// Probe stride for check(); power of two. At ~100 ns per worklist
  /// step this bounds deadline overshoot to well under a millisecond.
  static constexpr uint64_t CheckStride = 1024;

  static thread_local Governor *Current;

  void trip(ResourceLimit L);

  GovernorLimits Limits;
  bool Armed = false;
  bool Reported = false;
  ResourceLimit Hit = ResourceLimit::None;
  uint64_t Polls = 0;
  int64_t BaselineAllocBytes = 0;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point TrippedAt;
  int64_t TrippedAllocBytes = 0;
  int64_t TrippedGates = 0;
  int64_t TrippedOutputBytes = 0;
  obs::Registry::Counter Checks;    ///< governor.checks
  obs::Registry::Counter LimitHits; ///< governor.limit_hits
};

/// RAII installer: makes \p G (when armed) the thread's current governor
/// and restores the previous one on destruction. Passing a null or
/// disarmed governor leaves the surrounding installation in place.
class GovernorScope {
public:
  explicit GovernorScope(Governor *G) : Prev(Governor::Current) {
    if (G && G->enabled())
      Governor::Current = G;
  }
  GovernorScope(const GovernorScope &) = delete;
  GovernorScope &operator=(const GovernorScope &) = delete;
  ~GovernorScope() { Governor::Current = Prev; }

private:
  Governor *Prev;
};

} // namespace spire::support

#endif // SPIRE_SUPPORT_GOVERNOR_H

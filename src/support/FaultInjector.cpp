#include "support/FaultInjector.h"

#include "obs/Metrics.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <new>

namespace spire::support {

namespace {

struct InjectorState {
  std::mutex Mu;
  std::optional<FaultSpec> Active; // Guarded by Mu.
  int64_t Arrivals = 0;            // Arrivals at Active->Site so far.
  bool Fired = false;              // One-shot: never fires twice.
  bool EnvChecked = false;         // SPIRE_FAULT parsed already.
  std::atomic<bool> Armed{false};  // Fast-path flag.
};

InjectorState &state() {
  static InjectorState S;
  return S;
}

/// Parses SPIRE_FAULT on first use so CLI-driven tests need no
/// in-process setup. Malformed specs are ignored (the matrix test arms
/// programmatically and checks parse errors separately).
void ensureEnvParsed(InjectorState &S) {
  if (S.EnvChecked)
    return;
  S.EnvChecked = true;
  const char *Env = std::getenv("SPIRE_FAULT");
  if (!Env || !*Env)
    return;
  std::string Error;
  if (std::optional<FaultSpec> Spec = parseFaultSpec(Env, Error)) {
    S.Active = std::move(*Spec);
    S.Armed.store(true, std::memory_order_relaxed);
  }
}

/// Returns true when the armed fault of kind \p K fires at \p Site.
bool shouldFire(const char *Site, FaultKind K) {
  InjectorState &S = state();
  if (!S.Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (!S.Active || S.Fired || S.Active->Kind != K ||
      S.Active->Site != Site)
    return false;
  if (S.Arrivals++ < S.Active->After)
    return false;
  S.Fired = true;
  S.Armed.store(false, std::memory_order_relaxed);
  ++obs::Registry::global().counter("fault.injected");
  return true;
}

} // namespace

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Alloc:
    return "alloc";
  case FaultKind::Io:
    return "io";
  case FaultKind::Diag:
    return "diag";
  case FaultKind::Kill:
    return "kill";
  }
  return "?";
}

std::optional<FaultSpec> parseFaultSpec(std::string_view Text,
                                        std::string &Error) {
  FaultSpec Spec;
  bool HaveSite = false, HaveKind = false;
  while (!Text.empty()) {
    size_t Comma = Text.find(',');
    std::string_view Field = Text.substr(0, Comma);
    Text = Comma == std::string_view::npos ? std::string_view()
                                           : Text.substr(Comma + 1);
    size_t Eq = Field.find('=');
    if (Eq == std::string_view::npos) {
      Error = "expected key=value, got '" + std::string(Field) + "'";
      return std::nullopt;
    }
    std::string_view Key = Field.substr(0, Eq);
    std::string_view Value = Field.substr(Eq + 1);
    if (Key == "site") {
      Spec.Site = std::string(Value);
      HaveSite = !Spec.Site.empty();
    } else if (Key == "kind") {
      if (Value == "alloc")
        Spec.Kind = FaultKind::Alloc;
      else if (Value == "io")
        Spec.Kind = FaultKind::Io;
      else if (Value == "diag")
        Spec.Kind = FaultKind::Diag;
      else if (Value == "kill")
        Spec.Kind = FaultKind::Kill;
      else {
        Error = "unknown fault kind '" + std::string(Value) +
                "' (expected alloc|io|diag|kill)";
        return std::nullopt;
      }
      HaveKind = true;
    } else if (Key == "after") {
      char *End = nullptr;
      std::string V(Value);
      long long N = std::strtoll(V.c_str(), &End, 10);
      if (!End || *End != '\0' || N < 0) {
        Error = "after= expects a non-negative integer, got '" + V + "'";
        return std::nullopt;
      }
      Spec.After = N;
    } else {
      Error = "unknown fault field '" + std::string(Key) +
              "' (expected site/kind/after)";
      return std::nullopt;
    }
  }
  if (!HaveSite || !HaveKind) {
    Error = "fault spec needs site=<name> and kind=alloc|io|diag|kill";
    return std::nullopt;
  }
  return Spec;
}

void armFault(FaultSpec Spec) {
  InjectorState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.EnvChecked = true; // Programmatic arming overrides the environment.
  S.Active = std::move(Spec);
  S.Arrivals = 0;
  S.Fired = false;
  S.Armed.store(true, std::memory_order_relaxed);
}

void disarmFault() {
  InjectorState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.EnvChecked = true;
  S.Active.reset();
  S.Arrivals = 0;
  S.Fired = false;
  S.Armed.store(false, std::memory_order_relaxed);
}

bool faultArmed() {
  InjectorState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  ensureEnvParsed(S);
  return S.Armed.load(std::memory_order_relaxed);
}

void faultAlloc(const char *Site) {
  {
    InjectorState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    ensureEnvParsed(S);
  }
  if (shouldFire(Site, FaultKind::Alloc))
    throw std::bad_alloc();
}

bool faultDiag(const char *Site, DiagnosticEngine &Diags) {
  {
    InjectorState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    ensureEnvParsed(S);
  }
  if (!shouldFire(Site, FaultKind::Diag))
    return false;
  Diags.error(std::string("injected fault at ") + Site);
  return true;
}

bool faultIo(const char *Site) {
  {
    InjectorState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    ensureEnvParsed(S);
  }
  return shouldFire(Site, FaultKind::Io);
}

void faultKill(const char *Site) {
  {
    InjectorState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    ensureEnvParsed(S);
  }
  if (shouldFire(Site, FaultKind::Kill))
    ::raise(SIGKILL); // No unwinding: the point is an abrupt death.
}

const std::vector<FaultSite> &faultSiteCatalog() {
  // Keep in sync with docs/robustness.md. Stage names match
  // driver::stageName; pass names match the qopt span names.
  static const std::vector<FaultSite> Catalog = {
      // Pipeline stages (alloc unwinds, diag fails the stage).
      {"parse", true, false, true},
      {"typecheck", true, false, true},
      {"lower", true, false, true},
      {"spire-opt", true, false, true},
      {"circuit-compile", true, false, true},
      {"qopt", true, false, true},
      {"legalize", true, false, true},
      {"estimate", true, false, true},
      // qopt passes (hooked inside the stage's runPass wrapper).
      {"qopt/decompose-clifford+t", true, false, true},
      {"qopt/decompose-toffoli", true, false, true},
      {"qopt/cancel-standard", true, false, true},
      {"qopt/cancel-peephole", true, false, true},
      {"qopt/cancel-exhaustive", true, false, true},
      {"qopt/phase-fold", true, false, true},
      // Interchange readers.
      {"read/qc", true, false, true},
      {"read/qasm3", true, false, true},
      // File I/O boundaries in spirec.
      {"io/input", false, true, false},
      {"write/output", true, true, false},
      {"write/metrics", true, true, false},
      {"write/trace", true, true, false},
      // Equivalence checking.
      {"equiv/check", true, false, true},
      // Artifact cache (io degrades to uncached operation; kill
      // simulates abrupt death for the crash-consistency matrix).
      {"cache.scan", false, true, false, true},
      {"cache.read", false, true, false, true},
      {"cache.write", false, true, false, true},
      {"cache.evict", false, true, false, true},
  };
  return Catalog;
}

} // namespace spire::support

//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent content-addressed artifact cache, robustness-first. Each
/// entry is a single file `<key>.art` in the cache directory whose first
/// line is a manifest and whose remainder is the payload verbatim:
///
///   SPIREART1 key=<32 hex> hash=<16 hex> size=<decimal> tool=<id>\n
///   <payload bytes>
///
/// The key is derived by the caller (driver::cacheKeyFor hashes input
/// bytes + output-affecting PipelineOptions + the format version); the
/// hash line re-commits the payload so torn, truncated, or bit-flipped
/// entries are detected on every read. The crash-consistency contract:
///
///   - Writes stage-and-rename through writeFileAtomic, so a kill -9 at
///     any instant leaves either the old entry, the new entry, or an
///     orphaned temp — never a torn file visible under the entry name.
///   - Reads re-hash the payload against the manifest; any mismatch
///     quarantines the entry (rename into `quarantine/`), bumps the
///     `cache.corrupt` counter, and reports a miss so the caller
///     silently recomputes. Never a wrong answer, never a failed
///     request because the cache is damaged.
///   - Concurrent writers race benignly: rename(2) is atomic and both
///     racers stage identical bytes for identical keys.
///   - Transient I/O faults (SPIRE_FAULT sites `cache.*`) are retried
///     with bounded backoff, then the operation degrades to uncached
///     (`cache.io_errors`) rather than failing the request.
///
/// Size-capped LRU eviction (`--cache-max-mb`) removes oldest-used
/// entries after each store; hits touch the entry mtime so recency is
/// the file timestamp. All traffic is published through obs counters:
/// cache.hits/misses/corrupt/evicted/stores/store_failures/retries/
/// io_errors/stale_temps_removed.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_ARTIFACTCACHE_H
#define SPIRE_SUPPORT_ARTIFACTCACHE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace spire::support {

/// Bumped whenever the entry format or key derivation changes; part of
/// both the manifest header and the cache key, so stale formats read as
/// misses rather than garbage.
inline constexpr int ArtifactCacheFormatVersion = 1;

/// Stable 64-bit content hash (SplitMix64 finalizer over 8-byte
/// little-endian chunks). tools/crash_check.py re-implements this to
/// validate entries from the outside; keep the two in sync.
uint64_t hashBytes(std::string_view Data);

struct CacheConfig {
  std::string Dir;
  /// Soft size cap in bytes; 0 means unlimited. Enforced by LRU
  /// eviction after each store.
  int64_t MaxBytes = 0;
  /// Retries after a failed read/write before degrading to uncached.
  int RetryAttempts = 2;
  /// Base backoff between retries; doubles per attempt.
  int RetryBackoffMs = 1;
  /// Manifest tool id (space-free); mismatches read as misses.
  std::string ToolVersion;
};

class ArtifactCache {
public:
  /// Creates the cache directory (and `quarantine/`) if missing, sweeps
  /// orphaned staging temps, and returns a ready cache. Returns null
  /// with a one-line reason in \p Error when the directory cannot be
  /// made usable — callers degrade to uncached operation.
  static std::unique_ptr<ArtifactCache> open(const CacheConfig &Config,
                                             std::string &Error);

  /// Returns the verified payload for the key, or nullopt on miss. A
  /// corrupt entry is quarantined and reported as a miss; a hit touches
  /// the entry for LRU recency.
  std::optional<std::string> lookup(uint64_t KeyHi, uint64_t KeyLo);

  /// Stores the payload under the key (atomic stage-and-rename), then
  /// applies the size cap. Returns false when the write ultimately
  /// failed; the caller's result is unaffected either way.
  bool store(uint64_t KeyHi, uint64_t KeyLo, std::string_view Payload);

  /// Entry file name for a key: `<32 hex>.art`.
  static std::string entryName(uint64_t KeyHi, uint64_t KeyLo);

  const std::string &dir() const { return Config.Dir; }

  /// Per-instance traffic counts (global counters mirror these).
  int64_t hits() const { return Hits; }
  int64_t misses() const { return Misses; }
  int64_t corrupt() const { return Corrupt; }
  int64_t evicted() const { return Evicted; }
  int64_t stores() const { return Stores; }

private:
  explicit ArtifactCache(CacheConfig C) : Config(std::move(C)) {}

  std::string entryPath(uint64_t KeyHi, uint64_t KeyLo) const;
  /// Moves a damaged entry into `quarantine/` (unlinks if the rename
  /// itself fails) and records it.
  void quarantine(const std::string &Path, const std::string &Reason);
  /// Evicts oldest-used entries until the directory fits MaxBytes.
  void enforceSizeCap();

  CacheConfig Config;
  int64_t Hits = 0;
  int64_t Misses = 0;
  int64_t Corrupt = 0;
  int64_t Evicted = 0;
  int64_t Stores = 0;
};

} // namespace spire::support

#endif // SPIRE_SUPPORT_ARTIFACTCACHE_H

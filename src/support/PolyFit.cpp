#include "support/PolyFit.h"

#include <cassert>

namespace spire::support {

int Polynomial::degree() const {
  for (int K = static_cast<int>(Coeffs.size()) - 1; K >= 0; --K)
    if (!Coeffs[K].isZero())
      return K;
  return 0;
}

Rational Polynomial::evaluate(int64_t X) const {
  // Horner evaluation from the top coefficient down.
  Rational Acc;
  for (int K = static_cast<int>(Coeffs.size()) - 1; K >= 0; --K)
    Acc = Acc * Rational(X) + Coeffs[K];
  return Acc;
}

std::string Polynomial::str(const std::string &Var) const {
  std::string Out;
  for (int K = degree(); K >= 0; --K) {
    if (K >= static_cast<int>(Coeffs.size()))
      continue;
    const Rational &C = Coeffs[K];
    if (C.isZero() && degree() != 0)
      continue;
    Rational Magnitude = C.isNegative() ? -C : C;
    if (Out.empty())
      Out += C.isNegative() ? "-" : "";
    else
      Out += C.isNegative() ? "-" : "+";
    std::string CoeffText = Magnitude.isInteger()
                                ? Magnitude.str()
                                : "(" + Magnitude.str() + ")";
    if (K == 0) {
      Out += CoeffText;
      continue;
    }
    // Omit a unit coefficient in front of the variable.
    if (!(Magnitude.isInteger() && Magnitude.asInteger() == 1))
      Out += CoeffText;
    Out += Var;
    if (K > 1)
      Out += "^" + std::to_string(K);
  }
  if (Out.empty())
    Out = "0";
  return Out;
}

bool operator==(const Polynomial &A, const Polynomial &B) {
  size_t N = std::max(A.Coeffs.size(), B.Coeffs.size());
  for (size_t K = 0; K != N; ++K) {
    Rational CA = K < A.Coeffs.size() ? A.Coeffs[K] : Rational();
    Rational CB = K < B.Coeffs.size() ? B.Coeffs[K] : Rational();
    if (CA != CB)
      return false;
  }
  return true;
}

Polynomial fitPolynomial(int64_t StartX, const std::vector<int64_t> &Values) {
  assert(!Values.empty() && "fitting requires at least one sample");

  // Forward-difference table: Diffs[k] holds the k-th differences.
  std::vector<std::vector<Rational>> Diffs;
  Diffs.emplace_back();
  for (int64_t V : Values)
    Diffs.back().emplace_back(V);
  while (Diffs.back().size() > 1) {
    const std::vector<Rational> &Prev = Diffs.back();
    std::vector<Rational> Next;
    for (size_t I = 0; I + 1 < Prev.size(); ++I)
      Next.push_back(Prev[I + 1] - Prev[I]);
    Diffs.push_back(std::move(Next));
  }

  // Newton forward form: p(x) = sum_k Diffs[k][0] * C(x - StartX, k).
  // Expand each falling-factorial binomial into monomial coefficients.
  size_t MaxOrder = Diffs.size() - 1;
  Polynomial Result;
  Result.Coeffs.assign(MaxOrder + 1, Rational());

  // Basis[j] holds the coefficient of x^j in prod_{i<k} (x - StartX - i) / k!
  std::vector<Rational> Basis = {Rational(1)};
  Rational Factorial(1);
  for (size_t K = 0; K <= MaxOrder; ++K) {
    if (K > 0) {
      // Multiply Basis by (x - StartX - (K - 1)).
      Rational Shift(-(StartX + static_cast<int64_t>(K) - 1));
      std::vector<Rational> Next(Basis.size() + 1, Rational());
      for (size_t J = 0; J != Basis.size(); ++J) {
        Next[J + 1] += Basis[J];
        Next[J] += Basis[J] * Shift;
      }
      Basis = std::move(Next);
      Factorial *= Rational(static_cast<int64_t>(K));
    }
    Rational Lead = Diffs[K][0] / Factorial;
    if (Lead.isZero())
      continue;
    for (size_t J = 0; J != Basis.size(); ++J)
      Result.Coeffs[J] += Lead * Basis[J];
  }

  // Trim trailing zero coefficients so degree() reports the minimal fit.
  while (Result.Coeffs.size() > 1 && Result.Coeffs.back().isZero())
    Result.Coeffs.pop_back();
  return Result;
}

int fittedDegree(int64_t StartX, const std::vector<int64_t> &Values) {
  return fitPolynomial(StartX, Values).degree();
}

} // namespace spire::support

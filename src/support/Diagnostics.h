//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic accumulation for the Spire compiler. Library code never prints
/// or throws; it reports through a DiagnosticEngine which tools inspect.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_DIAGNOSTICS_H
#define SPIRE_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace spire::support {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// A single diagnostic message attached to an optional source location.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" in the style of classic compilers.
  std::string str() const;
};

/// Collects diagnostics produced by any stage of the compiler.
///
/// The engine is passed by reference through the pipeline; stages report
/// problems and the driver decides whether to continue. Following LLVM
/// conventions, no stage throws.
class DiagnosticEngine {
public:
  /// error/warning also bump the process-wide `diags.errors` /
  /// `diags.warnings` metrics (defined out of line to keep the header
  /// free of the obs dependency).
  void error(SourceLoc Loc, std::string Message);
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }

  void warning(SourceLoc Loc, std::string Message);

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; empty string when clean.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace spire::support

#endif // SPIRE_SUPPORT_DIAGNOSTICS_H

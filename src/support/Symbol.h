//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers for the compiler middle end.
///
/// A Symbol is a 32-bit index into a process-wide SymbolTable that owns
/// every distinct spelling once, in a chunked character arena. Interning
/// happens at the boundaries where names are *born* (parsing surface
/// text, uniquifying during lowering, generating fresh temporaries);
/// everywhere else — scopes, mod-sets, register maps, profile-cache
/// keys — the compiler moves, hashes, and compares 4-byte ids. Spellings
/// are materialized only at the printing and diagnostics boundaries.
///
/// The table is append-only and never deallocates a spelling, so a
/// Symbol's string_view stays valid for the life of the process. It is
/// not thread-safe; the compiler pipeline is single-threaded by design
/// (one pipeline per thread would need one table per thread or a lock,
/// neither of which this codebase needs yet).
///
/// Symbol construction from a string is deliberately implicit: the whole
/// surface of the middle end (Atom::var("x", Ty), Regs["acc"], ...)
/// reads exactly as it did when names were std::strings, while the hot
/// paths underneath pay u32 comparisons instead of memcmp and
/// red-black-tree rebalancing on heap-allocated keys.
///
/// SymbolSet is the companion flat set: a sorted vector of ids with
/// binary-search membership. The IR analyses (modSet, allVars,
/// collectVars) return SymbolSets built with one sort+unique over a
/// scratch vector — no per-element node allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_SYMBOL_H
#define SPIRE_SUPPORT_SYMBOL_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spire::support {

class SymbolTable;

/// An interned identifier: a 32-bit id whose spelling lives in the
/// global SymbolTable. Id 0 is the empty spelling, so a
/// default-constructed Symbol behaves like the old empty std::string
/// (Symbol().empty() is true and prints as "").
class Symbol {
public:
  constexpr Symbol() = default;
  /// Interning constructors — implicit so spelling-level call sites read
  /// unchanged. These are the only places a string comparison happens.
  Symbol(std::string_view Spelling);
  Symbol(const char *Spelling) : Symbol(std::string_view(Spelling)) {}
  Symbol(const std::string &Spelling)
      : Symbol(std::string_view(Spelling)) {}

  /// The interned spelling; valid for the life of the process.
  std::string_view view() const;
  /// The spelling as an owned string (diagnostics/printing boundary).
  std::string str() const { return std::string(view()); }

  bool empty() const { return Id == 0; }
  uint32_t id() const { return Id; }
  /// Wraps an id previously obtained from id(); no validation.
  static Symbol fromId(uint32_t Id) {
    Symbol S;
    S.Id = Id;
    return S;
  }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  /// Orders by id (interning order), not lexicographically: sets and
  /// maps over Symbols are for identity, not for display. Sort
  /// materialized spellings when presentation order matters.
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

  friend std::ostream &operator<<(std::ostream &OS, Symbol S) {
    return OS << S.view();
  }

private:
  uint32_t Id = 0;
};

/// Appends A's spelling to a std::string (diagnostics convenience, so
/// `"variable '" + Name + "'"` keeps reading naturally).
inline std::string operator+(const std::string &A, Symbol B) {
  std::string Out = A;
  Out += B.view();
  return Out;
}
inline std::string operator+(Symbol A, const std::string &B) {
  std::string Out(A.view());
  Out += B;
  return Out;
}

/// The process-wide interner: append-only spelling arena plus an open
/// hash from spelling to id.
class SymbolTable {
public:
  SymbolTable();
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Id of `Spelling`, interning it on first sight. O(1) amortized.
  uint32_t intern(std::string_view Spelling);
  /// Spelling of an id produced by intern().
  std::string_view spelling(uint32_t Id) const { return Spellings[Id]; }
  /// Number of distinct spellings interned (including the empty one).
  size_t size() const { return Spellings.size(); }

  static SymbolTable &global();

private:
  const char *arenaCopy(std::string_view Spelling);

  /// Chunked character arena owning every spelling.
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t ChunkUsed = 0;
  size_t ChunkCap = 0;

  std::vector<std::string_view> Spellings; ///< Indexed by id.

  /// Open-addressing hash table of ids, keyed by the interned spelling.
  std::vector<uint32_t> Buckets; ///< 0 = empty (id 0 is pre-seeded).
  size_t BucketMask = 0;
  void grow();
};

inline Symbol::Symbol(std::string_view Spelling) {
  Id = SymbolTable::global().intern(Spelling);
}

inline std::string_view Symbol::view() const {
  return SymbolTable::global().spelling(Id);
}

/// A flat sorted set of Symbols: contiguous storage, binary-search
/// membership, one allocation for the whole set. Build incrementally
/// with insert() for small sets, or collect into a vector and
/// adoptUnsorted() for large ones.
class SymbolSet {
public:
  SymbolSet() = default;

  bool insert(Symbol S) {
    auto It = std::lower_bound(V.begin(), V.end(), S);
    if (It != V.end() && *It == S)
      return false;
    V.insert(It, S);
    return true;
  }

  /// Takes an arbitrary-order, possibly-duplicated vector and becomes
  /// its set (sort + unique in place; no per-element allocation).
  void adoptUnsorted(std::vector<Symbol> Elems) {
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    V = std::move(Elems);
  }

  bool count(Symbol S) const {
    return std::binary_search(V.begin(), V.end(), S);
  }
  bool contains(Symbol S) const { return count(S); }

  size_t size() const { return V.size(); }
  bool empty() const { return V.empty(); }
  void clear() { V.clear(); }
  void reserve(size_t N) { V.reserve(N); }

  std::vector<Symbol>::const_iterator begin() const { return V.begin(); }
  std::vector<Symbol>::const_iterator end() const { return V.end(); }

  friend bool operator==(const SymbolSet &A, const SymbolSet &B) {
    return A.V == B.V;
  }

  /// The spellings, sorted lexicographically — the presentation-order
  /// boundary (tests, diagnostics listing variable names).
  std::vector<std::string> spellings() const {
    std::vector<std::string> Out;
    Out.reserve(V.size());
    for (Symbol S : V)
      Out.push_back(S.str());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

private:
  std::vector<Symbol> V;
};

} // namespace spire::support

namespace std {
template <> struct hash<spire::support::Symbol> {
  size_t operator()(spire::support::Symbol S) const noexcept {
    // Fibonacci multiplicative scramble of the id; ids are dense.
    return static_cast<size_t>(S.id()) * 0x9e3779b97f4a7c15ull;
  }
};
} // namespace std

#endif // SPIRE_SUPPORT_SYMBOL_H

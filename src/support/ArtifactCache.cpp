#include "support/ArtifactCache.h"

#include "obs/Metrics.h"
#include "support/FaultInjector.h"
#include "support/FileIO.h"
#include "support/Hash.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace spire::support {

namespace {

std::string hex(uint64_t V, int Digits) {
  static const char *Alphabet = "0123456789abcdef";
  std::string Out(static_cast<size_t>(Digits), '0');
  for (int I = Digits - 1; I >= 0 && V; --I, V >>= 4)
    Out[static_cast<size_t>(I)] = Alphabet[V & 0xf];
  return Out;
}

bool parseHex(std::string_view Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 16)
    return false;
  Out = 0;
  for (char C : Text) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else
      return false;
    Out = (Out << 4) | static_cast<uint64_t>(Digit);
  }
  return true;
}

/// Fields of one parsed `SPIREART1 ...` manifest line.
struct Manifest {
  uint64_t KeyHi = 0, KeyLo = 0;
  uint64_t Hash = 0;
  uint64_t Size = 0;
  std::string Tool;
};

/// Parses the header line (without the trailing newline). Returns false
/// on any structural damage.
bool parseManifest(std::string_view Line, Manifest &M) {
  constexpr std::string_view Magic = "SPIREART1 ";
  if (Line.substr(0, Magic.size()) != Magic)
    return false;
  Line.remove_prefix(Magic.size());
  bool HaveKey = false, HaveHash = false, HaveSize = false, HaveTool = false;
  while (!Line.empty()) {
    size_t Space = Line.find(' ');
    std::string_view Field = Line.substr(0, Space);
    Line = Space == std::string_view::npos ? std::string_view()
                                           : Line.substr(Space + 1);
    size_t Eq = Field.find('=');
    if (Eq == std::string_view::npos)
      return false;
    std::string_view Key = Field.substr(0, Eq);
    std::string_view Value = Field.substr(Eq + 1);
    if (Key == "key") {
      if (Value.size() != 32 || !parseHex(Value.substr(0, 16), M.KeyHi) ||
          !parseHex(Value.substr(16), M.KeyLo))
        return false;
      HaveKey = true;
    } else if (Key == "hash") {
      if (Value.size() != 16 || !parseHex(Value, M.Hash))
        return false;
      HaveHash = true;
    } else if (Key == "size") {
      M.Size = 0;
      if (Value.empty())
        return false;
      for (char C : Value) {
        if (C < '0' || C > '9')
          return false;
        M.Size = M.Size * 10 + static_cast<uint64_t>(C - '0');
      }
      HaveSize = true;
    } else if (Key == "tool") {
      M.Tool = std::string(Value);
      HaveTool = true;
    } else {
      return false;
    }
  }
  return HaveKey && HaveHash && HaveSize && HaveTool;
}

/// Runs \p Op up to 1 + RetryAttempts times with doubling backoff.
/// Counts each retry; counts one io_error when every attempt failed.
template <typename OpFn>
bool withRetries(const CacheConfig &Config, OpFn Op) {
  int Backoff = std::max(Config.RetryBackoffMs, 1);
  for (int Attempt = 0;; ++Attempt) {
    if (Op())
      return true;
    if (Attempt >= Config.RetryAttempts) {
      ++obs::Registry::global().counter("cache.io_errors");
      return false;
    }
    ++obs::Registry::global().counter("cache.retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff *= 2;
  }
}

bool makeDir(const std::string &Path, std::string &Error) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat St;
    if (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      return true;
  }
  Error = "cannot create cache directory " + Path + ": " +
          std::strerror(errno);
  return false;
}

} // namespace

uint64_t hashBytes(std::string_view Data) {
  uint64_t H = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(Data.size());
  size_t I = 0;
  for (; I + 8 <= Data.size(); I += 8) {
    uint64_t Chunk = 0;
    for (int B = 0; B < 8; ++B)
      Chunk |= static_cast<uint64_t>(static_cast<uint8_t>(Data[I + B]))
               << (8 * B);
    H = mix64(H ^ Chunk);
  }
  if (I < Data.size()) {
    uint64_t Tail = 0;
    for (int B = 0; I < Data.size(); ++I, ++B)
      Tail |= static_cast<uint64_t>(static_cast<uint8_t>(Data[I])) << (8 * B);
    H = mix64(H ^ Tail);
  }
  return mix64(H);
}

std::string ArtifactCache::entryName(uint64_t KeyHi, uint64_t KeyLo) {
  return hex(KeyHi, 16) + hex(KeyLo, 16) + ".art";
}

std::string ArtifactCache::entryPath(uint64_t KeyHi, uint64_t KeyLo) const {
  return Config.Dir + "/" + entryName(KeyHi, KeyLo);
}

std::unique_ptr<ArtifactCache> ArtifactCache::open(const CacheConfig &Config,
                                                   std::string &Error) {
  std::string Err;
  if (!makeDir(Config.Dir, Err) ||
      !makeDir(Config.Dir + "/quarantine", Err)) {
    Error = Err;
    return nullptr;
  }
  // Startup hygiene: reap staging temps orphaned by writers that died
  // before their rename. An io fault here degrades to skipping the
  // sweep (the temps are harmless, just disk noise); a kill fault
  // simulates dying mid-scan.
  faultKill("cache.scan");
  if (!faultIo("cache.scan")) {
    int Swept = sweepStaleTempFiles(Config.Dir);
    if (Swept)
      obs::Registry::global().counter("cache.stale_temps_removed") += Swept;
  }
  return std::unique_ptr<ArtifactCache>(new ArtifactCache(Config));
}

std::optional<std::string> ArtifactCache::lookup(uint64_t KeyHi,
                                                 uint64_t KeyLo) {
  const std::string Path = entryPath(KeyHi, KeyLo);
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    ++Misses;
    ++obs::Registry::global().counter("cache.misses");
    return std::nullopt;
  }
  faultKill("cache.read");

  std::string Raw;
  bool Read = withRetries(Config, [&] {
    std::string Err;
    return readFile(Path, Raw, Err, "cache.read");
  });
  if (!Read) {
    // Retries exhausted: degrade to a miss, never fail the request.
    ++Misses;
    ++obs::Registry::global().counter("cache.misses");
    return std::nullopt;
  }

  size_t Newline = Raw.find('\n');
  Manifest M;
  std::string Reason;
  if (Newline == std::string::npos ||
      !parseManifest(std::string_view(Raw).substr(0, Newline), M))
    Reason = "unparseable manifest";
  else if (M.KeyHi != KeyHi || M.KeyLo != KeyLo)
    Reason = "key mismatch";
  else if (M.Tool != Config.ToolVersion)
    Reason = "tool version mismatch";
  else if (Raw.size() - Newline - 1 != M.Size)
    Reason = "payload size mismatch";
  else if (hashBytes(std::string_view(Raw).substr(Newline + 1)) != M.Hash)
    Reason = "payload hash mismatch";
  if (!Reason.empty()) {
    quarantine(Path, Reason);
    ++Misses;
    ++obs::Registry::global().counter("cache.misses");
    return std::nullopt;
  }

  // Touch the entry so LRU eviction sees the use.
  ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0);
  ++Hits;
  ++obs::Registry::global().counter("cache.hits");
  return Raw.substr(Newline + 1);
}

bool ArtifactCache::store(uint64_t KeyHi, uint64_t KeyLo,
                          std::string_view Payload) {
  std::string Entry = "SPIREART1 key=" + hex(KeyHi, 16) + hex(KeyLo, 16) +
                      " hash=" + hex(hashBytes(Payload), 16) +
                      " size=" + std::to_string(Payload.size()) +
                      " tool=" + Config.ToolVersion + "\n";
  Entry.append(Payload.data(), Payload.size());

  const std::string Path = entryPath(KeyHi, KeyLo);
  bool Wrote = withRetries(Config, [&] {
    std::string Err;
    return writeFileAtomic(Path, Entry, Err, "cache.write");
  });
  if (!Wrote) {
    ++obs::Registry::global().counter("cache.store_failures");
    return false;
  }
  ++Stores;
  ++obs::Registry::global().counter("cache.stores");
  enforceSizeCap();
  return true;
}

void ArtifactCache::quarantine(const std::string &Path,
                               const std::string &Reason) {
  size_t Slash = Path.rfind('/');
  std::string Name =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  std::string Dest = Config.Dir + "/quarantine/" + Name;
  if (std::rename(Path.c_str(), Dest.c_str()) != 0)
    std::remove(Path.c_str()); // Second-best: at least stop serving it.
  ++Corrupt;
  ++obs::Registry::global().counter("cache.corrupt");
  (void)Reason; // Reported through the counter; callers stay silent.
}

void ArtifactCache::enforceSizeCap() {
  if (Config.MaxBytes <= 0)
    return;
  faultKill("cache.evict");
  if (faultIo("cache.evict"))
    return; // Degrade: skip this round, the next store retries.

  struct EntryInfo {
    std::string Name;
    int64_t Size;
    struct timespec MTime;
  };
  std::vector<EntryInfo> Entries;
  int64_t Total = 0;
  DIR *D = ::opendir(Config.Dir.c_str());
  if (!D)
    return;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".art")
      continue;
    struct stat St;
    if (::stat((Config.Dir + "/" + Name).c_str(), &St) != 0 ||
        !S_ISREG(St.st_mode))
      continue;
    Entries.push_back({std::move(Name), St.st_size, St.st_mtim});
    Total += St.st_size;
  }
  ::closedir(D);
  if (Total <= Config.MaxBytes)
    return;

  std::sort(Entries.begin(), Entries.end(),
            [](const EntryInfo &A, const EntryInfo &B) {
              if (A.MTime.tv_sec != B.MTime.tv_sec)
                return A.MTime.tv_sec < B.MTime.tv_sec;
              return A.MTime.tv_nsec < B.MTime.tv_nsec;
            });
  for (const EntryInfo &E : Entries) {
    if (Total <= Config.MaxBytes)
      break;
    if (std::remove((Config.Dir + "/" + E.Name).c_str()) != 0)
      continue; // A racer got there first; its accounting is its own.
    Total -= E.Size;
    ++Evicted;
    ++obs::Registry::global().counter("cache.evicted");
  }
}

} // namespace spire::support

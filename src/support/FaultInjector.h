//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for robustness testing. A single fault
/// spec can be armed process-wide — from the `SPIRE_FAULT` environment
/// variable (`site=<name>,kind=alloc|io|diag[,after=N]`) or
/// programmatically — and fires exactly once, on the (N+1)-th arrival at
/// the named site:
///
///   - `alloc`: the site throws std::bad_alloc, exercising the same
///     unwind a real allocation failure takes (caught at the stage
///     wrapper / tool boundary, never escaping as a crash).
///   - `diag`:  the site reports "injected fault at <site>" through its
///     DiagnosticEngine and fails, exercising the error-propagation
///     path.
///   - `io`:    the site's file operation reports failure, exercising
///     the atomic-write / unreadable-input paths.
///   - `kill`:  the process raises SIGKILL at the site, simulating an
///     abrupt death (power loss, OOM-killer) at that exact instant.
///     Only crash-consistency sites (`cache.*`, the atomic writers)
///     advertise it; tools/crash_check.py drives the matrix.
///
/// Sites are string names registered in the catalog below: every
/// pipeline stage (by `stageName`), every qopt pass (by its span name),
/// both readers, the file emitters, and the equivalence checker. Hooks
/// cost a single relaxed atomic load when nothing is armed, so they are
/// free in production.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_FAULTINJECTOR_H
#define SPIRE_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spire::support {

class DiagnosticEngine;

enum class FaultKind : uint8_t { Alloc, Io, Diag, Kill };

const char *faultKindName(FaultKind K);

/// One armed fault: fire `Kind` at the (After+1)-th arrival at `Site`.
struct FaultSpec {
  std::string Site;
  FaultKind Kind = FaultKind::Diag;
  int64_t After = 0;
};

/// Parses a `site=<name>,kind=alloc|io|diag|kill[,after=N]` spec.
/// Returns nullopt and fills \p Error on malformed input.
std::optional<FaultSpec> parseFaultSpec(std::string_view Text,
                                        std::string &Error);

/// Arms \p S process-wide, replacing any active spec (including one
/// armed from the environment). For in-process tests.
void armFault(FaultSpec S);

/// Disarms any active fault (and suppresses future re-arming from the
/// environment for this process).
void disarmFault();

/// True while a spec is armed and has not fired yet.
bool faultArmed();

/// Hook: throws std::bad_alloc when an armed `alloc` fault fires at
/// \p Site. No-op otherwise.
void faultAlloc(const char *Site);

/// Hook: reports "injected fault at <site>" into \p Diags and returns
/// true when an armed `diag` fault fires at \p Site.
bool faultDiag(const char *Site, DiagnosticEngine &Diags);

/// Hook: returns true (meaning: fail this I/O operation) when an armed
/// `io` fault fires at \p Site.
bool faultIo(const char *Site);

/// Hook: raises SIGKILL (no unwinding, no atexit) when an armed `kill`
/// fault fires at \p Site. The process dies mid-operation, exactly as a
/// power loss would; crash-consistency tests assert the on-disk state
/// left behind still validates.
void faultKill(const char *Site);

/// One catalog entry: a site name plus the kinds that are meaningful to
/// inject there (io only where a file operation exists, etc.).
struct FaultSite {
  const char *Name;
  bool Alloc;
  bool Io;
  bool Diag;
  bool Kill = false;
};

/// Every registered injection site. The robustness matrix test iterates
/// this; docs/robustness.md lists it.
const std::vector<FaultSite> &faultSiteCatalog();

} // namespace spire::support

#endif // SPIRE_SUPPORT_FAULTINJECTOR_H

#include "support/Diagnostics.h"

#include "obs/Metrics.h"

namespace spire::support {

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
  ++obs::Registry::global().counter("diags.errors");
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  ++obs::Registry::global().counter("diags.warnings");
}

std::string Diagnostic::str() const {
  std::string Out;
  switch (Kind) {
  case DiagKind::Error:
    Out = "error: ";
    break;
  case DiagKind::Warning:
    Out = "warning: ";
    break;
  case DiagKind::Note:
    Out = "note: ";
    break;
  }
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

} // namespace spire::support

#include "support/Diagnostics.h"

namespace spire::support {

std::string Diagnostic::str() const {
  std::string Out;
  switch (Kind) {
  case DiagKind::Error:
    Out = "error: ";
    break;
  case DiagKind::Warning:
    Out = "warning: ";
    break;
  case DiagKind::Note:
    Out = "note: ";
    break;
  }
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

} // namespace spire::support

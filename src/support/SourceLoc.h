//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations for diagnostics emitted by the Tower frontend.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_SOURCELOC_H
#define SPIRE_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace spire::support {

/// A (line, column) position within a Tower source buffer. Lines and columns
/// are 1-based; a default-constructed location is "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }

  /// Renders as "line:col", or "<unknown>" for invalid locations.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace spire::support

#endif // SPIRE_SUPPORT_SOURCELOC_H

//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: the one hash/PRNG primitive shared across the codebase —
/// the qopt parity hash, the simulator's sparse-state hash, the
/// interchange basis-state sampler, and the bench workload generators.
/// Deterministic across platforms and libstdc++ versions (unlike
/// <random> engines), which several CI jobs rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_HASH_H
#define SPIRE_SUPPORT_HASH_H

#include <cstdint>

namespace spire::support {

/// The SplitMix64 finalizer: mixes one 64-bit value.
inline uint64_t mix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// The SplitMix64 generator: advances `State` and returns the next
/// value of the sequence (mix64 of the pre-advance state, which already
/// includes the golden-gamma increment).
inline uint64_t splitMix64(uint64_t &State) {
  uint64_t Out = mix64(State);
  State += 0x9e3779b97f4a7c15ull;
  return Out;
}

} // namespace spire::support

#endif // SPIRE_SUPPORT_HASH_H

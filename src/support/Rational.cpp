#include "support/Rational.h"

namespace spire::support {

namespace {

__int128 gcd128(__int128 A, __int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

std::string int128ToString(__int128 Value) {
  if (Value == 0)
    return "0";
  bool Negative = Value < 0;
  // Careful with INT128_MIN: negate digit by digit via unsigned.
  unsigned __int128 Magnitude =
      Negative ? -static_cast<unsigned __int128>(Value)
               : static_cast<unsigned __int128>(Value);
  std::string Digits;
  while (Magnitude != 0) {
    Digits += static_cast<char>('0' + static_cast<int>(Magnitude % 10));
    Magnitude /= 10;
  }
  if (Negative)
    Digits += '-';
  return std::string(Digits.rbegin(), Digits.rend());
}

} // namespace

void Rational::normalize() {
  assert(Den != 0 && "rational with zero denominator");
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  if (Num == 0) {
    Den = 1;
    return;
  }
  Int G = gcd128(Num, Den);
  Num /= G;
  Den /= G;
}

std::string Rational::str() const {
  if (Den == 1)
    return int128ToString(Num);
  return int128ToString(Num) + "/" + int128ToString(Den);
}

} // namespace spire::support

#include "support/AllocStats.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include <sys/resource.h>

namespace {

std::atomic<int64_t> GAllocations{0};
std::atomic<int64_t> GAllocatedBytes{0};

void countAllocation(std::size_t Size) {
  GAllocations.fetch_add(1, std::memory_order_relaxed);
  GAllocatedBytes.fetch_add(static_cast<int64_t>(Size),
                            std::memory_order_relaxed);
}

void *allocateCounted(std::size_t Size) {
  if (Size == 0)
    Size = 1;
  for (;;) {
    if (void *P = std::malloc(Size)) {
      countAllocation(Size);
      return P;
    }
    std::new_handler Handler = std::get_new_handler();
    if (!Handler)
      throw std::bad_alloc();
    Handler();
  }
}

void *allocateCountedAligned(std::size_t Size, std::size_t Align) {
  if (Size == 0)
    Size = 1;
  for (;;) {
    void *P = nullptr;
    if (posix_memalign(&P, Align < sizeof(void *) ? sizeof(void *) : Align,
                       Size) == 0) {
      countAllocation(Size);
      return P;
    }
    std::new_handler Handler = std::get_new_handler();
    if (!Handler)
      throw std::bad_alloc();
    Handler();
  }
}

} // namespace

namespace spire::support {

int64_t allocationCount() {
  return GAllocations.load(std::memory_order_relaxed);
}

int64_t allocatedBytes() {
  return GAllocatedBytes.load(std::memory_order_relaxed);
}

int64_t peakRSSKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<int64_t>(Usage.ru_maxrss); // KiB on Linux.
}

} // namespace spire::support

//===----------------------------------------------------------------------===//
// Replacement global allocation functions (counting pass-throughs).
// Linked into a binary only when something in it references the
// AllocStats API above (this TU is otherwise never pulled from the
// archive).
//===----------------------------------------------------------------------===//

void *operator new(std::size_t Size) { return allocateCounted(Size); }
void *operator new[](std::size_t Size) { return allocateCounted(Size); }

void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  if (Size == 0)
    Size = 1;
  void *P = std::malloc(Size);
  if (P)
    countAllocation(Size);
  return P;
}
void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  return operator new(Size, std::nothrow);
}

void *operator new(std::size_t Size, std::align_val_t Align) {
  return allocateCountedAligned(Size, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return allocateCountedAligned(Size, static_cast<std::size_t>(Align));
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

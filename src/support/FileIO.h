//===----------------------------------------------------------------------===//
///
/// \file
/// Durable file I/O for the tool layer. Every artifact spirec emits
/// (`-o`, `--metrics-json`, `--trace-json`) goes through
/// `writeFileAtomic`, which stages the bytes in a sibling temp file and
/// renames it into place — an injected I/O fault, a full disk, or a
/// mid-write kill can lose the artifact but can never leave a torn or
/// truncated one. Destinations that are not regular files (`/dev/null`,
/// pipes) are written directly, since rename(2) onto them would replace
/// the special file.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_FILEIO_H
#define SPIRE_SUPPORT_FILEIO_H

#include <string>
#include <string_view>

namespace spire::support {

/// Reads the whole file at \p Path into \p Out. On failure returns
/// false with a one-line reason in \p Error. \p FaultSite (when
/// non-null) names the injection site checked before the read.
bool readFile(const std::string &Path, std::string &Out, std::string &Error,
              const char *FaultSite = nullptr);

/// Writes \p Contents to \p Path atomically (temp file + rename; direct
/// write for non-regular destinations). On failure returns false with a
/// one-line reason in \p Error and leaves any existing destination
/// untouched. \p FaultSite (when non-null) names the injection site
/// checked before the rename commits.
bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string &Error, const char *FaultSite = nullptr);

/// Cheap writability probe for \p Path: verifies the destination (or a
/// fresh file beside it) can be opened for writing, without truncating
/// existing content. Lets spirec reject a bad output path up front
/// (exit 2) before spending the compile.
bool probeWritable(const std::string &Path, std::string &Error);

/// Removes orphaned `*.tmp.<pid>` staging files in \p Dir left behind by
/// writers that died before their rename committed. A temp is orphaned
/// when its embedded pid no longer names a live process (and is not this
/// process). Returns the number of files removed; unreadable directories
/// count as zero (the sweep is best-effort hygiene, never an error).
int sweepStaleTempFiles(const std::string &Dir);

} // namespace spire::support

#endif // SPIRE_SUPPORT_FILEIO_H

#include "support/Symbol.h"

#include "support/Hash.h"

#include <cstring>

namespace spire::support {

namespace {

uint64_t hashSpelling(std::string_view S) {
  // FNV-1a over the bytes, finished with a SplitMix64 scramble: cheap,
  // and the scramble keeps short-identifier distributions well spread
  // across power-of-two bucket counts.
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  uint64_t State = H;
  return splitMix64(State);
}

} // namespace

SymbolTable::SymbolTable() {
  Buckets.assign(1024, 0);
  BucketMask = Buckets.size() - 1;
  Spellings.push_back(std::string_view()); // Id 0: the empty spelling.
}

SymbolTable &SymbolTable::global() {
  static SymbolTable Table;
  return Table;
}

const char *SymbolTable::arenaCopy(std::string_view Spelling) {
  if (Spelling.size() > ChunkCap - ChunkUsed) {
    size_t Cap = Spelling.size() > (size_t{64} << 10) ? Spelling.size()
                                                      : (size_t{64} << 10);
    Chunks.push_back(std::make_unique<char[]>(Cap));
    ChunkUsed = 0;
    ChunkCap = Cap;
  }
  char *Dst = Chunks.back().get() + ChunkUsed;
  std::memcpy(Dst, Spelling.data(), Spelling.size());
  ChunkUsed += Spelling.size();
  return Dst;
}

void SymbolTable::grow() {
  std::vector<uint32_t> Old = std::move(Buckets);
  Buckets.assign(Old.size() * 2, 0);
  BucketMask = Buckets.size() - 1;
  for (uint32_t Id : Old) {
    if (Id == 0)
      continue;
    size_t Slot = hashSpelling(Spellings[Id]) & BucketMask;
    while (Buckets[Slot] != 0)
      Slot = (Slot + 1) & BucketMask;
    Buckets[Slot] = Id;
  }
}

uint32_t SymbolTable::intern(std::string_view Spelling) {
  if (Spelling.empty())
    return 0;
  size_t Slot = hashSpelling(Spelling) & BucketMask;
  while (Buckets[Slot] != 0) {
    if (Spellings[Buckets[Slot]] == Spelling)
      return Buckets[Slot];
    Slot = (Slot + 1) & BucketMask;
  }
  uint32_t Id = static_cast<uint32_t>(Spellings.size());
  Spellings.push_back(std::string_view(arenaCopy(Spelling),
                                       Spelling.size()));
  Buckets[Slot] = Id;
  // Keep the load factor under 2/3 (the empty-slot scan above relies on
  // free slots existing).
  if (Spellings.size() * 3 > Buckets.size() * 2)
    grow();
  return Id;
}

} // namespace spire::support

//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight allocation observability: a process-wide counter of heap
/// allocations (incremented by the replacement global operator new in
/// AllocStats.cpp) and the process peak RSS. The driver samples both
/// around every pipeline stage so allocation wins — the point of the
/// interned-symbol IR — are visible in `spirec --timings` and the scale
/// benches without attaching a profiler.
///
/// The counter is a single relaxed atomic increment per allocation; the
/// cost is unmeasurable next to the allocation itself. Binaries that
/// never reference these symbols do not pull in the replacement
/// operators.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_ALLOCSTATS_H
#define SPIRE_SUPPORT_ALLOCSTATS_H

#include <cstdint>

namespace spire::support {

/// Heap allocations (global operator new calls) since process start.
/// Monotonic; subtract two samples to count a region's allocations.
int64_t allocationCount();

/// Total bytes requested from global operator new since process start.
/// Monotonic (frees are not subtracted); subtract two samples to bound
/// a region's allocation traffic. Feeds the Governor's allocation
/// budget (`spirec --max-alloc-mb`).
int64_t allocatedBytes();

/// Peak resident set size of the process in KiB, from getrusage.
/// Monotonic over the process lifetime; 0 when unavailable.
int64_t peakRSSKb();

} // namespace spire::support

#endif // SPIRE_SUPPORT_ALLOCSTATS_H

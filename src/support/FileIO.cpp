#include "support/FileIO.h"

#include "support/FaultInjector.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

namespace spire::support {

namespace {

/// True when \p Path names an existing non-regular file (device, pipe,
/// socket). rename(2) onto those would replace the special file with a
/// regular one, so they take the direct-write path.
bool isNonRegularDestination(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false; // Missing: the rename will create a regular file.
  return !S_ISREG(St.st_mode);
}

std::string tempPathFor(const std::string &Path) {
  return Path + ".tmp." + std::to_string(::getpid());
}

bool writeDirect(const std::string &Path, std::string_view Contents,
                 std::string &Error) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
  Out.flush();
  if (!Out) {
    Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}

} // namespace

bool readFile(const std::string &Path, std::string &Out, std::string &Error,
              const char *FaultSite) {
  if (FaultSite && faultIo(FaultSite)) {
    Error = "cannot read " + Path + " (injected fault at " + FaultSite + ")";
    return false;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read " + Path;
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad()) {
    Error = "read of " + Path + " failed";
    return false;
  }
  Out = Buffer.str();
  return true;
}

bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string &Error, const char *FaultSite) {
  if (isNonRegularDestination(Path)) {
    if (FaultSite && faultIo(FaultSite)) {
      Error = "write to " + Path + " failed (injected fault at " +
              FaultSite + ")";
      return false;
    }
    return writeDirect(Path, Contents, Error);
  }

  const std::string Temp = tempPathFor(Path);
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open " + Path + " for writing";
      return false;
    }
    Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      Error = "write to " + Path + " failed";
      Out.close();
      std::remove(Temp.c_str());
      return false;
    }
  }
  // The injected fault fires after the temp is staged but before the
  // rename commits: the destination must remain untouched and the temp
  // must not leak — exactly the torn-write scenario the tests pin.
  if (FaultSite && faultIo(FaultSite)) {
    std::remove(Temp.c_str());
    Error = "write to " + Path + " failed (injected fault at " + FaultSite +
            ")";
    return false;
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    Error = "cannot move " + Temp + " into place as " + Path;
    return false;
  }
  return true;
}

bool probeWritable(const std::string &Path, std::string &Error) {
  struct stat St;
  const bool Existed = ::stat(Path.c_str(), &St) == 0;
  // Append mode creates a missing file without truncating an existing
  // one, so the probe is non-destructive either way.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    if (!Out) {
      Error = "cannot open " + Path + " for writing";
      return false;
    }
  }
  if (!Existed)
    std::remove(Path.c_str());
  return true;
}

} // namespace spire::support

#include "support/FileIO.h"

#include "support/FaultInjector.h"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace spire::support {

namespace {

/// True when \p Path names an existing non-regular file (device, pipe,
/// socket). rename(2) onto those would replace the special file with a
/// regular one, so they take the direct-write path.
bool isNonRegularDestination(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false; // Missing: the rename will create a regular file.
  return !S_ISREG(St.st_mode);
}

std::string tempPathFor(const std::string &Path) {
  return Path + ".tmp." + std::to_string(::getpid());
}

bool writeDirect(const std::string &Path, std::string_view Contents,
                 std::string &Error) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
  Out.flush();
  if (!Out) {
    Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}

} // namespace

bool readFile(const std::string &Path, std::string &Out, std::string &Error,
              const char *FaultSite) {
  if (FaultSite && faultIo(FaultSite)) {
    Error = "cannot read " + Path + " (injected fault at " + FaultSite + ")";
    return false;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read " + Path;
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad()) {
    Error = "read of " + Path + " failed";
    return false;
  }
  Out = Buffer.str();
  return true;
}

bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string &Error, const char *FaultSite) {
  if (isNonRegularDestination(Path)) {
    if (FaultSite && faultIo(FaultSite)) {
      Error = "write to " + Path + " failed (injected fault at " +
              FaultSite + ")";
      return false;
    }
    return writeDirect(Path, Contents, Error);
  }

  const std::string Temp = tempPathFor(Path);
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open " + Path + " for writing";
      return false;
    }
    Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      Error = "write to " + Path + " failed";
      Out.close();
      std::remove(Temp.c_str());
      return false;
    }
  }
  // Injected faults fire after the temp is staged but before the rename
  // commits: a kill here leaves the orphaned temp for the stale sweep
  // to reap, and an io fault must leave the destination untouched with
  // no leaked temp — exactly the torn-write scenarios the tests pin.
  if (FaultSite)
    faultKill(FaultSite);
  if (FaultSite && faultIo(FaultSite)) {
    std::remove(Temp.c_str());
    Error = "write to " + Path + " failed (injected fault at " + FaultSite +
            ")";
    return false;
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    Error = "cannot move " + Temp + " into place as " + Path;
    return false;
  }
  return true;
}

bool probeWritable(const std::string &Path, std::string &Error) {
  struct stat St;
  const bool Existed = ::stat(Path.c_str(), &St) == 0;
  // Append mode creates a missing file without truncating an existing
  // one, so the probe is non-destructive either way.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    if (!Out) {
      Error = "cannot open " + Path + " for writing";
      return false;
    }
  }
  if (!Existed)
    std::remove(Path.c_str());
  return true;
}

int sweepStaleTempFiles(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return 0;
  int Removed = 0;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    size_t Marker = Name.rfind(".tmp.");
    if (Marker == std::string::npos)
      continue;
    std::string PidText = Name.substr(Marker + 5);
    if (PidText.empty())
      continue;
    char *End = nullptr;
    long Pid = std::strtol(PidText.c_str(), &End, 10);
    if (!End || *End != '\0' || Pid <= 0)
      continue;
    if (Pid == static_cast<long>(::getpid()))
      continue; // Our own in-flight staging file.
    // kill(pid, 0) probes liveness without signalling. ESRCH means the
    // writer is gone and its temp is orphaned; EPERM means it exists
    // but belongs to someone else, so leave it alone.
    if (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno != ESRCH)
      continue;
    if (std::remove((Dir + "/" + Name).c_str()) == 0)
      ++Removed;
  }
  ::closedir(D);
  return Removed;
}

} // namespace spire::support

//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic used by the polynomial-fitting machinery that
/// reproduces the paper's Section 8.1 methodology ("found the lowest-degree
/// polynomial that exactly fits the T-complexities"). Gate counts are exact
/// integers, and fitted coefficients may be non-integral (e.g. Table 3's
/// (3076192/3) d^3 term), so fitting must be exact rather than floating-point.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_RATIONAL_H
#define SPIRE_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace spire::support {

/// An exact rational number with 128-bit numerator and denominator.
///
/// Always kept normalized: gcd(Num, Den) == 1 and Den > 0. The 128-bit
/// representation is ample for gate-count polynomials: counts fit in 64
/// bits and fitting introduces denominators bounded by small factorials.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Numerator, int64_t Denominator)
      : Num(Numerator), Den(Denominator) {
    assert(Denominator != 0 && "rational with zero denominator");
    normalize();
  }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Numerator after normalization; may be negative.
  int64_t numerator() const { return static_cast<int64_t>(Num); }
  /// Denominator after normalization; always positive.
  int64_t denominator() const { return static_cast<int64_t>(Den); }

  /// The integer value; asserts that the rational is integral.
  int64_t asInteger() const {
    assert(isInteger() && "rational is not an integer");
    return static_cast<int64_t>(Num);
  }

  Rational operator-() const { return makeRaw(-Num, Den); }

  friend Rational operator+(const Rational &A, const Rational &B) {
    return makeNormalized(A.Num * B.Den + B.Num * A.Den, A.Den * B.Den);
  }
  friend Rational operator-(const Rational &A, const Rational &B) {
    return makeNormalized(A.Num * B.Den - B.Num * A.Den, A.Den * B.Den);
  }
  friend Rational operator*(const Rational &A, const Rational &B) {
    return makeNormalized(A.Num * B.Num, A.Den * B.Den);
  }
  friend Rational operator/(const Rational &A, const Rational &B) {
    assert(!B.isZero() && "division by zero rational");
    return makeNormalized(A.Num * B.Den, A.Den * B.Num);
  }

  Rational &operator+=(const Rational &B) { return *this = *this + B; }
  Rational &operator-=(const Rational &B) { return *this = *this - B; }
  Rational &operator*=(const Rational &B) { return *this = *this * B; }
  Rational &operator/=(const Rational &B) { return *this = *this / B; }

  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }
  friend bool operator!=(const Rational &A, const Rational &B) {
    return !(A == B);
  }
  friend bool operator<(const Rational &A, const Rational &B) {
    return A.Num * B.Den < B.Num * A.Den;
  }

  /// Renders "7", "-3", or "7/3".
  std::string str() const;

private:
  using Int = __int128;

  static Rational makeRaw(Int Numerator, Int Denominator) {
    Rational R;
    R.Num = Numerator;
    R.Den = Denominator;
    return R;
  }

  static Rational makeNormalized(Int Numerator, Int Denominator) {
    Rational R = makeRaw(Numerator, Denominator);
    R.normalize();
    return R;
  }

  void normalize();

  Int Num = 0;
  Int Den = 1;
};

} // namespace spire::support

#endif // SPIRE_SUPPORT_RATIONAL_H

#include "support/Governor.h"

#include "support/AllocStats.h"
#include "support/Diagnostics.h"

#include <cstdio>

namespace spire::support {

thread_local Governor *Governor::Current = nullptr;

const char *resourceLimitName(ResourceLimit L) {
  switch (L) {
  case ResourceLimit::None:
    return "none";
  case ResourceLimit::Deadline:
    return "deadline";
  case ResourceLimit::AllocBytes:
    return "alloc-bytes";
  case ResourceLimit::Gates:
    return "gates";
  case ResourceLimit::OutputBytes:
    return "output-bytes";
  }
  return "none";
}

Governor::Governor(const GovernorLimits &L) : Limits(L), Armed(L.any()) {
  if (!Armed)
    return;
  BaselineAllocBytes = allocatedBytes();
  Start = std::chrono::steady_clock::now();
  auto &Reg = obs::Registry::global();
  Checks = Reg.counter("governor.checks");
  LimitHits = Reg.counter("governor.limit_hits");
}

void Governor::trip(ResourceLimit L) {
  if (Hit != ResourceLimit::None)
    return;
  Hit = L;
  TrippedAt = std::chrono::steady_clock::now();
  TrippedAllocBytes = allocatedBytes() - BaselineAllocBytes;
  ++LimitHits;
}

bool Governor::checkNow() {
  if (Hit != ResourceLimit::None)
    return false;
  if (!Armed)
    return true;
  ++Checks;
  if (Limits.TimeoutMs > 0) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    if (Elapsed > Limits.TimeoutMs) {
      trip(ResourceLimit::Deadline);
      return false;
    }
  }
  if (Limits.MaxAllocBytes > 0 &&
      allocatedBytes() - BaselineAllocBytes > Limits.MaxAllocBytes) {
    trip(ResourceLimit::AllocBytes);
    return false;
  }
  return true;
}

bool Governor::checkGates(int64_t Gates) {
  if (Hit != ResourceLimit::None)
    return false;
  if (Armed && Limits.MaxGates > 0 && Gates > Limits.MaxGates) {
    TrippedGates = Gates;
    trip(ResourceLimit::Gates);
    return false;
  }
  return true;
}

bool Governor::checkOutputBytes(int64_t Bytes) {
  if (Hit != ResourceLimit::None)
    return false;
  if (Armed && Limits.MaxOutputBytes > 0 && Bytes > Limits.MaxOutputBytes) {
    TrippedOutputBytes = Bytes;
    trip(ResourceLimit::OutputBytes);
    return false;
  }
  return true;
}

std::string Governor::describe() const {
  if (Hit == ResourceLimit::None)
    return "";
  char Buf[160];
  switch (Hit) {
  case ResourceLimit::Deadline: {
    auto Ran = std::chrono::duration_cast<std::chrono::milliseconds>(
                   TrippedAt - Start)
                   .count();
    std::snprintf(Buf, sizeof(Buf),
                  "wall-clock budget of %lld ms exceeded (ran %lld ms)",
                  static_cast<long long>(Limits.TimeoutMs),
                  static_cast<long long>(Ran));
    break;
  }
  case ResourceLimit::AllocBytes:
    std::snprintf(Buf, sizeof(Buf),
                  "allocation budget of %lld MiB exceeded (allocated "
                  "%lld MiB)",
                  static_cast<long long>(Limits.MaxAllocBytes >> 20),
                  static_cast<long long>(TrippedAllocBytes >> 20));
    break;
  case ResourceLimit::Gates:
    std::snprintf(Buf, sizeof(Buf),
                  "gate cap of %lld exceeded (circuit reached %lld gates)",
                  static_cast<long long>(Limits.MaxGates),
                  static_cast<long long>(TrippedGates));
    break;
  case ResourceLimit::OutputBytes:
    std::snprintf(Buf, sizeof(Buf),
                  "output cap of %lld bytes exceeded (artifact reached "
                  "%lld bytes)",
                  static_cast<long long>(Limits.MaxOutputBytes),
                  static_cast<long long>(TrippedOutputBytes));
    break;
  case ResourceLimit::None:
    Buf[0] = '\0';
    break;
  }
  return Buf;
}

void Governor::report(DiagnosticEngine &Diags) {
  if (Hit == ResourceLimit::None || Reported)
    return;
  Reported = true;
  Diags.error("resource-limit: " + describe());
}

} // namespace spire::support

//===----------------------------------------------------------------------===//
///
/// \file
/// Exact polynomial interpolation over consecutive integer sample points.
///
/// Reproduces the paper's Section 8.1 methodology: "we repeated the process
/// for depths from 2 to 10 and found the lowest-degree polynomial that
/// exactly fits the T-complexities". Fitting uses Newton forward differences
/// over exact rationals, so results like Table 3's (3076192/3) d^3 term are
/// represented without rounding.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SUPPORT_POLYFIT_H
#define SPIRE_SUPPORT_POLYFIT_H

#include "support/Rational.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spire::support {

/// A polynomial with exact rational coefficients, stored in ascending
/// degree order (Coeffs[k] multiplies x^k).
struct Polynomial {
  std::vector<Rational> Coeffs;

  /// Degree of the polynomial; the zero polynomial has degree 0.
  int degree() const;

  /// Exact evaluation at an integer point.
  Rational evaluate(int64_t X) const;

  /// Renders in the paper's style, descending degree, e.g.
  /// "15722n^2+19292n+3934" or "(3076192/3)d^3+5099374d^2".
  std::string str(const std::string &Var = "n") const;

  friend bool operator==(const Polynomial &A, const Polynomial &B);
};

/// Interpolates the lowest-degree polynomial through the samples
/// (StartX, Values[0]), (StartX+1, Values[1]), ... exactly.
///
/// The result's difference table is checked so that trailing zero
/// differences lower the reported degree, matching "lowest-degree
/// polynomial that exactly fits". Requires at least one sample.
Polynomial fitPolynomial(int64_t StartX, const std::vector<int64_t> &Values);

/// Convenience: degree of the fitted polynomial, i.e. the empirically
/// observed asymptotic order of a gate-count series.
int fittedDegree(int64_t StartX, const std::vector<int64_t> &Values);

} // namespace spire::support

#endif // SPIRE_SUPPORT_POLYFIT_H

#include "lowering/Lower.h"

#include "ast/Reverse.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sema/TypeChecker.h"
#include "support/Governor.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

using namespace spire::ast;
using namespace spire::ir;

namespace spire::lowering {

namespace {

using support::Symbol;
using support::SymbolSet;

/// A live variable binding in the current lowering scope: the core-IR name
/// it was renamed to, plus its type.
struct VarBinding {
  Symbol CoreName;
  const Type *Ty = nullptr;
};

/// Scopes key surface spellings by Symbol: one intern (a short-string
/// hash) per reference, u32 equality thereafter — no per-lookup string
/// compares and no tree-node churn when scopes are copied around
/// with-blocks.
using Scope = std::unordered_map<Symbol, VarBinding>;

/// Whether a callee body is spliced forward or reversed (un-call).
enum class CallMode { Forward, Reversed };

/// Tri-state result of lowering a statement's expressions: `Suspend` means
/// an expression-position call must be inlined by the machine before the
/// statement can be replayed (see the Lowerer comment below).
enum class Flow { OK, Error, Suspend };

/// A completed expression-position call inline, memoized so that replaying
/// the suspended statement can splice the already-lowered body at exactly
/// the position the recursive lowerer would have produced it.
struct PendingCall {
  CoreStmtList Body;
  VarBinding Result;
};

/// Progress state of the statement a frame is currently lowering; present
/// only while that statement is suspended on child frames or pending
/// inlines.
struct StmtWork {
  enum class Kind { Expr, If, With };
  Kind K = Kind::Expr;

  /// Memoized expression-position inlines, consumed in the deterministic
  /// DFS order flattening visits call sites.
  std::vector<PendingCall> Pending;
  size_t NextPending = 0;

  /// Construct-specific phase counter; see resumeIf/resumeWith.
  int Phase = 0;

  // If artifacts.
  CoreStmtList Pre;
  Symbol CondName, NotName;
  CoreStmtList Then, Else;

  // With artifacts.
  Scope Snapshot, AfterWith;
  CoreStmtList WithBody, DoBody;

  /// Returns the object to its just-constructed state while keeping the
  /// container capacities (StmtWorks are pooled — one is acquired per
  /// compound statement, which used to mean one heap allocation each).
  void reset(Kind NewK) {
    K = NewK;
    Pending.clear();
    NextPending = 0;
    Phase = 0;
    Pre.clear();
    CondName = Symbol();
    NotName = Symbol();
    Then.clear();
    Else.clear();
    Snapshot.clear();
    AfterWith.clear();
    WithBody.clear();
    DoBody.clear();
  }
};

/// Epilogue data for an inlined-call frame: everything needed to finish
/// the call once its body has been lowered, and where to deliver the
/// spliced statements and result binding.
struct CallCompletion {
  const FunDecl *Callee = nullptr;
  CallMode Mode = CallMode::Forward;
  CoreStmtList ConstPrologue;
  std::optional<VarBinding> BoundResult;
  std::string SavedSizeParam;
  int64_t SavedSizeValue = 0;

  /// Where the finished call delivers: a `let x <- f(...)` splices into
  /// the caller's output and binds x; a `let x -> f(...)` splices the
  /// reversed body and unbinds x; an expression-position call is memoized
  /// in the caller's pending list for statement replay.
  enum class Dest { LetDirect, UnLetDirect, ExprPending };
  Dest D = Dest::ExprPending;
  Symbol LetName; ///< Surface variable for LetDirect/UnLetDirect.
};

/// One in-flight block lowering on the machine's explicit stack: a
/// statement sequence, the scope it mutates, accumulated output, and what
/// to do with the output when the sequence is exhausted.
struct Frame {
  const StmtList *Stmts = nullptr; ///< Borrowed for forward bodies.
  StmtList OwnedStmts;             ///< Storage for reversed bodies.
  size_t Next = 0;

  /// Where lowered statements accumulate. Sub-block frames own their
  /// output (it is wrapped or repositioned on delivery), but a directly
  /// bound call with no constant-argument prologue splices flat into its
  /// caller at the caller's current end — so such frames write straight
  /// into the caller's list, making delivery O(1) instead of re-moving
  /// every statement at every level of a deep inline chain (which made
  /// the lowering quadratic in the recursion depth).
  CoreStmtList *Out = nullptr;
  CoreStmtList OwnedOut;

  /// The scope in effect: the enclosing frame's for if/with bodies, the
  /// frame-owned callee scope for inlined calls.
  Scope *S = nullptr;
  Scope OwnedScope;

  std::unique_ptr<StmtWork> Work; ///< In-progress statement, if any.

  /// Where Out goes on completion.
  enum class Deliver { Root, Then, Else, WithBlock, DoBlock, Call };
  Deliver D = Deliver::Root;
  Frame *Parent = nullptr;
  CallCompletion Call; ///< For Deliver::Call frames.

  /// Returns the frame to its just-constructed state, keeping container
  /// capacities (frames are pooled across the up-to-10^5 inlined calls
  /// of the recursive benchmarks; in particular the callee scope's hash
  /// buckets are reused instead of reallocated per call).
  void reset() {
    Stmts = nullptr;
    OwnedStmts.clear();
    Next = 0;
    Out = nullptr;
    OwnedOut.clear();
    S = nullptr;
    OwnedScope.clear();
    Work.reset();
    D = Deliver::Root;
    Parent = nullptr;
    Call.Callee = nullptr;
    Call.Mode = CallMode::Forward;
    Call.ConstPrologue.clear();
    Call.BoundResult.reset();
    Call.SavedSizeParam.clear();
    Call.SavedSizeValue = 0;
    Call.D = CallCompletion::Dest::ExprPending;
    Call.LetName = Symbol();
  }
};

/// The lowerer, rewritten from mutual C++ recursion into an explicit
/// worklist machine so that inlining depth is bounded by
/// LowerOptions::MaxInlineDepth (a diagnostic) rather than by the C++
/// call stack (a segfault at `--size 5000+` in the seed).
///
/// Structure-bounded recursion remains recursive: expression flattening
/// (flattenExpr/atomize) recurses over the source expression tree, whose
/// depth is fixed by the program text. The unbounded dimension — the
/// call-inlining chain — runs on a heap-allocated stack of Frames driven
/// by runMachine(): each frame lowers one statement sequence (the entry
/// body, an if/with sub-block, or an inlined callee body) and delivers its
/// output to its parent on completion.
///
/// Calls in expression position are handled by attempt/replay: lowering a
/// statement's expressions is deterministic, so when flattening reaches a
/// call that has not been inlined yet, the attempt rolls back (an undo
/// journal covers name counters and the static allocator), the machine
/// inlines the call into a memoized PendingCall, and the statement is
/// replayed, splicing the memoized body at exactly the position the
/// recursive lowerer emitted it — the resulting IR is unchanged.
class Lowerer {
public:
  Lowerer(ast::Program &Program, support::DiagnosticEngine &Diags,
          const LowerOptions &Opts)
      : Program(Program), Diags(Diags), Opts(Opts), Types(*Program.Types) {}

  std::optional<CoreProgram> run(const std::string &Entry, int64_t SizeValue);

private:
  // -- Machine driver. -----------------------------------------------------
  bool runMachine();
  bool stepFrame(Frame &F);
  bool completeFrame();
  bool finishCall(Frame &F);
  bool deliverCall(Frame &Caller, CallCompletion &C, CoreStmtList Final,
                   VarBinding Result);
  void pushBlockFrame(Frame &Parent, const StmtList &Stmts,
                      Frame::Deliver D);

  // -- Statement dispatch and construct resumption. ------------------------
  bool dispatchStmt(Frame &F, const Stmt &St);
  bool resumeWork(Frame &F);
  bool runExprStmt(Frame &F, const Stmt &St);
  bool resumeIf(Frame &F, const Stmt &St);
  bool resumeWith(Frame &F, const Stmt &St);
  bool emitIf(Frame &F, const Stmt &St);

  /// Starts inlining a call: runs the prologue (instance/depth guards,
  /// base case, parameter binding) and pushes a callee frame, or delivers
  /// synchronously for the size<=0 base case. Returns false on error.
  bool startInlineCall(Frame &Caller, const Expr &Call, CallMode Mode,
                       std::optional<VarBinding> BoundResult,
                       CallCompletion::Dest D, Symbol LetName);

  /// Inlines the call recorded by the last Flow::Suspend into the frame's
  /// pending list.
  bool requestInline(Frame &F) {
    assert(SuspendedCall && "suspend without a recorded call site");
    const Expr &Call = *SuspendedCall;
    SuspendedCall = nullptr;
    return startInlineCall(F, Call, CallMode::Forward, std::nullopt,
                           CallCompletion::Dest::ExprPending, Symbol());
  }

  // -- Expression flattening (recursive; depth bounded by the source). -----
  Flow flattenExpr(const Expr &E, Scope &S, CoreStmtList &Pre, CoreExpr &Out,
                   StmtWork &W);
  Flow atomize(const Expr &E, Scope &S, CoreStmtList &Pre, Atom &Out,
               StmtWork &W);
  bool lowerConstant(const Expr &E, Atom &Out);

  // -- Attempt journaling: rollback for replayed statements. ---------------
  struct Journal {
    unsigned SavedAllocCells = 0;
    size_t SavedPointees = 0;
    /// Touched name counters with their prior value (nullopt = absent).
    std::vector<std::pair<Symbol, std::optional<unsigned>>> Counters;
    /// Pending bodies moved into Pre: (pending index, start, length).
    struct Splice {
      size_t PendingIdx, Start, Len;
    };
    std::vector<Splice> Splices;
  };

  void beginAttempt(Journal &J) {
    J.SavedAllocCells = AllocCells;
    J.SavedPointees = PointeeTypes.size();
    ActiveJournal = &J;
  }
  void endAttempt() { ActiveJournal = nullptr; }
  void rollbackAttempt(Journal &J, CoreStmtList &Pre, StmtWork &W);
  void journalCounter(Symbol Name);

  /// Evaluates a static size expression in the current instance.
  int64_t evalSize(const SizeExpr &E) const {
    return E.evaluate(CurrentSizeParam, CurrentSizeValue);
  }

  /// Produces a unique core-IR name derived from a surface name.
  Symbol uniquify(Symbol Name);

  /// mod(body) of a callee, cached: collectModSet walks the whole body
  /// and the recursive benchmarks inline the same function up to 10^5
  /// times. The cached set is a flat sorted SymbolSet.
  const SymbolSet &modSetOf(const FunDecl &F);

  // -- Inline-frame trace batches. -----------------------------------------
  // A depth-100k lowering inlines one frame per call; per-frame spans
  // would drown the trace, so instances are grouped into spans of
  // TraceBatchSize (each reporting its instance count as an arg). Only
  // active when tracing is enabled; the open batch is closed (and the
  // `lower.inline_instances` counter flushed) at the end of run().
  static constexpr unsigned TraceBatchSize = 4096;
  bool TraceBatchOpen = false;
  unsigned TraceBatchStart = 0;

  void noteInlineInstanceTrace() {
    if (!obs::Tracer::global().enabled())
      return;
    if (TraceBatchOpen &&
        InlineInstances - TraceBatchStart >= TraceBatchSize)
      closeInlineBatchTrace();
    if (!TraceBatchOpen) {
      obs::Tracer::global().begin("lower/inline-batch");
      TraceBatchOpen = true;
      TraceBatchStart = InlineInstances - 1;
    }
  }

  void closeInlineBatchTrace() {
    if (!TraceBatchOpen)
      return;
    obs::TraceArg Instances{"instances",
                            InlineInstances - TraceBatchStart};
    obs::Tracer::global().end("lower/inline-batch", &Instances, 1);
    TraceBatchOpen = false;
  }

  ast::Program &Program;
  support::DiagnosticEngine &Diags;
  const LowerOptions &Opts;
  TypeContext &Types;

  std::unordered_map<Symbol, unsigned> NameCounters;
  unsigned InlineInstances = 0;
  unsigned InlineDepth = 0;
  unsigned AllocCells = 0;
  std::vector<const Type *> PointeeTypes;
  std::map<const FunDecl *, SymbolSet> ModSets;

  /// Interned-once spellings for the lowering-generated name families.
  const Symbol TempPrefix = Symbol("%e");
  const Symbol NotPrefix = Symbol("%not");

  std::string CurrentSizeParam;
  int64_t CurrentSizeValue = 0;

  std::vector<std::unique_ptr<Frame>> Frames;
  const Expr *SuspendedCall = nullptr;
  Journal *ActiveJournal = nullptr;

  /// Recycled machine objects (see Frame::reset / StmtWork::reset).
  std::vector<std::unique_ptr<Frame>> FramePool;
  std::vector<std::unique_ptr<StmtWork>> WorkPool;

  std::unique_ptr<Frame> acquireFrame() {
    if (FramePool.empty())
      return std::make_unique<Frame>();
    std::unique_ptr<Frame> F = std::move(FramePool.back());
    FramePool.pop_back();
    return F;
  }
  void recycleFrame(std::unique_ptr<Frame> F) {
    F->reset();
    FramePool.push_back(std::move(F));
  }
  std::unique_ptr<StmtWork> acquireWork(StmtWork::Kind K) {
    if (WorkPool.empty()) {
      auto W = std::make_unique<StmtWork>();
      W->K = K;
      return W;
    }
    std::unique_ptr<StmtWork> W = std::move(WorkPool.back());
    WorkPool.pop_back();
    W->reset(K);
    return W;
  }
  void recycleWork(std::unique_ptr<StmtWork> W) {
    if (W)
      WorkPool.push_back(std::move(W));
  }
};

void Lowerer::journalCounter(Symbol Name) {
  if (!ActiveJournal)
    return;
  auto It = NameCounters.find(Name);
  ActiveJournal->Counters.emplace_back(
      Name, It == NameCounters.end() ? std::nullopt
                                     : std::optional<unsigned>(It->second));
}

Symbol Lowerer::uniquify(Symbol Name) {
  journalCounter(Name);
  unsigned &Counter = NameCounters[Name];
  // The common case — first use of the spelling — touches no strings at
  // all; suffixed spellings are materialized (and interned) only when a
  // name is actually reused.
  Symbol Result =
      Counter == 0
          ? Name
          : Symbol(Name.str() + "'" + std::to_string(Counter));
  ++Counter;
  // Guard against a user-written name colliding with a suffixed one.
  while (NameCounters.count(Result) && Result != Name) {
    Result = Symbol(Name.str() + "'" +
                    std::to_string(NameCounters[Name]));
    ++NameCounters[Name];
  }
  if (Result != Name) {
    journalCounter(Result);
    NameCounters[Result] = 1;
  }
  return Result;
}

const SymbolSet &Lowerer::modSetOf(const FunDecl &F) {
  auto It = ModSets.find(&F);
  if (It == ModSets.end())
    It = ModSets.emplace(&F, sema::collectModSet(F.Body)).first;
  return It->second;
}

void Lowerer::rollbackAttempt(Journal &J, CoreStmtList &Pre, StmtWork &W) {
  AllocCells = J.SavedAllocCells;
  PointeeTypes.resize(J.SavedPointees);
  for (auto It = J.Counters.rbegin(); It != J.Counters.rend(); ++It) {
    if (It->second)
      NameCounters[It->first] = *It->second;
    else
      NameCounters.erase(It->first);
  }
  // Return memoized bodies moved into the discarded prologue.
  for (const Journal::Splice &Sp : J.Splices) {
    CoreStmtList &Body = W.Pending[Sp.PendingIdx].Body;
    for (size_t I = 0; I != Sp.Len; ++I)
      Body.push_back(std::move(Pre[Sp.Start + I]));
  }
  W.NextPending = 0;
}

bool Lowerer::lowerConstant(const Expr &E, Atom &Out) {
  switch (E.K) {
  case Expr::Kind::UIntLit:
    Out = Atom::constant(E.UIntValue, Types.uintType());
    return true;
  case Expr::Kind::BoolLit:
    Out = Atom::constant(E.BoolValue ? 1 : 0, Types.boolType());
    return true;
  case Expr::Kind::UnitLit:
    Out = Atom::constant(0, Types.unitType());
    return true;
  case Expr::Kind::NullLit:
    assert(E.Ty && "null literal not annotated by the type checker");
    Out = Atom::constant(0, E.Ty);
    return true;
  case Expr::Kind::Default:
    Out = Atom::constant(0, E.TypeArg);
    return true;
  case Expr::Kind::AllocCell: {
    // Static allocation: cells from the top of the heap downward (input
    // data structures conventionally occupy low cells; see DESIGN.md).
    if (AllocCells >= Opts.HeapCells) {
      Diags.error(E.Loc, "static allocator exhausted the heap (" +
                             std::to_string(Opts.HeapCells) + " cells)");
      return false;
    }
    uint64_t Address = Opts.HeapCells - AllocCells;
    ++AllocCells;
    // The checker annotates E.Ty as ptr(T); the allocated cell holds the
    // pointee T itself, so record and wrap the parsed type argument.
    PointeeTypes.push_back(E.TypeArg);
    Out = Atom::allocConst(Address, Types.ptrType(E.TypeArg));
    return true;
  }
  default:
    assert(false && "not a constant expression");
    return false;
  }
}

Flow Lowerer::atomize(const Expr &E, Scope &S, CoreStmtList &Pre, Atom &Out,
                      StmtWork &W) {
  switch (E.K) {
  case Expr::Kind::Var: {
    auto It = S.find(E.nameSym());
    if (It == S.end()) {
      Diags.error(E.Loc, "use of undeclared variable '" + E.Name +
                             "' during lowering");
      return Flow::Error;
    }
    Out = Atom::var(It->second.CoreName, It->second.Ty);
    return Flow::OK;
  }
  case Expr::Kind::UIntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::NullLit:
  case Expr::Kind::Default:
  case Expr::Kind::AllocCell:
    return lowerConstant(E, Out) ? Flow::OK : Flow::Error;
  case Expr::Kind::Call: {
    // Flattening visits call sites in a fixed order, so the memoized
    // inlines are consumed positionally. An unvisited call suspends the
    // statement; the machine inlines it and replays.
    if (W.NextPending < W.Pending.size()) {
      PendingCall &P = W.Pending[W.NextPending];
      if (ActiveJournal)
        ActiveJournal->Splices.push_back(
            {W.NextPending, Pre.size(), P.Body.size()});
      for (auto &St : P.Body)
        Pre.push_back(std::move(St));
      P.Body.clear();
      Out = Atom::var(P.Result.CoreName, P.Result.Ty);
      ++W.NextPending;
      return Flow::OK;
    }
    SuspendedCall = &E;
    return Flow::Suspend;
  }
  default: {
    // Compound operand: compute it into a fresh temporary. The caller
    // wraps Pre in a with-block, so the temporary is uncomputed.
    CoreExpr Sub;
    Flow Fl = flattenExpr(E, S, Pre, Sub, W);
    if (Fl != Flow::OK)
      return Fl;
    Symbol Temp = uniquify(TempPrefix);
    Atom Var = Atom::var(Temp, Sub.Ty);
    Pre.push_back(CoreStmt::assign(Temp, Sub.Ty, std::move(Sub)));
    Out = std::move(Var);
    return Flow::OK;
  }
  }
}

Flow Lowerer::flattenExpr(const Expr &E, Scope &S, CoreStmtList &Pre,
                          CoreExpr &Out, StmtWork &W) {
  assert(E.Ty && "expression not annotated by the type checker");
  switch (E.K) {
  case Expr::Kind::Var:
  case Expr::Kind::UIntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::NullLit:
  case Expr::Kind::Default:
  case Expr::Kind::AllocCell:
  case Expr::Kind::Call: {
    Atom A;
    Flow Fl = atomize(E, S, Pre, A, W);
    if (Fl != Flow::OK)
      return Fl;
    Out = CoreExpr::atom(std::move(A));
    return Flow::OK;
  }
  case Expr::Kind::Tuple: {
    Atom A, B;
    Flow Fl = atomize(*E.Args[0], S, Pre, A, W);
    if (Fl != Flow::OK)
      return Fl;
    Fl = atomize(*E.Args[1], S, Pre, B, W);
    if (Fl != Flow::OK)
      return Fl;
    Out = CoreExpr::pair(std::move(A), std::move(B), E.Ty);
    return Flow::OK;
  }
  case Expr::Kind::Proj: {
    Atom A;
    Flow Fl = atomize(*E.Args[0], S, Pre, A, W);
    if (Fl != Flow::OK)
      return Fl;
    Out = CoreExpr::proj(std::move(A), E.ProjIndex, E.Ty);
    return Flow::OK;
  }
  case Expr::Kind::Unary: {
    Atom A;
    Flow Fl = atomize(*E.Args[0], S, Pre, A, W);
    if (Fl != Flow::OK)
      return Fl;
    Out = CoreExpr::unary(E.UOp, std::move(A), E.Ty);
    return Flow::OK;
  }
  case Expr::Kind::Binary: {
    Atom A, B;
    Flow Fl = atomize(*E.Args[0], S, Pre, A, W);
    if (Fl != Flow::OK)
      return Fl;
    Fl = atomize(*E.Args[1], S, Pre, B, W);
    if (Fl != Flow::OK)
      return Fl;
    Out = CoreExpr::binary(E.BOp, std::move(A), std::move(B), E.Ty);
    return Flow::OK;
  }
  }
  return Flow::Error;
}

bool Lowerer::startInlineCall(Frame &Caller, const Expr &Call, CallMode Mode,
                              std::optional<VarBinding> BoundResult,
                              CallCompletion::Dest D, Symbol LetName) {
  const FunDecl *Callee = Program.findFunction(Call.Name);
  assert(Callee && "call to unknown function survived type checking");
  bool Reversed = Mode == CallMode::Reversed;
  assert((!Reversed || BoundResult) && "reversed calls need a target");

  if (++InlineInstances > Opts.MaxInlineInstances) {
    Diags.error(Call.Loc, "inlining exceeded " +
                              std::to_string(Opts.MaxInlineInstances) +
                              " instances; is the recursion unbounded?");
    return false;
  }
  noteInlineInstanceTrace();

  int64_t CalleeSize = 0;
  if (!Callee->SizeParam.empty())
    CalleeSize = evalSize(*Call.SizeArg);

  const Type *ResultTy = Call.Ty;
  assert(ResultTy && "call expression not annotated");

  // Base case: a size-indexed function at size <= 0 produces the all-zero
  // value of its return type (Section 3.1's semantics for `length`). No
  // frame is pushed; the call completes synchronously.
  if (!Callee->SizeParam.empty() && CalleeSize <= 0) {
    CoreExpr Zero = CoreExpr::atom(Atom::constant(0, ResultTy));
    CoreStmtList Final;
    VarBinding Result;
    if (Reversed) {
      Final.push_back(CoreStmt::unassign(BoundResult->CoreName,
                                         BoundResult->Ty, std::move(Zero)));
    } else if (BoundResult) {
      // Re-declaration: XOR zero into the existing register (no gates).
      Final.push_back(CoreStmt::assign(BoundResult->CoreName,
                                       BoundResult->Ty, std::move(Zero)));
      Result = *BoundResult;
    } else {
      Symbol Name = uniquify(Symbol(Callee->Name + ".base"));
      Final.push_back(CoreStmt::assign(Name, ResultTy, std::move(Zero)));
      Result = {Name, ResultTy};
    }
    CallCompletion C;
    C.Callee = Callee;
    C.Mode = Mode;
    C.D = D;
    C.LetName = std::move(LetName);
    return deliverCall(Caller, C, std::move(Final), std::move(Result));
  }

  // The machine stack replaces C++ recursion, so depth is bounded by this
  // option rather than by a segfault.
  if (InlineDepth >= Opts.MaxInlineDepth) {
    Diags.error(Call.Loc,
                "inlining exceeded the maximum call depth " +
                    std::to_string(Opts.MaxInlineDepth) +
                    "; raise the max-inline-depth limit if the program "
                    "really recurses this deeply");
    return false;
  }

  // Bind parameters directly into the (pooled) callee frame's scope.
  // Variable arguments alias the caller's registers (the callee body
  // operates on them directly); constant arguments are substituted
  // through a with-block temporary and must not be modified by the
  // callee body, which we verify against mod(body).
  std::unique_ptr<Frame> NF = acquireFrame();
  Scope &CalleeScope = NF->OwnedScope;
  const SymbolSet &CalleeMods = modSetOf(*Callee);
  CoreStmtList ConstPrologue;
  for (size_t I = 0; I != Call.Args.size(); ++I) {
    const Expr &Arg = *Call.Args[I];
    const auto &[PName, PTy] = Callee->Params[I];
    if (Arg.K == Expr::Kind::Var) {
      auto It = Caller.S->find(Arg.nameSym());
      if (It == Caller.S->end()) {
        Diags.error(Arg.Loc, "argument variable '" + Arg.Name +
                                 "' is not live at the call");
        return false;
      }
      CalleeScope[Callee->paramSym(I)] = It->second;
      continue;
    }
    Atom C;
    switch (Arg.K) {
    case Expr::Kind::UIntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::UnitLit:
    case Expr::Kind::NullLit:
    case Expr::Kind::Default:
    case Expr::Kind::AllocCell:
      if (!lowerConstant(Arg, C))
        return false;
      break;
    default:
      Diags.error(Arg.Loc, "call arguments must be variables or constants "
                           "(compound expressions are not supported)");
      return false;
    }
    if (CalleeMods.count(Callee->paramSym(I))) {
      Diags.error(Arg.Loc, "constant argument bound to parameter '" + PName +
                               "' which the callee modifies; pass a "
                               "variable instead");
      return false;
    }
    Symbol Temp = uniquify(Callee->paramSym(I));
    VarBinding TempBinding{Temp, PTy};
    ConstPrologue.push_back(
        CoreStmt::assign(Temp, PTy, CoreExpr::atom(std::move(C))));
    CalleeScope[Callee->paramSym(I)] = TempBinding;
  }

  if (BoundResult) {
    if (CalleeScope.count(Callee->returnVarSym())) {
      Diags.error(Call.Loc, "cannot bind the result of '" + Call.Name +
                                "': its return variable shadows a "
                                "parameter");
      return false;
    }
    CalleeScope[Callee->returnVarSym()] = *BoundResult;
  }

  CallCompletion &C = NF->Call;
  C.Callee = Callee;
  C.Mode = Mode;
  C.ConstPrologue = std::move(ConstPrologue);
  C.BoundResult = std::move(BoundResult);
  C.SavedSizeParam = std::move(CurrentSizeParam);
  C.SavedSizeValue = CurrentSizeValue;
  C.D = D;
  C.LetName = LetName;
  CurrentSizeParam = Callee->SizeParam;
  CurrentSizeValue = CalleeSize;

  NF->D = Frame::Deliver::Call;
  NF->Parent = &Caller;
  // A directly bound call with no constant prologue splices flat at the
  // caller's current end, so its body can accumulate there in place;
  // otherwise the body is wrapped or memoized on completion and needs its
  // own list.
  if (NF->Call.ConstPrologue.empty() &&
      D != CallCompletion::Dest::ExprPending)
    NF->Out = Caller.Out;
  else
    NF->Out = &NF->OwnedOut;
  NF->S = &NF->OwnedScope;
  if (Reversed) {
    NF->OwnedStmts = ast::reverseStmts(Callee->Body);
    NF->Stmts = &NF->OwnedStmts;
  } else {
    // Forward bodies are lowered read-only; borrow the AST instead of
    // cloning it per instance.
    NF->Stmts = &Callee->Body;
  }
  ++InlineDepth;
  Frames.push_back(std::move(NF));
  return true;
}

bool Lowerer::finishCall(Frame &F) {
  CallCompletion &C = F.Call;
  CurrentSizeParam = std::move(C.SavedSizeParam);
  CurrentSizeValue = C.SavedSizeValue;
  --InlineDepth;

  CoreStmtList Final;
  if (!C.ConstPrologue.empty()) {
    // with { consts } do { body } uncomputes the constant temporaries.
    Final.push_back(
        CoreStmt::with(std::move(C.ConstPrologue), std::move(F.OwnedOut)));
  } else if (F.Out == &F.OwnedOut) {
    Final = std::move(F.OwnedOut);
  }
  // else: the body already accumulated in place in the caller's list.

  VarBinding Result;
  if (C.Mode == CallMode::Forward) {
    auto RV = F.S->find(C.Callee->returnVarSym());
    if (RV == F.S->end()) {
      Diags.error(C.Callee->Loc, "return variable '" + C.Callee->ReturnVar +
                                     "' is not live at the end of '" +
                                     C.Callee->Name + "'");
      return false;
    }
    Result = RV->second;
  }
  return deliverCall(*F.Parent, C, std::move(Final), std::move(Result));
}

bool Lowerer::deliverCall(Frame &Caller, CallCompletion &C,
                          CoreStmtList Final, VarBinding Result) {
  switch (C.D) {
  case CallCompletion::Dest::LetDirect:
    for (auto &St : Final)
      Caller.Out->push_back(std::move(St));
    (*Caller.S)[C.LetName] = std::move(Result);
    ++Caller.Next;
    return true;
  case CallCompletion::Dest::UnLetDirect:
    for (auto &St : Final)
      Caller.Out->push_back(std::move(St));
    Caller.S->erase(C.LetName);
    ++Caller.Next;
    return true;
  case CallCompletion::Dest::ExprPending:
    assert(Caller.Work && "pending inline without a suspended statement");
    Caller.Work->Pending.push_back({std::move(Final), std::move(Result)});
    return true;
  }
  return false;
}

void Lowerer::pushBlockFrame(Frame &Parent, const StmtList &Stmts,
                             Frame::Deliver D) {
  std::unique_ptr<Frame> NF = acquireFrame();
  NF->Stmts = &Stmts;
  NF->Out = &NF->OwnedOut;
  NF->S = Parent.S; // Nested blocks share the enclosing scope object.
  NF->D = D;
  NF->Parent = &Parent;
  Frames.push_back(std::move(NF));
}

bool Lowerer::runExprStmt(Frame &F, const Stmt &St) {
  if (!F.Work)
    F.Work = acquireWork(StmtWork::Kind::Expr);
  StmtWork &W = *F.Work;
  W.NextPending = 0;

  bool IsUnLet = St.K == Stmt::Kind::UnLet;
  Scope &S = *F.S;
  auto Target = S.end();
  if (IsUnLet) {
    Target = S.find(St.nameSym());
    if (Target == S.end()) {
      Diags.error(St.Loc, "un-assignment of unbound variable '" + St.Name +
                              "' during lowering");
      return false;
    }
  }

  Journal J;
  beginAttempt(J);
  CoreStmtList Pre;
  CoreExpr RHS;
  Flow Fl = flattenExpr(*St.E, S, Pre, RHS, W);
  endAttempt();
  if (Fl == Flow::Error)
    return false;
  if (Fl == Flow::Suspend) {
    rollbackAttempt(J, Pre, W);
    return requestInline(F);
  }

  CoreStmtPtr Main;
  if (IsUnLet) {
    Main = CoreStmt::unassign(Target->second.CoreName, Target->second.Ty,
                              std::move(RHS));
    S.erase(Target);
  } else {
    auto It = S.find(St.nameSym());
    Symbol CoreName;
    if (It != S.end()) {
      // Re-declaration: XOR into the same register (Appendix B.2).
      CoreName = It->second.CoreName;
    } else {
      CoreName = uniquify(St.nameSym());
      S[St.nameSym()] = {CoreName, RHS.Ty};
    }
    const Type *Ty = RHS.Ty;
    Main = CoreStmt::assign(CoreName, Ty, std::move(RHS));
  }
  if (Pre.empty()) {
    F.Out->push_back(std::move(Main));
  } else {
    CoreStmtList DoBody;
    DoBody.push_back(std::move(Main));
    F.Out->push_back(CoreStmt::with(std::move(Pre), std::move(DoBody)));
  }
  recycleWork(std::move(F.Work));
  ++F.Next;
  return true;
}

bool Lowerer::emitIf(Frame &F, const Stmt &St) {
  StmtWork &W = *F.Work;
  bool HasElse = !St.ElseBody.empty();
  CoreStmtList DoBody;
  DoBody.push_back(CoreStmt::ifStmt(W.CondName, std::move(W.Then)));
  if (HasElse)
    DoBody.push_back(CoreStmt::ifStmt(W.NotName, std::move(W.Else)));
  if (W.Pre.empty()) {
    for (auto &X : DoBody)
      F.Out->push_back(std::move(X));
  } else {
    F.Out->push_back(CoreStmt::with(std::move(W.Pre), std::move(DoBody)));
  }
  recycleWork(std::move(F.Work));
  ++F.Next;
  return true;
}

bool Lowerer::resumeIf(Frame &F, const Stmt &St) {
  // Phases: 0 condition attempt, 1 then-body running, 2 then delivered,
  // 3 else-body running, 4 else delivered. Children advance the phase on
  // delivery (completeFrame), so 1 and 3 are never resumed here.
  //
  // Desugaring (Yuan & Carbin [2022, Appendix B]):
  //   with { c <- cond; nc <- not c } do { if c {then}; if nc {else} }
  StmtWork &W = *F.Work;
  bool HasElse = !St.ElseBody.empty();
  switch (W.Phase) {
  case 0: {
    W.NextPending = 0;
    Journal J;
    beginAttempt(J);
    CoreStmtList Pre;
    Atom CondAtom;
    Flow Fl = atomize(*St.E, *F.S, Pre, CondAtom, W);
    endAttempt();
    if (Fl == Flow::Error)
      return false;
    if (Fl == Flow::Suspend) {
      rollbackAttempt(J, Pre, W);
      return requestInline(F);
    }
    assert(CondAtom.isVar() && "condition atom should be a variable");
    W.CondName = CondAtom.Var;
    if (HasElse) {
      W.NotName = uniquify(NotPrefix);
      Pre.push_back(CoreStmt::assign(
          W.NotName, Types.boolType(),
          CoreExpr::unary(UnaryOp::Not, CondAtom, Types.boolType())));
    }
    W.Pre = std::move(Pre);
    W.Phase = 1;
    pushBlockFrame(F, St.Body, Frame::Deliver::Then);
    return true;
  }
  case 2:
    if (HasElse) {
      W.Phase = 3;
      pushBlockFrame(F, St.ElseBody, Frame::Deliver::Else);
      return true;
    }
    return emitIf(F, St);
  case 4:
    return emitIf(F, St);
  default:
    assert(false && "if-frame resumed while a child is running");
    return false;
  }
}

bool Lowerer::resumeWith(Frame &F, const Stmt &St) {
  // Phases: 0 start, 1 with-body running, 2 with delivered, 3 do-body
  // running, 4 do delivered.
  StmtWork &W = *F.Work;
  switch (W.Phase) {
  case 0:
    W.Snapshot = *F.S;
    W.Phase = 1;
    pushBlockFrame(F, St.Body, Frame::Deliver::WithBlock);
    return true;
  case 2:
    W.AfterWith = *F.S;
    W.Phase = 3;
    pushBlockFrame(F, St.ElseBody, Frame::Deliver::DoBlock);
    return true;
  case 4: {
    // Bindings net-created by the with-block are uncomputed by its
    // reversal; the do-block's additions persist.
    Scope &S = *F.S;
    Scope Final = W.Snapshot;
    for (const auto &[Name, B] : S) {
      auto InWith = W.AfterWith.find(Name);
      bool CreatedByWith = InWith != W.AfterWith.end() &&
                           !W.Snapshot.count(Name) &&
                           InWith->second.CoreName == B.CoreName;
      if (!CreatedByWith)
        Final[Name] = B;
    }
    S = std::move(Final);
    F.Out->push_back(
        CoreStmt::with(std::move(W.WithBody), std::move(W.DoBody)));
    recycleWork(std::move(F.Work));
    ++F.Next;
    return true;
  }
  default:
    assert(false && "with-frame resumed while a child is running");
    return false;
  }
}

bool Lowerer::resumeWork(Frame &F) {
  const Stmt &St = *(*F.Stmts)[F.Next];
  switch (F.Work->K) {
  case StmtWork::Kind::Expr:
    return runExprStmt(F, St);
  case StmtWork::Kind::If:
    return resumeIf(F, St);
  case StmtWork::Kind::With:
    return resumeWith(F, St);
  }
  return false;
}

bool Lowerer::dispatchStmt(Frame &F, const Stmt &St) {
  Scope &S = *F.S;
  switch (St.K) {
  case Stmt::Kind::Skip:
    F.Out->push_back(CoreStmt::skip());
    ++F.Next;
    return true;

  case Stmt::Kind::Let: {
    // Direct call: splice the inlined body and alias the result variable.
    // If the target already exists (re-declaration) the callee's return
    // variable is pre-bound to it so writes XOR into the same register.
    if (St.E->K == Expr::Kind::Call) {
      std::optional<VarBinding> Bound;
      auto Existing = S.find(St.nameSym());
      if (Existing != S.end())
        Bound = Existing->second;
      return startInlineCall(F, *St.E, CallMode::Forward, std::move(Bound),
                             CallCompletion::Dest::LetDirect, St.Name);
    }
    return runExprStmt(F, St);
  }

  case Stmt::Kind::UnLet: {
    auto It = S.find(St.nameSym());
    if (It == S.end()) {
      Diags.error(St.Loc, "un-assignment of unbound variable '" + St.Name +
                              "' during lowering");
      return false;
    }
    if (St.E->K == Expr::Kind::Call) {
      // Uncompute via the reversed inlined body, with the callee's return
      // variable aliased to the target register.
      return startInlineCall(F, *St.E, CallMode::Reversed, It->second,
                             CallCompletion::Dest::UnLetDirect, St.Name);
    }
    return runExprStmt(F, St);
  }

  case Stmt::Kind::Swap: {
    auto A = S.find(St.nameSym()), B = S.find(St.name2Sym());
    if (A == S.end() || B == S.end()) {
      Diags.error(St.Loc, "swap of unbound variable during lowering");
      return false;
    }
    F.Out->push_back(CoreStmt::swap(A->second.CoreName, A->second.Ty,
                                   B->second.CoreName, B->second.Ty));
    ++F.Next;
    return true;
  }

  case Stmt::Kind::MemSwap: {
    auto P = S.find(St.nameSym()), V = S.find(St.name2Sym());
    if (P == S.end() || V == S.end()) {
      Diags.error(St.Loc, "memory swap of unbound variable during lowering");
      return false;
    }
    PointeeTypes.push_back(V->second.Ty);
    F.Out->push_back(CoreStmt::memSwap(P->second.CoreName, P->second.Ty,
                                      V->second.CoreName, V->second.Ty));
    ++F.Next;
    return true;
  }

  case Stmt::Kind::Hadamard: {
    auto X = S.find(St.nameSym());
    if (X == S.end()) {
      Diags.error(St.Loc, "h() of unbound variable during lowering");
      return false;
    }
    F.Out->push_back(CoreStmt::hadamard(X->second.CoreName, X->second.Ty));
    ++F.Next;
    return true;
  }

  case Stmt::Kind::If:
    F.Work = acquireWork(StmtWork::Kind::If);
    return resumeIf(F, St);

  case Stmt::Kind::With:
    F.Work = acquireWork(StmtWork::Kind::With);
    return resumeWith(F, St);
  }
  return false;
}

bool Lowerer::stepFrame(Frame &F) {
  if (F.Work)
    return resumeWork(F);
  return dispatchStmt(F, *(*F.Stmts)[F.Next]);
}

bool Lowerer::completeFrame() {
  std::unique_ptr<Frame> F = std::move(Frames.back());
  Frames.pop_back();
  bool OK = false;
  switch (F->D) {
  case Frame::Deliver::Root:
    // The root frame writes directly into the result body.
    OK = true;
    break;
  case Frame::Deliver::Then:
    F->Parent->Work->Then = std::move(F->OwnedOut);
    F->Parent->Work->Phase = 2;
    OK = true;
    break;
  case Frame::Deliver::Else:
    F->Parent->Work->Else = std::move(F->OwnedOut);
    F->Parent->Work->Phase = 4;
    OK = true;
    break;
  case Frame::Deliver::WithBlock:
    F->Parent->Work->WithBody = std::move(F->OwnedOut);
    F->Parent->Work->Phase = 2;
    OK = true;
    break;
  case Frame::Deliver::DoBlock:
    F->Parent->Work->DoBody = std::move(F->OwnedOut);
    F->Parent->Work->Phase = 4;
    OK = true;
    break;
  case Frame::Deliver::Call:
    OK = finishCall(*F);
    break;
  }
  recycleFrame(std::move(F));
  return OK;
}

bool Lowerer::runMachine() {
  while (!Frames.empty()) {
    // Governor checkpoint: a tripped budget unwinds the machine cleanly
    // (frames recycle on destruction); the driver's stage wrapper turns
    // the bail-out into the resource-limit diagnostic.
    if (!support::Governor::poll())
      return false;
    Frame &F = *Frames.back();
    if (!F.Work && F.Next == F.Stmts->size()) {
      if (!completeFrame())
        return false;
      continue;
    }
    if (!stepFrame(F))
      return false;
  }
  return true;
}

std::optional<CoreProgram> Lowerer::run(const std::string &Entry,
                                        int64_t SizeValue) {
  if (!Opts.AssumeTypeChecked) {
    sema::TypeChecker Checker(Program, Diags);
    if (!Checker.check())
      return std::nullopt;
  }

  const FunDecl *F = Program.findFunction(Entry);
  if (!F) {
    Diags.error("entry function '" + Entry + "' not found");
    return std::nullopt;
  }

  CoreProgram Result;
  Result.Types = Program.Types;

  Scope RootScope;
  for (const auto &[Name, Ty] : F->Params) {
    NameCounters[Name] = 1; // Reserve parameter names verbatim.
    RootScope[Name] = {Name, Ty};
    Result.Inputs.emplace_back(Name, Ty);
  }

  CurrentSizeParam = F->SizeParam;
  CurrentSizeValue = SizeValue;

  std::unique_ptr<Frame> Root = acquireFrame();
  Root->Stmts = &F->Body;
  Root->Out = &Result.Body;
  Root->S = &RootScope;
  Root->D = Frame::Deliver::Root;
  Frames.push_back(std::move(Root));
  bool MachineOK = runMachine();
  closeInlineBatchTrace();
  obs::Registry::global().counter("lower.inline_instances") +=
      InlineInstances;
  if (!MachineOK)
    return std::nullopt;

  auto RV = RootScope.find(F->ReturnVar);
  if (RV == RootScope.end()) {
    Diags.error(F->Loc, "return variable '" + F->ReturnVar +
                            "' is not live at the end of '" + Entry + "'");
    return std::nullopt;
  }
  Result.OutputVar = RV->second.CoreName;
  Result.OutputTy = RV->second.Ty;
  Result.NumAllocCells = AllocCells;
  Result.PointeeTypes = std::move(PointeeTypes);
  return Result;
}

} // namespace

std::optional<CoreProgram> lowerProgram(ast::Program &Program,
                                        const std::string &Entry,
                                        int64_t SizeValue,
                                        support::DiagnosticEngine &Diags,
                                        const LowerOptions &Opts) {
  Lowerer L(Program, Diags, Opts);
  return L.run(Entry, SizeValue);
}

CoreProgram lowerProgramOrDie(ast::Program &Program, const std::string &Entry,
                              int64_t SizeValue, const LowerOptions &Opts) {
  support::DiagnosticEngine Diags;
  std::optional<CoreProgram> P =
      lowerProgram(Program, Entry, SizeValue, Diags, Opts);
  if (!P) {
    std::fprintf(stderr, "lowering failed:\n%s\n", Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

} // namespace spire::lowering

#include "lowering/Lower.h"

#include "ast/Reverse.h"
#include "sema/TypeChecker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace spire::ast;
using namespace spire::ir;

namespace spire::lowering {

namespace {

/// A live variable binding in the current lowering scope: the core-IR name
/// it was renamed to, plus its type.
struct VarBinding {
  std::string CoreName;
  const Type *Ty = nullptr;
};

using Scope = std::map<std::string, VarBinding>;

class Lowerer {
public:
  Lowerer(ast::Program &Program, support::DiagnosticEngine &Diags,
          const LowerOptions &Opts)
      : Program(Program), Diags(Diags), Opts(Opts), Types(*Program.Types) {}

  std::optional<CoreProgram> run(const std::string &Entry, int64_t SizeValue);

private:
  // Statement lowering. Returns false on error.
  bool lowerStmts(const StmtList &Stmts, Scope &S, CoreStmtList &Out);
  bool lowerStmt(const Stmt &St, Scope &S, CoreStmtList &Out);

  // Expression flattening: produces a core expression whose operands are
  // atoms, appending temporary computations (to be wrapped in a with-block
  // by the caller) to Pre.
  bool flattenExpr(const Expr &E, Scope &S, CoreStmtList &Pre, CoreExpr &Out);
  bool atomize(const Expr &E, Scope &S, CoreStmtList &Pre, Atom &Out);

  /// Inlines a call. In forward mode the callee body is spliced and
  /// ResultName/ResultTy name the register holding the return value; when
  /// `BoundResult` is non-null (the caller re-declares an existing
  /// variable) the callee's return variable is pre-bound to it so the
  /// callee XORs into the existing register. In reversed mode the
  /// reversed body un-computes *BoundResult.
  enum class CallMode { Forward, Reversed };
  bool inlineCall(const Expr &Call, Scope &CallerScope, CoreStmtList &Out,
                  CallMode Mode, const VarBinding *BoundResult,
                  std::string &ResultName, const Type *&ResultTy);

  /// Evaluates a static size expression in the current instance.
  int64_t evalSize(const SizeExpr &E) const {
    return E.evaluate(CurrentSizeParam, CurrentSizeValue);
  }

  /// Produces a unique core-IR name derived from a surface name.
  std::string uniquify(const std::string &Name);

  /// Encodes a value literal as a constant atom.
  bool lowerConstant(const Expr &E, Atom &Out);

  ast::Program &Program;
  support::DiagnosticEngine &Diags;
  const LowerOptions &Opts;
  TypeContext &Types;

  std::map<std::string, unsigned> NameCounters;
  unsigned InlineInstances = 0;
  unsigned AllocCells = 0;
  std::vector<const Type *> PointeeTypes;

  std::string CurrentSizeParam;
  int64_t CurrentSizeValue = 0;
};

std::string Lowerer::uniquify(const std::string &Name) {
  unsigned &Counter = NameCounters[Name];
  std::string Result =
      Counter == 0 ? Name : Name + "'" + std::to_string(Counter);
  ++Counter;
  // Guard against a user-written name colliding with a suffixed one.
  while (NameCounters.count(Result) && Result != Name) {
    Result = Name + "'" + std::to_string(NameCounters[Name]);
    ++NameCounters[Name];
  }
  if (Result != Name)
    NameCounters[Result] = 1;
  return Result;
}

bool Lowerer::lowerConstant(const Expr &E, Atom &Out) {
  switch (E.K) {
  case Expr::Kind::UIntLit:
    Out = Atom::constant(E.UIntValue, Types.uintType());
    return true;
  case Expr::Kind::BoolLit:
    Out = Atom::constant(E.BoolValue ? 1 : 0, Types.boolType());
    return true;
  case Expr::Kind::UnitLit:
    Out = Atom::constant(0, Types.unitType());
    return true;
  case Expr::Kind::NullLit:
    assert(E.Ty && "null literal not annotated by the type checker");
    Out = Atom::constant(0, E.Ty);
    return true;
  case Expr::Kind::Default:
    Out = Atom::constant(0, E.TypeArg);
    return true;
  case Expr::Kind::AllocCell: {
    // Static allocation: cells from the top of the heap downward (input
    // data structures conventionally occupy low cells; see DESIGN.md).
    if (AllocCells >= Opts.HeapCells) {
      Diags.error(E.Loc, "static allocator exhausted the heap (" +
                             std::to_string(Opts.HeapCells) + " cells)");
      return false;
    }
    uint64_t Address = Opts.HeapCells - AllocCells;
    ++AllocCells;
    // The checker annotates E.Ty as ptr(T); the allocated cell holds the
    // pointee T itself, so record and wrap the parsed type argument.
    PointeeTypes.push_back(E.TypeArg);
    Out = Atom::allocConst(Address, Types.ptrType(E.TypeArg));
    return true;
  }
  default:
    assert(false && "not a constant expression");
    return false;
  }
}

bool Lowerer::atomize(const Expr &E, Scope &S, CoreStmtList &Pre, Atom &Out) {
  switch (E.K) {
  case Expr::Kind::Var: {
    auto It = S.find(E.Name);
    if (It == S.end()) {
      Diags.error(E.Loc, "use of undeclared variable '" + E.Name +
                             "' during lowering");
      return false;
    }
    Out = Atom::var(It->second.CoreName, It->second.Ty);
    return true;
  }
  case Expr::Kind::UIntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::NullLit:
  case Expr::Kind::Default:
  case Expr::Kind::AllocCell:
    return lowerConstant(E, Out);
  case Expr::Kind::Call: {
    std::string ResultName;
    const Type *ResultTy = nullptr;
    if (!inlineCall(E, S, Pre, CallMode::Forward, /*BoundResult=*/nullptr,
                    ResultName, ResultTy))
      return false;
    Out = Atom::var(ResultName, ResultTy);
    return true;
  }
  default: {
    // Compound operand: compute it into a fresh temporary. The caller
    // wraps Pre in a with-block, so the temporary is uncomputed.
    CoreExpr Sub;
    if (!flattenExpr(E, S, Pre, Sub))
      return false;
    std::string Temp = uniquify("%e");
    Atom Var = Atom::var(Temp, Sub.Ty);
    Pre.push_back(CoreStmt::assign(Temp, Sub.Ty, std::move(Sub)));
    Out = std::move(Var);
    return true;
  }
  }
}

bool Lowerer::flattenExpr(const Expr &E, Scope &S, CoreStmtList &Pre,
                          CoreExpr &Out) {
  assert(E.Ty && "expression not annotated by the type checker");
  switch (E.K) {
  case Expr::Kind::Var:
  case Expr::Kind::UIntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::NullLit:
  case Expr::Kind::Default:
  case Expr::Kind::AllocCell:
  case Expr::Kind::Call: {
    Atom A;
    if (!atomize(E, S, Pre, A))
      return false;
    Out = CoreExpr::atom(std::move(A));
    return true;
  }
  case Expr::Kind::Tuple: {
    Atom A, B;
    if (!atomize(*E.Args[0], S, Pre, A) || !atomize(*E.Args[1], S, Pre, B))
      return false;
    Out = CoreExpr::pair(std::move(A), std::move(B), E.Ty);
    return true;
  }
  case Expr::Kind::Proj: {
    Atom A;
    if (!atomize(*E.Args[0], S, Pre, A))
      return false;
    Out = CoreExpr::proj(std::move(A), E.ProjIndex, E.Ty);
    return true;
  }
  case Expr::Kind::Unary: {
    Atom A;
    if (!atomize(*E.Args[0], S, Pre, A))
      return false;
    Out = CoreExpr::unary(E.UOp, std::move(A), E.Ty);
    return true;
  }
  case Expr::Kind::Binary: {
    Atom A, B;
    if (!atomize(*E.Args[0], S, Pre, A) || !atomize(*E.Args[1], S, Pre, B))
      return false;
    Out = CoreExpr::binary(E.BOp, std::move(A), std::move(B), E.Ty);
    return true;
  }
  }
  return false;
}

bool Lowerer::inlineCall(const Expr &Call, Scope &CallerScope,
                         CoreStmtList &Out, CallMode Mode,
                         const VarBinding *BoundResult,
                         std::string &ResultName, const Type *&ResultTy) {
  const FunDecl *Callee = Program.findFunction(Call.Name);
  assert(Callee && "call to unknown function survived type checking");
  bool Reversed = Mode == CallMode::Reversed;
  assert((!Reversed || BoundResult) && "reversed calls need a target");

  if (++InlineInstances > Opts.MaxInlineInstances) {
    Diags.error(Call.Loc, "inlining exceeded " +
                              std::to_string(Opts.MaxInlineInstances) +
                              " instances; is the recursion unbounded?");
    return false;
  }

  int64_t CalleeSize = 0;
  if (!Callee->SizeParam.empty())
    CalleeSize = evalSize(*Call.SizeArg);

  ResultTy = Call.Ty;
  assert(ResultTy && "call expression not annotated");

  // Base case: a size-indexed function at size <= 0 produces the all-zero
  // value of its return type (Section 3.1's semantics for `length`).
  if (!Callee->SizeParam.empty() && CalleeSize <= 0) {
    CoreExpr Zero = CoreExpr::atom(Atom::constant(0, ResultTy));
    if (Reversed) {
      Out.push_back(CoreStmt::unassign(BoundResult->CoreName,
                                       BoundResult->Ty, std::move(Zero)));
      ResultName.clear();
      return true;
    }
    if (BoundResult) {
      // Re-declaration: XOR zero into the existing register (no gates).
      Out.push_back(CoreStmt::assign(BoundResult->CoreName, BoundResult->Ty,
                                     std::move(Zero)));
      ResultName = BoundResult->CoreName;
      ResultTy = BoundResult->Ty;
      return true;
    }
    std::string Name = uniquify(Callee->Name + ".base");
    Out.push_back(CoreStmt::assign(Name, ResultTy, std::move(Zero)));
    ResultName = Name;
    return true;
  }

  // Bind parameters. Variable arguments alias the caller's registers (the
  // callee body operates on them directly); constant arguments are
  // substituted through a with-block temporary and must not be modified
  // by the callee body, which we verify against mod(body).
  Scope CalleeScope;
  std::set<std::string> CalleeMods = sema::collectModSet(Callee->Body);
  CoreStmtList ConstPrologue;
  for (size_t I = 0; I != Call.Args.size(); ++I) {
    const Expr &Arg = *Call.Args[I];
    const auto &[PName, PTy] = Callee->Params[I];
    if (Arg.K == Expr::Kind::Var) {
      auto It = CallerScope.find(Arg.Name);
      if (It == CallerScope.end()) {
        Diags.error(Arg.Loc, "argument variable '" + Arg.Name +
                                 "' is not live at the call");
        return false;
      }
      CalleeScope[PName] = It->second;
      continue;
    }
    Atom C;
    switch (Arg.K) {
    case Expr::Kind::UIntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::UnitLit:
    case Expr::Kind::NullLit:
    case Expr::Kind::Default:
    case Expr::Kind::AllocCell:
      if (!lowerConstant(Arg, C))
        return false;
      break;
    default:
      Diags.error(Arg.Loc, "call arguments must be variables or constants "
                           "(compound expressions are not supported)");
      return false;
    }
    if (CalleeMods.count(PName)) {
      Diags.error(Arg.Loc, "constant argument bound to parameter '" + PName +
                               "' which the callee modifies; pass a "
                               "variable instead");
      return false;
    }
    std::string Temp = uniquify(PName);
    VarBinding TempBinding{Temp, PTy};
    ConstPrologue.push_back(
        CoreStmt::assign(Temp, PTy, CoreExpr::atom(std::move(C))));
    CalleeScope[PName] = TempBinding;
  }

  if (BoundResult) {
    if (CalleeScope.count(Callee->ReturnVar)) {
      Diags.error(Call.Loc, "cannot bind the result of '" + Call.Name +
                                "': its return variable shadows a "
                                "parameter");
      return false;
    }
    CalleeScope[Callee->ReturnVar] = *BoundResult;
  }

  // Save and set the size-parameter environment for the callee instance.
  std::string SavedParam = std::move(CurrentSizeParam);
  int64_t SavedValue = CurrentSizeValue;
  CurrentSizeParam = Callee->SizeParam;
  CurrentSizeValue = CalleeSize;

  StmtList BodyToLower = Reversed ? ast::reverseStmts(Callee->Body)
                                  : ast::cloneStmts(Callee->Body);

  CoreStmtList BodyOut;
  bool OK = lowerStmts(BodyToLower, CalleeScope, BodyOut);

  CurrentSizeParam = std::move(SavedParam);
  CurrentSizeValue = SavedValue;
  if (!OK)
    return false;

  if (!ConstPrologue.empty()) {
    // with { consts } do { body } uncomputes the constant temporaries.
    Out.push_back(
        CoreStmt::with(std::move(ConstPrologue), std::move(BodyOut)));
  } else {
    for (auto &St : BodyOut)
      Out.push_back(std::move(St));
  }

  if (Reversed) {
    ResultName.clear();
    return true;
  }

  auto RV = CalleeScope.find(Callee->ReturnVar);
  if (RV == CalleeScope.end()) {
    Diags.error(Callee->Loc, "return variable '" + Callee->ReturnVar +
                                 "' is not live at the end of '" +
                                 Callee->Name + "'");
    return false;
  }
  ResultName = RV->second.CoreName;
  ResultTy = RV->second.Ty;
  return true;
}

bool Lowerer::lowerStmt(const Stmt &St, Scope &S, CoreStmtList &Out) {
  switch (St.K) {
  case Stmt::Kind::Skip:
    Out.push_back(CoreStmt::skip());
    return true;

  case Stmt::Kind::Let: {
    // Direct call: splice the inlined body and alias the result variable.
    // If the target already exists (re-declaration) the callee's return
    // variable is pre-bound to it so writes XOR into the same register.
    if (St.E->K == Expr::Kind::Call) {
      auto Existing = S.find(St.Name);
      VarBinding Bound;
      const VarBinding *BoundPtr = nullptr;
      if (Existing != S.end()) {
        Bound = Existing->second;
        BoundPtr = &Bound;
      }
      std::string ResultName;
      const Type *ResultTy = nullptr;
      if (!inlineCall(*St.E, S, Out, CallMode::Forward, BoundPtr, ResultName,
                      ResultTy))
        return false;
      S[St.Name] = {ResultName, ResultTy};
      return true;
    }
    CoreStmtList Pre;
    CoreExpr RHS;
    if (!flattenExpr(*St.E, S, Pre, RHS))
      return false;
    auto It = S.find(St.Name);
    std::string CoreName;
    if (It != S.end()) {
      // Re-declaration: XOR into the same register (Appendix B.2).
      CoreName = It->second.CoreName;
    } else {
      CoreName = uniquify(St.Name);
      S[St.Name] = {CoreName, RHS.Ty};
    }
    const Type *Ty = RHS.Ty;
    auto Assign = CoreStmt::assign(CoreName, Ty, std::move(RHS));
    if (Pre.empty()) {
      Out.push_back(std::move(Assign));
    } else {
      CoreStmtList DoBody;
      DoBody.push_back(std::move(Assign));
      Out.push_back(CoreStmt::with(std::move(Pre), std::move(DoBody)));
    }
    return true;
  }

  case Stmt::Kind::UnLet: {
    auto It = S.find(St.Name);
    if (It == S.end()) {
      Diags.error(St.Loc, "un-assignment of unbound variable '" + St.Name +
                              "' during lowering");
      return false;
    }
    if (St.E->K == Expr::Kind::Call) {
      // Uncompute via the reversed inlined body, with the callee's return
      // variable aliased to the target register.
      VarBinding Target = It->second;
      std::string Ignored;
      const Type *IgnoredTy = nullptr;
      if (!inlineCall(*St.E, S, Out, CallMode::Reversed, &Target, Ignored,
                      IgnoredTy))
        return false;
      S.erase(St.Name);
      return true;
    }
    CoreStmtList Pre;
    CoreExpr RHS;
    if (!flattenExpr(*St.E, S, Pre, RHS))
      return false;
    auto UnAssign =
        CoreStmt::unassign(It->second.CoreName, It->second.Ty, std::move(RHS));
    if (Pre.empty()) {
      Out.push_back(std::move(UnAssign));
    } else {
      CoreStmtList DoBody;
      DoBody.push_back(std::move(UnAssign));
      Out.push_back(CoreStmt::with(std::move(Pre), std::move(DoBody)));
    }
    S.erase(St.Name);
    return true;
  }

  case Stmt::Kind::Swap: {
    auto A = S.find(St.Name), B = S.find(St.Name2);
    if (A == S.end() || B == S.end()) {
      Diags.error(St.Loc, "swap of unbound variable during lowering");
      return false;
    }
    Out.push_back(CoreStmt::swap(A->second.CoreName, A->second.Ty,
                                 B->second.CoreName, B->second.Ty));
    return true;
  }

  case Stmt::Kind::MemSwap: {
    auto P = S.find(St.Name), V = S.find(St.Name2);
    if (P == S.end() || V == S.end()) {
      Diags.error(St.Loc, "memory swap of unbound variable during lowering");
      return false;
    }
    PointeeTypes.push_back(V->second.Ty);
    Out.push_back(CoreStmt::memSwap(P->second.CoreName, P->second.Ty,
                                    V->second.CoreName, V->second.Ty));
    return true;
  }

  case Stmt::Kind::Hadamard: {
    auto X = S.find(St.Name);
    if (X == S.end()) {
      Diags.error(St.Loc, "h() of unbound variable during lowering");
      return false;
    }
    Out.push_back(CoreStmt::hadamard(X->second.CoreName, X->second.Ty));
    return true;
  }

  case Stmt::Kind::If: {
    bool CondIsVar = St.E->K == Expr::Kind::Var;
    bool HasElse = !St.ElseBody.empty();

    if (CondIsVar && !HasElse) {
      auto C = S.find(St.E->Name);
      if (C == S.end()) {
        Diags.error(St.Loc, "if condition variable unbound during lowering");
        return false;
      }
      CoreStmtList Body;
      if (!lowerStmts(St.Body, S, Body))
        return false;
      Out.push_back(CoreStmt::ifStmt(C->second.CoreName, std::move(Body)));
      return true;
    }

    // General case (Yuan & Carbin [2022, Appendix B]):
    //   with { c <- cond; nc <- not c } do { if c {then}; if nc {else} }
    CoreStmtList Pre;
    Atom CondAtom;
    if (!atomize(*St.E, S, Pre, CondAtom))
      return false;
    assert(CondAtom.isVar() && "condition atom should be a variable");
    std::string CondName = CondAtom.Var;

    std::string NotName;
    if (HasElse) {
      NotName = uniquify("%not");
      Pre.push_back(CoreStmt::assign(
          NotName, Types.boolType(),
          CoreExpr::unary(UnaryOp::Not, CondAtom, Types.boolType())));
    }

    CoreStmtList DoBody;
    CoreStmtList Then;
    if (!lowerStmts(St.Body, S, Then))
      return false;
    DoBody.push_back(CoreStmt::ifStmt(CondName, std::move(Then)));
    if (HasElse) {
      CoreStmtList Else;
      if (!lowerStmts(St.ElseBody, S, Else))
        return false;
      DoBody.push_back(CoreStmt::ifStmt(NotName, std::move(Else)));
    }

    if (Pre.empty()) {
      for (auto &X : DoBody)
        Out.push_back(std::move(X));
    } else {
      Out.push_back(CoreStmt::with(std::move(Pre), std::move(DoBody)));
    }
    return true;
  }

  case Stmt::Kind::With: {
    Scope Snapshot = S;
    CoreStmtList WithBody;
    if (!lowerStmts(St.Body, S, WithBody))
      return false;
    Scope AfterWith = S;
    CoreStmtList DoBody;
    if (!lowerStmts(St.ElseBody, S, DoBody))
      return false;
    // Bindings net-created by the with-block are uncomputed by its
    // reversal; the do-block's additions persist.
    Scope Final = Snapshot;
    for (const auto &[Name, B] : S) {
      auto InWith = AfterWith.find(Name);
      bool CreatedByWith = InWith != AfterWith.end() &&
                           !Snapshot.count(Name) &&
                           InWith->second.CoreName == B.CoreName;
      if (!CreatedByWith)
        Final[Name] = B;
    }
    S = std::move(Final);
    Out.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
    return true;
  }
  }
  return false;
}

bool Lowerer::lowerStmts(const StmtList &Stmts, Scope &S, CoreStmtList &Out) {
  for (const auto &St : Stmts)
    if (!lowerStmt(*St, S, Out))
      return false;
  return true;
}

std::optional<CoreProgram> Lowerer::run(const std::string &Entry,
                                        int64_t SizeValue) {
  if (!Opts.AssumeTypeChecked) {
    sema::TypeChecker Checker(Program, Diags);
    if (!Checker.check())
      return std::nullopt;
  }

  const FunDecl *F = Program.findFunction(Entry);
  if (!F) {
    Diags.error("entry function '" + Entry + "' not found");
    return std::nullopt;
  }

  CoreProgram Result;
  Result.Types = Program.Types;

  Scope S;
  for (const auto &[Name, Ty] : F->Params) {
    NameCounters[Name] = 1; // Reserve parameter names verbatim.
    S[Name] = {Name, Ty};
    Result.Inputs.emplace_back(Name, Ty);
  }

  CurrentSizeParam = F->SizeParam;
  CurrentSizeValue = SizeValue;

  if (!lowerStmts(F->Body, S, Result.Body))
    return std::nullopt;

  auto RV = S.find(F->ReturnVar);
  if (RV == S.end()) {
    Diags.error(F->Loc, "return variable '" + F->ReturnVar +
                            "' is not live at the end of '" + Entry + "'");
    return std::nullopt;
  }
  Result.OutputVar = RV->second.CoreName;
  Result.OutputTy = RV->second.Ty;
  Result.NumAllocCells = AllocCells;
  Result.PointeeTypes = std::move(PointeeTypes);
  return Result;
}

} // namespace

std::optional<CoreProgram> lowerProgram(ast::Program &Program,
                                        const std::string &Entry,
                                        int64_t SizeValue,
                                        support::DiagnosticEngine &Diags,
                                        const LowerOptions &Opts) {
  Lowerer L(Program, Diags, Opts);
  return L.run(Entry, SizeValue);
}

CoreProgram lowerProgramOrDie(ast::Program &Program, const std::string &Entry,
                              int64_t SizeValue, const LowerOptions &Opts) {
  support::DiagnosticEngine Diags;
  std::optional<CoreProgram> P =
      lowerProgram(Program, Entry, SizeValue, Diags, Opts);
  if (!P) {
    std::fprintf(stderr, "lowering failed:\n%s\n", Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

} // namespace spire::lowering

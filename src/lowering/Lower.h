//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering from the Tower surface AST to the core IR of Fig. 13.
///
/// This stage implements Section 4's "Derived Forms" and the compiler
/// behavior of Section 7 ("This lowering involves inlining all function
/// calls and translating memory allocation and derived forms to core
/// syntax"):
///
///  * Function inlining. Recursive calls carry static size arguments
///    (`length[n-1](...)`); each call is inlined with the size evaluated,
///    bottoming out at size <= 0 where the call produces the all-zero
///    value of its return type (Section 3.1: "returns the length of the
///    list xs if it is less than n, or 0 otherwise").
///  * if-else desugaring (Yuan & Carbin [2022, Appendix B]):
///      if e { s1 } else { s2 }
///        ~> with { c <- e; nc <- not c } do { if c {s1}; if nc {s2} }
///  * Nested-expression flattening: compound operands are computed into
///    temporaries inside a with-block so they are automatically
///    uncomputed, preserving reversibility.
///  * Memory allocation: `alloc<T>` sites are assigned distinct static
///    heap cells from the top of the heap downward. This substitutes
///    Tower's dynamic Boson allocator with a reversible static allocator
///    (see DESIGN.md §2); allocation costs O(1) MCX gates, preserving the
///    asymptotics the paper studies.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_LOWERING_LOWER_H
#define SPIRE_LOWERING_LOWER_H

#include "ast/AST.h"
#include "ir/Core.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace spire::lowering {

struct LowerOptions {
  /// Number of qRAM cells the backend will instantiate; static `alloc<T>`
  /// cells are assigned from the top of this range.
  unsigned HeapCells = 16;
  /// Safety bound on the number of inlined function instances.
  unsigned MaxInlineInstances = 100000;
  /// Skip the internal type-check pass when the caller (the driver
  /// pipeline) has already checked and annotated the program.
  bool AssumeTypeChecked = false;
};

/// Type-checks `Program` (annotating expressions in place) and lowers the
/// entry function instantiated at the given size value to core IR.
/// `SizeValue` is ignored for functions without a size parameter.
/// Returns std::nullopt and reports diagnostics on failure.
std::optional<ir::CoreProgram>
lowerProgram(ast::Program &Program, const std::string &Entry,
             int64_t SizeValue, support::DiagnosticEngine &Diags,
             const LowerOptions &Opts = {});

/// Convenience wrapper asserting success; used by tests and benchmarks.
ir::CoreProgram lowerProgramOrDie(ast::Program &Program,
                                  const std::string &Entry, int64_t SizeValue,
                                  const LowerOptions &Opts = {});

} // namespace spire::lowering

#endif // SPIRE_LOWERING_LOWER_H

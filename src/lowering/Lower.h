//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering from the Tower surface AST to the core IR of Fig. 13.
///
/// This stage implements Section 4's "Derived Forms" and the compiler
/// behavior of Section 7 ("This lowering involves inlining all function
/// calls and translating memory allocation and derived forms to core
/// syntax"):
///
///  * Function inlining. Recursive calls carry static size arguments
///    (`length[n-1](...)`); each call is inlined with the size evaluated,
///    bottoming out at size <= 0 where the call produces the all-zero
///    value of its return type (Section 3.1: "returns the length of the
///    list xs if it is less than n, or 0 otherwise").
///  * if-else desugaring (Yuan & Carbin [2022, Appendix B]):
///      if e { s1 } else { s2 }
///        ~> with { c <- e; nc <- not c } do { if c {s1}; if nc {s2} }
///  * Nested-expression flattening: compound operands are computed into
///    temporaries inside a with-block so they are automatically
///    uncomputed, preserving reversibility.
///  * Memory allocation: `alloc<T>` sites are assigned distinct static
///    heap cells from the top of the heap downward. This substitutes
///    Tower's dynamic Boson allocator with a reversible static allocator
///    (see DESIGN.md §2); allocation costs O(1) MCX gates, preserving the
///    asymptotics the paper studies.
///
/// Inlining runs on an explicit worklist of heap-allocated frames rather
/// than C++ recursion, so recursion depth is limited only by
/// LowerOptions::MaxInlineDepth / MaxInlineInstances (each produces a
/// diagnostic, never a stack overflow); `--size 100000` programs lower in
/// one pass. See docs/architecture.md for the machine's design.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_LOWERING_LOWER_H
#define SPIRE_LOWERING_LOWER_H

#include "ast/AST.h"
#include "ir/Core.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace spire::lowering {

struct LowerOptions {
  /// Number of qRAM cells the backend will instantiate; static `alloc<T>`
  /// cells are assigned from the top of this range.
  unsigned HeapCells = 16;
  /// Safety bound on the number of inlined function instances.
  unsigned MaxInlineInstances = 100000;
  /// Safety bound on the depth of the call-inlining stack. The lowerer is
  /// iterative (an explicit worklist of heap-allocated frames), so deep
  /// recursion is bounded by this option with a diagnostic — not by the
  /// C++ call stack with a segfault. Depth never exceeds the instance
  /// count, so with the defaults the instance bound trips first; lower
  /// this to cap nesting (and the IR depth it implies) specifically.
  unsigned MaxInlineDepth = 100000;
  /// Skip the internal type-check pass when the caller (the driver
  /// pipeline) has already checked and annotated the program.
  bool AssumeTypeChecked = false;
};

/// Type-checks `Program` (annotating expressions in place) and lowers the
/// entry function instantiated at the given size value to core IR.
/// `SizeValue` is ignored for functions without a size parameter.
/// Returns std::nullopt and reports diagnostics on failure.
std::optional<ir::CoreProgram>
lowerProgram(ast::Program &Program, const std::string &Entry,
             int64_t SizeValue, support::DiagnosticEngine &Diags,
             const LowerOptions &Opts = {});

/// Convenience wrapper asserting success; used by tests and benchmarks.
ir::CoreProgram lowerProgramOrDie(ast::Program &Program,
                                  const std::string &Entry, int64_t SizeValue,
                                  const LowerOptions &Opts = {});

} // namespace spire::lowering

#endif // SPIRE_LOWERING_LOWER_H

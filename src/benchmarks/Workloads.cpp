#include "benchmarks/Workloads.h"

#include <cassert>

namespace spire::benchmarks {

uint64_t encodeListAt(sim::MachineState &State,
                      const std::vector<uint64_t> &Values,
                      unsigned &FirstCell, unsigned WordBits) {
  if (Values.empty())
    return 0;
  uint64_t Head = FirstCell;
  for (size_t I = 0; I != Values.size(); ++I) {
    assert(FirstCell < State.Mem.size() && "list overflows the heap");
    uint64_t Next = I + 1 < Values.size() ? FirstCell + 1 : 0;
    State.Mem[FirstCell] = Values[I] | (Next << WordBits);
    ++FirstCell;
  }
  return Head;
}

uint64_t encodeList(sim::MachineState &State,
                    const std::vector<uint64_t> &Values, unsigned WordBits) {
  unsigned Cell = 1;
  return encodeListAt(State, Values, Cell, WordBits);
}

std::vector<uint64_t> decodeList(const sim::MachineState &State,
                                 uint64_t Head, unsigned WordBits) {
  std::vector<uint64_t> Values;
  uint64_t Mask = (uint64_t(1) << WordBits) - 1;
  uint64_t P = Head;
  while (P != 0 && P < State.Mem.size() &&
         Values.size() <= State.Mem.size()) {
    uint64_t Node = State.Mem[P];
    Values.push_back(Node & Mask);
    P = (Node >> WordBits) & Mask;
  }
  return Values;
}

bool keyLess(const Key &A, const Key &B) {
  // Matches str_less: "" < b iff b nonempty; heads compared, ties recurse.
  size_t I = 0;
  for (;; ++I) {
    if (I == A.size())
      return I != B.size();
    if (I == B.size())
      return false;
    if (A[I] < B[I])
      return true;
    if (A[I] > B[I])
      return false;
  }
}

namespace {

struct TreeEncoder {
  sim::MachineState &State;
  unsigned &FirstCell;
  unsigned WordBits;

  uint64_t allocKey(const Key &K) {
    return encodeListAt(State, K, FirstCell, WordBits);
  }

  uint64_t nodeKeyPtr(uint64_t Node) const {
    return State.Mem[Node] & ((uint64_t(1) << WordBits) - 1);
  }
  uint64_t nodeLeft(uint64_t Node) const {
    return (State.Mem[Node] >> WordBits) & ((uint64_t(1) << WordBits) - 1);
  }
  uint64_t nodeRight(uint64_t Node) const {
    return (State.Mem[Node] >> (2 * WordBits)) &
           ((uint64_t(1) << WordBits) - 1);
  }
  void setLeft(uint64_t Node, uint64_t P) {
    uint64_t Mask = ((uint64_t(1) << WordBits) - 1) << WordBits;
    State.Mem[Node] = (State.Mem[Node] & ~Mask) | (P << WordBits);
  }
  void setRight(uint64_t Node, uint64_t P) {
    uint64_t Mask = ((uint64_t(1) << WordBits) - 1) << (2 * WordBits);
    State.Mem[Node] = (State.Mem[Node] & ~Mask) | (P << (2 * WordBits));
  }

  Key readKey(uint64_t Node) const {
    std::vector<uint64_t> K =
        decodeList(State, nodeKeyPtr(Node), WordBits);
    return K;
  }

  uint64_t insert(uint64_t Root, const Key &K) {
    if (Root == 0) {
      uint64_t KeyPtr = allocKey(K);
      assert(FirstCell < State.Mem.size() && "tree overflows the heap");
      uint64_t Node = FirstCell++;
      State.Mem[Node] = KeyPtr; // children null
      return Node;
    }
    Key NK = readKey(Root);
    if (keyLess(K, NK)) {
      setLeft(Root, insert(nodeLeft(Root), K));
    } else if (keyLess(NK, K)) {
      setRight(Root, insert(nodeRight(Root), K));
    }
    return Root;
  }
};

} // namespace

uint64_t encodeTree(sim::MachineState &State, const std::vector<Key> &Keys,
                    unsigned &FirstCell, unsigned WordBits) {
  TreeEncoder Enc{State, FirstCell, WordBits};
  uint64_t Root = 0;
  for (const Key &K : Keys)
    Root = Enc.insert(Root, K);
  return Root;
}

bool treeContains(const sim::MachineState &State, uint64_t Root,
                  const Key &K, unsigned WordBits) {
  uint64_t Node = Root;
  unsigned Guard = 0;
  while (Node != 0 && Node < State.Mem.size() &&
         ++Guard <= State.Mem.size()) {
    uint64_t Mask = (uint64_t(1) << WordBits) - 1;
    uint64_t KeyPtr = State.Mem[Node] & Mask;
    Key NK = decodeList(State, KeyPtr, WordBits);
    if (!keyLess(K, NK) && !keyLess(NK, K))
      return true;
    Node = keyLess(K, NK) ? (State.Mem[Node] >> WordBits) & Mask
                          : (State.Mem[Node] >> (2 * WordBits)) & Mask;
  }
  return false;
}

} // namespace spire::benchmarks

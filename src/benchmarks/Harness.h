//===----------------------------------------------------------------------===//
///
/// \file
/// Shared measurement helpers for the bench/ binaries that regenerate the
/// paper's tables and figures: per-depth compilation, gate counting at
/// each circuit level, optimizer application, polynomial fitting, and
/// wall-clock timing with mean and standard error over repeated runs
/// (Section 8.4 reports "the mean and standard error of 5 runs").
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_BENCHMARKS_HARNESS_H
#define SPIRE_BENCHMARKS_HARNESS_H

#include "benchmarks/Benchmarks.h"
#include "circuit/Compiler.h"
#include "costmodel/CostModel.h"
#include "decompose/Decompose.h"
#include "driver/Pipeline.h"
#include "opt/Spire.h"
#include "qopt/Passes.h"
#include "support/PolyFit.h"

#include <functional>
#include <string>
#include <vector>

namespace spire::benchmarks {

/// One measured series over recursion depths.
struct Series {
  std::string Label;
  std::vector<int64_t> Depths;
  std::vector<int64_t> Values;

  /// The exactly fitted lowest-degree polynomial (paper Section 8.1).
  support::Polynomial fit() const {
    return support::fitPolynomial(Depths.empty() ? 0 : Depths.front(),
                                  Values);
  }
  int degree() const { return fit().degree(); }

  /// Asymptotic degree, robust to irregular leading samples: the
  /// smallest exact-fit degree over any suffix of at least five points
  /// whose fit is genuinely lower-degree than the suffix (degree at most
  /// points-3). Circuit optimizers often behave irregularly at the
  /// smallest instance and settle into an exact polynomial from the
  /// next depth on; the full-range Section 8.1 fit then reports an
  /// artifactual high degree while the tail is clean.
  int stableDegree() const;
};

/// The circuit-optimizer baselines of Section 8.3 now live in the driver
/// (the single compile-pipeline implementation); re-exported here for the
/// bench binaries and tests that spell them benchmarks::*.
using CircuitOptimizerKind = driver::CircuitOptimizerKind;
using driver::applyCircuitOptimizer;
using driver::optimizerName;

/// Runs the unified driver pipeline over a benchmark program at one
/// size. `Base` supplies everything except Entry and Size, which come
/// from the benchmark itself.
driver::CompilationResult
runPipeline(const BenchmarkProgram &B, int64_t Size,
            driver::PipelineOptions Base = driver::PipelineOptions());

/// Like runPipeline, but aborts with the diagnostics on failure; the
/// embedded benchmark sources are known-good, so a failure here is a
/// harness bug.
driver::CompilationResult
runPipelineOrDie(const BenchmarkProgram &B, int64_t Size,
                 driver::PipelineOptions Base = driver::PipelineOptions());

/// Per-stage wall-clock timings of a pipeline run, e.g.
/// "parse 0.001s  typecheck 0.000s  lower 0.013s ...".
std::string formatStageTimings(const driver::CompilationResult &R);

/// T-complexity of a benchmark at one depth under a Spire configuration
/// and an optional circuit optimizer.
int64_t measureT(const BenchmarkProgram &B, int64_t Depth,
                 const opt::SpireOptions &Spire,
                 CircuitOptimizerKind Kind = CircuitOptimizerKind::None);

/// Wall-clock statistics over repeated runs.
struct Timing {
  double MeanSeconds = 0;
  double StdErrSeconds = 0;
};

Timing timeRuns(const std::function<void()> &Fn, unsigned Runs = 5);

/// Formats "x.xx s" or "x.xx ± y.yy s".
std::string formatTiming(const Timing &T);

/// Percent improvement of After relative to Before, e.g. "88.0%".
std::string percentReduction(int64_t Before, int64_t After);

} // namespace spire::benchmarks

#endif // SPIRE_BENCHMARKS_HARNESS_H

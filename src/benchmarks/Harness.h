//===----------------------------------------------------------------------===//
///
/// \file
/// Shared measurement helpers for the bench/ binaries that regenerate the
/// paper's tables and figures: per-depth compilation, gate counting at
/// each circuit level, optimizer application, polynomial fitting, and
/// wall-clock timing with mean and standard error over repeated runs
/// (Section 8.4 reports "the mean and standard error of 5 runs").
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_BENCHMARKS_HARNESS_H
#define SPIRE_BENCHMARKS_HARNESS_H

#include "benchmarks/Benchmarks.h"
#include "circuit/Compiler.h"
#include "costmodel/CostModel.h"
#include "decompose/Decompose.h"
#include "opt/Spire.h"
#include "qopt/Passes.h"
#include "support/PolyFit.h"

#include <functional>
#include <string>
#include <vector>

namespace spire::benchmarks {

/// One measured series over recursion depths.
struct Series {
  std::string Label;
  std::vector<int64_t> Depths;
  std::vector<int64_t> Values;

  /// The exactly fitted lowest-degree polynomial (paper Section 8.1).
  support::Polynomial fit() const {
    return support::fitPolynomial(Depths.empty() ? 0 : Depths.front(),
                                  Values);
  }
  int degree() const { return fit().degree(); }

  /// Asymptotic degree, robust to irregular leading samples: the
  /// smallest exact-fit degree over any suffix of at least five points
  /// whose fit is genuinely lower-degree than the suffix (degree at most
  /// points-3). Circuit optimizers often behave irregularly at the
  /// smallest instance and settle into an exact polynomial from the
  /// next depth on; the full-range Section 8.1 fit then reports an
  /// artifactual high degree while the tail is clean.
  int stableDegree() const;
};

/// The circuit-optimizer baselines of Section 8.3, keyed by the system
/// each one stands in for (see DESIGN.md section 2).
enum class CircuitOptimizerKind {
  None,
  Peephole,         ///< Qiskit / Pytket-peephole analogue (Clifford+T).
  CliffordTCancel,  ///< Feynman -toCliffordT analogue (decompose, then
                    ///< cancel + rotation merging).
  RotationMerging,  ///< VOQC / Pytket-ZX analogue (phase folding only).
  ToffoliCancel,    ///< Feynman -mctExpand analogue (cancel at the
                    ///< MCX/Toffoli level, then decompose).
  ExhaustiveCancel, ///< QuiZX analogue (unbounded-lookahead fixpoint at
                    ///< the Toffoli level plus rotation merging; slow).
};

const char *optimizerName(CircuitOptimizerKind Kind);

/// Applies a circuit optimizer to an MCX-level compiled circuit and
/// returns the resulting Clifford+T-level circuit.
circuit::Circuit applyCircuitOptimizer(const circuit::Circuit &MCXCircuit,
                                       CircuitOptimizerKind Kind);

/// T-complexity of a benchmark at one depth under a Spire configuration
/// and an optional circuit optimizer.
int64_t measureT(const BenchmarkProgram &B, int64_t Depth,
                 const opt::SpireOptions &Spire,
                 CircuitOptimizerKind Kind = CircuitOptimizerKind::None);

/// Wall-clock statistics over repeated runs.
struct Timing {
  double MeanSeconds = 0;
  double StdErrSeconds = 0;
};

Timing timeRuns(const std::function<void()> &Fn, unsigned Runs = 5);

/// Formats "x.xx s" or "x.xx ± y.yy s".
std::string formatTiming(const Timing &T);

/// Percent improvement of After relative to Before, e.g. "88.0%".
std::string percentReduction(int64_t Before, int64_t After);

} // namespace spire::benchmarks

#endif // SPIRE_BENCHMARKS_HARNESS_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Workload generators: encode linked lists, strings, and radix-tree sets
/// into the qRAM machine state used by the interpreter, the circuit
/// simulator, and the benchmark harness.
///
/// Heap convention (see DESIGN.md): input data structures occupy cells
/// from address 1 upward; the static allocator hands out cells from the
/// top of the heap downward, so tests must keep the two regions disjoint.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_BENCHMARKS_WORKLOADS_H
#define SPIRE_BENCHMARKS_WORKLOADS_H

#include "sim/Interpreter.h"

#include <cstdint>
#include <vector>

namespace spire::benchmarks {

/// Encodes a linked list `(uint, ptr<list>)` with the given values into
/// consecutive heap cells starting at `FirstCell`. Returns the head
/// pointer value (0 for the empty list) and advances FirstCell past the
/// allocated cells.
uint64_t encodeListAt(sim::MachineState &State,
                      const std::vector<uint64_t> &Values,
                      unsigned &FirstCell, unsigned WordBits = 8);

/// Convenience overload starting at cell 1.
uint64_t encodeList(sim::MachineState &State,
                    const std::vector<uint64_t> &Values,
                    unsigned WordBits = 8);

/// Decodes a linked list from a machine state.
std::vector<uint64_t> decodeList(const sim::MachineState &State,
                                 uint64_t Head, unsigned WordBits = 8);

/// A key for the radix-tree set benchmarks: a string as a char vector.
using Key = std::vector<uint64_t>;

/// Encodes a binary search tree over string keys matching the layout of
/// the `tnode = (ptr<list>, (ptr<tnode>, ptr<tnode>))` benchmarks: keys
/// are inserted in order using lexicographic comparison (the semantics of
/// the benchmark's str_less). Returns the root pointer.
uint64_t encodeTree(sim::MachineState &State, const std::vector<Key> &Keys,
                    unsigned &FirstCell, unsigned WordBits = 8);

/// Reference lexicographic order matching the str_less benchmark.
bool keyLess(const Key &A, const Key &B);

/// True when the encoded tree rooted at `Root` contains `K` (reference
/// implementation used to validate the `contains` benchmark).
bool treeContains(const sim::MachineState &State, uint64_t Root,
                  const Key &K, unsigned WordBits = 8);

} // namespace spire::benchmarks

#endif // SPIRE_BENCHMARKS_WORKLOADS_H

#include "benchmarks/Benchmarks.h"

#include "benchmarks/Harness.h"
#include "driver/Pipeline.h"

#include <utility>

namespace spire::benchmarks {

namespace {

//===----------------------------------------------------------------------===//
// List benchmarks
//===----------------------------------------------------------------------===//

/// Fig. 1 of the paper, verbatim.
const char *LengthSource = R"(
type list = (uint, ptr<list>);
fun length[n](xs: ptr<list>, acc: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- acc;
  } else with {
    let temp <- default<list>;
    *xs <-> temp;
    let next <- temp.2;
    let r <- acc + 1;
  } do {
    let out <- length[n-1](next, r);
  }
  return out;
}
)";

/// Section 8's simplified variant: same control structure, but the memory
/// dereference and the addition (Fig. 1 lines 9 and 11) are omitted.
const char *LengthSimplifiedSource = R"(
type list = (uint, ptr<list>);
fun length_simplified[n](xs: ptr<list>, acc: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- acc;
  } else with {
    let next <- default<ptr<list>>;
    let r <- default<uint>;
  } do {
    let out <- length_simplified[n-1](next, r);
  }
  return out;
}
)";

const char *SumSource = R"(
type list = (uint, ptr<list>);
fun sum[n](xs: ptr<list>, acc: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- acc;
  } else with {
    let temp <- default<list>;
    *xs <-> temp;
    let head <- temp.1;
    let next <- temp.2;
    let r <- acc + head;
  } do {
    let out <- sum[n-1](next, r);
  }
  return out;
}
)";

/// 1-based position of the first occurrence of v, or 0 when absent.
const char *FindPosSource = R"(
type list = (uint, ptr<list>);
fun find_pos[n](xs: ptr<list>, v: uint, idx: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- 0;
  } else with {
    let temp <- default<list>;
    *xs <-> temp;
    let head <- temp.1;
    let next <- temp.2;
    let found <- head == v;
    let idx2 <- idx + 1;
  } do if found {
    let out <- idx2;
  } else {
    let out <- find_pos[n-1](next, v, idx2);
  }
  return out;
}
)";

/// Removes the first node whose value equals v, returning the new head.
/// The unlinked cell is left zeroed; the traversal temporaries (head,
/// next, matches, rest) are leaked rather than branch-locally uncomputed
/// (Tower's allocator would reclaim the cell; see DESIGN.md section 2).
const char *RemoveSource = R"(
type list = (uint, ptr<list>);
fun remove[n](xs: ptr<list>, v: uint) -> ptr<list> {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- xs;
  } else {
    let temp <- default<list>;
    *xs <-> temp;
    let head <- temp.1;
    let next <- temp.2;
    let temp -> (head, next);
    let matches <- head == v;
    if matches {
      let out <- next;
    } else {
      let rest <- remove[n-1](next, v);
      let node <- (head, rest);
      *xs <-> node;
      let node -> default<list>;
      let out <- xs;
    }
  }
  return out;
}
)";

//===----------------------------------------------------------------------===//
// Queue benchmarks (a queue as a singly linked list)
//===----------------------------------------------------------------------===//

const char *PushBackSource = R"(
type list = (uint, ptr<list>);
fun push_back[n](xs: ptr<list>, v: uint) -> ptr<list> {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let cell <- alloc<list>;
    let node <- (v, default<ptr<list>>);
    *cell <-> node;
    let node -> default<list>;
    let out <- cell;
  } else {
    let temp <- default<list>;
    *xs <-> temp;
    let head <- temp.1;
    let next <- temp.2;
    let temp -> (head, next);
    let rest <- push_back[n-1](next, v);
    let node2 <- (head, rest);
    *xs <-> node2;
    let node2 -> default<list>;
    let out <- xs;
  }
  return out;
}
)";

/// O(1): detach the head node and return the rest of the queue.
const char *PopFrontSource = R"(
type list = (uint, ptr<list>);
fun pop_front(xs: ptr<list>) {
  let temp <- default<list>;
  *xs <-> temp;
  let head <- temp.1;
  let next <- temp.2;
  let temp -> (head, next);
  let out <- next;
  return out;
}
)";

//===----------------------------------------------------------------------===//
// String benchmarks (strings are linked lists of characters)
//===----------------------------------------------------------------------===//

const char *IsPrefixSource = R"(
type list = (uint, ptr<list>);
fun is_prefix[n](ps: ptr<list>, ss: ptr<list>) {
  with {
    let p_empty <- ps == null;
  } do if p_empty {
    let out <- true;
  } else with {
    let s_empty <- ss == null;
  } do if s_empty {
    let out <- false;
  } else with {
    let ptemp <- default<list>;
    *ps <-> ptemp;
    let ph <- ptemp.1;
    let pn <- ptemp.2;
    let stemp <- default<list>;
    *ss <-> stemp;
    let sh <- stemp.1;
    let sn <- stemp.2;
    let heads_eq <- ph == sh;
  } do if heads_eq {
    let out <- is_prefix[n-1](pn, sn);
  } else {
    let out <- false;
  }
  return out;
}
)";

/// Number of positions at which the two strings hold equal characters
/// (the recursion result `rest` is leaked at each level).
const char *NumMatchingSource = R"(
type list = (uint, ptr<list>);
fun num_matching[n](as: ptr<list>, bs: ptr<list>) -> uint {
  with {
    let a_empty <- as == null;
    let b_empty <- bs == null;
    let either <- a_empty || b_empty;
  } do if either {
    let out <- 0;
  } else with {
    let atemp <- default<list>;
    *as <-> atemp;
    let ah <- atemp.1;
    let an <- atemp.2;
    let btemp <- default<list>;
    *bs <-> btemp;
    let bh <- btemp.1;
    let bn <- btemp.2;
    let heads_eq <- ah == bh;
  } do {
    let rest <- num_matching[n-1](an, bn);
    if heads_eq {
      let out <- rest + 1;
    } else {
      let out <- rest;
    }
  }
  return out;
}
)";

const char *CompareSource = R"(
type list = (uint, ptr<list>);
fun compare[n](as: ptr<list>, bs: ptr<list>) {
  with {
    let a_empty <- as == null;
    let b_empty <- bs == null;
    let both_empty <- a_empty && b_empty;
    let either_empty <- a_empty || b_empty;
  } do if both_empty {
    let out <- true;
  } else if either_empty {
    let out <- false;
  } else with {
    let atemp <- default<list>;
    *as <-> atemp;
    let ah <- atemp.1;
    let an <- atemp.2;
    let btemp <- default<list>;
    *bs <-> btemp;
    let bh <- btemp.1;
    let bn <- btemp.2;
    let heads_eq <- ah == bh;
  } do if heads_eq {
    let out <- compare[n-1](an, bn);
  } else {
    let out <- false;
  }
  return out;
}
)";

//===----------------------------------------------------------------------===//
// Set benchmarks (binary radix tree keyed by strings)
//===----------------------------------------------------------------------===//

/// Shared preamble: the tree node type plus the string helpers the set
/// operations invoke at every level (the O(d) compare inside each level
/// is what drives the O(d^2) MCX / O(d^3) unoptimized T complexity).
#define SET_PREAMBLE                                                         \
  "type list = (uint, ptr<list>);\n"                                         \
  "type tnode = (ptr<list>, (ptr<tnode>, ptr<tnode>));\n"                    \
  "fun compare[n](as: ptr<list>, bs: ptr<list>) {\n"                         \
  "  with {\n"                                                               \
  "    let a_empty <- as == null;\n"                                         \
  "    let b_empty <- bs == null;\n"                                         \
  "    let both_empty <- a_empty && b_empty;\n"                              \
  "    let either_empty <- a_empty || b_empty;\n"                            \
  "  } do if both_empty {\n"                                                 \
  "    let out <- true;\n"                                                   \
  "  } else if either_empty {\n"                                             \
  "    let out <- false;\n"                                                  \
  "  } else with {\n"                                                        \
  "    let atemp <- default<list>;\n"                                        \
  "    *as <-> atemp;\n"                                                     \
  "    let ah <- atemp.1;\n"                                                 \
  "    let an <- atemp.2;\n"                                                 \
  "    let btemp <- default<list>;\n"                                        \
  "    *bs <-> btemp;\n"                                                     \
  "    let bh <- btemp.1;\n"                                                 \
  "    let bn <- btemp.2;\n"                                                 \
  "    let heads_eq <- ah == bh;\n"                                          \
  "  } do if heads_eq {\n"                                                   \
  "    let out <- compare[n-1](an, bn);\n"                                   \
  "  } else {\n"                                                             \
  "    let out <- false;\n"                                                  \
  "  }\n"                                                                    \
  "  return out;\n"                                                          \
  "}\n"                                                                      \
  "fun str_less[n](as: ptr<list>, bs: ptr<list>) {\n"                        \
  "  with {\n"                                                               \
  "    let a_empty <- as == null;\n"                                         \
  "    let b_empty <- bs == null;\n"                                         \
  "  } do if a_empty {\n"                                                    \
  "    let out <- not b_empty;\n"                                            \
  "  } else if b_empty {\n"                                                  \
  "    let out <- false;\n"                                                  \
  "  } else with {\n"                                                        \
  "    let atemp <- default<list>;\n"                                        \
  "    *as <-> atemp;\n"                                                     \
  "    let ah <- atemp.1;\n"                                                 \
  "    let an <- atemp.2;\n"                                                 \
  "    let btemp <- default<list>;\n"                                        \
  "    *bs <-> btemp;\n"                                                     \
  "    let bh <- btemp.1;\n"                                                 \
  "    let bn <- btemp.2;\n"                                                 \
  "    let h_less <- ah < bh;\n"                                             \
  "    let h_eq <- ah == bh;\n"                                              \
  "  } do if h_less {\n"                                                     \
  "    let out <- true;\n"                                                   \
  "  } else if h_eq {\n"                                                     \
  "    let out <- str_less[n-1](an, bn);\n"                                  \
  "  } else {\n"                                                             \
  "    let out <- false;\n"                                                  \
  "  }\n"                                                                    \
  "  return out;\n"                                                          \
  "}\n"

const char *ContainsSource = SET_PREAMBLE R"(
fun contains[d](t: ptr<tnode>, key: ptr<list>) -> bool {
  with {
    let t_empty <- t == null;
  } do if t_empty {
    let out <- false;
  } else with {
    let node <- default<tnode>;
    *t <-> node;
    let nkey <- node.1;
    let kids <- node.2;
    let left <- kids.1;
    let right <- kids.2;
    let eq <- compare[d](nkey, key);
    let goleft <- str_less[d](key, nkey);
    let ne <- not eq;
    let goleft2 <- ne && goleft;
    let goright <- ne && not goleft;
    let child <- default<ptr<tnode>>;
    if goleft2 { let child <- left; }
    if goright { let child <- right; }
  } do {
    let sub <- contains[d-1](child, key);
    if eq { let out <- true; }
    if ne { let out <- sub; }
  }
  return out;
}
)";

const char *InsertSource = SET_PREAMBLE R"(
fun insert[d](t: ptr<tnode>, key: ptr<list>) -> ptr<tnode> {
  with {
    let t_empty <- t == null;
  } do if t_empty {
    let cell <- alloc<tnode>;
    let node <- (key, (default<ptr<tnode>>, default<ptr<tnode>>));
    *cell <-> node;
    let node -> default<tnode>;
    let out <- cell;
  } else {
    let node <- default<tnode>;
    *t <-> node;
    let nkey <- node.1;
    let kids <- node.2;
    let node -> (nkey, kids);
    let left <- kids.1;
    let right <- kids.2;
    let kids -> (left, right);
    let eq <- compare[d](nkey, key);
    let goleft <- str_less[d](key, nkey);
    let ne <- not eq;
    let goleft2 <- ne && goleft;
    let goright <- ne && not goleft;
    let child <- default<ptr<tnode>>;
    if goleft2 { let child <- left; }
    if goright { let child <- right; }
    let sub <- insert[d-1](child, key);
    let newleft <- default<ptr<tnode>>;
    let newright <- default<ptr<tnode>>;
    if goleft2 {
      let newleft <- sub;
      let newright <- right;
    }
    if goright {
      let newleft <- left;
      let newright <- sub;
    }
    if eq {
      let newleft <- left;
      let newright <- right;
    }
    let newnode <- (nkey, (newleft, newright));
    *t <-> newnode;
    let newnode -> default<tnode>;
    let out <- t;
  }
  return out;
}
)";

//===----------------------------------------------------------------------===//
// The Fig. 3 toy program
//===----------------------------------------------------------------------===//

const char *Figure3Source = R"(
fun fig3(x: bool, y: bool, z: bool) {
  let a <- false;
  let b <- false;
  if x {
    if y {
      with {
        let t <- z;
      } do {
        if z {
          let a <- not t;
          let b <- true;
        }
      }
    }
  }
  let r <- (a, b);
  return r;
}
)";

} // namespace

const std::vector<BenchmarkProgram> &allBenchmarks() {
  static const std::vector<BenchmarkProgram> Benchmarks = {
      {"length", "List", "length", LengthSource, true, "n"},
      {"sum", "List", "sum", SumSource, true, "n"},
      {"find_pos", "List", "find_pos", FindPosSource, true, "n"},
      {"remove", "List", "remove", RemoveSource, true, "n"},
      {"push_back", "Queue", "push_back", PushBackSource, true, "n"},
      {"pop_front", "Queue", "pop_front", PopFrontSource, false, "n"},
      {"is_prefix", "String", "is_prefix", IsPrefixSource, true, "n"},
      {"num_matching", "String", "num_matching", NumMatchingSource, true,
       "n"},
      {"compare", "String", "compare", CompareSource, true, "n"},
      {"insert", "Set", "insert", InsertSource, true, "d"},
      {"contains", "Set", "contains", ContainsSource, true, "d"},
  };
  return Benchmarks;
}

const BenchmarkProgram &lengthSimplified() {
  static const BenchmarkProgram B = {"length-simplified", "List",
                                     "length_simplified",
                                     LengthSimplifiedSource, true, "n"};
  return B;
}

const BenchmarkProgram &lengthBenchmark() { return allBenchmarks()[0]; }

const BenchmarkProgram &figure3Program() {
  static const BenchmarkProgram B = {"fig3", "Toy", "fig3", Figure3Source,
                                     false, "n"};
  return B;
}

ir::CoreProgram lowerBenchmark(const BenchmarkProgram &B, int64_t Size,
                               const lowering::LowerOptions &Opts) {
  // Route through the unified driver pipeline, stopping after lowering
  // (no Spire rewrites, no cost analysis).
  driver::PipelineOptions PipeOpts;
  PipeOpts.Target.HeapCells = Opts.HeapCells;
  PipeOpts.MaxInlineInstances = Opts.MaxInlineInstances;
  PipeOpts.MaxInlineDepth = Opts.MaxInlineDepth;
  PipeOpts.StopAfter = driver::Stage::Lower;
  driver::CompilationResult R =
      runPipelineOrDie(B, Size, std::move(PipeOpts));
  return std::move(*R.Core);
}

} // namespace spire::benchmarks

//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark suite (Table 1): data-structure operations used
/// by quantum algorithms for search [Ambainis 2004], optimization
/// [Bernstein et al. 2013], and geometry [Aaronson et al. 2020], written
/// in Tower, plus `length-simplified` (Section 8.2/8.3).
///
///   List:   length, sum, find_pos, remove
///   Queue:  push_back, pop_front
///   String: is_prefix, num_matching, compare   (strings = char lists)
///   Set:    insert, contains                   (radix tree over strings)
///
/// Differences from the (unpublished) originals are documented inline and
/// in DESIGN.md §2: memory allocation uses lowering's static reversible
/// allocator, and a few branch-local temporaries are deliberately leaked
/// (left live) instead of branch-locally uncomputed; neither changes the
/// MCX- or T-complexity orders that Table 1 reports.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_BENCHMARKS_BENCHMARKS_H
#define SPIRE_BENCHMARKS_BENCHMARKS_H

#include "ir/Core.h"
#include "lowering/Lower.h"

#include <string>
#include <vector>

namespace spire::benchmarks {

struct BenchmarkProgram {
  std::string Name;     ///< Display name, e.g. "length".
  std::string Group;    ///< "List", "Queue", "String", "Set".
  std::string Entry;    ///< Entry function in the source.
  const char *Source;   ///< Tower source text.
  bool SizeIndexed;     ///< Whether the entry takes a [n]/[d] parameter.
  const char *SizeVar;  ///< "n" or "d" for display.
};

/// The 11 benchmarks of Table 1, in the paper's order.
const std::vector<BenchmarkProgram> &allBenchmarks();

/// `length-simplified` (same asymptotics as `length`, two orders smaller;
/// Section 8's comparison workload).
const BenchmarkProgram &lengthSimplified();

/// The paper's running example `length` (Fig. 1).
const BenchmarkProgram &lengthBenchmark();

/// The toy nested-conditional program of Fig. 3.
const BenchmarkProgram &figure3Program();

/// Parses, checks, and lowers a benchmark at the given recursion depth.
/// Aborts on error (benchmark sources are known-good).
ir::CoreProgram lowerBenchmark(const BenchmarkProgram &B, int64_t Size,
                               const lowering::LowerOptions &Opts = {});

} // namespace spire::benchmarks

#endif // SPIRE_BENCHMARKS_BENCHMARKS_H

#include "benchmarks/Harness.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace spire::benchmarks {

driver::CompilationResult runPipeline(const BenchmarkProgram &B,
                                      int64_t Size,
                                      driver::PipelineOptions Base) {
  Base.Entry = B.Entry;
  Base.Size = Size;
  driver::CompilationPipeline Pipeline(std::move(Base));
  return Pipeline.run(B.Source);
}

driver::CompilationResult runPipelineOrDie(const BenchmarkProgram &B,
                                           int64_t Size,
                                           driver::PipelineOptions Base) {
  driver::CompilationResult R = runPipeline(B, Size, std::move(Base));
  if (!R.succeeded()) {
    std::fprintf(stderr, "benchmark '%s' failed at %s:\n%s\n",
                 B.Name.c_str(), driver::stageName(*R.Failed),
                 R.Diags.str().c_str());
    std::abort();
  }
  return R;
}

std::string formatStageTimings(const driver::CompilationResult &R) {
  std::string Out;
  char Buf[64];
  for (const driver::StageTiming &T : R.Stages) {
    std::snprintf(Buf, sizeof(Buf), "%s%s %.3fs", Out.empty() ? "" : "  ",
                  driver::stageName(T.Which), T.Seconds);
    Out += Buf;
  }
  return Out;
}

int64_t measureT(const BenchmarkProgram &B, int64_t Depth,
                 const opt::SpireOptions &Spire, CircuitOptimizerKind Kind) {
  driver::PipelineOptions Opts;
  Opts.Spire = Spire;
  Opts.AnalyzeUnoptimized = false;
  if (Kind == CircuitOptimizerKind::None) {
    // The cost model equals the compiled count exactly (Theorem 5.2) and
    // is much faster, matching how a developer would use it.
    driver::CompilationResult R = runPipelineOrDie(B, Depth, std::move(Opts));
    return R.OptimizedCost->T;
  }
  Opts.AnalyzeCost = false;
  Opts.BuildCircuit = true;
  Opts.CircuitOpt = Kind;
  driver::CompilationResult R = runPipelineOrDie(B, Depth, std::move(Opts));
  return circuit::countGates(*R.finalCircuit()).TComplexity;
}

Timing timeRuns(const std::function<void()> &Fn, unsigned Runs) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    Samples.push_back(std::chrono::duration<double>(End - Start).count());
  }
  Timing T;
  for (double S : Samples)
    T.MeanSeconds += S;
  T.MeanSeconds /= Samples.size();
  if (Samples.size() > 1) {
    double Var = 0;
    for (double S : Samples)
      Var += (S - T.MeanSeconds) * (S - T.MeanSeconds);
    Var /= (Samples.size() - 1);
    T.StdErrSeconds = std::sqrt(Var / Samples.size());
  }
  return T;
}

std::string formatTiming(const Timing &T) {
  char Buf[64];
  if (T.StdErrSeconds > 0.0005)
    std::snprintf(Buf, sizeof(Buf), "%.3f +/- %.3f s", T.MeanSeconds,
                  T.StdErrSeconds);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f s", T.MeanSeconds);
  return Buf;
}

std::string percentReduction(int64_t Before, int64_t After) {
  if (Before == 0)
    return "0.0%";
  double Pct = 100.0 * (Before - After) / static_cast<double>(Before);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Pct);
  return Buf;
}

int Series::stableDegree() const {
  int Best = degree();
  for (size_t Start = 0; Values.size() - Start >= 5; ++Start) {
    std::vector<int64_t> Tail(Values.begin() + Start, Values.end());
    int64_t StartX = Depths[Start];
    int D = support::fittedDegree(StartX, Tail);
    if (D <= static_cast<int>(Tail.size()) - 3)
      Best = std::min(Best, D);
  }
  return Best;
}

} // namespace spire::benchmarks

#include "benchmarks/Harness.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace spire::benchmarks {

const char *optimizerName(CircuitOptimizerKind Kind) {
  switch (Kind) {
  case CircuitOptimizerKind::None:
    return "none";
  case CircuitOptimizerKind::Peephole:
    return "Peephole (Qiskit/Pytket-style)";
  case CircuitOptimizerKind::CliffordTCancel:
    return "CliffordT-cancel (Feynman -toCliffordT-style)";
  case CircuitOptimizerKind::RotationMerging:
    return "Rotation-merging (VOQC/Pytket-ZX-style)";
  case CircuitOptimizerKind::ToffoliCancel:
    return "Toffoli-cancel (Feynman -mctExpand-style)";
  case CircuitOptimizerKind::ExhaustiveCancel:
    return "Exhaustive-cancel (QuiZX-style)";
  }
  return "?";
}

circuit::Circuit applyCircuitOptimizer(const circuit::Circuit &MCXCircuit,
                                       CircuitOptimizerKind Kind) {
  using circuit::Circuit;
  switch (Kind) {
  case CircuitOptimizerKind::None:
    return decompose::toCliffordT(MCXCircuit);

  case CircuitOptimizerKind::Peephole: {
    // Decompose first, then a small-window inverse-pair peephole.
    Circuit CT = decompose::toCliffordT(MCXCircuit);
    return qopt::cancelAdjacentGates(CT, qopt::CancelOptions::peephole());
  }

  case CircuitOptimizerKind::CliffordTCancel: {
    // Decompose first, then standard cancellation plus rotation merging
    // over the Clifford+T gates — the -toCliffordT pipeline shape.
    Circuit CT = decompose::toCliffordT(MCXCircuit);
    Circuit Cancelled =
        qopt::cancelAdjacentGates(CT, qopt::CancelOptions::standard());
    return qopt::phaseFold(Cancelled);
  }

  case CircuitOptimizerKind::RotationMerging: {
    Circuit CT = decompose::toCliffordT(MCXCircuit);
    return qopt::phaseFold(CT);
  }

  case CircuitOptimizerKind::ToffoliCancel: {
    // Simplify in terms of Toffoli gates *before* translating to
    // Clifford+T (Section 8.3: the -mctExpand configuration).
    Circuit Toff = decompose::toToffoli(MCXCircuit);
    Circuit Cancelled =
        qopt::cancelAdjacentGates(Toff, qopt::CancelOptions::standard());
    return decompose::toCliffordT(Cancelled);
  }

  case CircuitOptimizerKind::ExhaustiveCancel: {
    // Unbounded-lookahead fixpoint cancellation at the Toffoli level,
    // then decomposition and rotation merging: stronger and much slower,
    // like QuiZX's global-structure discovery.
    Circuit Toff = decompose::toToffoli(MCXCircuit);
    Circuit Cancelled =
        qopt::cancelAdjacentGates(Toff, qopt::CancelOptions::exhaustive());
    Circuit CT = decompose::toCliffordT(Cancelled);
    Circuit Folded = qopt::phaseFold(CT);
    return qopt::cancelAdjacentGates(Folded,
                                     qopt::CancelOptions::exhaustive());
  }
  }
  return decompose::toCliffordT(MCXCircuit);
}

int64_t measureT(const BenchmarkProgram &B, int64_t Depth,
                 const opt::SpireOptions &Spire, CircuitOptimizerKind Kind) {
  circuit::TargetConfig Config;
  ir::CoreProgram P = lowerBenchmark(B, Depth);
  ir::CoreProgram O = opt::optimizeProgram(P, Spire);
  if (Kind == CircuitOptimizerKind::None) {
    // The cost model equals the compiled count exactly (Theorem 5.2) and
    // is much faster, matching how a developer would use it.
    return costmodel::analyzeProgram(O, Config).T;
  }
  circuit::CompileResult R = circuit::compileToCircuit(O, Config);
  circuit::Circuit Out = applyCircuitOptimizer(R.Circ, Kind);
  return circuit::countGates(Out).TComplexity;
}

Timing timeRuns(const std::function<void()> &Fn, unsigned Runs) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    Samples.push_back(std::chrono::duration<double>(End - Start).count());
  }
  Timing T;
  for (double S : Samples)
    T.MeanSeconds += S;
  T.MeanSeconds /= Samples.size();
  if (Samples.size() > 1) {
    double Var = 0;
    for (double S : Samples)
      Var += (S - T.MeanSeconds) * (S - T.MeanSeconds);
    Var /= (Samples.size() - 1);
    T.StdErrSeconds = std::sqrt(Var / Samples.size());
  }
  return T;
}

std::string formatTiming(const Timing &T) {
  char Buf[64];
  if (T.StdErrSeconds > 0.0005)
    std::snprintf(Buf, sizeof(Buf), "%.3f +/- %.3f s", T.MeanSeconds,
                  T.StdErrSeconds);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f s", T.MeanSeconds);
  return Buf;
}

std::string percentReduction(int64_t Before, int64_t After) {
  if (Before == 0)
    return "0.0%";
  double Pct = 100.0 * (Before - After) / static_cast<double>(Before);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Pct);
  return Buf;
}

int Series::stableDegree() const {
  int Best = degree();
  for (size_t Start = 0; Values.size() - Start >= 5; ++Start) {
    std::vector<int64_t> Tail(Values.begin() + Start, Values.end());
    int64_t StartX = Depths[Start];
    int D = support::fittedDegree(StartX, Tail);
    if (D <= static_cast<int>(Tail.size()) - 3)
      Best = std::min(Best, D);
  }
  return Best;
}

} // namespace spire::benchmarks

//===----------------------------------------------------------------------===//
///
/// \file
/// Circuit-optimizer baselines standing in for the third-party optimizers
/// of the paper's Section 8.3 (see DESIGN.md §2 for the mapping):
///
///  * cancelAdjacentGates — commutation-aware cancellation of adjacent
///    inverse gate pairs. Run at the MCX/Toffoli level it captures the
///    effect of conditional flattening (Feynman -mctExpand; paper §8.5:
///    "Feynman -mctExpand first cancels Toffoli gates in the circuit
///    before translating them to Clifford+T gates"); run at the
///    Clifford+T level it is the Qiskit/Pytket-style peephole that cannot
///    cancel the asymmetric decomposition of Fig. 17.
///  * phaseFold — phase-polynomial rotation merging (Nam et al. 2018),
///    the mechanism behind VOQC / Feynman -toCliffordT's intermediate
///    results: merges T rotations applied to equal wire parities across
///    unbounded gate ranges, cut at Hadamard gates.
///  * searchRewrite — a bounded-window, wall-clock-limited rewrite search
///    standing in for the Quartz/QUESO superoptimizers (Appendix G):
///    partial improvement that plateaus, bounded only by its timeout.
///
/// Every pass is semantics-preserving; the test suite verifies this by
/// simulation on random basis states.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_QOPT_PASSES_H
#define SPIRE_QOPT_PASSES_H

#include "circuit/Gate.h"

#include <cstdint>

namespace spire::qopt {

struct CancelOptions {
  /// How far past commuting gates to search for a cancelling partner.
  /// Small values model peephole optimizers; ~0 lookahead beyond direct
  /// adjacency models the weakest ones. Use Unbounded for the expensive
  /// exhaustive configuration (the QuiZX stand-in).
  unsigned MaxLookahead = 128;
  /// Fixpoint iteration bound.
  unsigned MaxRounds = 64;

  static CancelOptions peephole() { return {8, 8}; }
  static CancelOptions standard() { return {128, 64}; }
  static CancelOptions exhaustive() { return {~0u, 1024}; }
};

/// Cancels pairs of identical self-inverse gates (X-kind, H, Z) and
/// adjacent inverse phase pairs (T/Tdg, S/Sdg) separated only by
/// commuting gates. Works at any circuit level.
circuit::Circuit cancelAdjacentGates(const circuit::Circuit &C,
                                     const CancelOptions &Options);

/// Rotation merging over wire parities (phase folding). Expects a
/// Clifford+T-level circuit; multiply-controlled X gates and CH are
/// treated as parity barriers for their targets.
circuit::Circuit phaseFold(const circuit::Circuit &C);

/// Search-based optimization under a wall-clock budget: repeated
/// small-window cancellation, phase merging, and randomized commuting
/// reorderings, keeping the best circuit found. Deterministic for a
/// fixed seed up to timer granularity.
struct SearchOptions {
  double TimeoutSeconds = 1.0;
  unsigned WindowSize = 16;
  uint64_t Seed = 1;
};
circuit::Circuit searchRewrite(const circuit::Circuit &C,
                               const SearchOptions &Options);

/// True when gates A and B commute under the conservative syntactic rules
/// used by the passes (exposed for testing).
bool gatesCommute(const circuit::Gate &A, const circuit::Gate &B);

} // namespace spire::qopt

#endif // SPIRE_QOPT_PASSES_H

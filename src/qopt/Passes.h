//===----------------------------------------------------------------------===//
///
/// \file
/// Circuit-optimizer baselines standing in for the third-party optimizers
/// of the paper's Section 8.3 (see DESIGN.md §2 for the mapping):
///
///  * cancelAdjacentGates — commutation-aware cancellation of adjacent
///    inverse gate pairs. Run at the MCX/Toffoli level it captures the
///    effect of conditional flattening (Feynman -mctExpand; paper §8.5:
///    "Feynman -mctExpand first cancels Toffoli gates in the circuit
///    before translating them to Clifford+T gates"); run at the
///    Clifford+T level it is the Qiskit/Pytket-style peephole that cannot
///    cancel the asymmetric decomposition of Fig. 17.
///  * phaseFold — phase-polynomial rotation merging (Nam et al. 2018),
///    the mechanism behind VOQC / Feynman -toCliffordT's intermediate
///    results: merges T rotations applied to equal wire parities across
///    unbounded gate ranges, cut at Hadamard gates.
///  * searchRewrite — a bounded-window, wall-clock-limited rewrite search
///    standing in for the Quartz/QUESO superoptimizers (Appendix G):
///    partial improvement that plateaus, bounded only by its timeout (or
///    by its stale-round early exit once it reaches a fixpoint).
///
/// Since PR 4 the hot passes run over a circuit::Netlist (per-wire
/// doubly-linked gate sequences): cancellation is a worklist-driven
/// fixpoint with no per-round circuit copies, and phase folding keys its
/// parity table on an incrementally maintained hash. The pre-netlist
/// implementations are kept as *Reference entry points so differential
/// tests can pit the two against each other.
///
/// Every pass is semantics-preserving; the test suite verifies this by
/// simulation on random basis states.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_QOPT_PASSES_H
#define SPIRE_QOPT_PASSES_H

#include "circuit/Gate.h"
#include "obs/Metrics.h"

#include <cstdint>

namespace spire::qopt {

/// Work counters of a pass run, accumulated across passes when one
/// OptStats is threaded through a whole optimizer configuration. The
/// driver surfaces these next to the qopt stage's wall-clock timing and
/// publishes them as `qopt.*` registry metrics.
///
/// The fields are relaxed atomics (obs::AtomicCounter) so one OptStats
/// can be shared by sharded pass runs on the coming thread pool (ROADMAP
/// item 4) without a merge step; the hot loops accumulate plain locals
/// and flush once per pass, so single-threaded cost is unchanged.
struct OptStats {
  obs::AtomicCounter CancelledPairs;   ///< Inverse pairs removed by cancellation.
  obs::AtomicCounter CancelPasses;     ///< Full fixpoint passes (last finds nothing).
  obs::AtomicCounter WorklistVisits;   ///< Gates popped off the cancel worklist.
  obs::AtomicCounter MergedRotations;  ///< Phase gates absorbed by folding.
  obs::AtomicCounter EmittedRotations; ///< Phase gates re-emitted after folding.
};

struct CancelOptions {
  /// How far past commuting gates to search for a cancelling partner.
  /// Small values model peephole optimizers; ~0 lookahead beyond direct
  /// adjacency models the weakest ones. Use Unbounded for the expensive
  /// exhaustive configuration (the QuiZX stand-in).
  unsigned MaxLookahead = 128;
  static constexpr unsigned Unbounded = ~0u;
  /// Safety cap on fixpoint iterations: full copy-and-compact rounds in
  /// the reference implementation, full worklist re-seed passes in the
  /// netlist one. The worklist's neighbor re-enqueue cascades removals
  /// within a pass, so it typically reaches a true fixpoint in two
  /// passes (the second finding nothing) and the cap only bounds
  /// adversarial inputs.
  unsigned MaxRounds = 64;

  static CancelOptions peephole() { return {8, 8}; }
  static CancelOptions standard() { return {128, 64}; }
  static CancelOptions exhaustive() { return {Unbounded, 1024}; }
};

/// Cancels pairs of identical self-inverse gates (X-kind, H, Z) and
/// adjacent inverse phase pairs (T/Tdg, S/Sdg) separated only by
/// commuting gates. Works at any circuit level.
///
/// Runs as a worklist fixpoint over a wire-linked netlist: a cancelled
/// pair is unlinked in O(1) and its wire-neighbors re-enqueued, so there
/// are no per-round circuit copies and the cost is O(visited gates x
/// lookahead) rather than O(rounds x gates x lookahead).
circuit::Circuit cancelAdjacentGates(const circuit::Circuit &C,
                                     const CancelOptions &Options,
                                     OptStats *Stats = nullptr);

/// Rotation merging over wire parities (phase folding). Expects a
/// Clifford+T-level circuit; multiply-controlled X gates and CH are
/// treated as parity barriers for their targets. The parity table is
/// hashed (incrementally maintained key) and parity supports are capped
/// (an oversized parity degrades to an opaque fresh variable — the same
/// conservative give-up as an H barrier, so merging is lost but soundness
/// is not), making the pass linear-expected in the gate count.
circuit::Circuit phaseFold(const circuit::Circuit &C,
                           OptStats *Stats = nullptr);

/// The pre-netlist implementations (copy-and-compact rounds; std::map
/// parity table), kept verbatim as differential-testing oracles for the
/// passes above and as the measured "before" of bench_qopt_scale.
circuit::Circuit cancelAdjacentGatesReference(const circuit::Circuit &C,
                                              const CancelOptions &Options);
circuit::Circuit phaseFoldReference(const circuit::Circuit &C);

/// Search-based optimization under a wall-clock budget: repeated
/// small-window cancellation, phase merging, and randomized commuting
/// reorderings, keeping the best circuit found. Exits before the
/// deadline after MaxStaleRounds consecutive rounds with no cancellation
/// and no T-count improvement (a fixpoint the random transpositions are
/// not escaping); until then, and with MaxStaleRounds = 0, it runs the
/// full budget. Deterministic for a fixed seed whenever it exits via the
/// stale-round check rather than the wall clock.
struct SearchOptions {
  double TimeoutSeconds = 1.0;
  unsigned WindowSize = 16;
  uint64_t Seed = 1;
  /// Consecutive no-improvement rounds tolerated before exiting early;
  /// 0 keeps the legacy burn-the-whole-budget behavior.
  unsigned MaxStaleRounds = 3;
};
circuit::Circuit searchRewrite(const circuit::Circuit &C,
                               const SearchOptions &Options);

/// True when gates A and B commute under the conservative syntactic rules
/// used by the passes (exposed for testing). Gates touching disjoint
/// qubit sets always commute under these rules — the property that lets
/// the netlist passes skip them entirely.
bool gatesCommute(const circuit::Gate &A, const circuit::Gate &B);

} // namespace spire::qopt

#endif // SPIRE_QOPT_PASSES_H

#include "qopt/Passes.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <random>
#include <vector>

using namespace spire::circuit;

namespace spire::qopt {

//===----------------------------------------------------------------------===//
// Commutation
//===----------------------------------------------------------------------===//

static bool controlsContain(const Gate &G, Qubit Q) {
  return std::binary_search(G.Controls.begin(), G.Controls.end(), Q);
}

bool gatesCommute(const Gate &A, const Gate &B) {
  // Diagonal gates commute with each other unconditionally.
  if (A.isPhase() && B.isPhase())
    return true;
  if (A.isPhase())
    return A.Target != B.Target || B.isPhase();
  if (B.isPhase())
    return B.Target != A.Target;

  if (A.Kind == GateKind::X && B.Kind == GateKind::X) {
    // X gates commute unless the target of one is a control of the other
    // (equal targets and shared controls are fine).
    return !controlsContain(B, A.Target) && !controlsContain(A, B.Target);
  }

  // At least one Hadamard: require that neither gate's target is touched
  // by the other (shared controls remain fine).
  if (A.Target == B.Target)
    return false;
  return !B.touches(A.Target) && !A.touches(B.Target);
}

//===----------------------------------------------------------------------===//
// Adjacent-inverse cancellation
//===----------------------------------------------------------------------===//

namespace {

/// The inverse kind of a gate, when expressible as a single gate.
GateKind inverseKind(GateKind K) {
  switch (K) {
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  default:
    return K; // X, H, Z are self-inverse.
  }
}

bool isInversePair(const Gate &A, const Gate &B) {
  return B.Kind == inverseKind(A.Kind) && A.Target == B.Target &&
         A.Controls == B.Controls;
}

} // namespace

Circuit cancelAdjacentGates(const Circuit &C, const CancelOptions &Options) {
  std::vector<Gate> Gates = C.Gates;
  std::vector<bool> Removed(Gates.size(), false);

  for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
    bool Changed = false;
    for (size_t I = 0; I != Gates.size(); ++I) {
      if (Removed[I])
        continue;
      unsigned Scanned = 0;
      for (size_t J = I + 1; J != Gates.size(); ++J) {
        if (Removed[J])
          continue;
        if (isInversePair(Gates[I], Gates[J])) {
          Removed[I] = Removed[J] = true;
          Changed = true;
          break;
        }
        if (!gatesCommute(Gates[I], Gates[J]))
          break;
        if (++Scanned >= Options.MaxLookahead)
          break;
      }
    }
    if (!Changed)
      break;
    // Compact so later rounds see newly adjacent pairs.
    std::vector<Gate> Compacted;
    Compacted.reserve(Gates.size());
    for (size_t I = 0; I != Gates.size(); ++I)
      if (!Removed[I])
        Compacted.push_back(std::move(Gates[I]));
    Gates = std::move(Compacted);
    Removed.assign(Gates.size(), false);
  }

  Circuit Out;
  Out.NumQubits = C.NumQubits;
  for (size_t I = 0; I != Gates.size(); ++I)
    if (!Removed[I])
      Out.Gates.push_back(std::move(Gates[I]));
  return Out;
}

//===----------------------------------------------------------------------===//
// Phase folding (rotation merging)
//===----------------------------------------------------------------------===//

namespace {

/// A wire parity: a sorted set of region variables, XOR-composed, plus a
/// complement bit.
struct Parity {
  std::vector<uint32_t> Vars; // Sorted, unique.
  bool Complemented = false;

  void xorVar(uint32_t V) {
    auto It = std::lower_bound(Vars.begin(), Vars.end(), V);
    if (It != Vars.end() && *It == V)
      Vars.erase(It);
    else
      Vars.insert(It, V);
  }
  void xorWith(const Parity &O) {
    std::vector<uint32_t> Merged;
    std::set_symmetric_difference(Vars.begin(), Vars.end(), O.Vars.begin(),
                                  O.Vars.end(), std::back_inserter(Merged));
    Vars = std::move(Merged);
    Complemented ^= O.Complemented;
  }
};

/// Phase contribution of a gate kind in units of pi/4, mod 8.
int phaseUnits(GateKind K) {
  switch (K) {
  case GateKind::T:
    return 1;
  case GateKind::S:
    return 2;
  case GateKind::Z:
    return 4;
  case GateKind::Sdg:
    return 6;
  case GateKind::Tdg:
    return 7;
  default:
    return 0;
  }
}

/// Emits phase gates realizing `Units` (mod 8) of pi/4 onto a wire.
void emitPhase(int Units, Qubit Target, std::vector<Gate> &Out) {
  Units = ((Units % 8) + 8) % 8;
  if (Units >= 4) {
    Out.push_back(Gate(GateKind::Z, Target));
    Units -= 4;
  }
  if (Units >= 2) {
    Out.push_back(Gate(GateKind::S, Target));
    Units -= 2;
  }
  if (Units == 1)
    Out.push_back(Gate(GateKind::T, Target));
}

} // namespace

Circuit phaseFold(const Circuit &C) {
  std::vector<Parity> Wire(C.NumQubits);
  uint32_t NextVar = 0;
  for (unsigned Q = 0; Q != C.NumQubits; ++Q)
    Wire[Q].Vars = {NextVar++};

  struct Accum {
    int Units = 0;
    size_t FirstGate = 0; ///< Index in C.Gates of the first contribution.
    Qubit Target = 0;
    bool FirstComplemented = false; ///< Wire complement at the first site.
  };
  std::map<std::vector<uint32_t>, Accum> Phases;
  // Non-phase gates survive; phase gates are replaced by merged emissions.
  std::vector<bool> IsPhaseGate(C.Gates.size(), false);

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    const Gate &G = C.Gates[I];
    if (G.isPhase() && G.Controls.empty()) {
      IsPhaseGate[I] = true;
      Parity &P = Wire[G.Target];
      int Units = phaseUnits(G.Kind);
      // A phase on a complemented parity 1^p contributes a global phase
      // plus the negated rotation on p.
      if (P.Complemented)
        Units = -Units;
      auto [It, Fresh] = Phases.try_emplace(P.Vars);
      if (Fresh) {
        It->second.FirstGate = I;
        It->second.Target = G.Target;
        It->second.FirstComplemented = P.Complemented;
      }
      It->second.Units = (It->second.Units + Units) % 8;
      continue;
    }
    switch (G.Kind) {
    case GateKind::X:
      if (G.Controls.empty()) {
        Wire[G.Target].Complemented ^= true;
      } else if (G.Controls.size() == 1) {
        Wire[G.Target].xorWith(Wire[G.Controls[0]]);
      } else {
        // Toffoli or larger: non-linear; fresh variable for the target.
        Wire[G.Target].Vars = {NextVar++};
        Wire[G.Target].Complemented = false;
      }
      break;
    case GateKind::H:
      Wire[G.Target].Vars = {NextVar++};
      Wire[G.Target].Complemented = false;
      break;
    default:
      // Controlled phase gates (not produced by this compiler): barrier.
      Wire[G.Target].Vars = {NextVar++};
      Wire[G.Target].Complemented = false;
      break;
    }
  }

  // Re-emit: non-phase gates as-is; merged phases at their first site.
  std::map<size_t, const Accum *> EmitAt;
  for (const auto &[Vars, A] : Phases)
    if (A.Units % 8 != 0)
      EmitAt[A.FirstGate] = &A;

  Circuit Out;
  Out.NumQubits = C.NumQubits;
  for (size_t I = 0; I != C.Gates.size(); ++I) {
    auto It = EmitAt.find(I);
    if (It != EmitAt.end()) {
      // The emission site's wire holds p ^ c where c is the complement at
      // that point; realizing k units of phase on p requires -k when the
      // wire was complemented (up to global phase).
      const Accum &A = *It->second;
      emitPhase(A.FirstComplemented ? -A.Units : A.Units, A.Target,
                Out.Gates);
    }
    if (!IsPhaseGate[I])
      Out.Gates.push_back(C.Gates[I]);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Search-based rewriting (Quartz / QUESO stand-in)
//===----------------------------------------------------------------------===//

Circuit searchRewrite(const Circuit &C, const SearchOptions &Options) {
  using Clock = std::chrono::steady_clock;
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         Options.TimeoutSeconds));
  std::mt19937_64 Rng(Options.Seed);

  Circuit Best = C;
  int64_t BestT = countGates(Best).TComplexity;
  Circuit Current = C;

  CancelOptions Window;
  Window.MaxLookahead = Options.WindowSize;
  Window.MaxRounds = 4;

  while (Clock::now() < Deadline) {
    // Local simplification.
    Current = cancelAdjacentGates(Current, Window);
    int64_t T = countGates(Current).TComplexity;
    if (T < BestT) {
      BestT = T;
      Best = Current;
    }
    // Randomized commuting transposition to escape local minima.
    if (Current.Gates.size() >= 2) {
      for (unsigned K = 0; K != 32 && Clock::now() < Deadline; ++K) {
        size_t I = Rng() % (Current.Gates.size() - 1);
        if (gatesCommute(Current.Gates[I], Current.Gates[I + 1]))
          std::swap(Current.Gates[I], Current.Gates[I + 1]);
      }
    }
    if (Current.Gates.empty())
      break;
  }
  return Best;
}

} // namespace spire::qopt

#include "qopt/Passes.h"

#include "circuit/Netlist.h"
#include "support/Governor.h"
#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

using namespace spire::circuit;

namespace spire::qopt {

//===----------------------------------------------------------------------===//
// Commutation
//===----------------------------------------------------------------------===//

static bool controlsContain(const Gate &G, Qubit Q) {
  return std::binary_search(G.Controls.begin(), G.Controls.end(), Q);
}

bool gatesCommute(const Gate &A, const Gate &B) {
  // Diagonal gates commute with each other unconditionally.
  if (A.isPhase() && B.isPhase())
    return true;
  if (A.isPhase())
    return A.Target != B.Target || B.isPhase();
  if (B.isPhase())
    return B.Target != A.Target;

  if (A.Kind == GateKind::X && B.Kind == GateKind::X) {
    // X gates commute unless the target of one is a control of the other
    // (equal targets and shared controls are fine).
    return !controlsContain(B, A.Target) && !controlsContain(A, B.Target);
  }

  // At least one Hadamard: require that neither gate's target is touched
  // by the other (shared controls remain fine).
  if (A.Target == B.Target)
    return false;
  return !B.touches(A.Target) && !A.touches(B.Target);
}

//===----------------------------------------------------------------------===//
// Adjacent-inverse cancellation
//===----------------------------------------------------------------------===//

namespace {

/// The inverse kind of a gate, when expressible as a single gate.
GateKind inverseKind(GateKind K) {
  switch (K) {
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  default:
    return K; // X, H, Z are self-inverse.
  }
}

bool isInversePair(const Gate &A, const Gate &B) {
  return B.Kind == inverseKind(A.Kind) && A.Target == B.Target &&
         A.Controls == B.Controls;
}

/// The worklist engine behind cancelAdjacentGates: scans forward from
/// each enqueued gate for an inverse partner past commuting gates,
/// unlinks found pairs in O(1), and re-enqueues the pair's wire-neighbors
/// (the only gates whose local picture changed). An outer driver re-seeds
/// until a whole pass cancels nothing, so the result is a true fixpoint
/// with no per-round circuit copies.
class CancelWorklist {
public:
  CancelWorklist(Netlist &N, const CancelOptions &Options)
      : N(N), Options(Options),
        Unbounded(Options.MaxLookahead == CancelOptions::Unbounded),
        Queued(N.size(), 0) {
    Work.reserve(N.size());
  }

  /// Runs to fixpoint (or the MaxRounds safety cap on full re-seed
  /// passes — typical circuits need two, the last finding nothing);
  /// returns the number of cancelled pairs.
  int64_t run(OptStats *Stats) {
    int64_t TotalPairs = 0;
    bool Changed = true;
    bool Tripped = false;
    for (unsigned Pass = 0; Changed && !Tripped && Pass != Options.MaxRounds;
         ++Pass) {
      Changed = false;
      // Seed in reverse so the LIFO pops gates in circuit order.
      for (Netlist::NodeId Id = static_cast<Netlist::NodeId>(N.size());
           Id-- > 0;)
        enqueue(Id);
      while (!Work.empty()) {
        // Governor checkpoint: bail out of the fixpoint early on a
        // tripped budget. The netlist stays sound (cancellation only
        // ever removes complete inverse pairs), so the partial result
        // is a valid circuit; the stage wrapper reports the limit.
        if (!support::Governor::poll()) {
          Tripped = true;
          break;
        }
        Netlist::NodeId A = Work.back();
        Work.pop_back();
        Queued[A] = 0;
        if (!N.live(A))
          continue;
        ++Visits;
        if (tryCancel(A)) {
          Changed = true;
          ++TotalPairs;
        }
      }
      if (Stats)
        ++Stats->CancelPasses;
    }
    if (Stats) {
      Stats->CancelledPairs += TotalPairs;
      Stats->WorklistVisits += Visits;
    }
    return TotalPairs;
  }

private:
  void enqueue(Netlist::NodeId Id) {
    if (Id != Netlist::Nil && N.live(Id) && !Queued[Id]) {
      Queued[Id] = 1;
      Work.push_back(Id);
    }
  }

  /// Bounded scan: walk the global sequence exactly like the reference
  /// implementation walked the gate vector — every scanned gate, sharing
  /// wires or not, consumes lookahead budget (this is what makes the
  /// peephole configurations genuinely weaker).
  Netlist::NodeId findPartnerBounded(Netlist::NodeId A) {
    const Gate &GA = N.gate(A);
    unsigned Scanned = 0;
    for (Netlist::NodeId B = N.next(A); B != Netlist::Nil; B = N.next(B)) {
      const Gate &GB = N.gate(B);
      if (isInversePair(GA, GB))
        return B;
      if (!gatesCommute(GA, GB))
        return Netlist::Nil;
      if (++Scanned >= Options.MaxLookahead)
        return Netlist::Nil;
    }
    return Netlist::Nil;
  }

  /// Unbounded scan: under the conservative commutation rules, gates on
  /// disjoint qubits always commute and can never be partners, so only
  /// gates sharing a wire with A matter. Walk them in circuit order by
  /// advancing one cursor per wire of A (node ids are positions). Stop
  /// at the first non-commuting gate, or at a gate identical to A — any
  /// partner beyond it pairs with that closer copy instead, and A gets
  /// re-enqueued when it does.
  Netlist::NodeId findPartnerUnbounded(Netlist::NodeId A) {
    const Gate &GA = N.gate(A);
    unsigned K = N.numWires(A);
    Netlist::NodeId InlineCur[4];
    if (K > Cursors.size() && K > 4)
      Cursors.resize(K);
    Netlist::NodeId *Cur = K <= 4 ? InlineCur : Cursors.data();
    for (unsigned W = 0; W != K; ++W)
      Cur[W] = N.wireNext(A, W);
    for (;;) {
      Netlist::NodeId B = Netlist::Nil;
      for (unsigned W = 0; W != K; ++W)
        if (Cur[W] != Netlist::Nil && (B == Netlist::Nil || Cur[W] < B))
          B = Cur[W];
      if (B == Netlist::Nil)
        return Netlist::Nil;
      const Gate &GB = N.gate(B);
      if (isInversePair(GA, GB))
        return B;
      if (!gatesCommute(GA, GB))
        return Netlist::Nil;
      if (GB == GA)
        return Netlist::Nil;
      for (unsigned W = 0; W != K; ++W)
        if (Cur[W] == B)
          Cur[W] = N.nextOnWire(B, N.wireQubit(A, W));
    }
  }

  bool tryCancel(Netlist::NodeId A) {
    Netlist::NodeId B =
        Unbounded ? findPartnerUnbounded(A) : findPartnerBounded(A);
    if (B == Netlist::Nil)
      return false;
    // The gates whose local picture changes are the pair's wire-neighbors
    // plus its global-sequence neighbors: the former see new wire
    // adjacencies, the latter gain lookahead budget (a nested pair on
    // *disjoint* wires becomes reachable exactly for the gates scanning
    // across the removed pair, and the nearest such gates are the global
    // neighbors — re-enqueueing them lets disjoint nests cascade in one
    // pass instead of needing one re-seed pass per peeled layer).
    // Collect before the unlink rewires anything.
    Neighbors.clear();
    for (Netlist::NodeId Id : {A, B}) {
      Neighbors.push_back(N.prev(Id));
      Neighbors.push_back(N.next(Id));
      unsigned K = N.numWires(Id);
      for (unsigned W = 0; W != K; ++W) {
        Neighbors.push_back(N.wirePrev(Id, W));
        Neighbors.push_back(N.wireNext(Id, W));
      }
    }
    N.unlink(A);
    N.unlink(B);
    for (Netlist::NodeId Id : Neighbors)
      enqueue(Id);
    return true;
  }

  Netlist &N;
  const CancelOptions &Options;
  bool Unbounded;
  std::vector<char> Queued;
  std::vector<Netlist::NodeId> Work;
  std::vector<Netlist::NodeId> Neighbors; ///< Reused across cancellations.
  std::vector<Netlist::NodeId> Cursors;   ///< Reused for MCX-wide scans.
  int64_t Visits = 0;
};

} // namespace

Circuit cancelAdjacentGates(const Circuit &C, const CancelOptions &Options,
                            OptStats *Stats) {
  Netlist N(C);
  CancelWorklist(N, Options).run(Stats);
  return N.toCircuit();
}

Circuit cancelAdjacentGatesReference(const Circuit &C,
                                     const CancelOptions &Options) {
  std::vector<Gate> Gates = C.Gates;
  std::vector<bool> Removed(Gates.size(), false);

  for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
    bool Changed = false;
    for (size_t I = 0; I != Gates.size(); ++I) {
      if (Removed[I])
        continue;
      unsigned Scanned = 0;
      for (size_t J = I + 1; J != Gates.size(); ++J) {
        if (Removed[J])
          continue;
        if (isInversePair(Gates[I], Gates[J])) {
          Removed[I] = Removed[J] = true;
          Changed = true;
          break;
        }
        if (!gatesCommute(Gates[I], Gates[J]))
          break;
        if (++Scanned >= Options.MaxLookahead)
          break;
      }
    }
    if (!Changed)
      break;
    // Compact so later rounds see newly adjacent pairs.
    std::vector<Gate> Compacted;
    Compacted.reserve(Gates.size());
    for (size_t I = 0; I != Gates.size(); ++I)
      if (!Removed[I])
        Compacted.push_back(std::move(Gates[I]));
    Gates = std::move(Compacted);
    Removed.assign(Gates.size(), false);
  }

  Circuit Out;
  Out.NumQubits = C.NumQubits;
  for (size_t I = 0; I != Gates.size(); ++I)
    if (!Removed[I])
      Out.Gates.push_back(std::move(Gates[I]));
  return Out;
}

//===----------------------------------------------------------------------===//
// Phase folding (rotation merging)
//===----------------------------------------------------------------------===//

namespace {

using support::mix64; // The per-variable mixer behind the parity hash.

/// A wire parity: a sorted set of region variables, XOR-composed, plus a
/// complement bit. `Hash` is the XOR of mix64 over the variables —
/// order-independent, so every update is O(1) on top of the set edit,
/// and it keys the hashed phase table below (the complement bit is
/// deliberately outside the key, exactly like the reference pass).
struct Parity {
  std::vector<uint32_t> Vars; // Sorted, unique.
  uint64_t Hash = 0;
  bool Complemented = false;

  void reset(uint32_t V) {
    Vars.assign(1, V);
    Hash = mix64(V);
    Complemented = false;
  }
  void xorVar(uint32_t V) {
    auto It = std::lower_bound(Vars.begin(), Vars.end(), V);
    if (It != Vars.end() && *It == V)
      Vars.erase(It);
    else
      Vars.insert(It, V);
    Hash ^= mix64(V);
  }
  void xorWith(const Parity &O) {
    std::vector<uint32_t> Merged;
    Merged.reserve(Vars.size() + O.Vars.size());
    std::set_symmetric_difference(Vars.begin(), Vars.end(), O.Vars.begin(),
                                  O.Vars.end(), std::back_inserter(Merged));
    Vars = std::move(Merged);
    Hash ^= O.Hash;
    Complemented ^= O.Complemented;
  }
};

/// Phase contribution of a gate kind in units of pi/4, mod 8.
int phaseUnits(GateKind K) {
  switch (K) {
  case GateKind::T:
    return 1;
  case GateKind::S:
    return 2;
  case GateKind::Z:
    return 4;
  case GateKind::Sdg:
    return 6;
  case GateKind::Tdg:
    return 7;
  default:
    return 0;
  }
}

/// Emits phase gates realizing `Units` (mod 8) of pi/4 onto a wire.
void emitPhase(int Units, Qubit Target, std::vector<Gate> &Out) {
  Units = ((Units % 8) + 8) % 8;
  if (Units >= 4) {
    Out.push_back(Gate(GateKind::Z, Target));
    Units -= 4;
  }
  if (Units >= 2) {
    Out.push_back(Gate(GateKind::S, Target));
    Units -= 2;
  }
  if (Units == 1)
    Out.push_back(Gate(GateKind::T, Target));
}

/// One merged rotation accumulator, anchored at its first contribution.
struct PhaseAccum {
  std::vector<uint32_t> Vars; ///< The parity this accumulates over.
  int Units = 0;
  size_t FirstGate = 0; ///< Index in C.Gates of the first contribution.
  Qubit Target = 0;
  bool FirstComplemented = false; ///< Wire complement at the first site.
};

} // namespace

Circuit phaseFold(const Circuit &C, OptStats *Stats) {
  std::vector<Parity> Wire(C.NumQubits);
  uint32_t NextVar = 0;
  for (unsigned Q = 0; Q != C.NumQubits; ++Q)
    Wire[Q].reset(NextVar++);

  // Support cap: a parity whose variable set outgrows the register (rare
  // in compiled circuits, constructible with long H-interleaved CNOT
  // chains) is replaced by an opaque fresh variable — semantically the
  // same conservative give-up as an H barrier, so the pass stays sound
  // while every per-gate step stays O(cap). Small circuits (fewer gates
  // than the cap) can never hit it, which keeps the pass gate-for-gate
  // identical to phaseFoldReference on the differential-test sizes.
  const size_t MaxSupport = std::max<size_t>(64, 2 * C.NumQubits);

  // The phase table, keyed by the parity's incremental hash; the rare
  // collision chains through the bucket vector and is resolved by exact
  // Vars comparison, so hashing never changes which rotations merge.
  std::unordered_map<uint64_t, std::vector<PhaseAccum>> Phases;
  Phases.reserve(C.Gates.size() / 4 + 16);
  // Non-phase gates survive; phase gates are replaced by merged emissions.
  std::vector<bool> IsPhaseGate(C.Gates.size(), false);
  int64_t PhaseGatesIn = 0;

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    // Governor checkpoint: folding is a pure rewrite, so on a tripped
    // budget the unmodified input is a sound early answer; the stage
    // wrapper reports the limit and fails the run.
    if (!support::Governor::poll())
      return C;
    const Gate &G = C.Gates[I];
    if (G.isPhase() && G.Controls.empty()) {
      IsPhaseGate[I] = true;
      ++PhaseGatesIn;
      Parity &P = Wire[G.Target];
      int Units = phaseUnits(G.Kind);
      // A phase on a complemented parity 1^p contributes a global phase
      // plus the negated rotation on p.
      if (P.Complemented)
        Units = -Units;
      std::vector<PhaseAccum> &Bucket = Phases[P.Hash];
      PhaseAccum *A = nullptr;
      for (PhaseAccum &Candidate : Bucket)
        if (Candidate.Vars == P.Vars) {
          A = &Candidate;
          break;
        }
      if (!A) {
        Bucket.emplace_back();
        A = &Bucket.back();
        A->Vars = P.Vars;
        A->FirstGate = I;
        A->Target = G.Target;
        A->FirstComplemented = P.Complemented;
      }
      A->Units = (A->Units + Units) % 8;
      continue;
    }
    switch (G.Kind) {
    case GateKind::X:
      if (G.Controls.empty()) {
        Wire[G.Target].Complemented ^= true;
      } else if (G.Controls.size() == 1) {
        Wire[G.Target].xorWith(Wire[G.Controls[0]]);
        if (Wire[G.Target].Vars.size() > MaxSupport)
          Wire[G.Target].reset(NextVar++);
      } else {
        // Toffoli or larger: non-linear; fresh variable for the target.
        Wire[G.Target].reset(NextVar++);
      }
      break;
    case GateKind::H:
      Wire[G.Target].reset(NextVar++);
      break;
    default:
      // Controlled phase gates (not produced by this compiler): barrier.
      Wire[G.Target].reset(NextVar++);
      break;
    }
  }

  // Re-emit: non-phase gates as-is; merged phases at their first site.
  std::unordered_map<size_t, const PhaseAccum *> EmitAt;
  EmitAt.reserve(Phases.size());
  for (const auto &[Hash, Bucket] : Phases)
    for (const PhaseAccum &A : Bucket)
      if (A.Units % 8 != 0)
        EmitAt[A.FirstGate] = &A;

  Circuit Out;
  Out.NumQubits = C.NumQubits;
  Out.Gates.reserve(C.Gates.size());
  int64_t EmittedSites = 0, PhaseGatesOut = 0;
  for (size_t I = 0; I != C.Gates.size(); ++I) {
    auto It = EmitAt.find(I);
    if (It != EmitAt.end()) {
      // The emission site's wire holds p ^ c where c is the complement at
      // that point; realizing k units of phase on p requires -k when the
      // wire was complemented (up to global phase).
      const PhaseAccum &A = *It->second;
      ++EmittedSites;
      size_t Before = Out.Gates.size();
      emitPhase(A.FirstComplemented ? -A.Units : A.Units, A.Target,
                Out.Gates);
      PhaseGatesOut += static_cast<int64_t>(Out.Gates.size() - Before);
    }
    if (!IsPhaseGate[I])
      Out.Gates.push_back(C.Gates[I]);
  }
  if (Stats) {
    // Merged = input phase gates absorbed into another site's rotation.
    // Every emission site had at least one contribution, so this is
    // non-negative even when a site re-expresses its units as several
    // gates (e.g. 7 units = Z + S + T).
    Stats->MergedRotations += PhaseGatesIn - EmittedSites;
    Stats->EmittedRotations += PhaseGatesOut;
  }
  return Out;
}

Circuit phaseFoldReference(const Circuit &C) {
  std::vector<Parity> Wire(C.NumQubits);
  uint32_t NextVar = 0;
  for (unsigned Q = 0; Q != C.NumQubits; ++Q)
    Wire[Q].reset(NextVar++);

  struct Accum {
    int Units = 0;
    size_t FirstGate = 0;
    Qubit Target = 0;
    bool FirstComplemented = false;
  };
  std::map<std::vector<uint32_t>, Accum> Phases;
  std::vector<bool> IsPhaseGate(C.Gates.size(), false);

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    const Gate &G = C.Gates[I];
    if (G.isPhase() && G.Controls.empty()) {
      IsPhaseGate[I] = true;
      Parity &P = Wire[G.Target];
      int Units = phaseUnits(G.Kind);
      if (P.Complemented)
        Units = -Units;
      auto [It, Fresh] = Phases.try_emplace(P.Vars);
      if (Fresh) {
        It->second.FirstGate = I;
        It->second.Target = G.Target;
        It->second.FirstComplemented = P.Complemented;
      }
      It->second.Units = (It->second.Units + Units) % 8;
      continue;
    }
    switch (G.Kind) {
    case GateKind::X:
      if (G.Controls.empty()) {
        Wire[G.Target].Complemented ^= true;
      } else if (G.Controls.size() == 1) {
        Wire[G.Target].xorWith(Wire[G.Controls[0]]);
      } else {
        Wire[G.Target].reset(NextVar++);
      }
      break;
    case GateKind::H:
    default:
      Wire[G.Target].reset(NextVar++);
      break;
    }
  }

  std::map<size_t, const Accum *> EmitAt;
  for (const auto &[Vars, A] : Phases)
    if (A.Units % 8 != 0)
      EmitAt[A.FirstGate] = &A;

  Circuit Out;
  Out.NumQubits = C.NumQubits;
  for (size_t I = 0; I != C.Gates.size(); ++I) {
    auto It = EmitAt.find(I);
    if (It != EmitAt.end()) {
      const Accum &A = *It->second;
      emitPhase(A.FirstComplemented ? -A.Units : A.Units, A.Target,
                Out.Gates);
    }
    if (!IsPhaseGate[I])
      Out.Gates.push_back(C.Gates[I]);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Search-based rewriting (Quartz / QUESO stand-in)
//===----------------------------------------------------------------------===//

Circuit searchRewrite(const Circuit &C, const SearchOptions &Options) {
  using Clock = std::chrono::steady_clock;
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         Options.TimeoutSeconds));
  std::mt19937_64 Rng(Options.Seed);

  Circuit Best = C;
  int64_t BestT = countGates(Best).TComplexity;
  Circuit Current = C;

  CancelOptions Window;
  Window.MaxLookahead = Options.WindowSize;

  unsigned Stale = 0;
  while (Clock::now() < Deadline) {
    // Local simplification.
    size_t SizeBefore = Current.Gates.size();
    Current = cancelAdjacentGates(Current, Window);
    int64_t T = countGates(Current).TComplexity;
    bool Improved = Current.Gates.size() < SizeBefore || T < BestT;
    if (T < BestT) {
      BestT = T;
      Best = Current;
    }
    // Fixpoint detection: cancellation removed nothing and the T count
    // stayed put (transpositions never change it), so further rounds
    // only reshuffle commuting gates. Stop burning the budget.
    if (Improved)
      Stale = 0;
    else if (Options.MaxStaleRounds != 0 &&
             ++Stale >= Options.MaxStaleRounds)
      break;
    if (Current.Gates.empty())
      break;
    // Randomized commuting transposition to escape local minima.
    if (Current.Gates.size() >= 2) {
      for (unsigned K = 0; K != 32 && Clock::now() < Deadline; ++K) {
        size_t I = Rng() % (Current.Gates.size() - 1);
        if (gatesCommute(Current.Gates[I], Current.Gates[I + 1]))
          std::swap(Current.Gates[I], Current.Gates[I + 1]);
      }
    }
  }
  return Best;
}

} // namespace spire::qopt

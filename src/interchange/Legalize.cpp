#include "interchange/Legalize.h"

#include "decompose/Decompose.h"

namespace spire::interchange {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

const char *basisName(Basis B) {
  switch (B) {
  case Basis::MCX:
    return "mcx";
  case Basis::Toffoli:
    return "toffoli";
  case Basis::CX:
    return "cx";
  }
  return "?";
}

std::optional<Basis> basisFromName(const std::string &Name) {
  if (Name == "mcx")
    return Basis::MCX;
  if (Name == "toffoli")
    return Basis::Toffoli;
  if (Name == "cx")
    return Basis::CX;
  return std::nullopt;
}

namespace {

/// Control-count limit of one gate kind under a (non-MCX) basis.
unsigned controlLimit(GateKind K, Basis B) {
  switch (K) {
  case GateKind::X:
    return B == Basis::Toffoli ? 2 : 1;
  case GateKind::H: // The primitive CH (T-cost 8) is in both bases.
  case GateKind::Z: // CZ is Clifford and kept primitive alongside CH.
    return 1;
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::T:
  case GateKind::Tdg:
    return 0;
  }
  return 0;
}

/// Emits the exact Clifford+T expansion of a singly controlled S or Sdg:
/// CS(a,t) = T(a) T(t) CX(a,t) Tdg(t) CX(a,t), and CSdg its reverse
/// inverse. Both operands are symmetric (CS is diagonal).
void emitControlledS(bool Dagger, Qubit A, Qubit T, std::vector<Gate> &Out) {
  if (!Dagger) {
    Out.push_back(Gate(GateKind::T, A));
    Out.push_back(Gate(GateKind::T, T));
    Out.push_back(Gate(GateKind::X, T, {A}));
    Out.push_back(Gate(GateKind::Tdg, T));
    Out.push_back(Gate(GateKind::X, T, {A}));
  } else {
    Out.push_back(Gate(GateKind::X, T, {A}));
    Out.push_back(Gate(GateKind::T, T));
    Out.push_back(Gate(GateKind::X, T, {A}));
    Out.push_back(Gate(GateKind::Tdg, T));
    Out.push_back(Gate(GateKind::Tdg, A));
  }
}

/// Rewrites the controlled gates src/decompose does not know about —
/// multi-controlled Z and singly controlled S/Sdg — into X/H/phase forms
/// it does. Returns false with a diagnostic for gates with no exact
/// realization.
bool prepare(const Circuit &C, Circuit &Out,
             support::DiagnosticEngine &Diags) {
  Out.NumQubits = C.NumQubits;
  for (const Gate &G : C.Gates) {
    unsigned NC = G.numControls();
    switch (G.Kind) {
    case GateKind::X:
    case GateKind::H:
      Out.Gates.push_back(G); // decompose lowers any control count.
      continue;
    case GateKind::Z:
      if (NC <= 1) {
        Out.Gates.push_back(G);
      } else {
        // C^k Z = H(t) C^k X H(t); the MCX then lowers by the ladder.
        Out.Gates.push_back(Gate(GateKind::H, G.Target));
        Out.Gates.push_back(Gate(GateKind::X, G.Target, G.Controls));
        Out.Gates.push_back(Gate(GateKind::H, G.Target));
      }
      continue;
    case GateKind::S:
    case GateKind::Sdg:
      if (NC == 0) {
        Out.Gates.push_back(G);
        continue;
      }
      if (NC == 1) {
        emitControlledS(G.Kind == GateKind::Sdg, G.Controls[0], G.Target,
                        Out.Gates);
        continue;
      }
      Diags.error("cannot legalize " + G.str() +
                  ": S under 2+ controls has no exact realization in "
                  "this gate set");
      return false;
    case GateKind::T:
    case GateKind::Tdg:
      if (NC == 0) {
        Out.Gates.push_back(G);
        continue;
      }
      Diags.error("cannot legalize " + G.str() +
                  ": controlled T is not exactly representable in "
                  "Clifford+T");
      return false;
    }
  }
  return true;
}

} // namespace

bool conformsTo(const Circuit &C, Basis B) {
  if (B == Basis::MCX)
    return true;
  for (const Gate &G : C.Gates)
    if (G.numControls() > controlLimit(G.Kind, B))
      return false;
  return true;
}

std::optional<Circuit> legalize(const Circuit &C, Basis B,
                                support::DiagnosticEngine &Diags) {
  if (B == Basis::MCX || conformsTo(C, B))
    return C;
  Circuit Pre;
  if (!prepare(C, Pre, Diags))
    return std::nullopt;
  return B == Basis::Toffoli ? decompose::toToffoli(Pre)
                             : decompose::toCliffordT(Pre);
}

} // namespace spire::interchange

//===----------------------------------------------------------------------===//
///
/// \file
/// Gate-set legalization: lowering a circuit onto the declared basis of an
/// interchange target. Mainstream toolchains rarely accept arbitrary
/// multiply-controlled gates, so before a circuit is exported to (or after
/// it is imported from) OpenQASM it can be legalized onto a named basis,
/// reusing the decomposition ladder of src/decompose:
///
///   mcx      arbitrary control counts — no lowering (the compiler's
///            native MCX level).
///   toffoli  X with at most 2 controls; H, Z with at most 1 (the CH and
///            CZ primitives); phase gates uncontrolled. MCX gates expand
///            by the Barenco AND-ladder (decompose::toToffoli).
///   cx       X with at most 1 control: the full decompose::toCliffordT
///            ladder down to {X, CX, H, CH, CZ, S, Sdg, T, Tdg, Z}.
///
/// Beyond delegating X/H lowering to src/decompose, the legalizer itself
/// lowers the controlled gates only OpenQASM import can introduce:
/// multi-controlled Z by H-conjugation to an MCX, and singly controlled
/// S/Sdg by the exact 2-CNOT Clifford+T identity. A controlled T (or an
/// S under 2+ controls) has no exact Clifford+T realization and is
/// reported as a diagnostic — legalization never silently approximates.
///
/// legalize() is idempotent and conformsTo() lets callers (and the
/// driver's legalize stage) skip the copy when a circuit already fits.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_LEGALIZE_H
#define SPIRE_INTERCHANGE_LEGALIZE_H

#include "circuit/Gate.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace spire::interchange {

/// A named target gate basis, ordered from least to most lowered.
enum class Basis {
  MCX,     ///< Arbitrary control counts (no legalization).
  Toffoli, ///< X with <= 2 controls (Clifford+Toffoli level).
  CX,      ///< X with <= 1 control (Clifford+T level, CH/CZ primitive).
};

/// Short lower-case basis name as spelled on the command line.
const char *basisName(Basis B);

/// Parses a `--basis` spelling (mcx | toffoli | cx).
std::optional<Basis> basisFromName(const std::string &Name);

/// True when every gate of `C` fits the basis.
bool conformsTo(const circuit::Circuit &C, Basis B);

/// Lowers `C` onto the basis. Already-conformant circuits are returned
/// unchanged (modulo the copy). Returns std::nullopt with a diagnostic
/// for gates with no exact realization in the basis (controlled T,
/// multiply controlled S).
std::optional<circuit::Circuit> legalize(const circuit::Circuit &C, Basis B,
                                         support::DiagnosticEngine &Diags);

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_LEGALIZE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the OpenQASM 3 subset accepted by interchange::readQasm3:
/// identifiers, integer and real literals, string literals (for
/// `include`), the punctuation of gate statements and declarations, and
/// the `@` of gate modifiers. Line comments (`//`) and block comments
/// (`/* */`) are skipped. Every token carries a SourceLoc so the reader's
/// diagnostics point at the offending text.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_QASMLEXER_H
#define SPIRE_INTERCHANGE_QASMLEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace spire::interchange {

enum class QasmTokenKind {
  Identifier, ///< Keywords are not distinguished; the reader matches text.
  Integer,    ///< Decimal integer literal.
  Real,       ///< Real literal (only in the `OPENQASM 3.0;` version line).
  String,     ///< Double-quoted string (only after `include`).
  LBracket,   ///< `[`
  RBracket,   ///< `]`
  LParen,     ///< `(`
  RParen,     ///< `)`
  Comma,      ///< `,`
  Semicolon,  ///< `;`
  At,         ///< `@`
  End,        ///< End of input.
  Invalid,    ///< Unrecognized byte; the lexer reports a diagnostic.
};

struct QasmToken {
  QasmTokenKind Kind = QasmTokenKind::End;
  std::string Text;     ///< Identifier spelling, literal text, or symbol.
  uint64_t IntValue = 0;///< For Integer tokens.
  support::SourceLoc Loc;
};

/// A one-token-lookahead lexer over QASM text. Invalid bytes produce a
/// diagnostic and an Invalid token; the reader stops at the first one.
class QasmLexer {
public:
  QasmLexer(std::string_view Text, support::DiagnosticEngine &Diags);

  const QasmToken &peek() const { return Lookahead; }
  QasmToken next();

private:
  QasmToken lex();
  /// Skips whitespace and comments; false on an unterminated block
  /// comment (already reported), which poisons the token stream.
  bool skipTrivia();
  char current() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void advance();

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1, Column = 1;
  support::DiagnosticEngine &Diags;
  QasmToken Lookahead;
};

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_QASMLEXER_H

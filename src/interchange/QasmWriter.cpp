#include "interchange/QasmWriter.h"

#include "support/Governor.h"

namespace spire::interchange {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace {

std::string ref(Qubit Q) { return "q[" + std::to_string(Q) + "]"; }

/// `q[a..b]` for a register slice (inclusive), or `q[a]` when one wide.
std::string rangeRef(const circuit::BitRange &R) {
  if (R.Width == 1)
    return ref(R.Offset);
  return "q[" + std::to_string(R.Offset) + ".." +
         std::to_string(R.Offset + R.Width - 1) + "]";
}

/// Base gate name for a kind with no controls.
const char *baseName(GateKind K) {
  switch (K) {
  case GateKind::X:
    return "x";
  case GateKind::H:
    return "h";
  case GateKind::T:
    return "t";
  case GateKind::Tdg:
    return "tdg";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::Z:
    return "z";
  }
  return "?";
}

/// The stdgates alias that absorbs one or two controls, or nullptr when
/// the kind has none (S/Sdg/T/Tdg).
const char *aliasName(GateKind K, unsigned NumControls) {
  switch (K) {
  case GateKind::X:
    return NumControls == 1 ? "cx" : NumControls == 2 ? "ccx" : nullptr;
  case GateKind::H:
    return NumControls == 1 ? "ch" : nullptr;
  case GateKind::Z:
    return NumControls == 1 ? "cz" : nullptr;
  default:
    return nullptr;
  }
}

void writeGate(std::string &Out, const Gate &G) {
  unsigned NumControls = G.numControls();
  const char *Alias = aliasName(G.Kind, NumControls);
  if (NumControls != 0 && !Alias) {
    Out += "ctrl";
    if (NumControls > 1)
      Out += "(" + std::to_string(NumControls) + ")";
    Out += " @ ";
  }
  Out += Alias ? Alias : baseName(G.Kind);
  Out += " ";
  for (Qubit C : G.Controls)
    Out += ref(C) + ", ";
  Out += ref(G.Target) + ";\n";
}

} // namespace

std::string writeQasm3(const Circuit &C,
                       const circuit::CircuitLayout *Layout) {
  std::string Out = "OPENQASM 3.0;\n"
                    "include \"stdgates.inc\";\n";
  if (Layout) {
    for (const auto &[Name, R] : Layout->Inputs)
      Out += "// input " + Name + ": " + rangeRef(R) + "\n";
    Out += "// output: " + rangeRef(Layout->Output) + "\n";
  }
  // OpenQASM has no zero-width registers; an empty circuit is just the
  // header (and readQasm3 accepts a program with no declaration back).
  if (C.NumQubits != 0)
    Out += "qubit[" + std::to_string(C.NumQubits) + "] q;\n";
  size_t GateIndex = 0;
  for (const Gate &G : C.Gates) {
    // Output-size checkpoint: stop emitting once the governor's output
    // cap trips; callers check the governor before using the text.
    if ((GateIndex++ & 1023) == 0) {
      auto *Gov = support::Governor::current();
      if (Gov && !Gov->checkOutputBytes(static_cast<int64_t>(Out.size())))
        return Out;
    }
    writeGate(Out, G);
  }
  return Out;
}

} // namespace spire::interchange

//===----------------------------------------------------------------------===//
///
/// \file
/// The interchange subsystem's front door: one enum naming every circuit
/// text format the compiler speaks, read/write dispatch over it, and
/// simulation-backed equivalence checking — the cross-format correctness
/// oracle that round-trip tests, the CLI's --check-equiv mode, and CI use
/// to prove that an exported circuit re-imports to the same behavior.
///
/// Formats:
///   Qc     the `.qc` dialect of the Feynman toolkit (circuit/QcReader,
///          circuit/QcWriter) — the paper's native output format.
///   Qasm3  the OpenQASM 3 subset of interchange/QasmReader and
///          interchange/QasmWriter.
///
/// Equivalence: the checker dispatches on circuit classification. X-only
/// (classical reversible) pairs — every compiled Tower program without
/// `h` — run through the bit-sliced batch simulator (sim::BitSliced),
/// 64 basis states per machine word: at or below
/// EquivalenceOptions::MaxExhaustiveQubits common qubits the sweep
/// covers *all* 2^n basis states (a proof, reported Exhaustive), and
/// above it the requested sample budget runs as random 64-state blocks.
/// Anything with H or phase gates falls back to the sparse state-vector
/// simulator and sim::statesEquivalent (small circuits only). A circuit
/// with *more* qubits than the other (legalization adds ancillas) is
/// accepted when the extra wires start at |0> and return to |0>, which
/// is exactly the clean-ancilla contract of the decompose ladder.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_INTERCHANGE_H
#define SPIRE_INTERCHANGE_INTERCHANGE_H

#include "circuit/Compiler.h"
#include "interchange/Legalize.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>

namespace spire::interchange {

/// A circuit text format the compiler can read and write.
enum class Format {
  Qc,    ///< Feynman-toolkit `.qc` (the paper's Section 7 output).
  Qasm3, ///< OpenQASM 3 subset (docs/formats.md).
};

/// Short lower-case format name as spelled on the command line
/// ("qc" / "qasm3").
const char *formatName(Format F);

/// Parses an `--emit` format spelling (qc | qasm3).
std::optional<Format> formatFromName(const std::string &Name);

/// Guesses the format of circuit text: OpenQASM when the first
/// non-comment content is an `OPENQASM` / `include` / `qubit` line,
/// `.qc` otherwise. Used by --check-equiv, which accepts either.
Format detectFormat(std::string_view Text);

/// Renders a circuit in the format. The layout, when provided, marks the
/// input/output registers (`.i`/`.o` lines in `.qc`, comments in QASM).
std::string writeCircuit(const circuit::Circuit &C, Format F,
                         const circuit::CircuitLayout *Layout = nullptr);

/// Parses circuit text in the format. Returns std::nullopt and reports
/// diagnostics on malformed input.
std::optional<circuit::Circuit> readCircuit(std::string_view Text, Format F,
                                            support::DiagnosticEngine &Diags);

/// True when the circuit is classical reversible (X-kind gates only) —
/// the fragment the bit-sliced batch backend evaluates. Circuits with H
/// or phase gates take the state-vector path and cannot be checked
/// exhaustively.
bool isClassical(const circuit::Circuit &C);

/// Outcome of an equivalence check over basis states.
struct EquivalenceReport {
  bool Equivalent = false;
  /// Whether the sweep covered every one of the narrower circuit's
  /// 2^qubits basis states — a proof over all inputs, not a sample.
  bool Exhaustive = false;
  /// Whether the bit-sliced batch backend ran the sweep (X-only pair);
  /// false means the sparse state-vector simulator did.
  bool BitSliced = false;
  /// Basis states actually evaluated (distinct states when Exhaustive).
  uint64_t StatesRun = 0;
  /// Legacy alias of StatesRun, clamped to unsigned.
  unsigned SamplesRun = 0;
  /// Wall-clock seconds of the sweep (states/sec = StatesRun/Seconds).
  double Seconds = 0;
  /// Human-readable mismatch description (empty when Equivalent).
  std::string Detail;
};

/// Everything that configures an equivalence check.
struct EquivalenceOptions {
  /// Basis-state budget for sampled sweeps. On the bit-sliced path it is
  /// rounded up to whole 64-state blocks; on every path it is clamped to
  /// the narrower circuit's 2^qubits distinct states, which upgrades the
  /// sweep to exhaustive enumeration (sampling draws with replacement,
  /// so on a small space it could miss the one differing state).
  unsigned Samples = 32;
  /// Seed of the deterministic SplitMix64 sample stream.
  uint64_t Seed = 0x5eedc1c5u;
  /// X-only comparisons at or below this many common qubits are swept
  /// exhaustively regardless of Samples: 2^20 states are only 16384
  /// bit-sliced blocks.
  unsigned MaxExhaustiveQubits = 20;
  /// Validates the bit-sliced backend against the gate-at-a-time
  /// sim::runBasis interpreter, lane-for-lane on one state per 64-state
  /// block — the --verify-each hook. Any disagreement fails the check
  /// with a backend-divergence Detail.
  bool CrossCheck = false;
};

/// Checks that `A` and `B` act identically on basis states per the
/// dispatch described above (exhaustive bit-sliced sweep, batched
/// bit-sliced samples, or sparse state-vector samples; the all-zero
/// state is always among sampled states). Qubit-count differences are
/// tolerated per the ancilla contract described above.
EquivalenceReport checkEquivalence(const circuit::Circuit &A,
                                   const circuit::Circuit &B,
                                   const EquivalenceOptions &Opts);

/// Convenience overload with default exhaustive/cross-check settings.
EquivalenceReport checkEquivalence(const circuit::Circuit &A,
                                   const circuit::Circuit &B,
                                   unsigned Samples = 32,
                                   uint64_t Seed = 0x5eedc1c5u);

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_INTERCHANGE_H

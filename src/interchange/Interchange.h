//===----------------------------------------------------------------------===//
///
/// \file
/// The interchange subsystem's front door: one enum naming every circuit
/// text format the compiler speaks, read/write dispatch over it, and
/// simulation-backed equivalence checking — the cross-format correctness
/// oracle that round-trip tests, the CLI's --check-equiv mode, and CI use
/// to prove that an exported circuit re-imports to the same behavior.
///
/// Formats:
///   Qc     the `.qc` dialect of the Feynman toolkit (circuit/QcReader,
///          circuit/QcWriter) — the paper's native output format.
///   Qasm3  the OpenQASM 3 subset of interchange/QasmReader and
///          interchange/QasmWriter.
///
/// Equivalence: two circuits are compared on sampled basis states. X-only
/// (classical reversible) circuits — every compiled Tower program without
/// `h` — run through sim::runBasis, which scales to whole-benchmark
/// circuits; anything with H or phase gates falls back to the sparse
/// state-vector simulator and sim::statesEquivalent (small circuits
/// only). A circuit with *more* qubits than the other (legalization adds
/// ancillas) is accepted when the extra wires start at |0> and return to
/// |0>, which is exactly the clean-ancilla contract of the decompose
/// ladder.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_INTERCHANGE_H
#define SPIRE_INTERCHANGE_INTERCHANGE_H

#include "circuit/Compiler.h"
#include "interchange/Legalize.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>

namespace spire::interchange {

/// A circuit text format the compiler can read and write.
enum class Format {
  Qc,    ///< Feynman-toolkit `.qc` (the paper's Section 7 output).
  Qasm3, ///< OpenQASM 3 subset (docs/formats.md).
};

/// Short lower-case format name as spelled on the command line
/// ("qc" / "qasm3").
const char *formatName(Format F);

/// Parses an `--emit` format spelling (qc | qasm3).
std::optional<Format> formatFromName(const std::string &Name);

/// Guesses the format of circuit text: OpenQASM when the first
/// non-comment content is an `OPENQASM` / `include` / `qubit` line,
/// `.qc` otherwise. Used by --check-equiv, which accepts either.
Format detectFormat(std::string_view Text);

/// Renders a circuit in the format. The layout, when provided, marks the
/// input/output registers (`.i`/`.o` lines in `.qc`, comments in QASM).
std::string writeCircuit(const circuit::Circuit &C, Format F,
                         const circuit::CircuitLayout *Layout = nullptr);

/// Parses circuit text in the format. Returns std::nullopt and reports
/// diagnostics on malformed input.
std::optional<circuit::Circuit> readCircuit(std::string_view Text, Format F,
                                            support::DiagnosticEngine &Diags);

/// Outcome of an equivalence check over sampled basis states.
struct EquivalenceReport {
  bool Equivalent = false;
  unsigned SamplesRun = 0;
  /// Human-readable mismatch description (empty when Equivalent).
  std::string Detail;
};

/// Checks that `A` and `B` act identically on `Samples` deterministically
/// sampled basis states (seeded by `Seed`; the all-zero state is always
/// among them). When `Samples` covers the narrower circuit's whole
/// 2^qubits space, the states are enumerated exhaustively instead of
/// sampled (sampling draws with replacement, which on a small space
/// could miss the one differing state). Qubit-count differences are
/// tolerated per the ancilla contract described above.
EquivalenceReport checkEquivalence(const circuit::Circuit &A,
                                   const circuit::Circuit &B,
                                   unsigned Samples = 32,
                                   uint64_t Seed = 0x5eedc1c5u);

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_INTERCHANGE_H

#include "interchange/Interchange.h"

#include "circuit/QcReader.h"
#include "circuit/QcWriter.h"
#include "interchange/QasmReader.h"
#include "interchange/QasmWriter.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/BitSliced.h"
#include "sim/Simulator.h"
#include "support/FaultInjector.h"
#include "support/Governor.h"
#include "support/Hash.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <limits>

namespace spire::interchange {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

const char *formatName(Format F) {
  switch (F) {
  case Format::Qc:
    return "qc";
  case Format::Qasm3:
    return "qasm3";
  }
  return "?";
}

std::optional<Format> formatFromName(const std::string &Name) {
  if (Name == "qc")
    return Format::Qc;
  if (Name == "qasm3")
    return Format::Qasm3;
  return std::nullopt;
}

Format detectFormat(std::string_view Text) {
  // Skip whitespace and // comments, then look at the first word. The
  // .qc dialect opens with a .v directive (or BEGIN); QASM with
  // OPENQASM, include, qubit, or a lower-case gate statement.
  size_t Pos = 0;
  auto skip = [&] {
    for (;;) {
      while (Pos < Text.size() &&
             (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\r' ||
              Text[Pos] == '\n'))
        ++Pos;
      if (Pos + 1 < Text.size() && Text[Pos] == '/' && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  };
  skip();
  size_t End = Pos;
  while (End < Text.size() &&
         !std::isspace(static_cast<unsigned char>(Text[End])) &&
         Text[End] != ';' && Text[End] != '[')
    ++End;
  std::string_view First = Text.substr(Pos, End - Pos);
  if (First == "OPENQASM" || First == "include" || First == "qubit")
    return Format::Qasm3;
  return Format::Qc;
}

std::string writeCircuit(const Circuit &C, Format F,
                         const circuit::CircuitLayout *Layout) {
  switch (F) {
  case Format::Qc:
    return circuit::writeQc(C, Layout);
  case Format::Qasm3:
    return writeQasm3(C, Layout);
  }
  return "";
}

std::optional<Circuit> readCircuit(std::string_view Text, Format F,
                                   support::DiagnosticEngine &Diags) {
  switch (F) {
  case Format::Qc:
    return circuit::readQc(Text, Diags);
  case Format::Qasm3:
    return readQasm3(Text, Diags);
  }
  return std::nullopt;
}

bool isClassical(const Circuit &C) {
  return std::all_of(C.Gates.begin(), C.Gates.end(), [](const Gate &G) {
    return G.Kind == GateKind::X;
  });
}

namespace {

/// Deterministic generator for basis-state sampling (<random> engines
/// are not guaranteed stable across libstdc++ versions, and these
/// samples pin CI behavior).
using support::splitMix64;

/// A random basis state over the first `Qubits` wires of a `Width`-wide
/// register (the ancilla tail stays |0>).
sim::BitString sampleState(unsigned Qubits, unsigned Width,
                           uint64_t &Rng, bool AllZero) {
  sim::BitString S(Width);
  if (AllZero)
    return S;
  for (unsigned Q = 0; Q < Qubits; Q += 64) {
    uint64_t Bits = splitMix64(Rng);
    unsigned Chunk = std::min(64u, Qubits - Q);
    S.write(Q, Chunk, Chunk == 64 ? Bits : (Bits & ((1ull << Chunk) - 1)));
  }
  return S;
}

/// Chooses the I-th test state: when the sample budget covers the whole
/// 2^Qubits space, enumerate it exhaustively (random sampling draws
/// *with replacement*, so on a small space it would re-test duplicates
/// and could miss the one differing state); otherwise sample randomly
/// with the all-zero state always included.
sim::BitString testState(unsigned Qubits, unsigned Width, unsigned Samples,
                         unsigned I, uint64_t &Rng) {
  bool Exhaustive =
      Qubits < 64 && static_cast<uint64_t>(Samples) >= (uint64_t{1} << Qubits);
  if (!Exhaustive)
    return sampleState(Qubits, Width, Rng, I == 0);
  sim::BitString S(Width);
  if (Qubits > 0)
    S.write(0, std::min(Qubits, 64u), I);
  return S;
}

/// True when every qubit in [From, Width) of `S` is zero.
bool tailIsZero(const sim::BitString &S, unsigned From, unsigned Width) {
  for (unsigned Q = From; Q != Width; ++Q)
    if (S.get(Q))
      return false;
  return true;
}

std::string describeState(const sim::BitString &S, unsigned Width) {
  std::string Out;
  for (unsigned Q = 0; Q != Width; ++Q)
    Out += S.get(Q) ? '1' : '0';
  return Out; // Qubit 0 first.
}

std::string describeLaneState(const uint64_t *L, unsigned Width,
                              unsigned Bit) {
  std::string Out;
  for (unsigned Q = 0; Q != Width; ++Q)
    Out += ((L[Q] >> Bit) & 1) ? '1' : '0';
  return Out; // Qubit 0 first.
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The bit-sliced sweep over an X-only pair: both tapes advance the same
/// 64-state blocks — all 2^Common states when `Exhaustive`, random
/// blocks otherwise (state 0 of the first block pinned to all-zero) —
/// and every block must agree on the common wires with a clean ancilla
/// tail on both sides.
void runBitSlicedSweep(const Circuit &A, const Circuit &B,
                       const sim::BitSlicedSimulator &TapeA,
                       const sim::BitSlicedSimulator &TapeB,
                       unsigned Common, uint64_t Blocks, bool Exhaustive,
                       const EquivalenceOptions &Opts,
                       EquivalenceReport &Report) {
  std::vector<uint64_t> InA(A.NumQubits), LA(A.NumQubits);
  std::vector<uint64_t> InB(B.NumQubits), LB(B.NumQubits);
  uint64_t Rng = Opts.Seed;
  for (uint64_t Block = 0; Block != Blocks; ++Block) {
    // Governor checkpoint per 64-state block: a tripped budget stops
    // the sweep with the report still Equivalent=false/undetailed; the
    // caller checks the governor before trusting any partial verdict.
    if (!support::Governor::poll()) {
      Report.Detail = "equivalence sweep stopped by resource limit";
      return;
    }
    if (Exhaustive)
      sim::loadCounterBlock(InA.data(), A.NumQubits,
                            Block * sim::LaneBits, Common);
    else
      sim::loadRandomBlock(InA.data(), A.NumQubits, Common, Rng);
    if (!Exhaustive && Block == 0)
      for (unsigned Q = 0; Q != A.NumQubits; ++Q)
        InA[Q] &= ~uint64_t(1); // The all-zero state is always tested.
    for (unsigned Q = 0; Q != B.NumQubits; ++Q)
      InB[Q] = Q < Common ? InA[Q] : 0;

    LA = InA;
    LB = InB;
    TapeA.runBlock(LA.data());
    TapeB.runBlock(LB.data());

    // One diff word accumulates every way the block can disagree:
    // common-wire divergence and dirty ancilla tails on either side.
    uint64_t Diff = 0;
    for (unsigned Q = 0; Q != Common; ++Q)
      Diff |= LA[Q] ^ LB[Q];
    for (unsigned Q = Common; Q != A.NumQubits; ++Q)
      Diff |= LA[Q];
    for (unsigned Q = Common; Q != B.NumQubits; ++Q)
      Diff |= LB[Q];
    if (Diff != 0) {
      unsigned Bit = 0;
      while (!((Diff >> Bit) & 1))
        ++Bit;
      Report.Detail = "basis state " +
                      describeLaneState(InA.data(), Common, Bit) +
                      " maps to " +
                      describeLaneState(LA.data(), A.NumQubits, Bit) +
                      " vs " +
                      describeLaneState(LB.data(), B.NumQubits, Bit);
      return;
    }

    if (Opts.CrossCheck) {
      // Lane-agreement oracle: replay one state of the block through
      // the gate-at-a-time interpreter and require the bit-sliced lanes
      // to match wire-for-wire on both circuits.
      unsigned Bit =
          static_cast<unsigned>(splitMix64(Rng) % sim::LaneBits);
      if (!sim::laneAgreesWithBasis(A, InA.data(), LA.data(), Bit) ||
          !sim::laneAgreesWithBasis(B, InB.data(), LB.data(), Bit)) {
        Report.Detail = "bit-sliced backend disagrees with sim::runBasis "
                        "on basis state " +
                        describeLaneState(InA.data(), Common, Bit);
        return;
      }
    }
  }
  Report.Equivalent = true;
}

} // namespace

EquivalenceReport checkEquivalence(const Circuit &A, const Circuit &B,
                                   const EquivalenceOptions &Opts) {
  support::faultAlloc("equiv/check");
  EquivalenceReport Report;
  auto Start = std::chrono::steady_clock::now();
  // Sweep over the narrower circuit's wires; the wider one's extra
  // wires are legalization ancillas and must stay clean.
  unsigned Common = std::min(A.NumQubits, B.NumQubits);
  // A budget covering the whole space means exhaustive enumeration; cap
  // it there too, so no caller burns simulations on duplicate states or
  // reads a StatesRun above the number of distinct states that exist.
  uint64_t Space =
      Common < 64 ? (uint64_t{1} << Common) : ~uint64_t(0);
  unsigned Samples = Opts.Samples;
  if (static_cast<uint64_t>(Samples) > Space)
    Samples = static_cast<unsigned>(Space);
  uint64_t Rng = Opts.Seed;

  ++obs::Registry::global().counter("equiv.checks");

  if (isClassical(A) && isClassical(B)) {
    std::optional<sim::BitSlicedSimulator> TapeA;
    std::optional<sim::BitSlicedSimulator> TapeB;
    {
      obs::Span Sp("equiv/compile-tape");
      TapeA = sim::BitSlicedSimulator::compile(A);
      TapeB = sim::BitSlicedSimulator::compile(B);
      Sp.arg("gates", static_cast<int64_t>(A.Gates.size() +
                                           B.Gates.size()));
    }
    Report.BitSliced = true;
    // Exhaustive whenever the whole space is small enough — or the
    // caller's budget covers it anyway.
    bool Exhaustive = Common <= Opts.MaxExhaustiveQubits ||
                      static_cast<uint64_t>(Opts.Samples) >= Space;
    // Whole 64-state blocks: every sweep advances at least 64 states
    // (one sample costs the same as 64 on this backend). An exhaustive
    // space below 64 states still occupies one block — the counter
    // lanes just repeat, and StatesRun reports distinct states.
    uint64_t Blocks =
        Exhaustive
            ? std::max<uint64_t>(1, Space / sim::LaneBits)
            : (std::max(Samples, 1u) + sim::LaneBits - 1) / sim::LaneBits;
    {
      obs::Span Sp("equiv/sweep");
      runBitSlicedSweep(A, B, *TapeA, *TapeB, Common, Blocks, Exhaustive,
                        Opts, Report);
      Report.Exhaustive = Exhaustive;
      Report.StatesRun = Exhaustive ? Space : Blocks * sim::LaneBits;
      Sp.arg("common_qubits", Common);
      Sp.arg("blocks", static_cast<int64_t>(Blocks));
      Sp.arg("states_run", static_cast<int64_t>(Report.StatesRun));
      Sp.arg("exhaustive", Exhaustive);
    }
    auto &Reg = obs::Registry::global();
    Reg.counter("sim.bitsliced.states_run") +=
        static_cast<int64_t>(Report.StatesRun);
    Reg.counter("sim.bitsliced.blocks_run") += static_cast<int64_t>(Blocks);
    if (Exhaustive)
      ++Reg.counter("equiv.exhaustive_sweeps");
    Report.SamplesRun = static_cast<unsigned>(
        std::min<uint64_t>(Report.StatesRun,
                           std::numeric_limits<unsigned>::max()));
    Report.Seconds = secondsSince(Start);
    return Report;
  }

  // State-vector path for circuits with H or phase gates: exact up to
  // global phase, but exponential in superposition size — callers keep
  // these circuits small (decomposition tests, --check-equiv on toys).
  Report.Exhaustive = static_cast<uint64_t>(Samples) >= Space;
  obs::Span Sp("equiv/state-vector");
  auto noteSamples = [&] {
    Sp.arg("samples_run", Report.SamplesRun);
    obs::Registry::global().counter("sim.statevector.samples_run") +=
        Report.SamplesRun;
  };
  for (unsigned I = 0; I != Samples; ++I) {
    sim::BitString SA = testState(Common, A.NumQubits, Samples, I, Rng);
    sim::BitString SB(B.NumQubits);
    for (unsigned Q = 0; Q != Common; ++Q)
      SB.set(Q, SA.get(Q));
    sim::SparseState FA = sim::runState(A, SA);
    sim::SparseState FB = sim::runState(B, SB);
    ++Report.SamplesRun;
    ++Report.StatesRun;
    // Project the wider state onto the common wires, insisting the
    // ancilla tail is exactly |0> in every branch.
    auto project = [&](const sim::SparseState &S, unsigned Width,
                       sim::SparseState &Out) {
      for (const auto &[Basis, Amp] : S) {
        if (!tailIsZero(Basis, Common, Width))
          return false;
        sim::BitString Narrow(Common);
        for (unsigned Q = 0; Q != Common; ++Q)
          Narrow.set(Q, Basis.get(Q));
        Out[Narrow] += Amp;
      }
      return true;
    };
    sim::SparseState PA, PB;
    bool Match = project(FA, A.NumQubits, PA) &&
                 project(FB, B.NumQubits, PB) &&
                 sim::statesEquivalent(PA, PB);
    if (!Match) {
      Report.Detail = "states diverge from basis state " +
                      describeState(SA, Common);
      Report.Seconds = secondsSince(Start);
      noteSamples();
      return Report;
    }
  }
  Report.Equivalent = true;
  Report.Seconds = secondsSince(Start);
  noteSamples();
  return Report;
}

EquivalenceReport checkEquivalence(const Circuit &A, const Circuit &B,
                                   unsigned Samples, uint64_t Seed) {
  EquivalenceOptions Opts;
  Opts.Samples = Samples;
  Opts.Seed = Seed;
  return checkEquivalence(A, B, Opts);
}

} // namespace spire::interchange

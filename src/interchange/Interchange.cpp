#include "interchange/Interchange.h"

#include "circuit/QcReader.h"
#include "circuit/QcWriter.h"
#include "interchange/QasmReader.h"
#include "interchange/QasmWriter.h"
#include "sim/Simulator.h"
#include "support/Hash.h"

#include <algorithm>
#include <cctype>

namespace spire::interchange {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

const char *formatName(Format F) {
  switch (F) {
  case Format::Qc:
    return "qc";
  case Format::Qasm3:
    return "qasm3";
  }
  return "?";
}

std::optional<Format> formatFromName(const std::string &Name) {
  if (Name == "qc")
    return Format::Qc;
  if (Name == "qasm3")
    return Format::Qasm3;
  return std::nullopt;
}

Format detectFormat(std::string_view Text) {
  // Skip whitespace and // comments, then look at the first word. The
  // .qc dialect opens with a .v directive (or BEGIN); QASM with
  // OPENQASM, include, qubit, or a lower-case gate statement.
  size_t Pos = 0;
  auto skip = [&] {
    for (;;) {
      while (Pos < Text.size() &&
             (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\r' ||
              Text[Pos] == '\n'))
        ++Pos;
      if (Pos + 1 < Text.size() && Text[Pos] == '/' && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  };
  skip();
  size_t End = Pos;
  while (End < Text.size() &&
         !std::isspace(static_cast<unsigned char>(Text[End])) &&
         Text[End] != ';' && Text[End] != '[')
    ++End;
  std::string_view First = Text.substr(Pos, End - Pos);
  if (First == "OPENQASM" || First == "include" || First == "qubit")
    return Format::Qasm3;
  return Format::Qc;
}

std::string writeCircuit(const Circuit &C, Format F,
                         const circuit::CircuitLayout *Layout) {
  switch (F) {
  case Format::Qc:
    return circuit::writeQc(C, Layout);
  case Format::Qasm3:
    return writeQasm3(C, Layout);
  }
  return "";
}

std::optional<Circuit> readCircuit(std::string_view Text, Format F,
                                   support::DiagnosticEngine &Diags) {
  switch (F) {
  case Format::Qc:
    return circuit::readQc(Text, Diags);
  case Format::Qasm3:
    return readQasm3(Text, Diags);
  }
  return std::nullopt;
}

namespace {

bool isXOnly(const Circuit &C) {
  return std::all_of(C.Gates.begin(), C.Gates.end(), [](const Gate &G) {
    return G.Kind == GateKind::X;
  });
}

/// Deterministic generator for basis-state sampling (<random> engines
/// are not guaranteed stable across libstdc++ versions, and these
/// samples pin CI behavior).
using support::splitMix64;

/// A random basis state over the first `Qubits` wires of a `Width`-wide
/// register (the ancilla tail stays |0>).
sim::BitString sampleState(unsigned Qubits, unsigned Width,
                           uint64_t &Rng, bool AllZero) {
  sim::BitString S(Width);
  if (AllZero)
    return S;
  for (unsigned Q = 0; Q < Qubits; Q += 64) {
    uint64_t Bits = splitMix64(Rng);
    unsigned Chunk = std::min(64u, Qubits - Q);
    S.write(Q, Chunk, Chunk == 64 ? Bits : (Bits & ((1ull << Chunk) - 1)));
  }
  return S;
}

/// Chooses the I-th test state: when the sample budget covers the whole
/// 2^Qubits space, enumerate it exhaustively (random sampling draws
/// *with replacement*, so on a small space it would re-test duplicates
/// and could miss the one differing state); otherwise sample randomly
/// with the all-zero state always included.
sim::BitString testState(unsigned Qubits, unsigned Width, unsigned Samples,
                         unsigned I, uint64_t &Rng) {
  bool Exhaustive =
      Qubits < 64 && static_cast<uint64_t>(Samples) >= (uint64_t{1} << Qubits);
  if (!Exhaustive)
    return sampleState(Qubits, Width, Rng, I == 0);
  sim::BitString S(Width);
  if (Qubits > 0)
    S.write(0, std::min(Qubits, 64u), I);
  return S;
}

/// True when every qubit in [From, Width) of `S` is zero.
bool tailIsZero(const sim::BitString &S, unsigned From, unsigned Width) {
  for (unsigned Q = From; Q != Width; ++Q)
    if (S.get(Q))
      return false;
  return true;
}

std::string describeState(const sim::BitString &S, unsigned Width) {
  std::string Out;
  for (unsigned Q = 0; Q != Width; ++Q)
    Out += S.get(Q) ? '1' : '0';
  return Out; // Qubit 0 first.
}

} // namespace

EquivalenceReport checkEquivalence(const Circuit &A, const Circuit &B,
                                   unsigned Samples, uint64_t Seed) {
  EquivalenceReport Report;
  // Sample over the narrower circuit's wires; the wider one's extra
  // wires are legalization ancillas and must stay clean.
  unsigned Common = std::min(A.NumQubits, B.NumQubits);
  // A budget covering the whole space switches testState to exhaustive
  // enumeration; cap the loop there too, so no caller burns simulations
  // on duplicate states or reads a SamplesRun above the number of
  // distinct states that exist.
  if (Common < 64 && static_cast<uint64_t>(Samples) > (uint64_t{1} << Common))
    Samples = static_cast<unsigned>(uint64_t{1} << Common);
  uint64_t Rng = Seed;

  if (isXOnly(A) && isXOnly(B)) {
    for (unsigned I = 0; I != Samples; ++I) {
      sim::BitString SA = testState(Common, A.NumQubits, Samples, I, Rng);
      sim::BitString SB(B.NumQubits);
      for (unsigned Q = 0; Q != Common; ++Q)
        SB.set(Q, SA.get(Q));
      sim::BitString Input = SA;
      sim::runBasis(A, SA);
      sim::runBasis(B, SB);
      ++Report.SamplesRun;
      bool Match = tailIsZero(SA, Common, A.NumQubits) &&
                   tailIsZero(SB, Common, B.NumQubits);
      for (unsigned Q = 0; Match && Q != Common; ++Q)
        Match = SA.get(Q) == SB.get(Q);
      if (!Match) {
        Report.Detail = "basis state " + describeState(Input, Common) +
                        " maps to " + describeState(SA, A.NumQubits) +
                        " vs " + describeState(SB, B.NumQubits);
        return Report;
      }
    }
    Report.Equivalent = true;
    return Report;
  }

  // State-vector path for circuits with H or phase gates: exact up to
  // global phase, but exponential in superposition size — callers keep
  // these circuits small (decomposition tests, --check-equiv on toys).
  for (unsigned I = 0; I != Samples; ++I) {
    sim::BitString SA = testState(Common, A.NumQubits, Samples, I, Rng);
    sim::BitString SB(B.NumQubits);
    for (unsigned Q = 0; Q != Common; ++Q)
      SB.set(Q, SA.get(Q));
    sim::SparseState FA = sim::runState(A, SA);
    sim::SparseState FB = sim::runState(B, SB);
    ++Report.SamplesRun;
    // Project the wider state onto the common wires, insisting the
    // ancilla tail is exactly |0> in every branch.
    auto project = [&](const sim::SparseState &S, unsigned Width,
                       sim::SparseState &Out) {
      for (const auto &[Basis, Amp] : S) {
        if (!tailIsZero(Basis, Common, Width))
          return false;
        sim::BitString Narrow(Common);
        for (unsigned Q = 0; Q != Common; ++Q)
          Narrow.set(Q, Basis.get(Q));
        Out[Narrow] += Amp;
      }
      return true;
    };
    sim::SparseState PA, PB;
    bool Match = project(FA, A.NumQubits, PA) &&
                 project(FB, B.NumQubits, PB) &&
                 sim::statesEquivalent(PA, PB);
    if (!Match) {
      Report.Detail = "states diverge from basis state " +
                      describeState(SA, Common);
      return Report;
    }
  }
  Report.Equivalent = true;
  return Report;
}

} // namespace spire::interchange

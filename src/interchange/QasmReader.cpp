#include "interchange/QasmReader.h"

#include "interchange/QasmLexer.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <map>
#include <vector>

namespace spire::interchange {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace {

/// What one gate spelling means: a kind plus the number of leading
/// operands the alias itself treats as controls (`cx` has 1, `ccx` 2),
/// or a swap of the last two operands (`swap`, `cswap`).
struct GateSpelling {
  GateKind Kind = GateKind::X;
  unsigned AliasControls = 0;
  bool IsSwap = false;
};

const std::map<std::string, GateSpelling, std::less<>> &spellings() {
  static const std::map<std::string, GateSpelling, std::less<>> Table = {
      {"x", {GateKind::X, 0, false}},    {"cx", {GateKind::X, 1, false}},
      {"ccx", {GateKind::X, 2, false}},  {"h", {GateKind::H, 0, false}},
      {"ch", {GateKind::H, 1, false}},   {"z", {GateKind::Z, 0, false}},
      {"cz", {GateKind::Z, 1, false}},   {"s", {GateKind::S, 0, false}},
      {"sdg", {GateKind::Sdg, 0, false}},{"t", {GateKind::T, 0, false}},
      {"tdg", {GateKind::Tdg, 0, false}},
      {"swap", {GateKind::X, 0, true}},
      {"cswap", {GateKind::X, 1, true}},
  };
  return Table;
}

/// `inv @` of each kind (self-inverse kinds map to themselves).
GateKind inverseKind(GateKind K) {
  switch (K) {
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  default:
    return K; // X, H, Z (and swap) are self-inverse.
  }
}

class Reader {
public:
  Reader(std::string_view Text, support::DiagnosticEngine &Diags)
      : Lexer(Text, Diags), Diags(Diags) {}

  std::optional<Circuit> run();

private:
  bool statement();
  bool versionLine();
  bool includeLine();
  bool qubitDecl();
  bool gateStatement();
  bool operand(Qubit &Out);
  bool expect(QasmTokenKind K, const char *What);

  /// Appends `Gate(Kind, Target, Controls)` after validating operand
  /// distinctness (QASM gate operands must be pairwise distinct).
  bool emit(GateKind Kind, Qubit Target, std::vector<Qubit> Controls,
            support::SourceLoc Loc);

  QasmLexer Lexer;
  support::DiagnosticEngine &Diags;
  Circuit C;
  /// Declared registers, in declaration order: name -> (offset, width).
  std::map<std::string, std::pair<Qubit, unsigned>> Registers;
};

bool Reader::expect(QasmTokenKind K, const char *What) {
  QasmToken T = Lexer.next();
  if (T.Kind == K)
    return true;
  Diags.error(T.Loc, std::string("expected ") + What +
                         (T.Text.empty() ? "" : " before '" + T.Text + "'"));
  return false;
}

bool Reader::versionLine() {
  QasmToken Kw = Lexer.next(); // 'OPENQASM'
  QasmToken V = Lexer.next();
  if (V.Kind != QasmTokenKind::Integer && V.Kind != QasmTokenKind::Real) {
    Diags.error(V.Loc, "expected version number after OPENQASM");
    return false;
  }
  // Accept `3` and `3.x`; anything else is a different language level.
  if (V.Text != "3" && V.Text.rfind("3.", 0) != 0) {
    Diags.error(V.Loc, "unsupported OpenQASM version '" + V.Text +
                           "' (this reader accepts 3.x)");
    return false;
  }
  (void)Kw;
  return expect(QasmTokenKind::Semicolon, "';' after the version");
}

bool Reader::includeLine() {
  Lexer.next(); // 'include'
  QasmToken Path = Lexer.next();
  if (Path.Kind != QasmTokenKind::String) {
    Diags.error(Path.Loc, "expected a quoted path after include");
    return false;
  }
  // Includes are recorded but never opened: stdgates.inc is built in and
  // any other include is outside the interchange subset anyway.
  return expect(QasmTokenKind::Semicolon, "';' after include");
}

bool Reader::qubitDecl() {
  QasmToken Kw = Lexer.next(); // 'qubit'
  unsigned Width = 1;
  if (Lexer.peek().Kind == QasmTokenKind::LBracket) {
    Lexer.next();
    QasmToken N = Lexer.next();
    if (N.Kind != QasmTokenKind::Integer) {
      Diags.error(N.Loc, "expected a register width in qubit[...]");
      return false;
    }
    if (N.IntValue == 0 || N.IntValue > (1u << 24)) {
      Diags.error(N.Loc, "unsupported register width " + N.Text);
      return false;
    }
    Width = static_cast<unsigned>(N.IntValue);
    if (!expect(QasmTokenKind::RBracket, "']' after the register width"))
      return false;
  }
  QasmToken Name = Lexer.next();
  if (Name.Kind != QasmTokenKind::Identifier) {
    Diags.error(Name.Loc, "expected a register name in a qubit declaration");
    return false;
  }
  if (Registers.count(Name.Text)) {
    Diags.error(Name.Loc, "duplicate register '" + Name.Text + "'");
    return false;
  }
  Registers[Name.Text] = {C.NumQubits, Width};
  C.NumQubits += Width;
  (void)Kw;
  return expect(QasmTokenKind::Semicolon, "';' after the qubit declaration");
}

bool Reader::operand(Qubit &Out) {
  QasmToken Name = Lexer.next();
  if (Name.Kind != QasmTokenKind::Identifier) {
    Diags.error(Name.Loc, "expected a qubit operand" +
                              (Name.Text.empty()
                                   ? std::string()
                                   : " before '" + Name.Text + "'"));
    return false;
  }
  auto It = Registers.find(Name.Text);
  if (It == Registers.end()) {
    Diags.error(Name.Loc, "unknown register '" + Name.Text + "'");
    return false;
  }
  auto [Offset, Width] = It->second;
  if (Lexer.peek().Kind != QasmTokenKind::LBracket) {
    // A bare register name broadcasts in QASM 3; only width-1 registers
    // have an unambiguous single-qubit meaning in this subset.
    if (Width != 1) {
      Diags.error(Name.Loc, "register '" + Name.Text +
                                "' used without an index (broadcasting is "
                                "outside the supported subset)");
      return false;
    }
    Out = Offset;
    return true;
  }
  Lexer.next();
  QasmToken Index = Lexer.next();
  if (Index.Kind != QasmTokenKind::Integer) {
    Diags.error(Index.Loc, "expected a qubit index");
    return false;
  }
  if (Index.IntValue >= Width) {
    Diags.error(Index.Loc, "index " + Index.Text + " out of range for '" +
                               Name.Text + "' of width " +
                               std::to_string(Width));
    return false;
  }
  Out = Offset + static_cast<Qubit>(Index.IntValue);
  return expect(QasmTokenKind::RBracket, "']' after the qubit index");
}

bool Reader::emit(GateKind Kind, Qubit Target, std::vector<Qubit> Controls,
                  support::SourceLoc Loc) {
  // A doubled control is the same single control (Gate::normalize dedupes
  // it — `ctrl(2) @ x q[1], q[1], q[0]` means cx); the target repeating a
  // control (`cx q[0], q[0]`) has no sensible gate reading. The shared
  // operand check diagnoses both that and any out-of-range index with
  // the same words the .qc reader and analysis::verifyCircuit use.
  std::string Bad = circuit::checkGateOperands(
      Target, Controls.data(), Controls.data() + Controls.size(),
      C.NumQubits);
  if (!Bad.empty()) {
    Diags.error(Loc, Bad);
    return false;
  }
  C.add(Gate(Kind, Target, std::move(Controls)));
  return true;
}

bool Reader::gateStatement() {
  support::SourceLoc Loc = Lexer.peek().Loc;

  // Modifiers: any sequence of `ctrl(k) @` / `inv @`.
  unsigned ModifierControls = 0;
  bool Inverted = false;
  for (;;) {
    const QasmToken &T = Lexer.peek();
    if (T.Kind != QasmTokenKind::Identifier ||
        (T.Text != "ctrl" && T.Text != "inv" && T.Text != "negctrl"))
      break;
    QasmToken Mod = Lexer.next();
    if (Mod.Text == "negctrl") {
      Diags.error(Mod.Loc, "negctrl is outside the supported subset");
      return false;
    }
    if (Mod.Text == "ctrl") {
      unsigned K = 1;
      if (Lexer.peek().Kind == QasmTokenKind::LParen) {
        Lexer.next();
        QasmToken N = Lexer.next();
        // Bound before the narrowing cast: a count like 2^32 must be
        // diagnosed, not silently wrapped to 0 controls.
        if (N.Kind != QasmTokenKind::Integer || N.IntValue == 0 ||
            N.IntValue > (1u << 24)) {
          Diags.error(N.Loc, "expected a positive control count in ctrl(...)");
          return false;
        }
        K = static_cast<unsigned>(N.IntValue);
        if (!expect(QasmTokenKind::RParen, "')' after the control count"))
          return false;
      }
      // The per-modifier count is bounded above, but a deep stack of
      // ctrl(...) modifiers could still overflow the running total;
      // cap the aggregate at the same bound.
      if (ModifierControls > (1u << 24) - K) {
        Diags.error(Mod.Loc, "too many controls across ctrl modifiers "
                             "(limit 16777216)");
        return false;
      }
      ModifierControls += K;
    } else {
      Inverted = !Inverted;
    }
    if (!expect(QasmTokenKind::At, "'@' after a gate modifier"))
      return false;
  }

  QasmToken Name = Lexer.next();
  if (Name.Kind != QasmTokenKind::Identifier) {
    Diags.error(Name.Loc, "expected a gate name");
    return false;
  }
  auto It = spellings().find(Name.Text);
  if (It == spellings().end()) {
    Diags.error(Name.Loc, "unknown or unsupported gate '" + Name.Text + "'");
    return false;
  }
  GateSpelling Spelling = It->second;
  GateKind Kind = Inverted ? inverseKind(Spelling.Kind) : Spelling.Kind;

  std::vector<Qubit> Operands;
  for (;;) {
    Qubit Q = 0;
    if (!operand(Q))
      return false;
    Operands.push_back(Q);
    if (Lexer.peek().Kind != QasmTokenKind::Comma)
      break;
    Lexer.next();
  }
  if (!expect(QasmTokenKind::Semicolon, "';' after the gate"))
    return false;

  unsigned Targets = Spelling.IsSwap ? 2 : 1;
  unsigned Expected = ModifierControls + Spelling.AliasControls + Targets;
  if (Operands.size() != Expected) {
    Diags.error(Loc, "gate '" + Name.Text + "' expects " +
                         std::to_string(Expected) + " operands under " +
                         std::to_string(ModifierControls) +
                         " ctrl modifier control(s), got " +
                         std::to_string(Operands.size()));
    return false;
  }

  std::vector<Qubit> Controls(
      Operands.begin(),
      Operands.begin() + (ModifierControls + Spelling.AliasControls));

  if (Spelling.IsSwap) {
    // swap(a, b) = cx b,a; cx a,b; cx b,a — and a controlled swap needs
    // the controls on the middle CNOT only (the Fredkin identity), so
    // the outer CNOTs stay cheap under deep ctrl stacks.
    Qubit A = Operands[Operands.size() - 2];
    Qubit B = Operands.back();
    if (A == B) {
      Diags.error(Loc, "swap operands must be distinct");
      return false;
    }
    std::vector<Qubit> Middle = Controls;
    Middle.push_back(B);
    return emit(GateKind::X, B, {A}, Loc) &&
           emit(GateKind::X, A, std::move(Middle), Loc) &&
           emit(GateKind::X, B, {A}, Loc);
  }

  return emit(Kind, Operands.back(), std::move(Controls), Loc);
}

bool Reader::statement() {
  const QasmToken &T = Lexer.peek();
  if (T.Kind != QasmTokenKind::Identifier) {
    Diags.error(T.Loc, T.Text.empty()
                           ? std::string("expected a statement")
                           : "expected a statement before '" + T.Text + "'");
    return false;
  }
  if (T.Text == "include")
    return includeLine();
  if (T.Text == "qubit")
    return qubitDecl();
  if (T.Text == "OPENQASM") {
    Diags.error(T.Loc, "OPENQASM version line must be the first statement");
    return false;
  }
  if (T.Text == "bit" || T.Text == "creg" || T.Text == "measure" ||
      T.Text == "reset" || T.Text == "gate" || T.Text == "if" ||
      T.Text == "for" || T.Text == "def" || T.Text == "barrier" ||
      T.Text == "U" || T.Text == "gphase") {
    Diags.error(T.Loc, "'" + T.Text +
                           "' is outside the supported OpenQASM subset "
                           "(see docs/formats.md)");
    return false;
  }
  return gateStatement();
}

std::optional<Circuit> Reader::run() {
  if (Lexer.peek().Kind == QasmTokenKind::Identifier &&
      Lexer.peek().Text == "OPENQASM") {
    if (!versionLine())
      return std::nullopt;
  }
  while (Lexer.peek().Kind != QasmTokenKind::End) {
    if (Lexer.peek().Kind == QasmTokenKind::Invalid)
      return std::nullopt; // The lexer already reported it.
    if (!statement())
      return std::nullopt;
  }
  return std::move(C);
}

} // namespace

std::optional<Circuit> readQasm3(std::string_view Text,
                                 support::DiagnosticEngine &Diags) {
  support::faultAlloc("read/qasm3");
  if (support::faultDiag("read/qasm3", Diags))
    return std::nullopt;
  return Reader(Text, Diags).run();
}

} // namespace spire::interchange

#include "interchange/QasmLexer.h"

#include "support/Governor.h"

#include <cctype>
#include <cstdlib>

namespace spire::interchange {

QasmLexer::QasmLexer(std::string_view Text, support::DiagnosticEngine &Diags)
    : Text(Text), Diags(Diags) {
  Lookahead = lex();
}

QasmToken QasmLexer::next() {
  QasmToken T = Lookahead;
  if (T.Kind != QasmTokenKind::End && T.Kind != QasmTokenKind::Invalid)
    Lookahead = lex();
  return T;
}

void QasmLexer::advance() {
  if (Pos >= Text.size())
    return;
  if (Text[Pos] == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  ++Pos;
}

bool QasmLexer::skipTrivia() {
  for (;;) {
    char C = current();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
      while (current() != '\0' && current() != '\n')
        advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '*') {
      support::SourceLoc Open{Line, Column};
      advance();
      advance();
      while (current() != '\0' &&
             !(current() == '*' && Pos + 1 < Text.size() &&
               Text[Pos + 1] == '/'))
        advance();
      if (current() == '\0') {
        Diags.error(Open, "unterminated block comment");
        return false;
      }
      advance();
      advance();
      continue;
    }
    return true;
  }
}

QasmToken QasmLexer::lex() {
  QasmToken T;
  // Governor checkpoint in the token loop: a tripped budget turns the
  // stream into an Invalid token with the resource-limit diagnostic
  // attached, which stops the reader like any other lex error.
  if (!support::Governor::poll()) {
    if (auto *G = support::Governor::current())
      G->report(Diags);
    T.Kind = QasmTokenKind::Invalid;
    T.Loc = support::SourceLoc{Line, Column};
    return T;
  }
  if (!skipTrivia()) {
    T.Kind = QasmTokenKind::Invalid;
    T.Loc = support::SourceLoc{Line, Column};
    return T;
  }
  T.Loc = support::SourceLoc{Line, Column};
  char C = current();

  if (C == '\0') {
    // End-of-input only at the actual end of the buffer: an embedded
    // NUL byte in the middle of the text would otherwise silently
    // truncate the program (parse "everything before the NUL" and drop
    // the rest), so it is diagnosed like any other stray byte.
    if (Pos >= Text.size()) {
      T.Kind = QasmTokenKind::End;
      return T;
    }
    Diags.error(T.Loc, "NUL byte in input");
    T.Kind = QasmTokenKind::Invalid;
    return T;
  }

  auto symbol = [&](QasmTokenKind K) {
    T.Kind = K;
    T.Text = std::string(1, C);
    advance();
    return T;
  };
  switch (C) {
  case '[':
    return symbol(QasmTokenKind::LBracket);
  case ']':
    return symbol(QasmTokenKind::RBracket);
  case '(':
    return symbol(QasmTokenKind::LParen);
  case ')':
    return symbol(QasmTokenKind::RParen);
  case ',':
    return symbol(QasmTokenKind::Comma);
  case ';':
    return symbol(QasmTokenKind::Semicolon);
  case '@':
    return symbol(QasmTokenKind::At);
  default:
    break;
  }

  if (C == '"') {
    advance();
    while (current() != '\0' && current() != '"' && current() != '\n') {
      T.Text += current();
      advance();
    }
    if (current() != '"') {
      Diags.error(T.Loc, "unterminated string literal");
      T.Kind = QasmTokenKind::Invalid;
      return T;
    }
    advance();
    T.Kind = QasmTokenKind::String;
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    while (std::isdigit(static_cast<unsigned char>(current()))) {
      T.Text += current();
      advance();
    }
    if (current() == '.') {
      // A real literal: only the `OPENQASM 3.0;` version line uses one.
      T.Text += current();
      advance();
      while (std::isdigit(static_cast<unsigned char>(current()))) {
        T.Text += current();
        advance();
      }
      T.Kind = QasmTokenKind::Real;
      return T;
    }
    T.Kind = QasmTokenKind::Integer;
    T.IntValue = std::strtoull(T.Text.c_str(), nullptr, 10);
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
    while (std::isalnum(static_cast<unsigned char>(current())) ||
           current() == '_' || current() == '$') {
      T.Text += current();
      advance();
    }
    T.Kind = QasmTokenKind::Identifier;
    return T;
  }

  Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
  T.Kind = QasmTokenKind::Invalid;
  return T;
}

} // namespace spire::interchange

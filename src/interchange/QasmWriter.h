//===----------------------------------------------------------------------===//
///
/// \file
/// Emission of circuits as OpenQASM 3 — the interchange format that makes
/// compiled Tower programs consumable by mainstream quantum toolchains
/// (Qiskit, Braket, QIRs qasm importers, ...), complementing the `.qc`
/// emitter of the Feynman toolkit dialect (circuit/QcWriter).
///
/// The emitter covers the full circuit::GateKind set:
///
///   X    0 controls `x`, 1 `cx`, 2 `ccx`, k>2 `ctrl(k) @ x`
///   H    0 controls `h`, 1 `ch`,          k>1 `ctrl(k) @ h`
///   Z    0 controls `z`, 1 `cz`,          k>1 `ctrl(k) @ z`
///   S/Sdg/T/Tdg   `s`/`sdg`/`t`/`tdg`, controls via `ctrl(k) @`
///
/// using only `stdgates.inc` names plus the standard `ctrl` modifier, so
/// the output needs no custom gate definitions. Qubits live in a single
/// register `q[N]`; the wire layout, when provided, is recorded as
/// comments (`// input xs: q[0..7]`) since OpenQASM has no standard
/// marker for reversible-circuit I/O registers.
///
/// readQasm3 maps every spelling emitted here back to the exact gate it
/// came from, so write -> read is the structural identity and the text
/// form is a fixpoint (QasmRoundTrip tests pin both).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_QASMWRITER_H
#define SPIRE_INTERCHANGE_QASMWRITER_H

#include "circuit/Compiler.h"

#include <string>

namespace spire::interchange {

/// Renders a circuit as OpenQASM 3 text. The layout, when provided, is
/// emitted as `// input` / `// output` comments over the `q` register.
std::string writeQasm3(const circuit::Circuit &C,
                       const circuit::CircuitLayout *Layout = nullptr);

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_QASMWRITER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent reader for the OpenQASM 3 subset the compiler
/// emits (interchange/QasmWriter) plus the standard-library aliases other
/// toolchains commonly produce — the inverse direction of the interchange
/// subsystem, so externally produced circuits can be legalized, optimized
/// by the qopt passes, simulated, and re-emitted in either format.
///
/// Accepted grammar (statements end in `;`; `//` and `/* */` comments):
///
///   program   := version? statement*
///   version   := 'OPENQASM' (INT | REAL) ';'         // must be major 3
///   statement := 'include' STRING ';'                // recorded, not read
///              | 'qubit' ('[' INT ']')? IDENT ';'    // registers flatten
///              | modifier* gate operand (',' operand)* ';'
///   modifier  := 'ctrl' ('(' INT ')')? '@'           // prepends controls
///              | 'inv' '@'                           // s<->sdg, t<->tdg
///   gate      := 'x'|'h'|'s'|'sdg'|'t'|'tdg'|'z'     // base gates
///              | 'cx'|'ccx'|'cz'|'ch'                // alias + controls
///              | 'swap'|'cswap'                      // lowered to CNOTs
///   operand   := IDENT ('[' INT ']')?                // whole 1-qubit reg ok
///
/// Multiple `qubit` declarations are flattened into one contiguous index
/// space in declaration order. `swap`/`cswap` (and `ctrl @ swap`) are
/// lowered to the standard 3-CNOT / Fredkin form since the circuit IR has
/// no swap primitive. Everything else of OpenQASM 3 (measurement, classical
/// control, parametric gates, `U`, broadcasting over registers) is out of
/// scope and reported as a diagnostic, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_INTERCHANGE_QASMREADER_H
#define SPIRE_INTERCHANGE_QASMREADER_H

#include "circuit/Gate.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>

namespace spire::interchange {

/// Parses OpenQASM 3 text into a circuit. Returns std::nullopt and
/// reports diagnostics on malformed or out-of-subset input.
std::optional<circuit::Circuit> readQasm3(std::string_view Text,
                                          support::DiagnosticEngine &Diags);

} // namespace spire::interchange

#endif // SPIRE_INTERCHANGE_QASMREADER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-sliced batch simulation of classical reversible (X-only) circuits:
/// 64 basis states per machine word, one `uint64_t` lane per wire.
///
/// Every compiled Tower program without H is a permutation of basis
/// states, and its gates are X with 0..k controls. On that fragment a
/// gate's transfer function is a handful of word-wide AND/XOR ops applied
/// to whole lanes, so one pass over the circuit advances 64 states at
/// once — the backend that turns sampled equivalence checks into
/// exhaustive sweeps at realistic qubit counts (all 2^n states of an
/// n <= 20 qubit circuit are just 2^n/64 blocks).
///
/// The simulator compiles a `circuit::Circuit` into a flat tape of
/// `BitOp`s with pre-resolved wire indices: no per-gate ControlList walk,
/// no heap-allocated operands, just straight-line bit ops over a dense
/// 6-op ISA (flip / xor / and-xor / accumulator chain / lane swap). The
/// tape is deliberately shaped like a JIT IR — each op maps to one or two
/// x64 instructions — so a later native-code backend can translate it
/// directly (the CirX64 route of ROADMAP item 3).
///
/// Validation: `laneAgreesWithBasis` replays any one bit position of a
/// finished block through the gate-at-a-time `sim::runBasis` interpreter
/// and compares lane-for-lane; the equivalence checker's --verify-each
/// hook and the fuzz suite's lane-agreement oracle both use it.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SIM_BITSLICED_H
#define SPIRE_SIM_BITSLICED_H

#include "circuit/Gate.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace spire::sim {

/// Basis states per lane word (one block = one state per bit).
constexpr unsigned LaneBits = 64;

/// One op of the compiled bit-parallel tape. Operand meaning by kind:
///   Flip     L[T] = ~L[T]                       (uncontrolled X)
///   Cnot     L[T] ^= L[A]                       (singly controlled X)
///   Toffoli  L[T] ^= L[A] & L[B]                (doubly controlled X)
///   AndInit  Acc  = L[A] & L[B]                 (MCX prologue)
///   AndFold  Acc &= L[A]                        (MCX control fold)
///   XorAcc   L[T] ^= Acc                        (MCX epilogue)
///   Swap     swap(L[A], L[B])                   (fused CNOT triple)
struct BitOp {
  enum Kind : uint8_t { Flip, Cnot, Toffoli, AndInit, AndFold, XorAcc, Swap };
  uint8_t K = Flip;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t T = 0;
};

/// Rectangular lane storage for NumBlocks x 64 basis states over
/// NumQubits wires. Block-major: block b is NumQubits contiguous words,
/// lane q of block b holds qubit q of states [64b, 64b+64) — bit i of
/// the word is state 64b+i.
class BatchState {
public:
  BatchState(unsigned NumQubits, uint64_t NumBlocks)
      : Qubits(NumQubits), Blocks(NumBlocks),
        Lanes(static_cast<size_t>(NumQubits) * NumBlocks, 0) {}

  unsigned numQubits() const { return Qubits; }
  uint64_t numBlocks() const { return Blocks; }
  uint64_t numStates() const { return Blocks * LaneBits; }

  uint64_t *block(uint64_t B) { return Lanes.data() + B * Qubits; }
  const uint64_t *block(uint64_t B) const { return Lanes.data() + B * Qubits; }

  bool get(uint64_t State, unsigned Q) const {
    return (block(State / LaneBits)[Q] >> (State % LaneBits)) & 1;
  }
  void set(uint64_t State, unsigned Q, bool V) {
    uint64_t Mask = uint64_t(1) << (State % LaneBits);
    uint64_t &Lane = block(State / LaneBits)[Q];
    Lane = V ? (Lane | Mask) : (Lane & ~Mask);
  }

  /// Loads block `B` with the consecutive basis states Base..Base+63
  /// over the low `Width` wires (state bits above Width are ignored;
  /// wires at or above Width stay |0>). Base must be block-aligned.
  void loadCounter(uint64_t B, uint64_t Base, unsigned Width);

  /// Loads block `B` with 64 independent uniformly random states over
  /// the low `Width` wires (SplitMix64 stream; wires above stay |0>).
  void loadRandom(uint64_t B, unsigned Width, uint64_t &Rng);

private:
  unsigned Qubits;
  uint64_t Blocks;
  std::vector<uint64_t> Lanes;
};

/// Fills one raw lane block (`NumQubits` words at `L`) exactly like
/// BatchState::loadCounter / loadRandom — for callers that stream blocks
/// through scratch buffers instead of materializing a whole BatchState.
void loadCounterBlock(uint64_t *L, unsigned NumQubits, uint64_t Base,
                      unsigned Width);
void loadRandomBlock(uint64_t *L, unsigned NumQubits, unsigned Width,
                     uint64_t &Rng);

/// A batch evaluator for one X-only circuit: compile once, then run the
/// flat op tape over any number of 64-state blocks.
class BitSlicedSimulator {
public:
  /// Compiles the circuit into a flat op tape. Returns std::nullopt when
  /// the circuit contains non-classical gates (H or phases) — callers
  /// fall back to the state-vector path.
  static std::optional<BitSlicedSimulator>
  compile(const circuit::Circuit &C);

  unsigned numQubits() const { return NumQubits; }
  /// Gates of the source circuit (throughput accounting).
  size_t numGates() const { return NumGates; }
  /// Ops of the compiled tape (== gates + (k-1) extra per k>2-control
  /// MCX, minus fused SWAP triples).
  size_t numOps() const { return Tape.size(); }
  const std::vector<BitOp> &tape() const { return Tape; }

  /// Advances one 64-state block in place: `L` points at NumQubits lane
  /// words (qubit q's lane at L[q]).
  void runBlock(uint64_t *L) const;

  /// Advances every block of `B` in place. B must span >= numQubits()
  /// wires; wires past the batch's width do not exist, so the batch must
  /// be at least as wide as the circuit.
  void run(BatchState &B) const;

private:
  BitSlicedSimulator() = default;

  unsigned NumQubits = 0;
  size_t NumGates = 0;
  std::vector<BitOp> Tape;
};

/// Lane-agreement oracle: extracts the basis state at bit position `Bit`
/// of the input block `In` (NumQubits lane words), replays it through the
/// gate-at-a-time sim::runBasis interpreter on `C`, and compares the
/// result wire-for-wire against the same bit of the finished block `Out`.
/// Returns true when every wire agrees — the cross-check that validates
/// the bit-sliced backend against the interpreter it replaces.
bool laneAgreesWithBasis(const circuit::Circuit &C, const uint64_t *In,
                         const uint64_t *Out, unsigned Bit);

} // namespace spire::sim

#endif // SPIRE_SIM_BITSLICED_H

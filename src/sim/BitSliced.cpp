#include "sim/BitSliced.h"

#include "sim/Simulator.h"
#include "support/Hash.h"

#include <cassert>

using namespace spire::circuit;

namespace spire::sim {

namespace {

/// Lane q < 6 of a block-aligned counter sweep is a fixed pattern: bit i
/// of the lane is bit q of the in-block state index i.
constexpr uint64_t CounterLane[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

} // namespace

void loadCounterBlock(uint64_t *L, unsigned NumQubits, uint64_t Base,
                      unsigned Width) {
  assert(Base % LaneBits == 0 && "counter base must be block-aligned");
  for (unsigned Q = 0; Q != NumQubits; ++Q) {
    if (Q >= Width)
      L[Q] = 0;
    else if (Q < 6)
      L[Q] = CounterLane[Q];
    else
      L[Q] = Q < 64 && ((Base >> Q) & 1) ? ~uint64_t(0) : 0;
  }
}

void loadRandomBlock(uint64_t *L, unsigned NumQubits, unsigned Width,
                     uint64_t &Rng) {
  for (unsigned Q = 0; Q != NumQubits; ++Q)
    L[Q] = Q < Width ? support::splitMix64(Rng) : 0;
}

void BatchState::loadCounter(uint64_t B, uint64_t Base, unsigned Width) {
  loadCounterBlock(block(B), Qubits, Base, Width);
}

void BatchState::loadRandom(uint64_t B, unsigned Width, uint64_t &Rng) {
  loadRandomBlock(block(B), Qubits, Width, Rng);
}

std::optional<BitSlicedSimulator>
BitSlicedSimulator::compile(const Circuit &C) {
  BitSlicedSimulator Sim;
  Sim.NumQubits = C.NumQubits;
  Sim.NumGates = C.Gates.size();
  Sim.Tape.reserve(C.Gates.size());

  // The three-CNOT swap idiom compiles to one lane exchange.
  auto isCnot = [](const Gate &G, Qubit Target, Qubit Control) {
    return G.Kind == GateKind::X && G.numControls() == 1 &&
           G.Target == Target && G.Controls[0] == Control;
  };

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    const Gate &G = C.Gates[I];
    if (G.Kind != GateKind::X)
      return std::nullopt; // H / phase gates: not classical reversible.

    if (G.numControls() == 1 && I + 2 < C.Gates.size()) {
      Qubit T = G.Target, A = G.Controls[0];
      if (isCnot(C.Gates[I + 1], A, T) && isCnot(C.Gates[I + 2], T, A)) {
        Sim.Tape.push_back({BitOp::Swap, T, A, 0});
        I += 2;
        continue;
      }
    }

    switch (G.numControls()) {
    case 0:
      Sim.Tape.push_back({BitOp::Flip, 0, 0, G.Target});
      break;
    case 1:
      Sim.Tape.push_back({BitOp::Cnot, G.Controls[0], 0, G.Target});
      break;
    case 2:
      Sim.Tape.push_back(
          {BitOp::Toffoli, G.Controls[0], G.Controls[1], G.Target});
      break;
    default:
      Sim.Tape.push_back(
          {BitOp::AndInit, G.Controls[0], G.Controls[1], 0});
      for (unsigned K = 2; K != G.numControls(); ++K)
        Sim.Tape.push_back({BitOp::AndFold, G.Controls[K], 0, 0});
      Sim.Tape.push_back({BitOp::XorAcc, 0, 0, G.Target});
      break;
    }
  }
  return Sim;
}

void BitSlicedSimulator::runBlock(uint64_t *L) const {
  uint64_t Acc = 0;
  for (const BitOp &Op : Tape) {
    switch (Op.K) {
    case BitOp::Flip:
      L[Op.T] = ~L[Op.T];
      break;
    case BitOp::Cnot:
      L[Op.T] ^= L[Op.A];
      break;
    case BitOp::Toffoli:
      L[Op.T] ^= L[Op.A] & L[Op.B];
      break;
    case BitOp::AndInit:
      Acc = L[Op.A] & L[Op.B];
      break;
    case BitOp::AndFold:
      Acc &= L[Op.A];
      break;
    case BitOp::XorAcc:
      L[Op.T] ^= Acc;
      break;
    case BitOp::Swap: {
      uint64_t Tmp = L[Op.A];
      L[Op.A] = L[Op.B];
      L[Op.B] = Tmp;
      break;
    }
    }
  }
}

void BitSlicedSimulator::run(BatchState &B) const {
  assert(B.numQubits() >= NumQubits &&
         "batch narrower than the compiled circuit");
  for (uint64_t I = 0; I != B.numBlocks(); ++I)
    runBlock(B.block(I));
}

bool laneAgreesWithBasis(const Circuit &C, const uint64_t *In,
                         const uint64_t *Out, unsigned Bit) {
  assert(Bit < LaneBits && "bit position outside the lane word");
  BitString S(C.NumQubits);
  for (unsigned Q = 0; Q != C.NumQubits; ++Q)
    S.set(Q, (In[Q] >> Bit) & 1);
  runBasis(C, S);
  for (unsigned Q = 0; Q != C.NumQubits; ++Q)
    if (S.get(Q) != (((Out[Q] >> Bit) & 1) != 0))
      return false;
  return true;
}

} // namespace spire::sim

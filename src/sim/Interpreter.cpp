#include "sim/Interpreter.h"

#include "support/Governor.h"

#include <algorithm>
#include <cassert>

using namespace spire::ir;

namespace spire::sim {

std::string MachineState::str() const {
  // Presentation boundary: materialize spellings and sort by them, so
  // the dump does not depend on global interning order (Regs itself is
  // ordered by symbol id).
  std::vector<std::pair<std::string, uint64_t>> Sorted;
  Sorted.reserve(Regs.size());
  for (const auto &[Name, Value] : Regs)
    Sorted.emplace_back(Name.str(), Value);
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out = "regs {";
  for (const auto &[Name, Value] : Sorted)
    Out += " " + Name + "=" + std::to_string(Value);
  Out += " } mem {";
  for (size_t A = 1; A < Mem.size(); ++A)
    Out += " [" + std::to_string(A) + "]=" + std::to_string(Mem[A]);
  Out += " }";
  return Out;
}

uint64_t Interpreter::maskOf(const ast::Type *Ty) const {
  unsigned W = widthOf(Ty);
  assert(W <= 64 && "values wider than 64 bits are unsupported");
  return W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
}

uint64_t Interpreter::evalAtom(const Atom &A,
                               const MachineState &State) const {
  if (A.isConst())
    return A.ConstBits & maskOf(A.Ty);
  auto It = State.Regs.find(A.Var);
  uint64_t V = It == State.Regs.end() ? 0 : It->second;
  return V & maskOf(A.Ty);
}

uint64_t Interpreter::evalExpr(const CoreExpr &E,
                               const MachineState &State) const {
  switch (E.K) {
  case CoreExpr::Kind::AtomE:
    return evalAtom(E.A, State);

  case CoreExpr::Kind::Pair: {
    uint64_t A = evalAtom(E.A, State);
    uint64_t B = evalAtom(E.B, State);
    return A | (B << widthOf(E.A.Ty));
  }

  case CoreExpr::Kind::Proj: {
    const ast::Type *BaseTy = Program.Types->resolveTopLevel(E.A.Ty);
    assert(BaseTy->isPair() && "projection from non-pair");
    uint64_t V = evalAtom(E.A, State);
    unsigned W1 = widthOf(BaseTy->first());
    if (E.ProjIndex == 1)
      return V & maskOf(BaseTy->first());
    return (V >> W1) & maskOf(BaseTy->second());
  }

  case CoreExpr::Kind::Unary: {
    uint64_t A = evalAtom(E.A, State);
    if (E.UOp == ast::UnaryOp::Not)
      return (A ^ 1) & 1;
    return A != 0 ? 1 : 0; // test
  }

  case CoreExpr::Kind::Binary: {
    uint64_t A = evalAtom(E.A, State);
    uint64_t B = evalAtom(E.B, State);
    uint64_t Mask = maskOf(E.A.Ty);
    switch (E.BOp) {
    case ast::BinaryOp::And:
      return A & B & 1;
    case ast::BinaryOp::Or:
      return (A | B) & 1;
    case ast::BinaryOp::Add:
      return (A + B) & Mask;
    case ast::BinaryOp::Sub:
      return (A - B) & Mask;
    case ast::BinaryOp::Mul:
      return (A * B) & Mask;
    case ast::BinaryOp::Eq:
      return A == B ? 1 : 0;
    case ast::BinaryOp::Ne:
      return A != B ? 1 : 0;
    case ast::BinaryOp::Lt:
      return A < B ? 1 : 0;
    }
    return 0;
  }
  }
  return 0;
}

bool Interpreter::execAssign(const CoreStmt &S, MachineState &State) {
  uint64_t V = evalExpr(S.E, State);
  State.Regs[S.Name] ^= V & maskOf(S.Ty);
  ++DeclCount[S.Name];
  return true;
}

bool Interpreter::execUnAssign(const CoreStmt &S, MachineState &State) {
  uint64_t V = evalExpr(S.E, State);
  uint64_t &R = State.Regs[S.Name];
  R ^= V & maskOf(S.Ty);
  // The zero invariant applies only when the outermost declaration is
  // removed; intermediate re-declaration layers may hold other layers'
  // contributions (e.g. reversed conditional re-declarations).
  if (--DeclCount[S.Name] > 0)
    return true;
  DeclCount.erase(S.Name);
  if (R != 0) {
    Error = "un-assignment of '" + S.Name.str() +
            "' did not restore zero (value " + std::to_string(R) + ")";
    return false;
  }
  State.Regs.erase(S.Name);
  return true;
}

bool Interpreter::execStmts(const CoreStmtList &Stmts, MachineState &State) {
  // Explicit worklist: each frame iterates one statement list, forward
  // or reversed. A reversed frame executes inverses in place — I[s1;s2]
  // = I[s2];I[s1] via backward iteration, I[x <- e] = x -> e and vice
  // versa — so a with-block's uncomputation leg is just its body frame
  // with Rev set, with no reverseStmts() clone and no C++ recursion.
  struct Frame {
    const CoreStmtList *List;
    size_t Pos;
    bool Rev;
  };
  std::vector<Frame> Stack;
  Stack.push_back({&Stmts, 0, false});

  while (!Stack.empty()) {
    // Governor checkpoint: a tripped budget stops the simulation with
    // an explicit error instead of running an unbounded program.
    if (!support::Governor::poll()) {
      Error = "simulation stopped by resource limit";
      return false;
    }
    Frame &F = Stack.back();
    if (F.Pos == F.List->size()) {
      Stack.pop_back();
      continue;
    }
    const CoreStmt &S =
        F.Rev ? *(*F.List)[F.List->size() - 1 - F.Pos] : *(*F.List)[F.Pos];
    const bool Rev = F.Rev;
    ++F.Pos; // F may dangle after a push below; advance first.

    switch (S.K) {
    case CoreStmt::Kind::Skip:
      break;

    case CoreStmt::Kind::Assign:
      if (!(Rev ? execUnAssign(S, State) : execAssign(S, State)))
        return false;
      break;

    case CoreStmt::Kind::UnAssign:
      if (!(Rev ? execAssign(S, State) : execUnAssign(S, State)))
        return false;
      break;

    case CoreStmt::Kind::If: {
      // I[if x { s }] = if x { I[s] }: same condition (the body may not
      // modify it), body direction-inherited.
      auto It = State.Regs.find(S.Name);
      bool Cond = It != State.Regs.end() && (It->second & 1);
      if (Cond)
        Stack.push_back({&S.Body, 0, Rev});
      break;
    }

    case CoreStmt::Kind::With:
      // Forward: body; do; I[body]. Reversed (I[with{a}do{b}] =
      // with{a}do{I[b]}): a; I[b]; I[a]. Both orders are "body forward,
      // do-body direction-inherited, body reversed", pushed LIFO.
      Stack.push_back({&S.Body, 0, true});
      Stack.push_back({&S.DoBody, 0, Rev});
      Stack.push_back({&S.Body, 0, false});
      break;

    case CoreStmt::Kind::Swap: {
      uint64_t A = State.Regs[S.Name];
      uint64_t B = State.Regs[S.Name2];
      State.Regs[S.Name] = B;
      State.Regs[S.Name2] = A;
      break;
    }

    case CoreStmt::Kind::MemSwap: {
      uint64_t Address = State.Regs[S.Name] & maskOf(S.Ty);
      if (Address == 0 || Address >= State.Mem.size())
        break; // Null or out-of-range dereference is a no-op.
      unsigned SwapBits = std::min(widthOf(S.Ty2), CellBits);
      uint64_t Mask = SwapBits >= 64 ? ~uint64_t(0)
                                     : ((uint64_t(1) << SwapBits) - 1);
      uint64_t &Cell = State.Mem[Address];
      uint64_t &Reg = State.Regs[S.Name2];
      uint64_t CellLow = Cell & Mask, RegLow = Reg & Mask;
      Cell = (Cell & ~Mask) | RegLow;
      Reg = (Reg & ~Mask) | CellLow;
      break;
    }

    case CoreStmt::Kind::Hadamard:
      Error = "interpreter cannot execute H(" + S.Name.str() +
              "); use the state-vector simulator";
      return false;
    }
  }
  return true;
}

bool Interpreter::run(MachineState &State) {
  if (State.Mem.size() != Config.HeapCells + 1)
    State.Mem.resize(Config.HeapCells + 1, 0);
  return execStmts(Program.Body, State);
}

uint64_t Interpreter::output(const MachineState &State) const {
  auto It = State.Regs.find(Program.OutputVar);
  return It == State.Regs.end() ? 0 : It->second;
}

BitString encodeState(const MachineState &State,
                      const circuit::CircuitLayout &Layout) {
  BitString Bits(Layout.NumQubits);
  for (const auto &[Name, Range] : Layout.Inputs) {
    auto It = State.Regs.find(Name);
    if (It != State.Regs.end())
      Bits.write(Range.Offset, Range.Width, It->second);
  }
  for (unsigned A = 1; A <= Layout.HeapCells; ++A) {
    if (A < State.Mem.size()) {
      circuit::BitRange Cell = Layout.cell(A);
      Bits.write(Cell.Offset, Cell.Width, State.Mem[A]);
    }
  }
  return Bits;
}

MachineState decodeState(const BitString &Bits,
                         const circuit::CircuitLayout &Layout,
                         const std::vector<std::string> &Names) {
  MachineState State = MachineState::make(Layout.HeapCells);
  for (const std::string &Name : Names) {
    auto It = Layout.Inputs.find(Name);
    if (It != Layout.Inputs.end())
      State.Regs[Name] = Bits.read(It->second.Offset, It->second.Width);
  }
  for (unsigned A = 1; A <= Layout.HeapCells; ++A) {
    circuit::BitRange Cell = Layout.cell(A);
    State.Mem[A] = Bits.read(Cell.Offset, Cell.Width);
  }
  return State;
}

} // namespace spire::sim

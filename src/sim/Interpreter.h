//===----------------------------------------------------------------------===//
///
/// \file
/// Classical reversible interpreter for core-IR programs.
///
/// Implements the circuit semantics of Appendix B.2 on classical machine
/// states |R, M> directly at the IR level: a register file mapping
/// variables to values and a qRAM memory mapping addresses to values.
/// Re-definition XORs (Section 4); null dereference is a no-op. H is not
/// supported (programs with H are validated through the state-vector
/// simulator instead).
///
/// The interpreter is the reference point for three validation layers:
/// optimizer soundness (Theorems 6.3/6.5: original vs optimized programs
/// agree on all machine states), backend correctness (interpreter vs
/// compiled circuit under runBasis), and benchmark functional tests
/// (`length` really computes the length of an encoded list).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SIM_INTERPRETER_H
#define SPIRE_SIM_INTERPRETER_H

#include "circuit/Compiler.h"
#include "ir/Core.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace spire::sim {

/// A classical machine state: register file plus memory. Memory cell
/// addresses are 1-based; index 0 of Mem is unused. Registers key on
/// interned Symbols (spelling-level callers — tests, spirec --run —
/// keep writing `S.Regs["xs"]`; the implicit intern happens once per
/// site, and every interpreter step is then a u32-keyed lookup).
struct MachineState {
  std::map<ir::Symbol, uint64_t> Regs;
  std::vector<uint64_t> Mem; ///< size HeapCells + 1.

  static MachineState make(unsigned HeapCells) {
    MachineState S;
    S.Mem.assign(HeapCells + 1, 0);
    return S;
  }

  friend bool operator==(const MachineState &A, const MachineState &B) {
    return A.Regs == B.Regs && A.Mem == B.Mem;
  }
  std::string str() const;
};

/// Executes a core program on a machine state. Unbound variables read as
/// zero-initialized registers (consistent with the circuit, where every
/// register starts at |0>).
///
/// The statement walk is an explicit worklist machine (the repo's
/// standard recursion discipline): each frame iterates one statement
/// list either forward or reversed, and a reversed frame executes each
/// primitive's inverse in place (Assign <-> UnAssign; the rest are
/// self-inverse), so With-block uncomputation needs neither C++
/// recursion nor a materialized I[s] clone. Depth-100k with-nesting
/// runs in O(1) C++ stack (pinned by interpreter_test).
class Interpreter {
public:
  Interpreter(const ir::CoreProgram &Program,
              const circuit::TargetConfig &Config)
      : Program(Program), Config(Config),
        CellBits(circuit::cellBitsFor(Program, Config)) {}

  /// Runs the whole program body on `State` in place. Returns false (with
  /// Error set) on an unsupported construct (H) or a failed un-assignment
  /// (the value did not restore to zero), which indicates a compiler bug.
  bool run(MachineState &State);

  /// Value of the output variable after run().
  uint64_t output(const MachineState &State) const;

  const std::string &error() const { return Error; }

private:
  bool execStmts(const ir::CoreStmtList &Stmts, MachineState &State);
  bool execAssign(const ir::CoreStmt &S, MachineState &State);
  bool execUnAssign(const ir::CoreStmt &S, MachineState &State);
  uint64_t evalExpr(const ir::CoreExpr &E, const MachineState &State) const;
  uint64_t evalAtom(const ir::Atom &A, const MachineState &State) const;
  uint64_t maskOf(const ast::Type *Ty) const;
  unsigned widthOf(const ast::Type *Ty) const {
    return Program.Types->bitWidth(Ty, Config.WordBits);
  }

  const ir::CoreProgram &Program;
  circuit::TargetConfig Config;
  unsigned CellBits;
  std::string Error;
  /// Live re-declaration depth per variable (see Interpreter.cpp).
  std::unordered_map<ir::Symbol, unsigned> DeclCount;
};

/// Encodes a machine state onto the compiled circuit's qubit layout
/// (inputs and memory; all other qubits zero).
BitString encodeState(const MachineState &State,
                      const circuit::CircuitLayout &Layout);

/// Reads the register/memory contents back from circuit qubits. Only the
/// given named registers are decoded.
MachineState decodeState(const BitString &Bits,
                         const circuit::CircuitLayout &Layout,
                         const std::vector<std::string> &Names);

} // namespace spire::sim

#endif // SPIRE_SIM_INTERPRETER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Circuit simulation used to validate the backend and the optimizers.
///
/// Two levels:
///  * runBasis: classical reversible simulation of X-only circuits (every
///    compiled Tower program without H is a permutation of basis states),
///    fast enough for whole-benchmark validation.
///  * StateVector: sparse amplitude simulation supporting H, CH, and the
///    phase gates, for small circuits (decomposition correctness tests).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_SIM_SIMULATOR_H
#define SPIRE_SIM_SIMULATOR_H

#include "circuit/Gate.h"

#include <complex>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace spire::sim {

/// A classical basis state over a fixed number of qubits.
class BitString {
public:
  BitString() = default;
  explicit BitString(unsigned NumQubits)
      : Words((NumQubits + 63) / 64, 0) {}

  bool get(unsigned Q) const {
    return (Words[Q / 64] >> (Q % 64)) & 1;
  }
  void set(unsigned Q, bool V) {
    uint64_t Mask = uint64_t(1) << (Q % 64);
    if (V)
      Words[Q / 64] |= Mask;
    else
      Words[Q / 64] &= ~Mask;
  }
  void flip(unsigned Q) { Words[Q / 64] ^= uint64_t(1) << (Q % 64); }

  /// Reads `Width` bits starting at `Offset` as an integer (Width <= 64).
  uint64_t read(unsigned Offset, unsigned Width) const;
  /// Writes `Width` bits starting at `Offset` (Width <= 64).
  void write(unsigned Offset, unsigned Width, uint64_t Value);

  friend bool operator<(const BitString &A, const BitString &B) {
    return A.Words < B.Words;
  }
  friend bool operator==(const BitString &A, const BitString &B) {
    return A.Words == B.Words;
  }

  /// Mixes the words into a 64-bit hash (for the sparse-state map).
  uint64_t hash() const;

private:
  std::vector<uint64_t> Words;
};

struct BitStringHash {
  size_t operator()(const BitString &B) const {
    return static_cast<size_t>(B.hash());
  }
};

/// Runs an X-only circuit on a basis state in place. Asserts the circuit
/// contains no H or phase gates (phase gates would be unobservable on a
/// basis state only up to global phase, so they are rejected to keep the
/// check strict).
void runBasis(const circuit::Circuit &C, BitString &State);

/// Runs any circuit (X, H, CH, T, Tdg, S, Sdg, Z) on a basis state,
/// returning the sparse final state. Amplitudes below 1e-12 are pruned.
/// The state is a hashed map (not an ordered one), so per-gate updates
/// are O(branches) expected — equivalence checking stays usable on the
/// wide states the interchange round-trip job simulates.
using Amplitude = std::complex<double>;
using SparseState = std::unordered_map<BitString, Amplitude, BitStringHash>;

SparseState runState(const circuit::Circuit &C, const BitString &Initial);
SparseState runState(const circuit::Circuit &C, const SparseState &Initial);

/// True when the two states are equal up to a global phase and 1e-9
/// tolerance.
bool statesEquivalent(const SparseState &A, const SparseState &B);

} // namespace spire::sim

#endif // SPIRE_SIM_SIMULATOR_H

#include "sim/Simulator.h"

#include "support/Hash.h"

#include <cassert>
#include <cmath>

using namespace spire::circuit;

namespace spire::sim {

uint64_t BitString::read(unsigned Offset, unsigned Width) const {
  assert(Width <= 64 && "read wider than 64 bits");
  uint64_t Value = 0;
  for (unsigned I = 0; I != Width; ++I)
    if (get(Offset + I))
      Value |= uint64_t(1) << I;
  return Value;
}

void BitString::write(unsigned Offset, unsigned Width, uint64_t Value) {
  assert(Width <= 64 && "write wider than 64 bits");
  for (unsigned I = 0; I != Width; ++I)
    set(Offset + I, (Value >> I) & 1);
}

uint64_t BitString::hash() const {
  // The SplitMix64 finalizer folded over the words.
  uint64_t H = 0x9e3779b97f4a7c15ull ^ (Words.size() << 1);
  for (uint64_t W : Words)
    H = support::mix64(W + H);
  return H;
}

static bool controlsActive(const Gate &G, const BitString &S) {
  for (Qubit C : G.Controls)
    if (!S.get(C))
      return false;
  return true;
}

void runBasis(const Circuit &C, BitString &State) {
  for (const Gate &G : C.Gates) {
    assert(G.Kind == GateKind::X &&
           "runBasis requires a classical reversible (X-only) circuit");
    if (controlsActive(G, State))
      State.flip(G.Target);
  }
}

namespace {

constexpr double Prune = 1e-12;

void applyGate(const Gate &G, SparseState &State) {
  switch (G.Kind) {
  case GateKind::X: {
    SparseState Next;
    for (auto &[Basis, Amp] : State) {
      BitString B = Basis;
      if (controlsActive(G, B))
        B.flip(G.Target);
      Next[B] += Amp;
    }
    State = std::move(Next);
    return;
  }
  case GateKind::H: {
    const double InvSqrt2 = 1.0 / std::sqrt(2.0);
    SparseState Next;
    for (auto &[Basis, Amp] : State) {
      if (!controlsActive(G, Basis)) {
        Next[Basis] += Amp;
        continue;
      }
      bool Bit = Basis.get(G.Target);
      BitString Flipped = Basis;
      Flipped.flip(G.Target);
      // |0> -> (|0>+|1>)/sqrt2 ; |1> -> (|0>-|1>)/sqrt2.
      Next[Basis] += Amp * (Bit ? -InvSqrt2 : InvSqrt2);
      Next[Flipped] += Amp * InvSqrt2;
    }
    for (auto It = Next.begin(); It != Next.end();) {
      if (std::abs(It->second) < Prune)
        It = Next.erase(It);
      else
        ++It;
    }
    State = std::move(Next);
    return;
  }
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::Z: {
    double Angle = 0;
    switch (G.Kind) {
    case GateKind::T:
      Angle = M_PI / 4;
      break;
    case GateKind::Tdg:
      Angle = -M_PI / 4;
      break;
    case GateKind::S:
      Angle = M_PI / 2;
      break;
    case GateKind::Sdg:
      Angle = -M_PI / 2;
      break;
    default:
      Angle = M_PI;
      break;
    }
    Amplitude Phase(std::cos(Angle), std::sin(Angle));
    for (auto &[Basis, Amp] : State)
      if (controlsActive(G, Basis) && Basis.get(G.Target))
        Amp *= Phase;
    return;
  }
  }
}

} // namespace

SparseState runState(const Circuit &C, const SparseState &Initial) {
  SparseState State = Initial;
  for (const Gate &G : C.Gates)
    applyGate(G, State);
  return State;
}

SparseState runState(const Circuit &C, const BitString &Initial) {
  SparseState State;
  State[Initial] = Amplitude(1.0, 0.0);
  return runState(C, State);
}

bool statesEquivalent(const SparseState &A, const SparseState &B) {
  constexpr double Tol = 1e-9;
  // Find the global phase from the largest amplitude of A.
  const BitString *Ref = nullptr;
  double Best = 0;
  for (const auto &[Basis, Amp] : A) {
    if (std::abs(Amp) > Best) {
      Best = std::abs(Amp);
      Ref = &Basis;
    }
  }
  if (!Ref) {
    for (const auto &[Basis, Amp] : B)
      if (std::abs(Amp) > Tol)
        return false;
    return true;
  }
  auto ItB = B.find(*Ref);
  if (ItB == B.end() || std::abs(ItB->second) < Tol)
    return false;
  Amplitude Phase = ItB->second / A.at(*Ref);
  if (std::abs(std::abs(Phase) - 1.0) > Tol)
    return false;

  auto Check = [&](const SparseState &X, const SparseState &Y,
                   bool ApplyPhase) {
    for (const auto &[Basis, Amp] : X) {
      if (std::abs(Amp) < Tol)
        continue;
      auto It = Y.find(Basis);
      Amplitude Expect = ApplyPhase ? Amp * Phase : Amp;
      Amplitude Actual =
          It == Y.end() ? Amplitude(0, 0)
                        : (ApplyPhase ? It->second : It->second);
      if (ApplyPhase) {
        if (It == Y.end() || std::abs(It->second - Amp * Phase) > Tol)
          return false;
      } else {
        if (It == Y.end() || std::abs(It->second * Phase - Amp) > Tol)
          return false;
      }
      (void)Expect;
      (void)Actual;
    }
    return true;
  };
  return Check(A, B, true) && Check(B, A, false);
}

} // namespace spire::sim

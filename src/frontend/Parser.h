//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Tower surface language.
///
/// Grammar (informal):
///   program   := (typedecl | fundecl)*
///   typedecl  := 'type' IDENT '=' type ';'
///   fundecl   := 'fun' IDENT ('[' IDENT ']')? '(' params? ')'
///                '{' stmt* 'return' IDENT ';' '}'
///   stmt      := 'let' IDENT ('<-' | '->') expr ';'
///              | IDENT '<->' IDENT ';' | '*' IDENT '<->' IDENT ';'
///              | 'if' expr block ('else' (block | if-stmt))?
///              | 'with' block 'do' block | 'h' '(' IDENT ')' ';' | 'skip' ';'
///   expr      := standard precedence: || < && < (==,!=,<) < (+,-) < *
///                < unary (not, test) < postfix (.1/.2) < primary
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_FRONTEND_PARSER_H
#define SPIRE_FRONTEND_PARSER_H

#include "ast/AST.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string_view>

namespace spire::frontend {

/// Parses one Tower compilation unit. On any parse error, reports through
/// the DiagnosticEngine and returns std::nullopt.
std::optional<ast::Program> parseProgram(std::string_view Source,
                                         support::DiagnosticEngine &Diags);

/// Parses a program and asserts success; convenient for tests and for the
/// embedded benchmark sources, which are known-good.
ast::Program parseProgramOrDie(std::string_view Source);

} // namespace spire::frontend

#endif // SPIRE_FRONTEND_PARSER_H

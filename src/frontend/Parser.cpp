#include "frontend/Parser.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace spire::ast;

namespace spire::frontend {

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, support::DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {
    Program.Types = std::make_shared<TypeContext>();
  }

  std::optional<ast::Program> run();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokenKind K) const { return peek().is(K); }
  bool match(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *Context) {
    if (match(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + tokenKindName(K) +
                                " " + Context + ", found " +
                                tokenKindName(peek().Kind));
    Failed = true;
    return false;
  }

  bool parseTypeDecl();
  bool parseFunDecl();
  const Type *parseType();
  bool parseStmtList(StmtList &Out, bool StopAtReturn);
  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Expr> parseExpr();
  std::unique_ptr<Expr> parseOr();
  std::unique_ptr<Expr> parseAnd();
  std::unique_ptr<Expr> parseCompare();
  std::unique_ptr<Expr> parseAdditive();
  std::unique_ptr<Expr> parseMultiplicative();
  std::unique_ptr<Expr> parseUnary();
  std::unique_ptr<Expr> parsePostfix();
  std::unique_ptr<Expr> parsePrimary();
  std::unique_ptr<SizeExpr> parseSizeExpr();

  std::vector<Token> Tokens;
  support::DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
  ast::Program Program;
};

std::optional<ast::Program> Parser::run() {
  while (!check(TokenKind::EndOfFile) && !Failed) {
    if (check(TokenKind::KwType)) {
      if (!parseTypeDecl())
        return std::nullopt;
    } else if (check(TokenKind::KwFun)) {
      if (!parseFunDecl())
        return std::nullopt;
    } else {
      Diags.error(peek().Loc, std::string("expected 'type' or 'fun' at top "
                                          "level, found ") +
                                  tokenKindName(peek().Kind));
      return std::nullopt;
    }
  }
  if (Failed)
    return std::nullopt;
  return std::move(Program);
}

bool Parser::parseTypeDecl() {
  expect(TokenKind::KwType, "to begin type declaration");
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected type name");
    return false;
  }
  std::string Name = advance().Text;
  if (!expect(TokenKind::Equal, "in type declaration"))
    return false;
  const Type *T = parseType();
  if (!T)
    return false;
  if (!expect(TokenKind::Semicolon, "after type declaration"))
    return false;
  if (!Program.Types->declareAlias(Name, T)) {
    Diags.error(peek().Loc, "redefinition of type '" + Name + "'");
    return false;
  }
  Program.TypeDecls.emplace_back(Name, T);
  return true;
}

const Type *Parser::parseType() {
  TypeContext &Types = *Program.Types;
  if (match(TokenKind::KwUInt))
    return Types.uintType();
  if (match(TokenKind::KwBool))
    return Types.boolType();
  if (match(TokenKind::KwPtr)) {
    if (!expect(TokenKind::Less, "after 'ptr'"))
      return nullptr;
    const Type *Pointee = parseType();
    if (!Pointee)
      return nullptr;
    if (!expect(TokenKind::Greater, "to close 'ptr<'"))
      return nullptr;
    return Types.ptrType(Pointee);
  }
  if (check(TokenKind::Identifier))
    return Types.namedType(advance().Text);
  if (match(TokenKind::LParen)) {
    if (match(TokenKind::RParen))
      return Types.unitType();
    const Type *First = parseType();
    if (!First)
      return nullptr;
    if (!expect(TokenKind::Comma, "in pair type"))
      return nullptr;
    const Type *Second = parseType();
    if (!Second)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close pair type"))
      return nullptr;
    return Types.pairType(First, Second);
  }
  Diags.error(peek().Loc, std::string("expected a type, found ") +
                              tokenKindName(peek().Kind));
  Failed = true;
  return nullptr;
}

bool Parser::parseFunDecl() {
  FunDecl F;
  F.Loc = peek().Loc;
  expect(TokenKind::KwFun, "to begin function");
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected function name");
    return false;
  }
  F.Name = advance().Text;
  if (match(TokenKind::LBracket)) {
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected size parameter name");
      return false;
    }
    F.SizeParam = advance().Text;
    if (!expect(TokenKind::RBracket, "to close size parameter"))
      return false;
  }
  if (!expect(TokenKind::LParen, "to begin parameter list"))
    return false;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected parameter name");
        return false;
      }
      std::string PName = advance().Text;
      if (!expect(TokenKind::Colon, "after parameter name"))
        return false;
      const Type *PTy = parseType();
      if (!PTy)
        return false;
      F.Params.emplace_back(std::move(PName), PTy);
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "to close parameter list"))
    return false;
  if (match(TokenKind::UnAssign)) { // `-> type` return annotation
    F.ReturnTy = parseType();
    if (!F.ReturnTy)
      return false;
  }
  if (!expect(TokenKind::LBrace, "to begin function body"))
    return false;
  if (!parseStmtList(F.Body, /*StopAtReturn=*/true))
    return false;
  if (!expect(TokenKind::KwReturn, "at end of function body"))
    return false;
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected variable name after 'return'");
    return false;
  }
  F.ReturnVar = advance().Text;
  if (!expect(TokenKind::Semicolon, "after return"))
    return false;
  if (!expect(TokenKind::RBrace, "to close function body"))
    return false;
  Program.Functions.push_back(std::move(F));
  return true;
}

bool Parser::parseStmtList(StmtList &Out, bool StopAtReturn) {
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (StopAtReturn && check(TokenKind::KwReturn))
      return true;
    std::unique_ptr<Stmt> S = parseStmt();
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
  return true;
}

std::unique_ptr<Stmt> Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;

  if (match(TokenKind::KwSkip)) {
    expect(TokenKind::Semicolon, "after 'skip'");
    auto S = Stmt::skip();
    S->Loc = Loc;
    return S;
  }

  if (match(TokenKind::KwH)) {
    expect(TokenKind::LParen, "after 'h'");
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected variable in h(...)");
      Failed = true;
      return nullptr;
    }
    std::string Name = advance().Text;
    expect(TokenKind::RParen, "to close h(...)");
    expect(TokenKind::Semicolon, "after h(...)");
    auto S = Stmt::hadamard(std::move(Name));
    S->Loc = Loc;
    return S;
  }

  if (match(TokenKind::KwLet)) {
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected variable name after 'let'");
      Failed = true;
      return nullptr;
    }
    std::string Name = advance().Text;
    bool IsAssign;
    if (match(TokenKind::Assign)) {
      IsAssign = true;
    } else if (match(TokenKind::UnAssign)) {
      IsAssign = false;
    } else {
      Diags.error(peek().Loc, "expected '<-' or '->' in let statement");
      Failed = true;
      return nullptr;
    }
    std::unique_ptr<Expr> E = parseExpr();
    if (!E)
      return nullptr;
    expect(TokenKind::Semicolon, "after let statement");
    auto S = IsAssign ? Stmt::let(std::move(Name), std::move(E))
                      : Stmt::unlet(std::move(Name), std::move(E));
    S->Loc = Loc;
    return S;
  }

  if (match(TokenKind::Star)) {
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected pointer variable after '*'");
      Failed = true;
      return nullptr;
    }
    std::string Ptr = advance().Text;
    if (!expect(TokenKind::SwapArrow, "in memory swap"))
      return nullptr;
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected variable on right of '<->'");
      Failed = true;
      return nullptr;
    }
    std::string Val = advance().Text;
    expect(TokenKind::Semicolon, "after memory swap");
    auto S = Stmt::memSwap(std::move(Ptr), std::move(Val));
    S->Loc = Loc;
    return S;
  }

  if (match(TokenKind::KwIf)) {
    std::unique_ptr<Expr> Cond = parseExpr();
    if (!Cond)
      return nullptr;
    StmtList Then;
    if (!expect(TokenKind::LBrace, "to begin if body"))
      return nullptr;
    if (!parseStmtList(Then, /*StopAtReturn=*/false))
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close if body"))
      return nullptr;
    StmtList Else;
    if (match(TokenKind::KwElse)) {
      if (check(TokenKind::KwIf) || check(TokenKind::KwWith)) {
        // `else if` / `else with ... do` chains nest as a single statement.
        std::unique_ptr<Stmt> Nested = parseStmt();
        if (!Nested)
          return nullptr;
        Else.push_back(std::move(Nested));
      } else {
        if (!expect(TokenKind::LBrace, "to begin else body"))
          return nullptr;
        if (!parseStmtList(Else, /*StopAtReturn=*/false))
          return nullptr;
        if (!expect(TokenKind::RBrace, "to close else body"))
          return nullptr;
      }
    }
    auto S = Stmt::ifStmt(std::move(Cond), std::move(Then), std::move(Else));
    S->Loc = Loc;
    return S;
  }

  if (match(TokenKind::KwWith)) {
    StmtList WithBody, DoBody;
    if (!expect(TokenKind::LBrace, "to begin with block"))
      return nullptr;
    if (!parseStmtList(WithBody, /*StopAtReturn=*/false))
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close with block"))
      return nullptr;
    if (!expect(TokenKind::KwDo, "after with block"))
      return nullptr;
    if (check(TokenKind::KwIf) || check(TokenKind::KwWith)) {
      // `do if ...` / `do with ...` sugar used throughout the paper
      // (e.g. Fig. 1 line 5): the do-block is a single nested statement.
      std::unique_ptr<Stmt> Nested = parseStmt();
      if (!Nested)
        return nullptr;
      DoBody.push_back(std::move(Nested));
    } else {
      if (!expect(TokenKind::LBrace, "to begin do block"))
        return nullptr;
      if (!parseStmtList(DoBody, /*StopAtReturn=*/false))
        return nullptr;
      if (!expect(TokenKind::RBrace, "to close do block"))
        return nullptr;
    }
    auto S = Stmt::with(std::move(WithBody), std::move(DoBody));
    S->Loc = Loc;
    return S;
  }

  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::SwapArrow)) {
    std::string A = advance().Text;
    advance(); // <->
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected variable on right of '<->'");
      Failed = true;
      return nullptr;
    }
    std::string B = advance().Text;
    expect(TokenKind::Semicolon, "after swap");
    auto S = Stmt::swap(std::move(A), std::move(B));
    S->Loc = Loc;
    return S;
  }

  Diags.error(Loc, std::string("expected a statement, found ") +
                       tokenKindName(peek().Kind));
  Failed = true;
  return nullptr;
}

std::unique_ptr<Expr> Parser::parseExpr() { return parseOr(); }

std::unique_ptr<Expr> Parser::parseOr() {
  std::unique_ptr<Expr> E = parseAnd();
  while (E && check(TokenKind::PipePipe)) {
    advance();
    std::unique_ptr<Expr> RHS = parseAnd();
    if (!RHS)
      return nullptr;
    E = Expr::binary(BinaryOp::Or, std::move(E), std::move(RHS));
  }
  return E;
}

std::unique_ptr<Expr> Parser::parseAnd() {
  std::unique_ptr<Expr> E = parseCompare();
  while (E && check(TokenKind::AmpAmp)) {
    advance();
    std::unique_ptr<Expr> RHS = parseCompare();
    if (!RHS)
      return nullptr;
    E = Expr::binary(BinaryOp::And, std::move(E), std::move(RHS));
  }
  return E;
}

std::unique_ptr<Expr> Parser::parseCompare() {
  std::unique_ptr<Expr> E = parseAdditive();
  if (!E)
    return nullptr;
  BinaryOp Op;
  if (check(TokenKind::EqEq))
    Op = BinaryOp::Eq;
  else if (check(TokenKind::NotEq))
    Op = BinaryOp::Ne;
  else if (check(TokenKind::Less))
    Op = BinaryOp::Lt;
  else
    return E;
  advance();
  std::unique_ptr<Expr> RHS = parseAdditive();
  if (!RHS)
    return nullptr;
  return Expr::binary(Op, std::move(E), std::move(RHS));
}

std::unique_ptr<Expr> Parser::parseAdditive() {
  std::unique_ptr<Expr> E = parseMultiplicative();
  while (E && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    BinaryOp Op = check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    advance();
    std::unique_ptr<Expr> RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    E = Expr::binary(Op, std::move(E), std::move(RHS));
  }
  return E;
}

std::unique_ptr<Expr> Parser::parseMultiplicative() {
  std::unique_ptr<Expr> E = parseUnary();
  while (E && check(TokenKind::Star)) {
    advance();
    std::unique_ptr<Expr> RHS = parseUnary();
    if (!RHS)
      return nullptr;
    E = Expr::binary(BinaryOp::Mul, std::move(E), std::move(RHS));
  }
  return E;
}

std::unique_ptr<Expr> Parser::parseUnary() {
  if (match(TokenKind::KwNot)) {
    std::unique_ptr<Expr> E = parseUnary();
    if (!E)
      return nullptr;
    return Expr::unary(UnaryOp::Not, std::move(E));
  }
  if (match(TokenKind::KwTest)) {
    std::unique_ptr<Expr> E = parseUnary();
    if (!E)
      return nullptr;
    return Expr::unary(UnaryOp::Test, std::move(E));
  }
  return parsePostfix();
}

std::unique_ptr<Expr> Parser::parsePostfix() {
  std::unique_ptr<Expr> E = parsePrimary();
  while (E && check(TokenKind::Dot)) {
    advance();
    if (!check(TokenKind::Integer) ||
        (peek().IntValue != 1 && peek().IntValue != 2)) {
      Diags.error(peek().Loc, "projection index must be 1 or 2");
      Failed = true;
      return nullptr;
    }
    unsigned Idx = static_cast<unsigned>(advance().IntValue);
    E = Expr::proj(std::move(E), Idx);
  }
  return E;
}

std::unique_ptr<Expr> Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  TypeContext &Types = *Program.Types;

  if (check(TokenKind::Integer))
    return Expr::uintLit(advance().IntValue);
  if (match(TokenKind::KwTrue))
    return Expr::boolLit(true);
  if (match(TokenKind::KwFalse))
    return Expr::boolLit(false);
  if (match(TokenKind::KwNull))
    return Expr::nullLit();

  if (match(TokenKind::KwDefault)) {
    if (!expect(TokenKind::Less, "after 'default'"))
      return nullptr;
    const Type *T = parseType();
    if (!T)
      return nullptr;
    if (!expect(TokenKind::Greater, "to close 'default<'"))
      return nullptr;
    return Expr::defaultOf(T);
  }

  if (match(TokenKind::KwAlloc)) {
    if (!expect(TokenKind::Less, "after 'alloc'"))
      return nullptr;
    const Type *T = parseType();
    if (!T)
      return nullptr;
    if (!expect(TokenKind::Greater, "to close 'alloc<'"))
      return nullptr;
    return Expr::allocCell(T);
  }

  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    // Call: f[size](args) or f(args).
    if (check(TokenKind::LBracket) || check(TokenKind::LParen)) {
      auto Call = std::make_unique<Expr>(Expr::Kind::Call, Loc);
      Call->Name = Name;
      if (match(TokenKind::LBracket)) {
        Call->SizeArg = parseSizeExpr();
        if (!Call->SizeArg)
          return nullptr;
        if (!expect(TokenKind::RBracket, "to close size argument"))
          return nullptr;
      }
      if (!expect(TokenKind::LParen, "to begin call arguments"))
        return nullptr;
      if (!check(TokenKind::RParen)) {
        do {
          std::unique_ptr<Expr> Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Call->Args.push_back(std::move(Arg));
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "to close call arguments"))
        return nullptr;
      return Call;
    }
    return Expr::var(std::move(Name), Loc);
  }

  if (match(TokenKind::LParen)) {
    if (match(TokenKind::RParen))
      return Expr::unitLit();
    std::unique_ptr<Expr> First = parseExpr();
    if (!First)
      return nullptr;
    if (match(TokenKind::Comma)) {
      std::unique_ptr<Expr> Second = parseExpr();
      if (!Second)
        return nullptr;
      if (!expect(TokenKind::RParen, "to close tuple"))
        return nullptr;
      return Expr::tuple(std::move(First), std::move(Second));
    }
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return First;
  }

  (void)Types;
  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokenKindName(peek().Kind));
  Failed = true;
  return nullptr;
}

std::unique_ptr<SizeExpr> Parser::parseSizeExpr() {
  auto ParseTerm = [&]() -> std::unique_ptr<SizeExpr> {
    if (check(TokenKind::Integer))
      return SizeExpr::literal(static_cast<int64_t>(advance().IntValue));
    if (check(TokenKind::Identifier))
      return SizeExpr::param(advance().Text);
    Diags.error(peek().Loc, "expected size literal or parameter");
    Failed = true;
    return nullptr;
  };
  std::unique_ptr<SizeExpr> E = ParseTerm();
  while (E && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    SizeExpr::Kind K =
        check(TokenKind::Plus) ? SizeExpr::Kind::Add : SizeExpr::Kind::Sub;
    advance();
    std::unique_ptr<SizeExpr> RHS = ParseTerm();
    if (!RHS)
      return nullptr;
    E = SizeExpr::binary(K, std::move(E), std::move(RHS));
  }
  return E;
}

} // namespace

std::optional<ast::Program> parseProgram(std::string_view Source,
                                         support::DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;
  Parser P(std::move(Tokens), Diags);
  return P.run();
}

ast::Program parseProgramOrDie(std::string_view Source) {
  support::DiagnosticEngine Diags;
  std::optional<ast::Program> P = parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s\n", Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

} // namespace spire::frontend

#include "frontend/Lexer.h"

#include <cctype>
#include <map>

namespace spire::frontend {

const char *tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::KwType:
    return "'type'";
  case TokenKind::KwFun:
    return "'fun'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwWith:
    return "'with'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwTest:
    return "'test'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwAlloc:
    return "'alloc'";
  case TokenKind::KwUInt:
    return "'uint'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwPtr:
    return "'ptr'";
  case TokenKind::KwH:
    return "'h'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'<-'";
  case TokenKind::UnAssign:
    return "'->'";
  case TokenKind::SwapArrow:
    return "'<->'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Invalid:
    return "invalid token";
  }
  return "?";
}

static const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"type", TokenKind::KwType},       {"fun", TokenKind::KwFun},
      {"let", TokenKind::KwLet},         {"with", TokenKind::KwWith},
      {"do", TokenKind::KwDo},           {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"return", TokenKind::KwReturn},
      {"skip", TokenKind::KwSkip},       {"not", TokenKind::KwNot},
      {"test", TokenKind::KwTest},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"null", TokenKind::KwNull},
      {"default", TokenKind::KwDefault}, {"alloc", TokenKind::KwAlloc},
      {"uint", TokenKind::KwUInt},       {"bool", TokenKind::KwBool},
      {"ptr", TokenKind::KwPtr},         {"h", TokenKind::KwH},
  };
  return Table;
}

Lexer::Lexer(std::string_view Source, support::DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      support::SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  Token T;
  T.Loc = loc();
  if (Pos >= Source.size()) {
    T.Kind = TokenKind::EndOfFile;
    return T;
  }

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordTable().find(Text);
    T.Kind = It != keywordTable().end() ? It->second : TokenKind::Identifier;
    T.Text = std::move(Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    uint64_t Value = C - '0';
    std::string Text(1, C);
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      Text += D;
      Value = Value * 10 + (D - '0');
    }
    T.Kind = TokenKind::Integer;
    T.Text = std::move(Text);
    T.IntValue = Value;
    return T;
  }

  switch (C) {
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case '{':
    T.Kind = TokenKind::LBrace;
    return T;
  case '}':
    T.Kind = TokenKind::RBrace;
    return T;
  case '[':
    T.Kind = TokenKind::LBracket;
    return T;
  case ']':
    T.Kind = TokenKind::RBracket;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case ';':
    T.Kind = TokenKind::Semicolon;
    return T;
  case ':':
    T.Kind = TokenKind::Colon;
    return T;
  case '.':
    T.Kind = TokenKind::Dot;
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '>':
    T.Kind = TokenKind::Greater;
    return T;
  case '=':
    T.Kind = match('=') ? TokenKind::EqEq : TokenKind::Equal;
    return T;
  case '!':
    if (match('=')) {
      T.Kind = TokenKind::NotEq;
      return T;
    }
    break;
  case '&':
    if (match('&')) {
      T.Kind = TokenKind::AmpAmp;
      return T;
    }
    break;
  case '|':
    if (match('|')) {
      T.Kind = TokenKind::PipePipe;
      return T;
    }
    break;
  case '-':
    T.Kind = match('>') ? TokenKind::UnAssign : TokenKind::Minus;
    return T;
  case '<':
    if (match('-')) {
      T.Kind = match('>') ? TokenKind::SwapArrow : TokenKind::Assign;
      return T;
    }
    T.Kind = TokenKind::Less;
    return T;
  default:
    break;
  }

  Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
  T.Kind = TokenKind::Invalid;
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}

} // namespace spire::frontend

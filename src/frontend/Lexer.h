//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Tower surface language (Section 7: "the lexer
/// and parser construct its abstract syntax tree").
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_FRONTEND_LEXER_H
#define SPIRE_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spire::frontend {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  Integer,

  // Keywords.
  KwType,
  KwFun,
  KwLet,
  KwWith,
  KwDo,
  KwIf,
  KwElse,
  KwReturn,
  KwSkip,
  KwNot,
  KwTest,
  KwTrue,
  KwFalse,
  KwNull,
  KwDefault,
  KwAlloc,
  KwUInt,
  KwBool,
  KwPtr,
  KwH,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  Assign,    // <-
  UnAssign,  // ->
  SwapArrow, // <->
  Equal,     // =
  EqEq,      // ==
  NotEq,     // !=
  Less,      // <
  Greater,   // >
  AmpAmp,    // &&
  PipePipe,  // ||
  Plus,
  Minus,
  Star,

  EndOfFile,
  Invalid,
};

/// Returns a human-readable name for a token kind, used in parse errors.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Invalid;
  std::string Text;
  uint64_t IntValue = 0;
  support::SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes an entire buffer up front. Lexical errors are reported to the
/// DiagnosticEngine and produce an Invalid token.
class Lexer {
public:
  Lexer(std::string_view Source, support::DiagnosticEngine &Diags);

  /// Lexes the whole buffer, ending with an EndOfFile token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  support::SourceLoc loc() const { return {Line, Col}; }

  std::string_view Source;
  support::DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace spire::frontend

#endif // SPIRE_FRONTEND_LEXER_H

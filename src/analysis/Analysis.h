//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline-wide static verification — the LLVM-verifier analogue for
/// Spire. Three checkers, all pure functions over stage artifacts:
///
///  * IR verification (verifyProgram): structural and scoping invariants
///    of lowered core IR — def-before-use over interned Symbols, with/do
///    pairing symmetry, reversibility well-formedness (no self-referential
///    re-definition, if-conditions never modified under their own body),
///    and no dangling symbols. The checks mirror exactly the contract the
///    circuit backend asserts in debug builds, so a program that verifies
///    cannot trip the emitter's unbound-variable or control-collision
///    assertions. Implemented as an explicit worklist walker (the repo's
///    standard recursion discipline: O(1) C++ stack at any nesting depth).
///
///  * Circuit verification (verifyCircuit / verifyNetlist): gate and
///    netlist well-formedness — operand ranges, control-list ordering,
///    target/control distinctness, and the wire-linked netlist's full
///    link-pool integrity (Netlist::checkIntegrity promoted from a unit
///    test helper to a stage-boundary check).
///
///  * Affine-parity analysis (analyzeParity): abstract interpretation of
///    the X/CNOT(/effectively-singly-controlled MCX) fragment in the
///    GF(2) affine domain: every wire's value is tracked as an XOR subset
///    of the initial wire values plus a constant, or Top past the affine
///    fragment (H, true multi-controlled X). On this domain the analysis
///    *proves* — for every input, not per sampled basis state — that
///    ancilla wires return to |0> at circuit exit, and flags gates that
///    are statically dead (a control provably |0>). Everything past the
///    fragment is soundly reported as Unknown, never as Clean.
///
/// All three run at stage boundaries behind `spirec --verify-each`
/// (driver::PipelineOptions::VerifyEach) and feed the user-facing
/// `spirec --analyze` lint mode.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_ANALYSIS_ANALYSIS_H
#define SPIRE_ANALYSIS_ANALYSIS_H

#include "circuit/Compiler.h"
#include "circuit/Gate.h"
#include "circuit/Target.h"
#include "ir/Core.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spire::circuit {
class Netlist;
}

namespace spire::analysis {

//===----------------------------------------------------------------------===//
// Violations and reports
//===----------------------------------------------------------------------===//

/// One invariant violation. `Checker` names the layer that found it
/// ("ir", "circuit", "parity") so tests can assert a mutation is caught
/// by exactly the intended checker; `Where` positions it inside the
/// artifact ("stmt #12", "gate #3", "wire 7").
struct Violation {
  const char *Checker = "ir";
  std::string Where;
  std::string Message;

  /// Renders as "ir: stmt #12: message".
  std::string str() const;
};

/// The result of one verification pass: empty means the artifact upholds
/// every invariant the checker knows.
struct VerifyReport {
  std::vector<Violation> Violations;
  /// Set when the checker stopped recording after MaxViolations; the
  /// artifact has at least one more problem than the list shows.
  bool Truncated = false;

  static constexpr size_t MaxViolations = 64;

  bool ok() const { return Violations.empty(); }
  /// All violations, one per line; empty string when ok().
  std::string str() const;
  /// Reports every violation as an error diagnostic, prefixed with
  /// `Context` (typically the pipeline stage or pass name).
  void reportTo(support::DiagnosticEngine &Diags, const char *Context) const;
  /// Appends another report's violations (used to combine checkers).
  void merge(VerifyReport Other);
  /// True when any violation came from `Checker`.
  bool has(const char *Checker) const;
};

//===----------------------------------------------------------------------===//
// IR verification
//===----------------------------------------------------------------------===//

/// Verifies the structural and scoping invariants of a lowered core
/// program (see file header). `Config` supplies the word width used for
/// register-width agreement checks, matching what compileToCircuit would
/// use. Runs on an explicit worklist: safe on 100k-deep with-nesting.
VerifyReport verifyProgram(const ir::CoreProgram &P,
                           const circuit::TargetConfig &Config = {});

//===----------------------------------------------------------------------===//
// Circuit and netlist verification
//===----------------------------------------------------------------------===//

/// Verifies gate well-formedness over a flat circuit: every operand
/// within NumQubits, control lists sorted and deduplicated (the Gate
/// representation invariant), and no target repeating a control. When
/// `CheckNetlist` is set it additionally builds the wire-linked netlist
/// and runs its exhaustive link-pool integrity check, so a corrupted
/// builder or splice surfaces at the same boundary.
VerifyReport verifyCircuit(const circuit::Circuit &C,
                           bool CheckNetlist = true);

/// The netlist leg of verifyCircuit alone, for callers holding a live
/// Netlist mid-optimization (LIFO unlink/restore discipline violations
/// show up here as broken links).
VerifyReport verifyNetlist(const circuit::Netlist &N);

//===----------------------------------------------------------------------===//
// Affine-parity ancilla-cleanness analysis
//===----------------------------------------------------------------------===//

/// What the analysis may assume and must prove about each wire.
struct CleanSpec {
  unsigned NumQubits = 0;
  /// Wire starts in |0> (everything except program inputs and qRAM
  /// memory, which start at caller-chosen basis states).
  std::vector<bool> StartsZero;
  /// Wire must provably return to |0> at circuit exit: ancillas and
  /// released registers, but not inputs, memory, the declared output,
  /// leaked temporaries, or the intentionally-|1> alloc ancilla.
  std::vector<bool> RequireClean;

  /// No assumptions, no obligations: dead-gate flagging and exit-parity
  /// reporting still run, cleanness is all Unknown-or-better with no
  /// violations. For circuits with no layout (interchange input).
  static CleanSpec allUnknown(unsigned NumQubits);

  /// Derives the spec from a compiled circuit's layout. `CircuitQubits`
  /// may exceed Layout.NumQubits: the extra wires are decomposition /
  /// legalization ancillas, which start |0> and must return clean.
  static CleanSpec forLayout(const circuit::CircuitLayout &Layout,
                             unsigned CircuitQubits);
};

/// Exit classification of one wire under the affine-parity domain.
enum class Cleanness : uint8_t {
  Clean,   ///< Provably |0> at exit for every input.
  Dirty,   ///< Provably nonzero at exit for some input (a compiler bug
           ///< when the wire is RequireClean).
  Unknown, ///< Left the affine fragment; no claim (sound default).
};

const char *cleannessName(Cleanness C);

struct ParityResult {
  /// Per-wire exit classification relative to |0>.
  std::vector<Cleanness> WireExit;
  /// Per-wire exit value rendered over initial wire values: "0", "1",
  /// "q3", "q0^q7^1", or "?" for Top. Two circuits computing the same
  /// function render identical strings on wires both analyses track —
  /// the differential hook the qopt fuzz loop uses.
  std::vector<std::string> WireParity;
  /// Indices of statically-dead gates (a control — or, for diagonal
  /// phase gates, the target — provably |0> on every input).
  std::vector<size_t> DeadGates;
  /// Gates whose transfer left the affine fragment (H, X with >= 2
  /// statically-unresolved controls).
  size_t NonAffineGates = 0;
  /// Dirty violations on RequireClean wires.
  VerifyReport Report;

  bool fullyAffine() const { return NonAffineGates == 0; }
  size_t count(Cleanness C) const;
};

/// Runs the affine-parity abstract interpretation over `C` under `Spec`.
/// O(gates * wires/64) bitset work; linear in practice.
ParityResult analyzeParity(const circuit::Circuit &C, const CleanSpec &Spec);

} // namespace spire::analysis

#endif // SPIRE_ANALYSIS_ANALYSIS_H

#include "analysis/Analysis.h"

#include "circuit/Netlist.h"
#include "support/Governor.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace spire::ir;
using namespace spire::circuit;

namespace spire::analysis {

//===----------------------------------------------------------------------===//
// Violations and reports
//===----------------------------------------------------------------------===//

std::string Violation::str() const {
  std::string Out = Checker;
  Out += ": ";
  if (!Where.empty()) {
    Out += Where;
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string VerifyReport::str() const {
  std::string Out;
  for (const Violation &V : Violations) {
    Out += V.str();
    Out += '\n';
  }
  if (Truncated)
    Out += "... further violations suppressed\n";
  return Out;
}

void VerifyReport::reportTo(support::DiagnosticEngine &Diags,
                            const char *Context) const {
  for (const Violation &V : Violations)
    Diags.error(std::string(Context) + ": " + V.str());
  if (Truncated)
    Diags.note(support::SourceLoc(),
               std::string(Context) + ": further violations suppressed");
}

void VerifyReport::merge(VerifyReport Other) {
  Violations.insert(Violations.end(),
                    std::make_move_iterator(Other.Violations.begin()),
                    std::make_move_iterator(Other.Violations.end()));
  Truncated = Truncated || Other.Truncated;
}

bool VerifyReport::has(const char *Checker) const {
  for (const Violation &V : Violations)
    if (std::string_view(V.Checker) == Checker)
      return true;
  return false;
}

namespace {

/// Shared capped-append helper for all three checkers.
class Reporter {
public:
  explicit Reporter(VerifyReport &Report, const char *Checker)
      : Report(Report), Checker(Checker) {}

  void add(std::string Where, std::string Message) {
    if (Report.Violations.size() >= VerifyReport::MaxViolations) {
      Report.Truncated = true;
      return;
    }
    Report.Violations.push_back(
        {Checker, std::move(Where), std::move(Message)});
  }

private:
  VerifyReport &Report;
  const char *Checker;
};

//===----------------------------------------------------------------------===//
// IR verification
//===----------------------------------------------------------------------===//

/// Walks a lowered program on an explicit worklist, simulating exactly
/// the declaration bookkeeping the circuit backend performs (Vars map
/// with per-variable re-declaration counts; if-bodies and both legs of
/// a with-block are visited unconditionally, matching static emission),
/// so every violation reported here is an assertion the emitter would
/// have tripped — and silence means it cannot.
class IrVerifier {
public:
  IrVerifier(const CoreProgram &P, const TargetConfig &Config,
             VerifyReport &Report)
      : P(P), Config(Config), Out(Report, "ir") {}

  void run() {
    if (!P.Types) {
      Out.add("program", "missing type context");
      return;
    }
    for (const auto &[Name, Ty] : P.Inputs) {
      if (Name.empty()) {
        Out.add("inputs", "input with a dangling (empty) symbol");
        continue;
      }
      if (!Ty) {
        Out.add("inputs", "input '" + Name.str() + "' has no type");
        continue;
      }
      if (!Live.emplace(Name, VarState{Ty, 0, /*IsInput=*/true}).second)
        Out.add("inputs", "duplicate input '" + Name.str() + "'");
    }

    walk();

    if (P.OutputVar.empty())
      Out.add("program", "program has no output variable");
    else if (!isLive(P.OutputVar))
      Out.add("program", "output variable '" + P.OutputVar.str() +
                             "' is not live at program end");
  }

private:
  /// Mirror of the backend's VarInfo: inputs enter live with Decl 0 and
  /// are never erased by a sole un-assignment (matching the emitter's
  /// erase-on-Decl==0 rule); locals die when their count returns to 0.
  struct VarState {
    const Type *Ty = nullptr;
    int64_t Decl = 0;
    bool IsInput = false;
  };

  struct Frame {
    const CoreStmtList *List;
    size_t Pos;
    bool Rev;
  };

  /// A worklist entry: either a statement-list frame or the deferred
  /// close of an if-condition scope.
  struct Item {
    enum class K : uint8_t { Stmts, PopCond } Kind;
    Frame F{};
    Symbol Cond;
  };

  unsigned widthOf(const Type *Ty) const {
    return P.Types->bitWidth(Ty, Config.WordBits);
  }

  bool isLive(Symbol Name) const { return Live.count(Name) != 0; }

  std::string at() const { return "stmt #" + std::to_string(StmtIndex); }

  /// A short one-line rendering of the statement for the message.
  static std::string snippet(const CoreStmt &S) {
    std::string Str = S.str();
    size_t Eol = Str.find('\n');
    if (Eol != std::string::npos)
      Str.resize(Eol);
    if (Str.size() > 48) {
      Str.resize(48);
      Str += "...";
    }
    return "'" + Str + "'";
  }

  void checkRead(Symbol Name, const CoreStmt &S, const char *Role) {
    if (Name.empty()) {
      Out.add(at(), std::string("dangling (empty) symbol as ") + Role +
                        " in " + snippet(S));
      return;
    }
    if (!isLive(Name))
      Out.add(at(), std::string(Role) + " '" + Name.str() +
                        "' read before definition in " + snippet(S));
  }

  void checkExprReads(const CoreExpr &E, const CoreStmt &S) {
    ExprVars.clear();
    E.appendVars(ExprVars);
    for (Symbol V : ExprVars)
      checkRead(V, S, "operand");
    if (!E.Ty)
      Out.add(at(), "expression without a result type in " + snippet(S));
  }

  /// Reversibility: `x <- e` / `x -> e` with x free in e has no gate
  /// realization (the emitter would place x as both target and control).
  void checkNotSelfReferential(const CoreStmt &S) {
    ExprVars.clear();
    S.E.appendVars(ExprVars);
    for (Symbol V : ExprVars)
      if (V == S.Name) {
        Out.add(at(), "variable '" + S.Name.str() +
                          "' appears free in its own (un-)definition " +
                          snippet(S));
        return;
      }
  }

  /// Modifying a variable while it serves as an enclosing if-condition
  /// would make the emitter target one of its own control wires.
  void checkCondMod(Symbol Name, const CoreStmt &S) {
    auto It = ActiveConds.find(Name);
    if (It != ActiveConds.end() && It->second > 0)
      Out.add(at(), "enclosing if-condition '" + Name.str() +
                        "' modified by " + snippet(S));
  }

  void declare(Symbol Name, const Type *Ty, const CoreStmt &S) {
    auto [It, Inserted] = Live.emplace(Name, VarState{Ty, 1, false});
    if (Inserted)
      return;
    ++It->second.Decl;
    // Re-definition XORs into the existing register, so the widths must
    // agree (type identity is not required: lowering re-declares through
    // aliases freely).
    if (It->second.Ty && Ty && widthOf(It->second.Ty) != widthOf(Ty))
      Out.add(at(), "re-definition of '" + Name.str() +
                        "' changes its register width in " + snippet(S));
  }

  void undeclare(Symbol Name, const CoreStmt &S) {
    auto It = Live.find(Name);
    if (It == Live.end()) {
      Out.add(at(), "un-definition of dead variable '" + Name.str() +
                        "' in " + snippet(S));
      return;
    }
    if (--It->second.Decl == 0 && !It->second.IsInput)
      Live.erase(It);
  }

  void execPrimitive(const CoreStmt &S, bool Rev) {
    switch (S.K) {
    case CoreStmt::Kind::Skip:
      return;

    case CoreStmt::Kind::Assign:
    case CoreStmt::Kind::UnAssign: {
      // Under reversal, I[x <- e] = x -> e and vice versa.
      bool IsAssign = (S.K == CoreStmt::Kind::Assign) != Rev;
      if (S.Name.empty()) {
        Out.add(at(), "dangling (empty) definition target in " + snippet(S));
        return;
      }
      if (!S.Ty) {
        Out.add(at(), "(un-)definition of '" + S.Name.str() +
                          "' carries no type");
        return;
      }
      checkExprReads(S.E, S);
      checkNotSelfReferential(S);
      checkCondMod(S.Name, S);
      if (IsAssign)
        declare(S.Name, S.Ty, S);
      else
        undeclare(S.Name, S);
      return;
    }

    case CoreStmt::Kind::Swap: {
      checkRead(S.Name, S, "swap operand");
      checkRead(S.Name2, S, "swap operand");
      if (!S.Name.empty() && S.Name == S.Name2)
        Out.add(at(), "swap of '" + S.Name.str() + "' with itself");
      else if (S.Ty && S.Ty2 && widthOf(S.Ty) != widthOf(S.Ty2))
        Out.add(at(), "swap operands of different widths in " + snippet(S));
      checkCondMod(S.Name, S);
      checkCondMod(S.Name2, S);
      return;
    }

    case CoreStmt::Kind::MemSwap: {
      checkRead(S.Name, S, "memory-swap pointer");
      checkRead(S.Name2, S, "memory-swap value");
      if (!S.Name.empty() && S.Name == S.Name2)
        Out.add(at(), "memory swap uses '" + S.Name.str() +
                          "' as both pointer and value");
      checkCondMod(S.Name2, S);
      return;
    }

    case CoreStmt::Kind::Hadamard: {
      checkRead(S.Name, S, "Hadamard target");
      if (S.Ty && widthOf(S.Ty) != 1)
        Out.add(at(), "Hadamard of multi-bit variable '" + S.Name.str() +
                          "'");
      checkCondMod(S.Name, S);
      return;
    }

    case CoreStmt::Kind::If:
    case CoreStmt::Kind::With:
      assert(false && "block statement reached execPrimitive");
      return;
    }
  }

  void walk() {
    std::vector<Item> Work;
    Work.push_back({Item::K::Stmts, {&P.Body, 0, false}, Symbol()});

    while (!Work.empty()) {
      Item &Top = Work.back();
      if (Top.Kind == Item::K::PopCond) {
        auto It = ActiveConds.find(Top.Cond);
        if (It != ActiveConds.end() && --It->second == 0)
          ActiveConds.erase(It);
        Work.pop_back();
        continue;
      }
      Frame &F = Top.F;
      if (F.Pos == F.List->size()) {
        Work.pop_back();
        continue;
      }
      const CoreStmt &S =
          F.Rev ? *(*F.List)[F.List->size() - 1 - F.Pos] : *(*F.List)[F.Pos];
      bool Rev = F.Rev;
      ++F.Pos;
      ++StmtIndex;

      switch (S.K) {
      case CoreStmt::Kind::If: {
        // I[if x { s }] = if x { I[s] }: same condition, body reversed.
        checkRead(S.Name, S, "if-condition");
        auto It = Live.find(S.Name);
        if (It != Live.end() && It->second.Ty &&
            widthOf(It->second.Ty) != 1)
          Out.add(at(), "if-condition '" + S.Name.str() +
                            "' is not a single bit");
        if (!S.Name.empty())
          ++ActiveConds[S.Name];
        Work.push_back({Item::K::PopCond, {}, S.Name});
        Work.push_back({Item::K::Stmts, {&S.Body, 0, Rev}, Symbol()});
        break;
      }

      case CoreStmt::Kind::With:
        // Expansion order under Rev=false: body; do; I[body] — and under
        // reversal (I[with{a}do{b}] = with{a}do{I[b]}): a; I[b]; I[a].
        // Either way: body forward, do-body direction-inherited, body
        // reversed — pushed LIFO. The reverse leg re-checks the body's
        // inverse primitives, which is exactly what makes asymmetric
        // do-blocks (consuming a with-temporary without re-creating it)
        // surface as a def-before-use violation here.
        Work.push_back({Item::K::Stmts, {&S.Body, 0, true}, Symbol()});
        Work.push_back({Item::K::Stmts, {&S.DoBody, 0, Rev}, Symbol()});
        Work.push_back({Item::K::Stmts, {&S.Body, 0, false}, Symbol()});
        break;

      default:
        execPrimitive(S, Rev);
        break;
      }
    }
  }

  const CoreProgram &P;
  TargetConfig Config;
  Reporter Out;
  std::unordered_map<Symbol, VarState> Live;
  /// Multiset of if-conditions whose bodies are currently open.
  std::unordered_map<Symbol, unsigned> ActiveConds;
  std::vector<Symbol> ExprVars;
  size_t StmtIndex = 0;
};

} // namespace

VerifyReport verifyProgram(const CoreProgram &P, const TargetConfig &Config) {
  VerifyReport Report;
  IrVerifier(P, Config, Report).run();
  return Report;
}

//===----------------------------------------------------------------------===//
// Circuit and netlist verification
//===----------------------------------------------------------------------===//

VerifyReport verifyCircuit(const Circuit &C, bool CheckNetlist) {
  VerifyReport Report;
  Reporter Out(Report, "circuit");

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    const Gate &G = C.Gates[I];
    std::string Where = "gate #" + std::to_string(I);
    std::string Bad = checkGateOperands(
        G.Target, G.Controls.begin(), G.Controls.end(), C.NumQubits);
    if (!Bad.empty())
      Out.add(Where, Bad + " in " + G.str());
    // Representation invariant (Gate::normalize): strictly ascending
    // controls — sorted and deduplicated.
    for (size_t J = 1; J < G.Controls.size(); ++J) {
      if (G.Controls[J - 1] > G.Controls[J]) {
        Out.add(Where, "control list is not sorted in " + G.str());
        break;
      }
      if (G.Controls[J - 1] == G.Controls[J]) {
        Out.add(Where, "duplicate control qubit in " + G.str());
        break;
      }
    }
  }

  if (CheckNetlist && Report.ok() && !C.Gates.empty())
    Report.merge(verifyNetlist(Netlist(C)));
  return Report;
}

VerifyReport verifyNetlist(const Netlist &N) {
  VerifyReport Report;
  if (!N.checkIntegrity())
    Reporter(Report, "circuit")
        .add("netlist",
             "link-pool integrity check failed (global/wire sequences "
             "inconsistent over the live nodes)");
  return Report;
}

//===----------------------------------------------------------------------===//
// Affine-parity analysis
//===----------------------------------------------------------------------===//

CleanSpec CleanSpec::allUnknown(unsigned NumQubits) {
  CleanSpec S;
  S.NumQubits = NumQubits;
  S.StartsZero.assign(NumQubits, false);
  S.RequireClean.assign(NumQubits, false);
  return S;
}

CleanSpec CleanSpec::forLayout(const CircuitLayout &Layout,
                               unsigned CircuitQubits) {
  CleanSpec S;
  S.NumQubits = CircuitQubits;
  // Wires past Layout.NumQubits are decomposition/legalization ancillas:
  // they start |0> and must come back clean, like any other ancilla.
  S.StartsZero.assign(CircuitQubits, true);
  S.RequireClean.assign(CircuitQubits, true);

  auto exempt = [&](BitRange R, bool InitiallyLive) {
    for (unsigned I = 0; I != R.Width; ++I) {
      Qubit Q = R.Offset + I;
      if (Q >= CircuitQubits)
        continue;
      if (InitiallyLive)
        S.StartsZero[Q] = false;
      S.RequireClean[Q] = false;
    }
  };

  for (const auto &[Name, R] : Layout.Inputs)
    exempt(R, /*InitiallyLive=*/true);
  if (Layout.HeapCells > 0)
    exempt({Layout.MemBase,
            Layout.HeapCells * Layout.CellBits},
           /*InitiallyLive=*/true);
  for (const BitRange &R : Layout.LiveAtExit)
    exempt(R, /*InitiallyLive=*/false);
  if (Layout.PreparedOneWire != CircuitLayout::NoWire)
    exempt({Layout.PreparedOneWire, 1}, /*InitiallyLive=*/false);
  return S;
}

const char *cleannessName(Cleanness C) {
  switch (C) {
  case Cleanness::Clean:
    return "clean";
  case Cleanness::Dirty:
    return "dirty";
  case Cleanness::Unknown:
    return "unknown";
  }
  return "?";
}

size_t ParityResult::count(Cleanness C) const {
  size_t N = 0;
  for (Cleanness W : WireExit)
    N += (W == C);
  return N;
}

namespace {

/// The GF(2) affine-parity domain over a circuit's wires. Each wire's
/// abstract value is Top or an affine form: an XOR subset of the
/// initial values of the non-StartsZero wires, plus a constant bit.
/// Rows live in one flat bit-matrix (Wires x Words); a transfer is a
/// word-wise row XOR, so the whole analysis is O(gates * vars/64).
class ParityDomain {
public:
  ParityDomain(unsigned NumQubits, const CleanSpec &Spec)
      : NumQubits(NumQubits) {
    VarOfWire.assign(NumQubits, ~0u);
    unsigned NumVars = 0;
    for (unsigned Q = 0; Q != NumQubits; ++Q) {
      bool Zero = Q < Spec.StartsZero.size() && Spec.StartsZero[Q];
      if (!Zero) {
        VarOfWire[Q] = NumVars++;
        WireOfVar.push_back(Q);
      }
    }
    Words = (NumVars + 63) / 64;
    Rows.assign(static_cast<size_t>(NumQubits) * Words, 0);
    ConstBit.assign(NumQubits, 0);
    Top.assign(NumQubits, 0);
    RowIsZero.assign(NumQubits, 1);
    for (unsigned Q = 0; Q != NumQubits; ++Q)
      if (VarOfWire[Q] != ~0u) {
        row(Q)[VarOfWire[Q] / 64] |= uint64_t(1) << (VarOfWire[Q] % 64);
        RowIsZero[Q] = 0;
      }
  }

  bool isTop(Qubit Q) const { return Top[Q] != 0; }
  /// Wire provably equals `Bit` on every input.
  bool isConst(Qubit Q, unsigned Bit) const {
    return !Top[Q] && RowIsZero[Q] && ConstBit[Q] == Bit;
  }

  void setTop(Qubit Q) { Top[Q] = 1; }

  void flipConst(Qubit Q) {
    if (!Top[Q])
      ConstBit[Q] ^= 1;
  }

  /// Target ^= Source (CNOT transfer). Top is absorbing.
  void xorInto(Qubit Target, Qubit Source) {
    if (Top[Target])
      return;
    if (Top[Source]) {
      Top[Target] = 1;
      return;
    }
    uint64_t *T = row(Target);
    const uint64_t *S = row(Source);
    uint64_t Any = 0;
    for (unsigned W = 0; W != Words; ++W) {
      T[W] ^= S[W];
      Any |= T[W];
    }
    RowIsZero[Target] = Any == 0;
    ConstBit[Target] ^= ConstBit[Source];
  }

  Cleanness exitCleanness(Qubit Q) const {
    if (Top[Q])
      return Cleanness::Unknown;
    if (RowIsZero[Q] && ConstBit[Q] == 0)
      return Cleanness::Clean;
    // Any surviving variable bit means some input sets the wire; a bare
    // constant 1 means every input does.
    return Cleanness::Dirty;
  }

  /// Renders the wire's exit value over initial wire values, e.g.
  /// "q0^q7^1"; "?" for Top.
  std::string render(Qubit Q) const {
    if (Top[Q])
      return "?";
    std::string Out;
    const uint64_t *R = row(Q);
    // Bit-scan the row words (variable order is wire order, so the
    // rendering stays sorted); a whole-wire scan here would make the
    // exit summary quadratic in circuit width.
    for (unsigned W = 0; W != Words; ++W) {
      for (uint64_t Bits = R[W]; Bits; Bits &= Bits - 1) {
        unsigned V = W * 64 + static_cast<unsigned>(__builtin_ctzll(Bits));
        if (!Out.empty())
          Out += '^';
        Out += 'q';
        Out += std::to_string(WireOfVar[V]);
      }
    }
    if (ConstBit[Q]) {
      if (!Out.empty())
        Out += '^';
      Out += '1';
    }
    return Out.empty() ? "0" : Out;
  }

private:
  uint64_t *row(Qubit Q) { return Rows.data() + size_t(Q) * Words; }
  const uint64_t *row(Qubit Q) const {
    return Rows.data() + size_t(Q) * Words;
  }

  unsigned NumQubits = 0;
  unsigned Words = 0;
  std::vector<unsigned> VarOfWire;
  std::vector<unsigned> WireOfVar; ///< Inverse of VarOfWire.
  std::vector<uint64_t> Rows;
  std::vector<uint8_t> ConstBit, Top, RowIsZero;
};

} // namespace

ParityResult analyzeParity(const Circuit &C, const CleanSpec &Spec) {
  ParityResult Result;
  ParityDomain D(C.NumQubits, Spec);

  for (size_t I = 0; I != C.Gates.size(); ++I) {
    // Governor checkpoint at the parity-matrix row ops. The partial
    // result is not trustworthy after a trip; callers must discard it
    // (the pipeline's verify hook checks the governor before merging).
    if (!support::Governor::poll())
      return Result;
    const Gate &G = C.Gates[I];
    if (G.Target >= C.NumQubits)
      continue; // verifyCircuit's problem, not ours.

    // A control provably |0> makes any gate the identity.
    bool Dead = false;
    for (Qubit Ctrl : G.Controls)
      if (Ctrl < C.NumQubits && D.isConst(Ctrl, 0)) {
        Dead = true;
        break;
      }
    // Diagonal phase gates additionally fix |0> targets (up to the
    // global phase, which is unobservable).
    if (!Dead && G.isPhase() && D.isConst(G.Target, 0))
      Dead = true;
    if (Dead) {
      Result.DeadGates.push_back(I);
      continue;
    }

    if (G.isPhase())
      continue; // Diagonal: computational-basis values unchanged.

    if (G.Kind == GateKind::H) {
      Result.NonAffineGates++;
      D.setTop(G.Target);
      continue;
    }

    // X-kind. Controls provably |1> fire unconditionally and drop out;
    // what remains decides the transfer.
    Qubit Effective = 0;
    unsigned NumEffective = 0;
    for (Qubit Ctrl : G.Controls) {
      if (Ctrl < C.NumQubits && D.isConst(Ctrl, 1))
        continue;
      Effective = Ctrl;
      ++NumEffective;
    }
    if (NumEffective == 0) {
      D.flipConst(G.Target); // Plain X.
    } else if (NumEffective == 1) {
      D.xorInto(G.Target, Effective); // Effectively a CNOT.
    } else {
      // A true multi-controlled X computes an AND: outside GF(2)-affine.
      Result.NonAffineGates++;
      D.setTop(G.Target);
    }
  }

  Result.WireExit.resize(C.NumQubits);
  Result.WireParity.resize(C.NumQubits);
  Reporter Out(Result.Report, "parity");
  for (Qubit Q = 0; Q != C.NumQubits; ++Q) {
    Result.WireExit[Q] = D.exitCleanness(Q);
    Result.WireParity[Q] = D.render(Q);
    if (Result.WireExit[Q] == Cleanness::Dirty &&
        Q < Spec.RequireClean.size() && Spec.RequireClean[Q])
      Out.add("wire " + std::to_string(Q),
              "ancilla exits dirty with parity " + Result.WireParity[Q] +
                  " (must return to |0>)");
  }
  return Result;
}

} // namespace spire::analysis

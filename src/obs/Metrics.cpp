#include "obs/Metrics.h"

#include "obs/Json.h"
#include "support/AllocStats.h"
#include "support/Symbol.h"

#include <algorithm>
#include <limits>

namespace spire {
namespace obs {

const char *metricKindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "unknown";
}

namespace {

/// fetch_add for atomic<double> (member fetch_add is C++20).
void atomicAdd(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Cur, Cur + V, std::memory_order_relaxed))
    ;
}

void atomicMin(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

void atomicMax(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

} // namespace

void Registry::Histogram::observe(double V) {
  if (!H)
    return;
  H->Count.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(H->Sum, V);
  atomicMin(H->Min, V);
  atomicMax(H->Max, V);
}

Registry::Cell *Registry::cellFor(std::string_view Name, MetricKind Kind) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByName.find(Name);
  if (It != ByName.end())
    return It->second->Kind == Kind ? It->second : nullptr;
  Cells.emplace_back(std::string(Name), Kind);
  Cell *C = &Cells.back();
  C->Min.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
  C->Max.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
  // Key the map by the cell's own name storage: deque elements never move,
  // and the string's heap buffer is stable once constructed.
  ByName.emplace(std::string_view(C->Name), C);
  return C;
}

Registry::Counter Registry::counter(std::string_view Name) {
  Counter H;
  if (Cell *C = cellFor(Name, MetricKind::Counter))
    H.C = &C->Value;
  return H;
}

Registry::Gauge Registry::gauge(std::string_view Name) {
  Gauge H;
  if (Cell *C = cellFor(Name, MetricKind::Gauge))
    H.C = &C->Value;
  return H;
}

Registry::Histogram Registry::histogram(std::string_view Name) {
  Histogram H;
  H.H = cellFor(Name, MetricKind::Histogram);
  return H;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out.reserve(Cells.size());
    for (const Cell &C : Cells) {
      MetricSample S;
      S.Name = C.Name;
      S.Kind = C.Kind;
      S.Value = C.Value.load(std::memory_order_relaxed);
      S.Count = C.Count.load(std::memory_order_relaxed);
      S.Sum = C.Sum.load(std::memory_order_relaxed);
      S.Min = C.Min.load(std::memory_order_relaxed);
      S.Max = C.Max.load(std::memory_order_relaxed);
      if (S.Count == 0)
        S.Min = S.Max = 0;
      Out.push_back(std::move(S));
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Cell &C : Cells) {
    C.Value.store(0, std::memory_order_relaxed);
    C.Count.store(0, std::memory_order_relaxed);
    C.Sum.store(0.0, std::memory_order_relaxed);
    C.Min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    C.Max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

Registry &Registry::global() {
  static Registry R;
  return R;
}

void publishProcessMetrics(Registry &R) {
  R.gauge("symbols.interned")
      .set(static_cast<int64_t>(support::SymbolTable::global().size()));
  R.gauge("process.allocations")
      .set(static_cast<int64_t>(support::allocationCount()));
  R.gauge("process.peak_rss_kb")
      .set(static_cast<int64_t>(support::peakRSSKb()));
}

void writeMetricsObject(JsonWriter &W,
                        const std::vector<MetricSample> &Samples) {
  W.beginObject();
  for (const MetricSample &S : Samples) {
    W.key(S.Name);
    W.beginObject();
    W.kv("kind", metricKindName(S.Kind));
    if (S.Kind == MetricKind::Histogram) {
      W.kv("count", S.Count);
      W.kv("sum", S.Sum, 9);
      W.kv("min", S.Min, 9);
      W.kv("max", S.Max, 9);
    } else {
      W.kv("value", S.Value);
    }
    W.endObject();
  }
  W.endObject();
}

} // namespace obs
} // namespace spire

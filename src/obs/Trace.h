//===----------------------------------------------------------------------===//
// Scoped-span tracer: a flight-recorder ring buffer of begin/end events
// rendered as Chrome trace-event JSON (`spirec --trace-json`, open the file
// in chrome://tracing or https://ui.perfetto.dev). Spans are emitted at
// every pipeline stage boundary, every individual qopt pass, legalization,
// equivalence-check phases, and lowerer inline-frame batches; each span
// carries its work counters as trace args so the timeline shows *what* a
// phase did, not just how long it took (docs/observability.md has the span
// hierarchy).
//
// Design constraints:
//  - Disabled cost is one relaxed atomic load per span (the common case —
//    tracing is off unless --trace-json was passed), so instrumentation can
//    stay unconditionally in hot-ish paths like per-pass boundaries.
//  - Span names and arg keys must be string literals (or otherwise outlive
//    the tracer): events store `const char *` to keep recording
//    allocation-free.
//  - The ring overwrites its oldest events when full rather than growing,
//    so a runaway compile cannot OOM through its own telemetry; the JSON
//    writer repairs begin/end balance at the cut.
//===----------------------------------------------------------------------===//

#ifndef SPIRE_OBS_TRACE_H
#define SPIRE_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spire {
namespace obs {

struct TraceArg {
  const char *Key = "";
  int64_t Value = 0;
};

struct TraceEvent {
  static constexpr unsigned MaxArgs = 8;

  const char *Name = "";
  char Phase = 'B'; ///< 'B' begins a span, 'E' ends the innermost one.
  uint32_t Tid = 0; ///< Dense per-tracer thread index (0 = first thread).
  uint64_t TsNs = 0; ///< Nanoseconds since enable().
  unsigned NumArgs = 0;
  TraceArg Args[MaxArgs];
};

class Tracer {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  bool enabled() const { return On.load(std::memory_order_relaxed); }

  /// Starts recording (clearing any previous events) with a ring of
  /// \p Capacity events. The enable() instant is timestamp zero.
  void enable(size_t Capacity = DefaultCapacity);
  void disable();

  void begin(const char *Name, const TraceArg *Args = nullptr,
             unsigned NumArgs = 0);
  void end(const char *Name, const TraceArg *Args = nullptr,
           unsigned NumArgs = 0);

  /// Events overwritten by ring wraparound since enable().
  uint64_t droppedEvents() const;

  /// Chronological (oldest-first) copy of the ring.
  std::vector<TraceEvent> events() const;

  /// Renders the ring as a Chrome trace-event JSON document
  /// (`{"traceEvents": [...], ...}`). Wraparound or a dump taken with
  /// spans still open would leave the stream unbalanced, so the writer
  /// drops 'E' events whose 'B' was overwritten and synthesizes closing
  /// 'E' events for spans still open at the end — every emitted event
  /// pairs up, which the validator (tools/validate_trace.py) and the
  /// viewers both require.
  std::string chromeTraceJson() const;

  /// The process-wide tracer every subsystem records into.
  static Tracer &global();

private:
  void record(const char *Name, char Phase, const TraceArg *Args,
              unsigned NumArgs);

  std::atomic<bool> On{false};
  mutable std::mutex Mu;
  std::vector<TraceEvent> Ring;
  size_t Head = 0;     ///< Next slot to write.
  size_t Live = 0;     ///< Events currently in the ring.
  uint64_t Dropped = 0;
  std::chrono::steady_clock::time_point Origin;
  std::unordered_map<std::thread::id, uint32_t> TidMap;
};

/// RAII span: records 'B' at construction (when tracing is enabled) and
/// 'E' with the accumulated args at destruction. Args attach to the end
/// event so counters computed during the span are visible on it.
class Span {
public:
  explicit Span(const char *Name, Tracer &T = Tracer::global())
      : T(T.enabled() ? &T : nullptr), Name(Name) {
    if (this->T)
      this->T->begin(Name);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (T)
      T->end(Name, Args, NumArgs);
  }

  /// Attaches `Key: Value` to the span (silently dropped past
  /// TraceEvent::MaxArgs or when tracing is off). \p Key must be a
  /// string literal.
  void arg(const char *Key, int64_t Value) {
    if (T && NumArgs < TraceEvent::MaxArgs)
      Args[NumArgs++] = {Key, Value};
  }

private:
  Tracer *T;
  const char *Name;
  TraceArg Args[TraceEvent::MaxArgs];
  unsigned NumArgs = 0;
};

} // namespace obs
} // namespace spire

#endif // SPIRE_OBS_TRACE_H

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>

namespace spire {
namespace obs {

void Tracer::enable(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.assign(std::max<size_t>(Capacity, 16), TraceEvent());
  Head = Live = 0;
  Dropped = 0;
  TidMap.clear();
  Origin = std::chrono::steady_clock::now();
  On.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { On.store(false, std::memory_order_relaxed); }

void Tracer::record(const char *Name, char Phase, const TraceArg *Args,
                    unsigned NumArgs) {
  auto Now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.empty())
    return;
  TraceEvent &E = Ring[Head];
  Head = (Head + 1) % Ring.size();
  if (Live == Ring.size())
    ++Dropped;
  else
    ++Live;
  E.Name = Name;
  E.Phase = Phase;
  E.TsNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now - Origin)
          .count());
  auto TidIt = TidMap.emplace(std::this_thread::get_id(),
                              static_cast<uint32_t>(TidMap.size()));
  E.Tid = TidIt.first->second;
  E.NumArgs = std::min(NumArgs, TraceEvent::MaxArgs);
  for (unsigned I = 0; I != E.NumArgs; ++I)
    E.Args[I] = Args[I];
}

void Tracer::begin(const char *Name, const TraceArg *Args, unsigned NumArgs) {
  if (enabled())
    record(Name, 'B', Args, NumArgs);
}

void Tracer::end(const char *Name, const TraceArg *Args, unsigned NumArgs) {
  if (enabled())
    record(Name, 'E', Args, NumArgs);
}

uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  Out.reserve(Live);
  size_t Start = (Head + Ring.size() - Live) % Ring.size();
  for (size_t I = 0; I != Live; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

namespace {

void writeEvent(JsonWriter &W, const char *Name, char Phase, uint32_t Tid,
                uint64_t TsNs, const TraceArg *Args, unsigned NumArgs) {
  W.beginObject();
  W.kv("name", Name);
  W.kv("cat", "spire");
  W.key("ph");
  W.value(std::string_view(&Phase, 1));
  W.kv("pid", 1);
  W.kv("tid", static_cast<int64_t>(Tid));
  // Chrome's ts unit is microseconds; keep nanosecond precision as a
  // fraction.
  char TsBuf[48];
  std::snprintf(TsBuf, sizeof(TsBuf), "%llu.%03u",
                static_cast<unsigned long long>(TsNs / 1000),
                static_cast<unsigned>(TsNs % 1000));
  W.key("ts");
  W.rawValue(TsBuf);
  if (NumArgs) {
    W.key("args");
    W.beginObject();
    for (unsigned I = 0; I != NumArgs; ++I)
      W.kv(Args[I].Key, Args[I].Value);
    W.endObject();
  }
  W.endObject();
}

} // namespace

std::string Tracer::chromeTraceJson() const {
  std::vector<TraceEvent> Events = events();
  uint64_t DroppedNow = droppedEvents();

  // Repair balance: per-tid stacks of open 'B' indices. An 'E' with no
  // open 'B' lost its begin to wraparound — drop it. Whatever is still
  // open at the end gets a synthetic 'E' at the last timestamp.
  std::vector<char> Emit(Events.size(), 1);
  std::unordered_map<uint32_t, std::vector<size_t>> Open;
  for (size_t I = 0; I != Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    if (E.Phase == 'B') {
      Open[E.Tid].push_back(I);
    } else {
      auto &Stack = Open[E.Tid];
      if (Stack.empty())
        Emit[I] = 0;
      else
        Stack.pop_back();
    }
  }
  uint64_t LastTs = Events.empty() ? 0 : Events.back().TsNs;

  JsonWriter W(0);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (size_t I = 0; I != Events.size(); ++I) {
    if (!Emit[I])
      continue;
    const TraceEvent &E = Events[I];
    writeEvent(W, E.Name, E.Phase, E.Tid, E.TsNs, E.Args, E.NumArgs);
  }
  // Close stragglers innermost-first per tid.
  for (auto &Entry : Open)
    for (auto It = Entry.second.rbegin(); It != Entry.second.rend(); ++It)
      writeEvent(W, Events[*It].Name, 'E', Entry.first, LastTs, nullptr, 0);
  W.endArray();
  W.kv("displayTimeUnit", "ms");
  W.key("otherData");
  W.beginObject();
  W.kv("tool", "spirec");
  W.kv("dropped_events", DroppedNow);
  W.endObject();
  W.endObject();
  return W.take();
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

} // namespace obs
} // namespace spire

#include "obs/Json.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace spire {
namespace obs {

void JsonWriter::escape(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void JsonWriter::newlineIndent() {
  if (Indent == 0)
    return;
  Out += '\n';
  Out.append(Stack.size() * Indent, ' ');
}

void JsonWriter::beforeValue() {
  if (Stack.empty()) {
    assert(!Started && "more than one top-level JSON value");
    Started = true;
    return;
  }
  Level &L = Stack.back();
  if (L.IsArray) {
    if (L.HasElements)
      Out += ',';
    L.HasElements = true;
    newlineIndent();
  } else {
    assert(PendingKey && "object value with no pending key");
    PendingKey = false;
  }
}

void JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && !Stack.back().IsArray && "key outside an object");
  assert(!PendingKey && "two keys in a row");
  Level &L = Stack.back();
  if (L.HasElements)
    Out += ',';
  L.HasElements = true;
  newlineIndent();
  Out += '"';
  escape(Out, K);
  Out += Indent ? "\": " : "\":";
  PendingKey = true;
}

void JsonWriter::beginObject() {
  beforeValue();
  Started = true;
  Out += '{';
  Stack.push_back({false, false});
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && !Stack.back().IsArray && "mismatched endObject");
  assert(!PendingKey && "dangling key at endObject");
  bool HadElements = Stack.back().HasElements;
  Stack.pop_back();
  if (HadElements)
    newlineIndent();
  Out += '}';
}

void JsonWriter::beginArray() {
  beforeValue();
  Started = true;
  Out += '[';
  Stack.push_back({true, false});
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().IsArray && "mismatched endArray");
  bool HadElements = Stack.back().HasElements;
  Stack.pop_back();
  if (HadElements)
    newlineIndent();
  Out += ']';
}

void JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  escape(Out, S);
  Out += '"';
}

void JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
}

void JsonWriter::value(int64_t N) {
  beforeValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  Out += Buf;
}

void JsonWriter::value(uint64_t N) {
  beforeValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  Out += Buf;
}

void JsonWriter::value(double D, int Precision) {
  beforeValue();
  if (!std::isfinite(D)) {
    Out += "null";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, D);
  Out += Buf;
}

void JsonWriter::rawValue(std::string_view Raw) {
  beforeValue();
  Out += Raw;
}

} // namespace obs
} // namespace spire

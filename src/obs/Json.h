//===----------------------------------------------------------------------===//
// A small streaming JSON writer shared by every machine-readable artifact
// the toolchain emits: `spirec --metrics-json`, `spirec --trace-json`, and
// the `BENCH_*.json` scale-bench reports. Replaces the per-bench hand-rolled
// fprintf emitters so the escaping and number formatting rules live in one
// place.
//
// Usage is push-style; the writer tracks the container stack and inserts
// commas, newlines, and indentation:
//
//   JsonWriter W;
//   W.beginObject();
//   W.kv("schema", "spire-bench-v1");
//   W.key("points");
//   W.beginArray();
//   ...
//   W.endArray();
//   W.endObject();
//   Out << W.str();
//
// Misnesting (a value with no pending key inside an object, endArray on an
// object, ...) asserts in debug builds; the writer is for trusted in-process
// producers, not a general serialization library.
//===----------------------------------------------------------------------===//

#ifndef SPIRE_OBS_JSON_H
#define SPIRE_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spire {
namespace obs {

class JsonWriter {
public:
  /// \p Indent is the per-level indentation width; 0 emits compact
  /// single-line JSON (used for trace events, where one-event-per-line
  /// output would still be megabytes of whitespace).
  explicit JsonWriter(unsigned Indent = 2) : Indent(Indent) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits the key for the next value. Only valid directly inside an
  /// object.
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(bool B);
  void value(int64_t N);
  void value(uint64_t N);
  void value(int N) { value(static_cast<int64_t>(N)); }
  void value(unsigned N) { value(static_cast<uint64_t>(N)); }
  /// Doubles print with %.*g; NaN/inf (invalid JSON) print as null.
  void value(double D, int Precision = 6);

  /// key + value in one call.
  template <typename T> void kv(std::string_view K, T V) {
    key(K);
    value(V);
  }
  void kv(std::string_view K, double V, int Precision) {
    key(K);
    value(V, Precision);
  }

  /// Emits \p Raw verbatim in value position (caller guarantees it is a
  /// valid JSON fragment, e.g. a preformatted number).
  void rawValue(std::string_view Raw);

  /// True once every container opened has been closed.
  bool complete() const { return Started && Stack.empty(); }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

  /// Appends \p S with JSON string escaping (no surrounding quotes) to
  /// \p Out — shared by the writer and any caller that formats strings
  /// manually.
  static void escape(std::string &Out, std::string_view S);

private:
  struct Level {
    bool IsArray;
    bool HasElements;
  };

  /// Comma/newline/indent bookkeeping before an element in value
  /// position.
  void beforeValue();
  void newlineIndent();

  std::string Out;
  std::vector<Level> Stack;
  unsigned Indent;
  bool PendingKey = false;
  bool Started = false;
};

} // namespace obs
} // namespace spire

#endif // SPIRE_OBS_JSON_H

//===----------------------------------------------------------------------===//
// Process-wide metrics registry: named counters, gauges, and histograms
// behind lightweight handles, updated with relaxed atomics so the coming
// thread-pool work (ROADMAP items 2 and 4) can bump them from any thread
// without locks. This absorbs the previously fragmented self-measurement —
// qopt::OptStats, AllocStats samples, the cost-model profile cache,
// bit-sliced simulator throughput, verifier obligation counts, and
// DiagnosticEngine totals all surface here — and feeds one machine-readable
// dump (`spirec --metrics-json`, docs/observability.md has the catalog).
//
// Cost model: handle lookup (`Registry::counter(...)`) takes a mutex and
// should be hoisted out of hot loops; updates through a handle are a single
// relaxed fetch_add. The hot qopt loops keep their local accumulators and
// flush once per pass, so the registry adds nothing measurable to the
// compile path.
//===----------------------------------------------------------------------===//

#ifndef SPIRE_OBS_METRICS_H
#define SPIRE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace spire {
namespace obs {

class JsonWriter;

/// A relaxed atomic int64 cell that stays copyable so it can live inside
/// value-semantic stats structs (qopt::OptStats is copied into
/// CompilationResult). Copies snapshot the value; concurrent increments on
/// the *same* cell are race-free, which is the thread-safety OptStats
/// needs for sharded passes.
class AtomicCounter {
public:
  AtomicCounter(int64_t Init = 0) : V(Init) {} // NOLINT: implicit by design
  AtomicCounter(const AtomicCounter &O) : V(O.value()) {}
  AtomicCounter &operator=(const AtomicCounter &O) {
    V.store(O.value(), std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter &operator=(int64_t N) {
    V.store(N, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter &operator+=(int64_t N) {
    V.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter &operator-=(int64_t N) { return *this += -N; }
  AtomicCounter &operator++() { return *this += 1; }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  operator int64_t() const { return value(); } // NOLINT: implicit by design

private:
  std::atomic<int64_t> V;
};

enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

const char *metricKindName(MetricKind K);

/// A point-in-time copy of one metric, as returned by
/// Registry::snapshot().
struct MetricSample {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  int64_t Value = 0; ///< Counter total / last gauge value.
  int64_t Count = 0; ///< Histogram: number of observations.
  double Sum = 0;    ///< Histogram: sum of observations.
  double Min = 0;    ///< Histogram: smallest observation (0 if none).
  double Max = 0;    ///< Histogram: largest observation (0 if none).
};

class Registry {
  struct Cell {
    std::string Name;
    MetricKind Kind;
    std::atomic<int64_t> Value{0};
    std::atomic<int64_t> Count{0};
    std::atomic<double> Sum{0.0};
    std::atomic<double> Min{0.0};
    std::atomic<double> Max{0.0};
    explicit Cell(std::string Name, MetricKind Kind)
        : Name(std::move(Name)), Kind(Kind) {}
  };

public:
  /// Monotonic counter handle. Default-constructed handles are inert
  /// no-ops, so structs can embed one unconditionally.
  class Counter {
    friend class Registry;
    std::atomic<int64_t> *C = nullptr;

  public:
    Counter() = default;
    void add(int64_t N) {
      if (C)
        C->fetch_add(N, std::memory_order_relaxed);
    }
    Counter &operator+=(int64_t N) {
      add(N);
      return *this;
    }
    Counter &operator++() {
      add(1);
      return *this;
    }
    int64_t value() const {
      return C ? C->load(std::memory_order_relaxed) : 0;
    }
  };

  /// Last-write-wins gauge handle (plus a max() helper for peaks).
  class Gauge {
    friend class Registry;
    std::atomic<int64_t> *C = nullptr;

  public:
    Gauge() = default;
    void set(int64_t V) {
      if (C)
        C->store(V, std::memory_order_relaxed);
    }
    /// Raises the gauge to \p V if it is below it (racy max is fine for
    /// monitoring).
    void max(int64_t V) {
      if (!C)
        return;
      int64_t Cur = C->load(std::memory_order_relaxed);
      while (Cur < V &&
             !C->compare_exchange_weak(Cur, V, std::memory_order_relaxed))
        ;
    }
    int64_t value() const {
      return C ? C->load(std::memory_order_relaxed) : 0;
    }
  };

  /// Count/sum/min/max histogram handle (no buckets — the consumers are
  /// summary tables, not quantile dashboards).
  class Histogram {
    friend class Registry;
    Cell *H = nullptr;

  public:
    Histogram() = default;
    void observe(double V);
    int64_t count() const {
      return H ? H->Count.load(std::memory_order_relaxed) : 0;
    }
    double sum() const {
      return H ? H->Sum.load(std::memory_order_relaxed) : 0;
    }
  };

  /// Returns the handle for \p Name, registering it on first use.
  /// Handles stay valid for the registry's lifetime (cells live in a
  /// deque and are never removed). Re-requesting an existing name with a
  /// different kind returns an inert handle rather than corrupting the
  /// cell.
  Counter counter(std::string_view Name);
  Gauge gauge(std::string_view Name);
  Histogram histogram(std::string_view Name);

  /// Point-in-time copy of every registered metric, sorted by name.
  std::vector<MetricSample> snapshot() const;

  /// Zeroes every metric's values while keeping registrations (and
  /// outstanding handles) valid. For tests and per-request scoping in
  /// the future daemon mode.
  void reset();

  /// The process-wide registry every subsystem publishes into.
  static Registry &global();

private:
  Cell *cellFor(std::string_view Name, MetricKind Kind);

  mutable std::mutex Mu;
  std::deque<Cell> Cells;
  std::unordered_map<std::string_view, Cell *> ByName;
};

/// Refreshes the process-level gauges (`symbols.interned`,
/// `process.allocations`, `process.peak_rss_kb`) from their live sources.
/// Called right before a snapshot is rendered.
void publishProcessMetrics(Registry &R = Registry::global());

/// Writes `{"name": {"kind": ..., "value": ...}, ...}` (one JSON object,
/// histograms get count/sum/min/max) for \p Samples. Shared by
/// `--metrics-json` and the bench writers so both artifacts carry the same
/// metrics shape.
void writeMetricsObject(JsonWriter &W, const std::vector<MetricSample> &Samples);

} // namespace obs
} // namespace spire

#endif // SPIRE_OBS_METRICS_H

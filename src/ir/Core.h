//===----------------------------------------------------------------------===//
///
/// \file
/// The core intermediate representation of Tower (paper Fig. 13):
///
///   s ::= if x { s } | s1; s2 | skip | x <- e | x -> e | H(x)
///       | x1 <=> x2 | *x1 <=> x2
///   e ::= v | pi1(x) | pi2(x) | uop x | x1 bop x2
///
/// extended, as in the paper's Section 7 ("we modified the core IR to add
/// with-do blocks"), with a first-class `with { s1 } do { s2 }` node so
/// that the conditional-narrowing optimization and the Appendix-D register
/// pinning rule can see block structure. Expansion to s1; s2; I[s1]
/// happens in the circuit compiler and the cost model, not destructively.
///
/// Operands of core expressions are atoms: either variables or constants
/// (the paper's value forms n, true, false, null, ()). All atoms carry
/// their type, annotated during lowering.
///
/// Variable names are interned support::Symbols (4-byte ids into the
/// process-wide spelling arena), so every scope lookup, mod-set query,
/// and equality test in the middle end is an integer operation; spellings
/// are materialized only by str() and diagnostics. The variable analyses
/// (modSet, allVars, collectVars) return flat sorted SymbolSets built
/// with one sort+unique pass — no per-element node allocation.
///
/// Recursion discipline: const-arg recursion lowers to IR whose
/// with-block nesting grows with the recursion depth, so *everything*
/// here that walks statement trees — destruction, clone, reversal,
/// structural equality, printing, and the analyses — runs on explicit
/// worklists with O(1) C++ stack, matching the PR 2 lowerer and letting
/// deep programs flow through the whole pipeline (ir_test pins
/// destruction and printing at depth 200k).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_IR_CORE_H
#define SPIRE_IR_CORE_H

#include "ast/AST.h"
#include "support/Symbol.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spire::ir {

using ast::BinaryOp;
using ast::Type;
using ast::TypeContext;
using ast::UnaryOp;
using support::Symbol;
using support::SymbolSet;

//===----------------------------------------------------------------------===//
// Atoms
//===----------------------------------------------------------------------===//

/// A core operand: a variable reference or a constant value. Constants are
/// stored as raw little-endian bit patterns (64 bits suffice for the word
/// widths this compiler targets; wider values are asserted against in the
/// circuit backend).
struct Atom {
  enum class Kind { Var, Const };
  Kind K = Kind::Const;
  Symbol Var;            ///< For Kind::Var.
  uint64_t ConstBits = 0;///< For Kind::Const.
  const Type *Ty = nullptr;
  /// Marks a statically assigned heap-cell address produced by `alloc<T>`
  /// lowering. The backend writes such constants with a popcount-uniform
  /// gate pattern so that per-recursion-level gate counts stay exactly
  /// equal (mirroring the uniform cost of Tower's runtime allocator; see
  /// DESIGN.md section 2).
  bool IsAllocConst = false;

  bool isVar() const { return K == Kind::Var; }
  bool isConst() const { return K == Kind::Const; }
  /// A constant whose bit pattern is all zero (including null and ()).
  bool isZeroConst() const { return isConst() && ConstBits == 0; }

  static Atom var(Symbol Name, const Type *Ty);
  static Atom constant(uint64_t Bits, const Type *Ty);
  static Atom allocConst(uint64_t Address, const Type *Ty);

  std::string str() const;
  friend bool operator==(const Atom &A, const Atom &B);
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// A core right-hand side. `Atom` is the value form v; the rest mirror
/// Fig. 13's expression grammar over atom operands.
struct CoreExpr {
  enum class Kind { AtomE, Pair, Proj, Unary, Binary };
  Kind K = Kind::AtomE;
  Atom A;             ///< First (or only) operand.
  Atom B;             ///< Second operand (Pair, Binary).
  unsigned ProjIndex = 0;
  UnaryOp UOp = UnaryOp::Not;
  BinaryOp BOp = BinaryOp::And;
  const Type *Ty = nullptr; ///< Result type.

  static CoreExpr atom(Atom A);
  static CoreExpr pair(Atom A, Atom B, const Type *Ty);
  static CoreExpr proj(Atom A, unsigned Index, const Type *Ty);
  static CoreExpr unary(UnaryOp Op, Atom A, const Type *Ty);
  static CoreExpr binary(BinaryOp Op, Atom A, Atom B, const Type *Ty);

  /// Whether this expression is a constant value (paper: "x <- v ... for
  /// which no gates are emitted" when v is all-zero).
  bool isConst() const { return K == Kind::AtomE && A.isConst(); }
  bool isZeroConst() const { return isConst() && A.ConstBits == 0; }

  void collectVars(SymbolSet &Out) const;
  /// Appends the variable operands (unsorted, possibly duplicated) —
  /// the building block the sort+unique analyses batch over.
  void appendVars(std::vector<Symbol> &Out) const;
  std::string str() const;
  friend bool operator==(const CoreExpr &A, const CoreExpr &B);
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct CoreStmt;
using CoreStmtPtr = std::unique_ptr<CoreStmt>;
using CoreStmtList = std::vector<CoreStmtPtr>;

/// A core statement. Sequencing is represented by CoreStmtList in block
/// positions rather than by a binary Seq node, matching the list-based
/// representation of the paper's Appendix C OCaml.
struct CoreStmt {
  enum class Kind {
    Skip,
    Assign,   ///< x <- e
    UnAssign, ///< x -> e
    If,       ///< if x { body }
    With,     ///< with { body } do { doBody }
    Swap,     ///< x1 <=> x2
    MemSwap,  ///< *x1 <=> x2
    Hadamard, ///< H(x)
  };

  Kind K = Kind::Skip;
  Symbol Name;   ///< Assign/UnAssign/Hadamard target, Swap LHS,
                 ///< MemSwap pointer, If condition variable.
  Symbol Name2;  ///< Swap RHS, MemSwap value.
  const Type *Ty = nullptr;  ///< Type of Name (where meaningful).
  const Type *Ty2 = nullptr; ///< Type of Name2 (Swap/MemSwap).
  CoreExpr E;         ///< Assign/UnAssign RHS.
  CoreStmtList Body;    ///< If / with-block.
  CoreStmtList DoBody;  ///< With do-block.

  CoreStmt() = default;
  CoreStmt(CoreStmt &&) = default;
  CoreStmt &operator=(CoreStmt &&) = default;
  /// Iterative (worklist) destruction: const-arg recursion lowers to IR
  /// whose with-block nesting grows with the recursion depth, so the
  /// default member-wise destructor would recurse once per level and
  /// overflow the stack on deep programs. Children are drained onto an
  /// explicit worklist instead, bounding destruction at O(1) stack depth
  /// regardless of nesting (ir_test.cpp pins this at depth 200k).
  ~CoreStmt();

  CoreStmtPtr clone() const;
  std::string str(unsigned Indent = 0) const;

  static CoreStmtPtr skip();
  static CoreStmtPtr assign(Symbol X, const Type *Ty, CoreExpr E);
  static CoreStmtPtr unassign(Symbol X, const Type *Ty, CoreExpr E);
  static CoreStmtPtr ifStmt(Symbol CondVar, CoreStmtList Body);
  static CoreStmtPtr with(CoreStmtList Body, CoreStmtList DoBody);
  static CoreStmtPtr swap(Symbol A, const Type *TyA, Symbol B,
                          const Type *TyB);
  static CoreStmtPtr memSwap(Symbol Ptr, const Type *PtrTy, Symbol Val,
                             const Type *ValTy);
  static CoreStmtPtr hadamard(Symbol X, const Type *Ty);
};

/// Deep structural equality, used by optimization and reversal tests.
bool stmtEquals(const CoreStmt &A, const CoreStmt &B);
bool stmtListEquals(const CoreStmtList &A, const CoreStmtList &B);

CoreStmtList cloneStmts(const CoreStmtList &Stmts);
std::string strStmts(const CoreStmtList &Stmts, unsigned Indent = 0);

//===----------------------------------------------------------------------===//
// Reversal and analyses
//===----------------------------------------------------------------------===//

/// The derived form I[s] of Section 4: I[s1; s2] = I[s2]; I[s1],
/// I[x <- e] = x -> e and vice versa, I[if x { s }] = if x { I[s] },
/// I[with{a}do{b}] = with{a}do{I[b]}, other statements are self-inverse.
CoreStmtPtr reverseStmt(const CoreStmt &S);
CoreStmtList reverseStmts(const CoreStmtList &Stmts);

/// mod(s) from Fig. 20, extended to With (both blocks).
SymbolSet modSet(const CoreStmtList &Stmts);

/// All variable names referenced anywhere in the statements.
SymbolSet allVars(const CoreStmtList &Stmts);

/// A whole lowered program: a flat core statement list plus the variables
/// that are inputs (function parameters) and the declared output.
struct CoreProgram {
  std::shared_ptr<TypeContext> Types;
  std::vector<std::pair<Symbol, const Type *>> Inputs;
  Symbol OutputVar;
  const Type *OutputTy = nullptr;
  CoreStmtList Body;
  /// Number of heap cells statically assigned by `alloc<T>` lowering.
  unsigned NumAllocCells = 0;
  /// Widest pointee type (in bits at the backend's word width) ever
  /// stored through a pointer; used to size qRAM cells.
  std::vector<const Type *> PointeeTypes;

  CoreProgram clone() const;
  /// Copies everything except Body (left empty). Passes that produce a
  /// fresh body (the Spire rewriter) use this so the non-body field
  /// list lives in exactly one place next to clone().
  CoreProgram cloneShell() const;
  std::string str() const;
};

/// Generates fresh, globally unique variable names with a given prefix.
/// The "%" sigil cannot appear in surface identifiers, so fresh names
/// never collide with interned source spellings.
class NameGen {
public:
  Symbol fresh(std::string_view Prefix) {
    std::string Spelling;
    Spelling.reserve(Prefix.size() + 12);
    Spelling += '%';
    Spelling += Prefix;
    Spelling += std::to_string(Counter++);
    return Symbol(Spelling);
  }

private:
  unsigned Counter = 0;
};

} // namespace spire::ir

#endif // SPIRE_IR_CORE_H

#include "ir/Core.h"

#include <cassert>

namespace spire::ir {

//===----------------------------------------------------------------------===//
// Atom
//===----------------------------------------------------------------------===//

Atom Atom::var(std::string Name, const Type *Ty) {
  Atom A;
  A.K = Kind::Var;
  A.Var = std::move(Name);
  A.Ty = Ty;
  return A;
}

Atom Atom::constant(uint64_t Bits, const Type *Ty) {
  Atom A;
  A.K = Kind::Const;
  A.ConstBits = Bits;
  A.Ty = Ty;
  return A;
}

Atom Atom::allocConst(uint64_t Address, const Type *Ty) {
  Atom A = constant(Address, Ty);
  A.IsAllocConst = true;
  return A;
}

std::string Atom::str() const {
  if (isVar())
    return Var;
  if (Ty && Ty->isBool())
    return ConstBits ? "true" : "false";
  if (Ty && Ty->isPtr())
    return ConstBits == 0 ? "null" : "ptr[" + std::to_string(ConstBits) + "]";
  if (Ty && Ty->isUnit())
    return "()";
  return std::to_string(ConstBits);
}

bool operator==(const Atom &A, const Atom &B) {
  if (A.K != B.K)
    return false;
  if (A.isVar())
    return A.Var == B.Var;
  return A.ConstBits == B.ConstBits;
}

//===----------------------------------------------------------------------===//
// CoreExpr
//===----------------------------------------------------------------------===//

CoreExpr CoreExpr::atom(Atom A) {
  CoreExpr E;
  E.K = Kind::AtomE;
  E.Ty = A.Ty;
  E.A = std::move(A);
  return E;
}

CoreExpr CoreExpr::pair(Atom A, Atom B, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Pair;
  E.A = std::move(A);
  E.B = std::move(B);
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::proj(Atom A, unsigned Index, const Type *Ty) {
  assert((Index == 1 || Index == 2) && "projection index must be 1 or 2");
  CoreExpr E;
  E.K = Kind::Proj;
  E.A = std::move(A);
  E.ProjIndex = Index;
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::unary(UnaryOp Op, Atom A, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Unary;
  E.UOp = Op;
  E.A = std::move(A);
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::binary(BinaryOp Op, Atom A, Atom B, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Binary;
  E.BOp = Op;
  E.A = std::move(A);
  E.B = std::move(B);
  E.Ty = Ty;
  return E;
}

void CoreExpr::collectVars(std::set<std::string> &Out) const {
  if (A.isVar())
    Out.insert(A.Var);
  if ((K == Kind::Pair || K == Kind::Binary) && B.isVar())
    Out.insert(B.Var);
}

std::string CoreExpr::str() const {
  switch (K) {
  case Kind::AtomE:
    return A.str();
  case Kind::Pair:
    return "(" + A.str() + ", " + B.str() + ")";
  case Kind::Proj:
    return A.str() + "." + std::to_string(ProjIndex);
  case Kind::Unary:
    return std::string(ast::spelling(UOp)) + " " + A.str();
  case Kind::Binary:
    return A.str() + " " + ast::spelling(BOp) + " " + B.str();
  }
  return "?";
}

bool operator==(const CoreExpr &X, const CoreExpr &Y) {
  if (X.K != Y.K)
    return false;
  switch (X.K) {
  case CoreExpr::Kind::AtomE:
    return X.A == Y.A;
  case CoreExpr::Kind::Pair:
    return X.A == Y.A && X.B == Y.B;
  case CoreExpr::Kind::Proj:
    return X.A == Y.A && X.ProjIndex == Y.ProjIndex;
  case CoreExpr::Kind::Unary:
    return X.UOp == Y.UOp && X.A == Y.A;
  case CoreExpr::Kind::Binary:
    return X.BOp == Y.BOp && X.A == Y.A && X.B == Y.B;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// CoreStmt
//===----------------------------------------------------------------------===//

CoreStmt::~CoreStmt() {
  // Drain nested blocks onto an explicit worklist so destruction never
  // recurses through the nesting (see the declaration comment). Each
  // popped statement has its children moved out before its unique_ptr
  // releases it, so the implicit member destructors only ever see empty
  // Body/DoBody lists.
  if (Body.empty() && DoBody.empty())
    return;
  std::vector<CoreStmtPtr> Work;
  auto drain = [&Work](CoreStmtList &L) {
    for (CoreStmtPtr &S : L)
      if (S && !(S->Body.empty() && S->DoBody.empty()))
        Work.push_back(std::move(S));
    L.clear();
  };
  drain(Body);
  drain(DoBody);
  while (!Work.empty()) {
    CoreStmtPtr S = std::move(Work.back());
    Work.pop_back();
    drain(S->Body);
    drain(S->DoBody);
  }
}

CoreStmtPtr CoreStmt::clone() const {
  auto S = std::make_unique<CoreStmt>();
  S->K = K;
  S->Name = Name;
  S->Name2 = Name2;
  S->Ty = Ty;
  S->Ty2 = Ty2;
  S->E = E;
  S->Body = cloneStmts(Body);
  S->DoBody = cloneStmts(DoBody);
  return S;
}

static std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

std::string CoreStmt::str(unsigned Indent) const {
  switch (K) {
  case Kind::Skip:
    return pad(Indent) + "skip;\n";
  case Kind::Assign:
    return pad(Indent) + Name + " <- " + E.str() + ";\n";
  case Kind::UnAssign:
    return pad(Indent) + Name + " -> " + E.str() + ";\n";
  case Kind::If:
    return pad(Indent) + "if " + Name + " {\n" + strStmts(Body, Indent + 1) +
           pad(Indent) + "}\n";
  case Kind::With:
    return pad(Indent) + "with {\n" + strStmts(Body, Indent + 1) +
           pad(Indent) + "} do {\n" + strStmts(DoBody, Indent + 1) +
           pad(Indent) + "}\n";
  case Kind::Swap:
    return pad(Indent) + Name + " <-> " + Name2 + ";\n";
  case Kind::MemSwap:
    return pad(Indent) + "*" + Name + " <-> " + Name2 + ";\n";
  case Kind::Hadamard:
    return pad(Indent) + "H(" + Name + ");\n";
  }
  return pad(Indent) + "?\n";
}

CoreStmtPtr CoreStmt::skip() { return std::make_unique<CoreStmt>(); }

CoreStmtPtr CoreStmt::assign(std::string X, const Type *Ty, CoreExpr E) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Assign;
  S->Name = std::move(X);
  S->Ty = Ty;
  S->E = std::move(E);
  return S;
}

CoreStmtPtr CoreStmt::unassign(std::string X, const Type *Ty, CoreExpr E) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::UnAssign;
  S->Name = std::move(X);
  S->Ty = Ty;
  S->E = std::move(E);
  return S;
}

CoreStmtPtr CoreStmt::ifStmt(std::string CondVar, CoreStmtList Body) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::If;
  S->Name = std::move(CondVar);
  S->Body = std::move(Body);
  return S;
}

CoreStmtPtr CoreStmt::with(CoreStmtList Body, CoreStmtList DoBody) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::With;
  S->Body = std::move(Body);
  S->DoBody = std::move(DoBody);
  return S;
}

CoreStmtPtr CoreStmt::swap(std::string A, const Type *TyA, std::string B,
                           const Type *TyB) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Swap;
  S->Name = std::move(A);
  S->Ty = TyA;
  S->Name2 = std::move(B);
  S->Ty2 = TyB;
  return S;
}

CoreStmtPtr CoreStmt::memSwap(std::string Ptr, const Type *PtrTy,
                              std::string Val, const Type *ValTy) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::MemSwap;
  S->Name = std::move(Ptr);
  S->Ty = PtrTy;
  S->Name2 = std::move(Val);
  S->Ty2 = ValTy;
  return S;
}

CoreStmtPtr CoreStmt::hadamard(std::string X, const Type *Ty) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Hadamard;
  S->Name = std::move(X);
  S->Ty = Ty;
  return S;
}

bool stmtEquals(const CoreStmt &A, const CoreStmt &B) {
  if (A.K != B.K || A.Name != B.Name || A.Name2 != B.Name2)
    return false;
  if ((A.K == CoreStmt::Kind::Assign || A.K == CoreStmt::Kind::UnAssign) &&
      !(A.E == B.E))
    return false;
  return stmtListEquals(A.Body, B.Body) && stmtListEquals(A.DoBody, B.DoBody);
}

bool stmtListEquals(const CoreStmtList &A, const CoreStmtList &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!stmtEquals(*A[I], *B[I]))
      return false;
  return true;
}

CoreStmtList cloneStmts(const CoreStmtList &Stmts) {
  CoreStmtList Out;
  Out.reserve(Stmts.size());
  for (const auto &S : Stmts)
    Out.push_back(S->clone());
  return Out;
}

std::string strStmts(const CoreStmtList &Stmts, unsigned Indent) {
  std::string Out;
  for (const auto &S : Stmts)
    Out += S->str(Indent);
  return Out;
}

//===----------------------------------------------------------------------===//
// Reversal and analyses
//===----------------------------------------------------------------------===//

CoreStmtPtr reverseStmt(const CoreStmt &S) {
  switch (S.K) {
  case CoreStmt::Kind::Assign:
    return CoreStmt::unassign(S.Name, S.Ty, S.E);
  case CoreStmt::Kind::UnAssign:
    return CoreStmt::assign(S.Name, S.Ty, S.E);
  case CoreStmt::Kind::If:
    return CoreStmt::ifStmt(S.Name, reverseStmts(S.Body));
  case CoreStmt::Kind::With:
    // (a; b; I[a])^-1 = a; I[b]; I[a].
    return CoreStmt::with(cloneStmts(S.Body), reverseStmts(S.DoBody));
  case CoreStmt::Kind::Skip:
  case CoreStmt::Kind::Swap:
  case CoreStmt::Kind::MemSwap:
  case CoreStmt::Kind::Hadamard:
    return S.clone();
  }
  return S.clone();
}

CoreStmtList reverseStmts(const CoreStmtList &Stmts) {
  CoreStmtList Out;
  Out.reserve(Stmts.size());
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
    Out.push_back(reverseStmt(**It));
  return Out;
}

static void modStmt(const CoreStmt &S, std::set<std::string> &Out) {
  switch (S.K) {
  case CoreStmt::Kind::Skip:
    break;
  case CoreStmt::Kind::Assign:
  case CoreStmt::Kind::UnAssign:
  case CoreStmt::Kind::Hadamard:
    Out.insert(S.Name);
    break;
  case CoreStmt::Kind::Swap:
    Out.insert(S.Name);
    Out.insert(S.Name2);
    break;
  case CoreStmt::Kind::MemSwap:
    Out.insert(S.Name2);
    break;
  case CoreStmt::Kind::If:
    for (const auto &Sub : S.Body)
      modStmt(*Sub, Out);
    break;
  case CoreStmt::Kind::With:
    for (const auto &Sub : S.Body)
      modStmt(*Sub, Out);
    for (const auto &Sub : S.DoBody)
      modStmt(*Sub, Out);
    break;
  }
}

std::set<std::string> modSet(const CoreStmtList &Stmts) {
  std::set<std::string> Out;
  for (const auto &S : Stmts)
    modStmt(*S, Out);
  return Out;
}

static void allVarsStmt(const CoreStmt &S, std::set<std::string> &Out) {
  if (!S.Name.empty())
    Out.insert(S.Name);
  if (!S.Name2.empty())
    Out.insert(S.Name2);
  if (S.K == CoreStmt::Kind::Assign || S.K == CoreStmt::Kind::UnAssign)
    S.E.collectVars(Out);
  for (const auto &Sub : S.Body)
    allVarsStmt(*Sub, Out);
  for (const auto &Sub : S.DoBody)
    allVarsStmt(*Sub, Out);
}

std::set<std::string> allVars(const CoreStmtList &Stmts) {
  std::set<std::string> Out;
  for (const auto &S : Stmts)
    allVarsStmt(*S, Out);
  return Out;
}

CoreProgram CoreProgram::clone() const {
  CoreProgram P;
  P.Types = Types;
  P.Inputs = Inputs;
  P.OutputVar = OutputVar;
  P.OutputTy = OutputTy;
  P.Body = cloneStmts(Body);
  P.NumAllocCells = NumAllocCells;
  P.PointeeTypes = PointeeTypes;
  return P;
}

std::string CoreProgram::str() const {
  std::string Out = "program(";
  for (size_t I = 0; I != Inputs.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Inputs[I].first + ": " + Inputs[I].second->str();
  }
  Out += ") -> " + OutputVar + " {\n" + strStmts(Body, 1) + "}\n";
  return Out;
}

} // namespace spire::ir

#include "ir/Core.h"

#include <cassert>

namespace spire::ir {

//===----------------------------------------------------------------------===//
// Atom
//===----------------------------------------------------------------------===//

Atom Atom::var(Symbol Name, const Type *Ty) {
  Atom A;
  A.K = Kind::Var;
  A.Var = Name;
  A.Ty = Ty;
  return A;
}

Atom Atom::constant(uint64_t Bits, const Type *Ty) {
  Atom A;
  A.K = Kind::Const;
  A.ConstBits = Bits;
  A.Ty = Ty;
  return A;
}

Atom Atom::allocConst(uint64_t Address, const Type *Ty) {
  Atom A = constant(Address, Ty);
  A.IsAllocConst = true;
  return A;
}

std::string Atom::str() const {
  if (isVar())
    return Var.str();
  if (Ty && Ty->isBool())
    return ConstBits ? "true" : "false";
  if (Ty && Ty->isPtr())
    return ConstBits == 0 ? "null" : "ptr[" + std::to_string(ConstBits) + "]";
  if (Ty && Ty->isUnit())
    return "()";
  return std::to_string(ConstBits);
}

bool operator==(const Atom &A, const Atom &B) {
  if (A.K != B.K)
    return false;
  if (A.isVar())
    return A.Var == B.Var;
  return A.ConstBits == B.ConstBits;
}

//===----------------------------------------------------------------------===//
// CoreExpr
//===----------------------------------------------------------------------===//

CoreExpr CoreExpr::atom(Atom A) {
  CoreExpr E;
  E.K = Kind::AtomE;
  E.Ty = A.Ty;
  E.A = std::move(A);
  return E;
}

CoreExpr CoreExpr::pair(Atom A, Atom B, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Pair;
  E.A = std::move(A);
  E.B = std::move(B);
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::proj(Atom A, unsigned Index, const Type *Ty) {
  assert((Index == 1 || Index == 2) && "projection index must be 1 or 2");
  CoreExpr E;
  E.K = Kind::Proj;
  E.A = std::move(A);
  E.ProjIndex = Index;
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::unary(UnaryOp Op, Atom A, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Unary;
  E.UOp = Op;
  E.A = std::move(A);
  E.Ty = Ty;
  return E;
}

CoreExpr CoreExpr::binary(BinaryOp Op, Atom A, Atom B, const Type *Ty) {
  CoreExpr E;
  E.K = Kind::Binary;
  E.BOp = Op;
  E.A = std::move(A);
  E.B = std::move(B);
  E.Ty = Ty;
  return E;
}

void CoreExpr::appendVars(std::vector<Symbol> &Out) const {
  if (A.isVar())
    Out.push_back(A.Var);
  if ((K == Kind::Pair || K == Kind::Binary) && B.isVar())
    Out.push_back(B.Var);
}

void CoreExpr::collectVars(SymbolSet &Out) const {
  if (A.isVar())
    Out.insert(A.Var);
  if ((K == Kind::Pair || K == Kind::Binary) && B.isVar())
    Out.insert(B.Var);
}

std::string CoreExpr::str() const {
  switch (K) {
  case Kind::AtomE:
    return A.str();
  case Kind::Pair:
    return "(" + A.str() + ", " + B.str() + ")";
  case Kind::Proj:
    return A.str() + "." + std::to_string(ProjIndex);
  case Kind::Unary:
    return std::string(ast::spelling(UOp)) + " " + A.str();
  case Kind::Binary:
    return A.str() + " " + ast::spelling(BOp) + " " + B.str();
  }
  return "?";
}

bool operator==(const CoreExpr &X, const CoreExpr &Y) {
  if (X.K != Y.K)
    return false;
  switch (X.K) {
  case CoreExpr::Kind::AtomE:
    return X.A == Y.A;
  case CoreExpr::Kind::Pair:
    return X.A == Y.A && X.B == Y.B;
  case CoreExpr::Kind::Proj:
    return X.A == Y.A && X.ProjIndex == Y.ProjIndex;
  case CoreExpr::Kind::Unary:
    return X.UOp == Y.UOp && X.A == Y.A;
  case CoreExpr::Kind::Binary:
    return X.BOp == Y.BOp && X.A == Y.A && X.B == Y.B;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// CoreStmt
//===----------------------------------------------------------------------===//

CoreStmt::~CoreStmt() {
  // Drain nested blocks onto an explicit worklist so destruction never
  // recurses through the nesting (see the declaration comment). Each
  // popped statement has its children moved out before its unique_ptr
  // releases it, so the implicit member destructors only ever see empty
  // Body/DoBody lists.
  if (Body.empty() && DoBody.empty())
    return;
  std::vector<CoreStmtPtr> Work;
  auto drain = [&Work](CoreStmtList &L) {
    for (CoreStmtPtr &S : L)
      if (S && !(S->Body.empty() && S->DoBody.empty()))
        Work.push_back(std::move(S));
    L.clear();
  };
  drain(Body);
  drain(DoBody);
  while (!Work.empty()) {
    CoreStmtPtr S = std::move(Work.back());
    Work.pop_back();
    drain(S->Body);
    drain(S->DoBody);
  }
}

namespace {

/// Shared machinery for the deep-copy family (clone and reversal): one
/// explicit worklist of (source, destination, mode) items, so copying
/// depth-N nesting uses O(1) C++ stack.
enum class CopyMode : uint8_t {
  Clone,   ///< Verbatim structural copy.
  Reverse, ///< The derived form I[s] of Section 4.
};

struct CopyItem {
  const CoreStmt *Src;
  CoreStmt *Dst;
  CopyMode M;
};

void copyScalars(const CoreStmt &Src, CoreStmt &Dst) {
  Dst.K = Src.K;
  Dst.Name = Src.Name;
  Dst.Name2 = Src.Name2;
  Dst.Ty = Src.Ty;
  Dst.Ty2 = Src.Ty2;
  Dst.E = Src.E;
}

/// Appends empty children to `Dst` mirroring `Src` and queues the pairs.
/// `Reversed` queues (and lays out) the children in reverse order.
void queueChildren(std::vector<CopyItem> &Work, const CoreStmtList &Src,
                   CoreStmtList &Dst, CopyMode M, bool Reversed) {
  Dst.reserve(Src.size());
  for (size_t I = 0; I != Src.size(); ++I) {
    const CoreStmt *Child =
        Reversed ? Src[Src.size() - 1 - I].get() : Src[I].get();
    Dst.push_back(std::make_unique<CoreStmt>());
    Work.push_back({Child, Dst.back().get(), M});
  }
}

void runCopyMachine(std::vector<CopyItem> &Work) {
  while (!Work.empty()) {
    CopyItem Item = Work.back();
    Work.pop_back();
    const CoreStmt &Src = *Item.Src;
    CoreStmt &Dst = *Item.Dst;
    if (Item.M == CopyMode::Clone) {
      copyScalars(Src, Dst);
      queueChildren(Work, Src.Body, Dst.Body, CopyMode::Clone, false);
      queueChildren(Work, Src.DoBody, Dst.DoBody, CopyMode::Clone, false);
      continue;
    }
    // Reverse: I[x <- e] = x -> e and vice versa; I[if x {s}] =
    // if x {I[s]} with the sequence reversed; I[with{a}do{b}] =
    // with{a}do{I[b]} (the with-block stays forward: (a; b; I[a])^-1 =
    // a; I[b]; I[a]); everything else is self-inverse.
    copyScalars(Src, Dst);
    switch (Src.K) {
    case CoreStmt::Kind::Assign:
      Dst.K = CoreStmt::Kind::UnAssign;
      break;
    case CoreStmt::Kind::UnAssign:
      Dst.K = CoreStmt::Kind::Assign;
      break;
    case CoreStmt::Kind::If:
      queueChildren(Work, Src.Body, Dst.Body, CopyMode::Reverse, true);
      continue;
    case CoreStmt::Kind::With:
      queueChildren(Work, Src.Body, Dst.Body, CopyMode::Clone, false);
      queueChildren(Work, Src.DoBody, Dst.DoBody, CopyMode::Reverse, true);
      continue;
    case CoreStmt::Kind::Skip:
    case CoreStmt::Kind::Swap:
    case CoreStmt::Kind::MemSwap:
    case CoreStmt::Kind::Hadamard:
      break;
    }
  }
}

CoreStmtPtr copyOne(const CoreStmt &S, CopyMode M) {
  auto Root = std::make_unique<CoreStmt>();
  if (S.Body.empty() && S.DoBody.empty()) {
    // Childless statement (the overwhelmingly common case in flat IR):
    // no worklist needed, and reversal of a childless statement only
    // flips the assign kinds.
    copyScalars(S, *Root);
    if (M == CopyMode::Reverse) {
      if (S.K == CoreStmt::Kind::Assign)
        Root->K = CoreStmt::Kind::UnAssign;
      else if (S.K == CoreStmt::Kind::UnAssign)
        Root->K = CoreStmt::Kind::Assign;
    }
    return Root;
  }
  std::vector<CopyItem> Work;
  Work.push_back({&S, Root.get(), M});
  runCopyMachine(Work);
  return Root;
}

} // namespace

CoreStmtPtr CoreStmt::clone() const { return copyOne(*this, CopyMode::Clone); }

CoreStmtList cloneStmts(const CoreStmtList &Stmts) {
  CoreStmtList Out;
  Out.reserve(Stmts.size());
  std::vector<CopyItem> Work;
  for (const auto &S : Stmts) {
    Out.push_back(std::make_unique<CoreStmt>());
    Work.push_back({S.get(), Out.back().get(), CopyMode::Clone});
  }
  runCopyMachine(Work);
  return Out;
}

CoreStmtPtr reverseStmt(const CoreStmt &S) {
  return copyOne(S, CopyMode::Reverse);
}

CoreStmtList reverseStmts(const CoreStmtList &Stmts) {
  CoreStmtList Out;
  Out.reserve(Stmts.size());
  std::vector<CopyItem> Work;
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It) {
    Out.push_back(std::make_unique<CoreStmt>());
    Work.push_back({It->get(), Out.back().get(), CopyMode::Reverse});
  }
  runCopyMachine(Work);
  return Out;
}

//===----------------------------------------------------------------------===//
// Printing (worklist machine; pinned at depth 200k by ir_test)
//===----------------------------------------------------------------------===//

static void appendPad(std::string &Out, unsigned Indent) {
  // Clamp the indentation depth: without a cap, printing IR whose
  // nesting grows with the recursion depth (one with-block per level
  // under const-arg recursion) costs O(depth) pad characters per line —
  // O(depth^2) text overall, hundreds of gigabytes at depth 200k. Levels
  // beyond the clamp all print at the same margin; the text stays
  // unambiguous (blocks are delimited by braces, not indentation).
  constexpr unsigned MaxIndentLevels = 32;
  Out.append(std::min(Indent, MaxIndentLevels) * 2, ' ');
}

namespace {

/// One pending print step: a statement at a phase (blocks print in up to
/// three pieces around their child lists), or a closing delimiter.
struct PrintItem {
  const CoreStmt *S;
  unsigned Indent;
  uint8_t Phase;
};

void pushChildrenToPrint(std::vector<PrintItem> &Work,
                         const CoreStmtList &Stmts, unsigned Indent) {
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
    Work.push_back({It->get(), Indent, 0});
}

void runPrintMachine(std::vector<PrintItem> &Work, std::string &Out) {
  while (!Work.empty()) {
    PrintItem Item = Work.back();
    Work.pop_back();
    const CoreStmt &S = *Item.S;
    switch (S.K) {
    case CoreStmt::Kind::Skip:
      appendPad(Out, Item.Indent);
      Out += "skip;\n";
      break;
    case CoreStmt::Kind::Assign:
      appendPad(Out, Item.Indent);
      Out += S.Name.view();
      Out += " <- " + S.E.str() + ";\n";
      break;
    case CoreStmt::Kind::UnAssign:
      appendPad(Out, Item.Indent);
      Out += S.Name.view();
      Out += " -> " + S.E.str() + ";\n";
      break;
    case CoreStmt::Kind::If:
      if (Item.Phase == 0) {
        appendPad(Out, Item.Indent);
        Out += "if ";
        Out += S.Name.view();
        Out += " {\n";
        Work.push_back({&S, Item.Indent, 1});
        pushChildrenToPrint(Work, S.Body, Item.Indent + 1);
      } else {
        appendPad(Out, Item.Indent);
        Out += "}\n";
      }
      break;
    case CoreStmt::Kind::With:
      if (Item.Phase == 0) {
        appendPad(Out, Item.Indent);
        Out += "with {\n";
        Work.push_back({&S, Item.Indent, 1});
        pushChildrenToPrint(Work, S.Body, Item.Indent + 1);
      } else if (Item.Phase == 1) {
        appendPad(Out, Item.Indent);
        Out += "} do {\n";
        Work.push_back({&S, Item.Indent, 2});
        pushChildrenToPrint(Work, S.DoBody, Item.Indent + 1);
      } else {
        appendPad(Out, Item.Indent);
        Out += "}\n";
      }
      break;
    case CoreStmt::Kind::Swap:
      appendPad(Out, Item.Indent);
      Out += S.Name.view();
      Out += " <-> ";
      Out += S.Name2.view();
      Out += ";\n";
      break;
    case CoreStmt::Kind::MemSwap:
      appendPad(Out, Item.Indent);
      Out += "*";
      Out += S.Name.view();
      Out += " <-> ";
      Out += S.Name2.view();
      Out += ";\n";
      break;
    case CoreStmt::Kind::Hadamard:
      appendPad(Out, Item.Indent);
      Out += "H(";
      Out += S.Name.view();
      Out += ");\n";
      break;
    }
  }
}

} // namespace

std::string CoreStmt::str(unsigned Indent) const {
  std::string Out;
  std::vector<PrintItem> Work;
  Work.push_back({this, Indent, 0});
  runPrintMachine(Work, Out);
  return Out;
}

std::string strStmts(const CoreStmtList &Stmts, unsigned Indent) {
  std::string Out;
  std::vector<PrintItem> Work;
  pushChildrenToPrint(Work, Stmts, Indent);
  runPrintMachine(Work, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

CoreStmtPtr CoreStmt::skip() { return std::make_unique<CoreStmt>(); }

CoreStmtPtr CoreStmt::assign(Symbol X, const Type *Ty, CoreExpr E) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Assign;
  S->Name = X;
  S->Ty = Ty;
  S->E = std::move(E);
  return S;
}

CoreStmtPtr CoreStmt::unassign(Symbol X, const Type *Ty, CoreExpr E) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::UnAssign;
  S->Name = X;
  S->Ty = Ty;
  S->E = std::move(E);
  return S;
}

CoreStmtPtr CoreStmt::ifStmt(Symbol CondVar, CoreStmtList Body) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::If;
  S->Name = CondVar;
  S->Body = std::move(Body);
  return S;
}

CoreStmtPtr CoreStmt::with(CoreStmtList Body, CoreStmtList DoBody) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::With;
  S->Body = std::move(Body);
  S->DoBody = std::move(DoBody);
  return S;
}

CoreStmtPtr CoreStmt::swap(Symbol A, const Type *TyA, Symbol B,
                           const Type *TyB) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Swap;
  S->Name = A;
  S->Ty = TyA;
  S->Name2 = B;
  S->Ty2 = TyB;
  return S;
}

CoreStmtPtr CoreStmt::memSwap(Symbol Ptr, const Type *PtrTy, Symbol Val,
                              const Type *ValTy) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::MemSwap;
  S->Name = Ptr;
  S->Ty = PtrTy;
  S->Name2 = Val;
  S->Ty2 = ValTy;
  return S;
}

CoreStmtPtr CoreStmt::hadamard(Symbol X, const Type *Ty) {
  auto S = std::make_unique<CoreStmt>();
  S->K = Kind::Hadamard;
  S->Name = X;
  S->Ty = Ty;
  return S;
}

//===----------------------------------------------------------------------===//
// Structural equality (worklist; deep nesting safe)
//===----------------------------------------------------------------------===//

bool stmtEquals(const CoreStmt &A, const CoreStmt &B) {
  std::vector<std::pair<const CoreStmt *, const CoreStmt *>> Work;
  Work.push_back({&A, &B});
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    if (X->K != Y->K || X->Name != Y->Name || X->Name2 != Y->Name2)
      return false;
    if ((X->K == CoreStmt::Kind::Assign ||
         X->K == CoreStmt::Kind::UnAssign) &&
        !(X->E == Y->E))
      return false;
    if (X->Body.size() != Y->Body.size() ||
        X->DoBody.size() != Y->DoBody.size())
      return false;
    for (size_t I = 0; I != X->Body.size(); ++I)
      Work.push_back({X->Body[I].get(), Y->Body[I].get()});
    for (size_t I = 0; I != X->DoBody.size(); ++I)
      Work.push_back({X->DoBody[I].get(), Y->DoBody[I].get()});
  }
  return true;
}

bool stmtListEquals(const CoreStmtList &A, const CoreStmtList &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!stmtEquals(*A[I], *B[I]))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Analyses (worklist walks; one sort+unique per query)
//===----------------------------------------------------------------------===//

namespace {

/// Walks `Stmts` without recursion, appending to `Acc` per statement via
/// `Visit(const CoreStmt &, std::vector<Symbol> &)`.
template <typename VisitFn>
SymbolSet collectOverStmts(const CoreStmtList &Stmts, VisitFn Visit) {
  std::vector<Symbol> Acc;
  std::vector<const CoreStmt *> Work;
  Work.reserve(Stmts.size());
  for (const auto &S : Stmts)
    Work.push_back(S.get());
  while (!Work.empty()) {
    const CoreStmt *S = Work.back();
    Work.pop_back();
    Visit(*S, Acc);
    for (const auto &Sub : S->Body)
      Work.push_back(Sub.get());
    for (const auto &Sub : S->DoBody)
      Work.push_back(Sub.get());
  }
  SymbolSet Out;
  Out.adoptUnsorted(std::move(Acc));
  return Out;
}

} // namespace

SymbolSet modSet(const CoreStmtList &Stmts) {
  return collectOverStmts(Stmts, [](const CoreStmt &S,
                                    std::vector<Symbol> &Acc) {
    switch (S.K) {
    case CoreStmt::Kind::Assign:
    case CoreStmt::Kind::UnAssign:
    case CoreStmt::Kind::Hadamard:
      Acc.push_back(S.Name);
      break;
    case CoreStmt::Kind::Swap:
      Acc.push_back(S.Name);
      Acc.push_back(S.Name2);
      break;
    case CoreStmt::Kind::MemSwap:
      Acc.push_back(S.Name2);
      break;
    case CoreStmt::Kind::Skip:
    case CoreStmt::Kind::If:
    case CoreStmt::Kind::With:
      break; // Blocks contribute through their children.
    }
  });
}

SymbolSet allVars(const CoreStmtList &Stmts) {
  return collectOverStmts(Stmts, [](const CoreStmt &S,
                                    std::vector<Symbol> &Acc) {
    if (!S.Name.empty())
      Acc.push_back(S.Name);
    if (!S.Name2.empty())
      Acc.push_back(S.Name2);
    if (S.K == CoreStmt::Kind::Assign || S.K == CoreStmt::Kind::UnAssign)
      S.E.appendVars(Acc);
  });
}

CoreProgram CoreProgram::cloneShell() const {
  CoreProgram P;
  P.Types = Types;
  P.Inputs = Inputs;
  P.OutputVar = OutputVar;
  P.OutputTy = OutputTy;
  P.NumAllocCells = NumAllocCells;
  P.PointeeTypes = PointeeTypes;
  return P;
}

CoreProgram CoreProgram::clone() const {
  CoreProgram P = cloneShell();
  P.Body = cloneStmts(Body);
  return P;
}

std::string CoreProgram::str() const {
  std::string Out = "program(";
  for (size_t I = 0; I != Inputs.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Inputs[I].first.view();
    Out += ": " + Inputs[I].second->str();
  }
  Out += ") -> ";
  Out += OutputVar.view();
  Out += " {\n" + strStmts(Body, 1) + "}\n";
  return Out;
}

} // namespace spire::ir

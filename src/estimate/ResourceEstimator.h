//===----------------------------------------------------------------------===//
///
/// \file
/// Surface-code resource estimation (the paper's Section 1 motivation:
/// "resource estimation ... is key to recognizing the scale of hardware
/// needed to execute a quantum algorithm").
///
/// Given gate counts for a program (from the cost model or a compiled
/// circuit), the estimator reports the logical-qubit and T-gate budget
/// and converts it to an area-latency (spacetime) figure using the
/// paper's quoted constants: realizing a T gate via magic state
/// distillation costs about 10^2 times the area-latency of a CNOT
/// [Gidney and Fowler 2019], which itself is about 10^8 times a classical
/// NAND [Babbush et al. 2021].
///
/// The estimator also extrapolates measured gate-count series to problem
/// sizes far beyond what can be compiled, using the exact polynomial fit
/// of Section 8.1 — this is how the asymptotic T-complexity differences
/// the paper studies translate into hardware budgets at the "regime of
/// practical quantum advantage" (Section 9 cites 4x10^8 Toffolis to break
/// 1024-bit RSA).
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_ESTIMATE_RESOURCEESTIMATOR_H
#define SPIRE_ESTIMATE_RESOURCEESTIMATOR_H

#include "circuit/Gate.h"
#include "support/PolyFit.h"

#include <cstdint>
#include <string>

namespace spire::estimate {

/// Cost constants of the error-corrected substrate, in units of the
/// area-latency of one logical Clifford gate. Defaults follow the
/// figures quoted in the paper's Section 1.
struct SurfaceCodeModel {
  /// Area-latency of one T gate relative to a CNOT (Gidney and Fowler
  /// 2019: "about 10^2").
  double TCostFactor = 100.0;
  /// Area-latency of one logical CNOT relative to a classical NAND
  /// (Babbush et al. 2021 put T at 10^10 NANDs; with T = 10^2 CNOT that
  /// makes a CNOT 10^8 NANDs).
  double CNOTCostInNands = 1e8;
};

/// One resource estimate: logical counts plus derived figures.
struct Estimate {
  int64_t LogicalQubits = 0;
  int64_t TCount = 0;
  int64_t CliffordCount = 0;
  /// Spacetime cost in CNOT-equivalents: Cliffords + TCostFactor * T.
  double SpacetimeCNOTs = 0;
  /// The same cost in classical NAND-equivalents.
  double SpacetimeNANDs = 0;
  /// Fraction of the spacetime budget spent on T gates; values near 1
  /// confirm the "T gates dominate" consensus the paper quotes.
  double TFraction = 0;

  std::string str() const;
};

/// Estimates resources for a compiled circuit at any gate level; the
/// T-complexity counting rule of Section 8.1 is applied to MCX-level
/// circuits.
Estimate estimateCircuit(const circuit::Circuit &C,
                         const SurfaceCodeModel &Model = {});

/// Estimates resources from bare counts (e.g. the cost model's output,
/// for programs too large to compile).
Estimate estimateCounts(int64_t TCount, int64_t CliffordCount,
                        int64_t LogicalQubits,
                        const SurfaceCodeModel &Model = {});

/// Extrapolates a measured per-depth T-count series to a target depth
/// using the exact polynomial fit of Section 8.1. `StartDepth` is the
/// depth of the first sample. Returns the predicted T-count at
/// `TargetDepth` (saturating at INT64_MAX on overflow).
int64_t extrapolateSeries(int64_t StartDepth,
                          const std::vector<int64_t> &Values,
                          int64_t TargetDepth);

} // namespace spire::estimate

#endif // SPIRE_ESTIMATE_RESOURCEESTIMATOR_H

#include "estimate/ResourceEstimator.h"

#include <cmath>
#include <cstdio>
#include <limits>

using namespace spire::circuit;

namespace spire::estimate {

std::string Estimate::str() const {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "%lld logical qubits, %lld T, %lld Clifford; spacetime "
                "%.3g CNOT-eq (%.3g NAND-eq), %.1f%% spent on T",
                static_cast<long long>(LogicalQubits),
                static_cast<long long>(TCount),
                static_cast<long long>(CliffordCount), SpacetimeCNOTs,
                SpacetimeNANDs, TFraction * 100.0);
  return Buffer;
}

Estimate estimateCounts(int64_t TCount, int64_t CliffordCount,
                        int64_t LogicalQubits,
                        const SurfaceCodeModel &Model) {
  Estimate E;
  E.LogicalQubits = LogicalQubits;
  E.TCount = TCount;
  E.CliffordCount = CliffordCount;
  double TCost = Model.TCostFactor * static_cast<double>(TCount);
  E.SpacetimeCNOTs = static_cast<double>(CliffordCount) + TCost;
  E.SpacetimeNANDs = E.SpacetimeCNOTs * Model.CNOTCostInNands;
  E.TFraction = E.SpacetimeCNOTs > 0 ? TCost / E.SpacetimeCNOTs : 0;
  return E;
}

Estimate estimateCircuit(const Circuit &C, const SurfaceCodeModel &Model) {
  GateCounts Counts = countGates(C);
  // Everything that is not a T gate after full decomposition is treated
  // as Clifford. At the MCX level, the Section 8.1 rule expands each MCX
  // with c controls into 2(c-2)+1 Toffolis of 7 T + 9 Clifford+CNOT
  // gates each (the Fig. 6 network has 16 gates, 7 of them T).
  int64_t T = Counts.TComplexity;
  int64_t Clifford = 0;
  for (const Gate &G : C.Gates) {
    switch (G.Kind) {
    case GateKind::X: {
      int64_t THere = tCostOfMCX(G.numControls());
      Clifford += THere > 0 ? (THere / 7) * 9 : 1;
      break;
    }
    case GateKind::H:
      Clifford += 1;
      break;
    case GateKind::T:
    case GateKind::Tdg:
      break;
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::Z:
      Clifford += 1;
      break;
    }
  }
  Estimate E = estimateCounts(T, Clifford, C.NumQubits, Model);
  return E;
}

int64_t extrapolateSeries(int64_t StartDepth,
                          const std::vector<int64_t> &Values,
                          int64_t TargetDepth) {
  support::Polynomial P = support::fitPolynomial(StartDepth, Values);
  // Evaluate in floating point: extrapolation targets (e.g. n = 10^6)
  // overflow exact arithmetic long before they overflow double's range,
  // and estimation precision is dominated by the model constants anyway.
  double X = static_cast<double>(TargetDepth);
  double Acc = 0, Power = 1;
  for (const support::Rational &Coeff : P.Coeffs) {
    Acc += Power * static_cast<double>(Coeff.numerator()) /
           static_cast<double>(Coeff.denominator());
    Power *= X;
  }
  if (!(Acc < static_cast<double>(std::numeric_limits<int64_t>::max())))
    return std::numeric_limits<int64_t>::max();
  if (Acc < 0)
    return 0;
  return static_cast<int64_t>(std::llround(Acc));
}

} // namespace spire::estimate

//===----------------------------------------------------------------------===//
///
/// \file
/// Surface-level statement reversal, the derived form I[s] of Section 4:
///   I[s1; s2]      = I[s2]; I[s1]
///   I[x <- e]      = x -> e                       (and vice versa)
///   I[if x { s }]  = if x { I[s] }
///   I[with{a}do{b}]= with { a } do { I[b] }   since (a; b; I[a])^-1
///                                             = a; I[b]; I[a]
///   I[s]           = s for swaps, memory swaps, H, skip
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_AST_REVERSE_H
#define SPIRE_AST_REVERSE_H

#include "ast/AST.h"

namespace spire::ast {

/// Returns the reverse of a single statement (deep copy).
std::unique_ptr<Stmt> reverseStmt(const Stmt &S);

/// Returns the reverse of a statement sequence (deep copy).
StmtList reverseStmts(const StmtList &Stmts);

} // namespace spire::ast

#endif // SPIRE_AST_REVERSE_H

#include "ast/Reverse.h"

namespace spire::ast {

std::unique_ptr<Stmt> reverseStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Let: {
    auto R = Stmt::unlet(S.Name, S.E->clone());
    R->Loc = S.Loc;
    return R;
  }
  case Stmt::Kind::UnLet: {
    auto R = Stmt::let(S.Name, S.E->clone());
    R->Loc = S.Loc;
    return R;
  }
  case Stmt::Kind::If: {
    auto R = Stmt::ifStmt(S.E->clone(), reverseStmts(S.Body),
                          reverseStmts(S.ElseBody));
    R->Loc = S.Loc;
    return R;
  }
  case Stmt::Kind::With: {
    auto R = Stmt::with(cloneStmts(S.Body), reverseStmts(S.ElseBody));
    R->Loc = S.Loc;
    return R;
  }
  case Stmt::Kind::Swap:
  case Stmt::Kind::MemSwap:
  case Stmt::Kind::Hadamard:
  case Stmt::Kind::Skip:
    return S.clone();
  }
  return S.clone();
}

StmtList reverseStmts(const StmtList &Stmts) {
  StmtList Out;
  Out.reserve(Stmts.size());
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
    Out.push_back(reverseStmt(**It));
  return Out;
}

} // namespace spire::ast

//===----------------------------------------------------------------------===//
///
/// \file
/// Surface abstract syntax of the Tower language, as parsed from source.
///
/// This is the richer "surface" syntax of Section 7: it allows nested
/// expressions, if-else, with-do, function calls with static size
/// arguments (`length[n-1](next, r)`), and `alloc<T>`. The lowering stage
/// (src/lowering) desugars everything to the core IR of Fig. 13.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_AST_AST_H
#define SPIRE_AST_AST_H

#include "ast/Type.h"
#include "support/SourceLoc.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spire::ast {

using support::SourceLoc;

//===----------------------------------------------------------------------===//
// Size expressions
//===----------------------------------------------------------------------===//

/// Compile-time integer expressions used as recursion-depth annotations,
/// e.g. the `n-1` in `length[n-1](next, r)`. Evaluated during inlining.
struct SizeExpr {
  enum class Kind { Literal, Param, Add, Sub };
  Kind K = Kind::Literal;
  int64_t Value = 0;          ///< For Literal.
  std::string Param;          ///< For Param.
  std::unique_ptr<SizeExpr> LHS, RHS;

  static std::unique_ptr<SizeExpr> literal(int64_t V);
  static std::unique_ptr<SizeExpr> param(std::string Name);
  static std::unique_ptr<SizeExpr> binary(Kind K, std::unique_ptr<SizeExpr> L,
                                          std::unique_ptr<SizeExpr> R);

  /// Evaluates with the enclosing function's size parameter bound to
  /// `ParamValue`. Asserts that any referenced parameter matches.
  int64_t evaluate(const std::string &ParamName, int64_t ParamValue) const;

  std::unique_ptr<SizeExpr> clone() const;
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp { Not, Test };
enum class BinaryOp { And, Or, Add, Sub, Mul, Eq, Ne, Lt };

/// Returns the Tower spelling of an operator ("&&", "+", ...).
const char *spelling(UnaryOp Op);
const char *spelling(BinaryOp Op);

class Expr {
public:
  enum class Kind {
    Var,      ///< x
    UIntLit,  ///< 42
    BoolLit,  ///< true / false
    UnitLit,  ///< ()
    NullLit,  ///< null (pointer type inferred or annotated)
    Default,  ///< default<T>: the all-zero value of T
    AllocCell,///< alloc<T>: a fresh statically-assigned heap cell address
    Tuple,    ///< (e1, e2)
    Proj,     ///< e.1 / e.2
    Unary,    ///< not e, test e
    Binary,   ///< e1 op e2
    Call,     ///< f[size](e1, ..., ek)
  };

  Kind K;
  SourceLoc Loc;

  // Payload (which fields are active depends on K).
  std::string Name;                         ///< Var name / callee name.
  /// Interned form of Name, cached on first use: lowering and sema look
  /// variables up once per reference, and re-hashing the spelling each
  /// time measurably taxes deep-recursion compiles. Value-stable (a
  /// spelling always interns to the same Symbol), so caching is safe
  /// even across clones.
  support::Symbol nameSym() const {
    if (NameSym.empty() && !Name.empty())
      NameSym = support::Symbol(Name);
    return NameSym;
  }
  mutable support::Symbol NameSym;
  uint64_t UIntValue = 0;                   ///< UIntLit.
  bool BoolValue = false;                   ///< BoolLit.
  /// Inferred type, annotated by the type checker; also the optional
  /// pointer-type annotation of a NullLit. The checker may run more than
  /// once over the same AST (the driver pipeline re-checks before
  /// lowering), so annotation must be idempotent: payload types live in
  /// TypeArg, never here.
  const Type *Ty = nullptr;
  /// Default/AllocCell: the parsed <T> argument.
  const Type *TypeArg = nullptr;
  unsigned ProjIndex = 0;                   ///< Proj: 1 or 2.
  UnaryOp UOp = UnaryOp::Not;               ///< Unary.
  BinaryOp BOp = BinaryOp::And;             ///< Binary.
  std::vector<std::unique_ptr<Expr>> Args;  ///< Operands / call arguments.
  std::unique_ptr<SizeExpr> SizeArg;        ///< Call: optional [size].

  explicit Expr(Kind K, SourceLoc Loc = SourceLoc()) : K(K), Loc(Loc) {}

  std::unique_ptr<Expr> clone() const;
  std::string str() const;

  // Convenience factory functions.
  static std::unique_ptr<Expr> var(std::string Name,
                                   SourceLoc Loc = SourceLoc());
  static std::unique_ptr<Expr> uintLit(uint64_t V);
  static std::unique_ptr<Expr> boolLit(bool V);
  static std::unique_ptr<Expr> unitLit();
  static std::unique_ptr<Expr> nullLit(const Type *Ty = nullptr);
  static std::unique_ptr<Expr> defaultOf(const Type *Ty);
  static std::unique_ptr<Expr> allocCell(const Type *Ty);
  static std::unique_ptr<Expr> tuple(std::unique_ptr<Expr> A,
                                     std::unique_ptr<Expr> B);
  static std::unique_ptr<Expr> proj(std::unique_ptr<Expr> Base, unsigned Idx);
  static std::unique_ptr<Expr> unary(UnaryOp Op, std::unique_ptr<Expr> A);
  static std::unique_ptr<Expr> binary(BinaryOp Op, std::unique_ptr<Expr> A,
                                      std::unique_ptr<Expr> B);
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt;
using StmtList = std::vector<std::unique_ptr<Stmt>>;

class Stmt {
public:
  enum class Kind {
    Let,     ///< let x <- e;
    UnLet,   ///< let x -> e;
    Swap,    ///< x1 <-> x2;
    MemSwap, ///< *x1 <-> x2;
    If,      ///< if e { ... } [else { ... }]
    With,    ///< with { ... } do { ... }
    Hadamard,///< h(x);
    Skip,    ///< skip;
  };

  Kind K;
  SourceLoc Loc;

  std::string Name;                ///< Let/UnLet target, Swap LHS, Hadamard.
  std::string Name2;               ///< Swap/MemSwap RHS variable.
  /// Cached interned names (see Expr::nameSym).
  support::Symbol nameSym() const {
    if (NameSym.empty() && !Name.empty())
      NameSym = support::Symbol(Name);
    return NameSym;
  }
  support::Symbol name2Sym() const {
    if (Name2Sym.empty() && !Name2.empty())
      Name2Sym = support::Symbol(Name2);
    return Name2Sym;
  }
  mutable support::Symbol NameSym, Name2Sym;
  std::unique_ptr<Expr> E;         ///< Let/UnLet RHS, If condition.
  StmtList Body;                   ///< If-then / with-block.
  StmtList ElseBody;               ///< If-else / do-block.

  explicit Stmt(Kind K, SourceLoc Loc = SourceLoc()) : K(K), Loc(Loc) {}

  std::unique_ptr<Stmt> clone() const;
  std::string str(unsigned Indent = 0) const;

  static std::unique_ptr<Stmt> let(std::string X, std::unique_ptr<Expr> E);
  static std::unique_ptr<Stmt> unlet(std::string X, std::unique_ptr<Expr> E);
  static std::unique_ptr<Stmt> swap(std::string A, std::string B);
  static std::unique_ptr<Stmt> memSwap(std::string Ptr, std::string Val);
  static std::unique_ptr<Stmt> ifStmt(std::unique_ptr<Expr> Cond,
                                      StmtList Then, StmtList Else = {});
  static std::unique_ptr<Stmt> with(StmtList WithBody, StmtList DoBody);
  static std::unique_ptr<Stmt> hadamard(std::string X);
  static std::unique_ptr<Stmt> skip();
};

/// Deep-copies a statement list.
StmtList cloneStmts(const StmtList &Stmts);

/// Renders a statement list with the given indentation.
std::string strStmts(const StmtList &Stmts, unsigned Indent = 0);

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// `fun name[szparam](p1: T1, ...) [-> T] { body...; return x; }`
struct FunDecl {
  std::string Name;
  std::string SizeParam; ///< Empty when the function is not size-indexed.
  std::vector<std::pair<std::string, const Type *>> Params;
  /// Optional declared return type; required only when a recursive call's
  /// result binds a fresh variable (otherwise inferred).
  const Type *ReturnTy = nullptr;
  StmtList Body;
  std::string ReturnVar; ///< Variable named in the trailing `return`.
  SourceLoc Loc;

  /// Cached interned names (see Expr::nameSym): the inliner binds every
  /// parameter and resolves the return variable once per inlined
  /// instance, up to 10^5 times per compile.
  support::Symbol returnVarSym() const {
    if (ReturnVarSym.empty() && !ReturnVar.empty())
      ReturnVarSym = support::Symbol(ReturnVar);
    return ReturnVarSym;
  }
  support::Symbol paramSym(size_t I) const {
    assert(I < Params.size() && "parameter index out of range");
    if (ParamSyms.size() != Params.size()) {
      ParamSyms.clear();
      for (const auto &[PName, PTy] : Params)
        ParamSyms.push_back(support::Symbol(PName));
    }
    return ParamSyms[I];
  }
  mutable support::Symbol ReturnVarSym;
  mutable std::vector<support::Symbol> ParamSyms;

  FunDecl clone() const;
  std::string str() const;
};

/// A parsed Tower compilation unit: type aliases plus functions.
struct Program {
  std::shared_ptr<TypeContext> Types;
  std::vector<std::pair<std::string, const Type *>> TypeDecls;
  std::vector<FunDecl> Functions;

  const FunDecl *findFunction(const std::string &Name) const;
  std::string str() const;
};

} // namespace spire::ast

#endif // SPIRE_AST_AST_H

#include "ast/AST.h"

#include <cassert>

namespace spire::ast {

//===----------------------------------------------------------------------===//
// SizeExpr
//===----------------------------------------------------------------------===//

std::unique_ptr<SizeExpr> SizeExpr::literal(int64_t V) {
  auto E = std::make_unique<SizeExpr>();
  E->K = Kind::Literal;
  E->Value = V;
  return E;
}

std::unique_ptr<SizeExpr> SizeExpr::param(std::string Name) {
  auto E = std::make_unique<SizeExpr>();
  E->K = Kind::Param;
  E->Param = std::move(Name);
  return E;
}

std::unique_ptr<SizeExpr> SizeExpr::binary(Kind K,
                                           std::unique_ptr<SizeExpr> L,
                                           std::unique_ptr<SizeExpr> R) {
  assert((K == Kind::Add || K == Kind::Sub) && "not a binary size operator");
  auto E = std::make_unique<SizeExpr>();
  E->K = K;
  E->LHS = std::move(L);
  E->RHS = std::move(R);
  return E;
}

int64_t SizeExpr::evaluate(const std::string &ParamName,
                           int64_t ParamValue) const {
  switch (K) {
  case Kind::Literal:
    return Value;
  case Kind::Param:
    assert(Param == ParamName && "unbound size parameter");
    return ParamValue;
  case Kind::Add:
    return LHS->evaluate(ParamName, ParamValue) +
           RHS->evaluate(ParamName, ParamValue);
  case Kind::Sub:
    return LHS->evaluate(ParamName, ParamValue) -
           RHS->evaluate(ParamName, ParamValue);
  }
  return 0;
}

std::unique_ptr<SizeExpr> SizeExpr::clone() const {
  auto E = std::make_unique<SizeExpr>();
  E->K = K;
  E->Value = Value;
  E->Param = Param;
  if (LHS)
    E->LHS = LHS->clone();
  if (RHS)
    E->RHS = RHS->clone();
  return E;
}

std::string SizeExpr::str() const {
  switch (K) {
  case Kind::Literal:
    return std::to_string(Value);
  case Kind::Param:
    return Param;
  case Kind::Add:
    return LHS->str() + "+" + RHS->str();
  case Kind::Sub:
    return LHS->str() + "-" + RHS->str();
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

const char *spelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "not";
  case UnaryOp::Test:
    return "test";
  }
  return "?";
}

const char *spelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::clone() const {
  auto E = std::make_unique<Expr>(K, Loc);
  E->Name = Name;
  E->UIntValue = UIntValue;
  E->BoolValue = BoolValue;
  E->Ty = Ty;
  E->TypeArg = TypeArg;
  E->ProjIndex = ProjIndex;
  E->UOp = UOp;
  E->BOp = BOp;
  for (const auto &A : Args)
    E->Args.push_back(A->clone());
  if (SizeArg)
    E->SizeArg = SizeArg->clone();
  return E;
}

std::string Expr::str() const {
  switch (K) {
  case Kind::Var:
    return Name;
  case Kind::UIntLit:
    return std::to_string(UIntValue);
  case Kind::BoolLit:
    return BoolValue ? "true" : "false";
  case Kind::UnitLit:
    return "()";
  case Kind::NullLit:
    return "null";
  case Kind::Default:
    return "default<" + (TypeArg ? TypeArg->str() : std::string("?")) + ">";
  case Kind::AllocCell:
    return "alloc<" + (TypeArg ? TypeArg->str() : std::string("?")) + ">";
  case Kind::Tuple:
    return "(" + Args[0]->str() + ", " + Args[1]->str() + ")";
  case Kind::Proj:
    return Args[0]->str() + "." + std::to_string(ProjIndex);
  case Kind::Unary:
    return std::string(spelling(UOp)) + " " + Args[0]->str();
  case Kind::Binary:
    return Args[0]->str() + " " + spelling(BOp) + " " + Args[1]->str();
  case Kind::Call: {
    std::string Out = Name;
    if (SizeArg)
      Out += "[" + SizeArg->str() + "]";
    Out += "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I]->str();
    }
    return Out + ")";
  }
  }
  return "?";
}

std::unique_ptr<Expr> Expr::var(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Var, Loc);
  E->Name = std::move(Name);
  return E;
}

std::unique_ptr<Expr> Expr::uintLit(uint64_t V) {
  auto E = std::make_unique<Expr>(Kind::UIntLit);
  E->UIntValue = V;
  return E;
}

std::unique_ptr<Expr> Expr::boolLit(bool V) {
  auto E = std::make_unique<Expr>(Kind::BoolLit);
  E->BoolValue = V;
  return E;
}

std::unique_ptr<Expr> Expr::unitLit() {
  return std::make_unique<Expr>(Kind::UnitLit);
}

std::unique_ptr<Expr> Expr::nullLit(const Type *Ty) {
  auto E = std::make_unique<Expr>(Kind::NullLit);
  E->Ty = Ty;
  return E;
}

std::unique_ptr<Expr> Expr::defaultOf(const Type *Ty) {
  auto E = std::make_unique<Expr>(Kind::Default);
  E->TypeArg = Ty;
  return E;
}

std::unique_ptr<Expr> Expr::allocCell(const Type *Ty) {
  auto E = std::make_unique<Expr>(Kind::AllocCell);
  E->TypeArg = Ty;
  return E;
}

std::unique_ptr<Expr> Expr::tuple(std::unique_ptr<Expr> A,
                                  std::unique_ptr<Expr> B) {
  auto E = std::make_unique<Expr>(Kind::Tuple);
  E->Args.push_back(std::move(A));
  E->Args.push_back(std::move(B));
  return E;
}

std::unique_ptr<Expr> Expr::proj(std::unique_ptr<Expr> Base, unsigned Idx) {
  assert((Idx == 1 || Idx == 2) && "projection index must be 1 or 2");
  auto E = std::make_unique<Expr>(Kind::Proj);
  E->Args.push_back(std::move(Base));
  E->ProjIndex = Idx;
  return E;
}

std::unique_ptr<Expr> Expr::unary(UnaryOp Op, std::unique_ptr<Expr> A) {
  auto E = std::make_unique<Expr>(Kind::Unary);
  E->UOp = Op;
  E->Args.push_back(std::move(A));
  return E;
}

std::unique_ptr<Expr> Expr::binary(BinaryOp Op, std::unique_ptr<Expr> A,
                                   std::unique_ptr<Expr> B) {
  auto E = std::make_unique<Expr>(Kind::Binary);
  E->BOp = Op;
  E->Args.push_back(std::move(A));
  E->Args.push_back(std::move(B));
  return E;
}

//===----------------------------------------------------------------------===//
// Stmt
//===----------------------------------------------------------------------===//

std::unique_ptr<Stmt> Stmt::clone() const {
  auto S = std::make_unique<Stmt>(K, Loc);
  S->Name = Name;
  S->Name2 = Name2;
  if (E)
    S->E = E->clone();
  S->Body = cloneStmts(Body);
  S->ElseBody = cloneStmts(ElseBody);
  return S;
}

static std::string indentString(unsigned Indent) {
  return std::string(Indent * 2, ' ');
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad = indentString(Indent);
  switch (K) {
  case Kind::Let:
    return Pad + "let " + Name + " <- " + E->str() + ";\n";
  case Kind::UnLet:
    return Pad + "let " + Name + " -> " + E->str() + ";\n";
  case Kind::Swap:
    return Pad + Name + " <-> " + Name2 + ";\n";
  case Kind::MemSwap:
    return Pad + "*" + Name + " <-> " + Name2 + ";\n";
  case Kind::If: {
    std::string Out = Pad + "if " + E->str() + " {\n" +
                      strStmts(Body, Indent + 1) + Pad + "}";
    if (!ElseBody.empty())
      Out += " else {\n" + strStmts(ElseBody, Indent + 1) + Pad + "}";
    return Out + "\n";
  }
  case Kind::With:
    return Pad + "with {\n" + strStmts(Body, Indent + 1) + Pad + "} do {\n" +
           strStmts(ElseBody, Indent + 1) + Pad + "}\n";
  case Kind::Hadamard:
    return Pad + "h(" + Name + ");\n";
  case Kind::Skip:
    return Pad + "skip;\n";
  }
  return Pad + "?\n";
}

std::unique_ptr<Stmt> Stmt::let(std::string X, std::unique_ptr<Expr> E) {
  auto S = std::make_unique<Stmt>(Kind::Let);
  S->Name = std::move(X);
  S->E = std::move(E);
  return S;
}

std::unique_ptr<Stmt> Stmt::unlet(std::string X, std::unique_ptr<Expr> E) {
  auto S = std::make_unique<Stmt>(Kind::UnLet);
  S->Name = std::move(X);
  S->E = std::move(E);
  return S;
}

std::unique_ptr<Stmt> Stmt::swap(std::string A, std::string B) {
  auto S = std::make_unique<Stmt>(Kind::Swap);
  S->Name = std::move(A);
  S->Name2 = std::move(B);
  return S;
}

std::unique_ptr<Stmt> Stmt::memSwap(std::string Ptr, std::string Val) {
  auto S = std::make_unique<Stmt>(Kind::MemSwap);
  S->Name = std::move(Ptr);
  S->Name2 = std::move(Val);
  return S;
}

std::unique_ptr<Stmt> Stmt::ifStmt(std::unique_ptr<Expr> Cond, StmtList Then,
                                   StmtList Else) {
  auto S = std::make_unique<Stmt>(Kind::If);
  S->E = std::move(Cond);
  S->Body = std::move(Then);
  S->ElseBody = std::move(Else);
  return S;
}

std::unique_ptr<Stmt> Stmt::with(StmtList WithBody, StmtList DoBody) {
  auto S = std::make_unique<Stmt>(Kind::With);
  S->Body = std::move(WithBody);
  S->ElseBody = std::move(DoBody);
  return S;
}

std::unique_ptr<Stmt> Stmt::hadamard(std::string X) {
  auto S = std::make_unique<Stmt>(Kind::Hadamard);
  S->Name = std::move(X);
  return S;
}

std::unique_ptr<Stmt> Stmt::skip() {
  return std::make_unique<Stmt>(Kind::Skip);
}

StmtList cloneStmts(const StmtList &Stmts) {
  StmtList Out;
  Out.reserve(Stmts.size());
  for (const auto &S : Stmts)
    Out.push_back(S->clone());
  return Out;
}

std::string strStmts(const StmtList &Stmts, unsigned Indent) {
  std::string Out;
  for (const auto &S : Stmts)
    Out += S->str(Indent);
  return Out;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

FunDecl FunDecl::clone() const {
  FunDecl F;
  F.Name = Name;
  F.SizeParam = SizeParam;
  F.Params = Params;
  F.ReturnTy = ReturnTy;
  F.Body = cloneStmts(Body);
  F.ReturnVar = ReturnVar;
  F.Loc = Loc;
  return F;
}

std::string FunDecl::str() const {
  std::string Out = "fun " + Name;
  if (!SizeParam.empty())
    Out += "[" + SizeParam + "]";
  Out += "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Params[I].first + ": " + Params[I].second->str();
  }
  Out += ")";
  if (ReturnTy)
    Out += " -> " + ReturnTy->str();
  Out += " {\n" + strStmts(Body, 1);
  Out += "  return " + ReturnVar + ";\n}\n";
  return Out;
}

const FunDecl *Program::findFunction(const std::string &Name) const {
  for (const FunDecl &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string Program::str() const {
  std::string Out;
  for (const auto &[Name, Ty] : TypeDecls)
    Out += "type " + Name + " = " + Ty->str() + ";\n";
  for (const FunDecl &F : Functions)
    Out += F.str();
  return Out;
}

} // namespace spire::ast

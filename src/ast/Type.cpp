#include "ast/Type.h"

namespace spire::ast {

std::string Type::str() const {
  switch (K) {
  case Kind::Unit:
    return "()";
  case Kind::UInt:
    return "uint";
  case Kind::Bool:
    return "bool";
  case Kind::Pair:
    return "(" + Sub[0]->str() + ", " + Sub[1]->str() + ")";
  case Kind::Ptr:
    return "ptr<" + Sub[0]->str() + ">";
  case Kind::Named:
    return Name;
  }
  return "<invalid>";
}

TypeContext::TypeContext() {
  UnitTy = create(Type::Kind::Unit);
  UIntTy = create(Type::Kind::UInt);
  BoolTy = create(Type::Kind::Bool);
}

Type *TypeContext::create(Type::Kind K) {
  Owned.push_back(std::unique_ptr<Type>(new Type(K)));
  return Owned.back().get();
}

const Type *TypeContext::pairType(const Type *First, const Type *Second) {
  auto Key = std::make_pair(First, Second);
  auto It = Pairs.find(Key);
  if (It != Pairs.end())
    return It->second;
  Type *T = create(Type::Kind::Pair);
  T->Sub[0] = First;
  T->Sub[1] = Second;
  Pairs[Key] = T;
  return T;
}

const Type *TypeContext::ptrType(const Type *Pointee) {
  auto It = Ptrs.find(Pointee);
  if (It != Ptrs.end())
    return It->second;
  Type *T = create(Type::Kind::Ptr);
  T->Sub[0] = Pointee;
  Ptrs[Pointee] = T;
  return T;
}

const Type *TypeContext::namedType(const std::string &Name) {
  auto It = NamedTypes.find(Name);
  if (It != NamedTypes.end())
    return It->second;
  Type *T = create(Type::Kind::Named);
  T->Name = Name;
  NamedTypes[Name] = T;
  return T;
}

bool TypeContext::declareAlias(const std::string &Name,
                               const Type *Underlying) {
  return Aliases.emplace(Name, Underlying).second;
}

const Type *TypeContext::lookupAlias(const std::string &Name) const {
  auto It = Aliases.find(Name);
  return It == Aliases.end() ? nullptr : It->second;
}

const Type *TypeContext::resolveTopLevel(const Type *T) const {
  while (T && T->isNamed()) {
    const Type *U = lookupAlias(T->name());
    if (!U)
      return T;
    T = U;
  }
  return T;
}

bool TypeContext::typesEqual(const Type *A, const Type *B) const {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  // Identical names are equal without expansion; this is what bounds the
  // recursion for recursive aliases.
  if (A->isNamed() && B->isNamed() && A->name() == B->name())
    return true;
  const Type *RA = resolveTopLevel(A);
  const Type *RB = resolveTopLevel(B);
  if (RA->kind() != RB->kind())
    return false;
  switch (RA->kind()) {
  case Type::Kind::Unit:
  case Type::Kind::UInt:
  case Type::Kind::Bool:
    return true;
  case Type::Kind::Named:
    return RA->name() == RB->name();
  case Type::Kind::Pair:
    return typesEqual(RA->first(), RB->first()) &&
           typesEqual(RA->second(), RB->second());
  case Type::Kind::Ptr:
    // Pointee comparison expands at most one alias layer on each side
    // before bottoming out in the same-name check above.
    return typesEqual(RA->pointee(), RB->pointee());
  }
  return false;
}

unsigned TypeContext::bitWidth(const Type *T, unsigned WordBits) const {
  T = resolveTopLevel(T);
  switch (T->kind()) {
  case Type::Kind::Unit:
    return 0;
  case Type::Kind::Bool:
    return 1;
  case Type::Kind::UInt:
  case Type::Kind::Ptr:
    return WordBits;
  case Type::Kind::Pair:
    return bitWidth(T->first(), WordBits) + bitWidth(T->second(), WordBits);
  case Type::Kind::Named:
    assert(false && "unresolved named type in bitWidth");
    return 0;
  }
  return 0;
}

} // namespace spire::ast

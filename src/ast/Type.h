//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the Tower language (paper Fig. 13):
///   tau ::= () | uint | bool | (tau1, tau2) | ptr(tau)
/// plus named types introduced by `type list = (uint, ptr<list>);`, which
/// make recursive data structures expressible. Named types are nominal;
/// recursion always passes through a pointer.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_AST_TYPE_H
#define SPIRE_AST_TYPE_H

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spire::ast {

class TypeContext;

/// An immutable, context-interned Tower type. Compare with pointer equality
/// only for identical spellings; use TypeContext::typesEqual for semantic
/// equality (which expands named aliases).
class Type {
public:
  enum class Kind { Unit, UInt, Bool, Pair, Ptr, Named };

  Kind kind() const { return K; }
  bool isUnit() const { return K == Kind::Unit; }
  bool isUInt() const { return K == Kind::UInt; }
  bool isBool() const { return K == Kind::Bool; }
  bool isPair() const { return K == Kind::Pair; }
  bool isPtr() const { return K == Kind::Ptr; }
  bool isNamed() const { return K == Kind::Named; }

  /// First component; valid for Pair types.
  const Type *first() const {
    assert(isPair() && "first() on non-pair type");
    return Sub[0];
  }
  /// Second component; valid for Pair types.
  const Type *second() const {
    assert(isPair() && "second() on non-pair type");
    return Sub[1];
  }
  /// Pointee type; valid for Ptr types.
  const Type *pointee() const {
    assert(isPtr() && "pointee() on non-pointer type");
    return Sub[0];
  }
  /// Declared name; valid for Named types.
  const std::string &name() const {
    assert(isNamed() && "name() on unnamed type");
    return Name;
  }

  /// Source-syntax rendering, e.g. "(uint, ptr<list>)".
  std::string str() const;

private:
  friend class TypeContext;
  Type(Kind K) : K(K) {}

  Kind K;
  const Type *Sub[2] = {nullptr, nullptr};
  std::string Name;
};

/// Owns and uniquifies Type instances and records `type` declarations.
///
/// All types used by one compilation must come from one context; pointer
/// identity then implies spelling identity.
class TypeContext {
public:
  TypeContext();

  const Type *unitType() const { return UnitTy; }
  const Type *uintType() const { return UIntTy; }
  const Type *boolType() const { return BoolTy; }
  const Type *pairType(const Type *First, const Type *Second);
  const Type *ptrType(const Type *Pointee);
  const Type *namedType(const std::string &Name);

  /// Binds `Name` to `Underlying` for a `type Name = ...;` declaration.
  /// Returns false if the name is already bound.
  bool declareAlias(const std::string &Name, const Type *Underlying);

  /// The declared underlying type of a named type, or null if undeclared.
  const Type *lookupAlias(const std::string &Name) const;

  /// Expands a top-level named alias (once); other types pass through.
  const Type *resolveTopLevel(const Type *T) const;

  /// Semantic equality: expands named aliases at the top level of the
  /// comparison, compares pairs and pointers structurally. Terminates for
  /// recursive aliases because recursion passes through Named under Ptr.
  bool typesEqual(const Type *A, const Type *B) const;

  /// Width of a value of type T in qubits, with `WordBits`-wide uint and
  /// pointer registers and a 1-bit bool, matching the paper's assumption
  /// of a small constant register width (Section 3.2).
  unsigned bitWidth(const Type *T, unsigned WordBits) const;

private:
  std::vector<std::unique_ptr<Type>> Owned;
  const Type *UnitTy;
  const Type *UIntTy;
  const Type *BoolTy;
  std::map<std::pair<const Type *, const Type *>, const Type *> Pairs;
  std::map<const Type *, const Type *> Ptrs;
  std::map<std::string, const Type *> NamedTypes;
  std::map<std::string, const Type *> Aliases;

  Type *create(Type::Kind K);
};

} // namespace spire::ast

#endif // SPIRE_AST_TYPE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The T-complexity cost model of the paper's Section 5.
///
/// C_MCX(s) and C_T(s) are computed by structural recursion on the core
/// IR:
///
///   C_MCX(skip) = 0        C_MCX(s1; s2) = C_MCX(s1) + C_MCX(s2)
///   C_MCX(if x { s }) = C_MCX(s)          C_MCX(s) = c^MCX_s otherwise
///
///   C_T(skip) = 0          C_T(s1; s2) = C_T(s1) + C_T(s2)
///   C_T(if x { s1; s2 }) = C_T(if x { s1 }) + C_T(if x { s2 })
///   C_T(if x { H(y) }) = c^T_CH
///   C_T(if x { y <- v }) = 0 for a value v (controlled X is CNOT)
///   C_T(if x { s }) = c^T_ctrl * C_MCX(s) + C_T(s) otherwise
///
/// with c^T_ctrl = 14 and c^T_CH = 8 (Section 5). Rather than leaving the
/// per-primitive constants c^MCX_s and c^T_s symbolic, this implementation
/// instantiates them from the actual gate shapes the circuit backend emits
/// (circuit::profilePrimitive), so the soundness theorems 5.1 and 5.2 hold
/// *exactly*: analyze() equals the gate counts of the compiled and
/// decomposed circuit, which the test suite verifies. A nesting depth is
/// threaded through the recursion so that the per-control cost is exact at
/// every depth (the first added control of an X costs 7, later ones 14,
/// matching the decomposition in Figs. 5 and 6).
///
/// The model also exposes the paper's closed-form constants for
/// documentation and the asymptotic analysis benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_COSTMODEL_COSTMODEL_H
#define SPIRE_COSTMODEL_COSTMODEL_H

#include "circuit/Compiler.h"
#include "ir/Core.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace spire::costmodel {

/// The paper's per-control T cost: two Toffoli gates of 7 T each (Figs. 5
/// and 6) per additional control bit.
inline constexpr int64_t CCtrl = 14;
/// The paper's controlled-Hadamard T cost (Lee et al. 2021, Figure 17).
inline constexpr int64_t CCH = 8;

struct Cost {
  int64_t MCX = 0; ///< Gates in the idealized arbitrarily-controlled set.
  int64_t T = 0;   ///< T gates after Clifford+T decomposition.

  Cost &operator+=(const Cost &O) {
    MCX += O.MCX;
    T += O.T;
    return *this;
  }
  friend Cost operator+(Cost A, const Cost &B) { return A += B; }
  friend bool operator==(const Cost &A, const Cost &B) {
    return A.MCX == B.MCX && A.T == B.T;
  }
};

/// Syntax-level analyzer: computes the cost of a program without building
/// its circuit (the whole point of the model — Section 1.2: analyze the
/// program "without compiling the program to an asymptotically large
/// circuit"). Only individual primitive statements are profiled, and
/// profiles are cached by shape.
class CostModel {
public:
  CostModel(const ir::CoreProgram &Program,
            const circuit::TargetConfig &Config)
      : Types(*Program.Types), Config(Config),
        CellBits(circuit::cellBitsFor(Program, Config)) {}

  /// Cost of the whole program. Programs that allocate add one gate for
  /// the backend's one-time ancilla preparation.
  Cost analyze(const ir::CoreProgram &Program) const {
    Cost C = analyzeStmts(Program.Body, 0);
    if (Program.NumAllocCells > 0)
      C.MCX += 1;
    return C;
  }

  /// Cost of a statement sequence nested under `Depth` control bits that
  /// are distinct from every variable the statements reference.
  Cost analyzeStmts(const ir::CoreStmtList &Stmts, unsigned Depth) const;
  Cost analyzeStmt(const ir::CoreStmt &S, unsigned Depth) const;

private:
  /// Workhorse: `Conds` is the stack of enclosing if-condition variables.
  /// A condition the primitive itself reads merges with the operand's
  /// control bit in the compiled circuit (a duplicated control is a
  /// single control), so such conditions are accounted for by profiling
  /// the primitive wrapped in the actual if-statements, rather than by
  /// depth arithmetic; so are repeated conditions of nested ifs over the
  /// same variable.
  ///
  /// The block walk is an explicit worklist (not structural recursion):
  /// an If pushes its condition with a pop marker, a With queues its
  /// body at twice the enclosing multiplier (the s1; s2; I[s1]
  /// expansion) and its do-body at one — so IR whose with-nesting grows
  /// with the recursion depth analyzes with O(1) C++ stack.
  Cost analyzeStmtsUnder(const ir::CoreStmtList &Stmts,
                         std::vector<ir::Symbol> &Conds) const;
  Cost analyzeStmtUnder(const ir::CoreStmt &S,
                        std::vector<ir::Symbol> &Conds) const;

  /// Cost of one primitive statement under the given condition stack.
  Cost primitiveCost(const ir::CoreStmt &S,
                     const std::vector<ir::Symbol> &Conds) const;

  const circuit::PrimitiveProfile &profileFor(const ir::CoreStmt &S) const;

  const ir::TypeContext &Types;
  circuit::TargetConfig Config;
  unsigned CellBits;
  /// Profile cache keyed by a packed binary signature of the primitive
  /// (statement kinds, symbol ids, operand widths — no pretty-printing;
  /// the seed keyed this cache on str(), which built a fresh string per
  /// analyzed statement).
  mutable std::unordered_map<std::string, circuit::PrimitiveProfile> Cache;
};

/// Convenience: analyze a program in one call.
Cost analyzeProgram(const ir::CoreProgram &Program,
                    const circuit::TargetConfig &Config);

} // namespace spire::costmodel

#endif // SPIRE_COSTMODEL_COSTMODEL_H

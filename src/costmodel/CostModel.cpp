#include "costmodel/CostModel.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace spire::ir;

namespace spire::costmodel {

namespace {

/// Structural signature of a primitive, including operand widths, so that
/// profiles can be cached across the many identical statements produced
/// by recursion inlining. If-wrapped primitives (see analyzeStmtUnder)
/// hash their condition names through str() as well.
std::string signatureOf(const CoreStmt &S, const TypeContext &Types,
                        unsigned WordBits) {
  std::string Key = S.str();
  const CoreStmt *Prim = &S;
  while (Prim->K == CoreStmt::Kind::If)
    Prim = Prim->Body.front().get();
  auto AddWidth = [&](const ast::Type *Ty) {
    Key += "#" + std::to_string(Ty ? Types.bitWidth(Ty, WordBits) : 0);
  };
  AddWidth(Prim->Ty);
  AddWidth(Prim->Ty2);
  if (Prim->K == CoreStmt::Kind::Assign ||
      Prim->K == CoreStmt::Kind::UnAssign) {
    AddWidth(Prim->E.A.Ty);
    if (Prim->E.K == CoreExpr::Kind::Pair ||
        Prim->E.K == CoreExpr::Kind::Binary)
      AddWidth(Prim->E.B.Ty);
    AddWidth(Prim->E.Ty);
  }
  return Key;
}

/// The variables a primitive statement reads or writes.
std::set<std::string> primitiveVars(const CoreStmt &S) {
  std::set<std::string> Vars;
  if (!S.Name.empty())
    Vars.insert(S.Name);
  if (!S.Name2.empty())
    Vars.insert(S.Name2);
  if (S.K == CoreStmt::Kind::Assign || S.K == CoreStmt::Kind::UnAssign)
    S.E.collectVars(Vars);
  return Vars;
}

} // namespace

const circuit::PrimitiveProfile &
CostModel::profileFor(const CoreStmt &S) const {
  std::string Key = signatureOf(S, Types, Config.WordBits);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  circuit::PrimitiveProfile P =
      circuit::profilePrimitive(S, Types, Config, CellBits);
  return Cache.emplace(std::move(Key), std::move(P)).first->second;
}

Cost CostModel::analyzeStmtUnder(const CoreStmt &S,
                                 std::vector<std::string> &Conds) const {
  switch (S.K) {
  case CoreStmt::Kind::Skip:
    return {};

  case CoreStmt::Kind::If: {
    // C_T(if x { s }) distributes over sequencing; the added control bit
    // is modeled by pushing the condition onto the enclosing stack.
    Conds.push_back(S.Name);
    Cost C = analyzeStmtsUnder(S.Body, Conds);
    Conds.pop_back();
    return C;
  }

  case CoreStmt::Kind::With: {
    // with { s1 } do { s2 } expands to s1; s2; I[s1], and reversal
    // preserves gate counts statement by statement.
    Cost C1 = analyzeStmtsUnder(S.Body, Conds);
    Cost C2 = analyzeStmtsUnder(S.DoBody, Conds);
    return C1 + C1 + C2;
  }

  case CoreStmt::Kind::Assign:
  case CoreStmt::Kind::UnAssign:
  case CoreStmt::Kind::Swap:
  case CoreStmt::Kind::MemSwap:
  case CoreStmt::Kind::Hadamard: {
    // Distinct enclosing conditions not read by the primitive each add
    // one fresh control to every gate; conditions the primitive reads
    // merge with the existing control on that variable's qubit, so they
    // are accounted for by profiling an explicit if-wrapper. Nested ifs
    // over the same variable contribute a single control (the compiler
    // emits a deduplicated control list).
    std::vector<std::string> Unique;
    for (const std::string &C : Conds)
      if (std::find(Unique.begin(), Unique.end(), C) == Unique.end())
        Unique.push_back(C);

    std::set<std::string> Read = primitiveVars(S);
    unsigned Fresh = 0;
    std::vector<std::string> Coinciding;
    for (const std::string &C : Unique) {
      if (Read.count(C))
        Coinciding.push_back(C);
      else
        ++Fresh;
    }

    Cost Result;
    if (Coinciding.empty()) {
      const circuit::PrimitiveProfile &P = profileFor(S);
      Result.MCX = P.totalGates();
      Result.T = P.tComplexityUnder(Fresh);
      return Result;
    }

    // Build if c1 { if c2 { ... S } } for the coinciding conditions and
    // profile the whole nest so control merging is exact.
    CoreStmtPtr Wrapped = S.clone();
    const ast::Type *Bool = Types.boolType();
    for (auto It = Coinciding.rbegin(); It != Coinciding.rend(); ++It) {
      CoreStmtList Body;
      Body.push_back(std::move(Wrapped));
      Wrapped = CoreStmt::ifStmt(*It, std::move(Body));
      Wrapped->Ty = Bool; // Lets the profiler allocate the condition.
    }
    const circuit::PrimitiveProfile &P = profileFor(*Wrapped);
    Result.MCX = P.totalGates();
    Result.T = P.tComplexityUnder(Fresh);
    return Result;
  }
  }
  return {};
}

Cost CostModel::analyzeStmtsUnder(const CoreStmtList &Stmts,
                                  std::vector<std::string> &Conds) const {
  Cost Total;
  for (const auto &S : Stmts)
    Total += analyzeStmtUnder(*S, Conds);
  return Total;
}

Cost CostModel::analyzeStmt(const CoreStmt &S, unsigned Depth) const {
  // Synthetic condition names: IR variable names never contain spaces,
  // so these can never coincide with a variable the statement reads.
  std::vector<std::string> Conds;
  for (unsigned I = 0; I != Depth; ++I)
    Conds.push_back(" cond" + std::to_string(I));
  return analyzeStmtUnder(S, Conds);
}

Cost CostModel::analyzeStmts(const CoreStmtList &Stmts,
                             unsigned Depth) const {
  std::vector<std::string> Conds;
  for (unsigned I = 0; I != Depth; ++I)
    Conds.push_back(" cond" + std::to_string(I));
  return analyzeStmtsUnder(Stmts, Conds);
}

Cost analyzeProgram(const CoreProgram &Program,
                    const circuit::TargetConfig &Config) {
  CostModel Model(Program, Config);
  return Model.analyze(Program);
}

} // namespace spire::costmodel

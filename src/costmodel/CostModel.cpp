#include "costmodel/CostModel.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace spire::ir;

namespace spire::costmodel {

namespace {

/// Appends a raw little-endian value to a packed signature key.
template <typename T> void packInto(std::string &Key, T Value) {
  char Bytes[sizeof(T)];
  std::memcpy(Bytes, &Value, sizeof(T));
  Key.append(Bytes, sizeof(T));
}

void packAtom(std::string &Key, const Atom &A, const TypeContext &Types,
              unsigned WordBits) {
  packInto<uint8_t>(Key, static_cast<uint8_t>(A.K));
  if (A.isVar())
    packInto<uint32_t>(Key, A.Var.id());
  else
    packInto<uint64_t>(Key, A.ConstBits);
  packInto<uint8_t>(Key, A.IsAllocConst ? 1 : 0);
  packInto<uint32_t>(Key, A.Ty ? Types.bitWidth(A.Ty, WordBits) : 0);
}

/// Structural signature of a primitive, including operand widths, so that
/// profiles can be cached across the many identical statements produced
/// by recursion inlining. If-wrapped primitives (see analyzeStmtUnder)
/// contribute their condition symbols as well. Packed binary — symbol
/// ids, kinds, and widths — rather than the seed's str() spelling, so a
/// cache probe allocates one small flat string and never materializes
/// variable names.
std::string signatureOf(const CoreStmt &S, const TypeContext &Types,
                        unsigned WordBits) {
  std::string Key;
  Key.reserve(64);
  const CoreStmt *Prim = &S;
  while (Prim->K == CoreStmt::Kind::If) {
    packInto<uint8_t>(Key, static_cast<uint8_t>(Prim->K));
    packInto<uint32_t>(Key, Prim->Name.id());
    Prim = Prim->Body.front().get();
  }
  auto AddWidth = [&](const ast::Type *Ty) {
    packInto<uint32_t>(Key, Ty ? Types.bitWidth(Ty, WordBits) : 0);
  };
  packInto<uint8_t>(Key, static_cast<uint8_t>(Prim->K));
  packInto<uint32_t>(Key, Prim->Name.id());
  packInto<uint32_t>(Key, Prim->Name2.id());
  AddWidth(Prim->Ty);
  AddWidth(Prim->Ty2);
  if (Prim->K == CoreStmt::Kind::Assign ||
      Prim->K == CoreStmt::Kind::UnAssign) {
    const CoreExpr &E = Prim->E;
    packInto<uint8_t>(Key, static_cast<uint8_t>(E.K));
    packInto<uint8_t>(Key, static_cast<uint8_t>(E.UOp));
    packInto<uint8_t>(Key, static_cast<uint8_t>(E.BOp));
    packInto<uint32_t>(Key, E.ProjIndex);
    packAtom(Key, E.A, Types, WordBits);
    if (E.K == CoreExpr::Kind::Pair || E.K == CoreExpr::Kind::Binary)
      packAtom(Key, E.B, Types, WordBits);
    AddWidth(E.Ty);
  }
  return Key;
}

/// The variables a primitive statement reads or writes.
SymbolSet primitiveVars(const CoreStmt &S) {
  SymbolSet Vars;
  if (!S.Name.empty())
    Vars.insert(S.Name);
  if (!S.Name2.empty())
    Vars.insert(S.Name2);
  if (S.K == CoreStmt::Kind::Assign || S.K == CoreStmt::Kind::UnAssign)
    S.E.collectVars(Vars);
  return Vars;
}

} // namespace

const circuit::PrimitiveProfile &
CostModel::profileFor(const CoreStmt &S) const {
  // Hoisted handles: one registry lookup per process, one relaxed
  // fetch_add per probe. These are the ROADMAP item-2 cache counters —
  // the daemon's artifact cache will report hit rates the same way.
  static obs::Registry::Counter Hits =
      obs::Registry::global().counter("costmodel.profile_cache.hits");
  static obs::Registry::Counter Misses =
      obs::Registry::global().counter("costmodel.profile_cache.misses");
  std::string Key = signatureOf(S, Types, Config.WordBits);
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    ++Hits;
    return It->second;
  }
  ++Misses;
  circuit::PrimitiveProfile P =
      circuit::profilePrimitive(S, Types, Config, CellBits);
  return Cache.emplace(std::move(Key), std::move(P)).first->second;
}

Cost CostModel::primitiveCost(const CoreStmt &S,
                              const std::vector<Symbol> &Conds) const {
  // Distinct enclosing conditions not read by the primitive each add
  // one fresh control to every gate; conditions the primitive reads
  // merge with the existing control on that variable's qubit, so they
  // are accounted for by profiling an explicit if-wrapper. Nested ifs
  // over the same variable contribute a single control (the compiler
  // emits a deduplicated control list).
  std::vector<Symbol> Unique;
  for (Symbol C : Conds)
    if (std::find(Unique.begin(), Unique.end(), C) == Unique.end())
      Unique.push_back(C);

  SymbolSet Read = primitiveVars(S);
  unsigned Fresh = 0;
  std::vector<Symbol> Coinciding;
  for (Symbol C : Unique) {
    if (Read.count(C))
      Coinciding.push_back(C);
    else
      ++Fresh;
  }

  Cost Result;
  if (Coinciding.empty()) {
    const circuit::PrimitiveProfile &P = profileFor(S);
    Result.MCX = P.totalGates();
    Result.T = P.tComplexityUnder(Fresh);
    return Result;
  }

  // Build if c1 { if c2 { ... S } } for the coinciding conditions and
  // profile the whole nest so control merging is exact.
  CoreStmtPtr Wrapped = S.clone();
  const ast::Type *Bool = Types.boolType();
  for (auto It = Coinciding.rbegin(); It != Coinciding.rend(); ++It) {
    CoreStmtList Body;
    Body.push_back(std::move(Wrapped));
    Wrapped = CoreStmt::ifStmt(*It, std::move(Body));
    Wrapped->Ty = Bool; // Lets the profiler allocate the condition.
  }
  const circuit::PrimitiveProfile &P = profileFor(*Wrapped);
  Result.MCX = P.totalGates();
  Result.T = P.tComplexityUnder(Fresh);
  return Result;
}

namespace {

/// One pending step of the cost walk: visit a statement at a gate-count
/// multiplier, or pop the innermost condition.
struct CostItem {
  const CoreStmt *S;
  int64_t Mult;
  bool PopCond;
};

} // namespace

Cost CostModel::analyzeStmtUnder(const CoreStmt &S,
                                 std::vector<Symbol> &Conds) const {
  // C_MCX / C_T by structural walk (header comment): an explicit stack
  // instead of recursion, with a per-item multiplier carrying the
  // with-expansion factor (with { s1 } do { s2 } costs 2*C(s1) + C(s2),
  // since the block expands to s1; s2; I[s1] and reversal preserves
  // gate counts statement by statement).
  Cost Total;
  std::vector<CostItem> Work;
  Work.push_back({&S, 1, false});
  while (!Work.empty()) {
    CostItem Item = Work.back();
    Work.pop_back();
    if (Item.PopCond) {
      Conds.pop_back();
      continue;
    }
    const CoreStmt &Cur = *Item.S;
    switch (Cur.K) {
    case CoreStmt::Kind::Skip:
      break;

    case CoreStmt::Kind::If:
      // The added control bit is modeled by pushing the condition onto
      // the enclosing stack until the body's statements are consumed.
      Conds.push_back(Cur.Name);
      Work.push_back({nullptr, 0, true});
      for (auto It = Cur.Body.rbegin(); It != Cur.Body.rend(); ++It)
        Work.push_back({It->get(), Item.Mult, false});
      break;

    case CoreStmt::Kind::With:
      // Queue do-body first so the with-body pops (and profiles) first,
      // matching the recursive evaluation order.
      for (auto It = Cur.DoBody.rbegin(); It != Cur.DoBody.rend(); ++It)
        Work.push_back({It->get(), Item.Mult, false});
      for (auto It = Cur.Body.rbegin(); It != Cur.Body.rend(); ++It)
        Work.push_back({It->get(), Item.Mult * 2, false});
      break;

    default: {
      Cost C = primitiveCost(Cur, Conds);
      Total.MCX += C.MCX * Item.Mult;
      Total.T += C.T * Item.Mult;
      break;
    }
    }
  }
  return Total;
}

Cost CostModel::analyzeStmtsUnder(const CoreStmtList &Stmts,
                                  std::vector<Symbol> &Conds) const {
  Cost Total;
  for (const auto &S : Stmts)
    Total += analyzeStmtUnder(*S, Conds);
  return Total;
}

Cost CostModel::analyzeStmt(const CoreStmt &S, unsigned Depth) const {
  // Synthetic condition names: IR variable names never contain spaces,
  // so these can never coincide with a variable the statement reads.
  std::vector<Symbol> Conds;
  for (unsigned I = 0; I != Depth; ++I)
    Conds.push_back(Symbol(" cond" + std::to_string(I)));
  return analyzeStmtUnder(S, Conds);
}

Cost CostModel::analyzeStmts(const CoreStmtList &Stmts,
                             unsigned Depth) const {
  std::vector<Symbol> Conds;
  for (unsigned I = 0; I != Depth; ++I)
    Conds.push_back(Symbol(" cond" + std::to_string(I)));
  return analyzeStmtsUnder(Stmts, Conds);
}

Cost analyzeProgram(const CoreProgram &Program,
                    const circuit::TargetConfig &Config) {
  CostModel Model(Program, Config);
  return Model.analyze(Program);
}

} // namespace spire::costmodel

OPENQASM 3.0;
include "stdgates.inc
qubit[2] q;
x q[0];

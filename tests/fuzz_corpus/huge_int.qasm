OPENQASM 3.0;
include "stdgates.inc";
qubit[99999999999999999999999999] q;
x q[0];

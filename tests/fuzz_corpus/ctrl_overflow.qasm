OPENQASM 3.0;
include "stdgates.inc";
qubit[3] q;
ctrl(16777215) @ ctrl(16777215) @ x q[0], q[1], q[2];

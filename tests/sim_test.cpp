//===----------------------------------------------------------------------===//
// Tests for the simulators: bit strings, basis-state runs, sparse
// state-vector gates (H, CH, phases), and the classical IR interpreter.
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::sim;
using namespace spire::circuit;

TEST(BitString, ReadWrite) {
  BitString B(100);
  B.write(3, 8, 0xA5);
  EXPECT_EQ(B.read(3, 8), 0xA5u);
  EXPECT_FALSE(B.get(2));
  EXPECT_TRUE(B.get(3));  // 0xA5 bit 0
  EXPECT_FALSE(B.get(4)); // 0xA5 bit 1
  // Crossing a 64-bit word boundary.
  B.write(60, 10, 0x3FF);
  EXPECT_EQ(B.read(60, 10), 0x3FFu);
  EXPECT_EQ(B.read(3, 8), 0xA5u);
}

TEST(RunBasis, MCXSemantics) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(0);         // q0 = 1
  C.addX(1, {0});    // q1 ^= q0 -> 1
  C.addX(2, {0, 1}); // q2 ^= q0&q1 -> 1
  C.addX(2, {1});    // q2 ^= q1 -> 0
  BitString S(3);
  runBasis(C, S);
  EXPECT_TRUE(S.get(0));
  EXPECT_TRUE(S.get(1));
  EXPECT_FALSE(S.get(2));
}

TEST(StateVector, BellState) {
  Circuit C;
  C.NumQubits = 2;
  C.addH(0);
  C.addX(1, {0});
  SparseState Out = runState(C, BitString(2));
  ASSERT_EQ(Out.size(), 2u);
  BitString B00(2), B11(2);
  B11.set(0, true);
  B11.set(1, true);
  EXPECT_NEAR(std::abs(Out[B00]), 1 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::abs(Out[B11]), 1 / std::sqrt(2.0), 1e-9);
}

TEST(StateVector, HHIsIdentity) {
  Circuit C;
  C.NumQubits = 1;
  C.addH(0);
  C.addH(0);
  BitString One(1);
  One.set(0, true);
  SparseState Out = runState(C, One);
  SparseState Expected;
  Expected[One] = 1.0;
  EXPECT_TRUE(statesEquivalent(Out, Expected));
}

TEST(StateVector, TPhases) {
  // T^8 = I; T^4 = Z; S = T^2.
  Circuit T8;
  T8.NumQubits = 1;
  for (int I = 0; I != 8; ++I)
    T8.Gates.push_back(Gate(GateKind::T, 0));
  BitString One(1);
  One.set(0, true);
  SparseState Expected;
  Expected[One] = 1.0;
  EXPECT_TRUE(statesEquivalent(runState(T8, One), Expected));

  Circuit TT;
  TT.NumQubits = 1;
  TT.Gates.push_back(Gate(GateKind::T, 0));
  TT.Gates.push_back(Gate(GateKind::T, 0));
  Circuit S;
  S.NumQubits = 1;
  S.Gates.push_back(Gate(GateKind::S, 0));
  EXPECT_TRUE(statesEquivalent(runState(TT, One), runState(S, One)));
}

TEST(StateVector, ControlledHOnlyFiresWhenControlSet) {
  Circuit C;
  C.NumQubits = 2;
  C.addH(1, {0});
  // Control 0: nothing happens.
  SparseState Out0 = runState(C, BitString(2));
  SparseState Id;
  Id[BitString(2)] = 1.0;
  EXPECT_TRUE(statesEquivalent(Out0, Id));
  // Control 1: target splits.
  BitString In(2);
  In.set(0, true);
  SparseState Out1 = runState(C, In);
  EXPECT_EQ(Out1.size(), 2u);
}

TEST(StateVector, GlobalPhaseEquivalence) {
  // Z|1> = -|1>: equal to |1> only up to global phase.
  Circuit C;
  C.NumQubits = 1;
  C.Gates.push_back(Gate(GateKind::Z, 0));
  BitString One(1);
  One.set(0, true);
  SparseState Expected;
  Expected[One] = 1.0;
  SparseState Out = runState(C, One);
  EXPECT_TRUE(statesEquivalent(Out, Expected));
  EXPECT_NEAR(Out[One].real(), -1.0, 1e-9); // literal amplitude differs
}

TEST(Interpreter, XorRedeclaration) {
  auto Types = std::make_shared<ir::TypeContext>();
  const ast::Type *UInt = Types->uintType();
  ir::CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"a", UInt}};
  P.OutputVar = "x";
  P.OutputTy = UInt;
  using ir::Atom;
  using ir::CoreExpr;
  using ir::CoreStmt;
  P.Body.push_back(
      CoreStmt::assign("x", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  P.Body.push_back(CoreStmt::assign(
      "x", UInt, CoreExpr::atom(Atom::constant(0xFF, UInt))));
  circuit::TargetConfig Config;
  MachineState S = MachineState::make(Config.HeapCells);
  S.Regs["a"] = 0x0F;
  Interpreter I(P, Config);
  ASSERT_TRUE(I.run(S));
  EXPECT_EQ(I.output(S), 0x0Fu ^ 0xFFu);
}

TEST(Interpreter, FailedUnassignmentReportsError) {
  auto Types = std::make_shared<ir::TypeContext>();
  const ast::Type *UInt = Types->uintType();
  ir::CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"a", UInt}};
  P.OutputVar = "a";
  P.OutputTy = UInt;
  using ir::Atom;
  using ir::CoreExpr;
  using ir::CoreStmt;
  P.Body.push_back(
      CoreStmt::assign("x", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  P.Body.push_back(CoreStmt::unassign(
      "x", UInt, CoreExpr::atom(Atom::constant(1, UInt))));
  circuit::TargetConfig Config;
  MachineState S = MachineState::make(Config.HeapCells);
  S.Regs["a"] = 7; // x = 7, un-assign claims 1: residue 6.
  Interpreter I(P, Config);
  EXPECT_FALSE(I.run(S));
  EXPECT_NE(I.error().find("did not restore zero"), std::string::npos);
}

TEST(Interpreter, HadamardIsRejected) {
  auto Types = std::make_shared<ir::TypeContext>();
  const ast::Type *Bool = Types->boolType();
  ir::CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"b", Bool}};
  P.OutputVar = "b";
  P.OutputTy = Bool;
  P.Body.push_back(ir::CoreStmt::hadamard("b", Bool));
  circuit::TargetConfig Config;
  MachineState S = MachineState::make(Config.HeapCells);
  Interpreter I(P, Config);
  EXPECT_FALSE(I.run(S));
}

TEST(HadamardPipeline, CompiledHMatchesStateSim) {
  // A Tower program with H compiles to a circuit that produces a uniform
  // superposition over the conditional outcome.
  auto Types = std::make_shared<ir::TypeContext>();
  const ast::Type *Bool = Types->boolType();
  const ast::Type *UInt = Types->uintType();
  ir::CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"b", Bool}};
  P.OutputVar = "y";
  P.OutputTy = UInt;
  using ir::Atom;
  using ir::CoreExpr;
  using ir::CoreStmt;
  P.Body.push_back(CoreStmt::hadamard("b", Bool));
  ir::CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "y", UInt, CoreExpr::atom(Atom::constant(9, UInt))));
  P.Body.push_back(CoreStmt::ifStmt("b", std::move(Body)));

  circuit::TargetConfig Config;
  circuit::CompileResult R = circuit::compileToCircuit(P, Config);
  MachineState S = MachineState::make(Config.HeapCells);
  BitString In = encodeState(S, R.Layout);
  SparseState Out = runState(R.Circ, In);
  // Two branches: (b=0, y=0) and (b=1, y=9), equal weight.
  ASSERT_EQ(Out.size(), 2u);
  for (const auto &[Basis, Amp] : Out) {
    uint64_t B = Basis.read(R.Layout.Inputs.at("b").Offset, 1);
    uint64_t Y = Basis.read(R.Layout.Output.Offset, 8);
    EXPECT_EQ(Y, B ? 9u : 0u);
    EXPECT_NEAR(std::abs(Amp), 1 / std::sqrt(2.0), 1e-9);
  }
}

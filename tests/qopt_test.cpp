//===----------------------------------------------------------------------===//
// Tests for the circuit-optimizer baselines: commutation rules,
// cancellation, phase folding, search — including the paper's Fig. 16/17
// phenomenon: adjacent Toffoli pairs cancel at the Toffoli level but NOT
// at the Clifford+T level under adjacent-gate cancellation.
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "circuit/Compiler.h"
#include "decompose/Decompose.h"
#include "qopt/Passes.h"
#include "sim/Simulator.h"

#include <chrono>
#include <gtest/gtest.h>
#include <random>

using namespace spire;
using namespace spire::circuit;
using namespace spire::qopt;

namespace {

/// Semantic check on every basis state over `DataQubits`.
void expectSameAction(const Circuit &C1, const Circuit &C2,
                      unsigned DataQubits) {
  ASSERT_LE(DataQubits, 10u);
  unsigned Max = std::max(C1.NumQubits, C2.NumQubits);
  for (uint64_t Input = 0; Input != (uint64_t(1) << DataQubits); ++Input) {
    sim::BitString In(Max);
    for (unsigned Q = 0; Q != DataQubits; ++Q)
      In.set(Q, (Input >> Q) & 1);
    EXPECT_TRUE(
        sim::statesEquivalent(sim::runState(C1, In), sim::runState(C2, In)))
        << "input " << Input;
  }
}

} // namespace

TEST(Commutation, Rules) {
  Gate X01(GateKind::X, 1, {0});
  Gate X02(GateKind::X, 2, {0});
  Gate X10(GateKind::X, 0, {1});
  Gate T1(GateKind::T, 1);
  Gate T0(GateKind::T, 0);
  Gate H1(GateKind::H, 1);

  // Shared control, distinct targets: commute.
  EXPECT_TRUE(gatesCommute(X01, X02));
  // Target of one is control of the other: do not commute.
  EXPECT_FALSE(gatesCommute(X01, X10));
  // Same target: X gates commute.
  EXPECT_TRUE(gatesCommute(X01, Gate(GateKind::X, 1)));
  // Phase on a control is fine; phase on the target is not.
  EXPECT_TRUE(gatesCommute(T0, X01));
  EXPECT_FALSE(gatesCommute(T1, X01));
  EXPECT_TRUE(gatesCommute(T0, T1));
  // H blocks anything touching its target.
  EXPECT_FALSE(gatesCommute(H1, X01));
  EXPECT_TRUE(gatesCommute(H1, Gate(GateKind::X, 2, {0})));
}

TEST(Cancel, RemovesAdjacentIdenticalPairs) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  C.addX(2, {0, 1});
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard());
  EXPECT_TRUE(Out.Gates.empty());
}

TEST(Cancel, CancelsAcrossCommutingGates) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(2, {0, 1});
  C.addX(3, {0}); // commutes with both neighbors
  C.addX(2, {0, 1});
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard());
  ASSERT_EQ(Out.Gates.size(), 1u);
  EXPECT_EQ(Out.Gates[0].Target, 3u);
}

TEST(Cancel, BlockedByNonCommutingGate) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  C.addX(0, {2}); // target 0 is a control of the Toffolis: blocks
  C.addX(2, {0, 1});
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard());
  EXPECT_EQ(Out.Gates.size(), 3u);
}

TEST(Cancel, TTdgPairs) {
  Circuit C;
  C.NumQubits = 1;
  C.add(Gate(GateKind::T, 0));
  C.add(Gate(GateKind::Tdg, 0));
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard());
  EXPECT_TRUE(Out.Gates.empty());
}

TEST(Cancel, PreservesSemanticsOnBenchmark) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 2);
  CompileResult R = compileToCircuit(P, TargetConfig{});
  Circuit Out = cancelAdjacentGates(R.Circ, CancelOptions::standard());
  EXPECT_LE(Out.Gates.size(), R.Circ.Gates.size());
  // Validate on random basis states.
  std::mt19937_64 Rng(3);
  for (int Trial = 0; Trial != 5; ++Trial) {
    sim::BitString In(R.Circ.NumQubits);
    for (unsigned Q = 0; Q != R.Circ.NumQubits; ++Q)
      In.set(Q, Rng() & 1);
    sim::BitString A = In, B = In;
    sim::runBasis(R.Circ, A);
    sim::runBasis(Out, B);
    EXPECT_TRUE(A == B) << "trial " << Trial;
  }
}

TEST(Figure16And17, ToffoliLevelCancelsButCliffordTDoesNot) {
  // Two adjacent identical Toffolis are the identity (Fig. 16's gray
  // gates). At the Toffoli level, cancellation removes them; after the
  // asymmetric Fig. 6 decomposition (Fig. 17), adjacent-gate cancellation
  // cannot reduce the pair to the empty circuit — the paper's explanation
  // for why -toCliffordT-style optimizers stay quadratic (Section 8.5).
  Circuit Pair;
  Pair.NumQubits = 3;
  Pair.addX(2, {0, 1});
  Pair.addX(2, {0, 1});

  Circuit ToffoliCancelled =
      cancelAdjacentGates(Pair, CancelOptions::standard());
  EXPECT_TRUE(ToffoliCancelled.Gates.empty());

  Circuit CT = decompose::toCliffordT(Pair);
  EXPECT_EQ(countGates(CT).T, 14);
  Circuit CTCancelled = cancelAdjacentGates(CT, CancelOptions::standard());
  EXPECT_GT(countGates(CTCancelled).T, 0)
      << "adjacent-gate cancellation should NOT fully cancel Fig. 17";
  // Still semantically the identity, of course.
  expectSameAction(Pair, CTCancelled, 3);

  // Phase folding (rotation merging over unbounded ranges) does better:
  // it merges the T rotations across the two Toffolis.
  Circuit Folded = phaseFold(CT);
  EXPECT_LT(countGates(Folded).T, countGates(CT).T);
  expectSameAction(Pair, Folded, 3);
}

TEST(PhaseFold, MergesTTIntoS) {
  Circuit C;
  C.NumQubits = 1;
  C.add(Gate(GateKind::T, 0));
  C.add(Gate(GateKind::T, 0));
  Circuit Out = phaseFold(C);
  EXPECT_EQ(countGates(Out).T, 0);
  ASSERT_EQ(Out.Gates.size(), 1u);
  EXPECT_EQ(Out.Gates[0].Kind, GateKind::S);
}

TEST(PhaseFold, MergesAcrossCNOTs) {
  // T(q1); CNOT(0->1); CNOT(0->1); Tdg(q1): the parities match, so the
  // rotations cancel entirely.
  Circuit C;
  C.NumQubits = 2;
  C.add(Gate(GateKind::T, 1));
  C.addX(1, {0});
  C.addX(1, {0});
  C.add(Gate(GateKind::Tdg, 1));
  Circuit Out = phaseFold(C);
  EXPECT_EQ(countGates(Out).T, 0);
  expectSameAction(C, Out, 2);
}

TEST(PhaseFold, ParityTrackingThroughCNOT) {
  // T(1); CNOT(0->1); T(1): different parities (x1 vs x0^x1): no merge.
  Circuit C;
  C.NumQubits = 2;
  C.add(Gate(GateKind::T, 1));
  C.addX(1, {0});
  C.add(Gate(GateKind::T, 1));
  Circuit Out = phaseFold(C);
  EXPECT_EQ(countGates(Out).T, 2);
  expectSameAction(C, Out, 2);
}

TEST(PhaseFold, HBarriersPreventMerging) {
  Circuit C;
  C.NumQubits = 1;
  C.add(Gate(GateKind::T, 0));
  C.addH(0);
  C.add(Gate(GateKind::Tdg, 0));
  Circuit Out = phaseFold(C);
  EXPECT_EQ(countGates(Out).T, 2);
  expectSameAction(C, Out, 1);
}

TEST(PhaseFold, XFlipsNegateRotations) {
  // T; X; T; X == X X plus phases on complementary values: the two T
  // rotations are on p and 1^p, so they merge to global + Tdg-like
  // contribution: total one T remains (T - T = S^0... check semantics
  // only, plus the T-count drops below 2).
  Circuit C;
  C.NumQubits = 1;
  C.add(Gate(GateKind::T, 0));
  C.addX(0);
  C.add(Gate(GateKind::T, 0));
  C.addX(0);
  Circuit Out = phaseFold(C);
  expectSameAction(C, Out, 1);
  EXPECT_LE(countGates(Out).T, 2);
}

TEST(PhaseFold, SoundOnDecomposedBenchmark) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 2);
  CompileResult R = compileToCircuit(P, TargetConfig{});
  Circuit CT = decompose::toCliffordT(R.Circ);
  Circuit Folded = phaseFold(CT);
  EXPECT_LE(countGates(Folded).T, countGates(CT).T);
  std::mt19937_64 Rng(5);
  for (int Trial = 0; Trial != 3; ++Trial) {
    sim::BitString In(CT.NumQubits);
    for (unsigned Q = 0; Q != R.Circ.NumQubits; ++Q)
      In.set(Q, Rng() & 1);
    sim::SparseState A = sim::runState(CT, In);
    sim::SparseState B = sim::runState(Folded, In);
    EXPECT_TRUE(sim::statesEquivalent(A, B)) << "trial " << Trial;
  }
}

TEST(SearchRewrite, NeverWorseAndSound) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 2);
  CompileResult R = compileToCircuit(P, TargetConfig{});
  Circuit CT = decompose::toCliffordT(R.Circ);
  SearchOptions Options;
  Options.TimeoutSeconds = 0.2;
  Circuit Out = searchRewrite(CT, Options);
  EXPECT_LE(countGates(Out).TComplexity, countGates(CT).TComplexity);
  std::mt19937_64 Rng(9);
  sim::BitString In(CT.NumQubits);
  for (unsigned Q = 0; Q != R.Circ.NumQubits; ++Q)
    In.set(Q, Rng() & 1);
  EXPECT_TRUE(sim::statesEquivalent(sim::runState(CT, In),
                                    sim::runState(Out, In)));
}

TEST(Cancel, StatsAccountForEveryRemovedGate) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(2, {0, 1});
  C.addX(3, {0});
  C.addX(2, {0, 1});
  C.addX(3, {0});
  C.add(Gate(GateKind::T, 1));
  qopt::OptStats Stats;
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard(), &Stats);
  EXPECT_EQ(Out.Gates.size(), 1u);
  EXPECT_EQ(Stats.CancelledPairs, 2);
  // The last fixpoint pass finds nothing, so there are at least two.
  EXPECT_GE(Stats.CancelPasses, 2);
  EXPECT_GT(Stats.WorklistVisits, 0);
}

TEST(PhaseFold, StatsCountMergedAndEmittedRotations) {
  Circuit C;
  C.NumQubits = 1;
  C.add(Gate(GateKind::T, 0));
  C.add(Gate(GateKind::T, 0));
  qopt::OptStats Stats;
  Circuit Out = phaseFold(C, &Stats);
  ASSERT_EQ(Out.Gates.size(), 1u); // T T -> S
  EXPECT_EQ(Stats.EmittedRotations, 1);
  EXPECT_EQ(Stats.MergedRotations, 1); // Two in, one out.
}

TEST(Cancel, DisjointNestCancelsInTwoFixpointPasses) {
  // X(0)..X(L-1) X(L-1)..X(0), one wire per layer: no pair shares a
  // wire, so only freed lookahead budget makes outer pairs reachable.
  // The worklist's global-neighbor re-enqueue must cascade the whole
  // nest in one pass (plus the empty confirm pass) — without it, each
  // full re-seed pass peels only ~lookahead/2 layers (quadratic, and
  // unbounded by any round cap).
  constexpr unsigned L = 2000;
  Circuit C;
  C.NumQubits = L;
  for (unsigned I = 0; I != L; ++I)
    C.addX(I);
  for (unsigned I = L; I-- > 0;)
    C.addX(I);
  qopt::OptStats Stats;
  Circuit Out = cancelAdjacentGates(C, CancelOptions::standard(), &Stats);
  EXPECT_TRUE(Out.Gates.empty());
  EXPECT_EQ(Stats.CancelledPairs, L);
  EXPECT_EQ(Stats.CancelPasses, 2);
}

TEST(SearchRewrite, ExitsEarlyAtFixpoint) {
  // An already-minimal circuit: no cancellation is possible, so the
  // stale-round check must fire long before the (generous) deadline
  // instead of burning it on random transpositions.
  Circuit C;
  C.NumQubits = 2;
  C.addH(0);
  C.addX(1, {0});
  C.add(Gate(GateKind::T, 1));
  C.addH(1);
  SearchOptions Options;
  Options.TimeoutSeconds = 30.0;
  auto Start = std::chrono::steady_clock::now();
  Circuit Out = searchRewrite(C, Options);
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(Elapsed, 5.0) << "searchRewrite burned its budget at a fixpoint";
  EXPECT_EQ(Out.Gates.size(), C.Gates.size());
}

TEST(SearchRewrite, DeterministicForAFixedSeed) {
  // With the stale-round exit doing the stopping (deadline far away),
  // the result depends only on the seed.
  Circuit C;
  C.NumQubits = 4;
  C.addX(2, {0, 1});
  C.addX(3, {0});
  C.addX(2, {0, 1});
  C.addH(1);
  C.add(Gate(GateKind::T, 0));
  C.add(Gate(GateKind::Tdg, 0));
  SearchOptions Options;
  Options.TimeoutSeconds = 30.0;
  Options.Seed = 7;
  Circuit A = searchRewrite(C, Options);
  Circuit B = searchRewrite(C, Options);
  ASSERT_EQ(A.Gates.size(), B.Gates.size());
  for (size_t I = 0; I != A.Gates.size(); ++I)
    EXPECT_TRUE(A.Gates[I] == B.Gates[I]) << "gate " << I;
}

TEST(CancelExhaustive, FullLookaheadBeatsPeephole) {
  // The exhaustive configuration must be at least as strong as the
  // peephole one on a circuit with far-separated cancelling pairs.
  Circuit C;
  C.NumQubits = 12;
  C.addX(10, {0, 1});
  for (unsigned I = 0; I != 9; ++I)
    C.addX(11, {I}); // many commuting spacers
  C.addX(10, {0, 1});
  Circuit Peep = cancelAdjacentGates(C, CancelOptions::peephole());
  Circuit Full = cancelAdjacentGates(C, CancelOptions::exhaustive());
  EXPECT_EQ(Peep.Gates.size(), 11u); // lookahead 8 cannot reach the pair
  EXPECT_EQ(Full.Gates.size(), 9u);
}

//===----------------------------------------------------------------------===//
// Tests for the pipeline-wide static verifier (src/analysis): IR
// invariant checking, circuit/netlist well-formedness, and the GF(2)
// affine-parity ancilla-cleanness analysis. Includes the mutation
// self-test: each injected bug class must be caught by exactly the
// intended checker — "ir", "circuit", or "parity" — and by no other.
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "benchmarks/Harness.h"
#include "circuit/Netlist.h"
#include "decompose/Decompose.h"
#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::analysis;
using namespace spire::circuit;
using namespace spire::ir;

namespace {

/// Expects the report to contain at least one violation, all of them
/// from `Checker` (the exactly-one-checker property the mutation tests
/// pin), with `Needle` somewhere in a message.
void expectOnly(const VerifyReport &R, const char *Checker,
                const std::string &Needle) {
  ASSERT_FALSE(R.ok()) << "expected a violation mentioning '" << Needle
                       << "'";
  for (const Violation &V : R.Violations)
    EXPECT_STREQ(V.Checker, Checker) << V.str();
  EXPECT_NE(R.str().find(Needle), std::string::npos) << R.str();
}

struct IrFixture : ::testing::Test {
  IrFixture() {
    Types = std::make_shared<TypeContext>();
    UInt = Types->uintType();
    Bool = Types->boolType();
  }

  CoreProgram makeProgram(CoreStmtList Body,
                          std::vector<std::pair<Symbol, const Type *>>
                              Inputs,
                          Symbol Output = Symbol()) {
    CoreProgram P;
    P.Types = Types;
    P.Inputs = std::move(Inputs);
    P.Body = std::move(Body);
    P.OutputVar = Output.empty()
                      ? (P.Inputs.empty() ? Symbol() : P.Inputs.front().first)
                      : Output;
    P.OutputTy = UInt;
    return P;
  }

  static CoreExpr constant(uint64_t V, const Type *Ty) {
    return CoreExpr::atom(Atom::constant(V, Ty));
  }
  static CoreExpr var(Symbol Name, const Type *Ty) {
    return CoreExpr::atom(Atom::var(Name, Ty));
  }

  std::shared_ptr<TypeContext> Types;
  const Type *UInt, *Bool;
};

} // namespace

//===----------------------------------------------------------------------===//
// IR verification
//===----------------------------------------------------------------------===//

TEST_F(IrFixture, CleanProgramVerifies) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign("t", UInt, var("a", UInt)));
  Body.push_back(CoreStmt::assign("out", UInt, var("t", UInt)));
  Body.push_back(CoreStmt::unassign("t", UInt, var("a", UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}}, "out");
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).str();
}

TEST_F(IrFixture, ReadBeforeDefinitionIsCaught) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign("out", UInt, var("ghost", UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}}, "out");
  expectOnly(verifyProgram(P), "ir", "read before definition");
}

TEST_F(IrFixture, SelfReferentialDefinitionIsCaught) {
  // x <- e with x free in e has no reversible gate realization: the
  // emitter would place x as both target and control.
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign("a", UInt, var("a", UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "appears free in its own");
}

TEST_F(IrFixture, UnAssignOfDeadVariableIsCaught) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::unassign("t", UInt, constant(1, UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "un-definition of dead variable");
}

TEST_F(IrFixture, IfConditionModifiedInBodyIsCaught) {
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::assign("c", Bool, constant(1, Bool)));
  CoreStmtList Body;
  Body.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  CoreProgram P = makeProgram(std::move(Body), {{"c", Bool}});
  expectOnly(verifyProgram(P), "ir", "enclosing if-condition");
}

TEST_F(IrFixture, RedefinitionWidthChangeIsCaught) {
  // Re-definition XORs into the existing register; a different width
  // has no consistent embedding.
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign("t", Bool, constant(1, Bool)));
  Body.push_back(CoreStmt::assign("t", UInt, constant(1, UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "changes its register width");
}

TEST_F(IrFixture, NonBooleanIfConditionIsCaught) {
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::skip());
  CoreStmtList Body;
  Body.push_back(CoreStmt::ifStmt("a", std::move(IfBody)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "not a single bit");
}

TEST_F(IrFixture, OutputNotLiveIsCaught) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::skip());
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}}, "out");
  expectOnly(verifyProgram(P), "ir", "not live at program end");
}

TEST_F(IrFixture, AsymmetricWithBlockIsCaught) {
  // The do-body consumes the with-temporary without re-creating it, so
  // the with-block's reverse leg un-defines a dead variable.
  CoreStmtList WithBody;
  WithBody.push_back(CoreStmt::assign("t", UInt, constant(1, UInt)));
  CoreStmtList DoBody;
  DoBody.push_back(CoreStmt::unassign("t", UInt, constant(1, UInt)));
  CoreStmtList Body;
  Body.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "un-definition of dead variable");
}

TEST_F(IrFixture, SwapOfDifferentWidthsIsCaught) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign("b", Bool, constant(1, Bool)));
  Body.push_back(CoreStmt::swap("a", UInt, "b", Bool));
  Body.push_back(CoreStmt::unassign("b", Bool, constant(1, Bool)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  expectOnly(verifyProgram(P), "ir", "different widths");
}

TEST_F(IrFixture, WithNestingAtDepth100kVerifiesInConstantStack) {
  // The verifier shares the repo's explicit-worklist discipline: 100k
  // levels of with-nesting must verify without C++ recursion.
  constexpr unsigned Depth = 100000;
  CoreStmtList Inner;
  Inner.push_back(CoreStmt::assign("out", UInt, constant(1, UInt)));
  for (unsigned I = 0; I != Depth; ++I) {
    CoreStmtList WithBody;
    WithBody.push_back(CoreStmt::assign(Symbol("t" + std::to_string(I)),
                                        UInt, constant(1, UInt)));
    CoreStmtList DoBody = std::move(Inner);
    Inner = CoreStmtList();
    Inner.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  }
  CoreProgram P = makeProgram(std::move(Inner), {{"a", UInt}}, "out");
  VerifyReport R = verifyProgram(P);
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// Circuit verification
//===----------------------------------------------------------------------===//

TEST(CircuitVerify, WellFormedCircuitPasses) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  C.add(Gate(GateKind::H, 0, {}));
  C.add(Gate(GateKind::T, 1, {}));
  VerifyReport R = verifyCircuit(C);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(CircuitVerify, TargetRepeatingControlIsCaught) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  // Mutate the public field directly: Gate's constructor would assert.
  C.Gates[0].Target = 1;
  expectOnly(verifyCircuit(C), "circuit", "repeats a control");
}

TEST(CircuitVerify, OutOfRangeOperandIsCaught) {
  Circuit C;
  C.NumQubits = 2;
  C.addX(1, {0});
  C.Gates[0].Target = 7;
  expectOnly(verifyCircuit(C), "circuit", "out of range");
}

TEST(CircuitVerify, UnsortedControlListIsCaught) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1});
  C.Gates[0].Controls[0] = 2; // {2, 1}: breaks the sorted invariant.
  expectOnly(verifyCircuit(C), "circuit", "not sorted");
}

TEST(CircuitVerify, DuplicateControlIsCaught) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1});
  C.Gates[0].Controls[0] = 1;
  expectOnly(verifyCircuit(C), "circuit", "duplicate control");
}

TEST(CircuitVerify, NetlistLegAcceptsLiveNetlist) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(1, {0});
  C.addX(2, {1});
  Netlist N(C);
  EXPECT_TRUE(verifyNetlist(N).ok());
}

//===----------------------------------------------------------------------===//
// Affine-parity ancilla-cleanness analysis
//===----------------------------------------------------------------------===//

namespace {

/// Wire 0: input; wire 1: ancilla (must return clean); wire 2: output
/// (starts |0>, allowed to exit dirty).
CleanSpec inputAncillaOutputSpec() {
  CleanSpec Spec;
  Spec.NumQubits = 3;
  Spec.StartsZero = {false, true, true};
  Spec.RequireClean = {false, true, false};
  return Spec;
}

} // namespace

TEST(ParityAnalysis, ComputeUncomputeProvesAncillaClean) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(1, {0}); // a ^= x   (compute)
  C.addX(2, {1}); // y ^= a
  C.addX(1, {0}); // a ^= x   (uncompute)
  ParityResult R = analyzeParity(C, inputAncillaOutputSpec());
  EXPECT_TRUE(R.Report.ok()) << R.Report.str();
  EXPECT_TRUE(R.fullyAffine());
  EXPECT_EQ(R.WireExit[1], Cleanness::Clean);
  EXPECT_EQ(R.WireParity[1], "0");
  EXPECT_EQ(R.WireParity[2], "q0"); // the output carries the input parity
  EXPECT_EQ(R.WireParity[0], "q0"); // the input is preserved
}

TEST(ParityAnalysis, DroppedUncomputeIsCaughtByParityOnly) {
  // The PR's flagship mutation: delete the final uncompute CNOT. The
  // circuit is still structurally perfect — only the parity checker can
  // see the ancilla leak, and it must prove it for ALL inputs.
  Circuit C;
  C.NumQubits = 3;
  C.addX(1, {0});
  C.addX(2, {1});
  ParityResult R = analyzeParity(C, inputAncillaOutputSpec());
  expectOnly(R.Report, "parity", "exits dirty with parity q0");
  EXPECT_EQ(R.WireExit[1], Cleanness::Dirty);
  // The other two checkers see nothing wrong — exactly-one-checker.
  EXPECT_TRUE(verifyCircuit(C).ok());
}

TEST(ParityAnalysis, UncomputedConstantFlipIsClean) {
  CleanSpec Spec = CleanSpec::allUnknown(2);
  Spec.StartsZero = {true, true};
  Spec.RequireClean = {true, true};
  Circuit C;
  C.NumQubits = 2;
  C.addX(0, {}); // flip to |1>
  C.addX(0, {}); // and back
  C.addX(1, {}); // left at |1>: dirty on every input
  ParityResult R = analyzeParity(C, Spec);
  EXPECT_EQ(R.WireExit[0], Cleanness::Clean);
  EXPECT_EQ(R.WireExit[1], Cleanness::Dirty);
  EXPECT_EQ(R.WireParity[1], "1");
  expectOnly(R.Report, "parity", "wire 1");
}

TEST(ParityAnalysis, KnownOneControlIsElidedFromTheTransfer) {
  // X prepares wire 1 to a known |1>; the CCX on {0,1}->2 is then
  // effectively a CNOT from wire 0 — still affine, still exact.
  CleanSpec Spec;
  Spec.NumQubits = 3;
  Spec.StartsZero = {false, true, true};
  Spec.RequireClean = {false, false, false};
  Circuit C;
  C.NumQubits = 3;
  C.addX(1, {});     // wire 1 := 1
  C.addX(2, {0, 1}); // effectively CNOT(0 -> 2)
  ParityResult R = analyzeParity(C, Spec);
  EXPECT_TRUE(R.fullyAffine());
  EXPECT_EQ(R.WireParity[2], "q0");
}

TEST(ParityAnalysis, ZeroControlledGateIsStaticallyDead) {
  CleanSpec Spec;
  Spec.NumQubits = 3;
  Spec.StartsZero = {false, true, true};
  Spec.RequireClean = {false, true, true};
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {1}); // wire 1 is provably |0>: the gate never fires
  ParityResult R = analyzeParity(C, Spec);
  // Dead gates are lint information, never violations (ZeroBit-controlled
  // alloc writes are intentionally dead).
  EXPECT_TRUE(R.Report.ok()) << R.Report.str();
  ASSERT_EQ(R.DeadGates.size(), 1u);
  EXPECT_EQ(R.DeadGates[0], 0u);
  EXPECT_EQ(R.WireExit[2], Cleanness::Clean);
}

TEST(ParityAnalysis, HadamardLeavesTheFragmentSoundly) {
  // H breaks the affine model: the target must become Unknown (never
  // Clean — the sound direction), and no violation may be claimed.
  CleanSpec Spec;
  Spec.NumQubits = 2;
  Spec.StartsZero = {true, true};
  Spec.RequireClean = {true, true};
  Circuit C;
  C.NumQubits = 2;
  C.add(Gate(GateKind::H, 0, {}));
  ParityResult R = analyzeParity(C, Spec);
  EXPECT_TRUE(R.Report.ok()) << R.Report.str();
  EXPECT_EQ(R.WireExit[0], Cleanness::Unknown);
  EXPECT_EQ(R.WireParity[0], "?");
  EXPECT_EQ(R.NonAffineGates, 1u);
  EXPECT_EQ(R.WireExit[1], Cleanness::Clean);
}

TEST(ParityAnalysis, TrueToffoliIsTopButTaintsOnlyItsTarget) {
  CleanSpec Spec;
  Spec.NumQubits = 4;
  Spec.StartsZero = {false, false, true, true};
  Spec.RequireClean = {false, false, true, true};
  Circuit C;
  C.NumQubits = 4;
  C.addX(2, {0, 1}); // two statically-unresolved controls: an AND
  ParityResult R = analyzeParity(C, Spec);
  EXPECT_TRUE(R.Report.ok()) << R.Report.str();
  EXPECT_EQ(R.NonAffineGates, 1u);
  EXPECT_EQ(R.WireExit[2], Cleanness::Unknown);
  EXPECT_EQ(R.WireExit[3], Cleanness::Clean); // untouched ancilla
}

TEST(ParityAnalysis, PhaseGatesAreDiagonalNoOps) {
  CleanSpec Spec;
  Spec.NumQubits = 2;
  Spec.StartsZero = {false, true};
  Spec.RequireClean = {false, true};
  Circuit C;
  C.NumQubits = 2;
  C.add(Gate(GateKind::T, 0, {}));
  C.add(Gate(GateKind::Z, 0, {}));
  C.addX(1, {0});
  C.add(Gate(GateKind::S, 1, {}));
  C.addX(1, {0});
  ParityResult R = analyzeParity(C, Spec);
  EXPECT_TRUE(R.Report.ok()) << R.Report.str();
  EXPECT_TRUE(R.fullyAffine());
  EXPECT_EQ(R.WireExit[1], Cleanness::Clean);
}

//===----------------------------------------------------------------------===//
// Pipeline integration: the paper benchmarks under full verification,
// and the exactly-one-checker mutation matrix on a compiled circuit.
//===----------------------------------------------------------------------===//

TEST(VerifyPipeline, AllPaperBenchmarksPassVerifyEach) {
  // The PR-6 acceptance bar: every stage artifact of all 11 paper
  // benchmarks upholds every invariant — IR scoping after lower and
  // spire-opt, circuit/netlist well-formedness and ancilla cleanness
  // after circuit-compile — with zero violations.
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    driver::PipelineOptions Opts;
    Opts.BuildCircuit = true;
    Opts.AnalyzeCost = false;
    Opts.VerifyEach = true;
    driver::CompilationResult R = benchmarks::runPipeline(B, 2, Opts);
    EXPECT_TRUE(R.succeeded())
        << B.Name << " failed at "
        << (R.Failed ? driver::stageName(*R.Failed) : "?") << ":\n"
        << R.Diags.str();
  }
}

TEST(VerifyPipeline, BenchmarkAncillaObligationsAreProvedOrUnknown) {
  // On every benchmark's compiled circuit, each ancilla obligation is
  // either proved clean or soundly Unknown (past the affine fragment) —
  // never Dirty. Fully affine circuits must prove every obligation.
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    driver::PipelineOptions Opts;
    Opts.BuildCircuit = true;
    Opts.AnalyzeCost = false;
    driver::CompilationResult R = benchmarks::runPipelineOrDie(B, 2, Opts);
    const Circuit &C = R.Compiled->Circ;
    CleanSpec Spec = CleanSpec::forLayout(R.Compiled->Layout, C.NumQubits);
    ParityResult PR = analyzeParity(C, Spec);
    EXPECT_TRUE(PR.Report.ok()) << B.Name << ":\n" << PR.Report.str();
    size_t Obligations = 0, Proved = 0;
    for (unsigned Q = 0; Q != C.NumQubits; ++Q) {
      if (!Spec.RequireClean[Q])
        continue;
      ++Obligations;
      Proved += PR.WireExit[Q] == Cleanness::Clean;
    }
    if (PR.fullyAffine()) {
      EXPECT_EQ(Proved, Obligations) << B.Name;
    }
  }
}

TEST(VerifyPipeline, MutationMatrixEachBugCaughtByExactlyOneChecker) {
  // Compile one real benchmark, then inject one bug per checker and
  // assert the blame lands exactly where it should.
  const benchmarks::BenchmarkProgram &B = benchmarks::lengthSimplified();
  driver::PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.AnalyzeCost = false;
  driver::CompilationResult R = benchmarks::runPipelineOrDie(B, 2, Opts);

  // Baseline: the artifacts are clean.
  ASSERT_TRUE(verifyProgram(*R.Optimized, Opts.Target).ok());
  ASSERT_TRUE(verifyCircuit(R.Compiled->Circ).ok());

  // "ir": make a variable appear free in its own re-definition — the
  // one shape of XOR-assignment that has no reversible realization.
  {
    CoreProgram Mutant = R.Optimized->clone();
    ASSERT_FALSE(Mutant.Inputs.empty());
    auto [Victim, VictimTy] = Mutant.Inputs.front();
    Mutant.Body.insert(
        Mutant.Body.begin(),
        CoreStmt::assign(Victim, VictimTy,
                         CoreExpr::atom(Atom::var(Victim, VictimTy))));
    VerifyReport V = verifyProgram(Mutant, Opts.Target);
    ASSERT_FALSE(V.ok());
    EXPECT_TRUE(V.has("ir"));
    EXPECT_FALSE(V.has("circuit"));
    EXPECT_FALSE(V.has("parity"));
  }

  // "circuit": make one gate target collide with its control.
  {
    Circuit Mutant = R.Compiled->Circ;
    for (Gate &G : Mutant.Gates)
      if (!G.Controls.empty()) {
        G.Target = G.Controls[0];
        break;
      }
    VerifyReport V = verifyCircuit(Mutant);
    ASSERT_FALSE(V.ok());
    EXPECT_TRUE(V.has("circuit"));
    EXPECT_FALSE(V.has("ir"));
    EXPECT_FALSE(V.has("parity"));
    // The parity checker is not fooled into blaming itself: structural
    // breakage is pre-filtered at the pipeline boundary.
  }

  // "parity": leak an ancilla by appending one X onto a wire the
  // baseline analysis proves clean — structurally flawless, but now
  // dirty (|1>) on EVERY input.
  {
    Circuit Mutant = R.Compiled->Circ;
    CleanSpec Spec =
        CleanSpec::forLayout(R.Compiled->Layout, Mutant.NumQubits);
    ParityResult Baseline = analyzeParity(Mutant, Spec);
    ASSERT_TRUE(Baseline.Report.ok()) << Baseline.Report.str();
    Qubit Ancilla = Mutant.NumQubits;
    for (Qubit Q = 0; Q != Mutant.NumQubits; ++Q)
      if (Spec.RequireClean[Q] &&
          Baseline.WireExit[Q] == Cleanness::Clean) {
        Ancilla = Q;
        break;
      }
    ASSERT_NE(Ancilla, Mutant.NumQubits) << "no provably-clean ancilla";
    Mutant.addX(Ancilla, {});
    EXPECT_TRUE(verifyCircuit(Mutant).ok()) << "mutation must stay "
                                               "structurally well-formed";
    ParityResult PR = analyzeParity(Mutant, Spec);
    expectOnly(PR.Report, "parity", "exits dirty");
  }
}

//===----------------------------------------------------------------------===//
// Tests for .qc emission (Mosca 2016, the Tower compiler's output format
// and Feynman's input format): header lines, per-gate syntax, layout
// markers, and end-to-end emission of a compiled benchmark.
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "circuit/QcWriter.h"
#include "decompose/Decompose.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace spire;
using namespace spire::circuit;

namespace {

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::stringstream Stream(Text);
  std::string Line;
  while (std::getline(Stream, Line))
    Out.push_back(Line);
  return Out;
}

/// First line starting with the given prefix, or "".
std::string lineWith(const std::string &Text, const std::string &Prefix) {
  for (const std::string &L : lines(Text))
    if (L.rfind(Prefix, 0) == 0)
      return L;
  return "";
}

} // namespace

TEST(QcWriter, HeaderListsAllQubits) {
  Circuit C;
  C.NumQubits = 3;
  EXPECT_EQ(lineWith(writeQc(C), ".v"), ".v q0 q1 q2");
}

TEST(QcWriter, BeginEndBracketTheGateList) {
  Circuit C;
  C.NumQubits = 1;
  C.addX(0);
  std::vector<std::string> L = lines(writeQc(C));
  ASSERT_GE(L.size(), 4u);
  EXPECT_EQ(L[L.size() - 1], "END");
  bool SawBegin = false;
  for (const std::string &Line : L)
    SawBegin |= Line == "BEGIN";
  EXPECT_TRUE(SawBegin);
}

TEST(QcWriter, MCXUsesTofWithTargetLast) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1, 2});
  EXPECT_EQ(lineWith(writeQc(C), "tof"), "tof q0 q1 q2 q3");
}

TEST(QcWriter, PlainNotIsSingleOperandTof) {
  Circuit C;
  C.NumQubits = 2;
  C.addX(1);
  EXPECT_EQ(lineWith(writeQc(C), "tof"), "tof q1");
}

TEST(QcWriter, PhaseAndHadamardSpellings) {
  Circuit C;
  C.NumQubits = 2;
  C.Gates.push_back(Gate(GateKind::T, 0));
  C.Gates.push_back(Gate(GateKind::Tdg, 0));
  C.Gates.push_back(Gate(GateKind::S, 1));
  C.Gates.push_back(Gate(GateKind::Sdg, 1));
  C.Gates.push_back(Gate(GateKind::Z, 1));
  C.addH(0);
  C.addH(1, {0});
  std::string Text = writeQc(C);
  EXPECT_NE(Text.find("T q0"), std::string::npos);
  EXPECT_NE(Text.find("T* q0"), std::string::npos);
  EXPECT_NE(Text.find("S q1"), std::string::npos);
  EXPECT_NE(Text.find("S* q1"), std::string::npos);
  EXPECT_NE(Text.find("Z q1"), std::string::npos);
  EXPECT_NE(Text.find("H q0"), std::string::npos);
  EXPECT_NE(Text.find("CH q0 q1"), std::string::npos);
}

TEST(QcWriter, LayoutMarksInputsAndOutput) {
  Circuit C;
  C.NumQubits = 6;
  CircuitLayout Layout;
  Layout.Inputs["a"] = {0, 2};
  Layout.Output = {4, 2};
  std::string Text = writeQc(C, &Layout);
  EXPECT_EQ(lineWith(Text, ".i"), ".i q0 q1");
  EXPECT_EQ(lineWith(Text, ".o"), ".o q4 q5");
}

TEST(QcWriter, NoLayoutMeansNoMarkers) {
  Circuit C;
  C.NumQubits = 2;
  std::string Text = writeQc(C);
  EXPECT_EQ(lineWith(Text, ".i"), "");
  EXPECT_EQ(lineWith(Text, ".o"), "");
}

TEST(QcWriter, EmissionIsDeterministic) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 3);
  TargetConfig Config;
  CompileResult R1 = compileToCircuit(P, Config);
  CompileResult R2 = compileToCircuit(P, Config);
  EXPECT_EQ(writeQc(R1.Circ, &R1.Layout), writeQc(R2.Circ, &R2.Layout));
}

TEST(QcWriter, GateCountMatchesEmittedLines) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 2);
  TargetConfig Config;
  CompileResult R = compileToCircuit(P, Config);
  Circuit CT = decompose::toCliffordT(R.Circ);
  std::vector<std::string> L = lines(writeQc(CT));
  // Lines between BEGIN and END correspond one-to-one to gates.
  size_t Begin = 0, End = 0;
  for (size_t I = 0; I != L.size(); ++I) {
    if (L[I] == "BEGIN")
      Begin = I;
    if (L[I] == "END")
      End = I;
  }
  EXPECT_EQ(End - Begin - 1, CT.Gates.size());
}

//===----------------------------------------------------------------------===//
// .qc reading (QcReader): round trips with the writer, external-dialect
// acceptance, and rejection of malformed input.
//===----------------------------------------------------------------------===//

#include "circuit/QcReader.h"

namespace {

std::optional<Circuit> parseQc(const std::string &Text,
                               std::string *ErrorsOut = nullptr) {
  support::DiagnosticEngine Diags;
  std::optional<Circuit> C = readQc(Text, Diags);
  if (ErrorsOut)
    *ErrorsOut = Diags.str();
  return C;
}

} // namespace

TEST(QcReader, RoundTripsWriterOutput) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1});
  C.addX(0);
  C.addH(1);
  C.addH(2, {0});
  C.Gates.push_back(Gate(GateKind::T, 2));
  C.Gates.push_back(Gate(GateKind::Tdg, 3));
  C.Gates.push_back(Gate(GateKind::S, 0));
  C.Gates.push_back(Gate(GateKind::Sdg, 1));
  C.Gates.push_back(Gate(GateKind::Z, 2));

  std::optional<Circuit> Back = parseQc(writeQc(C));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->NumQubits, C.NumQubits);
  ASSERT_EQ(Back->Gates.size(), C.Gates.size());
  for (size_t I = 0; I != C.Gates.size(); ++I)
    EXPECT_TRUE(Back->Gates[I] == C.Gates[I]) << "gate " << I;
}

TEST(QcReader, RoundTripsCompiledBenchmark) {
  ir::CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 3);
  TargetConfig Config;
  CompileResult R = compileToCircuit(P, Config);
  std::optional<Circuit> Back = parseQc(writeQc(R.Circ, &R.Layout));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->NumQubits, R.Circ.NumQubits);
  ASSERT_EQ(Back->Gates.size(), R.Circ.Gates.size());
  EXPECT_EQ(countGates(*Back).TComplexity,
            countGates(R.Circ).TComplexity);
}

TEST(QcReader, AcceptsArbitraryQubitNames) {
  std::optional<Circuit> C = parseQc(".v alice bob\nBEGIN\n"
                                     "tof alice bob\nEND\n");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->NumQubits, 2u);
  ASSERT_EQ(C->Gates.size(), 1u);
  EXPECT_TRUE(C->Gates[0].isCNOT());
}

TEST(QcReader, RejectsUnknownQubit) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v q0\nBEGIN\ntof q9\nEND\n", &Errors));
  EXPECT_NE(Errors.find("unknown qubit"), std::string::npos);
}

TEST(QcReader, RejectsUnknownGate) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v q0\nBEGIN\nfrobnicate q0\nEND\n", &Errors));
  EXPECT_NE(Errors.find("unknown gate"), std::string::npos);
}

TEST(QcReader, RejectsGateOutsideBody) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v q0\ntof q0\nBEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("outside"), std::string::npos);
}

TEST(QcReader, RejectsMissingEnd) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v q0\nBEGIN\ntof q0\n", &Errors));
  EXPECT_NE(Errors.find("missing END"), std::string::npos);
}

TEST(QcReader, RejectsDuplicateQubitDeclaration) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v q0 q0\nBEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("duplicate qubit"), std::string::npos);
}

TEST(QcReader, DedupesDuplicateControls) {
  // A doubled control is the same single control: `tof a a c` reads as
  // the CNOT `tof a c` (Gate::normalize dedupes).
  std::optional<Circuit> C = parseQc(".v a b c\nBEGIN\ntof a a c\nEND\n");
  ASSERT_TRUE(C.has_value());
  ASSERT_EQ(C->Gates.size(), 1u);
  EXPECT_EQ(C->Gates[0].Target, 2u);
  EXPECT_EQ(C->Gates[0].Controls, (std::vector<Qubit>{0}));
}

TEST(QcReader, RejectsTargetAsControl) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a b\nBEGIN\ntof a a\nEND\n", &Errors));
  EXPECT_NE(Errors.find("repeats a control"), std::string::npos);
}

TEST(QcReader, RejectsPhaseGateWithControls) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a b\nBEGIN\nT a b\nEND\n", &Errors));
  EXPECT_NE(Errors.find("exactly one qubit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// .qc reader error paths: every malformed construct must produce a
// diagnostic through the engine, never a crash or a silently wrong
// circuit (the reader is the trust boundary for external circuit text).
//===----------------------------------------------------------------------===//

TEST(QcReaderErrors, RejectsUnknownQubitInInputMarker) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a b\n.i a ghost\nBEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("unknown qubit 'ghost'"), std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsUnknownQubitInOutputMarker) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a b\n.o ghost\nBEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("unknown qubit 'ghost'"), std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsInputMarkerBeforeDeclaration) {
  // Names in .i must already be declared; before .v nothing is.
  std::string Errors;
  EXPECT_FALSE(parseQc(".i a\n.v a\nBEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("unknown qubit 'a'"), std::string::npos) << Errors;
}

TEST(QcReaderErrors, RejectsInputMarkerInsideBody) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a\nBEGIN\n.i a\nEND\n", &Errors));
  EXPECT_NE(Errors.find("must precede the BEGIN/END block"),
            std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsDeclarationAfterEnd) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a\nBEGIN\nEND\n.v b\n", &Errors));
  EXPECT_NE(Errors.find("must precede the BEGIN/END block"),
            std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsGateWithNoOperands) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a\nBEGIN\ntof\nEND\n", &Errors));
  EXPECT_NE(Errors.find("needs a target qubit"), std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsBeginWithoutDeclaration) {
  std::string Errors;
  EXPECT_FALSE(parseQc("BEGIN\nEND\n", &Errors));
  EXPECT_NE(Errors.find("BEGIN before any .v"), std::string::npos)
      << Errors;
}

TEST(QcReaderErrors, RejectsEmptyInput) {
  std::string Errors;
  EXPECT_FALSE(parseQc("", &Errors));
  EXPECT_NE(Errors.find("missing .v"), std::string::npos) << Errors;
}

TEST(QcReaderErrors, DiagnosticsCarryLineNumbers) {
  std::string Errors;
  EXPECT_FALSE(parseQc(".v a\nBEGIN\nfrobnicate a\nEND\n", &Errors));
  // The unknown gate sits on line 3.
  EXPECT_NE(Errors.find("3:"), std::string::npos) << Errors;
}

TEST(QcReaderErrors, ControlledZRoundTrips) {
  // Multi-operand Z is controlled-Z in both directions.
  std::optional<Circuit> C = parseQc(".v a b c\nBEGIN\nZ a b c\nEND\n");
  ASSERT_TRUE(C.has_value());
  ASSERT_EQ(C->Gates.size(), 1u);
  EXPECT_EQ(C->Gates[0].Kind, GateKind::Z);
  EXPECT_EQ(C->Gates[0].numControls(), 2u);
  // The writer renames wires canonically but keeps the gate shape.
  EXPECT_EQ(writeQc(*C), ".v q0 q1 q2\n\nBEGIN\nZ q0 q1 q2\nEND\n");
}

TEST(QcWriter, ControlledPhaseOperandsAreNeverDropped) {
  // The dialect has no controlled-S/T spelling; the writer must emit
  // the operands anyway so re-import rejects the text instead of
  // silently producing an uncontrolled gate.
  Circuit C;
  C.NumQubits = 2;
  C.Gates.push_back(Gate(GateKind::S, 1, {0}));
  std::string Text = writeQc(C);
  EXPECT_NE(Text.find("S q0 q1"), std::string::npos) << Text;
  std::string Errors;
  EXPECT_FALSE(parseQc(Text, &Errors));
  EXPECT_NE(Errors.find("exactly one qubit"), std::string::npos) << Errors;
}

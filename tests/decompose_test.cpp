//===----------------------------------------------------------------------===//
// Tests for MCX -> Toffoli -> Clifford+T decomposition (Figs. 5 and 6):
// unitary equivalence by simulation, gate-count identities, and the
// Section 8.1 counting rule.
//===----------------------------------------------------------------------===//

#include "circuit/Gate.h"
#include "decompose/Decompose.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <random>

using namespace spire;
using namespace spire::circuit;

namespace {

/// Checks that C2 acts like C1 on all basis states of C1's qubits (C2 may
/// use extra ancillas, which must start and end at |0>).
void expectSameAction(const Circuit &C1, const Circuit &C2,
                      unsigned DataQubits) {
  ASSERT_LE(DataQubits, 12u);
  for (uint64_t Input = 0; Input != (uint64_t(1) << DataQubits); ++Input) {
    sim::BitString In(C2.NumQubits);
    for (unsigned Q = 0; Q != DataQubits; ++Q)
      In.set(Q, (Input >> Q) & 1);

    sim::SparseState S1 = sim::runState(C1, In);
    sim::SparseState S2 = sim::runState(C2, In);
    EXPECT_TRUE(sim::statesEquivalent(S1, S2)) << "input " << Input;
  }
}

} // namespace

TEST(Decompose, MCX3ToToffoli) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1, 2});
  Circuit T = decompose::toToffoli(C);
  // 2(c-2)+1 = 3 Toffolis (Fig. 5), one ancilla.
  EXPECT_EQ(T.Gates.size(), 3u);
  EXPECT_EQ(T.NumQubits, 5u);
  for (const Gate &G : T.Gates)
    EXPECT_EQ(G.numControls(), 2u);
  expectSameAction(C, T, 4);
}

TEST(Decompose, MCX5ToToffoli) {
  Circuit C;
  C.NumQubits = 6;
  C.addX(5, {0, 1, 2, 3, 4});
  Circuit T = decompose::toToffoli(C);
  EXPECT_EQ(T.Gates.size(), 2u * (5 - 2) + 1); // 7 Toffolis
  expectSameAction(C, T, 6);
}

TEST(Decompose, ToffoliCountMatchesSection81) {
  for (unsigned Controls = 2; Controls <= 6; ++Controls) {
    Circuit C;
    C.NumQubits = Controls + 1;
    std::vector<Qubit> Ctrl;
    for (unsigned I = 0; I != Controls; ++I)
      Ctrl.push_back(I);
    C.addX(Controls, Ctrl);
    Circuit T = decompose::toToffoli(C);
    GateCounts Counts = countGates(T);
    EXPECT_EQ(Counts.Toffoli, 2 * (static_cast<int64_t>(Controls) - 2) + 1);
    EXPECT_EQ(Counts.TComplexity, tCostOfMCX(Controls));
  }
}

TEST(Decompose, SevenTToffoliIsExact) {
  // The Fig. 6 Clifford+T Toffoli must implement Toffoli exactly,
  // including on superposition inputs (prepared by leading H gates).
  Circuit Toffoli;
  Toffoli.NumQubits = 3;
  Toffoli.addX(2, {0, 1});
  Circuit CT = decompose::toCliffordT(Toffoli);
  EXPECT_EQ(countGates(CT).T, 7);
  expectSameAction(Toffoli, CT, 3);

  // Superposition check: H on all inputs before both circuits.
  Circuit PrepToffoli;
  PrepToffoli.NumQubits = 3;
  PrepToffoli.addH(0);
  PrepToffoli.addH(1);
  PrepToffoli.addX(2, {0, 1});
  Circuit PrepCT;
  PrepCT.NumQubits = 3;
  PrepCT.addH(0);
  PrepCT.addH(1);
  for (const Gate &G : CT.Gates)
    PrepCT.Gates.push_back(G);
  sim::BitString Zero(3);
  EXPECT_TRUE(sim::statesEquivalent(sim::runState(PrepToffoli, Zero),
                                    sim::runState(PrepCT, Zero)));
}

TEST(Decompose, CliffordTKeepsCNOTAndNOT) {
  Circuit C;
  C.NumQubits = 2;
  C.addX(0);
  C.addX(1, {0});
  Circuit CT = decompose::toCliffordT(C);
  EXPECT_EQ(CT.Gates.size(), 2u);
  EXPECT_EQ(countGates(CT).T, 0);
}

TEST(Decompose, ControlledHadamardLoweringCosts) {
  // H with 3 controls: AND-ladder (2 Toffolis each way) + CH.
  Circuit C;
  C.NumQubits = 4;
  C.addH(3, {0, 1, 2});
  Circuit T = decompose::toToffoli(C);
  GateCounts Counts = countGates(T);
  EXPECT_EQ(Counts.Toffoli, 4);
  EXPECT_EQ(Counts.H, 1);
  EXPECT_EQ(Counts.TComplexity, tCostOfControlledH(3));
  // The lowered CH has exactly one control.
  for (const Gate &G : T.Gates)
    if (G.Kind == GateKind::H) {
      EXPECT_EQ(G.numControls(), 1u);
    }
}

TEST(Decompose, MultiControlledHActsLikeCH) {
  Circuit C;
  C.NumQubits = 3;
  C.addH(2, {0, 1});
  Circuit T = decompose::toToffoli(C);
  expectSameAction(C, T, 3);
}

TEST(Decompose, RandomMixedCircuitEquivalence) {
  std::mt19937_64 Rng(11);
  for (int Trial = 0; Trial != 10; ++Trial) {
    Circuit C;
    C.NumQubits = 5;
    for (int G = 0; G != 12; ++G) {
      unsigned NumControls = Rng() % 4;
      std::vector<Qubit> Qubits = {0, 1, 2, 3, 4};
      std::shuffle(Qubits.begin(), Qubits.end(), Rng);
      std::vector<Qubit> Controls(Qubits.begin(),
                                  Qubits.begin() + NumControls);
      C.addX(Qubits[4], Controls);
    }
    Circuit T = decompose::toToffoli(C);
    Circuit CT = decompose::toCliffordT(C);
    EXPECT_EQ(countGates(C).TComplexity, countGates(T).TComplexity);
    EXPECT_EQ(countGates(C).TComplexity, countGates(CT).T);
    expectSameAction(C, T, 5);
  }
}

TEST(Decompose, TComplexityInvariantAcrossLevels) {
  // A bigger structured example: several overlapping MCX gates.
  Circuit C;
  C.NumQubits = 6;
  C.addX(5, {0, 1, 2, 3});
  C.addX(4, {0, 1});
  C.addX(3, {0, 1, 2});
  C.addX(2, {1});
  int64_t TAtMCX = countGates(C).TComplexity;
  EXPECT_EQ(TAtMCX, tCostOfMCX(4) + tCostOfMCX(2) + tCostOfMCX(3));
  EXPECT_EQ(countGates(decompose::toToffoli(C)).TComplexity, TAtMCX);
  Circuit CT = decompose::toCliffordT(C);
  EXPECT_EQ(countGates(CT).T, TAtMCX);
  EXPECT_EQ(countGates(CT).TComplexity, TAtMCX);
}

//===----------------------------------------------------------------------===//
// Ancilla-free decomposition (paper Section 9's Barenco Section 7
// alternative): correctness on every basis state — including arbitrary
// junk on the borrowed wires — plus the qubit/T trade-off itself.
//===----------------------------------------------------------------------===//

TEST(NoAncilla, MCX3PreservesAction) {
  Circuit C;
  C.NumQubits = 5; // One idle wire (qubit 4) to borrow.
  C.addX(3, {0, 1, 2});
  Circuit D = decompose::toToffoliNoAncilla(C);
  EXPECT_EQ(D.NumQubits, C.NumQubits);
  for (const Gate &G : D.Gates)
    EXPECT_LE(G.numControls(), 2u);
  expectSameAction(C, D, 5); // Enumerates junk values on the idle wire.
}

TEST(NoAncilla, MCX5PreservesAction) {
  Circuit C;
  C.NumQubits = 7;
  C.addX(5, {0, 1, 2, 3, 4});
  Circuit D = decompose::toToffoliNoAncilla(C);
  EXPECT_EQ(D.NumQubits, C.NumQubits);
  expectSameAction(C, D, 7);
}

TEST(NoAncilla, FullSupportGateAddsOneSpareWire) {
  // A gate touching every wire has nothing to borrow; exactly one wire
  // is added, and it is returned to |0>.
  Circuit C;
  C.NumQubits = 4;
  C.addX(3, {0, 1, 2});
  Circuit D = decompose::toToffoliNoAncilla(C);
  EXPECT_EQ(D.NumQubits, C.NumQubits + 1);
  expectSameAction(C, D, 4);
}

TEST(NoAncilla, ControlledHPreservesAction) {
  Circuit C;
  C.NumQubits = 5;
  C.addH(3, {0, 1, 2});
  Circuit D = decompose::toToffoliNoAncilla(C);
  for (const Gate &G : D.Gates)
    if (G.Kind == GateKind::H) {
      EXPECT_LE(G.numControls(), 1u);
    }
  expectSameAction(C, D, 5);
}

TEST(NoAncilla, UsesMoreTButNoMoreQubits) {
  // The Section 9 trade-off: versus the clean-ancilla ladder of Fig. 5,
  // the dirty-borrow expansion costs more Toffolis but zero extra wires.
  for (unsigned Controls = 3; Controls <= 8; ++Controls) {
    Circuit C;
    C.NumQubits = Controls + 2;
    std::vector<Qubit> Ctrl;
    for (unsigned I = 0; I != Controls; ++I)
      Ctrl.push_back(I);
    C.addX(Controls, Ctrl);

    Circuit Clean = decompose::toToffoli(C);
    Circuit Dirty = decompose::toToffoliNoAncilla(C);
    EXPECT_GT(Dirty.NumQubits, 0u);
    EXPECT_EQ(Dirty.NumQubits, C.NumQubits);
    EXPECT_EQ(Clean.NumQubits, C.NumQubits + Controls - 2);
    EXPECT_GT(countGates(Dirty).TComplexity,
              countGates(Clean).TComplexity)
        << Controls << " controls";
  }
}

TEST(NoAncilla, RandomMixedCircuitEquivalence) {
  std::mt19937_64 Rng(23);
  for (int Trial = 0; Trial != 10; ++Trial) {
    Circuit C;
    C.NumQubits = 6;
    for (int G = 0; G != 8; ++G) {
      unsigned NumControls = Rng() % 5;
      std::vector<Qubit> Qubits = {0, 1, 2, 3, 4, 5};
      std::shuffle(Qubits.begin(), Qubits.end(), Rng);
      std::vector<Qubit> Controls(Qubits.begin(),
                                  Qubits.begin() + NumControls);
      C.addX(Qubits[5], Controls);
    }
    Circuit D = decompose::toToffoliNoAncilla(C);
    expectSameAction(C, D, 6);
    // Further lowering to Clifford+T preserves the action as well.
    expectSameAction(C, decompose::toCliffordT(D), 6);
  }
}

//===----------------------------------------------------------------------===//
// T-depth metric (Section 9: "other metrics such as T-depth").
//===----------------------------------------------------------------------===//

TEST(TDepth, EmptyAndCliffordOnlyAreZero) {
  Circuit C;
  C.NumQubits = 3;
  EXPECT_EQ(tDepth(C), 0);
  C.addX(0);
  C.addX(1, {0});
  C.addH(2);
  C.Gates.push_back(Gate(GateKind::S, 0));
  EXPECT_EQ(tDepth(C), 0);
}

TEST(TDepth, ParallelTGatesShareAStage) {
  Circuit C;
  C.NumQubits = 4;
  for (Qubit Q = 0; Q != 4; ++Q)
    C.Gates.push_back(Gate(GateKind::T, Q));
  EXPECT_EQ(tDepth(C), 1);
}

TEST(TDepth, SequentialTGatesStack) {
  Circuit C;
  C.NumQubits = 1;
  C.Gates.push_back(Gate(GateKind::T, 0));
  C.Gates.push_back(Gate(GateKind::Tdg, 0));
  C.Gates.push_back(Gate(GateKind::T, 0));
  EXPECT_EQ(tDepth(C), 3);
}

TEST(TDepth, CliffordSynchronizesQubits) {
  // T(q0); CNOT(q0,q1); T(q1) cannot parallelize: depth 2.
  Circuit C;
  C.NumQubits = 2;
  C.Gates.push_back(Gate(GateKind::T, 0));
  C.addX(1, {0});
  C.Gates.push_back(Gate(GateKind::T, 1));
  EXPECT_EQ(tDepth(C), 2);
}

TEST(TDepth, StandardToffoliDecompositionHasDepthAtMostFive) {
  // The Fig. 6 network is known to have T-depth <= 5 in this gate
  // ordering (Amy et al. 2014 reach 3 with reordering; we measure the
  // literal sequence).
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  Circuit CT = decompose::toCliffordT(C);
  EXPECT_GE(tDepth(CT), 1);
  EXPECT_LE(tDepth(CT), 7);
  EXPECT_EQ(countGates(CT).T, 7);
}

//===----------------------------------------------------------------------===//
// Round-trip verification for the interchange subsystem over the paper's
// benchmark suite (the acceptance gate of the subsystem): every compiled
// benchmark circuit, emitted as OpenQASM 3 and re-imported, must be
// behaviorally equivalent to the original on >= 32 sampled basis states
// (sim::runBasis — compiled Tower programs are classical reversible
// permutations), and the .qc <-> qasm3 cross-format trip must be the
// structural identity. Legalization onto the cx basis must leave no
// multi-controlled gate while preserving behavior and T-complexity.
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "benchmarks/Harness.h"
#include "driver/Pipeline.h"
#include "interchange/Interchange.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::circuit;
using namespace spire::interchange;

namespace {

/// Compiles one benchmark to its MCX-level circuit at a small size.
Circuit compileBenchmark(const benchmarks::BenchmarkProgram &B,
                         int64_t Size) {
  driver::PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.AnalyzeCost = false;
  driver::CompilationResult R = benchmarks::runPipelineOrDie(B, Size, Opts);
  return R.Compiled->Circ;
}

} // namespace

TEST(InterchangeRoundTrip, EveryBenchmarkSurvivesQasmRoundTrip) {
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    Circuit C = compileBenchmark(B, B.SizeIndexed ? 2 : 0);
    support::DiagnosticEngine Diags;
    std::optional<Circuit> Back =
        readCircuit(writeCircuit(C, Format::Qasm3), Format::Qasm3, Diags);
    ASSERT_TRUE(Back.has_value()) << Diags.str();
    // Structural identity is the strongest form...
    ASSERT_EQ(Back->Gates.size(), C.Gates.size());
    EXPECT_EQ(Back->NumQubits, C.NumQubits);
    // ...and behavioral equivalence on >= 32 sampled basis states is the
    // acceptance criterion.
    EquivalenceReport R = checkEquivalence(C, *Back, 32);
    EXPECT_TRUE(R.Equivalent) << R.Detail;
    EXPECT_GE(R.SamplesRun, 32u);
  }
}

TEST(InterchangeRoundTrip, CrossFormatTripIsStructuralIdentity) {
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    Circuit C = compileBenchmark(B, B.SizeIndexed ? 2 : 0);
    support::DiagnosticEngine Diags;
    // .qc -> circuit -> qasm3 -> circuit -> .qc must reproduce the text.
    std::string Qc = writeCircuit(C, Format::Qc);
    std::optional<Circuit> FromQc = readCircuit(Qc, Format::Qc, Diags);
    ASSERT_TRUE(FromQc.has_value()) << Diags.str();
    std::optional<Circuit> FromQasm = readCircuit(
        writeCircuit(*FromQc, Format::Qasm3), Format::Qasm3, Diags);
    ASSERT_TRUE(FromQasm.has_value()) << Diags.str();
    EXPECT_EQ(writeCircuit(*FromQasm, Format::Qc), Qc);
  }
}

TEST(InterchangeRoundTrip, QasmEmissionIsAFixpoint) {
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    Circuit C = compileBenchmark(B, B.SizeIndexed ? 2 : 0);
    support::DiagnosticEngine Diags;
    std::string Once = writeCircuit(C, Format::Qasm3);
    std::optional<Circuit> Back = readCircuit(Once, Format::Qasm3, Diags);
    ASSERT_TRUE(Back.has_value()) << Diags.str();
    EXPECT_EQ(writeCircuit(*Back, Format::Qasm3), Once);
  }
}

TEST(InterchangeRoundTrip, CxLegalizationRemovesAllMCX) {
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    Circuit C = compileBenchmark(B, B.SizeIndexed ? 2 : 0);
    support::DiagnosticEngine Diags;
    std::optional<Circuit> Legal = legalize(C, Basis::CX, Diags);
    ASSERT_TRUE(Legal.has_value()) << Diags.str();
    for (const Gate &G : Legal->Gates) {
      if (G.Kind == GateKind::X) {
        EXPECT_LE(G.numControls(), 1u);
      }
    }
    EXPECT_TRUE(conformsTo(*Legal, Basis::CX));
    EXPECT_EQ(countGates(*Legal).TComplexity, countGates(C).TComplexity);
  }
}

TEST(InterchangeRoundTrip, ToffoliLegalizationIsBehaviorPreserving) {
  // The Toffoli basis keeps circuits X-only (compiled Tower programs
  // have no H), so behavioral equivalence of the legalized circuit is
  // checkable at full scale through runBasis, ancillas tolerated.
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    Circuit C = compileBenchmark(B, B.SizeIndexed ? 2 : 0);
    support::DiagnosticEngine Diags;
    std::optional<Circuit> Legal = legalize(C, Basis::Toffoli, Diags);
    ASSERT_TRUE(Legal.has_value()) << Diags.str();
    EquivalenceReport R = checkEquivalence(C, *Legal, 32);
    EXPECT_TRUE(R.Equivalent) << R.Detail;
  }
}

TEST(InterchangeRoundTrip, PipelineLegalizeStageRunsAndTimes) {
  driver::PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.AnalyzeCost = false;
  Opts.Basis = Basis::Toffoli;
  driver::CompilationResult R =
      benchmarks::runPipelineOrDie(benchmarks::lengthSimplified(), 2, Opts);
  ASSERT_TRUE(R.succeeded());
  bool SawLegalize = false;
  for (const driver::StageTiming &T : R.Stages)
    SawLegalize |= T.Which == driver::Stage::Legalize;
  EXPECT_TRUE(SawLegalize);
  ASSERT_NE(R.finalCircuit(), nullptr);
  EXPECT_TRUE(conformsTo(*R.finalCircuit(), Basis::Toffoli));
}

TEST(InterchangeRoundTrip, PipelineSkipsLegalizeWhenConformant) {
  driver::PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.AnalyzeCost = false;
  Opts.Basis = Basis::MCX;
  driver::CompilationResult R =
      benchmarks::runPipelineOrDie(benchmarks::lengthSimplified(), 2, Opts);
  ASSERT_TRUE(R.succeeded());
  for (const driver::StageTiming &T : R.Stages)
    EXPECT_NE(T.Which, driver::Stage::Legalize);
  // The layout stays attached: the final circuit is still the MCX one.
  EXPECT_FALSE(R.Final.has_value());
}

TEST(InterchangeRoundTrip, CircuitInputAxisReadsBothFormats) {
  Circuit C = compileBenchmark(benchmarks::lengthSimplified(), 2);
  for (Format F : {Format::Qc, Format::Qasm3}) {
    SCOPED_TRACE(formatName(F));
    driver::PipelineOptions Opts;
    Opts.Input = driver::InputKind::Circuit;
    Opts.InputFormat = F;
    driver::CompilationPipeline Pipeline(Opts);
    driver::CompilationResult R = Pipeline.run(writeCircuit(C, F));
    ASSERT_TRUE(R.succeeded()) << R.Diags.str();
    ASSERT_NE(R.finalCircuit(), nullptr);
    EXPECT_EQ(R.finalCircuit()->Gates.size(), C.Gates.size());
    EXPECT_EQ(R.Stages.front().Which, driver::Stage::CircuitCompile);
  }
}

TEST(InterchangeRoundTrip, CircuitInputAxisReportsParseFailure) {
  driver::PipelineOptions Opts;
  Opts.Input = driver::InputKind::Circuit;
  Opts.InputFormat = Format::Qasm3;
  driver::CompilationPipeline Pipeline(Opts);
  driver::CompilationResult R = Pipeline.run("qubit[1] q; frobnicate q[0];");
  ASSERT_FALSE(R.succeeded());
  EXPECT_EQ(*R.Failed, driver::Stage::CircuitCompile);
  EXPECT_TRUE(R.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Crash-consistent artifact cache + compile service suite (PR 10):
//
//   - ArtifactCache library level: store/lookup round trips, hit/miss/
//     corrupt/evict accounting, quarantine of bit-flipped, truncated,
//     misnamed, and wrong-tool entries, LRU eviction order, stale-temp
//     sweeping, and injected cache.* io faults absorbed by retry or
//     degrading to uncached — never an error out of the cache.
//   - Key derivation: every output-affecting PipelineOptions field moves
//     the key; budget/verification knobs do not.
//   - CLI level: cold-then-warm byte-identical emits with cache.hits
//     accounting, poisoned caches recomputing (not failing), kill -9 at
//     cache.write self-healing on the next run, warm --batch runs served
//     from cache, --batch-retries absorbing transient faults, and the
//     --serve loop (drain mode and FIFO) with per-request isolation.
//
// The spirec binary path arrives in the SPIREC environment variable, set
// by CTest.
//===----------------------------------------------------------------------===//

#include "driver/Service.h"
#include "support/ArtifactCache.h"
#include "support/FaultInjector.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace spire;

namespace {

std::string spirecPath() {
  const char *Path = std::getenv("SPIREC");
  return Path ? Path : "";
}

struct RunResult {
  int ExitCode = -1;
  bool Signalled = false;
  std::string Output; ///< stderr + stdout, interleaved.
};

/// Runs an arbitrary shell command, capturing stdout + stderr.
RunResult runShell(const std::string &Command) {
  FILE *Pipe = popen((Command + " 2>&1").c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  RunResult R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
  } else {
    R.Signalled = true;
    R.ExitCode = 128 + WTERMSIG(Status);
  }
  return R;
}

/// Runs spirec with \p Args (optionally with SPIRE_FAULT / other
/// environment assignments prefixed via \p Env).
RunResult runSpirec(const std::string &Args, const std::string &Env = "") {
  std::string Cmd = Env.empty() ? "" : Env + " ";
  Cmd += "'" + spirecPath() + "' " + Args;
  return runShell(Cmd);
}

std::string writeTempFile(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path, std::ios::binary);
  Out << Text;
  return Path;
}

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Files in \p Dir whose names end with \p Suffix (non-recursive).
std::vector<std::string> filesWithSuffix(const std::string &Dir,
                                         const std::string &Suffix);

std::string goodQcCircuit() {
  return writeTempFile("cache_good.qc",
                       ".v q0 q1 q2\n\nBEGIN\ntof q0 q1 q2\ntof q0 q1\n"
                       "END\n");
}

/// A fresh cache directory under the test temp dir.
std::string freshCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + Name;
  runShell("rm -rf '" + Dir + "'");
  return Dir;
}

support::CacheConfig configFor(const std::string &Dir) {
  support::CacheConfig Config;
  Config.Dir = Dir;
  Config.ToolVersion = driver::toolVersion();
  return Config;
}

/// Extracts `"Name": {..."value": N...}` from a metrics JSON dump;
/// -1 when the metric is absent.
int64_t metricValue(const std::string &Json, const std::string &Name) {
  size_t At = Json.find("\"" + Name + "\"");
  if (At == std::string::npos)
    return -1;
  size_t Value = Json.find("\"value\": ", At);
  if (Value == std::string::npos)
    return -1;
  return std::strtoll(Json.c_str() + Value + 9, nullptr, 10);
}

std::vector<std::string> filesWithSuffix(const std::string &Dir,
                                         const std::string &Suffix) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.size() >= Suffix.size() &&
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
            0)
      Out.push_back(Name);
  }
  ::closedir(D);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Content hash
//===----------------------------------------------------------------------===//

TEST(HashBytes, DeterministicAndSensitive) {
  EXPECT_EQ(support::hashBytes("hello"), support::hashBytes("hello"));
  EXPECT_NE(support::hashBytes("hello"), support::hashBytes("hellp"));
  EXPECT_NE(support::hashBytes("hello"), support::hashBytes("hello "));
  EXPECT_NE(support::hashBytes(""), support::hashBytes(std::string(1, 0)));
  // Tail bytes (beyond the last full 8-byte chunk) must matter.
  EXPECT_NE(support::hashBytes("12345678A"), support::hashBytes("12345678B"));
}

//===----------------------------------------------------------------------===//
// ArtifactCache: round trips and accounting
//===----------------------------------------------------------------------===//

TEST(ArtifactCache, StoreLookupRoundTrip) {
  std::string Error;
  auto Cache =
      support::ArtifactCache::open(configFor(freshCacheDir("cache_rt")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  EXPECT_FALSE(Cache->lookup(1, 2).has_value());
  EXPECT_EQ(Cache->misses(), 1);
  EXPECT_TRUE(Cache->store(1, 2, "payload bytes\nwith lines\n"));
  std::optional<std::string> Hit = Cache->lookup(1, 2);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "payload bytes\nwith lines\n");
  EXPECT_EQ(Cache->hits(), 1);
  EXPECT_EQ(Cache->stores(), 1);
  // A different key is a different entry.
  EXPECT_FALSE(Cache->lookup(1, 3).has_value());
}

TEST(ArtifactCache, EmptyPayloadRoundTrips) {
  std::string Error;
  auto Cache =
      support::ArtifactCache::open(configFor(freshCacheDir("cache_empty")),
                                   Error);
  ASSERT_NE(Cache, nullptr) << Error;
  // The service never stores empty artifacts, but the cache itself must
  // not confuse "empty payload" with "missing entry".
  EXPECT_TRUE(Cache->store(7, 7, ""));
  std::optional<std::string> Hit = Cache->lookup(7, 7);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(Hit->empty());
}

//===----------------------------------------------------------------------===//
// ArtifactCache: integrity verification + quarantine
//===----------------------------------------------------------------------===//

namespace {

/// Stores one entry and returns its on-disk path.
std::string storeOne(support::ArtifactCache &Cache, uint64_t Hi,
                     uint64_t Lo, const std::string &Payload) {
  EXPECT_TRUE(Cache.store(Hi, Lo, Payload));
  return Cache.dir() + "/" + support::ArtifactCache::entryName(Hi, Lo);
}

} // namespace

TEST(ArtifactCache, BitFlippedEntryIsQuarantined) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_flip")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  std::string Path = storeOne(*Cache, 3, 4, "sensitive artifact bytes");
  std::string Raw = readWholeFile(Path);
  Raw[Raw.size() / 2] ^= 0x20;
  { std::ofstream Out(Path, std::ios::binary); Out << Raw; }

  EXPECT_FALSE(Cache->lookup(3, 4).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
  EXPECT_FALSE(fileExists(Path)) << "damaged entry must leave the cache";
  EXPECT_EQ(filesWithSuffix(Cache->dir() + "/quarantine", ".art").size(),
            1u);
  // The damage is consumed: the next lookup is a plain miss.
  EXPECT_FALSE(Cache->lookup(3, 4).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
}

TEST(ArtifactCache, TruncatedEntryIsQuarantined) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_trunc")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  std::string Path = storeOne(*Cache, 5, 6, "a payload long enough to cut");
  std::string Raw = readWholeFile(Path);
  { std::ofstream Out(Path, std::ios::binary);
    Out << Raw.substr(0, Raw.size() - 7); }
  EXPECT_FALSE(Cache->lookup(5, 6).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
}

TEST(ArtifactCache, GarbageHeaderIsQuarantined) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_garbage")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  std::string Path =
      Cache->dir() + "/" + support::ArtifactCache::entryName(8, 9);
  { std::ofstream Out(Path, std::ios::binary); Out << "not a manifest\n"; }
  EXPECT_FALSE(Cache->lookup(8, 9).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
}

TEST(ArtifactCache, MisnamedEntryIsQuarantined) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_misname")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  std::string Path = storeOne(*Cache, 10, 11, "payload");
  // A valid entry under the wrong name must not be served for that key.
  std::string Wrong =
      Cache->dir() + "/" + support::ArtifactCache::entryName(12, 13);
  ASSERT_EQ(std::rename(Path.c_str(), Wrong.c_str()), 0);
  EXPECT_FALSE(Cache->lookup(12, 13).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
}

TEST(ArtifactCache, WrongToolVersionReadsAsMiss) {
  std::string Dir = freshCacheDir("cache_tool");
  std::string Error;
  {
    support::CacheConfig Config = configFor(Dir);
    Config.ToolVersion = "spirec-elder";
    auto Cache = support::ArtifactCache::open(Config, Error);
    ASSERT_NE(Cache, nullptr) << Error;
    EXPECT_TRUE(Cache->store(14, 15, "an elder artifact"));
  }
  auto Cache = support::ArtifactCache::open(configFor(Dir), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  EXPECT_FALSE(Cache->lookup(14, 15).has_value());
  EXPECT_EQ(Cache->corrupt(), 1);
}

//===----------------------------------------------------------------------===//
// ArtifactCache: LRU eviction
//===----------------------------------------------------------------------===//

TEST(ArtifactCache, EvictsOldestUsedFirst) {
  support::CacheConfig Config = configFor(freshCacheDir("cache_lru"));
  // Entries are ~64 bytes of payload + ~100 of manifest; cap at three.
  Config.MaxBytes = 3 * 200;
  std::string Error;
  auto Cache = support::ArtifactCache::open(Config, Error);
  ASSERT_NE(Cache, nullptr) << Error;
  std::string Payload(64, 'x');
  auto tick = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  storeOne(*Cache, 1, 1, Payload);
  tick();
  storeOne(*Cache, 2, 2, Payload);
  tick();
  storeOne(*Cache, 3, 3, Payload);
  tick();
  // Touch entry 1: it becomes the most recently used.
  EXPECT_TRUE(Cache->lookup(1, 1).has_value());
  tick();
  storeOne(*Cache, 4, 4, Payload); // Over cap: evicts 2 (oldest-used).
  EXPECT_GE(Cache->evicted(), 1);
  EXPECT_TRUE(Cache->lookup(1, 1).has_value()) << "recently-used survives";
  EXPECT_FALSE(Cache->lookup(2, 2).has_value()) << "oldest-used evicted";
  EXPECT_TRUE(Cache->lookup(4, 4).has_value()) << "just-stored survives";
}

//===----------------------------------------------------------------------===//
// Stale-temp sweeping
//===----------------------------------------------------------------------===//

TEST(StaleTempSweep, RemovesDeadPidTempsOnly) {
  std::string Dir = freshCacheDir("cache_sweep");
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  // A guaranteed-dead pid: fork a child that exits immediately and reap
  // it. The pid is ours to name until another process recycles it.
  pid_t Dead = fork();
  ASSERT_GE(Dead, 0);
  if (Dead == 0)
    _exit(0);
  ASSERT_EQ(waitpid(Dead, nullptr, 0), Dead);

  std::string DeadTemp =
      Dir + "/entry.art.tmp." + std::to_string(Dead);
  std::string LiveTemp =
      Dir + "/entry.art.tmp." + std::to_string(getpid());
  std::string NotATemp = Dir + "/entry.art";
  std::string Garbage = Dir + "/entry.art.tmp.notapid";
  for (const std::string &P : {DeadTemp, LiveTemp, NotATemp, Garbage})
    std::ofstream(P, std::ios::binary) << "x";

  EXPECT_EQ(support::sweepStaleTempFiles(Dir), 1);
  EXPECT_FALSE(fileExists(DeadTemp)) << "dead writer's temp reaped";
  EXPECT_TRUE(fileExists(LiveTemp)) << "own in-flight temp kept";
  EXPECT_TRUE(fileExists(NotATemp)) << "real entries kept";
  EXPECT_TRUE(fileExists(Garbage)) << "non-pid suffixes kept";
}

TEST(StaleTempSweep, CacheOpenSweeps) {
  std::string Dir = freshCacheDir("cache_sweep_open");
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  pid_t Dead = fork();
  ASSERT_GE(Dead, 0);
  if (Dead == 0)
    _exit(0);
  ASSERT_EQ(waitpid(Dead, nullptr, 0), Dead);
  std::string DeadTemp = Dir + "/e.art.tmp." + std::to_string(Dead);
  std::ofstream(DeadTemp, std::ios::binary) << "orphan";

  std::string Error;
  auto Cache = support::ArtifactCache::open(configFor(Dir), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  EXPECT_FALSE(fileExists(DeadTemp)) << "open() must sweep orphans";
}

//===----------------------------------------------------------------------===//
// ArtifactCache: injected io faults
//===----------------------------------------------------------------------===//

TEST(CacheFaults, ReadFaultAbsorbedByRetry) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_retry")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  storeOne(*Cache, 20, 21, "resilient payload");
  support::armFault({"cache.read", support::FaultKind::Io, 0});
  std::optional<std::string> Hit = Cache->lookup(20, 21);
  support::disarmFault();
  ASSERT_TRUE(Hit.has_value()) << "one-shot fault must be retried away";
  EXPECT_EQ(*Hit, "resilient payload");
}

TEST(CacheFaults, WriteFaultAbsorbedByRetry) {
  std::string Error;
  auto Cache = support::ArtifactCache::open(
      configFor(freshCacheDir("cache_wretry")), Error);
  ASSERT_NE(Cache, nullptr) << Error;
  support::armFault({"cache.write", support::FaultKind::Io, 0});
  EXPECT_TRUE(Cache->store(22, 23, "stored despite the fault"));
  support::disarmFault();
  EXPECT_TRUE(Cache->lookup(22, 23).has_value());
}

TEST(CacheFaults, ExhaustedRetriesDegradeToMiss) {
  support::CacheConfig Config = configFor(freshCacheDir("cache_degrade"));
  Config.RetryAttempts = 0;
  std::string Error;
  auto Cache = support::ArtifactCache::open(Config, Error);
  ASSERT_NE(Cache, nullptr) << Error;
  storeOne(*Cache, 24, 25, "unreachable this once");
  support::armFault({"cache.read", support::FaultKind::Io, 0});
  EXPECT_FALSE(Cache->lookup(24, 25).has_value())
      << "no retries: the fault degrades the lookup to a miss";
  support::disarmFault();
  // The entry itself is intact; the next lookup hits.
  EXPECT_TRUE(Cache->lookup(24, 25).has_value());
}

//===----------------------------------------------------------------------===//
// Cache key derivation
//===----------------------------------------------------------------------===//

TEST(CacheKey, TracksOutputAffectingOptionsOnly) {
  driver::PipelineOptions Base;
  Base.Entry = "f";
  const std::string Source = "fun f() { return 1; }";
  driver::CacheKey K0 = driver::cacheKeyFor(Base, Source);

  // Source bytes move the low word.
  EXPECT_NE(driver::cacheKeyFor(Base, Source + " ").Lo, K0.Lo);
  EXPECT_EQ(driver::cacheKeyFor(Base, Source).Hi, K0.Hi);

  // Output-affecting options move the high word.
  driver::PipelineOptions O = Base;
  O.Entry = "g";
  EXPECT_NE(driver::cacheKeyFor(O, Source).Hi, K0.Hi);
  O = Base;
  O.Size = 3;
  EXPECT_NE(driver::cacheKeyFor(O, Source).Hi, K0.Hi);
  O = Base;
  O.Target.WordBits = 16;
  EXPECT_NE(driver::cacheKeyFor(O, Source).Hi, K0.Hi);
  O = Base;
  O.CircuitOpt = driver::CircuitOptimizerKind::Peephole;
  EXPECT_NE(driver::cacheKeyFor(O, Source).Hi, K0.Hi);
  O = Base;
  O.Basis = interchange::Basis::CX;
  EXPECT_NE(driver::cacheKeyFor(O, Source).Hi, K0.Hi);

  // Budgets and verification police the run; the artifact is the same.
  O = Base;
  O.Limits.TimeoutMs = 1000;
  O.VerifyEach = !O.VerifyEach;
  O.CheckEquivSamples = 999;
  EXPECT_EQ(driver::cacheKeyFor(O, Source).Hi, K0.Hi);
}

//===----------------------------------------------------------------------===//
// CLI: cold/warm runs, poisoning, crash self-healing
//===----------------------------------------------------------------------===//

TEST(CacheCli, ColdThenWarmIsByteIdenticalAndCounted) {
  ASSERT_FALSE(spirecPath().empty()) << "SPIREC env var not set";
  std::string Qc = goodQcCircuit();
  std::string Dir = freshCacheDir("cli_warm");
  std::string Out = ::testing::TempDir();

  RunResult Ref = runSpirec("--qc-in " + Qc + " -o " + Out + "ref.qc");
  ASSERT_EQ(Ref.ExitCode, 0) << Ref.Output;
  RunResult Cold = runSpirec("--qc-in " + Qc + " -o " + Out +
                             "cold.qc --cache-dir " + Dir);
  ASSERT_EQ(Cold.ExitCode, 0) << Cold.Output;
  RunResult Warm = runSpirec("--qc-in " + Qc + " -o " + Out +
                             "warm.qc --cache-dir " + Dir +
                             " --metrics-json " + Out + "warm.json");
  ASSERT_EQ(Warm.ExitCode, 0) << Warm.Output;

  std::string Expect = readWholeFile(Out + "ref.qc");
  ASSERT_FALSE(Expect.empty());
  EXPECT_EQ(readWholeFile(Out + "cold.qc"), Expect);
  EXPECT_EQ(readWholeFile(Out + "warm.qc"), Expect);
  std::string Json = readWholeFile(Out + "warm.json");
  EXPECT_EQ(metricValue(Json, "cache.hits"), 1) << Json;
  EXPECT_EQ(filesWithSuffix(Dir, ".art").size(), 1u);
}

TEST(CacheCli, PoisonedEntryRecomputesNotFails) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Dir = freshCacheDir("cli_poison");
  std::string Out = ::testing::TempDir();
  ASSERT_EQ(runSpirec("--qc-in " + Qc + " -o " + Out +
                      "p_ref.qc --cache-dir " + Dir)
                .ExitCode,
            0);
  std::vector<std::string> Entries = filesWithSuffix(Dir, ".art");
  ASSERT_EQ(Entries.size(), 1u);
  std::string Entry = Dir + "/" + Entries[0];
  std::string Raw = readWholeFile(Entry);
  Raw[Raw.size() - 3] ^= 0xff;
  { std::ofstream O(Entry, std::ios::binary); O << Raw; }

  RunResult R = runSpirec("--qc-in " + Qc + " -o " + Out +
                          "p_out.qc --cache-dir " + Dir +
                          " --metrics-json " + Out + "p.json");
  EXPECT_EQ(R.ExitCode, 0) << "cache damage must never fail a compile: "
                           << R.Output;
  EXPECT_EQ(readWholeFile(Out + "p_out.qc"), readWholeFile(Out + "p_ref.qc"));
  std::string Json = readWholeFile(Out + "p.json");
  EXPECT_GE(metricValue(Json, "cache.corrupt"), 1) << Json;
  EXPECT_GE(filesWithSuffix(Dir + "/quarantine", ".art").size(), 1u);
}

TEST(CacheCli, KillAtCacheWriteSelfHeals) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Dir = freshCacheDir("cli_kill");
  std::string Out = ::testing::TempDir();
  ASSERT_EQ(runSpirec("--qc-in " + Qc + " -o " + Out + "k_ref.qc")
                .ExitCode,
            0);

  RunResult Killed = runSpirec("--qc-in " + Qc + " -o /dev/null --cache-dir " +
                                   Dir,
                               "SPIRE_FAULT='site=cache.write,kind=kill'");
  EXPECT_EQ(Killed.ExitCode, 137) << "the kill fault must fire: "
                                  << Killed.Output;
  // The abrupt death left no committed entry — only (possibly) an
  // orphaned temp, which the next run's startup sweep reaps.
  EXPECT_TRUE(filesWithSuffix(Dir, ".art").empty());

  RunResult Heal = runSpirec("--qc-in " + Qc + " -o " + Out +
                             "k_out.qc --cache-dir " + Dir);
  EXPECT_EQ(Heal.ExitCode, 0) << Heal.Output;
  EXPECT_EQ(readWholeFile(Out + "k_out.qc"), readWholeFile(Out + "k_ref.qc"));
  EXPECT_TRUE(filesWithSuffix(Dir, ".tmp").empty());
  for (const std::string &Name : filesWithSuffix(Dir, ""))
    EXPECT_EQ(Name.find(".tmp."), std::string::npos)
        << "stale temp survived the sweep: " << Name;
}

TEST(CacheCli, DegradesToUncachedWhenRetriesExhausted) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Dir = freshCacheDir("cli_degrade");
  std::string Out = ::testing::TempDir();
  ASSERT_EQ(runSpirec("--qc-in " + Qc + " -o " + Out +
                      "d_ref.qc --cache-dir " + Dir)
                .ExitCode,
            0);
  RunResult R = runSpirec(
      "--qc-in " + Qc + " -o " + Out + "d_out.qc --cache-dir " + Dir +
          " --metrics-json " + Out + "d.json",
      "SPIRE_CACHE_RETRIES=0 SPIRE_FAULT='site=cache.read,kind=io'");
  EXPECT_EQ(R.ExitCode, 0) << "a sick cache degrades, never fails: "
                           << R.Output;
  EXPECT_EQ(readWholeFile(Out + "d_out.qc"), readWholeFile(Out + "d_ref.qc"));
  EXPECT_GE(metricValue(readWholeFile(Out + "d.json"), "cache.io_errors"),
            1);
}

//===----------------------------------------------------------------------===//
// CLI: batch cache + retries
//===----------------------------------------------------------------------===//

TEST(CacheBatch, WarmBatchServedFromCache) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Qc2 = writeTempFile("cache_good2.qc",
                                  ".v a b\n\nBEGIN\ntof a b\nEND\n");
  std::string List = writeTempFile("cache_batch.txt", Qc + "\n" + Qc2 + "\n");
  std::string Dir = freshCacheDir("cli_batch");
  std::string Out = ::testing::TempDir();

  RunResult Cold = runSpirec("--batch " + List + " --cache-dir " + Dir);
  ASSERT_EQ(Cold.ExitCode, 0) << Cold.Output;
  RunResult Warm = runSpirec("--batch " + List + " --cache-dir " + Dir +
                             " --metrics-json " + Out + "bw.json");
  ASSERT_EQ(Warm.ExitCode, 0) << Warm.Output;
  EXPECT_NE(Warm.Output.find("(cached, "), std::string::npos) << Warm.Output;
  std::string Json = readWholeFile(Out + "bw.json");
  EXPECT_EQ(metricValue(Json, "cache.hits"), 2) << Json;
  EXPECT_NE(Json.find("\"cached\": true"), std::string::npos);
}

TEST(CacheBatch, RetriesAbsorbTransientIoFault) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string List = writeTempFile("cache_retry_batch.txt", Qc + "\n");
  std::string Out = ::testing::TempDir();
  // after=1: the first io/input arrival reads the batch list itself;
  // the fault then fires on the entry's read and the retry absorbs it.
  RunResult R = runSpirec("--batch " + List + " --batch-retries 2 " +
                              "--metrics-json " + Out + "br.json",
                          "SPIRE_FAULT='site=io/input,kind=io,after=1'");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("2 attempts"), std::string::npos) << R.Output;
  std::string Json = readWholeFile(Out + "br.json");
  EXPECT_NE(Json.find("\"attempts\": 2"), std::string::npos) << Json;

  // Without retries the same fault fails the entry (isolated, exit 1).
  RunResult NoRetry = runSpirec("--batch " + List,
                                "SPIRE_FAULT='site=io/input,kind=io,after=1'");
  EXPECT_EQ(NoRetry.ExitCode, 1) << NoRetry.Output;
}

//===----------------------------------------------------------------------===//
// CLI: serve loop
//===----------------------------------------------------------------------===//

TEST(Serve, DrainsRegularFileWithIsolation) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Out = ::testing::TempDir();
  std::string Dir = freshCacheDir("serve_drain");
  // A poisoned request first: its failure must not leak into the next.
  std::string Reqs = writeTempFile(
      "serve_reqs.txt", "# serve drain test\n"
                        "compile " +
                            (Out + "serve_missing.qc") + " " + Out +
                            "s0.qc\n"
                            "compile " +
                            Qc + " " + Out + "s1.qc\n" + "compile " + Qc +
                            " " + Out + "s2.qc\n" + "shutdown\n");
  RunResult R = runSpirec("--serve " + Reqs + " --cache-dir " + Dir +
                          " --metrics-json " + Out + "serve.json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("FAILED"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("serve: ok"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("2/3 requests succeeded"), std::string::npos)
      << R.Output;
  // Request 2 compiled (miss), request 3 hit the fresh entry.
  EXPECT_NE(R.Output.find("(miss, "), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("(hit, "), std::string::npos) << R.Output;
  EXPECT_EQ(readWholeFile(Out + "s1.qc"), readWholeFile(Out + "s2.qc"));
  EXPECT_FALSE(readWholeFile(Out + "s1.qc").empty());
  std::string Json = readWholeFile(Out + "serve.json");
  EXPECT_NE(Json.find("\"mode\": \"serve\""), std::string::npos) << Json;
  EXPECT_EQ(metricValue(Json, "service.requests"), 2) << Json;
}

TEST(Serve, FifoServesAcrossWriterSessions) {
  ASSERT_FALSE(spirecPath().empty());
  std::string Qc = goodQcCircuit();
  std::string Out = ::testing::TempDir();
  std::string Fifo = Out + "serve_req.fifo";
  // One shell script: start the server on a FIFO, feed it two separate
  // writer sessions (the server must survive the hang-up between them),
  // then shut it down and report its exit code.
  std::string Script = "rm -f '" + Fifo + "'; mkfifo '" + Fifo +
                       "' || exit 1; '" + spirecPath() + "' --serve '" +
                       Fifo + "' > '" + Out + "serve_fifo.out' & pid=$!; " +
                       "echo 'compile " + Qc + " " + Out +
                       "f1.qc' > '" + Fifo + "'; " + "{ echo 'compile " +
                       Qc + " " + Out + "f2.qc'; echo shutdown; } > '" +
                       Fifo + "'; wait $pid";
  RunResult R = runShell(Script);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::string ServerOut = readWholeFile(Out + "serve_fifo.out");
  EXPECT_NE(ServerOut.find("2/2 requests succeeded"), std::string::npos)
      << ServerOut;
  EXPECT_EQ(readWholeFile(Out + "f1.qc"), readWholeFile(Out + "f2.qc"));
  EXPECT_FALSE(readWholeFile(Out + "f1.qc").empty());
}

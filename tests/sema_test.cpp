//===----------------------------------------------------------------------===//
// Tests for the type checker (paper Appendix B.1, Figs. 18-20), with a
// focus on rejection paths: every S-* and TE-* side condition that can
// fail should produce a diagnostic, not a miscompile. The two extensions
// the paper makes to Tower's rules — same-scope re-declaration and
// S-Hadamard — get dedicated positive and negative cases.
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sema/TypeChecker.h"

#include <gtest/gtest.h>

using namespace spire;

namespace {

/// Type-checks a source string; on failure returns the rendered
/// diagnostics, on success the empty string.
std::string diagnose(const char *Source) {
  support::DiagnosticEngine Diags;
  std::optional<ast::Program> P = frontend::parseProgram(Source, Diags);
  if (!P)
    return "parse error: " + Diags.str();
  if (sema::typeCheck(*P, Diags))
    return "";
  return Diags.str();
}

::testing::AssertionResult checksOK(const char *Source) {
  std::string D = diagnose(Source);
  if (D.empty())
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << D;
}

::testing::AssertionResult rejectedWith(const char *Source,
                                        const char *Fragment) {
  std::string D = diagnose(Source);
  if (D.empty())
    return ::testing::AssertionFailure() << "expected rejection containing '"
                                         << Fragment << "' but it checked";
  if (D.find(Fragment) == std::string::npos)
    return ::testing::AssertionFailure()
           << "diagnostics lack '" << Fragment << "':\n" << D;
  return ::testing::AssertionSuccess();
}

} // namespace

//===----------------------------------------------------------------------===//
// Declarations and scope
//===----------------------------------------------------------------------===//

TEST(Sema, UndeclaredVariableInExpr) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let out <- a + b;"
                           " return out; }",
                           "undeclared variable 'b'"));
}

TEST(Sema, ReDeclarationSameTypeAllowed) {
  // The paper's first change to the Tower rules: a variable may be
  // re-declared in the same scope (new value XORs into the register).
  EXPECT_TRUE(checksOK("fun f(a: uint) { let out <- a;"
                       " let out <- a + 1; return out; }"));
}

TEST(Sema, ReDeclarationDifferentTypeRejected) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let out <- a;"
                           " let out <- true; return out; }",
                           "re-declaration"));
}

TEST(Sema, UnAssignUndeclared) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let x -> a;"
                           " let out <- a; return out; }",
                           "un-assignment of undeclared variable 'x'"));
}

TEST(Sema, UnAssignWrongTypeRejected) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let x <- a;"
                           " let x -> true; let out <- a; return out; }",
                           "un-assignment"));
}

TEST(Sema, UnAssignRemovesBinding) {
  // After `let x -> e` the binding is gone (S-UnAssign): further uses
  // are undeclared.
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let x <- a; let x -> a;"
                           " let out <- x; return out; }",
                           "undeclared variable 'x'"));
}

TEST(Sema, ReturnUndeclared) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { skip; return out; }",
                           "returns undeclared"));
}

//===----------------------------------------------------------------------===//
// Swap and memory swap
//===----------------------------------------------------------------------===//

TEST(Sema, SwapTypeMismatch) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint, b: bool) { a <-> b;"
                           " let out <- a; return out; }",
                           "mismatched types"));
}

TEST(Sema, SwapUndeclared) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { a <-> b;"
                           " let out <- a; return out; }",
                           "swap of undeclared variable"));
}

TEST(Sema, MemSwapRequiresPointerOnLeft) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint, b: uint) { *a <-> b;"
                           " let out <- a; return out; }",
                           "must be a pointer"));
}

TEST(Sema, MemSwapPointeeTypeMismatch) {
  EXPECT_TRUE(rejectedWith(
      "fun f(p: ptr<uint>, b: bool) { *p <-> b;"
      " let out <- b; return out; }",
      "memory swap stores"));
}

TEST(Sema, MemSwapWellTyped) {
  EXPECT_TRUE(checksOK("fun f(p: ptr<uint>, b: uint) { *p <-> b;"
                       " let out <- b; return out; }"));
}

//===----------------------------------------------------------------------===//
// Hadamard (the paper's S-Hadamard extension)
//===----------------------------------------------------------------------===//

TEST(Sema, HadamardOnBoolAllowed) {
  EXPECT_TRUE(checksOK("fun f(b: bool) { h(b); let out <- b;"
                       " return out; }"));
}

TEST(Sema, HadamardOnUIntRejected) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { h(a); let out <- a;"
                           " return out; }",
                           "requires a bool"));
}

TEST(Sema, HadamardUndeclared) {
  EXPECT_TRUE(rejectedWith("fun f(a: bool) { h(c); let out <- a;"
                           " return out; }",
                           "h() of undeclared variable"));
}

TEST(Sema, HadamardUnderItsOwnConditionRejected) {
  // mod(H(x)) = {x}, so `if x { h(x) }` violates the S-If condition.
  EXPECT_TRUE(rejectedWith("fun f(x: bool) { if x { h(x); }"
                           " let out <- x; return out; }",
                           "condition variable"));
}

//===----------------------------------------------------------------------===//
// The S-If side conditions
//===----------------------------------------------------------------------===//

TEST(Sema, IfConditionMustBeBool) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { if a { skip; }"
                           " let out <- a; return out; }",
                           "must be bool"));
}

TEST(Sema, IfBodyMayNotModifyCondition) {
  EXPECT_TRUE(rejectedWith("fun f(x: bool, y: bool) {"
                           " if x { let x <- y; }"
                           " let out <- x; return out; }",
                           "condition variable"));
}

TEST(Sema, IfBodyMayNotModifyConditionFreeVars) {
  // The condition here is an expression over y; the body flips y.
  EXPECT_TRUE(rejectedWith("fun f(y: bool, z: bool) {"
                           " if y && z { let y <- z; }"
                           " let out <- y; return out; }",
                           "condition variable"));
}

TEST(Sema, IfBodyMayNotConsumeOuterVariable) {
  // dom G must be preserved across the body (S-If): consuming an outer
  // binding in only one branch would leave the context path-dependent.
  EXPECT_TRUE(rejectedWith("fun f(x: bool, a: uint) {"
                           " let t <- a;"
                           " if x { let t -> a; }"
                           " let out <- a; return out; }",
                           "consumes outer variable"));
}

TEST(Sema, IfBodyMayDeclareNewVariables) {
  // Declarations inside the body extend the context (dom G subset of
  // dom G' is allowed).
  EXPECT_TRUE(checksOK("fun f(x: bool, a: uint) {"
                       " if x { let t <- a + 1; }"
                       " let out <- a; return out; }"));
}

TEST(Sema, IfConditionMayBeReadInBody) {
  // Reading the condition inside the body is legal (only modification is
  // excluded) — this is the control-merging case the cost model profiles
  // through an if-wrapper.
  EXPECT_TRUE(checksOK("fun f(x: bool, y: bool) {"
                       " if x { let t <- x && y; }"
                       " let out <- y; return out; }"));
}

TEST(Sema, NestedIfSameConditionAllowed) {
  EXPECT_TRUE(checksOK("fun f(x: bool, a: uint) {"
                       " if x { if x { let t <- a; } }"
                       " let out <- a; return out; }"));
}

//===----------------------------------------------------------------------===//
// Expressions (Figs. 18 and 19)
//===----------------------------------------------------------------------===//

TEST(Sema, NotRequiresBool) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let b <- not a;"
                           " let out <- b; return out; }",
                           "'not' requires bool"));
}

TEST(Sema, TestRequiresUIntOrPointer) {
  EXPECT_TRUE(rejectedWith("fun f(b: bool) { let c <- test b;"
                           " let out <- c; return out; }",
                           "'test' requires uint or pointer"));
  EXPECT_TRUE(checksOK("fun f(a: uint) { let c <- test a;"
                       " let out <- c; return out; }"));
  EXPECT_TRUE(checksOK("fun f(p: ptr<uint>) { let c <- test p;"
                       " let out <- c; return out; }"));
}

TEST(Sema, LogicalOpsRequireBool) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint, b: bool) { let c <- a && b;"
                           " let out <- c; return out; }",
                           "logical operator requires bool"));
}

TEST(Sema, ArithmeticRequiresUInt) {
  EXPECT_TRUE(rejectedWith("fun f(a: bool, b: bool) { let c <- a + b;"
                           " let out <- c; return out; }",
                           "arithmetic requires uint"));
}

TEST(Sema, ComparisonRequiresUInt) {
  EXPECT_TRUE(rejectedWith("fun f(a: bool, b: bool) { let c <- a < b;"
                           " let out <- c; return out; }",
                           "comparison requires uint"));
}

TEST(Sema, EqualityTypeMismatch) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint, b: bool) { let c <- a == b;"
                           " let out <- c; return out; }",
                           "mismatched types"));
}

TEST(Sema, EqualityOnPointers) {
  EXPECT_TRUE(checksOK("fun f(p: ptr<uint>, q: ptr<uint>) {"
                       " let c <- p == q; let out <- c; return out; }"));
}

TEST(Sema, NullComparesAgainstPointer) {
  // TV-Null: null's pointer type is inferred from the other operand.
  EXPECT_TRUE(checksOK("fun f(p: ptr<uint>) { let c <- p == null;"
                       " let out <- c; return out; }"));
}

TEST(Sema, BareNullWithoutContextRejected) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let p <- null;"
                           " let out <- a; return out; }",
                           "cannot infer the pointer type"));
}

TEST(Sema, ProjectionFromNonPair) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let x <- a.1;"
                           " let out <- x; return out; }",
                           "projection from non-pair"));
}

TEST(Sema, ProjectionTypes) {
  EXPECT_TRUE(checksOK("fun f(p: (uint, bool)) {"
                       " let a <- p.1; let b <- p.2;"
                       " let c <- a + 1; let d <- not b;"
                       " let out <- c; return out; }"));
}

//===----------------------------------------------------------------------===//
// Functions and calls
//===----------------------------------------------------------------------===//

TEST(Sema, CallToUndefinedFunction) {
  EXPECT_TRUE(rejectedWith("fun f(a: uint) { let r <- g(a);"
                           " let out <- r; return out; }",
                           "undefined function 'g'"));
}

TEST(Sema, CallArityMismatch) {
  EXPECT_TRUE(rejectedWith("fun g(x: uint, y: uint) { let out <- x + y;"
                           " return out; }"
                           "fun f(a: uint) { let r <- g(a);"
                           " let out <- r; return out; }",
                           "with 1 argument"));
}

TEST(Sema, CallArgumentTypeMismatch) {
  EXPECT_TRUE(rejectedWith("fun g(x: uint) { let out <- x; return out; }"
                           "fun f(b: bool) { let r <- g(b);"
                           " let out <- r; return out; }",
                           "argument 1"));
}

TEST(Sema, SizeArgOnNonSizedFunction) {
  EXPECT_TRUE(rejectedWith("fun g(x: uint) { let out <- x; return out; }"
                           "fun f(a: uint) { let r <- g[3](a);"
                           " let out <- r; return out; }",
                           "size"));
}

TEST(Sema, MissingSizeArgOnSizedFunction) {
  EXPECT_TRUE(rejectedWith(
      "fun g[n](x: uint) { let out <- g[n-1](x); return out; }"
      "fun f(a: uint) { let r <- g(a); let out <- r; return out; }",
      "size"));
}

TEST(Sema, MutualRecursionRejected) {
  // Only self-recursion (with a size parameter) is supported; forward
  // references between functions are rejected at the call site, matching
  // the Tower compiler's define-before-use inlining order.
  EXPECT_TRUE(rejectedWith(
      "fun even[n](x: uint) { let out <- odd[n-1](x); return out; }"
      "fun odd[n](x: uint) { let out <- even[n-1](x); return out; }"
      "fun f(a: uint) { let r <- even[4](a);"
      " let out <- r; return out; }",
      "must be defined before"));
}

TEST(Sema, DeclaredReturnTypeMismatch) {
  EXPECT_TRUE(rejectedWith("fun g(x: uint) -> bool { let out <- x;"
                           " return out; }",
                           "return type"));
}

TEST(Sema, DeclaredReturnTypeChecks) {
  EXPECT_TRUE(checksOK("fun g(x: uint) -> bool { let out <- test x;"
                       " return out; }"));
}

//===----------------------------------------------------------------------===//
// With-do blocks
//===----------------------------------------------------------------------===//

TEST(Sema, WithTemporariesScopeToTheBlock) {
  // The with-block's bindings are reversed after the do-block; using one
  // afterwards is an error.
  EXPECT_TRUE(rejectedWith("fun f(a: uint) {"
                           " with { let t <- a + 1; } do { let r <- t; }"
                           " let out <- t; return out; }",
                           "undeclared variable 't'"));
}

TEST(Sema, DoBlockResultsSurvive) {
  EXPECT_TRUE(checksOK("fun f(a: uint) {"
                       " with { let t <- a + 1; } do { let r <- t; }"
                       " let out <- r; return out; }"));
}

TEST(Sema, NamedTypeUnfolding) {
  // Recursive named types unfold through ptr (the list benchmark shape).
  EXPECT_TRUE(checksOK("type list = (uint, ptr<list>);"
                       "fun f(xs: ptr<list>) {"
                       " let t <- default<list>;"
                       " *xs <-> t;"
                       " let head <- t.1; let tail <- t.2;"
                       " let out <- head; return out; }"));
}

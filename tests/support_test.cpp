//===----------------------------------------------------------------------===//
// Tests for the support library: diagnostics, rationals, polynomial fit.
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/PolyFit.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace spire::support;

TEST(Rational, IntegerBasics) {
  Rational A(6), B(4);
  EXPECT_EQ((A + B).asInteger(), 10);
  EXPECT_EQ((A - B).asInteger(), 2);
  EXPECT_EQ((A * B).asInteger(), 24);
  EXPECT_EQ((A / B).str(), "3/2");
}

TEST(Rational, Normalization) {
  EXPECT_EQ(Rational(6, 4).str(), "3/2");
  EXPECT_EQ(Rational(-6, 4).str(), "-3/2");
  EXPECT_EQ(Rational(6, -4).str(), "-3/2");
  EXPECT_EQ(Rational(0, 7).str(), "0");
  EXPECT_TRUE(Rational(0, 3).isZero());
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_NE(Rational(2, 4), Rational(1, 3));
  EXPECT_TRUE(Rational(-1, 2).isNegative());
}

TEST(Rational, ArithmeticIdentities) {
  Rational X(7, 3);
  EXPECT_EQ(X + Rational(0), X);
  EXPECT_EQ(X * Rational(1), X);
  EXPECT_EQ(X - X, Rational(0));
  EXPECT_EQ(X / X, Rational(1));
  EXPECT_EQ(-(-X), X);
}

TEST(PolyFit, Constant) {
  Polynomial P = fitPolynomial(2, {1452, 1452, 1452, 1452});
  EXPECT_EQ(P.degree(), 0);
  EXPECT_EQ(P.str("n"), "1452");
}

TEST(PolyFit, LinearPaperStyle) {
  // Table 1 length MCX-complexity: 2246n + 32.
  std::vector<int64_t> Values;
  for (int64_t N = 2; N <= 10; ++N)
    Values.push_back(2246 * N + 32);
  Polynomial P = fitPolynomial(2, Values);
  EXPECT_EQ(P.degree(), 1);
  EXPECT_EQ(P.str("n"), "2246n+32");
}

TEST(PolyFit, QuadraticPaperStyle) {
  // Table 1 length T-complexity: 15722n^2 + 19292n + 3934.
  std::vector<int64_t> Values;
  for (int64_t N = 2; N <= 10; ++N)
    Values.push_back(15722 * N * N + 19292 * N + 3934);
  Polynomial P = fitPolynomial(2, Values);
  EXPECT_EQ(P.degree(), 2);
  EXPECT_EQ(P.str("n"), "15722n^2+19292n+3934");
}

TEST(PolyFit, NegativeCoefficient) {
  // Table 1 find_pos: 16058n^2 - 8820n + 6426.
  std::vector<int64_t> Values;
  for (int64_t N = 2; N <= 10; ++N)
    Values.push_back(16058 * N * N - 8820 * N + 6426);
  Polynomial P = fitPolynomial(2, Values);
  EXPECT_EQ(P.str("n"), "16058n^2-8820n+6426");
}

TEST(PolyFit, FractionalCoefficients) {
  // Table 3 insert: (3076192/3) d^3 + ... — fit must be exact rationals.
  // Use y = n(n+1)(n+2)/6 (integer-valued, non-integer coefficients).
  std::vector<int64_t> Values;
  for (int64_t N = 1; N <= 8; ++N)
    Values.push_back(N * (N + 1) * (N + 2) / 6);
  Polynomial P = fitPolynomial(1, Values);
  EXPECT_EQ(P.degree(), 3);
  EXPECT_EQ(P.Coeffs[3], Rational(1, 6));
  // Spot-check exact evaluation.
  EXPECT_EQ(P.evaluate(20).asInteger(), 20 * 21 * 22 / 6);
}

TEST(PolyFit, EvaluateMatchesSamples) {
  std::vector<int64_t> Values = {5, 17, 43, 91, 169, 285};
  Polynomial P = fitPolynomial(3, Values);
  for (size_t I = 0; I != Values.size(); ++I) {
    Rational Y = P.evaluate(3 + static_cast<int64_t>(I));
    ASSERT_TRUE(Y.isInteger());
    EXPECT_EQ(Y.asInteger(), Values[I]);
  }
}

TEST(PolyFit, DegreeHelper) {
  EXPECT_EQ(fittedDegree(2, {7, 7, 7}), 0);
  EXPECT_EQ(fittedDegree(2, {1, 2, 3, 4}), 1);
  EXPECT_EQ(fittedDegree(0, {0, 1, 4, 9, 16}), 2);
  EXPECT_EQ(fittedDegree(0, {0, 1, 8, 27, 64}), 3);
}

TEST(Diagnostics, Accumulation) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "watch out");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 7}, "bad thing");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("error: 3:7: bad thing"), std::string::npos);
  EXPECT_NE(Text.find("warning: 1:2: watch out"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Diagnostics, UnknownLocation) {
  DiagnosticEngine Diags;
  Diags.error("free-floating");
  EXPECT_EQ(Diags.diagnostics()[0].str(), "error: free-floating");
}

//===----------------------------------------------------------------------===//
// Property sweeps for the exact arithmetic underpinning every degree
// claim in the evaluation: randomized field-axiom checks for Rational
// and fit-recovers-the-generator checks for PolyFit.
//===----------------------------------------------------------------------===//

#include <random>

namespace {

Rational randomRational(std::mt19937_64 &Rng) {
  int64_t Num = static_cast<int64_t>(Rng() % 2001) - 1000;
  int64_t Den = 1 + static_cast<int64_t>(Rng() % 50);
  return Rational(Num, Den);
}

} // namespace

class RationalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RationalProperty, FieldAxioms) {
  std::mt19937_64 Rng(GetParam());
  Rational A = randomRational(Rng), B = randomRational(Rng),
           C = randomRational(Rng);
  EXPECT_EQ(A + B, B + A);
  EXPECT_EQ(A * B, B * A);
  EXPECT_EQ((A + B) + C, A + (B + C));
  EXPECT_EQ((A * B) * C, A * (B * C));
  EXPECT_EQ(A * (B + C), A * B + A * C);
  EXPECT_EQ(A + Rational(0), A);
  EXPECT_EQ(A * Rational(1), A);
  EXPECT_EQ(A - A, Rational(0));
  EXPECT_EQ(A + (-A), Rational(0));
}

TEST_P(RationalProperty, OrderingConsistentWithDifference) {
  std::mt19937_64 Rng(GetParam() * 5 + 1);
  Rational A = randomRational(Rng), B = randomRational(Rng);
  EXPECT_EQ(A < B, (B - A).isNegative() == false && !(A == B));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalProperty,
                         ::testing::Range<uint64_t>(900, 915));

class PolyFitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolyFitProperty, FitRecoversGeneratingPolynomial) {
  // Sample a random integer polynomial of degree <= 4 at consecutive
  // points; the exact fit must reproduce the polynomial everywhere,
  // including outside the sample window.
  std::mt19937_64 Rng(GetParam());
  unsigned Degree = Rng() % 5;
  std::vector<int64_t> Coeffs(Degree + 1);
  for (auto &C : Coeffs)
    C = static_cast<int64_t>(Rng() % 201) - 100;

  auto Eval = [&](int64_t X) {
    int64_t Acc = 0, Pow = 1;
    for (int64_t C : Coeffs) {
      Acc += C * Pow;
      Pow *= X;
    }
    return Acc;
  };

  int64_t Start = static_cast<int64_t>(Rng() % 5) + 1;
  std::vector<int64_t> Values;
  for (int64_t X = Start; X != Start + 8; ++X)
    Values.push_back(Eval(X));

  Polynomial P = fitPolynomial(Start, Values);
  EXPECT_LE(P.degree(), static_cast<int>(Degree));
  for (int64_t X = 0; X != 20; ++X) {
    Rational V = P.evaluate(X);
    ASSERT_TRUE(V.isInteger()) << "x=" << X;
    EXPECT_EQ(V.asInteger(), Eval(X)) << "x=" << X;
  }
}

TEST_P(PolyFitProperty, DegreeIsMinimal) {
  // A genuinely degree-d series must not fit any lower degree: perturb
  // the fit by dropping its leading term and check disagreement.
  std::mt19937_64 Rng(GetParam() * 7 + 3);
  unsigned Degree = 1 + Rng() % 4;
  std::vector<int64_t> Coeffs(Degree + 1);
  for (auto &C : Coeffs)
    C = static_cast<int64_t>(Rng() % 100);
  Coeffs.back() = 1 + static_cast<int64_t>(Rng() % 100); // nonzero lead

  auto Eval = [&](int64_t X) {
    int64_t Acc = 0, Pow = 1;
    for (int64_t C : Coeffs) {
      Acc += C * Pow;
      Pow *= X;
    }
    return Acc;
  };
  std::vector<int64_t> Values;
  for (int64_t X = 2; X != 11; ++X)
    Values.push_back(Eval(X));
  EXPECT_EQ(fittedDegree(2, Values), static_cast<int>(Degree));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyFitProperty,
                         ::testing::Range<uint64_t>(950, 970));

//===----------------------------------------------------------------------===//
// Symbol interning (support/Symbol.h): the identity backbone of the
// middle end. Duplicate spellings must collapse to one id, distinct
// spellings must never collide, and spellings must survive arena growth.
//===----------------------------------------------------------------------===//

#include "support/Symbol.h"

TEST(Symbol, InterningDeduplicatesSpellings) {
  Symbol A("length");
  Symbol B(std::string("length"));
  Symbol C(std::string_view("length"));
  EXPECT_EQ(A, B);
  EXPECT_EQ(B, C);
  EXPECT_EQ(A.view(), "length");
}

TEST(Symbol, DistinctSpellingsGetDistinctIds) {
  Symbol A("x"), B("x'1"), C("x'2"), D("%e0");
  EXPECT_NE(A, B);
  EXPECT_NE(B, C);
  EXPECT_NE(A, D);
  EXPECT_EQ(B.str(), "x'1");
}

TEST(Symbol, EmptySymbolBehavesLikeEmptyString) {
  Symbol Default;
  Symbol Interned("");
  EXPECT_TRUE(Default.empty());
  EXPECT_EQ(Default, Interned);
  EXPECT_EQ(Default.id(), 0u);
  EXPECT_EQ(Default.view(), "");
  EXPECT_FALSE(Symbol("nonempty").empty());
}

TEST(Symbol, SpellingsSurviveTableGrowthAndLongNames) {
  // Force rehashes and multiple arena chunks; previously returned views
  // must stay valid and correct throughout.
  Symbol First("growth-probe-first");
  std::string_view FirstView = First.view();
  std::vector<Symbol> Many;
  for (int I = 0; I != 5000; ++I)
    Many.push_back(Symbol("growth-probe-" + std::to_string(I)));
  std::string Long(200000, 'q'); // Larger than one 64 KiB arena chunk.
  Symbol Big(Long);
  EXPECT_EQ(First.view(), FirstView);
  EXPECT_EQ(Big.view().size(), Long.size());
  for (int I = 0; I != 5000; ++I)
    EXPECT_EQ(Many[I].view(), "growth-probe-" + std::to_string(I));
}

TEST(SymbolSet, FlatSetOperations) {
  SymbolSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(Symbol("b")));
  EXPECT_TRUE(S.insert(Symbol("a")));
  EXPECT_FALSE(S.insert(Symbol("a"))) << "duplicate insert must be a no-op";
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.count(Symbol("a")));
  EXPECT_FALSE(S.count(Symbol("zz-not-there")));
  EXPECT_EQ(S.spellings(), (std::vector<std::string>{"a", "b"}));
}

TEST(SymbolSet, AdoptUnsortedSortsAndDedupes) {
  std::vector<Symbol> Raw{Symbol("w"), Symbol("q"), Symbol("w"),
                          Symbol("q"), Symbol("m")};
  SymbolSet S;
  S.adoptUnsorted(std::move(Raw));
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.spellings(), (std::vector<std::string>{"m", "q", "w"}));
  // Sorted by id, not spelling: ids are strictly increasing in interning
  // order, and membership relies on that invariant.
  uint32_t Prev = 0;
  for (Symbol Sym : S) {
    EXPECT_GT(Sym.id(), Prev);
    Prev = Sym.id();
  }
}

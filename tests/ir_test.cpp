//===----------------------------------------------------------------------===//
// Tests for the core IR: construction, printing, reversal, mod-sets.
//===----------------------------------------------------------------------===//

#include "ir/Core.h"

#include <gtest/gtest.h>

using namespace spire::ir;

namespace {

struct IrFixture : ::testing::Test {
  std::shared_ptr<TypeContext> Types = std::make_shared<TypeContext>();
  const spire::ast::Type *Bool = Types->boolType();
  const spire::ast::Type *UInt = Types->uintType();

  CoreStmtPtr assignConst(const std::string &X, uint64_t V) {
    return CoreStmt::assign(X, UInt,
                            CoreExpr::atom(Atom::constant(V, UInt)));
  }
  CoreStmtPtr assignVar(const std::string &X, const std::string &Y) {
    return CoreStmt::assign(X, UInt, CoreExpr::atom(Atom::var(Y, UInt)));
  }
};

} // namespace

TEST_F(IrFixture, AtomPrinting) {
  EXPECT_EQ(Atom::var("x", UInt).str(), "x");
  EXPECT_EQ(Atom::constant(42, UInt).str(), "42");
  EXPECT_EQ(Atom::constant(1, Bool).str(), "true");
  EXPECT_EQ(Atom::constant(0, Types->ptrType(UInt)).str(), "null");
  EXPECT_EQ(Atom::constant(3, Types->ptrType(UInt)).str(), "ptr[3]");
}

TEST_F(IrFixture, ExprPrinting) {
  CoreExpr E = CoreExpr::binary(spire::ast::BinaryOp::And,
                                Atom::var("x", Bool), Atom::var("y", Bool),
                                Bool);
  EXPECT_EQ(E.str(), "x && y");
  CoreExpr P = CoreExpr::proj(Atom::var("t", UInt), 2, UInt);
  EXPECT_EQ(P.str(), "t.2");
}

TEST_F(IrFixture, ReversalOfAssignIsUnassign) {
  CoreStmtPtr S = assignConst("x", 7);
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::UnAssign);
  EXPECT_EQ(R->Name, "x");
  CoreStmtPtr RR = reverseStmt(*R);
  EXPECT_TRUE(stmtEquals(*RR, *S));
}

TEST_F(IrFixture, ReversalReversesSequences) {
  CoreStmtList Seq;
  Seq.push_back(assignConst("a", 1));
  Seq.push_back(assignConst("b", 2));
  CoreStmtList Rev = reverseStmts(Seq);
  ASSERT_EQ(Rev.size(), 2u);
  EXPECT_EQ(Rev[0]->Name, "b");
  EXPECT_EQ(Rev[1]->Name, "a");
  EXPECT_EQ(Rev[0]->K, CoreStmt::Kind::UnAssign);
}

TEST_F(IrFixture, ReversalOfIfKeepsCondition) {
  CoreStmtList Body;
  Body.push_back(assignConst("x", 1));
  Body.push_back(assignConst("y", 2));
  CoreStmtPtr S = CoreStmt::ifStmt("c", std::move(Body));
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::If);
  EXPECT_EQ(R->Name, "c");
  ASSERT_EQ(R->Body.size(), 2u);
  EXPECT_EQ(R->Body[0]->Name, "y"); // reversed order
}

TEST_F(IrFixture, ReversalOfWithReversesOnlyDo) {
  // (a; b; I[a])^-1 = a; I[b]; I[a]: the with-block stays forward.
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 1));
  DoBody.push_back(assignConst("d1", 2));
  DoBody.push_back(assignConst("d2", 3));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::With);
  EXPECT_EQ(R->Body[0]->K, CoreStmt::Kind::Assign); // forward
  EXPECT_EQ(R->DoBody[0]->Name, "d2");              // reversed
  EXPECT_EQ(R->DoBody[0]->K, CoreStmt::Kind::UnAssign);
}

TEST_F(IrFixture, SwapAndHadamardSelfInverse) {
  CoreStmtPtr S1 = CoreStmt::swap("a", UInt, "b", UInt);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S1), *S1));
  CoreStmtPtr S2 = CoreStmt::hadamard("h", Bool);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S2), *S2));
  CoreStmtPtr S3 = CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S3), *S3));
}

TEST_F(IrFixture, ModSet) {
  CoreStmtList Seq;
  Seq.push_back(assignVar("x", "y"));
  Seq.push_back(CoreStmt::swap("a", UInt, "b", UInt));
  Seq.push_back(CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt));
  CoreStmtList IfBody;
  IfBody.push_back(assignConst("z", 1));
  Seq.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  std::set<std::string> Mods = modSet(Seq);
  EXPECT_EQ(Mods, (std::set<std::string>{"x", "a", "b", "v", "z"}));
}

TEST_F(IrFixture, AllVarsIncludesOperandsAndConditions) {
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::assign(
      "x", UInt,
      CoreExpr::binary(spire::ast::BinaryOp::Add, Atom::var("y", UInt),
                       Atom::var("z", UInt), UInt)));
  CoreStmtList Seq;
  Seq.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  std::set<std::string> Vars = allVars(Seq);
  EXPECT_EQ(Vars, (std::set<std::string>{"c", "x", "y", "z"}));
}

TEST_F(IrFixture, CloneIsDeepAndEqual) {
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 3));
  DoBody.push_back(CoreStmt::ifStmt("c", CoreStmtList()));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  CoreStmtPtr C = S->clone();
  EXPECT_TRUE(stmtEquals(*S, *C));
  C->Body[0]->Name = "mutated";
  EXPECT_FALSE(stmtEquals(*S, *C));
}

TEST_F(IrFixture, PrintingIsStable) {
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 1));
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::unassign(
      "q", UInt, CoreExpr::atom(Atom::constant(0, UInt))));
  DoBody.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  EXPECT_EQ(S->str(),
            "with {\n  w <- 1;\n} do {\n  if c {\n    q -> 0;\n  }\n}\n");
}

TEST_F(IrFixture, NameGenIsFresh) {
  NameGen Gen;
  std::string A = Gen.fresh("cf");
  std::string B = Gen.fresh("cf");
  EXPECT_NE(A, B);
  EXPECT_EQ(A.substr(0, 3), "%cf");
}

//===----------------------------------------------------------------------===//
// Iterative destruction: const-arg recursion lowers to IR whose
// with-block nesting grows with the recursion depth, and the ROADMAP's
// known limit was that destroying it recursed once per level. The
// worklist destructor must handle nesting far beyond any stack budget.
//===----------------------------------------------------------------------===//

namespace {

/// Builds `Depth` with-blocks nested inside each other's do-blocks
/// (the shape const-arg recursion produces), innermost holding one
/// assignment. Built iteratively, inside out.
CoreStmtPtr deeplyNestedWith(unsigned Depth, const spire::ast::Type *UInt) {
  CoreStmtPtr Inner = CoreStmt::assign(
      "x", UInt, CoreExpr::atom(Atom::constant(1, UInt)));
  for (unsigned I = 0; I != Depth; ++I) {
    CoreStmtList WithBody, DoBody;
    WithBody.push_back(CoreStmt::skip());
    DoBody.push_back(std::move(Inner));
    Inner = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  }
  return Inner;
}

} // namespace

TEST_F(IrFixture, DeeplyNestedStmtDestructionDoesNotOverflow) {
  // ~200k frames of member-wise destruction would need tens of MB of
  // stack; the worklist destructor needs O(1).
  CoreStmtPtr S = deeplyNestedWith(200000, UInt);
  ASSERT_EQ(S->K, CoreStmt::Kind::With);
  S.reset(); // Must not crash.
}

TEST_F(IrFixture, DeeplyNestedIfDestructionDoesNotOverflow) {
  CoreStmtPtr Inner = CoreStmt::skip();
  for (unsigned I = 0; I != 200000; ++I) {
    CoreStmtList Body;
    Body.push_back(std::move(Inner));
    Inner = CoreStmt::ifStmt("c", std::move(Body));
  }
  Inner.reset();
}

TEST_F(IrFixture, DestructionPreservesSiblingOrderSafety) {
  // A wide block of deep statements: every element drains through the
  // same worklist.
  CoreStmtList Block;
  for (unsigned I = 0; I != 64; ++I)
    Block.push_back(deeplyNestedWith(4000, UInt));
  Block.clear();
}

//===----------------------------------------------------------------------===//
// Tests for the core IR: construction, printing, reversal, mod-sets.
//===----------------------------------------------------------------------===//

#include "ir/Core.h"

#include <gtest/gtest.h>

using namespace spire::ir;

namespace {

struct IrFixture : ::testing::Test {
  std::shared_ptr<TypeContext> Types = std::make_shared<TypeContext>();
  const spire::ast::Type *Bool = Types->boolType();
  const spire::ast::Type *UInt = Types->uintType();

  CoreStmtPtr assignConst(const std::string &X, uint64_t V) {
    return CoreStmt::assign(X, UInt,
                            CoreExpr::atom(Atom::constant(V, UInt)));
  }
  CoreStmtPtr assignVar(const std::string &X, const std::string &Y) {
    return CoreStmt::assign(X, UInt, CoreExpr::atom(Atom::var(Y, UInt)));
  }
};

} // namespace

TEST_F(IrFixture, AtomPrinting) {
  EXPECT_EQ(Atom::var("x", UInt).str(), "x");
  EXPECT_EQ(Atom::constant(42, UInt).str(), "42");
  EXPECT_EQ(Atom::constant(1, Bool).str(), "true");
  EXPECT_EQ(Atom::constant(0, Types->ptrType(UInt)).str(), "null");
  EXPECT_EQ(Atom::constant(3, Types->ptrType(UInt)).str(), "ptr[3]");
}

TEST_F(IrFixture, ExprPrinting) {
  CoreExpr E = CoreExpr::binary(spire::ast::BinaryOp::And,
                                Atom::var("x", Bool), Atom::var("y", Bool),
                                Bool);
  EXPECT_EQ(E.str(), "x && y");
  CoreExpr P = CoreExpr::proj(Atom::var("t", UInt), 2, UInt);
  EXPECT_EQ(P.str(), "t.2");
}

TEST_F(IrFixture, ReversalOfAssignIsUnassign) {
  CoreStmtPtr S = assignConst("x", 7);
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::UnAssign);
  EXPECT_EQ(R->Name, "x");
  CoreStmtPtr RR = reverseStmt(*R);
  EXPECT_TRUE(stmtEquals(*RR, *S));
}

TEST_F(IrFixture, ReversalReversesSequences) {
  CoreStmtList Seq;
  Seq.push_back(assignConst("a", 1));
  Seq.push_back(assignConst("b", 2));
  CoreStmtList Rev = reverseStmts(Seq);
  ASSERT_EQ(Rev.size(), 2u);
  EXPECT_EQ(Rev[0]->Name, "b");
  EXPECT_EQ(Rev[1]->Name, "a");
  EXPECT_EQ(Rev[0]->K, CoreStmt::Kind::UnAssign);
}

TEST_F(IrFixture, ReversalOfIfKeepsCondition) {
  CoreStmtList Body;
  Body.push_back(assignConst("x", 1));
  Body.push_back(assignConst("y", 2));
  CoreStmtPtr S = CoreStmt::ifStmt("c", std::move(Body));
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::If);
  EXPECT_EQ(R->Name, "c");
  ASSERT_EQ(R->Body.size(), 2u);
  EXPECT_EQ(R->Body[0]->Name, "y"); // reversed order
}

TEST_F(IrFixture, ReversalOfWithReversesOnlyDo) {
  // (a; b; I[a])^-1 = a; I[b]; I[a]: the with-block stays forward.
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 1));
  DoBody.push_back(assignConst("d1", 2));
  DoBody.push_back(assignConst("d2", 3));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  CoreStmtPtr R = reverseStmt(*S);
  EXPECT_EQ(R->K, CoreStmt::Kind::With);
  EXPECT_EQ(R->Body[0]->K, CoreStmt::Kind::Assign); // forward
  EXPECT_EQ(R->DoBody[0]->Name, "d2");              // reversed
  EXPECT_EQ(R->DoBody[0]->K, CoreStmt::Kind::UnAssign);
}

TEST_F(IrFixture, SwapAndHadamardSelfInverse) {
  CoreStmtPtr S1 = CoreStmt::swap("a", UInt, "b", UInt);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S1), *S1));
  CoreStmtPtr S2 = CoreStmt::hadamard("h", Bool);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S2), *S2));
  CoreStmtPtr S3 = CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt);
  EXPECT_TRUE(stmtEquals(*reverseStmt(*S3), *S3));
}

TEST_F(IrFixture, ModSet) {
  CoreStmtList Seq;
  Seq.push_back(assignVar("x", "y"));
  Seq.push_back(CoreStmt::swap("a", UInt, "b", UInt));
  Seq.push_back(CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt));
  CoreStmtList IfBody;
  IfBody.push_back(assignConst("z", 1));
  Seq.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  SymbolSet Mods = modSet(Seq);
  EXPECT_EQ(Mods.spellings(),
            (std::vector<std::string>{"a", "b", "v", "x", "z"}));
}

TEST_F(IrFixture, AllVarsIncludesOperandsAndConditions) {
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::assign(
      "x", UInt,
      CoreExpr::binary(spire::ast::BinaryOp::Add, Atom::var("y", UInt),
                       Atom::var("z", UInt), UInt)));
  CoreStmtList Seq;
  Seq.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  SymbolSet Vars = allVars(Seq);
  EXPECT_EQ(Vars.spellings(),
            (std::vector<std::string>{"c", "x", "y", "z"}));
}

TEST_F(IrFixture, CloneIsDeepAndEqual) {
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 3));
  DoBody.push_back(CoreStmt::ifStmt("c", CoreStmtList()));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  CoreStmtPtr C = S->clone();
  EXPECT_TRUE(stmtEquals(*S, *C));
  C->Body[0]->Name = "mutated";
  EXPECT_FALSE(stmtEquals(*S, *C));
}

TEST_F(IrFixture, PrintingIsStable) {
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst("w", 1));
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::unassign(
      "q", UInt, CoreExpr::atom(Atom::constant(0, UInt))));
  DoBody.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  CoreStmtPtr S = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  EXPECT_EQ(S->str(),
            "with {\n  w <- 1;\n} do {\n  if c {\n    q -> 0;\n  }\n}\n");
}

TEST_F(IrFixture, NameGenIsFresh) {
  NameGen Gen;
  Symbol A = Gen.fresh("cf");
  Symbol B = Gen.fresh("cf");
  EXPECT_NE(A, B);
  EXPECT_EQ(A.view().substr(0, 3), "%cf");
}

//===----------------------------------------------------------------------===//
// Iterative destruction: const-arg recursion lowers to IR whose
// with-block nesting grows with the recursion depth, and the ROADMAP's
// known limit was that destroying it recursed once per level. The
// worklist destructor must handle nesting far beyond any stack budget.
//===----------------------------------------------------------------------===//

namespace {

/// Builds `Depth` with-blocks nested inside each other's do-blocks
/// (the shape const-arg recursion produces), innermost holding one
/// assignment. Built iteratively, inside out.
CoreStmtPtr deeplyNestedWith(unsigned Depth, const spire::ast::Type *UInt) {
  CoreStmtPtr Inner = CoreStmt::assign(
      "x", UInt, CoreExpr::atom(Atom::constant(1, UInt)));
  for (unsigned I = 0; I != Depth; ++I) {
    CoreStmtList WithBody, DoBody;
    WithBody.push_back(CoreStmt::skip());
    DoBody.push_back(std::move(Inner));
    Inner = CoreStmt::with(std::move(WithBody), std::move(DoBody));
  }
  return Inner;
}

} // namespace

TEST_F(IrFixture, DeeplyNestedStmtDestructionDoesNotOverflow) {
  // ~200k frames of member-wise destruction would need tens of MB of
  // stack; the worklist destructor needs O(1).
  CoreStmtPtr S = deeplyNestedWith(200000, UInt);
  ASSERT_EQ(S->K, CoreStmt::Kind::With);
  S.reset(); // Must not crash.
}

TEST_F(IrFixture, DeeplyNestedIfDestructionDoesNotOverflow) {
  CoreStmtPtr Inner = CoreStmt::skip();
  for (unsigned I = 0; I != 200000; ++I) {
    CoreStmtList Body;
    Body.push_back(std::move(Inner));
    Inner = CoreStmt::ifStmt("c", std::move(Body));
  }
  Inner.reset();
}

TEST_F(IrFixture, DestructionPreservesSiblingOrderSafety) {
  // A wide block of deep statements: every element drains through the
  // same worklist.
  CoreStmtList Block;
  for (unsigned I = 0; I != 64; ++I)
    Block.push_back(deeplyNestedWith(4000, UInt));
  Block.clear();
}

//===----------------------------------------------------------------------===//
// Recursion-free walkers: every IR traversal (printing, clone, reversal,
// equality, analyses) runs on an explicit worklist, so depth-200k
// with-nesting — the const-arg-recursion shape — must pass through each
// of them with bounded C++ stack, same guard style as the destructor
// tests above.
//===----------------------------------------------------------------------===//

TEST_F(IrFixture, DeeplyNestedPrintingDoesNotOverflow) {
  CoreStmtPtr S = deeplyNestedWith(200000, UInt);
  std::string Text = S->str();
  // Header and footer of every level plus the innermost assignment.
  EXPECT_EQ(Text.substr(0, 7), "with {\n");
  EXPECT_NE(Text.find("x <- 1;"), std::string::npos);
  // Each level prints "with {", "skip;", "} do {", "}" once.
  EXPECT_GT(Text.size(), 200000u * 4);
}

TEST_F(IrFixture, DeeplyNestedCloneAndEqualityDoNotOverflow) {
  CoreStmtPtr S = deeplyNestedWith(200000, UInt);
  CoreStmtPtr C = S->clone();
  // The positive comparison walks all 200k levels.
  EXPECT_TRUE(stmtEquals(*S, *C));
  C->DoBody[0]->Name = "mutated";
  EXPECT_FALSE(stmtEquals(*S, *C));
}

TEST_F(IrFixture, DeeplyNestedReversalDoesNotOverflow) {
  CoreStmtPtr S = deeplyNestedWith(200000, UInt);
  CoreStmtPtr R = reverseStmt(*S);
  ASSERT_EQ(R->K, CoreStmt::Kind::With);
  // I[with{a}do{b}] = with{a}do{I[b]}: the innermost assignment becomes
  // an un-assignment; spot-check the first few levels stay with-blocks.
  const CoreStmt *Cursor = R.get();
  for (int I = 0; I != 5; ++I) {
    ASSERT_EQ(Cursor->K, CoreStmt::Kind::With);
    ASSERT_EQ(Cursor->DoBody.size(), 1u);
    Cursor = Cursor->DoBody[0].get();
  }
}

TEST_F(IrFixture, DeeplyNestedAnalysesDoNotOverflow) {
  CoreStmtList Seq;
  Seq.push_back(deeplyNestedWith(200000, UInt));
  SymbolSet Mods = modSet(Seq);
  EXPECT_TRUE(Mods.count(Symbol("x")));
  SymbolSet Vars = allVars(Seq);
  EXPECT_TRUE(Vars.count(Symbol("x")));
  EXPECT_EQ(Vars.size(), 1u); // skip and with contribute no names.
}

//===----------------------------------------------------------------------===//
// Symbol-level IR behavior: interning must not break name freshness or
// printing.
//===----------------------------------------------------------------------===//

TEST_F(IrFixture, NameGenFreshAfterPreInterning) {
  // Interning a future fresh spelling up front must not perturb the
  // generator: the sigil-prefixed names are unique among themselves by
  // counter, and identical spellings *should* collapse to one Symbol.
  Symbol Pre("%cf0");
  NameGen Gen;
  Symbol A = Gen.fresh("cf");
  Symbol B = Gen.fresh("cf");
  EXPECT_EQ(A, Pre) << "same spelling must intern to the same symbol";
  EXPECT_NE(A, B);
  EXPECT_EQ(B.view(), "%cf1");
}

TEST_F(IrFixture, DuplicateSpellingsAcrossStatementsShareSymbols) {
  // Two statements naming "dup" in different blocks refer to the same
  // interned symbol — identity is spelling-level, scoping is the
  // lowerer's job (it uniquifies before building IR).
  CoreStmtPtr S1 = assignConst("dup", 1);
  CoreStmtList Body;
  Body.push_back(assignConst("dup", 2));
  CoreStmtPtr S2 = CoreStmt::ifStmt("c", std::move(Body));
  EXPECT_EQ(S1->Name, S2->Body[0]->Name);
  EXPECT_EQ(S1->Name.view(), "dup");
}

TEST_F(IrFixture, PrintingMaterializesCorrectSpellings) {
  // Symbols print their exact spelling at the str() boundary, including
  // uniquified and generator-produced names.
  CoreStmtPtr S = assignConst("x'1", 3);
  EXPECT_EQ(S->str(), "x'1 <- 3;\n");
  NameGen Gen;
  CoreStmtPtr T = CoreStmt::hadamard(Gen.fresh("h"), Bool);
  EXPECT_EQ(T->str(), "H(%h0);\n");
}

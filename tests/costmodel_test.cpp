//===----------------------------------------------------------------------===//
// Cost-model tests: Theorems 5.1 and 5.2 instantiated exactly against the
// backend, on hand-written programs, random programs, and the full
// benchmark suite; plus the paper's worked Section 3.4 relations.
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "benchmarks/Benchmarks.h"
#include "costmodel/CostModel.h"
#include "decompose/Decompose.h"
#include "opt/Spire.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::ir;

namespace {

circuit::TargetConfig Config;

costmodel::Cost predicted(const CoreProgram &P) {
  return costmodel::analyzeProgram(P, Config);
}

costmodel::Cost measured(const CoreProgram &P) {
  circuit::CompileResult R = circuit::compileToCircuit(P, Config);
  circuit::GateCounts Counts = circuit::countGates(R.Circ);
  return {Counts.Total, Counts.TComplexity};
}

} // namespace

TEST(CostModel, PaperConstants) {
  EXPECT_EQ(costmodel::CCtrl, 14); // 2 Toffolis x 7 T (Section 5)
  EXPECT_EQ(costmodel::CCH, 8);    // Lee et al. 2021
}

TEST(CostModel, SkipAndZeroAssignAreFree) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.OutputVar = "x";
  P.OutputTy = UInt;
  P.Body.push_back(CoreStmt::skip());
  // x <- 0 with an all-zero bit pattern emits no gates (Section 5).
  P.Body.push_back(
      CoreStmt::assign("x", UInt, CoreExpr::atom(Atom::constant(0, UInt))));
  costmodel::Cost C = predicted(P);
  EXPECT_EQ(C.MCX, 0);
  EXPECT_EQ(C.T, 0);
  EXPECT_EQ(measured(P).MCX, 0);
}

TEST(CostModel, ControlledConstantAssignIsTFree) {
  // C_T(if x { y <- v }) = 0: X under one control is CNOT (Clifford).
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"c", Bool}};
  P.OutputVar = "y";
  P.OutputTy = UInt;
  CoreStmtList Body;
  Body.push_back(
      CoreStmt::assign("y", UInt, CoreExpr::atom(Atom::constant(5, UInt))));
  P.Body.push_back(CoreStmt::ifStmt("c", std::move(Body)));
  costmodel::Cost C = predicted(P);
  EXPECT_GT(C.MCX, 0);
  EXPECT_EQ(C.T, 0);
  EXPECT_EQ(measured(P).T, 0);
}

TEST(CostModel, NestedControlledConstantCostsT) {
  // Two levels of if make the constant writes Toffolis: 7 T per set bit.
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"c1", Bool}, {"c2", Bool}};
  P.OutputVar = "y";
  P.OutputTy = UInt;
  CoreStmtList Inner;
  Inner.push_back(
      CoreStmt::assign("y", UInt, CoreExpr::atom(Atom::constant(3, UInt))));
  CoreStmtList Outer;
  Outer.push_back(CoreStmt::ifStmt("c2", std::move(Inner)));
  P.Body.push_back(CoreStmt::ifStmt("c1", std::move(Outer)));
  costmodel::Cost C = predicted(P);
  EXPECT_EQ(C.T, 2 * 7); // two set bits, each an X with 2 controls
  EXPECT_EQ(measured(P).T, C.T);
}

TEST(CostModel, ControlledHadamardCostsCCH) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"c", Bool}, {"y", Bool}};
  P.OutputVar = "y";
  P.OutputTy = Bool;
  CoreStmtList Body;
  Body.push_back(CoreStmt::hadamard("y", Bool));
  P.Body.push_back(CoreStmt::ifStmt("c", std::move(Body)));
  EXPECT_EQ(predicted(P).T, costmodel::CCH);
}

TEST(CostModel, WithBlockCountsReversalOnce) {
  // with { s1 } do { s2 } expands to s1; s2; I[s1]: cost 2*C(s1)+C(s2).
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"a", UInt}};
  P.OutputVar = "d";
  P.OutputTy = UInt;
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(
      CoreStmt::assign("w", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  DoBody.push_back(
      CoreStmt::assign("d", UInt, CoreExpr::atom(Atom::var("w", UInt))));
  P.Body.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  // A copy of one 8-bit register is 8 CNOTs; with-forward + do + reverse.
  EXPECT_EQ(predicted(P).MCX, 8 + 8 + 8);
  EXPECT_EQ(measured(P).MCX, 24);
}

TEST(CostModel, ExactOnAllBenchmarks) {
  for (const auto &B : benchmarks::allBenchmarks()) {
    for (int64_t N : {2, 4}) {
      if (!B.SizeIndexed && N != 2)
        continue;
      CoreProgram P = benchmarks::lowerBenchmark(B, N);
      costmodel::Cost Pred = predicted(P);
      costmodel::Cost Meas = measured(P);
      EXPECT_EQ(Pred.MCX, Meas.MCX) << B.Name << " n=" << N;
      EXPECT_EQ(Pred.T, Meas.T) << B.Name << " n=" << N;
    }
  }
}

TEST(CostModel, ExactOnOptimizedBenchmarks) {
  for (const auto &B : benchmarks::allBenchmarks()) {
    CoreProgram P = benchmarks::lowerBenchmark(B, 3);
    CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::all());
    EXPECT_EQ(predicted(O).MCX, measured(O).MCX) << B.Name;
    EXPECT_EQ(predicted(O).T, measured(O).T) << B.Name;
  }
}

class CostModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostModelProperty, ExactOnRandomPrograms) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(16);
  costmodel::Cost Pred = predicted(P);
  costmodel::Cost Meas = measured(P);
  EXPECT_EQ(Pred.MCX, Meas.MCX) << "seed " << GetParam();
  EXPECT_EQ(Pred.T, Meas.T) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelProperty,
                         ::testing::Range<uint64_t>(100, 125));

TEST(CostModel, TMatchesFullyDecomposedCircuit) {
  // The T prediction equals the literal T gate count after Clifford+T
  // decomposition, not just the counting rule at the MCX level.
  CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthSimplified(), 3);
  circuit::CompileResult R = circuit::compileToCircuit(P, Config);
  circuit::Circuit CT = decompose::toCliffordT(R.Circ);
  EXPECT_EQ(predicted(P).T, circuit::countGates(CT).T);
}

TEST(CostModel, Section34Recurrence) {
  // Section 3.4: C_T(n) - C_T(n-1) grows linearly in n (the
  // C_MCX(n-1) control-flow term), so the second difference of C_T is a
  // positive constant while C_MCX's first difference is constant.
  std::vector<int64_t> MCX, T;
  for (int N = 2; N <= 7; ++N) {
    CoreProgram P =
        benchmarks::lowerBenchmark(benchmarks::lengthBenchmark(), N);
    costmodel::Cost C = predicted(P);
    MCX.push_back(C.MCX);
    T.push_back(C.T);
  }
  for (size_t I = 2; I < MCX.size(); ++I) {
    EXPECT_EQ(MCX[I] - MCX[I - 1], MCX[1] - MCX[0]) << "MCX linear";
    int64_t D2 = (T[I] - T[I - 1]) - (T[I - 1] - T[I - 2]);
    int64_t D2First = (T[2] - T[1]) - (T[1] - T[0]);
    EXPECT_EQ(D2, D2First) << "T second difference constant";
    EXPECT_GT(D2, 0);
  }
}

//===----------------------------------------------------------------------===//
// Control merging: when an if condition is itself read by the body, the
// compiled gate carries that qubit once, not twice; the model must match
// the circuit exactly in that case too.
//===----------------------------------------------------------------------===//

TEST(CostModel, ConditionReadInBodyMergesControls) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"b0", Bool}, {"b1", Bool}};
  P.OutputVar = "v";
  P.OutputTy = Bool;
  // if b0 { v <- b0 && b1 }: the && gate is controlled by b0 and b1
  // already; the if adds b0 again, which merges.
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "v", Bool,
      CoreExpr::binary(ast::BinaryOp::And, Atom::var("b0", Bool),
                       Atom::var("b1", Bool), Bool)));
  P.Body.push_back(CoreStmt::ifStmt("b0", std::move(Body)));
  EXPECT_EQ(predicted(P).T, measured(P).T);
  // The gate stays a Toffoli (7 T), not a 3-control MCX (21 T).
  EXPECT_EQ(measured(P).T, 7);
}

TEST(CostModel, NestedSameConditionCountsOnce) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *Bool = Types->boolType();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"x", Bool}, {"a", UInt}};
  P.OutputVar = "t";
  P.OutputTy = UInt;
  // if x { if x { t <- a } }: one control bit, not two.
  CoreStmtList Inner;
  Inner.push_back(CoreStmt::assign(
      "t", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  CoreStmtList Outer;
  Outer.push_back(CoreStmt::ifStmt("x", std::move(Inner)));
  P.Body.push_back(CoreStmt::ifStmt("x", std::move(Outer)));
  EXPECT_EQ(predicted(P), measured(P));
  // The copy is 8 CNOTs (control a_i); the merged condition adds exactly
  // one control, making 8 Toffolis — not the 8 three-control MCX gates a
  // depth-2 count would give.
  EXPECT_EQ(measured(P).T, 8 * circuit::tCostOfMCX(2));
}

TEST(CostModel, DistinctConditionOverCoincidingOne) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"b0", Bool}, {"b1", Bool}, {"c", Bool}};
  P.OutputVar = "v";
  P.OutputTy = Bool;
  // if c { if b0 { v <- b0 && b1 } }: c is fresh, b0 merges.
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "v", Bool,
      CoreExpr::binary(ast::BinaryOp::And, Atom::var("b0", Bool),
                       Atom::var("b1", Bool), Bool)));
  CoreStmtList Mid;
  Mid.push_back(CoreStmt::ifStmt("b0", std::move(Body)));
  P.Body.push_back(CoreStmt::ifStmt("c", std::move(Mid)));
  EXPECT_EQ(predicted(P), measured(P));
  EXPECT_EQ(measured(P).T, circuit::tCostOfMCX(3));
}

//===----------------------------------------------------------------------===//
// Tests for the observability layer (src/obs): the JSON writer, the
// metrics registry (including its concurrency guarantees — run under
// TSan in CI), the flight-recorder tracer, and the golden stage-span
// skeleton every paper benchmark must produce through the pipeline.
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "driver/Pipeline.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "qopt/Passes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace spire;

namespace {

/// Counts non-overlapping occurrences of \p Needle in \p S.
size_t countOccurrences(const std::string &S, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = S.find(Needle); At != std::string::npos;
       At = S.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

/// Walks an event list asserting stack discipline per tid: every 'E'
/// closes the innermost open 'B' of the same name, timestamps never go
/// backwards, and nothing stays open at the end.
void expectBalanced(const std::vector<obs::TraceEvent> &Events) {
  std::map<uint32_t, std::vector<const char *>> Open;
  uint64_t LastTs = 0;
  for (const obs::TraceEvent &E : Events) {
    EXPECT_GE(E.TsNs, LastTs) << "timestamps must be monotonic";
    LastTs = E.TsNs;
    if (E.Phase == 'B') {
      Open[E.Tid].push_back(E.Name);
    } else {
      ASSERT_EQ(E.Phase, 'E');
      ASSERT_FALSE(Open[E.Tid].empty()) << "E '" << E.Name
                                        << "' with no open span";
      EXPECT_STREQ(Open[E.Tid].back(), E.Name);
      Open[E.Tid].pop_back();
    }
  }
  for (const auto &Entry : Open)
    EXPECT_TRUE(Entry.second.empty()) << "span left open: "
                                      << Entry.second.back();
}

} // namespace

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter W(0);
  W.beginObject();
  W.kv("quote\"back\\slash", "tab\there\nnewline");
  W.kv("ctl", std::string_view("\x01", 1));
  W.endObject();
  EXPECT_TRUE(W.complete());
  EXPECT_EQ(W.take(),
            "{\"quote\\\"back\\\\slash\":\"tab\\there\\nnewline\","
            "\"ctl\":\"\\u0001\"}");
}

TEST(JsonWriter, NestingAndTypes) {
  obs::JsonWriter W(0);
  W.beginObject();
  W.key("arr");
  W.beginArray();
  W.value(int64_t(-3));
  W.value(uint64_t(7));
  W.value(true);
  W.value(1.5, 3);
  W.beginObject();
  W.kv("inner", "x");
  W.endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.take(), "{\"arr\":[-3,7,true,1.5,{\"inner\":\"x\"}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter W(0);
  W.beginObject();
  W.kv("nan", 0.0 / 0.0, 6);
  W.endObject();
  EXPECT_EQ(W.take(), "{\"nan\":null}");
}

TEST(JsonWriter, IndentedModePrettyPrints) {
  obs::JsonWriter W(2);
  W.beginObject();
  W.kv("a", int64_t(1));
  W.endObject();
  EXPECT_EQ(W.take(), "{\n  \"a\": 1\n}");
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Registry, CounterGaugeHistogramBasics) {
  obs::Registry R;
  obs::Registry::Counter C = R.counter("test.counter");
  C += 5;
  ++C;
  EXPECT_EQ(C.value(), 6);

  obs::Registry::Gauge G = R.gauge("test.gauge");
  G.set(42);
  G.max(10); // below: no change
  EXPECT_EQ(G.value(), 42);
  G.max(99);
  EXPECT_EQ(G.value(), 99);

  obs::Registry::Histogram H = R.histogram("test.hist");
  H.observe(2.0);
  H.observe(8.0);
  EXPECT_EQ(H.count(), 2);
  EXPECT_DOUBLE_EQ(H.sum(), 10.0);

  std::vector<obs::MetricSample> Snap = R.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  // Sorted by name: counter, gauge, hist.
  EXPECT_EQ(Snap[0].Name, "test.counter");
  EXPECT_EQ(Snap[0].Value, 6);
  EXPECT_EQ(Snap[1].Name, "test.gauge");
  EXPECT_EQ(Snap[1].Value, 99);
  EXPECT_EQ(Snap[2].Name, "test.hist");
  EXPECT_EQ(Snap[2].Count, 2);
  EXPECT_DOUBLE_EQ(Snap[2].Min, 2.0);
  EXPECT_DOUBLE_EQ(Snap[2].Max, 8.0);
}

TEST(Registry, SameNameReturnsSameCell) {
  obs::Registry R;
  obs::Registry::Counter A = R.counter("shared");
  obs::Registry::Counter B = R.counter("shared");
  A += 3;
  B += 4;
  EXPECT_EQ(A.value(), 7);
  EXPECT_EQ(B.value(), 7);
}

TEST(Registry, KindMismatchYieldsInertHandle) {
  obs::Registry R;
  obs::Registry::Counter C = R.counter("typed");
  C += 9;
  obs::Registry::Gauge G = R.gauge("typed"); // wrong kind: inert
  G.set(1000);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(C.value(), 9) << "mismatched re-request must not corrupt";
}

TEST(Registry, DefaultHandlesAreInert) {
  obs::Registry::Counter C;
  obs::Registry::Gauge G;
  obs::Registry::Histogram H;
  ++C;
  G.set(5);
  G.max(5);
  H.observe(1.0);
  EXPECT_EQ(C.value(), 0);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0);
}

TEST(Registry, ResetKeepsHandlesValid) {
  obs::Registry R;
  obs::Registry::Counter C = R.counter("resettable");
  C += 7;
  R.reset();
  EXPECT_EQ(C.value(), 0);
  ++C;
  EXPECT_EQ(C.value(), 1);
}

TEST(Registry, EmptyHistogramSnapshotsToZero) {
  obs::Registry R;
  (void)R.histogram("empty.hist");
  std::vector<obs::MetricSample> Snap = R.snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(Snap[0].Count, 0);
  EXPECT_DOUBLE_EQ(Snap[0].Min, 0.0);
  EXPECT_DOUBLE_EQ(Snap[0].Max, 0.0);
}

/// The concurrency contract the ROADMAP's sharded-pass work relies on:
/// increments from many threads — through shared and per-thread handles,
/// with lookups racing updates — lose nothing. TSan runs this in CI.
TEST(Registry, ConcurrentIncrementsAreExact) {
  obs::Registry R;
  constexpr int Threads = 8;
  constexpr int PerThread = 20000;
  obs::Registry::Counter Shared = R.counter("concurrent.counter");
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&R, Shared]() mutable {
      obs::Registry::Counter Mine = R.counter("concurrent.counter");
      obs::Registry::Histogram H = R.histogram("concurrent.hist");
      for (int I = 0; I != PerThread; ++I) {
        ++Shared;
        ++Mine;
        H.observe(1.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(R.counter("concurrent.counter").value(),
            int64_t(2) * Threads * PerThread);
  EXPECT_EQ(R.histogram("concurrent.hist").count(),
            int64_t(Threads) * PerThread);
}

TEST(OptStats, ConcurrentUpdatesAreExact) {
  qopt::OptStats Stats;
  constexpr int Threads = 8;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&Stats] {
      for (int I = 0; I != PerThread; ++I) {
        Stats.CancelledPairs += 1;
        ++Stats.WorklistVisits;
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Stats.CancelledPairs.value(), int64_t(Threads) * PerThread);
  EXPECT_EQ(Stats.WorklistVisits.value(), int64_t(Threads) * PerThread);

  // Copies snapshot values — OptStats stays a value type.
  qopt::OptStats Copy = Stats;
  Stats.CancelledPairs += 1;
  EXPECT_EQ(Copy.CancelledPairs.value(), int64_t(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer T;
  EXPECT_FALSE(T.enabled());
  T.begin("never");
  T.end("never");
  {
    obs::Span Sp("never-span", T);
    Sp.arg("k", 1);
  }
  EXPECT_TRUE(T.events().empty());
  EXPECT_EQ(T.droppedEvents(), 0u);
}

TEST(Tracer, SpansNestAndCarryArgs) {
  obs::Tracer T;
  T.enable();
  {
    obs::Span Outer("outer", T);
    Outer.arg("gates", 128);
    {
      obs::Span Inner("inner", T);
      Inner.arg("visits", 7);
    }
  }
  T.disable();
  std::vector<obs::TraceEvent> Events = T.events();
  ASSERT_EQ(Events.size(), 4u);
  expectBalanced(Events);
  // B outer, B inner, E inner (args), E outer (args).
  EXPECT_STREQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[0].Phase, 'B');
  EXPECT_EQ(Events[0].NumArgs, 0u) << "args attach to the end event";
  EXPECT_STREQ(Events[2].Name, "inner");
  EXPECT_EQ(Events[2].Phase, 'E');
  ASSERT_EQ(Events[2].NumArgs, 1u);
  EXPECT_STREQ(Events[2].Args[0].Key, "visits");
  EXPECT_EQ(Events[2].Args[0].Value, 7);
  ASSERT_EQ(Events[3].NumArgs, 1u);
  EXPECT_EQ(Events[3].Args[0].Value, 128);
}

TEST(Tracer, RingWraparoundStaysBalancedInJson) {
  obs::Tracer T;
  T.enable(/*Capacity=*/16);
  {
    obs::Span Outer("outer", T);
    for (int I = 0; I != 40; ++I)
      obs::Span Inner("inner", T);
  }
  T.disable();
  EXPECT_GT(T.droppedEvents(), 0u);
  EXPECT_EQ(T.events().size(), 16u);

  std::string Json = T.chromeTraceJson();
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"B\""),
            countOccurrences(Json, "\"ph\":\"E\""))
      << "the writer must repair balance at the wraparound cut:\n"
      << Json;
  EXPECT_NE(Json.find("\"dropped_events\":"), std::string::npos);
}

TEST(Tracer, OpenSpansGetSyntheticCloses) {
  obs::Tracer T;
  T.enable();
  T.begin("left-open");
  T.begin("also-open");
  std::string Json = T.chromeTraceJson();
  T.disable();
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"E\""), 2u);
}

TEST(Tracer, EnableClearsPreviousRun) {
  obs::Tracer T;
  T.enable();
  {
    obs::Span Sp("stale", T);
  }
  T.enable();
  EXPECT_TRUE(T.events().empty());
  EXPECT_EQ(T.droppedEvents(), 0u);
  T.disable();
}

//===----------------------------------------------------------------------===//
// Pipeline integration: the golden span skeleton and the metrics report
//===----------------------------------------------------------------------===//

namespace {

driver::PipelineOptions benchOptions(const benchmarks::BenchmarkProgram &B) {
  driver::PipelineOptions Opts =
      driver::PipelineOptions::forEntry(B.Entry, B.SizeIndexed ? 2 : 0);
  Opts.BuildCircuit = true;
  Opts.CircuitOpt = driver::CircuitOptimizerKind::CliffordTCancel;
  Opts.StopAfter = driver::Stage::Qopt;
  return Opts;
}

} // namespace

/// Every paper benchmark, compiled with a circuit optimizer under
/// tracing, must produce the same stage-span skeleton: the six pipeline
/// stages in order, each qopt pass nested inside the qopt stage, all
/// balanced and monotonic.
TEST(ObsPipeline, GoldenStageSpanSkeletonOnAllBenchmarks) {
  const char *ExpectedStages[] = {"parse",           "typecheck",
                                  "lower",           "spire-opt",
                                  "circuit-compile", "qopt"};
  const char *ExpectedPasses[] = {"qopt/decompose-clifford+t",
                                  "qopt/cancel-standard",
                                  "qopt/phase-fold"};
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    obs::Tracer &T = obs::Tracer::global();
    T.enable();
    driver::CompilationPipeline Pipeline(benchOptions(B));
    driver::CompilationResult R = Pipeline.run(B.Source);
    T.disable();
    ASSERT_TRUE(R.succeeded())
        << B.Name << ": " << R.Diags.str();

    std::vector<obs::TraceEvent> Events = T.events();
    expectBalanced(Events);

    // Stage spans appear in pipeline order.
    std::vector<std::string> StageOrder;
    std::set<std::string> Names;
    for (const obs::TraceEvent &E : Events) {
      if (E.Phase != 'B')
        continue;
      Names.insert(E.Name);
      // Stage spans are the only ones without a '/' qualifier.
      if (std::string(E.Name).find('/') == std::string::npos)
        StageOrder.push_back(E.Name);
    }
    EXPECT_EQ(StageOrder,
              std::vector<std::string>(std::begin(ExpectedStages),
                                       std::end(ExpectedStages)))
        << B.Name << ": stage spans out of order or missing";
    for (const char *P : ExpectedPasses)
      EXPECT_TRUE(Names.count(P))
          << B.Name << ": missing pass span " << P;

    // Each qopt pass span nests inside the qopt stage span.
    int Depth = 0;
    for (const obs::TraceEvent &E : Events) {
      std::string Name = E.Name;
      if (Name == "qopt") {
        Depth += E.Phase == 'B' ? 1 : -1;
      } else if (Name.rfind("qopt/", 0) == 0 && E.Phase == 'B') {
        EXPECT_EQ(Depth, 1) << B.Name << ": " << Name
                            << " outside the qopt stage span";
      }
    }

    // The qopt stage end-event carries the work counters.
    bool SawQoptArgs = false;
    for (const obs::TraceEvent &E : Events)
      if (E.Phase == 'E' && std::string(E.Name) == "qopt") {
        for (unsigned I = 0; I != E.NumArgs; ++I)
          if (std::string(E.Args[I].Key) == "gates_out")
            SawQoptArgs = true;
      }
    EXPECT_TRUE(SawQoptArgs)
        << B.Name << ": qopt end event lost its work-counter args";
  }
}

/// renderMetricsJson is the machine-readable superset of --timings:
/// every executed stage, the qopt counters, and the registry metrics
/// --timings summarizes must all appear.
TEST(ObsPipeline, MetricsJsonIsSupersetOfTimings) {
  const benchmarks::BenchmarkProgram &B = benchmarks::lengthSimplified();
  driver::PipelineOptions Opts = benchOptions(B);
  // Run through Estimate with verification on so the lazily registered
  // metrics (cost-model cache, verifier counters) exist in the snapshot.
  Opts.StopAfter = driver::Stage::Estimate;
  Opts.VerifyEach = true;
  driver::CompilationPipeline Pipeline(Opts);
  driver::CompilationResult R = Pipeline.run(B.Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();

  std::string Json = driver::renderMetricsJson(R);
  EXPECT_NE(Json.find("\"schema\": \"spire-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"succeeded\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"total_seconds\":"), std::string::npos);
  // One stages[] entry per StageTiming --timings would print.
  for (const driver::StageTiming &St : R.Stages) {
    std::string Key = std::string("\"stage\": \"") +
                      driver::stageName(St.Which) + "\"";
    EXPECT_NE(Json.find(Key), std::string::npos)
        << "missing stage record: " << driver::stageName(St.Which);
  }
  // The qopt work counters --timings prints.
  ASSERT_TRUE(R.QoptStats.has_value());
  EXPECT_NE(Json.find("\"qopt_stats\":"), std::string::npos);
  EXPECT_NE(Json.find("\"cancelled_pairs\":"), std::string::npos);
  EXPECT_NE(Json.find("\"merged_rotations\":"), std::string::npos);
  // The registry lines --timings surfaces (cache counters, symbols).
  EXPECT_NE(Json.find("\"costmodel.profile_cache.hits\":"),
            std::string::npos);
  EXPECT_NE(Json.find("\"costmodel.profile_cache.misses\":"),
            std::string::npos);
  EXPECT_NE(Json.find("\"symbols.interned\":"), std::string::npos);
  EXPECT_NE(Json.find("\"process.allocations\":"), std::string::npos);
  // Per-stage registry metrics.
  EXPECT_NE(Json.find("\"stage.qopt.seconds\":"), std::string::npos);
  EXPECT_NE(Json.find("\"verify.checks\":"), std::string::npos);
}

/// A failed compile still renders a well-formed report naming the
/// failing stage.
TEST(ObsPipeline, MetricsJsonReportsFailures) {
  driver::CompilationPipeline Pipeline(
      driver::PipelineOptions::forEntry("nope"));
  driver::CompilationResult R = Pipeline.run("fun ] this is not tower");
  ASSERT_FALSE(R.succeeded());
  std::string Json = driver::renderMetricsJson(R);
  EXPECT_NE(Json.find("\"succeeded\": false"), std::string::npos);
  EXPECT_NE(Json.find("\"failed_stage\":"), std::string::npos);
  EXPECT_NE(Json.find("\"errors\":"), std::string::npos);
}

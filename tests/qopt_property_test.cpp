//===----------------------------------------------------------------------===//
// Property sweeps for the circuit-optimizer baselines: on randomized
// circuits, every pass must preserve semantics (checked by classical
// basis simulation for X-only circuits and sparse state simulation for
// circuits with phases) and must never increase the T-complexity.
//===----------------------------------------------------------------------===//

#include "decompose/Decompose.h"
#include "qopt/Passes.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <random>

using namespace spire;
using namespace spire::circuit;

namespace {

/// A random MCX-level circuit. Biased toward adjacent duplicate gates so
/// the cancellation passes have material to work with.
Circuit randomMCXCircuit(uint64_t Seed, unsigned NumQubits,
                         unsigned NumGates) {
  std::mt19937_64 Rng(Seed);
  Circuit C;
  C.NumQubits = NumQubits;
  for (unsigned I = 0; I != NumGates; ++I) {
    std::vector<Qubit> Qubits(NumQubits);
    for (unsigned Q = 0; Q != NumQubits; ++Q)
      Qubits[Q] = Q;
    std::shuffle(Qubits.begin(), Qubits.end(), Rng);
    unsigned NumControls = Rng() % std::min(4u, NumQubits);
    std::vector<Qubit> Controls(Qubits.begin(),
                                Qubits.begin() + NumControls);
    C.addX(Qubits[NumQubits - 1], Controls);
    if (Rng() % 3 == 0) // Duplicate: a cancellable adjacent pair.
      C.Gates.push_back(C.Gates.back());
  }
  return C;
}

void expectSameBasisAction(const Circuit &Before, const Circuit &After,
                           uint64_t Seed) {
  ASSERT_EQ(Before.NumQubits, After.NumQubits);
  std::mt19937_64 Rng(Seed);
  for (int Trial = 0; Trial != 16; ++Trial) {
    sim::BitString A(Before.NumQubits), B(Before.NumQubits);
    for (unsigned Q = 0; Q != Before.NumQubits; ++Q) {
      bool Bit = Rng() & 1;
      A.set(Q, Bit);
      B.set(Q, Bit);
    }
    sim::runBasis(Before, A);
    sim::runBasis(After, B);
    EXPECT_TRUE(A == B) << "trial " << Trial;
  }
}

class QoptProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(QoptProperty, CancelSoundAndNeverWorse) {
  Circuit C = randomMCXCircuit(GetParam(), 6, 24);
  int64_t TBefore = countGates(C).TComplexity;
  for (const qopt::CancelOptions &Options :
       {qopt::CancelOptions::peephole(), qopt::CancelOptions::standard(),
        qopt::CancelOptions::exhaustive()}) {
    Circuit Out = qopt::cancelAdjacentGates(C, Options);
    expectSameBasisAction(C, Out, GetParam() * 31);
    EXPECT_LE(countGates(Out).TComplexity, TBefore);
  }
}

TEST_P(QoptProperty, CancelAtCliffordTLevelSound) {
  Circuit C = randomMCXCircuit(GetParam(), 5, 12);
  Circuit CT = decompose::toCliffordT(C);
  Circuit Out = qopt::cancelAdjacentGates(CT, qopt::CancelOptions::standard());
  EXPECT_LE(countGates(Out).T, countGates(CT).T);
  // Phase gates appear after decomposition; validate by state simulation
  // on random basis inputs of the decomposed circuit's wires.
  std::mt19937_64 Rng(GetParam() * 13);
  for (int Trial = 0; Trial != 4; ++Trial) {
    sim::BitString In(CT.NumQubits);
    for (unsigned Q = 0; Q != CT.NumQubits; ++Q)
      In.set(Q, Rng() & 1);
    EXPECT_TRUE(sim::statesEquivalent(sim::runState(CT, In),
                                      sim::runState(Out, In)))
        << "trial " << Trial;
  }
}

TEST_P(QoptProperty, PhaseFoldSoundAndNeverWorse) {
  Circuit C = randomMCXCircuit(GetParam(), 5, 10);
  Circuit CT = decompose::toCliffordT(C);
  Circuit Out = qopt::phaseFold(CT);
  EXPECT_LE(countGates(Out).T, countGates(CT).T);
  std::mt19937_64 Rng(GetParam() * 17);
  for (int Trial = 0; Trial != 4; ++Trial) {
    sim::BitString In(CT.NumQubits);
    for (unsigned Q = 0; Q != CT.NumQubits; ++Q)
      In.set(Q, Rng() & 1);
    EXPECT_TRUE(sim::statesEquivalent(sim::runState(CT, In),
                                      sim::runState(Out, In)))
        << "trial " << Trial;
  }
}

TEST_P(QoptProperty, SearchRewriteSoundAndNeverWorse) {
  Circuit C = randomMCXCircuit(GetParam(), 5, 10);
  Circuit CT = decompose::toCliffordT(C);
  qopt::SearchOptions Options;
  Options.TimeoutSeconds = 0.05;
  Options.Seed = GetParam();
  Circuit Out = qopt::searchRewrite(CT, Options);
  EXPECT_LE(countGates(Out).T, countGates(CT).T);
  std::mt19937_64 Rng(GetParam() * 19);
  for (int Trial = 0; Trial != 2; ++Trial) {
    sim::BitString In(CT.NumQubits);
    for (unsigned Q = 0; Q != CT.NumQubits; ++Q)
      In.set(Q, Rng() & 1);
    EXPECT_TRUE(sim::statesEquivalent(sim::runState(CT, In),
                                      sim::runState(Out, In)))
        << "trial " << Trial;
  }
}

TEST_P(QoptProperty, CancellationIsIdempotentAtFixpoint) {
  // Running the exhaustive configuration twice must not find anything new
  // the second time.
  Circuit C = randomMCXCircuit(GetParam(), 6, 24);
  Circuit Once = qopt::cancelAdjacentGates(C, qopt::CancelOptions::exhaustive());
  Circuit Twice =
      qopt::cancelAdjacentGates(Once, qopt::CancelOptions::exhaustive());
  EXPECT_EQ(Once.Gates.size(), Twice.Gates.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QoptProperty,
                         ::testing::Range<uint64_t>(500, 515));

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared test utilities: a generator of random well-formed core-IR
/// programs (used for property tests of optimizer soundness, backend
/// correctness, and cost-model exactness) and machine-state helpers.
///
//===----------------------------------------------------------------------===//

#ifndef SPIRE_TESTS_TESTUTIL_H
#define SPIRE_TESTS_TESTUTIL_H

#include "circuit/Compiler.h"
#include "ir/Core.h"
#include "sim/Interpreter.h"

#include <memory>
#include <random>
#include <string>
#include <vector>

namespace spire::testutil {

/// Generates random well-formed core programs over a few bool and uint
/// variables, with nested ifs, with-do blocks, assignments/un-assignments,
/// swaps, and memory swaps — the construct mix the Spire rewrites and the
/// backend must handle.
class RandomProgramGen {
public:
  explicit RandomProgramGen(uint64_t Seed) : Rng(Seed) {
    Types = std::make_shared<ir::TypeContext>();
  }

  ir::CoreProgram generate(unsigned NumStmts = 12) {
    ir::CoreProgram P;
    P.Types = Types;
    const ast::Type *Bool = Types->boolType();
    const ast::Type *UInt = Types->uintType();
    const ast::Type *Ptr = Types->ptrType(UInt);
    // Inputs: two bools, two uints, one pointer.
    P.Inputs = {{"b0", Bool}, {"b1", Bool}, {"u0", UInt},
                {"u1", UInt}, {"p0", Ptr}};
    for (auto &[Name, Ty] : P.Inputs)
      Live.push_back({Name, Ty});
    P.PointeeTypes.push_back(UInt);

    genStmts(P.Body, NumStmts, /*Depth=*/0);
    // Output: make one final bool from whatever is live.
    P.OutputVar = "result";
    P.OutputTy = Bool;
    P.Body.push_back(ir::CoreStmt::assign(
        "result", Bool,
        ir::CoreExpr::unary(ast::UnaryOp::Test, pickAtom(UInt), Bool)));
    Live.clear();
    return P;
  }

private:
  struct Binding {
    ir::Symbol Name;
    const ast::Type *Ty;
  };

  uint64_t roll(uint64_t N) { return Rng() % N; }

  bool isProtected(ir::Symbol Name) const {
    return Protected.count(Name) != 0;
  }

  ir::Atom pickAtom(const ast::Type *Ty) {
    std::vector<const Binding *> Candidates;
    for (const Binding &B : Live)
      if (B.Ty == Ty)
        Candidates.push_back(&B);
    if (!Candidates.empty() && roll(4) != 0) {
      const Binding *B = Candidates[roll(Candidates.size())];
      return ir::Atom::var(B->Name, B->Ty);
    }
    uint64_t Bits = Ty->isBool() ? roll(2) : roll(17);
    return ir::Atom::constant(Bits, Ty);
  }

  /// A bool variable usable as an if condition that statements below may
  /// not modify; returns the empty symbol if none is live.
  ir::Symbol pickCondition(const ir::SymbolSet &Forbidden) {
    std::vector<const Binding *> Candidates;
    for (const Binding &B : Live)
      if (B.Ty->isBool() && !Forbidden.count(B.Name))
        Candidates.push_back(&B);
    if (Candidates.empty())
      return {};
    return Candidates[roll(Candidates.size())]->Name;
  }

  ir::CoreExpr genExpr(const ast::Type *Ty) {
    using ast::BinaryOp;
    using ast::UnaryOp;
    const ast::Type *Bool = Types->boolType();
    const ast::Type *UInt = Types->uintType();
    if (Ty->isBool()) {
      switch (roll(6)) {
      case 0:
        return ir::CoreExpr::atom(pickAtom(Bool));
      case 1:
        return ir::CoreExpr::unary(UnaryOp::Not, pickAtom(Bool), Bool);
      case 2:
        return ir::CoreExpr::unary(UnaryOp::Test, pickAtom(UInt), Bool);
      case 3:
        return ir::CoreExpr::binary(BinaryOp::And, pickAtom(Bool),
                                    pickAtom(Bool), Bool);
      case 4:
        return ir::CoreExpr::binary(BinaryOp::Eq, pickAtom(UInt),
                                    pickAtom(UInt), Bool);
      default:
        return ir::CoreExpr::binary(BinaryOp::Lt, pickAtom(UInt),
                                    pickAtom(UInt), Bool);
      }
    }
    switch (roll(5)) {
    case 0:
      return ir::CoreExpr::atom(pickAtom(UInt));
    case 1:
      return ir::CoreExpr::binary(BinaryOp::Add, pickAtom(UInt),
                                  pickAtom(UInt), UInt);
    case 2:
      return ir::CoreExpr::binary(BinaryOp::Sub, pickAtom(UInt),
                                  pickAtom(UInt), UInt);
    case 3:
      return ir::CoreExpr::binary(BinaryOp::Mul, pickAtom(UInt),
                                  pickAtom(UInt), UInt);
    default:
      return ir::CoreExpr::atom(pickAtom(UInt));
    }
  }

  void genStmts(ir::CoreStmtList &Out, unsigned Budget, unsigned Depth) {
    while (Budget > 0) {
      unsigned Kind = roll(10);
      if (Kind < 4 || Depth >= 3) {
        // Fresh assignment.
        const ast::Type *Ty =
            roll(2) ? Types->boolType()
                    : static_cast<const ast::Type *>(Types->uintType());
        std::string Name = "v" + std::to_string(Counter++);
        ir::CoreExpr E = genExpr(Ty);
        Out.push_back(ir::CoreStmt::assign(Name, Ty, E));
        Live.push_back({Name, Ty});
        --Budget;
        continue;
      }
      if (Kind < 6) {
        // Swap two uints, if available.
        std::vector<const Binding *> UInts;
        for (const Binding &B : Live)
          if (B.Ty->isUInt() && !isProtected(B.Name))
            UInts.push_back(&B);
        if (UInts.size() >= 2) {
          const Binding *A = UInts[roll(UInts.size())];
          const Binding *B = UInts[roll(UInts.size())];
          if (A != B) {
            Out.push_back(
                ir::CoreStmt::swap(A->Name, A->Ty, B->Name, B->Ty));
            --Budget;
            continue;
          }
        }
        --Budget;
        continue;
      }
      if (Kind < 7) {
        // Memory swap through the pointer input.
        std::vector<const Binding *> UInts;
        for (const Binding &B : Live)
          if (B.Ty->isUInt() && !isProtected(B.Name))
            UInts.push_back(&B);
        if (!UInts.empty()) {
          const Binding *V = UInts[roll(UInts.size())];
          Out.push_back(ir::CoreStmt::memSwap(
              "p0", Types->ptrType(Types->uintType()), V->Name, V->Ty));
        }
        --Budget;
        continue;
      }
      if (Kind < 9) {
        // Conditional block over a live bool.
        ir::CoreStmtList Body;
        size_t LiveBefore = Live.size();
        unsigned Inner = 1 + roll(std::min(Budget, 4u));
        genStmts(Body, Inner, Depth + 1);
        // The condition must not be modified by the body.
        ir::SymbolSet Mods = ir::modSet(Body);
        ir::Symbol Cond = pickCondition(Mods);
        Budget -= std::min(Budget, Inner);
        if (Cond.empty())
          continue; // Drop the block; no usable condition.
        // Variables declared under the if stay live afterwards (S-If).
        (void)LiveBefore;
        Out.push_back(ir::CoreStmt::ifStmt(Cond, std::move(Body)));
        continue;
      }
      // with { temporaries } do { statements }: temporaries are scoped.
      ir::CoreStmtList WithBody, DoBody;
      size_t LiveBefore = Live.size();
      unsigned WithInner = 1 + roll(2);
      for (unsigned I = 0; I != WithInner; ++I) {
        const ast::Type *Ty =
            roll(2) ? Types->boolType()
                    : static_cast<const ast::Type *>(Types->uintType());
        std::string Name = "w" + std::to_string(Counter++);
        WithBody.push_back(ir::CoreStmt::assign(Name, Ty, genExpr(Ty)));
        Live.push_back({Name, Ty});
      }
      // The do-block must not modify anything the with-block reads or
      // created, or its reversal would not restore the temporaries.
      ir::SymbolSet SavedProtected = Protected;
      for (ir::Symbol V : ir::allVars(WithBody))
        Protected.insert(V);
      unsigned DoInner = 1 + roll(std::min(Budget, 3u));
      genStmts(DoBody, DoInner, Depth + 1);
      Protected = std::move(SavedProtected);
      Budget -= std::min(Budget, DoInner + 1);
      // With temporaries die after the block; do-block vars survive.
      std::vector<Binding> Survivors(Live.begin(),
                                     Live.begin() + LiveBefore);
      for (size_t I = LiveBefore + WithInner; I < Live.size(); ++I)
        Survivors.push_back(Live[I]);
      Live = std::move(Survivors);
      Out.push_back(
          ir::CoreStmt::with(std::move(WithBody), std::move(DoBody)));
    }
  }

  std::mt19937_64 Rng;
  std::shared_ptr<ir::TypeContext> Types;
  std::vector<Binding> Live;
  ir::SymbolSet Protected;
  unsigned Counter = 0;
};

/// A random machine state for a program's inputs and memory.
inline sim::MachineState randomState(const ir::CoreProgram &P,
                                     const circuit::TargetConfig &Config,
                                     uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  for (const auto &[Name, Ty] : P.Inputs) {
    unsigned W = P.Types->bitWidth(Ty, Config.WordBits);
    uint64_t Mask = W >= 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
    S.Regs[Name] = Rng() & Mask;
  }
  unsigned CellBits = circuit::cellBitsFor(P, Config);
  uint64_t CellMask =
      CellBits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << CellBits) - 1);
  for (unsigned A = 1; A <= Config.HeapCells; ++A)
    S.Mem[A] = Rng() & CellMask;
  return S;
}

} // namespace spire::testutil

#endif // SPIRE_TESTS_TESTUTIL_H

//===----------------------------------------------------------------------===//
// End-to-end property sweep across the full pipeline: for random core
// programs, the ORIGINAL program's reference interpretation must agree
// with the circuit compiled from the SPIRE-OPTIMIZED program, on random
// machine states. This composes Theorems 6.3/6.5 (rewrites preserve
// circuit semantics) with backend correctness in one check — exactly the
// property a user of the compiler relies on.
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "costmodel/CostModel.h"
#include "opt/Spire.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::ir;

namespace {

circuit::TargetConfig Config;

class EndToEnd : public ::testing::TestWithParam<uint64_t> {};

void expectAgreement(const CoreProgram &Reference,
                     const CoreProgram &Compiled, uint64_t Seed) {
  circuit::CompileResult R = circuit::compileToCircuit(Compiled, Config);
  for (uint64_t Trial = 0; Trial != 3; ++Trial) {
    sim::MachineState S =
        testutil::randomState(Reference, Config, Seed * 131 + Trial);
    sim::MachineState Expected = S;
    sim::Interpreter Interp(Reference, Config);
    ASSERT_TRUE(Interp.run(Expected)) << Interp.error();

    sim::BitString Bits = sim::encodeState(S, R.Layout);
    sim::runBasis(R.Circ, Bits);
    uint64_t Out = Bits.read(R.Layout.Output.Offset, R.Layout.Output.Width);
    EXPECT_EQ(Out, Interp.output(Expected)) << "seed " << Seed;

    for (unsigned A = 1; A <= Config.HeapCells; ++A) {
      circuit::BitRange Cell = R.Layout.cell(A);
      EXPECT_EQ(Bits.read(Cell.Offset, Cell.Width), Expected.Mem[A])
          << "cell " << A << " seed " << Seed;
    }
  }
}

} // namespace

TEST_P(EndToEnd, OptimizedCircuitMatchesReferenceInterpreter) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);
  CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::all());
  expectAgreement(P, O, GetParam());
}

TEST_P(EndToEnd, FlatteningAloneMatches) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);
  CoreProgram O =
      opt::optimizeProgram(P, opt::SpireOptions::flatteningOnly());
  expectAgreement(P, O, GetParam() + 1000);
}

TEST_P(EndToEnd, NarrowingAloneMatches) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);
  CoreProgram O =
      opt::optimizeProgram(P, opt::SpireOptions::narrowingOnly());
  expectAgreement(P, O, GetParam() + 2000);
}

TEST_P(EndToEnd, OptimizationNeverIncreasesTComplexity) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);
  CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::all());
  costmodel::Cost Before = costmodel::analyzeProgram(P, Config);
  costmodel::Cost After = costmodel::analyzeProgram(O, Config);
  // Flattening can add O(1) temporaries but pays off on any nested
  // control flow; allow a small additive slack for degenerate programs
  // whose ifs guard single cheap statements.
  EXPECT_LE(After.T, Before.T + 2 * costmodel::CCtrl)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Range<uint64_t>(700, 715));

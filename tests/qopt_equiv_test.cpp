//===----------------------------------------------------------------------===//
// Differential fuzzing of the netlist-based optimizer hot path against
// the pre-netlist reference implementations: on seeded random Clifford+T
// circuits, cancelAdjacentGates + phaseFold must (a) agree with the
// reference passes up to never-being-worse and (b) stay simulation-
// equivalent to the unoptimized circuit. This is the safety net under
// the PR-4 rewrite — any divergence between the two code paths that
// changes semantics or loses optimization power fails here with the
// seed that found it.
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "benchmarks/Harness.h"
#include "interchange/Interchange.h"
#include "qopt/Passes.h"
#include "sim/BitSliced.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <random>

using namespace spire;
using namespace spire::circuit;

namespace {

/// A random Clifford+T circuit with cancellation and folding material:
/// CNOTs, phases, occasional H barriers (bounded so sparse simulation
/// stays small), Toffolis, and a bias toward adjacent inverse pairs.
Circuit randomCliffordT(uint64_t Seed, unsigned NumQubits,
                        unsigned NumGates, unsigned MaxH) {
  std::mt19937_64 Rng(Seed);
  Circuit C;
  C.NumQubits = NumQubits;
  unsigned HBudget = MaxH;
  auto randomQubit = [&] { return static_cast<Qubit>(Rng() % NumQubits); };
  while (C.Gates.size() < NumGates) {
    Qubit T = randomQubit();
    switch (Rng() % 8) {
    case 0:
      C.addX(T);
      break;
    case 1:
    case 2: {
      Qubit A = randomQubit();
      if (A == T)
        A = (A + 1) % NumQubits;
      C.addX(T, {A});
      break;
    }
    case 3: {
      Qubit A = (T + 1 + Rng() % (NumQubits - 1)) % NumQubits;
      Qubit B = (T + 1 + Rng() % (NumQubits - 1)) % NumQubits;
      if (B == A)
        B = (B + 1) % NumQubits == T ? (B + 2) % NumQubits
                                     : (B + 1) % NumQubits;
      C.addX(T, {A, B});
      break;
    }
    case 4:
      C.add(Gate(Rng() % 2 ? GateKind::T : GateKind::Tdg, T));
      break;
    case 5:
      C.add(Gate(Rng() % 2 ? GateKind::S : GateKind::Sdg, T));
      break;
    case 6:
      if (HBudget > 0) {
        --HBudget;
        C.addH(T);
      } else {
        C.add(Gate(GateKind::Z, T));
      }
      break;
    default:
      // Duplicate the previous gate: adjacent self-inverse pairs for the
      // cancellation pass, doubled phases for the folding pass.
      if (!C.Gates.empty())
        C.Gates.push_back(C.Gates.back());
      break;
    }
  }
  return C;
}

/// Simulation-backed equivalence (the same oracle the interchange
/// round-trip job uses). The 1024-state budget exceeds the 6-qubit
/// state space, so every fuzz comparison is exhaustive — on the
/// bit-sliced backend for X-only pairs, on the sparse state vector
/// otherwise — and CrossCheck replays one lane per block through
/// sim::runBasis to keep the two backends honest against each other.
void expectEquivalent(const Circuit &A, const Circuit &B, uint64_t Seed,
                      const char *What) {
  interchange::EquivalenceOptions Opts;
  Opts.Samples = 1024;
  Opts.Seed = Seed;
  Opts.CrossCheck = true;
  interchange::EquivalenceReport Report =
      interchange::checkEquivalence(A, B, Opts);
  EXPECT_TRUE(Report.Equivalent)
      << What << " diverged (seed " << Seed << "): " << Report.Detail;
  EXPECT_TRUE(Report.Exhaustive)
      << What << ": 1024-state budget must cover the 6-qubit space";
}

/// Stage-boundary verification, fuzz edition: every pass output must
/// uphold the gate/netlist invariants the pipeline's --verify-each mode
/// enforces on real compiles.
void expectVerified(const Circuit &C, uint64_t Seed, const char *What) {
  analysis::VerifyReport V = analysis::verifyCircuit(C);
  EXPECT_TRUE(V.ok()) << What << " (seed " << Seed << "):\n" << V.str();
}

/// Parity differential: an optimizer pass preserves semantics, so
/// wherever the affine-parity analysis is exact on BOTH the original
/// and the optimized circuit, the exit parities must agree wire for
/// wire. ("?" on either side means the wire left the affine fragment
/// there — nothing to compare.)
void expectSameParities(const Circuit &Before, const Circuit &After,
                        uint64_t Seed, const char *What) {
  ASSERT_EQ(Before.NumQubits, After.NumQubits);
  analysis::CleanSpec Spec = analysis::CleanSpec::allUnknown(Before.NumQubits);
  analysis::ParityResult A = analysis::analyzeParity(Before, Spec);
  analysis::ParityResult B = analysis::analyzeParity(After, Spec);
  for (unsigned Q = 0; Q != Before.NumQubits; ++Q) {
    if (A.WireParity[Q] == "?" || B.WireParity[Q] == "?")
      continue;
    EXPECT_EQ(A.WireParity[Q], B.WireParity[Q])
        << What << " changed the exit parity of wire " << Q << " (seed "
        << Seed << ")";
  }
}

class QoptDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(QoptDifferential, CancelPlusFoldMatchesReferencePath) {
  const uint64_t Seed = GetParam();
  Circuit C = randomCliffordT(Seed, 6, 40, /*MaxH=*/6);

  qopt::OptStats Stats;
  Circuit NewCancelled =
      qopt::cancelAdjacentGates(C, qopt::CancelOptions::standard(), &Stats);
  Circuit NewOut = qopt::phaseFold(NewCancelled, &Stats);

  Circuit RefCancelled =
      qopt::cancelAdjacentGatesReference(C, qopt::CancelOptions::standard());
  Circuit RefOut = qopt::phaseFoldReference(RefCancelled);

  // Every intermediate artifact passes the static verifier, and the
  // affine-parity summaries survive each pass unchanged wherever they
  // are exact (the static cousin of the simulation oracle below).
  expectVerified(NewCancelled, Seed, "cancel output");
  expectVerified(NewOut, Seed, "fold output");
  expectVerified(RefCancelled, Seed, "reference cancel output");
  expectVerified(RefOut, Seed, "reference fold output");
  expectSameParities(C, NewCancelled, Seed, "cancel");
  expectSameParities(C, NewOut, Seed, "cancel+fold");

  // Both paths must preserve the circuit's behavior...
  expectEquivalent(C, NewOut, Seed * 7 + 1, "netlist path");
  expectEquivalent(C, RefOut, Seed * 7 + 2, "reference path");
  // ...and the worklist fixpoint must never be weaker than the
  // round-limited reference fixpoint.
  EXPECT_LE(NewCancelled.Gates.size(), RefCancelled.Gates.size())
      << "seed " << Seed;
  EXPECT_LE(countGates(NewOut).TComplexity,
            countGates(RefOut).TComplexity)
      << "seed " << Seed;
  // The stats must account exactly for the removed gates.
  EXPECT_EQ(C.Gates.size() - NewCancelled.Gates.size(),
            static_cast<size_t>(2 * Stats.CancelledPairs))
      << "seed " << Seed;
  // Counter non-regression against the reference pass: the worklist
  // fixpoint must log at least as much cancellation work as the
  // reference fixpoint actually removed, from at least one pass, with
  // at least one worklist visit per cancelled pair. These pin the
  // counters' meaning now that OptStats cells are relaxed atomics
  // (obs::AtomicCounter) — a racy or dropped update would show up as a
  // shortfall somewhere in the 100-seed sweep.
  EXPECT_GE(static_cast<size_t>(2 * Stats.CancelledPairs),
            C.Gates.size() - RefCancelled.Gates.size())
      << "seed " << Seed << ": worklist logged less cancellation work "
      << "than the reference pass achieved";
  EXPECT_GE(Stats.CancelPasses.value(), 1) << "seed " << Seed;
  EXPECT_GE(Stats.WorklistVisits.value(), Stats.CancelledPairs.value())
      << "seed " << Seed;
  EXPECT_GE(Stats.MergedRotations.value(), 0) << "seed " << Seed;
}

TEST_P(QoptDifferential, ExhaustiveCancelMatchesReferenceExactly) {
  const uint64_t Seed = GetParam() * 31 + 5;
  // X-only circuits (no H, no phases): cancellation is the whole story
  // and both implementations reach the same true fixpoint size.
  Circuit C = randomCliffordT(Seed, 6, 30, /*MaxH=*/0);
  Circuit XOnly;
  XOnly.NumQubits = C.NumQubits;
  for (const Gate &G : C.Gates)
    if (G.Kind == GateKind::X)
      XOnly.Gates.push_back(G);

  Circuit New =
      qopt::cancelAdjacentGates(XOnly, qopt::CancelOptions::exhaustive());
  Circuit Ref = qopt::cancelAdjacentGatesReference(
      XOnly, qopt::CancelOptions::exhaustive());
  EXPECT_EQ(New.Gates.size(), Ref.Gates.size()) << "seed " << Seed;
  expectEquivalent(XOnly, New, Seed, "exhaustive netlist path");

  // X-only pair at 6 qubits: the dispatch must pick the bit-sliced
  // backend and prove equivalence over all 64 basis states.
  interchange::EquivalenceReport R = interchange::checkEquivalence(
      XOnly, New, interchange::EquivalenceOptions());
  EXPECT_TRUE(R.Equivalent) << R.Detail;
  EXPECT_TRUE(R.BitSliced);
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_EQ(R.StatesRun, 64u) << "seed " << Seed;
}

TEST_P(QoptDifferential, BitSlicedLanesAgreeWithInterpreter) {
  // Lane-agreement oracle: compile a random X-only circuit to the
  // bit-sliced tape, run one 64-state counter block, then replay every
  // one of the 64 lanes through the gate-at-a-time interpreter
  // (sim::runBasis) and compare wire for wire. Any tape mis-compile —
  // wrong control polarity, bad swap fusion, mis-ordered MCX
  // accumulator — shows up as a named bit position here.
  const uint64_t Seed = GetParam() * 17 + 9;
  Circuit C = randomCliffordT(Seed, 6, 30, /*MaxH=*/0);
  Circuit XOnly;
  XOnly.NumQubits = C.NumQubits;
  for (const Gate &G : C.Gates)
    if (G.Kind == GateKind::X)
      XOnly.Gates.push_back(G);

  std::optional<sim::BitSlicedSimulator> Tape =
      sim::BitSlicedSimulator::compile(XOnly);
  ASSERT_TRUE(Tape.has_value());
  EXPECT_EQ(Tape->numGates(), XOnly.Gates.size());

  uint64_t In[6], Out[6];
  sim::loadCounterBlock(In, XOnly.NumQubits, /*Base=*/0, XOnly.NumQubits);
  std::copy(In, In + XOnly.NumQubits, Out);
  Tape->runBlock(Out);
  for (unsigned Bit = 0; Bit != sim::LaneBits; ++Bit)
    EXPECT_TRUE(sim::laneAgreesWithBasis(XOnly, In, Out, Bit))
        << "seed " << Seed << " lane bit " << Bit;
}

TEST_P(QoptDifferential, PhaseFoldAloneMatchesReferenceGateForGate) {
  const uint64_t Seed = GetParam() * 13 + 3;
  Circuit C = randomCliffordT(Seed, 6, 40, /*MaxH=*/6);
  Circuit New = qopt::phaseFold(C);
  Circuit Ref = qopt::phaseFoldReference(C);
  // Folding is deterministic re-emission at first-contribution sites:
  // the hashed parity table must not change the output at all.
  ASSERT_EQ(New.Gates.size(), Ref.Gates.size()) << "seed " << Seed;
  for (size_t I = 0; I != New.Gates.size(); ++I)
    ASSERT_TRUE(New.Gates[I] == Ref.Gates[I])
        << "seed " << Seed << " gate " << I;
}

// >= 100 seeded circuits per differential property.
INSTANTIATE_TEST_SUITE_P(Seeds, QoptDifferential,
                         ::testing::Range<uint64_t>(1000, 1100));

TEST(QoptDifferentialBenchmarks, NetlistPathNeverWorseOnAllPaperBenchmarks) {
  // The PR-4 acceptance bar: across all 11 paper benchmarks, the
  // netlist passes must match or beat the pre-refactor passes at every
  // optimizer level (identical pass semantics were fuzzed above; here
  // the compiled circuits exercise the real gate mix).
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    driver::PipelineOptions Opts;
    Opts.BuildCircuit = true;
    Opts.AnalyzeCost = false;
    driver::CompilationResult R = benchmarks::runPipelineOrDie(B, 2, Opts);
    const Circuit &MCX = R.Compiled->Circ;
    Circuit Toff = spire::decompose::toToffoli(MCX);

    // The exhaustive configuration is covered by the fuzz suite above;
    // its reference implementation is quadratic on circuits this size,
    // which would dominate the whole test suite's runtime.
    for (const qopt::CancelOptions &Options :
         {qopt::CancelOptions::standard(),
          qopt::CancelOptions::peephole()}) {
      Circuit New = qopt::cancelAdjacentGates(Toff, Options);
      Circuit Ref = qopt::cancelAdjacentGatesReference(Toff, Options);
      EXPECT_LE(New.Gates.size(), Ref.Gates.size()) << B.Name;
      EXPECT_LE(countGates(New).TComplexity, countGates(Ref).TComplexity)
          << B.Name;
    }

    // Fold comparison at the Clifford+T level. The two qRAM giants
    // (insert, contains) decompose past a million gates at this size;
    // the reference fold's ordered parity map makes them dominate the
    // suite's runtime, and fold determinism is already pinned by the
    // 100-seed fuzz above, so bound this leg to the other nine.
    if (Toff.Gates.size() > 50000)
      continue;
    Circuit CT = spire::decompose::toCliffordT(Toff);
    Circuit NewFold = qopt::phaseFold(CT);
    Circuit RefFold = qopt::phaseFoldReference(CT);
    // Folding is deterministic re-emission; the two paths must agree
    // gate for gate on every benchmark.
    ASSERT_EQ(NewFold.Gates.size(), RefFold.Gates.size()) << B.Name;
    for (size_t I = 0; I != NewFold.Gates.size(); ++I)
      ASSERT_TRUE(NewFold.Gates[I] == RefFold.Gates[I])
          << B.Name << " gate " << I;
  }
}

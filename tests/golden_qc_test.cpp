//===----------------------------------------------------------------------===//
// Differential guard for the interned-symbol middle end: every paper
// benchmark, compiled source -> .qc through the full default pipeline,
// must emit byte-identical text to the golden files captured from the
// seed (pre-Symbol, string-keyed) pipeline. A diff here means the
// refactored middle end changed observable behavior — register
// allocation order, name generation, or gate emission — rather than just
// its internal representation.
//
// Regenerating (only when an *intentional* output change lands):
//   SPIRE_REGEN_GOLDENS=1 ./tests/golden_qc_test
// rewrites tests/golden/*.qc in the source tree; commit the diff with an
// explanation of why the output legitimately changed.
//===----------------------------------------------------------------------===//

#include "benchmarks/Harness.h"
#include "driver/Pipeline.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

using namespace spire;

#ifndef SPIRE_GOLDEN_DIR
#error "SPIRE_GOLDEN_DIR must be defined by the build"
#endif

namespace {

/// Golden capture size: deep enough that recursion inlining, with-block
/// reservations, and re-declaration aliasing all fire, small enough that
/// the files stay reviewable.
int64_t goldenSize(const benchmarks::BenchmarkProgram &B) {
  if (!B.SizeIndexed)
    return 0;
  // The radix-tree Set benchmarks grow gate counts fastest; capture them
  // one level shallower to keep the committed goldens reviewable.
  return B.Group == "Set" ? 2 : 3;
}

std::string compileToQc(const benchmarks::BenchmarkProgram &B) {
  driver::PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.AnalyzeCost = false;
  driver::CompilationResult R =
      benchmarks::runPipelineOrDie(B, goldenSize(B), Opts);
  driver::CompilationPipeline Pipeline(std::move(Opts));
  return Pipeline.renderFinalCircuit(R);
}

std::string goldenPath(const benchmarks::BenchmarkProgram &B) {
  return std::string(SPIRE_GOLDEN_DIR) + "/" + B.Name + ".qc";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

TEST(GoldenQc, BenchmarksEmitSeedIdenticalQc) {
  bool Regen = std::getenv("SPIRE_REGEN_GOLDENS") != nullptr;
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    std::string Text = compileToQc(B);
    ASSERT_FALSE(Text.empty()) << B.Name;
    std::string Path = goldenPath(B);
    if (Regen) {
      std::ofstream Out(Path);
      ASSERT_TRUE(Out.good()) << "cannot write " << Path;
      Out << Text;
      continue;
    }
    std::string Expected = readFile(Path);
    ASSERT_FALSE(Expected.empty())
        << "missing golden " << Path
        << " (run with SPIRE_REGEN_GOLDENS=1 to capture)";
    EXPECT_EQ(Text, Expected)
        << B.Name << ": .qc output diverged from the seed pipeline";
  }
}

//===----------------------------------------------------------------------===//
// Regression tests for the spirec command-line driver's error paths:
// every CLI mistake (missing input file, unknown flag, missing --entry,
// bad --emit level, bad --circuit-opt name) must exit 2 with a
// diagnostic on stderr — never crash or silently succeed — while compile
// errors exit 1 and successful runs exit 0.
//
// The spirec binary path arrives in the SPIREC environment variable,
// set by CTest from $<TARGET_FILE:spirec>.
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stderr;
};

std::string spirecPath() {
  const char *Path = std::getenv("SPIREC");
  return Path ? Path : "";
}

/// Runs spirec with `Args`, discarding stdout and capturing stderr.
RunResult runSpirec(const std::string &Args) {
  std::string Cmd =
      "'" + spirecPath() + "' " + Args + " 2>&1 >/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  RunResult R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Stderr.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status)
                                 : 128 + WTERMSIG(Status);
  return R;
}

/// Writes a known-good Tower program to a temp path and returns it.
std::string writeGoodProgram() {
  std::string Path = ::testing::TempDir() + "spirec_cli_good.tower";
  std::ofstream Out(Path);
  Out << "fun f(x: bool) {\n"
         "  let y <- not x;\n"
         "  return y;\n"
         "}\n";
  return Path;
}

/// Writes a file that does not parse.
std::string writeBadProgram() {
  std::string Path = ::testing::TempDir() + "spirec_cli_bad.tower";
  std::ofstream Out(Path);
  Out << "fun broken( {\n";
  return Path;
}

} // namespace

TEST(SpirecCli, BinaryPathIsConfigured) {
  ASSERT_FALSE(spirecPath().empty())
      << "SPIREC env var not set; run via ctest";
}

TEST(SpirecCli, NoArgumentsIsUsageError) {
  RunResult R = runSpirec("");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("no input file"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, MissingInputFileExitsTwo) {
  RunResult R = runSpirec("/nonexistent/prog.tower --entry f");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot read"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, MissingQcInputFileExitsTwo) {
  RunResult R = runSpirec("--qc-in /nonexistent/circ.qc");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot read"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, UnknownFlagExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --frobnicate");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("unknown option --frobnicate"),
            std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, MissingEntryExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram());
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--entry is required"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, BadEmitLevelExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --emit qasm");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--emit must be"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, BadBasisNameExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --basis qft");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--basis must be"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, QcInAndQasmInAreExclusive) {
  RunResult R = runSpirec("--qc-in a.qc --qasm-in b.qasm");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("mutually exclusive"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, MissingQasmInputFileExitsTwo) {
  RunResult R = runSpirec("--qasm-in /nonexistent/circ.qasm");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot read"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, MalformedQasmInputExitsOne) {
  std::string Path = ::testing::TempDir() + "spirec_cli_bad.qasm";
  {
    std::ofstream Out(Path);
    Out << "OPENQASM 3.0;\nqubit[2] q;\nfrobnicate q[0];\n";
  }
  RunResult R = runSpirec("--qasm-in " + Path);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("unknown or unsupported gate"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("circuit-compile stage"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, BadCircuitOptNameExitsTwo) {
  RunResult R =
      runSpirec(writeGoodProgram() + " --entry f --circuit-opt magic");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("unknown --circuit-opt"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, MissingFlagValueExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("missing value"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, UnwritableOutputPathExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() +
                          " --entry f --emit mcx -o /nonexistent-dir/o.qc");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot open"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, ParseErrorExitsOneWithStageDiagnostic) {
  RunResult R = runSpirec(writeBadProgram() + " --entry broken");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("error"), std::string::npos) << R.Stderr;
  EXPECT_NE(R.Stderr.find("parse stage"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, UnknownEntryExitsOneWithStageDiagnostic) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry nope");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Stderr.find("entry function 'nope' not found"),
            std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("typecheck stage"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, GoodProgramSucceeds) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --report");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stderr, "") << R.Stderr;
}

TEST(SpirecCli, ReportWithCircuitInputExitsTwo) {
  // Cost analysis needs the lowered IR, which circuit inputs lack; the
  // old driver silently ignored --report here, the unified pipeline
  // must reject it (dereferencing the absent cost was UB).
  RunResult R = runSpirec("--qc-in a.qc --report");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--report needs a Tower program"),
            std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, RunWithCircuitInputExitsTwo) {
  RunResult R = runSpirec("--qc-in a.qc --run x=1");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--run needs a Tower program"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, CheckEquivSamplesFlagWorks) {
  // The good program compiles to an 18-wire X-only circuit: within the
  // bit-sliced backend's exhaustive threshold, so even a 2-sample
  // request is upgraded to a sweep of all 2^18 basis states.
  std::string Program = writeGoodProgram();
  std::string Qc = ::testing::TempDir() + "spirec_cli_equiv.qc";
  RunResult Emit = runSpirec("'" + Program + "' --entry f --emit qc -o '" +
                             Qc + "'");
  ASSERT_EQ(Emit.ExitCode, 0) << Emit.Stderr;
  RunResult R = runSpirec("'" + Program + "' --entry f --emit qc -o " +
                          "/dev/null --check-equiv '" + Qc +
                          "' --check-equiv-samples 2");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(
      R.Stderr.find("equivalent on all 262144 basis states (exhaustive)"),
      std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, CheckEquivSamplesAboveStateSpaceClampsToExhaustive) {
  // The good program compiles to 2 variable qubits plus the 16 default
  // 1-bit heap cells: 18 wires, 2^18 = 262144 distinct basis states.
  // For classical circuits an over-request is satisfied exactly by the
  // exhaustive sweep — every distinct state checked once — so it
  // succeeds rather than erroring.
  std::string Program = writeGoodProgram();
  std::string Qc = ::testing::TempDir() + "spirec_cli_equiv2.qc";
  RunResult Emit = runSpirec("'" + Program + "' --entry f --emit qc -o '" +
                             Qc + "'");
  ASSERT_EQ(Emit.ExitCode, 0) << Emit.Stderr;
  RunResult R = runSpirec("'" + Program + "' --entry f --emit qc -o " +
                          "/dev/null --check-equiv '" + Qc +
                          "' --check-equiv-samples 300000");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(
      R.Stderr.find("equivalent on all 262144 basis states (exhaustive)"),
      std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, CheckEquivOverRequestOnNonClassicalIsDiagnosed) {
  // Non-classical circuits cannot take the exhaustive bit-sliced path,
  // so an explicit request above the state space stays an error.
  std::string Qc = ::testing::TempDir() + "spirec_cli_hadamard.qc";
  {
    std::ofstream Out(Qc);
    Out << ".v q0 q1 q2\n\nBEGIN\nH q0\ntof q0 q1\nEND\n";
  }
  RunResult R = runSpirec("--qc-in '" + Qc + "' --emit qc -o /dev/null "
                          "--check-equiv '" + Qc +
                          "' --check-equiv-samples 300000");
  EXPECT_EQ(R.ExitCode, 2) << R.Stderr;
  EXPECT_NE(R.Stderr.find("distinct basis states"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, TimingsReportEquivalenceThroughput) {
  // --timings alongside --check-equiv reports the backend used and the
  // sweep's states/sec so bench regressions are visible from the CLI.
  std::string Program = writeGoodProgram();
  std::string Qc = ::testing::TempDir() + "spirec_cli_equiv3.qc";
  RunResult Emit = runSpirec("'" + Program + "' --entry f --emit qc -o '" +
                             Qc + "'");
  ASSERT_EQ(Emit.ExitCode, 0) << Emit.Stderr;
  RunResult R = runSpirec("'" + Program + "' --entry f --emit qc -o " +
                          "/dev/null --check-equiv '" + Qc +
                          "' --timings");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stderr.find("bit-sliced backend"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("states/sec"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, CheckEquivSamplesRejectsNonPositive) {
  std::string Program = writeGoodProgram();
  RunResult R = runSpirec("'" + Program + "' --entry f --emit qc "
                          "--check-equiv-samples 0");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("--check-equiv-samples"), std::string::npos)
      << R.Stderr;
}

TEST(SpirecCli, TimingsReportAllocationColumns) {
  std::string Program = writeGoodProgram();
  RunResult R = runSpirec("'" + Program + "' --entry f --timings");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stderr.find("allocs"), std::string::npos) << R.Stderr;
  EXPECT_NE(R.Stderr.find("KiB peak RSS"), std::string::npos) << R.Stderr;
}

namespace {

/// Reads a whole file; empty string when it cannot be opened.
std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Counts non-overlapping occurrences of Needle in S.
size_t countOccurrences(const std::string &S, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = S.find(Needle); At != std::string::npos;
       At = S.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

} // namespace

TEST(SpirecCli, TraceJsonEmitsBalancedChromeTrace) {
  std::string Trace = ::testing::TempDir() + "spirec_cli_trace.json";
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --emit qc -o "
                          "/dev/null --circuit-opt cliffordt-cancel "
                          "--trace-json '" + Trace + "'");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  std::string Json = slurp(Trace);
  ASSERT_FALSE(Json.empty());
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  // Every begin pairs with an end, and the stage + pass spans are there.
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"B\""),
            countOccurrences(Json, "\"ph\":\"E\""))
      << Json;
  for (const char *Span :
       {"\"name\":\"parse\"", "\"name\":\"typecheck\"",
        "\"name\":\"lower\"", "\"name\":\"qopt\"",
        "\"name\":\"qopt/decompose-clifford+t\""})
    EXPECT_NE(Json.find(Span), std::string::npos) << Span;
}

TEST(SpirecCli, MetricsJsonIsWellFormedSuperset) {
  std::string Metrics = ::testing::TempDir() + "spirec_cli_metrics.json";
  RunResult R = runSpirec(writeGoodProgram() + " --entry f --emit qc -o "
                          "/dev/null --circuit-opt cliffordt-cancel "
                          "--metrics-json '" + Metrics + "'");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  std::string Json = slurp(Metrics);
  ASSERT_FALSE(Json.empty());
  EXPECT_NE(Json.find("\"schema\": \"spire-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"succeeded\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"stage\": \"qopt\""), std::string::npos);
  EXPECT_NE(Json.find("\"qopt_stats\":"), std::string::npos);
  EXPECT_NE(Json.find("\"symbols.interned\":"), std::string::npos);
}

TEST(SpirecCli, MetricsJsonWrittenOnCompileFailure) {
  // A failed compile still reports: exit 1 from the compile, but the
  // metrics file names the failing stage.
  std::string Metrics = ::testing::TempDir() + "spirec_cli_metrics_fail.json";
  RunResult R = runSpirec(writeBadProgram() + " --entry broken "
                          "--metrics-json '" + Metrics + "'");
  EXPECT_EQ(R.ExitCode, 1);
  std::string Json = slurp(Metrics);
  EXPECT_NE(Json.find("\"succeeded\": false"), std::string::npos);
  EXPECT_NE(Json.find("\"failed_stage\": \"parse\""), std::string::npos);
}

TEST(SpirecCli, UnwritableTraceJsonPathExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f "
                          "--trace-json /nonexistent-dir/t.json");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot open"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, UnwritableMetricsJsonPathExitsTwo) {
  RunResult R = runSpirec(writeGoodProgram() + " --entry f "
                          "--metrics-json /nonexistent-dir/m.json");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stderr.find("cannot open"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, TimingsReportCacheAndSymbolCounters) {
  std::string Program = writeGoodProgram();
  RunResult R = runSpirec("'" + Program + "' --entry f --report --timings");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stderr.find("costmodel profile cache"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("interned"), std::string::npos) << R.Stderr;
}

TEST(SpirecCli, DefaultCheckEquivSamplesAdaptToSmallCircuits) {
  // With --heap-cells 1 the good program compiles to 3 wires (2
  // variables + one 1-bit cell): 8 distinct basis states, all of which
  // the exhaustive sweep covers in a single bit-sliced block.
  std::string Program = writeGoodProgram();
  std::string Qc = ::testing::TempDir() + "spirec_cli_tiny.qc";
  RunResult Emit = runSpirec("'" + Program + "' --entry f --heap-cells 1 "
                             "--emit qc -o '" + Qc + "'");
  ASSERT_EQ(Emit.ExitCode, 0) << Emit.Stderr;
  RunResult R = runSpirec("'" + Program + "' --entry f --heap-cells 1 "
                          "--emit qc -o /dev/null --check-equiv '" + Qc +
                          "'");
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_NE(R.Stderr.find("equivalent on all 8 basis states (exhaustive)"),
            std::string::npos)
      << R.Stderr;
}

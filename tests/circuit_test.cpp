//===----------------------------------------------------------------------===//
// Tests for the circuit backend: gate representation, expression
// synthesis (validated by simulation against the interpreter), register
// allocation (including the Appendix-D pinning rule), qRAM expansion, and
// the .qc writer.
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "circuit/QcWriter.h"
#include "sim/Interpreter.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace spire;
using namespace spire::ir;
using namespace spire::circuit;

namespace {

TargetConfig Config;

/// Compiles a one-expression program `out <- E(inputs)` and evaluates the
/// circuit on a basis state; used to check every gate builder against the
/// interpreter's reference semantics.
struct ExprHarness {
  std::shared_ptr<TypeContext> Types = std::make_shared<TypeContext>();
  const ast::Type *Bool = Types->boolType();
  const ast::Type *UInt = Types->uintType();

  uint64_t evalCircuit(const CoreProgram &P, const sim::MachineState &In) {
    CompileResult R = compileToCircuit(P, Config);
    sim::BitString Bits = sim::encodeState(In, R.Layout);
    sim::runBasis(R.Circ, Bits);
    return Bits.read(R.Layout.Output.Offset, R.Layout.Output.Width);
  }

  uint64_t evalInterp(const CoreProgram &P, sim::MachineState In) {
    sim::Interpreter Interp(P, Config);
    EXPECT_TRUE(Interp.run(In)) << Interp.error();
    return Interp.output(In);
  }
};

} // namespace

TEST(Gate, NormalizationSortsControls) {
  Gate G(GateKind::X, 0, {5, 3, 9});
  EXPECT_EQ(G.Controls, (std::vector<Qubit>{3, 5, 9}));
  EXPECT_TRUE(G.touches(5));
  EXPECT_TRUE(G.touches(0));
  EXPECT_FALSE(G.touches(4));
}

TEST(Gate, NormalizationDedupesDuplicateControls) {
  // A doubled control is the same single control — degenerate operand
  // lists from imported circuits normalize instead of asserting.
  Gate G(GateKind::X, 0, {5, 3, 5, 9, 3});
  EXPECT_EQ(G.Controls, (std::vector<Qubit>{3, 5, 9}));
  Gate Pair(GateKind::X, 1, {2, 2});
  EXPECT_TRUE(Pair.isCNOT());
}

TEST(Gate, CheckGateOperandsSharedDiagnostics) {
  // The one operand check every reader and the circuit verifier share:
  // same wording for the same defect, wherever a gate comes from.
  std::vector<Qubit> Ctrls{1, 2};
  EXPECT_EQ(checkGateOperands(0, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              /*NumQubits=*/3),
            "");
  EXPECT_NE(checkGateOperands(2, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              3)
                .find("repeats a control"),
            std::string::npos);
  EXPECT_NE(checkGateOperands(5, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              3)
                .find("out of range"),
            std::string::npos);
  EXPECT_NE(checkGateOperands(0, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              2)
                .find("out of range"),
            std::string::npos);
  // NumQubits == 0 skips the range check (callers that grow the wire
  // count as they read); the repeat check still applies.
  EXPECT_EQ(checkGateOperands(5, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              0),
            "");
  EXPECT_NE(checkGateOperands(1, Ctrls.data(), Ctrls.data() + Ctrls.size(),
                              0)
                .find("repeats a control"),
            std::string::npos);
}

TEST(ControlList, InlineToHeapSpillAndBack) {
  ControlList L;
  EXPECT_TRUE(L.empty());
  L.push_back(4);
  L.push_back(2);
  EXPECT_EQ(L.size(), 2u); // Still inline.
  L.push_back(9);
  L.push_back(7); // Spilled to the heap.
  EXPECT_EQ(L.size(), 4u);
  EXPECT_EQ(L[2], 9u);

  // Copies are deep and independent of storage mode.
  ControlList Copy = L;
  Copy.push_back(1);
  EXPECT_EQ(L.size(), 4u);
  EXPECT_EQ(Copy.size(), 5u);
  EXPECT_FALSE(L == Copy);

  // Moves steal the heap buffer and leave the source empty.
  ControlList Moved = std::move(Copy);
  EXPECT_EQ(Moved.size(), 5u);
  EXPECT_TRUE(Copy.empty()); // NOLINT(bugprone-use-after-move)

  // erase() keeps the remaining prefix/suffix contiguous.
  ControlList Sorted({1, 2, 2, 3, 3});
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  EXPECT_EQ(Sorted, (std::vector<Qubit>{1, 2, 3}));

  // Assignment across storage modes.
  ControlList Small({8});
  Small = Moved;
  EXPECT_EQ(Small.size(), 5u);
  Moved = ControlList({6});
  EXPECT_EQ(Moved, (std::vector<Qubit>{6}));
}

TEST(Gate, TCostOfMCXFollowsSection81) {
  // Section 8.1: each MCX with c >= 2 controls is 2(c-2)+1 Toffolis of
  // 7 T each; NOT and CNOT are free.
  EXPECT_EQ(tCostOfMCX(0), 0);
  EXPECT_EQ(tCostOfMCX(1), 0);
  EXPECT_EQ(tCostOfMCX(2), 7);
  EXPECT_EQ(tCostOfMCX(3), 21); // "3 x 7 = 21 T gates" (Section 3.3)
  EXPECT_EQ(tCostOfMCX(4), 35);
}

TEST(Gate, TCostOfControlledH) {
  EXPECT_EQ(tCostOfControlledH(0), 0);
  EXPECT_EQ(tCostOfControlledH(1), 8);  // c_CH (Lee et al. 2021)
  EXPECT_EQ(tCostOfControlledH(2), 22); // 8 + 14
}

TEST(Gate, CountGates) {
  Circuit C;
  C.NumQubits = 4;
  C.addX(0);
  C.addX(1, {0});
  C.addX(2, {0, 1});
  C.addX(3, {0, 1, 2});
  C.addH(3);
  GateCounts Counts = countGates(C);
  EXPECT_EQ(Counts.Total, 5);
  EXPECT_EQ(Counts.MCX, 4);
  EXPECT_EQ(Counts.CNOT, 1);
  EXPECT_EQ(Counts.Toffoli, 1);
  EXPECT_EQ(Counts.H, 1);
  EXPECT_EQ(Counts.TComplexity, 7 + 21);
}

//===----------------------------------------------------------------------===//
// Expression synthesis properties: circuit == interpreter on all inputs.
//===----------------------------------------------------------------------===//

struct BinOpCase {
  ast::BinaryOp Op;
  const char *Name;
};

class BinaryOpSynthesis : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinaryOpSynthesis, MatchesInterpreterOnRandomInputs) {
  ExprHarness H;
  const ast::Type *ResultTy =
      (GetParam().Op == ast::BinaryOp::Eq ||
       GetParam().Op == ast::BinaryOp::Ne ||
       GetParam().Op == ast::BinaryOp::Lt)
          ? H.Bool
          : H.UInt;

  CoreProgram P;
  P.Types = H.Types;
  P.Inputs = {{"a", H.UInt}, {"b", H.UInt}};
  P.OutputVar = "out";
  P.OutputTy = ResultTy;
  P.Body.push_back(CoreStmt::assign(
      "out", ResultTy,
      CoreExpr::binary(GetParam().Op, Atom::var("a", H.UInt),
                       Atom::var("b", H.UInt), ResultTy)));

  std::mt19937_64 Rng(7);
  for (int Trial = 0; Trial != 24; ++Trial) {
    sim::MachineState S = sim::MachineState::make(Config.HeapCells);
    S.Regs["a"] = Rng() & 0xFF;
    S.Regs["b"] = Rng() & 0xFF;
    uint64_t FromInterp = H.evalInterp(P, S);
    uint64_t FromCircuit = H.evalCircuit(P, S);
    EXPECT_EQ(FromCircuit, FromInterp)
        << GetParam().Name << "(" << S.Regs["a"] << ", " << S.Regs["b"]
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinaryOpSynthesis,
    ::testing::Values(BinOpCase{ast::BinaryOp::Add, "add"},
                      BinOpCase{ast::BinaryOp::Sub, "sub"},
                      BinOpCase{ast::BinaryOp::Mul, "mul"},
                      BinOpCase{ast::BinaryOp::Eq, "eq"},
                      BinOpCase{ast::BinaryOp::Ne, "ne"},
                      BinOpCase{ast::BinaryOp::Lt, "lt"}),
    [](const ::testing::TestParamInfo<BinOpCase> &Info) {
      return std::string(Info.param.Name);
    });

TEST(ExprSynthesis, ConstOperands) {
  ExprHarness H;
  // out <- a + 13 and out <- 200 - a exercise constant folding in the
  // virtual-bit adder.
  for (auto [Op, ConstVal, Left] :
       std::vector<std::tuple<ast::BinaryOp, uint64_t, bool>>{
           {ast::BinaryOp::Add, 13, false},
           {ast::BinaryOp::Sub, 200, true},
           {ast::BinaryOp::Mul, 5, false},
           {ast::BinaryOp::Lt, 100, true},
           {ast::BinaryOp::Eq, 77, false}}) {
    const ast::Type *ResultTy =
        (Op == ast::BinaryOp::Eq || Op == ast::BinaryOp::Lt) ? H.Bool
                                                             : H.UInt;
    CoreProgram P;
    P.Types = H.Types;
    P.Inputs = {{"a", H.UInt}};
    P.OutputVar = "out";
    P.OutputTy = ResultTy;
    Atom A = Left ? Atom::constant(ConstVal, H.UInt) : Atom::var("a", H.UInt);
    Atom B = Left ? Atom::var("a", H.UInt) : Atom::constant(ConstVal, H.UInt);
    P.Body.push_back(CoreStmt::assign(
        "out", ResultTy, CoreExpr::binary(Op, A, B, ResultTy)));
    for (uint64_t V : {0ull, 1ull, 76ull, 77ull, 100ull, 255ull}) {
      sim::MachineState S = sim::MachineState::make(Config.HeapCells);
      S.Regs["a"] = V;
      EXPECT_EQ(H.evalCircuit(P, S), H.evalInterp(P, S))
          << "op " << static_cast<int>(Op) << " a=" << V;
    }
  }
}

TEST(ExprSynthesis, BoolOpsAndTest) {
  ExprHarness H;
  CoreProgram P;
  P.Types = H.Types;
  P.Inputs = {{"x", H.Bool}, {"y", H.Bool}, {"u", H.UInt}};
  P.OutputVar = "out";
  P.OutputTy = H.Bool;
  // out = (x && y) xor (x || y) xor (not x) xor (test u), built through
  // repeated re-declaration (XOR accumulation).
  P.Body.push_back(CoreStmt::assign(
      "out", H.Bool,
      CoreExpr::binary(ast::BinaryOp::And, Atom::var("x", H.Bool),
                       Atom::var("y", H.Bool), H.Bool)));
  P.Body.push_back(CoreStmt::assign(
      "out", H.Bool,
      CoreExpr::binary(ast::BinaryOp::Or, Atom::var("x", H.Bool),
                       Atom::var("y", H.Bool), H.Bool)));
  P.Body.push_back(CoreStmt::assign(
      "out", H.Bool,
      CoreExpr::unary(ast::UnaryOp::Not, Atom::var("x", H.Bool), H.Bool)));
  P.Body.push_back(CoreStmt::assign(
      "out", H.Bool,
      CoreExpr::unary(ast::UnaryOp::Test, Atom::var("u", H.UInt), H.Bool)));
  for (uint64_t X : {0, 1})
    for (uint64_t Y : {0, 1})
      for (uint64_t U : {0, 3}) {
        sim::MachineState S = sim::MachineState::make(Config.HeapCells);
        S.Regs["x"] = X;
        S.Regs["y"] = Y;
        S.Regs["u"] = U;
        uint64_t Expected = ((X & Y) ^ (X | Y) ^ (1 ^ X) ^ (U ? 1 : 0)) & 1;
        EXPECT_EQ(H.evalCircuit(P, S), Expected);
        EXPECT_EQ(H.evalInterp(P, S), Expected);
      }
}

TEST(ExprSynthesis, PairAndProjection) {
  ExprHarness H;
  const ast::Type *Pair = H.Types->pairType(H.UInt, H.Bool);
  CoreProgram P;
  P.Types = H.Types;
  P.Inputs = {{"u", H.UInt}, {"b", H.Bool}};
  P.OutputVar = "back";
  P.OutputTy = H.UInt;
  P.Body.push_back(CoreStmt::assign(
      "t", Pair,
      CoreExpr::pair(Atom::var("u", H.UInt), Atom::var("b", H.Bool), Pair)));
  P.Body.push_back(CoreStmt::assign(
      "back", H.UInt, CoreExpr::proj(Atom::var("t", Pair), 1, H.UInt)));
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["u"] = 173;
  S.Regs["b"] = 1;
  EXPECT_EQ(H.evalCircuit(P, S), 173u);
}

//===----------------------------------------------------------------------===//
// Whole-program property: interpreter == compiled circuit.
//===----------------------------------------------------------------------===//

class BackendProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendProperty, RandomProgramsAgreeWithInterpreter) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);

  CompileResult R = compileToCircuit(P, Config);
  for (uint64_t Trial = 0; Trial != 4; ++Trial) {
    sim::MachineState S =
        testutil::randomState(P, Config, GetParam() * 97 + Trial);
    sim::MachineState Expected = S;
    sim::Interpreter Interp(P, Config);
    ASSERT_TRUE(Interp.run(Expected)) << Interp.error();

    sim::BitString Bits = sim::encodeState(S, R.Layout);
    sim::runBasis(R.Circ, Bits);
    uint64_t Out = Bits.read(R.Layout.Output.Offset, R.Layout.Output.Width);
    EXPECT_EQ(Out, Interp.output(Expected)) << "seed " << GetParam();

    // Memory must agree as well.
    for (unsigned A = 1; A <= Config.HeapCells; ++A) {
      BitRange Cell = R.Layout.cell(A);
      EXPECT_EQ(Bits.read(Cell.Offset, Cell.Width), Expected.Mem[A])
          << "cell " << A << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendProperty,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Register allocation
//===----------------------------------------------------------------------===//

TEST(RegAlloc, ReusesReleasedRegisters) {
  // x allocated, consumed, then y allocated: y reuses x's register, so
  // the program needs width(out)+width(x) qubits beyond fixed overhead,
  // not width(out)+2*width(x).
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"a", UInt}};
  P.OutputVar = "out";
  P.OutputTy = UInt;
  P.Body.push_back(
      CoreStmt::assign("x", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  P.Body.push_back(
      CoreStmt::unassign("x", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  P.Body.push_back(
      CoreStmt::assign("y", UInt, CoreExpr::atom(Atom::var("a", UInt))));
  P.Body.push_back(
      CoreStmt::assign("out", UInt, CoreExpr::atom(Atom::var("y", UInt))));
  CompileResult R = compileToCircuit(P, Config);
  // Inputs (8) + memory (16 cells x 1 bit) + x/y shared (8) + out (8).
  unsigned Fixed = 8 + Config.HeapCells * 1;
  EXPECT_EQ(R.Layout.NumQubits, Fixed + 8 + 8);
}

TEST(RegAlloc, AppendixDPinning) {
  // The Fig. 23 scenario: a variable is consumed and re-declared inside
  // a do-block; Appendix D requires it to get the same register back.
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"c", Bool}};
  P.OutputVar = "x";
  P.OutputTy = UInt;

  // with { x <- 1 } do { if c { x -> 1; y <- 2; x <- y-1; } } ... x
  // must live in one register on both paths.
  CoreStmtList WithBody, DoBody, IfBody;
  WithBody.push_back(
      CoreStmt::assign("x", UInt, CoreExpr::atom(Atom::constant(1, UInt))));
  IfBody.push_back(CoreStmt::unassign(
      "x", UInt, CoreExpr::atom(Atom::constant(1, UInt))));
  IfBody.push_back(
      CoreStmt::assign("y", UInt, CoreExpr::atom(Atom::constant(2, UInt))));
  IfBody.push_back(CoreStmt::assign(
      "x", UInt,
      CoreExpr::binary(ast::BinaryOp::Sub, Atom::var("y", UInt),
                       Atom::constant(1, UInt), UInt)));
  DoBody.push_back(CoreStmt::ifStmt("c", std::move(IfBody)));
  // Copy x out so it survives the with reversal.
  DoBody.push_back(
      CoreStmt::assign("out", UInt, CoreExpr::atom(Atom::var("x", UInt))));
  P.Body.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  P.OutputVar = "out";

  CompileResult R = compileToCircuit(P, Config);
  // Correctness through both control paths.
  for (uint64_t C : {0, 1}) {
    sim::MachineState S = sim::MachineState::make(Config.HeapCells);
    S.Regs["c"] = C;
    sim::MachineState Expected = S;
    sim::Interpreter Interp(P, Config);
    ASSERT_TRUE(Interp.run(Expected)) << Interp.error();
    sim::BitString Bits = sim::encodeState(S, R.Layout);
    sim::runBasis(R.Circ, Bits);
    EXPECT_EQ(Bits.read(R.Layout.Output.Offset, R.Layout.Output.Width),
              Interp.output(Expected))
        << "c=" << C;
    EXPECT_EQ(Interp.output(Expected), C ? 1u : 1u);
  }
}

TEST(QRam, NullDereferenceIsNoOp) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"p", Types->ptrType(UInt)}, {"v", UInt}};
  P.OutputVar = "v";
  P.OutputTy = UInt;
  P.PointeeTypes.push_back(UInt);
  P.Body.push_back(
      CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt));

  CompileResult R = compileToCircuit(P, Config);
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["p"] = 0; // null
  S.Regs["v"] = 99;
  S.Mem[3] = 42;
  sim::BitString Bits = sim::encodeState(S, R.Layout);
  sim::runBasis(R.Circ, Bits);
  EXPECT_EQ(Bits.read(R.Layout.Inputs.at("v").Offset, 8), 99u);
  EXPECT_EQ(Bits.read(R.Layout.cell(3).Offset, R.Layout.cell(3).Width), 42u);
}

TEST(QRam, SwapsAddressedCell) {
  auto Types = std::make_shared<TypeContext>();
  const ast::Type *UInt = Types->uintType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"p", Types->ptrType(UInt)}, {"v", UInt}};
  P.OutputVar = "v";
  P.OutputTy = UInt;
  P.PointeeTypes.push_back(UInt);
  P.Body.push_back(
      CoreStmt::memSwap("p", Types->ptrType(UInt), "v", UInt));

  CompileResult R = compileToCircuit(P, Config);
  for (uint64_t Addr : {1u, 7u, 16u}) {
    sim::MachineState S = sim::MachineState::make(Config.HeapCells);
    S.Regs["p"] = Addr;
    S.Regs["v"] = 99;
    S.Mem[Addr] = 42;
    sim::BitString Bits = sim::encodeState(S, R.Layout);
    sim::runBasis(R.Circ, Bits);
    EXPECT_EQ(Bits.read(R.Layout.Inputs.at("v").Offset, 8), 42u);
    EXPECT_EQ(Bits.read(R.Layout.cell(Addr).Offset, 8), 99u);
  }
}

TEST(QcWriter, EmitsMoscaFormat) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  C.addH(0);
  C.add(Gate(GateKind::T, 1));
  std::string Text = writeQc(C);
  EXPECT_NE(Text.find(".v q0 q1 q2"), std::string::npos);
  EXPECT_NE(Text.find("BEGIN"), std::string::npos);
  EXPECT_NE(Text.find("tof q0 q1 q2"), std::string::npos);
  EXPECT_NE(Text.find("H q0"), std::string::npos);
  EXPECT_NE(Text.find("T q1"), std::string::npos);
  EXPECT_NE(Text.find("END"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tests for circuit::Netlist: construction from a circuit, global and
// per-wire traversal, unlink/restore link integrity (including the
// dancing-links LIFO restore discipline), and randomized integrity
// sweeps — the structure the qopt cancellation worklist runs over.
//===----------------------------------------------------------------------===//

#include "circuit/Netlist.h"

#include <gtest/gtest.h>
#include <random>
#include <vector>

using namespace spire::circuit;

namespace {

/// length-5 ladder touching overlapping wires:
///   0: X q2 (c: q0 q1)   1: X q3 (c: q0)   2: H q1
///   3: T q2              4: X q2 (c: q0 q1)
Circuit ladder() {
  Circuit C;
  C.NumQubits = 4;
  C.addX(2, {0, 1});
  C.addX(3, {0});
  C.addH(1);
  C.add(Gate(GateKind::T, 2));
  C.addX(2, {0, 1});
  return C;
}

std::vector<Netlist::NodeId> globalOrder(const Netlist &N) {
  std::vector<Netlist::NodeId> Order;
  for (Netlist::NodeId Id = N.head(); Id != Netlist::Nil; Id = N.next(Id))
    Order.push_back(Id);
  return Order;
}

std::vector<Netlist::NodeId> wireOrder(const Netlist &N, Qubit Q) {
  std::vector<Netlist::NodeId> Order;
  for (Netlist::NodeId Id = N.wireHead(Q); Id != Netlist::Nil;
       Id = N.nextOnWire(Id, Q))
    Order.push_back(Id);
  return Order;
}

} // namespace

TEST(Netlist, BuildsGlobalAndWireSequences) {
  Netlist N(ladder());
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.liveCount(), 5u);
  EXPECT_EQ(globalOrder(N), (std::vector<Netlist::NodeId>{0, 1, 2, 3, 4}));
  // Wire 0 is touched (as a control) by gates 0, 1, 4.
  EXPECT_EQ(wireOrder(N, 0), (std::vector<Netlist::NodeId>{0, 1, 4}));
  // Wire 2 is the target of gates 0, 3, 4.
  EXPECT_EQ(wireOrder(N, 2), (std::vector<Netlist::NodeId>{0, 3, 4}));
  // Wire 3 only belongs to gate 1.
  EXPECT_EQ(wireOrder(N, 3), (std::vector<Netlist::NodeId>{1}));
  // Wire indexing: wire 0 is the target, then sorted controls.
  EXPECT_EQ(N.wireQubit(0, 0), 2u);
  EXPECT_EQ(N.wireQubit(0, 1), 0u);
  EXPECT_EQ(N.wireQubit(0, 2), 1u);
}

TEST(Netlist, ToCircuitRoundTrips) {
  Circuit C = ladder();
  Netlist N(C);
  Circuit Back = N.toCircuit();
  EXPECT_EQ(Back.NumQubits, C.NumQubits);
  ASSERT_EQ(Back.Gates.size(), C.Gates.size());
  for (size_t I = 0; I != C.Gates.size(); ++I)
    EXPECT_TRUE(Back.Gates[I] == C.Gates[I]) << "gate " << I;
}

TEST(Netlist, UnlinkSplicesNeighborsOnEveryWire) {
  Netlist N(ladder());
  N.unlink(1); // X q3 (c: q0): wire 0's list must become 0 -> 4.
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.liveCount(), 4u);
  EXPECT_FALSE(N.live(1));
  EXPECT_EQ(globalOrder(N), (std::vector<Netlist::NodeId>{0, 2, 3, 4}));
  EXPECT_EQ(wireOrder(N, 0), (std::vector<Netlist::NodeId>{0, 4}));
  EXPECT_EQ(wireOrder(N, 3), std::vector<Netlist::NodeId>{});
  // O(1) neighbor queries see through the removal.
  EXPECT_EQ(N.nextOnWire(0, 0), 4u);
  EXPECT_EQ(N.prevOnWire(4, 0), 0u);
}

TEST(Netlist, UnlinkHeadAndTail) {
  Netlist N(ladder());
  N.unlink(0);
  N.unlink(4);
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.head(), 1u);
  EXPECT_EQ(N.tail(), 3u);
  EXPECT_EQ(wireOrder(N, 2), (std::vector<Netlist::NodeId>{3}));
  EXPECT_EQ(N.toCircuit().Gates.size(), 3u);
}

TEST(Netlist, RestoreUndoesUnlinkInLifoOrder) {
  Circuit C = ladder();
  Netlist N(C);
  N.unlink(1);
  N.unlink(3);
  N.unlink(0);
  EXPECT_TRUE(N.checkIntegrity());
  // Dancing-links restore: exactly the reverse order of the unlinks.
  N.restore(0);
  N.restore(3);
  N.restore(1);
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.liveCount(), 5u);
  EXPECT_EQ(globalOrder(N), (std::vector<Netlist::NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(wireOrder(N, 0), (std::vector<Netlist::NodeId>{0, 1, 4}));
  Circuit Back = N.toCircuit();
  ASSERT_EQ(Back.Gates.size(), C.Gates.size());
  for (size_t I = 0; I != C.Gates.size(); ++I)
    EXPECT_TRUE(Back.Gates[I] == C.Gates[I]) << "gate " << I;
}

TEST(Netlist, EmptyCircuit) {
  Circuit C;
  C.NumQubits = 3;
  Netlist N(C);
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.head(), Netlist::Nil);
  EXPECT_EQ(N.wireHead(0), Netlist::Nil);
  EXPECT_EQ(N.toCircuit().Gates.size(), 0u);
}

TEST(Netlist, McxWiresSpillPastInlineControls) {
  Circuit C;
  C.NumQubits = 6;
  C.addX(5, {0, 1, 2, 3, 4}); // 5 controls: heap-spilled ControlList.
  C.addX(5, {0, 1, 2, 3, 4});
  C.addX(0, {3});
  Netlist N(C);
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.numWires(0), 6u);
  EXPECT_EQ(wireOrder(N, 3), (std::vector<Netlist::NodeId>{0, 1, 2}));
  N.unlink(1);
  EXPECT_TRUE(N.checkIntegrity());
  EXPECT_EQ(wireOrder(N, 3), (std::vector<Netlist::NodeId>{0, 2}));
}

TEST(Netlist, RandomizedUnlinkRestoreIntegritySweep) {
  std::mt19937_64 Rng(42);
  Circuit C;
  C.NumQubits = 8;
  for (unsigned I = 0; I != 200; ++I) {
    Qubit T = Rng() % 8;
    switch (Rng() % 4) {
    case 0:
      C.addX(T);
      break;
    case 1:
      C.addX(T, {(T + 1 + Rng() % 7) % 8});
      break;
    case 2: {
      Qubit A = (T + 1 + Rng() % 7) % 8;
      Qubit B = (T + 1 + Rng() % 7) % 8;
      if (B == A)
        B = (B + 1) % 8 == T ? (B + 2) % 8 : (B + 1) % 8;
      C.addX(T, {A, B});
      break;
    }
    default:
      C.add(Gate(Rng() % 2 ? GateKind::T : GateKind::H, T));
      break;
    }
  }

  Netlist N(C);
  ASSERT_TRUE(N.checkIntegrity());
  std::vector<Netlist::NodeId> Unlinked;
  for (int Step = 0; Step != 120; ++Step) {
    Netlist::NodeId Id = Rng() % N.size();
    if (N.live(Id)) {
      N.unlink(Id);
      Unlinked.push_back(Id);
    }
    if (Step % 10 == 9)
      ASSERT_TRUE(N.checkIntegrity()) << "after step " << Step;
  }
  ASSERT_TRUE(N.checkIntegrity());
  // Full LIFO restore returns to the original circuit.
  while (!Unlinked.empty()) {
    N.restore(Unlinked.back());
    Unlinked.pop_back();
  }
  ASSERT_TRUE(N.checkIntegrity());
  EXPECT_EQ(N.liveCount(), C.Gates.size());
  Circuit Back = N.toCircuit();
  ASSERT_EQ(Back.Gates.size(), C.Gates.size());
  for (size_t I = 0; I != C.Gates.size(); ++I)
    EXPECT_TRUE(Back.Gates[I] == C.Gates[I]) << "gate " << I;
}

//===----------------------------------------------------------------------===//
// Focused tests for the reversible IR interpreter (Appendix B.2 machine
// semantics): null-pointer dereference, word-width wraparound, memory
// swaps, swaps, state encoding/decoding, and reversibility — running
// s; I[s] restores the machine state exactly.
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ir/Core.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::ir;

namespace {

circuit::TargetConfig Config;

struct InterpFixture : ::testing::Test {
  InterpFixture() {
    Types = std::make_shared<TypeContext>();
    UInt = Types->uintType();
    Bool = Types->boolType();
    Ptr = Types->ptrType(UInt);
  }

  CoreProgram makeProgram(CoreStmtList Body,
                          std::vector<std::pair<Symbol, const Type *>>
                              Inputs) {
    CoreProgram P;
    P.Types = Types;
    P.Inputs = std::move(Inputs);
    P.Body = std::move(Body);
    P.OutputVar = P.Inputs.empty() ? Symbol() : P.Inputs.front().first;
    P.OutputTy = P.Inputs.empty() ? nullptr : P.Inputs.front().second;
    P.PointeeTypes.push_back(UInt);
    return P;
  }

  uint64_t run(const CoreProgram &P, sim::MachineState &S) {
    sim::Interpreter Interp(P, Config);
    EXPECT_TRUE(Interp.run(S)) << Interp.error();
    return Interp.output(S);
  }

  std::shared_ptr<TypeContext> Types;
  const Type *UInt, *Bool, *Ptr;
};

} // namespace

TEST_F(InterpFixture, NullDereferenceIsNoOp) {
  // Section 4: "the dereferencing of a null pointer is a no-op, not a
  // runtime error".
  CoreStmtList Body;
  Body.push_back(CoreStmt::memSwap("p", Ptr, "v", UInt));
  CoreProgram P = makeProgram(std::move(Body), {{"p", Ptr}, {"v", UInt}});
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["p"] = 0; // null
  S.Regs["v"] = 42;
  S.Mem[1] = 7;
  run(P, S);
  EXPECT_EQ(S.Regs["v"], 42u); // untouched
  EXPECT_EQ(S.Mem[1], 7u);
}

TEST_F(InterpFixture, MemSwapExchangesCellAndRegister) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::memSwap("p", Ptr, "v", UInt));
  CoreProgram P = makeProgram(std::move(Body), {{"p", Ptr}, {"v", UInt}});
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["p"] = 3;
  S.Regs["v"] = 42;
  S.Mem[3] = 9;
  run(P, S);
  EXPECT_EQ(S.Regs["v"], 9u);
  EXPECT_EQ(S.Mem[3], 42u);
}

TEST_F(InterpFixture, ArithmeticWrapsAtWordWidth) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "s", UInt,
      CoreExpr::binary(ast::BinaryOp::Add, Atom::var("a", UInt),
                       Atom::var("b", UInt), UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}, {"b", UInt}});
  P.OutputVar = "s";
  P.OutputTy = UInt;
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 200;
  S.Regs["b"] = 100;
  EXPECT_EQ(run(P, S), (200u + 100u) % 256u); // 8-bit words
}

TEST_F(InterpFixture, MultiplicationWraps) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "m", UInt,
      CoreExpr::binary(ast::BinaryOp::Mul, Atom::var("a", UInt),
                       Atom::var("b", UInt), UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}, {"b", UInt}});
  P.OutputVar = "m";
  P.OutputTy = UInt;
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 77;
  S.Regs["b"] = 55;
  EXPECT_EQ(run(P, S), (77u * 55u) % 256u);
}

TEST_F(InterpFixture, SubtractionIsModular) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "d", UInt,
      CoreExpr::binary(ast::BinaryOp::Sub, Atom::var("a", UInt),
                       Atom::var("b", UInt), UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}, {"b", UInt}});
  P.OutputVar = "d";
  P.OutputTy = UInt;
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 3;
  S.Regs["b"] = 5;
  EXPECT_EQ(run(P, S), (3u - 5u) & 0xFFu);
}

TEST_F(InterpFixture, SwapExchangesRegisters) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::swap("a", UInt, "b", UInt));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}, {"b", UInt}});
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 1;
  S.Regs["b"] = 2;
  run(P, S);
  EXPECT_EQ(S.Regs["a"], 2u);
  EXPECT_EQ(S.Regs["b"], 1u);
}

TEST_F(InterpFixture, UnboundVariablesReadAsZero) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::assign(
      "x", UInt,
      CoreExpr::binary(ast::BinaryOp::Add, Atom::var("a", UInt),
                       Atom::constant(1, UInt), UInt)));
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}});
  P.OutputVar = "x";
  P.OutputTy = UInt;
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  EXPECT_EQ(run(P, S), 1u); // a defaults to zero
}

TEST_F(InterpFixture, EncodeDecodeRoundTrip) {
  CoreStmtList Body;
  Body.push_back(CoreStmt::skip());
  CoreProgram P = makeProgram(std::move(Body), {{"a", UInt}, {"b", Bool}});
  circuit::CompileResult R = circuit::compileToCircuit(P, Config);

  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 0xAB;
  S.Regs["b"] = 1;
  for (unsigned Cell = 1; Cell <= Config.HeapCells; ++Cell)
    S.Mem[Cell] = Cell % 2;

  sim::BitString Bits = sim::encodeState(S, R.Layout);
  sim::MachineState Back = sim::decodeState(Bits, R.Layout, {"a", "b"});
  EXPECT_EQ(Back.Regs["a"], 0xABu);
  EXPECT_EQ(Back.Regs["b"], 1u);
  EXPECT_EQ(Back.Mem, S.Mem);
}

TEST_F(InterpFixture, WithNestingAtDepth100kRunsInConstantCxxStack) {
  // Pins the interpreter's explicit worklist machine: with-blocks nested
  // 100k deep (each body and uncompute leg one level further in) must
  // execute without C++ recursion. Innermost statement: out ^= 1,
  // executed once; every with-body ancilla must restore to zero.
  constexpr unsigned Depth = 100000;
  CoreStmtList Inner;
  Inner.push_back(CoreStmt::assign(
      "out", UInt, CoreExpr::atom(Atom::constant(1, UInt))));
  for (unsigned I = 0; I != Depth; ++I) {
    Symbol T = Symbol("t" + std::to_string(I));
    CoreStmtList WithBody;
    WithBody.push_back(CoreStmt::assign(
        T, UInt, CoreExpr::atom(Atom::constant(1, UInt))));
    CoreStmtList DoBody = std::move(Inner);
    Inner = CoreStmtList();
    Inner.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  }
  CoreProgram P = makeProgram(std::move(Inner), {{"a", UInt}});
  P.OutputVar = "out";
  P.OutputTy = UInt;
  sim::MachineState S = sim::MachineState::make(Config.HeapCells);
  S.Regs["a"] = 5;
  EXPECT_EQ(run(P, S), 1u);
  // Every with-ancilla was uncomputed and erased; only the input and the
  // output survive.
  EXPECT_EQ(S.Regs.size(), 2u);
  EXPECT_EQ(S.Regs["a"], 5u);
}

//===----------------------------------------------------------------------===//
// Reversibility: running s; I[s] restores the machine state (the
// property underlying the with-do construct and all uncomputation).
//===----------------------------------------------------------------------===//

class ReversalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReversalProperty, ForwardThenReverseRestoresState) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(12);

  // Build s; I[s] as the body.
  CoreStmtList Reversed = reverseStmts(P.Body);
  for (auto &S : Reversed)
    P.Body.push_back(std::move(S));

  sim::MachineState S0 = testutil::randomState(P, Config, GetParam() + 7);
  sim::MachineState S = S0;
  sim::Interpreter Interp(P, Config);
  ASSERT_TRUE(Interp.run(S)) << Interp.error();

  for (const auto &[Name, Ty] : P.Inputs)
    EXPECT_EQ(S.Regs[Name], S0.Regs[Name]) << Name;
  EXPECT_EQ(S.Mem, S0.Mem);
}

TEST_P(ReversalProperty, ReversalIsAnInvolutionSyntactically) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(12);
  CoreStmtList Twice = reverseStmts(reverseStmts(P.Body));
  EXPECT_TRUE(stmtListEquals(P.Body, Twice));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReversalProperty,
                         ::testing::Range<uint64_t>(300, 320));

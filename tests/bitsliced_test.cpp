//===----------------------------------------------------------------------===//
// Unit tests for the bit-sliced batch simulator: per-op transfer
// functions on hand-built lane blocks (Flip/Cnot/Toffoli/MCX chains and
// the fused-SWAP recognizer), counter/random block loading semantics,
// compile-tape correctness on every paper benchmark via the
// lane-agreement oracle, and the exhaustive equivalence self-test that
// proves a circuit against its optimized form on all 2^n basis states.
//===----------------------------------------------------------------------===//

#include "sim/BitSliced.h"

#include "benchmarks/Benchmarks.h"
#include "benchmarks/Harness.h"
#include "driver/Pipeline.h"
#include "interchange/Interchange.h"
#include "qopt/Passes.h"
#include "sim/Simulator.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>
#include <algorithm>

using namespace spire;
using namespace spire::circuit;
using namespace spire::sim;

namespace {

/// Compiles `C` or fails the test.
BitSlicedSimulator compileOrDie(const Circuit &C) {
  std::optional<BitSlicedSimulator> S = BitSlicedSimulator::compile(C);
  EXPECT_TRUE(S.has_value()) << "circuit did not compile to a tape";
  return *S;
}

/// Runs every 64-state block of an exhaustive sweep over C.NumQubits
/// wires and checks each lane bit against the interpreter.
void expectTapeMatchesInterpreterExhaustively(const Circuit &C) {
  BitSlicedSimulator Tape = compileOrDie(C);
  ASSERT_LE(C.NumQubits, 16u) << "exhaustive helper is for small circuits";
  const uint64_t Space = uint64_t(1) << C.NumQubits;
  const uint64_t Blocks = std::max<uint64_t>(1, Space / LaneBits);
  std::vector<uint64_t> In(C.NumQubits), Out(C.NumQubits);
  for (uint64_t B = 0; B != Blocks; ++B) {
    loadCounterBlock(In.data(), C.NumQubits, B * LaneBits, C.NumQubits);
    std::copy(In.begin(), In.end(), Out.begin());
    Tape.runBlock(Out.data());
    for (unsigned Bit = 0; Bit != LaneBits; ++Bit)
      ASSERT_TRUE(laneAgreesWithBasis(C, In.data(), Out.data(), Bit))
          << "block " << B << " bit " << Bit;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-op transfer functions
//===----------------------------------------------------------------------===//

TEST(BitSlicedOps, FlipInvertsTheWholeLane) {
  Circuit C;
  C.NumQubits = 2;
  C.addX(1);
  BitSlicedSimulator Tape = compileOrDie(C);
  ASSERT_EQ(Tape.numOps(), 1u);
  EXPECT_EQ(Tape.tape()[0].K, BitOp::Flip);

  uint64_t L[2] = {0x00FF00FF00FF00FFull, 0x123456789ABCDEF0ull};
  Tape.runBlock(L);
  EXPECT_EQ(L[0], 0x00FF00FF00FF00FFull); // untouched wire
  EXPECT_EQ(L[1], ~0x123456789ABCDEF0ull);
}

TEST(BitSlicedOps, CnotXorsControlIntoTarget) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0});
  BitSlicedSimulator Tape = compileOrDie(C);
  ASSERT_EQ(Tape.numOps(), 1u);
  EXPECT_EQ(Tape.tape()[0].K, BitOp::Cnot);

  uint64_t L[3] = {0xAAAAAAAAAAAAAAAAull, 0xDEADBEEFDEADBEEFull,
                   0x0F0F0F0F0F0F0F0Full};
  Tape.runBlock(L);
  EXPECT_EQ(L[0], 0xAAAAAAAAAAAAAAAAull); // control unchanged
  EXPECT_EQ(L[1], 0xDEADBEEFDEADBEEFull);
  EXPECT_EQ(L[2], 0x0F0F0F0F0F0F0F0Full ^ 0xAAAAAAAAAAAAAAAAull);
}

TEST(BitSlicedOps, ToffoliAndsControlsIntoTarget) {
  Circuit C;
  C.NumQubits = 3;
  C.addX(2, {0, 1});
  BitSlicedSimulator Tape = compileOrDie(C);
  ASSERT_EQ(Tape.numOps(), 1u);
  EXPECT_EQ(Tape.tape()[0].K, BitOp::Toffoli);

  uint64_t L[3] = {0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0};
  Tape.runBlock(L);
  // Target flips only in states where BOTH controls are 1.
  EXPECT_EQ(L[2], 0xAAAAAAAAAAAAAAAAull & 0xCCCCCCCCCCCCCCCCull);
}

TEST(BitSlicedOps, McxChainsAccumulatorAcrossAllControls) {
  // 3 and 4 controls exercise AndInit + AndFold... + XorAcc; the flip
  // mask must be the AND of every control lane, not any prefix.
  for (unsigned NumControls : {3u, 4u}) {
    Circuit C;
    C.NumQubits = NumControls + 1;
    ControlList Controls;
    for (unsigned Q = 0; Q != NumControls; ++Q)
      Controls.push_back(Q);
    C.addX(NumControls, Controls);
    BitSlicedSimulator Tape = compileOrDie(C);
    ASSERT_EQ(Tape.numOps(), size_t(NumControls)); // init + folds + xor
    EXPECT_EQ(Tape.tape()[0].K, BitOp::AndInit);
    EXPECT_EQ(Tape.tape()[Tape.numOps() - 1].K, BitOp::XorAcc);

    std::vector<uint64_t> L(C.NumQubits);
    loadCounterBlock(L.data(), C.NumQubits, 0, C.NumQubits);
    std::vector<uint64_t> Expect = L;
    uint64_t Mask = ~uint64_t(0);
    for (unsigned Q = 0; Q != NumControls; ++Q)
      Mask &= L[Q];
    Expect[NumControls] ^= Mask;
    Tape.runBlock(L.data());
    EXPECT_EQ(L, Expect) << NumControls << " controls";
  }
}

TEST(BitSlicedOps, ControlOnHighWireAndTargetOnLowWire) {
  // Control/target order is arbitrary in the gate; the tape must honor
  // the wire indices, not assume control < target.
  Circuit C;
  C.NumQubits = 4;
  C.addX(0, {3});
  BitSlicedSimulator Tape = compileOrDie(C);
  uint64_t L[4] = {0, 0, 0, 0xF0F0F0F0F0F0F0F0ull};
  Tape.runBlock(L);
  EXPECT_EQ(L[0], 0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(L[3], 0xF0F0F0F0F0F0F0F0ull);
}

TEST(BitSlicedOps, SwapTripleFusesToOneLaneExchange) {
  // CNOT(b<-a); CNOT(a<-b); CNOT(b<-a) is the SWAP idiom — the compiler
  // recognizes it and emits one Swap op that just exchanges lane words.
  Circuit C;
  C.NumQubits = 2;
  C.addX(1, {0});
  C.addX(0, {1});
  C.addX(1, {0});
  BitSlicedSimulator Tape = compileOrDie(C);
  ASSERT_EQ(Tape.numOps(), 1u);
  EXPECT_EQ(Tape.tape()[0].K, BitOp::Swap);
  EXPECT_EQ(Tape.numGates(), 3u); // throughput still counts source gates

  uint64_t L[2] = {0x1111111111111111ull, 0x2222222222222222ull};
  Tape.runBlock(L);
  EXPECT_EQ(L[0], 0x2222222222222222ull);
  EXPECT_EQ(L[1], 0x1111111111111111ull);
}

TEST(BitSlicedOps, BrokenSwapTripleIsNotFused) {
  // Same three CNOTs but on a non-matching pattern (middle gate reuses
  // the first direction): must compile as three Cnot ops and still
  // agree with the interpreter.
  Circuit C;
  C.NumQubits = 2;
  C.addX(1, {0});
  C.addX(1, {0});
  C.addX(1, {0});
  BitSlicedSimulator Tape = compileOrDie(C);
  EXPECT_EQ(Tape.numOps(), 3u);
  expectTapeMatchesInterpreterExhaustively(C);
}

TEST(BitSlicedOps, NonClassicalGatesDoNotCompile) {
  Circuit C;
  C.NumQubits = 2;
  C.addX(1, {0});
  C.addH(0);
  EXPECT_FALSE(BitSlicedSimulator::compile(C).has_value());

  Circuit P;
  P.NumQubits = 1;
  P.add(Gate(GateKind::T, 0));
  EXPECT_FALSE(BitSlicedSimulator::compile(P).has_value());
}

//===----------------------------------------------------------------------===//
// Block loading
//===----------------------------------------------------------------------===//

TEST(BitSlicedState, CounterBlockEnumeratesConsecutiveStates) {
  // Block loaded with Base=64 must hold states 64..127: bit i of lane q
  // is bit q of the integer 64+i.
  const unsigned Q = 8;
  std::vector<uint64_t> L(Q);
  loadCounterBlock(L.data(), Q, /*Base=*/64, /*Width=*/Q);
  for (unsigned Bit = 0; Bit != LaneBits; ++Bit) {
    uint64_t State = 64 + Bit;
    for (unsigned W = 0; W != Q; ++W)
      ASSERT_EQ((L[W] >> Bit) & 1, (State >> W) & 1)
          << "state " << State << " wire " << W;
  }
}

TEST(BitSlicedState, CounterBlockLeavesWiresAboveWidthClean) {
  const unsigned Q = 10;
  std::vector<uint64_t> L(Q, ~uint64_t(0));
  loadCounterBlock(L.data(), Q, 0, /*Width=*/4);
  for (unsigned W = 4; W != Q; ++W)
    EXPECT_EQ(L[W], 0u) << "wire " << W;
}

TEST(BitSlicedState, BatchStateGetSetRoundTrips) {
  BatchState B(5, 4); // 256 states
  B.set(200, 3, true);
  B.set(0, 0, true);
  EXPECT_TRUE(B.get(200, 3));
  EXPECT_TRUE(B.get(0, 0));
  EXPECT_FALSE(B.get(200, 2));
  EXPECT_FALSE(B.get(199, 3));
  B.set(200, 3, false);
  EXPECT_FALSE(B.get(200, 3));
}

TEST(BitSlicedState, BatchCounterMatchesRawBlockLoader) {
  BatchState B(6, 2);
  B.loadCounter(1, 64, 6);
  std::vector<uint64_t> Raw(6);
  loadCounterBlock(Raw.data(), 6, 64, 6);
  EXPECT_TRUE(std::equal(Raw.begin(), Raw.end(), B.block(1)));
}

TEST(BitSlicedState, RandomBlocksAreDeterministicPerSeed) {
  uint64_t RngA = 42, RngB = 42, RngC = 43;
  std::vector<uint64_t> A(4), B(4), C(4);
  loadRandomBlock(A.data(), 4, 4, RngA);
  loadRandomBlock(B.data(), 4, 4, RngB);
  loadRandomBlock(C.data(), 4, 4, RngC);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(BitSlicedState, RunAdvancesEveryBlockOfABatch) {
  Circuit C;
  C.NumQubits = 7;
  C.addX(6, {0, 1});
  C.addX(3);
  BitSlicedSimulator Tape = compileOrDie(C);
  BatchState B(7, 2); // 128 states = full 7-qubit space
  B.loadCounter(0, 0, 7);
  B.loadCounter(1, 64, 7);
  Tape.run(B);
  for (uint64_t State = 0; State != 128; ++State) {
    BitString Ref(7);
    for (unsigned W = 0; W != 7; ++W)
      Ref.set(W, (State >> W) & 1);
    runBasis(C, Ref);
    for (unsigned W = 0; W != 7; ++W)
      ASSERT_EQ(B.get(State, W), Ref.get(W))
          << "state " << State << " wire " << W;
  }
}

//===----------------------------------------------------------------------===//
// Whole-circuit correctness
//===----------------------------------------------------------------------===//

TEST(BitSlicedCircuits, EveryPaperBenchmarkCompilesAndAgreesWithInterpreter) {
  // All 11 compiled benchmarks are X-only (Tower programs are classical
  // reversible), so each must compile to a tape; one random 64-state
  // block per benchmark is replayed lane-by-lane through runBasis.
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    driver::PipelineOptions Opts;
    Opts.BuildCircuit = true;
    Opts.AnalyzeCost = false;
    driver::CompilationResult R =
        benchmarks::runPipelineOrDie(B, B.SizeIndexed ? 2 : 0, Opts);
    const Circuit &C = R.Compiled->Circ;
    ASSERT_TRUE(interchange::isClassical(C));

    std::optional<BitSlicedSimulator> Tape = BitSlicedSimulator::compile(C);
    ASSERT_TRUE(Tape.has_value());
    EXPECT_EQ(Tape->numQubits(), C.NumQubits);
    EXPECT_EQ(Tape->numGates(), C.Gates.size());

    uint64_t Rng = 0xb17e5ull;
    std::vector<uint64_t> In(C.NumQubits), Out(C.NumQubits);
    loadRandomBlock(In.data(), C.NumQubits, C.NumQubits, Rng);
    std::copy(In.begin(), In.end(), Out.begin());
    Tape->runBlock(Out.data());
    // Full 64-bit replay on the smaller circuits; spot-check 8 lanes on
    // the giants to keep the interpreter leg of the test fast.
    unsigned Step = C.Gates.size() > 50000 ? 8 : 1;
    for (unsigned Bit = 0; Bit < LaneBits; Bit += Step)
      ASSERT_TRUE(laneAgreesWithBasis(C, In.data(), Out.data(), Bit))
          << "lane bit " << Bit;
  }
}

TEST(BitSlicedCircuits, ExhaustiveSelfTestAgainstOptimizedForm) {
  // The acceptance property from the issue: a circuit and its
  // qopt-optimized form are proven equivalent on ALL 2^n basis states.
  Circuit C;
  C.NumQubits = 9;
  for (unsigned I = 0; I != 20; ++I) {
    C.addX((I * 5 + 2) % 9, {I % 9 == (I * 5 + 2) % 9 ? (I + 1) % 9
                                                      : I % 9});
    C.addX(I % 9);
    C.addX(I % 9); // adjacent self-inverse pair for the optimizer
  }
  Circuit Opt = qopt::cancelAdjacentGates(C, qopt::CancelOptions::standard());
  EXPECT_LT(Opt.Gates.size(), C.Gates.size());

  interchange::EquivalenceReport R = interchange::checkEquivalence(
      C, Opt, interchange::EquivalenceOptions());
  EXPECT_TRUE(R.Equivalent) << R.Detail;
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_TRUE(R.BitSliced);
  EXPECT_EQ(R.StatesRun, uint64_t(1) << 9);
}

TEST(BitSlicedCircuits, DenseGateMixMatchesInterpreterOnAllStates) {
  // A handwritten mix of every op the tape ISA can emit, swept over the
  // whole 10-qubit space.
  Circuit C;
  C.NumQubits = 10;
  C.addX(0);
  C.addX(9, {0});
  C.addX(5, {1, 2});
  C.addX(7, {0, 3, 4});       // MCX-3: accumulator chain
  C.addX(8, {1, 2, 5, 6});    // MCX-4
  C.addX(2, {9});
  C.addX(9, {2});
  C.addX(2, {9});             // fused swap
  C.addX(4);
  expectTapeMatchesInterpreterExhaustively(C);
}

//===----------------------------------------------------------------------===//
// Tests for the Tower lexer, parser, and type checker.
//===----------------------------------------------------------------------===//

#include "ast/Reverse.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "sema/TypeChecker.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::frontend;

namespace {

std::vector<Token> lex(const char *Source) {
  support::DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

bool checks(const char *Source) {
  support::DiagnosticEngine Diags;
  std::optional<ast::Program> P = parseProgram(Source, Diags);
  if (!P)
    return false;
  return sema::typeCheck(*P, Diags);
}

} // namespace

TEST(Lexer, Arrows) {
  std::vector<Token> T = lex("<- -> <-> < > = == != && ||");
  ASSERT_GE(T.size(), 10u);
  EXPECT_EQ(T[0].Kind, TokenKind::Assign);
  EXPECT_EQ(T[1].Kind, TokenKind::UnAssign);
  EXPECT_EQ(T[2].Kind, TokenKind::SwapArrow);
  EXPECT_EQ(T[3].Kind, TokenKind::Less);
  EXPECT_EQ(T[4].Kind, TokenKind::Greater);
  EXPECT_EQ(T[5].Kind, TokenKind::Equal);
  EXPECT_EQ(T[6].Kind, TokenKind::EqEq);
  EXPECT_EQ(T[7].Kind, TokenKind::NotEq);
  EXPECT_EQ(T[8].Kind, TokenKind::AmpAmp);
  EXPECT_EQ(T[9].Kind, TokenKind::PipePipe);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  std::vector<Token> T = lex("fun length with do iff lettuce");
  EXPECT_EQ(T[0].Kind, TokenKind::KwFun);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Text, "length");
  EXPECT_EQ(T[2].Kind, TokenKind::KwWith);
  EXPECT_EQ(T[3].Kind, TokenKind::KwDo);
  EXPECT_EQ(T[4].Kind, TokenKind::Identifier); // iff is not a keyword
  EXPECT_EQ(T[5].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntegersAndComments) {
  std::vector<Token> T = lex("42 /* block\ncomment */ 7 // trailing\n99");
  EXPECT_EQ(T[0].IntValue, 42u);
  EXPECT_EQ(T[1].IntValue, 7u);
  EXPECT_EQ(T[2].IntValue, 99u);
  EXPECT_EQ(T[3].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, Locations) {
  std::vector<Token> T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
}

TEST(Lexer, ErrorOnStrayCharacter) {
  support::DiagnosticEngine Diags;
  Lexer L("a $ b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, Figure1Parses) {
  const char *Source = R"(
type list = (uint, ptr<list>);
fun length[n](xs: ptr<list>, acc: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- acc;
  } else with {
    let temp <- default<list>;
    *xs <-> temp;
    let next <- temp.2;
    let r <- acc + 1;
  } do {
    let out <- length[n-1](next, r);
  }
  return out;
}
)";
  ast::Program P = parseProgramOrDie(Source);
  ASSERT_EQ(P.Functions.size(), 1u);
  const ast::FunDecl &F = P.Functions[0];
  EXPECT_EQ(F.Name, "length");
  EXPECT_EQ(F.SizeParam, "n");
  EXPECT_EQ(F.ReturnVar, "out");
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_EQ(F.Params[0].first, "xs");
  // Body: one with-do statement.
  ASSERT_EQ(F.Body.size(), 1u);
  EXPECT_EQ(F.Body[0]->K, ast::Stmt::Kind::With);
}

TEST(Parser, TypeSyntax) {
  ast::Program P = parseProgramOrDie(
      "type pairptr = ((uint, bool), ptr<uint>);\n"
      "fun id(x: pairptr) { let out <- x; return out; }");
  const ast::Type *T = P.Types->lookupAlias("pairptr");
  ASSERT_NE(T, nullptr);
  ASSERT_TRUE(T->isPair());
  EXPECT_TRUE(T->first()->isPair());
  EXPECT_TRUE(T->second()->isPtr());
  EXPECT_EQ(T->str(), "((uint, bool), ptr<uint>)");
}

TEST(Parser, PrecedenceRendering) {
  ast::Program P = parseProgramOrDie(
      "fun f(a: uint, b: uint, c: uint) {"
      "  let x <- a + b * c;"
      "  let y <- a == b && c == a;"
      "  return x; }");
  const auto &Body = P.Functions[0].Body;
  // a + (b * c)
  EXPECT_EQ(Body[0]->E->str(), "a + b * c");
  EXPECT_EQ(Body[0]->E->BOp, ast::BinaryOp::Add);
  // (a == b) && (c == a)
  EXPECT_EQ(Body[1]->E->BOp, ast::BinaryOp::And);
}

TEST(Parser, SwapForms) {
  ast::Program P = parseProgramOrDie(
      "fun f(p: ptr<uint>, a: uint, b: uint) {"
      "  a <-> b;"
      "  *p <-> a;"
      "  let out <- a;"
      "  return out; }");
  const auto &Body = P.Functions[0].Body;
  EXPECT_EQ(Body[0]->K, ast::Stmt::Kind::Swap);
  EXPECT_EQ(Body[1]->K, ast::Stmt::Kind::MemSwap);
  EXPECT_EQ(Body[1]->Name, "p");
  EXPECT_EQ(Body[1]->Name2, "a");
}

TEST(Parser, ReturnTypeAnnotation) {
  ast::Program P = parseProgramOrDie(
      "fun f(a: uint) -> bool { let out <- test a; return out; }");
  ASSERT_NE(P.Functions[0].ReturnTy, nullptr);
  EXPECT_TRUE(P.Functions[0].ReturnTy->isBool());
}

TEST(Parser, ErrorRecoveryReportsLocation) {
  support::DiagnosticEngine Diags;
  std::optional<ast::Program> P =
      parseProgram("fun f( { return x; }", Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Sema, Figure1TypeChecks) {
  EXPECT_TRUE(checks(R"(
type list = (uint, ptr<list>);
fun length[n](xs: ptr<list>, acc: uint) {
  with {
    let is_empty <- xs == null;
  } do if is_empty {
    let out <- acc;
  } else with {
    let temp <- default<list>;
    *xs <-> temp;
    let next <- temp.2;
    let r <- acc + 1;
  } do {
    let out <- length[n-1](next, r);
  }
  return out;
}
)"));
}

TEST(Sema, RejectsUndeclaredVariable) {
  EXPECT_FALSE(checks("fun f(a: uint) { let out <- b; return out; }"));
}

TEST(Sema, RejectsTypeMismatch) {
  EXPECT_FALSE(checks("fun f(a: uint, b: bool) {"
                      "  let out <- a && b; return out; }"));
}

TEST(Sema, RejectsModifiedCondition) {
  // S-If: the condition may not be modified by the body.
  EXPECT_FALSE(checks("fun f(c: bool) {"
                      "  if c { let c <- true; }"
                      "  let out <- c; return out; }"));
}

TEST(Sema, RejectsBranchConsumingOuter) {
  EXPECT_FALSE(checks("fun f(c: bool, x: uint) {"
                      "  if c { let x -> 5; }"
                      "  let out <- c; return out; }"));
}

TEST(Sema, AllowsRedeclarationSameType) {
  EXPECT_TRUE(checks("fun f(c: bool, d: bool, a: uint, b: uint) {"
                     "  if c { let out <- a; }"
                     "  if d { let out <- b; }"
                     "  return out; }"));
}

TEST(Sema, RejectsRedeclarationDifferentType) {
  EXPECT_FALSE(checks("fun f(a: uint) {"
                      "  let out <- a;"
                      "  let out <- test a;"
                      "  return out; }"));
}

TEST(Sema, UnassignRemovesBinding) {
  EXPECT_FALSE(checks("fun f(a: uint) {"
                      "  let t <- a;"
                      "  let t -> a;"
                      "  let out <- t;" // t is gone
                      "  return out; }"));
}

TEST(Sema, NullNeedsPointerContext) {
  EXPECT_TRUE(checks("type l = (uint, ptr<l>);"
                     "fun f(p: ptr<l>) { let out <- p == null;"
                     "  return out; }"));
  EXPECT_FALSE(checks("fun f(a: uint) { let out <- a == null;"
                      "  return out; }"));
}

TEST(Sema, HadamardRequiresBool) {
  EXPECT_TRUE(checks("fun f(b: bool) { h(b); let out <- b; return out; }"));
  EXPECT_FALSE(checks("fun f(a: uint) { h(a); let out <- a; return out; }"));
}

TEST(Sema, MemSwapTypes) {
  EXPECT_TRUE(checks("fun f(p: ptr<uint>, v: uint) { *p <-> v;"
                     "  let out <- v; return out; }"));
  EXPECT_FALSE(checks("fun f(p: ptr<uint>, v: bool) { *p <-> v;"
                      "  let out <- v; return out; }"));
}

TEST(Sema, RecursiveCallNeedsAnnotationOrContext) {
  // Fresh binding of a self-call result without a return annotation.
  EXPECT_FALSE(checks("fun f[n](a: uint) {"
                      "  let out <- f[n-1](a);"
                      "  return out; }"));
  // Same with an annotation: fine.
  EXPECT_TRUE(checks("fun f[n](a: uint) -> uint {"
                     "  let out <- f[n-1](a);"
                     "  return out; }"));
}

TEST(Reverse, RoundTrip) {
  ast::Program P = parseProgramOrDie(
      "fun f(a: uint, b: bool) {"
      "  let t <- a;"
      "  if b { let u <- t; let u -> t; }"
      "  with { let w <- a; } do { let v <- w; }"
      "  let t -> a;"
      "  let out <- v;"
      "  return out; }");
  const ast::StmtList &Body = P.Functions[0].Body;
  ast::StmtList Rev = ast::reverseStmts(Body);
  ast::StmtList Back = ast::reverseStmts(Rev);
  ASSERT_EQ(Back.size(), Body.size());
  for (size_t I = 0; I != Body.size(); ++I)
    EXPECT_EQ(Back[I]->str(), Body[I]->str());
  // Reversal turns the leading let into a trailing un-let.
  EXPECT_EQ(Rev.back()->K, ast::Stmt::Kind::UnLet);
  EXPECT_EQ(Rev.back()->Name, "t");
}

TEST(ModSet, CoversConstructs) {
  ast::Program P = parseProgramOrDie(
      "fun f(p: ptr<uint>, a: uint, b: uint, c: bool) {"
      "  a <-> b;"
      "  *p <-> a;"
      "  if c { let d <- a; }"
      "  h(c);"
      "  let out <- a;"
      "  return out; }");
  sema::SymbolSet Mods = sema::collectModSet(P.Functions[0].Body);
  EXPECT_TRUE(Mods.count("a"));
  EXPECT_TRUE(Mods.count("b"));
  EXPECT_TRUE(Mods.count("d"));
  EXPECT_TRUE(Mods.count("c")); // h(c)
  EXPECT_TRUE(Mods.count("out"));
  EXPECT_FALSE(Mods.count("p")); // mem-swap pointer is read-only
}

//===----------------------------------------------------------------------===//
// Printer round trips: parsing the printer's output reproduces the same
// program, for every benchmark source. This pins the printer to the
// grammar and guards both against drift.
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "lowering/Lower.h"

TEST(PrinterRoundTrip, AllBenchmarkSourcesReparse) {
  for (const auto &B : spire::benchmarks::allBenchmarks()) {
    support::DiagnosticEngine Diags;
    std::optional<ast::Program> P = parseProgram(B.Source, Diags);
    ASSERT_TRUE(P.has_value()) << B.Name << ": " << Diags.str();
    std::string Printed = P->str();

    std::optional<ast::Program> Q = parseProgram(Printed, Diags);
    ASSERT_TRUE(Q.has_value()) << B.Name << " reparse: " << Diags.str()
                               << "\n" << Printed;
    // Printing is a normal form: print(parse(print(p))) == print(p).
    EXPECT_EQ(Q->str(), Printed) << B.Name;
  }
}

TEST(PrinterRoundTrip, ReparsedProgramLowersIdentically) {
  const auto &B = spire::benchmarks::lengthBenchmark();
  support::DiagnosticEngine Diags;
  std::optional<ast::Program> P = parseProgram(B.Source, Diags);
  ASSERT_TRUE(P.has_value());
  std::optional<ast::Program> Q = parseProgram(P->str(), Diags);
  ASSERT_TRUE(Q.has_value()) << Diags.str();
  ir::CoreProgram L1 = lowering::lowerProgramOrDie(*P, B.Entry, 3);
  ir::CoreProgram L2 = lowering::lowerProgramOrDie(*Q, B.Entry, 3);
  EXPECT_EQ(L1.str(), L2.str());
}

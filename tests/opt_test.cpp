//===----------------------------------------------------------------------===//
// Tests for Spire's program-level optimizations (Section 6): rewrite
// structure, the paper's worked examples, soundness on random programs
// (Theorems 6.3 / 6.5), and the cost relations of Theorems 6.1 / 6.4.
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "benchmarks/Benchmarks.h"
#include "costmodel/CostModel.h"
#include "frontend/Parser.h"
#include "lowering/Lower.h"
#include "opt/Spire.h"

#include <gtest/gtest.h>

using namespace spire;
using namespace spire::ir;

namespace {

circuit::TargetConfig Config;

std::shared_ptr<TypeContext> makeTypes() {
  return std::make_shared<TypeContext>();
}

CoreStmtPtr assignConst(const ast::Type *Ty, const std::string &X,
                        uint64_t V) {
  return CoreStmt::assign(X, Ty, CoreExpr::atom(Atom::constant(V, Ty)));
}

} // namespace

TEST(Flattening, RewritesNestedIf) {
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  // if x { if y { s } } ~> with { z <- x && y } do { if z { s } }.
  CoreStmtList Inner;
  Inner.push_back(assignConst(UInt, "s", 5));
  CoreStmtList Outer;
  Outer.push_back(CoreStmt::ifStmt("y", std::move(Inner)));
  CoreStmtList Program;
  Program.push_back(CoreStmt::ifStmt("x", std::move(Outer)));

  NameGen Names;
  CoreStmtList Out = opt::optimizeStmts(
      Program, opt::SpireOptions::flatteningOnly(), Names, *Types);
  ASSERT_EQ(Out.size(), 1u);
  const CoreStmt &W = *Out[0];
  ASSERT_EQ(W.K, CoreStmt::Kind::With);
  ASSERT_EQ(W.Body.size(), 1u);
  EXPECT_EQ(W.Body[0]->K, CoreStmt::Kind::Assign);
  EXPECT_EQ(W.Body[0]->E.K, CoreExpr::Kind::Binary);
  EXPECT_EQ(W.Body[0]->E.BOp, ast::BinaryOp::And);
  ASSERT_EQ(W.DoBody.size(), 1u);
  EXPECT_EQ(W.DoBody[0]->K, CoreStmt::Kind::If);
  EXPECT_EQ(W.DoBody[0]->Name, W.Body[0]->Name);
}

TEST(Flattening, SplitsIfBodies) {
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  // if x { s1; s2 } ~> if x { s1 }; if x { s2 }.
  CoreStmtList Body;
  Body.push_back(assignConst(UInt, "a", 1));
  Body.push_back(assignConst(UInt, "b", 2));
  CoreStmtList Program;
  Program.push_back(CoreStmt::ifStmt("x", std::move(Body)));

  NameGen Names;
  CoreStmtList Out = opt::optimizeStmts(
      Program, opt::SpireOptions::flatteningOnly(), Names, *Types);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0]->K, CoreStmt::Kind::If);
  EXPECT_EQ(Out[1]->K, CoreStmt::Kind::If);
  EXPECT_EQ(Out[0]->Body[0]->Name, "a");
  EXPECT_EQ(Out[1]->Body[0]->Name, "b");
}

TEST(Narrowing, PullsWithOutOfIf) {
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  // if x { with { w } do { d } } ~> with { w } do { if x { d } }.
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(assignConst(UInt, "w", 1));
  DoBody.push_back(assignConst(UInt, "d", 2));
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  CoreStmtList Program;
  Program.push_back(CoreStmt::ifStmt("x", std::move(IfBody)));

  NameGen Names;
  CoreStmtList Out = opt::optimizeStmts(
      Program, opt::SpireOptions::narrowingOnly(), Names, *Types);
  ASSERT_EQ(Out.size(), 1u);
  const CoreStmt &W = *Out[0];
  ASSERT_EQ(W.K, CoreStmt::Kind::With);
  EXPECT_EQ(W.Body[0]->Name, "w");
  ASSERT_EQ(W.DoBody.size(), 1u);
  EXPECT_EQ(W.DoBody[0]->K, CoreStmt::Kind::If);
  EXPECT_EQ(W.DoBody[0]->Name, "x");
}

TEST(WithDoFlattening, MergesNestedBlocks) {
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  // with { a } do { with { b } do { c } } ~> with { a; b } do { c }.
  CoreStmtList InnerWith, InnerDo;
  InnerWith.push_back(assignConst(UInt, "b", 2));
  InnerDo.push_back(assignConst(UInt, "c", 3));
  CoreStmtList OuterWith, OuterDo;
  OuterWith.push_back(assignConst(UInt, "a", 1));
  OuterDo.push_back(CoreStmt::with(std::move(InnerWith), std::move(InnerDo)));
  CoreStmtList Program;
  Program.push_back(CoreStmt::with(std::move(OuterWith), std::move(OuterDo)));

  NameGen Names;
  opt::SpireOptions OnlyFlattenWithDo = opt::SpireOptions::none();
  OnlyFlattenWithDo.FlattenWithDo = true;
  CoreStmtList Out =
      opt::optimizeStmts(Program, OnlyFlattenWithDo, Names, *Types);
  ASSERT_EQ(Out.size(), 1u);
  const CoreStmt &W = *Out[0];
  ASSERT_EQ(W.K, CoreStmt::Kind::With);
  ASSERT_EQ(W.Body.size(), 2u);
  EXPECT_EQ(W.Body[0]->Name, "a");
  EXPECT_EQ(W.Body[1]->Name, "b");
  ASSERT_EQ(W.DoBody.size(), 1u);
  EXPECT_EQ(W.DoBody[0]->Name, "c");
}

TEST(SpirePipeline, NoneIsIdentity) {
  CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthBenchmark(), 3);
  CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::none());
  EXPECT_TRUE(stmtListEquals(P.Body, O.Body));
}

TEST(SpirePipeline, Figure3Savings) {
  // The Fig. 3 toy program: flattening + narrowing strictly reduce the
  // T-complexity, and the result compiles to a circuit whose innermost
  // statements carry one control (Fig. 8) rather than three (Fig. 4).
  ast::Program Prog =
      frontend::parseProgramOrDie(benchmarks::figure3Program().Source);
  CoreProgram P = lowering::lowerProgramOrDie(Prog, "fig3", 0);
  costmodel::Cost Before = costmodel::analyzeProgram(P, Config);

  CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::all());
  costmodel::Cost After = costmodel::analyzeProgram(O, Config);
  EXPECT_LT(After.T, Before.T);
  EXPECT_GT(Before.T, 0);

  // Narrowing alone and flattening alone also help, and stack.
  costmodel::Cost NarrowOnly = costmodel::analyzeProgram(
      opt::optimizeProgram(P, opt::SpireOptions::narrowingOnly()), Config);
  costmodel::Cost FlattenOnly = costmodel::analyzeProgram(
      opt::optimizeProgram(P, opt::SpireOptions::flatteningOnly()), Config);
  EXPECT_LE(NarrowOnly.T, Before.T);
  EXPECT_LT(FlattenOnly.T, Before.T);
  EXPECT_LE(After.T, FlattenOnly.T);
}

TEST(SpirePipeline, Figure3Semantics) {
  // Truth-table equivalence of the Fig. 3 program before and after each
  // optimization combination: Theorems 6.3/6.5 on every machine state.
  ast::Program Prog =
      frontend::parseProgramOrDie(benchmarks::figure3Program().Source);
  CoreProgram P = lowering::lowerProgramOrDie(Prog, "fig3", 0);
  for (auto Options :
       {opt::SpireOptions::flatteningOnly(),
        opt::SpireOptions::narrowingOnly(), opt::SpireOptions::all()}) {
    CoreProgram O = opt::optimizeProgram(P, Options);
    for (unsigned Bits = 0; Bits != 8; ++Bits) {
      sim::MachineState S1 = sim::MachineState::make(Config.HeapCells);
      S1.Regs["x"] = Bits & 1;
      S1.Regs["y"] = (Bits >> 1) & 1;
      S1.Regs["z"] = (Bits >> 2) & 1;
      sim::MachineState S2 = S1;
      sim::Interpreter I1(P, Config), I2(O, Config);
      ASSERT_TRUE(I1.run(S1)) << I1.error();
      ASSERT_TRUE(I2.run(S2)) << I2.error();
      EXPECT_EQ(I1.output(S1), I2.output(S2)) << "inputs " << Bits;
      // Fig. 3 semantics: (a, b) = (not z, true) iff x && y && z.
      uint64_t X = Bits & 1, Y = (Bits >> 1) & 1, Z = (Bits >> 2) & 1;
      uint64_t A = (X && Y && Z) ? (1 ^ Z) : 0;
      uint64_t B = (X && Y && Z) ? 1 : 0;
      EXPECT_EQ(I1.output(S1), A | (B << 1)) << "inputs " << Bits;
    }
  }
}

TEST(Theorem61, FlatteningAsymptotics) {
  // When s (k gates) sits under n nested ifs, flattening takes the
  // T-complexity from O(kn) to O(k + n): check the concrete reduction
  // grows linearly with nesting depth.
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  const ast::Type *Bool = Types->boolType();

  auto Build = [&](unsigned Depth) {
    CoreProgram P;
    P.Types = Types;
    for (unsigned I = 0; I != Depth; ++I)
      P.Inputs.emplace_back("c" + std::to_string(I), Bool);
    P.Inputs.emplace_back("a", UInt);
    P.OutputVar = "s";
    P.OutputTy = UInt;
    // Innermost body: one real statement with nonzero MCX cost.
    CoreStmtList Body;
    Body.push_back(CoreStmt::assign(
        "s", UInt,
        CoreExpr::binary(ast::BinaryOp::Add, Atom::var("a", UInt),
                         Atom::constant(3, UInt), UInt)));
    for (unsigned I = Depth; I-- > 0;) {
      CoreStmtList Wrapped;
      Wrapped.push_back(
          CoreStmt::ifStmt("c" + std::to_string(I), std::move(Body)));
      Body = std::move(Wrapped);
    }
    P.Body = std::move(Body);
    return P;
  };

  std::vector<int64_t> Unopt, Opted;
  for (unsigned Depth = 2; Depth <= 6; ++Depth) {
    CoreProgram P = Build(Depth);
    Unopt.push_back(costmodel::analyzeProgram(P, Config).T);
    CoreProgram O = opt::optimizeProgram(P, opt::SpireOptions::all());
    Opted.push_back(costmodel::analyzeProgram(O, Config).T);
  }
  // Unoptimized: each extra control adds c_ctrl per gate of the body
  // (steep slope). Optimized: each level adds only the constant AND
  // temporary (shallow slope).
  int64_t UnoptSlope = Unopt[1] - Unopt[0];
  int64_t OptSlope = Opted[1] - Opted[0];
  EXPECT_GT(UnoptSlope, OptSlope);
  for (size_t I = 2; I != Unopt.size(); ++I) {
    EXPECT_EQ(Unopt[I] - Unopt[I - 1], UnoptSlope) << "linear growth";
    EXPECT_EQ(Opted[I] - Opted[I - 1], OptSlope) << "constant per level";
  }
}

TEST(Theorem64, NarrowingRemovesControlsOnWithBlock) {
  // if x { with { s1 } do { s2 } }: narrowing saves exactly the cost of
  // controlling s1 twice (forward and reversed).
  auto Types = makeTypes();
  const ast::Type *UInt = Types->uintType();
  const ast::Type *Bool = Types->boolType();
  CoreProgram P;
  P.Types = Types;
  P.Inputs = {{"x", Bool}, {"a", UInt}};
  P.OutputVar = "d";
  P.OutputTy = UInt;
  CoreStmtList WithBody, DoBody;
  WithBody.push_back(CoreStmt::assign(
      "w", UInt,
      CoreExpr::binary(ast::BinaryOp::Add, Atom::var("a", UInt),
                       Atom::constant(1, UInt), UInt)));
  DoBody.push_back(
      CoreStmt::assign("d", UInt, CoreExpr::atom(Atom::var("w", UInt))));
  CoreStmtList IfBody;
  IfBody.push_back(CoreStmt::with(std::move(WithBody), std::move(DoBody)));
  P.Body.push_back(CoreStmt::ifStmt("x", std::move(IfBody)));

  costmodel::Cost Before = costmodel::analyzeProgram(P, Config);
  CoreProgram O =
      opt::optimizeProgram(P, opt::SpireOptions::narrowingOnly());
  costmodel::Cost After = costmodel::analyzeProgram(O, Config);
  EXPECT_LT(After.T, Before.T);
  EXPECT_EQ(After.MCX, Before.MCX); // narrowing moves, never adds, gates
}

//===----------------------------------------------------------------------===//
// Soundness property: random programs, all optimization combinations.
//===----------------------------------------------------------------------===//

class OptSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptSoundness, RandomProgramsPreserveSemantics) {
  testutil::RandomProgramGen Gen(GetParam());
  CoreProgram P = Gen.generate(14);
  for (auto Options :
       {opt::SpireOptions::flatteningOnly(),
        opt::SpireOptions::narrowingOnly(), opt::SpireOptions::all()}) {
    CoreProgram O = opt::optimizeProgram(P, Options);
    for (uint64_t Trial = 0; Trial != 3; ++Trial) {
      sim::MachineState S1 =
          testutil::randomState(P, Config, GetParam() * 31 + Trial);
      sim::MachineState S2 = S1;
      sim::Interpreter I1(P, Config), I2(O, Config);
      ASSERT_TRUE(I1.run(S1)) << I1.error();
      ASSERT_TRUE(I2.run(S2)) << I2.error();
      EXPECT_EQ(I1.output(S1), I2.output(S2)) << "seed " << GetParam();
      EXPECT_EQ(S1.Mem, S2.Mem) << "seed " << GetParam();
      // Definition 6.2: shared (input) registers must agree too.
      for (const auto &[Name, Ty] : P.Inputs)
        EXPECT_EQ(S1.Regs[Name], S2.Regs[Name]) << Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptSoundness,
                         ::testing::Range<uint64_t>(200, 240));

TEST(OptIdempotence, SecondRunChangesNothing) {
  CoreProgram P =
      benchmarks::lowerBenchmark(benchmarks::lengthBenchmark(), 4);
  CoreProgram O1 = opt::optimizeProgram(P, opt::SpireOptions::all());
  costmodel::Cost C1 = costmodel::analyzeProgram(O1, Config);
  CoreProgram O2 = opt::optimizeProgram(O1, opt::SpireOptions::all());
  costmodel::Cost C2 = costmodel::analyzeProgram(O2, Config);
  EXPECT_EQ(C1.T, C2.T);
  EXPECT_EQ(C1.MCX, C2.MCX);
}

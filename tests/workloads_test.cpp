//===----------------------------------------------------------------------===//
// Tests for the workload generators (heap encodings of lists, strings,
// and radix trees) used by the functional benchmark tests and the
// evaluation harness: encode/decode round trips, layout invariants, and
// agreement between the reference tree operations and key ordering.
//===----------------------------------------------------------------------===//

#include "benchmarks/Workloads.h"

#include <gtest/gtest.h>
#include <random>

using namespace spire;
using namespace spire::benchmarks;

namespace {
constexpr unsigned HeapCells = 32;
} // namespace

TEST(Workloads, EmptyListEncodesToNull) {
  sim::MachineState S = sim::MachineState::make(HeapCells);
  EXPECT_EQ(encodeList(S, {}), 0u);
}

TEST(Workloads, ListRoundTrip) {
  sim::MachineState S = sim::MachineState::make(HeapCells);
  std::vector<uint64_t> Values = {3, 1, 4, 1, 5};
  uint64_t Head = encodeList(S, Values);
  ASSERT_NE(Head, 0u);
  EXPECT_EQ(decodeList(S, Head), Values);
}

TEST(Workloads, SingletonList) {
  sim::MachineState S = sim::MachineState::make(HeapCells);
  uint64_t Head = encodeList(S, {42});
  EXPECT_EQ(decodeList(S, Head), std::vector<uint64_t>{42});
}

TEST(Workloads, EncodeAtAdvancesCellCursor) {
  sim::MachineState S = sim::MachineState::make(HeapCells);
  unsigned Cell = 1;
  uint64_t A = encodeListAt(S, {1, 2}, Cell);
  unsigned AfterA = Cell;
  uint64_t B = encodeListAt(S, {3}, Cell);
  EXPECT_GT(AfterA, 1u);
  EXPECT_GT(Cell, AfterA);
  // Both lists decode independently: disjoint cells.
  EXPECT_EQ(decodeList(S, A), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(decodeList(S, B), (std::vector<uint64_t>{3}));
}

TEST(Workloads, KeyLessIsLexicographic) {
  EXPECT_TRUE(keyLess({1}, {2}));
  EXPECT_TRUE(keyLess({1, 2}, {2}));
  EXPECT_TRUE(keyLess({1}, {1, 1}));   // prefix < extension
  EXPECT_FALSE(keyLess({1, 1}, {1}));
  EXPECT_FALSE(keyLess({2}, {1, 9}));
  EXPECT_FALSE(keyLess({3}, {3}));     // irreflexive
}

TEST(Workloads, KeyLessIsStrictWeakOrder) {
  std::mt19937_64 Rng(5);
  std::vector<Key> Keys;
  for (int I = 0; I != 24; ++I) {
    Key K;
    unsigned Len = 1 + Rng() % 4;
    for (unsigned J = 0; J != Len; ++J)
      K.push_back(Rng() % 4);
    Keys.push_back(std::move(K));
  }
  for (const Key &A : Keys)
    for (const Key &B : Keys) {
      EXPECT_FALSE(keyLess(A, B) && keyLess(B, A));
      for (const Key &C : Keys)
        if (keyLess(A, B) && keyLess(B, C)) {
          EXPECT_TRUE(keyLess(A, C));
        }
    }
}

TEST(Workloads, TreeContainsExactlyItsKeys) {
  sim::MachineState S = sim::MachineState::make(64);
  unsigned Cell = 1;
  std::vector<Key> Keys = {{2}, {1, 3}, {3, 1}, {1}};
  uint64_t Root = encodeTree(S, Keys, Cell);
  ASSERT_NE(Root, 0u);
  for (const Key &K : Keys)
    EXPECT_TRUE(treeContains(S, Root, K));
  EXPECT_FALSE(treeContains(S, Root, {4}));
  EXPECT_FALSE(treeContains(S, Root, {1, 2}));
  EXPECT_FALSE(treeContains(S, Root, {2, 1}));
}

TEST(Workloads, EmptyTreeContainsNothing) {
  sim::MachineState S = sim::MachineState::make(HeapCells);
  unsigned Cell = 1;
  uint64_t Root = encodeTree(S, {}, Cell);
  EXPECT_EQ(Root, 0u);
  EXPECT_FALSE(treeContains(S, Root, {1}));
}

TEST(Workloads, RandomTreeMatchesReferenceSet) {
  std::mt19937_64 Rng(9);
  for (int Trial = 0; Trial != 10; ++Trial) {
    std::vector<Key> Keys;
    unsigned NumKeys = 1 + Rng() % 4;
    for (unsigned I = 0; I != NumKeys; ++I) {
      Key K;
      unsigned Len = 1 + Rng() % 3;
      for (unsigned J = 0; J != Len; ++J)
        K.push_back(1 + Rng() % 3);
      Keys.push_back(std::move(K));
    }
    sim::MachineState S = sim::MachineState::make(64);
    unsigned Cell = 1;
    uint64_t Root = encodeTree(S, Keys, Cell);

    auto InKeys = [&](const Key &K) {
      for (const Key &Existing : Keys)
        if (Existing == K)
          return true;
      return false;
    };
    for (int Probe = 0; Probe != 12; ++Probe) {
      Key K;
      unsigned Len = 1 + Rng() % 3;
      for (unsigned J = 0; J != Len; ++J)
        K.push_back(1 + Rng() % 3);
      EXPECT_EQ(treeContains(S, Root, K), InKeys(K));
    }
  }
}

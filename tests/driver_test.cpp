//===----------------------------------------------------------------------===//
// Tests for driver::CompilationPipeline: staged results and artifacts,
// per-stage wall-clock timing monotonicity, options plumbing (the -O0 /
// --no-flatten / --no-narrow equivalents), and diagnostics-based error
// propagation with a failed-stage marker.
//===----------------------------------------------------------------------===//

#include "benchmarks/Harness.h"
#include "circuit/Gate.h"
#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace spire;
using driver::CompilationPipeline;
using driver::CompilationResult;
using driver::PipelineOptions;
using driver::Stage;

namespace {

const char *Fig3Source = R"(
fun fig3(x: bool, y: bool, z: bool) {
  let a <- false;
  let b <- false;
  if x {
    if y {
      with {
        let t <- z;
      } do {
        if z {
          let a <- not t;
          let b <- true;
        }
      }
    }
  }
  let r <- (a, b);
  return r;
}
)";

CompilationResult compileFig3(PipelineOptions Opts) {
  Opts.Entry = "fig3";
  CompilationPipeline Pipeline(std::move(Opts));
  return Pipeline.run(Fig3Source);
}

/// Position of stage S in the executed-stage list, or -1.
int stageIndex(const CompilationResult &R, Stage S) {
  for (size_t I = 0; I != R.Stages.size(); ++I)
    if (R.Stages[I].Which == S)
      return static_cast<int>(I);
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Staged results
//===----------------------------------------------------------------------===//

TEST(DriverStages, FullRunProducesAllArtifacts) {
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_FALSE(R.Diags.hasErrors());
  ASSERT_TRUE(R.AST.has_value());
  ASSERT_TRUE(R.Core.has_value());
  ASSERT_TRUE(R.Optimized.has_value());
  ASSERT_TRUE(R.UnoptimizedCost.has_value());
  ASSERT_TRUE(R.OptimizedCost.has_value());
  ASSERT_TRUE(R.Compiled.has_value());

  EXPECT_FALSE(R.Core->Body.empty());
  EXPECT_FALSE(R.Compiled->Circ.Gates.empty());
  // EmitLevel defaults to MCX: the final circuit IS the compiled one,
  // served without duplication.
  EXPECT_FALSE(R.Final.has_value());
  EXPECT_EQ(R.finalCircuit(), &R.Compiled->Circ);
}

TEST(DriverStages, CostModelOnlyRunSkipsCircuitStages) {
  CompilationResult R = compileFig3(PipelineOptions());

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_FALSE(R.Compiled.has_value());
  EXPECT_FALSE(R.Final.has_value());
  EXPECT_EQ(R.finalCircuit(), nullptr);
  EXPECT_EQ(stageIndex(R, Stage::CircuitCompile), -1);
  EXPECT_EQ(stageIndex(R, Stage::Qopt), -1);
  ASSERT_TRUE(R.OptimizedCost.has_value());
  EXPECT_GT(R.OptimizedCost->T, 0);
}

TEST(DriverStages, StopAfterLowerSkipsRewritesAndAnalysis) {
  PipelineOptions Opts;
  Opts.StopAfter = Stage::Lower;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  ASSERT_TRUE(R.Core.has_value());
  EXPECT_FALSE(R.Optimized.has_value());
  EXPECT_FALSE(R.OptimizedCost.has_value());
  ASSERT_EQ(R.Stages.size(), 3u);
  EXPECT_EQ(R.Stages.back().Which, Stage::Lower);
}

TEST(DriverStages, AnalyzeUnoptimizedCanBeSkipped) {
  PipelineOptions Opts;
  Opts.AnalyzeUnoptimized = false;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_FALSE(R.UnoptimizedCost.has_value());
  ASSERT_TRUE(R.OptimizedCost.has_value());
  EXPECT_GT(R.OptimizedCost->T, 0);
}

TEST(DriverStages, CostModelMatchesCompiledCircuit) {
  // Theorem 5.2 exactness, observed across two stages of one run: the
  // estimate stage's cost equals the compiled MCX circuit's counts.
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  CompilationResult R = compileFig3(Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();

  circuit::GateCounts Counts = circuit::countGates(*R.finalCircuit());
  EXPECT_EQ(R.OptimizedCost->MCX, Counts.Total);
  EXPECT_EQ(R.OptimizedCost->T, Counts.TComplexity);
}

TEST(DriverStages, StopBeforeQoptStillYieldsAFinalCircuit) {
  // Requesting a circuit optimizer but stopping at circuit-compile must
  // not leave a "successful" result with no emitted circuit.
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.CircuitOpt = driver::CircuitOptimizerKind::Peephole;
  Opts.StopAfter = Stage::CircuitCompile;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_EQ(stageIndex(R, Stage::Qopt), -1);
  ASSERT_NE(R.finalCircuit(), nullptr);
  EXPECT_EQ(R.finalCircuit(), &R.Compiled->Circ);
}

TEST(DriverStages, DecompositionLevelIsHonored) {
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.EmitLevel = driver::CircuitLevel::CliffordT;
  CompilationResult R = compileFig3(Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();

  // Decomposition preserves T-complexity and leaves only Clifford+T
  // gates (no gate keeps more than one control).
  circuit::GateCounts Counts = circuit::countGates(*R.Final);
  EXPECT_EQ(Counts.TComplexity, R.OptimizedCost->T);
  for (const circuit::Gate &G : R.Final->Gates)
    EXPECT_LE(G.numControls(), 1u);
}

TEST(DriverStages, QoptStageRunsCircuitOptimizer) {
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.CircuitOpt = driver::CircuitOptimizerKind::Peephole;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_GE(stageIndex(R, Stage::Qopt), 0);
  ASSERT_TRUE(R.Final.has_value());
  EXPECT_FALSE(R.Final->Gates.empty());
  // The optimizer output is a Clifford+T-level circuit.
  for (const circuit::Gate &G : R.Final->Gates)
    EXPECT_LE(G.numControls(), 1u);
}

TEST(DriverStages, ResourceEstimateFromCostModel) {
  PipelineOptions Opts;
  Opts.EstimateResources = true;
  CompilationResult R = compileFig3(Opts);

  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  ASSERT_TRUE(R.Resources.has_value());
  EXPECT_EQ(R.Resources->TCount, R.OptimizedCost->T);
  EXPECT_GT(R.Resources->SpacetimeNANDs, 0.0);
}

//===----------------------------------------------------------------------===//
// Per-stage timing
//===----------------------------------------------------------------------===//

TEST(DriverTiming, StagesExecuteInPipelineOrder) {
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  Opts.CircuitOpt = driver::CircuitOptimizerKind::RotationMerging;
  Opts.EstimateResources = true;
  CompilationResult R = compileFig3(Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();

  // Every stage ran exactly once, in declaration order.
  ASSERT_EQ(R.Stages.size(), 7u);
  for (size_t I = 1; I != R.Stages.size(); ++I)
    EXPECT_LT(static_cast<int>(R.Stages[I - 1].Which),
              static_cast<int>(R.Stages[I].Which));
}

TEST(DriverTiming, TimingsAreNonNegativeAndCumulativeMonotone) {
  PipelineOptions Opts;
  Opts.BuildCircuit = true;
  CompilationResult R = compileFig3(Opts);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();

  double Cumulative = 0;
  for (const driver::StageTiming &T : R.Stages) {
    EXPECT_GE(T.Seconds, 0.0) << driver::stageName(T.Which);
    double Next = Cumulative + T.Seconds;
    EXPECT_GE(Next, Cumulative) << driver::stageName(T.Which);
    Cumulative = Next;
  }
  EXPECT_DOUBLE_EQ(R.totalSeconds(), Cumulative);
  for (const driver::StageTiming &T : R.Stages)
    EXPECT_LE(T.Seconds, R.totalSeconds() + 1e-12);
}

TEST(DriverTiming, StageSecondsLookupMatchesRecords) {
  CompilationResult R = compileFig3(PipelineOptions());
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  for (const driver::StageTiming &T : R.Stages)
    EXPECT_DOUBLE_EQ(R.stageSeconds(T.Which), T.Seconds);
  // A stage that did not run reads as zero.
  EXPECT_DOUBLE_EQ(R.stageSeconds(Stage::CircuitCompile), 0.0);
}

TEST(DriverTiming, SurfacedThroughHarnessFormatter) {
  driver::CompilationResult R =
      benchmarks::runPipelineOrDie(benchmarks::figure3Program(), 0);
  std::string Timings = benchmarks::formatStageTimings(R);
  EXPECT_NE(Timings.find("parse"), std::string::npos);
  EXPECT_NE(Timings.find("lower"), std::string::npos);
  EXPECT_NE(Timings.find("estimate"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Options plumbing (the spirec -O0 / --no-flatten / --no-narrow knobs)
//===----------------------------------------------------------------------===//

TEST(DriverOptions, SpireConfigurationsOrderAsInThePaper) {
  PipelineOptions O0;
  O0.Spire = opt::SpireOptions::none();
  PipelineOptions NoFlatten; // --no-flatten: narrowing only
  NoFlatten.Spire = opt::SpireOptions::narrowingOnly();
  PipelineOptions NoNarrow; // --no-narrow: flattening only
  NoNarrow.Spire = opt::SpireOptions::flatteningOnly();
  PipelineOptions All;

  int64_t TOrig = compileFig3(O0).OptimizedCost->T;
  int64_t TCN = compileFig3(NoFlatten).OptimizedCost->T;
  int64_t TCF = compileFig3(NoNarrow).OptimizedCost->T;
  int64_t TBoth = compileFig3(All).OptimizedCost->T;

  // Figs. 7/8: each rewrite helps alone, both together dominate.
  EXPECT_LT(TCN, TOrig);
  EXPECT_LT(TCF, TOrig);
  EXPECT_LE(TBoth, TCN);
  EXPECT_LE(TBoth, TCF);
}

TEST(DriverOptions, DisabledSpireLeavesCostUnchanged) {
  PipelineOptions O0;
  O0.Spire = opt::SpireOptions::none();
  CompilationResult R = compileFig3(O0);
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_EQ(R.UnoptimizedCost->MCX, R.OptimizedCost->MCX);
  EXPECT_EQ(R.UnoptimizedCost->T, R.OptimizedCost->T);
}

TEST(DriverOptions, TargetConfigReachesBackend) {
  // fig3 is all bools, so use length, whose uint/pointer registers and
  // qRAM cells track the configured word width.
  PipelineOptions Narrow;
  Narrow.BuildCircuit = true;
  Narrow.Target.WordBits = 4;
  PipelineOptions Wide;
  Wide.BuildCircuit = true;
  Wide.Target.WordBits = 12;

  driver::CompilationResult RN =
      benchmarks::runPipelineOrDie(benchmarks::lengthBenchmark(), 2, Narrow);
  driver::CompilationResult RW =
      benchmarks::runPipelineOrDie(benchmarks::lengthBenchmark(), 2, Wide);
  // Wider registers mean a wider circuit.
  EXPECT_LT(RN.Compiled->Circ.NumQubits, RW.Compiled->Circ.NumQubits);
}

TEST(DriverOptions, SizeIsPlumbedToLowering) {
  driver::CompilationResult R2 =
      benchmarks::runPipelineOrDie(benchmarks::lengthBenchmark(), 2);
  driver::CompilationResult R5 =
      benchmarks::runPipelineOrDie(benchmarks::lengthBenchmark(), 5);
  // Deeper recursion unrolls to strictly more T (Fig. 12a's series).
  EXPECT_LT(R2.OptimizedCost->T, R5.OptimizedCost->T);
}

//===----------------------------------------------------------------------===//
// Error propagation: diagnostics plus a failed-stage marker, no aborts
//===----------------------------------------------------------------------===//

TEST(DriverErrors, ParseErrorFailsParseStage) {
  CompilationPipeline Pipeline(PipelineOptions::forEntry("f"));
  CompilationResult R = Pipeline.run("fun f( { return x; }");

  EXPECT_FALSE(R.succeeded());
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(*R.Failed, Stage::Parse);
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_FALSE(R.AST.has_value());
  EXPECT_FALSE(R.Core.has_value());
}

TEST(DriverErrors, UnknownEntryFailsTypecheckStage) {
  CompilationPipeline Pipeline(PipelineOptions::forEntry("no_such_fun"));
  CompilationResult R = Pipeline.run(Fig3Source);

  EXPECT_FALSE(R.succeeded());
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(*R.Failed, Stage::Typecheck);
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_NE(R.Diags.str().find("no_such_fun"), std::string::npos);
}

TEST(DriverErrors, TypeErrorFailsTypecheckStage) {
  CompilationPipeline Pipeline(PipelineOptions::forEntry("bad"));
  CompilationResult R = Pipeline.run(R"(
fun bad(x: bool) {
  let y <- x + 1;
  return y;
}
)");

  EXPECT_FALSE(R.succeeded());
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(*R.Failed, Stage::Typecheck);
  EXPECT_TRUE(R.Diags.hasErrors());
  // The AST survives for inspection; nothing downstream was produced.
  EXPECT_TRUE(R.AST.has_value());
  EXPECT_FALSE(R.Core.has_value());
  EXPECT_FALSE(R.Optimized.has_value());
}

TEST(DriverErrors, LoweringFailureFailsLowerStage) {
  // Exhaust the static allocator: push_back at depth 3 allocates three
  // cells, but the target heap only has one.
  const benchmarks::BenchmarkProgram *PushBack = nullptr;
  for (const benchmarks::BenchmarkProgram &B : benchmarks::allBenchmarks())
    if (B.Name == "push_back")
      PushBack = &B;
  ASSERT_NE(PushBack, nullptr);

  driver::PipelineOptions Opts;
  Opts.Target.HeapCells = 1;
  driver::CompilationResult R = benchmarks::runPipeline(*PushBack, 3, Opts);

  EXPECT_FALSE(R.succeeded());
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(*R.Failed, Stage::Lower);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(DriverErrors, FailedStagesStillRecordTimings) {
  CompilationPipeline Pipeline(PipelineOptions::forEntry("f"));
  CompilationResult R = Pipeline.run("fun f( { return x; }");
  ASSERT_EQ(R.Stages.size(), 1u);
  EXPECT_EQ(R.Stages[0].Which, Stage::Parse);
  EXPECT_GE(R.Stages[0].Seconds, 0.0);
}

TEST(DriverErrors, RunFileReportsMissingInput) {
  CompilationPipeline Pipeline(PipelineOptions::forEntry("f"));
  CompilationResult R =
      Pipeline.runFile("/nonexistent/dir/program.tower");
  EXPECT_FALSE(R.succeeded());
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(*R.Failed, Stage::Parse);
  EXPECT_NE(R.Diags.str().find("cannot read"), std::string::npos);
}
